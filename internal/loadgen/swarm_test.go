package loadgen

import (
	"sync"
	"testing"
	"time"
)

func swarmTestSettings() TestSettings {
	ts := DefaultSettings(Swarm)
	ts.MinDuration = 20 * time.Millisecond
	ts.MinQueryCount = 60
	ts.SwarmSessions = 40
	ts.SwarmSessionQPS = 100
	ts.SwarmSessionLifetime = 15 * time.Millisecond
	return ts
}

// drawSchedule materializes the first n gaps and the lifetime of one session
// incarnation, the audit-replay form of the determinism contract.
func drawSchedule(t *testing.T, ts TestSettings, sid, inc uint64, n int) ([]time.Duration, time.Duration) {
	t.Helper()
	proc, life, err := swarmSessionGaps(ts, sid, inc)
	if err != nil {
		t.Fatal(err)
	}
	gaps := make([]time.Duration, n)
	for i := range gaps {
		gaps[i] = proc.NextGap()
	}
	return gaps, life
}

// Same (ScheduleSeed, session, incarnation) must regenerate the identical
// arrival stream and lifetime — the property that makes a swarm run's offered
// schedule auditable after the fact.
func TestSwarmScheduleDeterminism(t *testing.T) {
	ts := swarmTestSettings()
	for sid := uint64(0); sid < 8; sid++ {
		for inc := uint64(0); inc < 3; inc++ {
			a, lifeA := drawSchedule(t, ts, sid, inc, 64)
			b, lifeB := drawSchedule(t, ts, sid, inc, 64)
			if lifeA != lifeB {
				t.Fatalf("session %d inc %d: lifetime %v != %v", sid, inc, lifeA, lifeB)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("session %d inc %d gap %d: %v != %v", sid, inc, i, a[i], b[i])
				}
			}
		}
	}
	// Distinct sessions and distinct incarnations get distinct streams.
	a, _ := drawSchedule(t, ts, 1, 0, 16)
	b, _ := drawSchedule(t, ts, 2, 0, 16)
	c, _ := drawSchedule(t, ts, 1, 1, 16)
	same := func(x, y []time.Duration) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, b) {
		t.Error("sessions 1 and 2 drew identical streams")
	}
	if same(a, c) {
		t.Error("incarnations 0 and 1 drew identical streams")
	}
	// A different ScheduleSeed moves every stream.
	ts2 := ts
	ts2.ScheduleSeed = ts.ScheduleSeed + 1
	d, _ := drawSchedule(t, ts2, 1, 0, 16)
	if same(a, d) {
		t.Error("stream unchanged under a different ScheduleSeed")
	}
}

// The contract must hold independent of interleaving: many goroutines drawing
// the same sessions' schedules concurrently see exactly the sequential draws.
func TestSwarmScheduleInterleavingIndependence(t *testing.T) {
	ts := swarmTestSettings()
	const sessions = 16
	want := make([][]time.Duration, sessions)
	for sid := range want {
		want[sid], _ = drawSchedule(t, ts, uint64(sid), 0, 32)
	}
	var wg sync.WaitGroup
	errs := make(chan string, sessions)
	for sid := 0; sid < sessions; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			proc, _, err := swarmSessionGaps(ts, uint64(sid), 0)
			if err != nil {
				errs <- err.Error()
				return
			}
			for i := 0; i < 32; i++ {
				if g := proc.NextGap(); g != want[sid][i] {
					errs <- "concurrent draw diverged from sequential draw"
					return
				}
			}
		}(sid)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func TestSwarmAssignClassesDeterministic(t *testing.T) {
	ts := swarmTestSettings()
	ts.SwarmSessions = 4000
	classes := []SwarmClass{
		{Name: "interactive", Weight: 3, TargetLatency: 10 * time.Millisecond, TargetPercentile: 0.99},
		{Name: "batchy", Weight: 1, TargetLatency: 100 * time.Millisecond, TargetPercentile: 0.95},
	}
	a := swarmAssignClasses(ts, classes)
	b := swarmAssignClasses(ts, classes)
	if len(a) != ts.SwarmSessions {
		t.Fatalf("assigned %d sessions, want %d", len(a), ts.SwarmSessions)
	}
	counts := make([]int, len(classes))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session %d assignment differs between calls", i)
		}
		if a[i] < 0 || a[i] >= len(classes) {
			t.Fatalf("session %d assigned out-of-range class %d", i, a[i])
		}
		counts[a[i]]++
	}
	// Weight 3:1 over 4000 draws: the interactive share lands near 75%.
	share := float64(counts[0]) / float64(len(a))
	if share < 0.70 || share > 0.80 {
		t.Errorf("interactive share %.3f, want ~0.75 under 3:1 weights", share)
	}
}

// End-to-end swarm run against the fake SUT: the run completes, stays valid,
// reports the session population, and the per-class counters partition the
// run's totals exactly.
func TestSwarmPerformanceRun(t *testing.T) {
	qsl := newFakeQSL(64, 32)
	sut := newFakeSUT(0, true)
	ts := swarmTestSettings()
	ts.SwarmClasses = []SwarmClass{
		{Name: "interactive", Weight: 3, TargetLatency: 100 * time.Millisecond, TargetPercentile: 0.99},
		{Name: "batchy", Weight: 1, TargetLatency: time.Second, TargetPercentile: 0.95},
	}
	res, err := StartTest(sut, qsl, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != Swarm {
		t.Errorf("scenario %v", res.Scenario)
	}
	if res.SwarmSessions != ts.SwarmSessions {
		t.Errorf("reported %d sessions, want %d", res.SwarmSessions, ts.SwarmSessions)
	}
	if res.QueriesIssued < ts.MinQueryCount {
		t.Errorf("issued %d, want >= %d", res.QueriesIssued, ts.MinQueryCount)
	}
	if res.QueriesCompleted != res.QueriesIssued {
		t.Errorf("completed %d != issued %d", res.QueriesCompleted, res.QueriesIssued)
	}
	if !res.Valid {
		t.Errorf("run invalid: %v", res.ValidityMessages)
	}
	if len(res.SwarmClasses) != 2 {
		t.Fatalf("got %d class results", len(res.SwarmClasses))
	}
	var issued, completed int
	for _, c := range res.SwarmClasses {
		if c.QueriesCompleted > c.QueriesIssued {
			t.Errorf("class %s completed %d > issued %d", c.Name, c.QueriesCompleted, c.QueriesIssued)
		}
		if !c.Valid {
			t.Errorf("class %s invalid under a generous bound", c.Name)
		}
		issued += c.QueriesIssued
		completed += c.QueriesCompleted
	}
	if issued != res.QueriesIssued || completed != res.QueriesCompleted {
		t.Errorf("class sums (%d issued, %d completed) do not partition run totals (%d, %d)",
			issued, completed, res.QueriesIssued, res.QueriesCompleted)
	}
	// Lifetimes far shorter than the run force churn.
	if res.SwarmChurns == 0 {
		t.Error("no churn despite 15ms mean lifetime over a 20ms+ run")
	}
	if res.ServerScheduledQPS != float64(ts.SwarmSessions)*ts.SwarmSessionQPS {
		t.Errorf("scheduled QPS %v", res.ServerScheduledQPS)
	}
}

// An unreachable latency bound must invalidate the violating class and the
// run, and only the violating class.
func TestSwarmClassBoundViolation(t *testing.T) {
	qsl := newFakeQSL(64, 32)
	sut := newFakeSUT(2*time.Millisecond, true)
	ts := swarmTestSettings()
	ts.SwarmSessionLifetime = 0 // no churn noise
	ts.SwarmClasses = []SwarmClass{
		{Name: "impossible", Weight: 1, TargetLatency: time.Nanosecond, TargetPercentile: 0.99},
		{Name: "relaxed", Weight: 1, TargetLatency: time.Second, TargetPercentile: 0.9},
	}
	res, err := StartTest(sut, qsl, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Error("run valid despite an impossible class bound")
	}
	byName := map[string]SwarmClassResult{}
	for _, c := range res.SwarmClasses {
		byName[c.Name] = c
	}
	if byName["impossible"].Valid {
		t.Error("impossible class reported valid")
	}
	if !byName["relaxed"].Valid {
		t.Error("relaxed class reported invalid")
	}
}

// Accuracy mode sweeps the whole data set, as in every other scenario.
func TestSwarmAccuracyModeSweepsDataset(t *testing.T) {
	qsl := newFakeQSL(48, 8)
	sut := newFakeSUT(0, false)
	ts := swarmTestSettings()
	ts.Mode = AccuracyMode
	res, err := StartTest(sut, qsl, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued != 48 {
		t.Errorf("accuracy mode issued %d queries, want 48", res.QueriesIssued)
	}
	seen := map[int]bool{}
	for _, idx := range sut.seenIndices() {
		seen[idx] = true
	}
	if len(seen) != 48 {
		t.Errorf("accuracy mode touched %d distinct samples, want 48", len(seen))
	}
}
