package serve

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size-classed byte-buffer pools shared across the whole wire path: frame
// reads, payload encoding and frame writes on the server, and request
// writes and response reads on the client (backend.Remote imports these).
// This is the pooling pattern 100k-connection Go servers use — a sync.Pool
// per power-of-two size class, handing out *Buffer containers rather than
// raw slices so neither Acquire nor Release boxes a slice header — and it
// is what lets the steady-state swarm fan-out run at 0 allocs/op.
//
// Classes run from 64 B to maxFrameBytes (16 MiB); a request larger than
// the largest class (impossible for a legal frame) falls back to a plain
// allocation that Release discards.

const (
	bufPoolMinBits = 6  // smallest class: 64 B
	bufPoolMaxBits = 24 // largest class: 16 MiB == maxFrameBytes
	bufPoolClasses = bufPoolMaxBits - bufPoolMinBits + 1
)

// Buffer is a pooled byte buffer. B is valid until Release; it may be
// re-sliced and append-grown freely (Release files the buffer under the
// class its final capacity earns).
type Buffer struct {
	B     []byte
	class int8
}

var bufPools [bufPoolClasses]sync.Pool

// Pool observability: acquires/releases/news per op counters, exposed on the
// Prometheus scrape so the zero-allocation claim is checkable in production.
var (
	bufPoolGets  atomic.Uint64 // AcquireBuffer calls
	bufPoolPuts  atomic.Uint64 // ReleaseBuffer calls that re-pooled a buffer
	bufPoolMiss  atomic.Uint64 // acquires that had to allocate a fresh buffer
	bufPoolOvers atomic.Uint64 // oversize acquires served outside the pool
)

// BufferPoolStats is a point-in-time read of the pool counters.
type BufferPoolStats struct {
	Gets      uint64 `json:"gets"`
	Puts      uint64 `json:"puts"`
	Misses    uint64 `json:"misses"`
	Oversized uint64 `json:"oversized"`
}

// ReadBufferPoolStats returns the global pool counters.
func ReadBufferPoolStats() BufferPoolStats {
	return BufferPoolStats{
		Gets:      bufPoolGets.Load(),
		Puts:      bufPoolPuts.Load(),
		Misses:    bufPoolMiss.Load(),
		Oversized: bufPoolOvers.Load(),
	}
}

// bufClass maps a requested size to its class index, or -1 for oversize.
func bufClass(n int) int {
	if n <= 1<<bufPoolMinBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - bufPoolMinBits
	if c >= bufPoolClasses {
		return -1
	}
	return c
}

// AcquireBuffer returns a pooled buffer with len(B) == 0 and cap(B) >= n.
// Steady state it allocates nothing; release it with Buffer.Release.
func AcquireBuffer(n int) *Buffer {
	bufPoolGets.Add(1)
	c := bufClass(n)
	if c < 0 {
		bufPoolOvers.Add(1)
		return &Buffer{B: make([]byte, 0, n), class: -1}
	}
	if v := bufPools[c].Get(); v != nil {
		b := v.(*Buffer)
		b.B = b.B[:0]
		return b
	}
	bufPoolMiss.Add(1)
	return &Buffer{B: make([]byte, 0, 1<<(c+bufPoolMinBits)), class: int8(c)}
}

// Release files the buffer back into the pool class its capacity earns.
// The caller must not touch b or b.B afterwards.
func (b *Buffer) Release() {
	if b == nil || b.class < 0 {
		return
	}
	// Appends may have grown B past its class; re-classify by the largest
	// class the final capacity fully covers, so the pool never hands out a
	// buffer smaller than its class promises.
	c := bits.Len(uint(cap(b.B))) - 1 - bufPoolMinBits
	if c < 0 {
		return // shrunk below the smallest class — drop it
	}
	if c >= bufPoolClasses {
		c = bufPoolClasses - 1
	}
	b.class = int8(c)
	bufPoolPuts.Add(1)
	bufPools[c].Put(b)
}
