package loadgen

import (
	"testing"
	"time"
)

// TestDefaultSettingsTableV checks that the production defaults match the
// query requirements of Table V: 1,024 queries for single-stream, 270,336 for
// server and multistream (the 99th-percentile rounding of Table IV), a single
// 24,576-sample query for offline, and a 60-second minimum duration.
func TestDefaultSettingsTableV(t *testing.T) {
	ss := DefaultSettings(SingleStream)
	if ss.MinQueryCount != 1024 {
		t.Errorf("single-stream MinQueryCount = %d, want 1024", ss.MinQueryCount)
	}
	if ss.SingleStreamTargetPercentile != 0.90 {
		t.Errorf("single-stream percentile = %v, want 0.90", ss.SingleStreamTargetPercentile)
	}
	srv := DefaultSettings(Server)
	if srv.MinQueryCount != 270336 {
		t.Errorf("server MinQueryCount = %d, want 270336", srv.MinQueryCount)
	}
	if srv.ServerLatencyPercentile != 0.99 {
		t.Errorf("server percentile = %v, want 0.99", srv.ServerLatencyPercentile)
	}
	ms := DefaultSettings(MultiStream)
	if ms.MinQueryCount != 270336 {
		t.Errorf("multistream MinQueryCount = %d, want 270336", ms.MinQueryCount)
	}
	if ms.MultiStreamMaxSkipFraction != 0.01 {
		t.Errorf("multistream skip fraction = %v, want 0.01", ms.MultiStreamMaxSkipFraction)
	}
	off := DefaultSettings(Offline)
	if off.MinQueryCount != 1 {
		t.Errorf("offline MinQueryCount = %d, want 1", off.MinQueryCount)
	}
	if off.MinSampleCount != 24576 {
		t.Errorf("offline MinSampleCount = %d, want 24576", off.MinSampleCount)
	}
	for _, s := range AllScenarios() {
		if d := DefaultSettings(s).MinDuration; d != 60*time.Second {
			t.Errorf("%v MinDuration = %v, want 60s", s, d)
		}
	}
}

func TestSettingsValidate(t *testing.T) {
	valid := DefaultSettings(Server)
	if err := valid.Validate(); err != nil {
		t.Errorf("default server settings invalid: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*TestSettings)
	}{
		{"zero min queries", func(ts *TestSettings) { ts.MinQueryCount = 0 }},
		{"max below min", func(ts *TestSettings) { ts.MaxQueryCount = 5 }},
		{"negative duration", func(ts *TestSettings) { ts.MinDuration = -time.Second }},
		{"bad percentile", func(ts *TestSettings) { ts.SingleStreamTargetPercentile = 1.5 }},
		{"server zero qps", func(ts *TestSettings) { ts.ServerTargetQPS = 0 }},
		{"server zero latency bound", func(ts *TestSettings) { ts.ServerTargetLatency = 0 }},
		{"server bad percentile", func(ts *TestSettings) { ts.ServerLatencyPercentile = 0 }},
		{"bad accuracy sampling", func(ts *TestSettings) { ts.AccuracyLogSamplingRate = 2 }},
	}
	for _, c := range cases {
		ts := DefaultSettings(Server)
		c.mutate(&ts)
		if err := ts.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}

	ms := DefaultSettings(MultiStream)
	ms.MultiStreamSamplesPerQuery = 0
	if err := ms.Validate(); err == nil {
		t.Error("multistream zero samples per query: expected error")
	}
	ms = DefaultSettings(MultiStream)
	ms.MultiStreamArrivalInterval = 0
	if err := ms.Validate(); err == nil {
		t.Error("multistream zero interval: expected error")
	}
	off := DefaultSettings(Offline)
	off.MinSampleCount = 0
	if err := off.Validate(); err == nil {
		t.Error("offline zero sample count: expected error")
	}
	bad := DefaultSettings(SingleStream)
	bad.Scenario = Scenario(42)
	if err := bad.Validate(); err == nil {
		t.Error("unknown scenario: expected error")
	}
	bad = DefaultSettings(SingleStream)
	bad.Mode = Mode(9)
	if err := bad.Validate(); err == nil {
		t.Error("unknown mode: expected error")
	}
}

func TestScenarioAndModeStrings(t *testing.T) {
	names := map[Scenario]string{
		SingleStream: "SingleStream", MultiStream: "MultiStream",
		Server: "Server", Offline: "Offline", Swarm: "Swarm",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v.String() = %q", s, s.String())
		}
	}
	if Scenario(99).String() == "" {
		t.Error("unknown scenario should still stringify")
	}
	if PerformanceMode.String() != "Performance" || AccuracyMode.String() != "Accuracy" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still stringify")
	}
	if RandomWithReplacement.String() == "" || UniqueSweep.String() == "" || DuplicateSingle.String() == "" || SampleIndexPolicy(7).String() == "" {
		t.Error("sample index policy strings wrong")
	}
	if len(AllScenarios()) != 5 {
		t.Error("AllScenarios should list 5 scenarios")
	}
}
