package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormSInvKnownValues(t *testing.T) {
	cases := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.9999, 3.719016},
		{0.025, -1.959964},
		{0.005, -2.575829},
		{0.84134474, 1.0},
		{0.15865525, -1.0},
	}
	for _, c := range cases {
		got, err := NormSInv(c.p)
		if err != nil {
			t.Fatalf("NormSInv(%v): unexpected error %v", c.p, err)
		}
		if math.Abs(got-c.want) > 1e-5 {
			t.Errorf("NormSInv(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormSInvInvalidInput(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NormSInv(p); err == nil {
			t.Errorf("NormSInv(%v): expected error, got nil", p)
		}
	}
}

func TestNormSInvRoundTripProperty(t *testing.T) {
	// NormCDF(NormSInv(p)) == p for all p in (0,1).
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p <= 1e-9 || p >= 1-1e-9 {
			return true
		}
		x, err := NormSInv(p)
		if err != nil {
			return false
		}
		return math.Abs(NormCDF(x)-p) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormSInvMonotonicProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pa := 0.001 + 0.998*math.Abs(math.Mod(a, 1))
		pb := 0.001 + 0.998*math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		xa, err1 := NormSInv(pa)
		xb, err2 := NormSInv(pb)
		if err1 != nil || err2 != nil {
			return false
		}
		return xa <= xb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormCDFSymmetry(t *testing.T) {
	for _, x := range []float64{0, 0.5, 1, 2, 3.5} {
		if math.Abs(NormCDF(x)+NormCDF(-x)-1) > 1e-12 {
			t.Errorf("NormCDF(%v)+NormCDF(-%v) != 1", x, x)
		}
	}
}
