package model

import "fmt"

// ZooConfig configures the default model zoo used by the suite, the examples
// and the benches.
type ZooConfig struct {
	Classes   int // image classes shared by the classification models
	BoxClass  int // object classes for the detectors
	Vocab     int // translation vocabulary
	ImageSize int
	Seed      uint64
}

func (c *ZooConfig) normalize() {
	if c.Classes <= 1 {
		c.Classes = 10
	}
	if c.BoxClass <= 0 {
		c.BoxClass = 5
	}
	if c.Vocab < 8 {
		c.Vocab = 64
	}
	if c.ImageSize < 8 {
		c.ImageSize = 16
	}
}

// Zoo holds one instance of every reference model in the v0.5 suite, plus
// the wide-channel weight-streaming classifier (not a suite member; see
// ResNet50Wide).
type Zoo struct {
	ResNet50     *ImageClassifier
	MobileNetV1  *ImageClassifier
	SSDResNet34  *SSDDetector
	SSDMobileNet *SSDDetector
	GNMT         *GNMTMini
	WideResNet   *ImageClassifier
}

// NewZoo builds every reference model deterministically from cfg.Seed.
func NewZoo(cfg ZooConfig) (*Zoo, error) {
	cfg.normalize()
	resnet, err := NewResNet50Mini(ClassifierConfig{Classes: cfg.Classes, ImageSize: cfg.ImageSize, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("model: building %s: %w", ResNet50, err)
	}
	mobilenet, err := NewMobileNetV1Mini(ClassifierConfig{Classes: cfg.Classes, ImageSize: cfg.ImageSize, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("model: building %s: %w", MobileNetV1, err)
	}
	ssdRes, err := NewSSDResNet34Mini(DetectorConfig{Classes: cfg.BoxClass, ImageSize: cfg.ImageSize, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("model: building %s: %w", SSDResNet34, err)
	}
	ssdMob, err := NewSSDMobileNetMini(DetectorConfig{Classes: cfg.BoxClass, ImageSize: cfg.ImageSize, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("model: building %s: %w", SSDMobileNet, err)
	}
	gnmt, err := NewGNMTMini(TranslatorConfig{Vocab: cfg.Vocab, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("model: building %s: %w", GNMT, err)
	}
	wide, err := NewWideResNetMini(ClassifierConfig{Classes: cfg.Classes, ImageSize: cfg.ImageSize, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("model: building %s: %w", ResNet50Wide, err)
	}
	return &Zoo{
		ResNet50:     resnet,
		MobileNetV1:  mobilenet,
		SSDResNet34:  ssdRes,
		SSDMobileNet: ssdMob,
		GNMT:         gnmt,
		WideResNet:   wide,
	}, nil
}

// Infos returns the metadata of every model in the zoo keyed by name.
func (z *Zoo) Infos() map[Name]Info {
	return map[Name]Info{
		ResNet50:     z.ResNet50.Info(),
		MobileNetV1:  z.MobileNetV1.Info(),
		SSDResNet34:  z.SSDResNet34.Info(),
		SSDMobileNet: z.SSDMobileNet.Info(),
		GNMT:         z.GNMT.Info(),
		ResNet50Wide: z.WideResNet.Info(),
	}
}

// Weighted returns the model's weight-bearing view by name, for quantization.
func (z *Zoo) Weighted(n Name) (WeightedModel, error) {
	switch n {
	case ResNet50:
		return z.ResNet50, nil
	case MobileNetV1:
		return z.MobileNetV1, nil
	case SSDResNet34:
		return z.SSDResNet34, nil
	case SSDMobileNet:
		return z.SSDMobileNet, nil
	case GNMT:
		return z.GNMT, nil
	case ResNet50Wide:
		return z.WideResNet, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, n)
	}
}
