package harness

import (
	"math"
	"testing"
	"time"

	"mlperf/internal/core"
	"mlperf/internal/loadgen"
	"mlperf/internal/quantize"
	"mlperf/internal/simhw"
)

func quickOpts() BuildOptions {
	return BuildOptions{DatasetSamples: 48, Seed: 7, Workers: 2}
}

func TestBuildNativeClassification(t *testing.T) {
	a, err := BuildNative(core.ImageClassificationLight, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec.Task != core.ImageClassificationLight {
		t.Errorf("task = %s", a.Spec.Task)
	}
	if a.SUT == nil || a.QSL == nil || a.Dataset == nil {
		t.Fatal("assembly incomplete")
	}
	// The oracle calibration should land near the paper's reference quality
	// (71.676% for MobileNet) within sampling noise on a small data set.
	if math.Abs(a.ReferenceQuality-0.71676) > 0.15 {
		t.Errorf("reference quality %v far from the paper's 0.717", a.ReferenceQuality)
	}
	if a.QualityTarget >= a.ReferenceQuality || a.QualityTarget <= 0 {
		t.Errorf("quality target %v inconsistent with reference %v", a.QualityTarget, a.ReferenceQuality)
	}
}

func TestBuildNativeAllTasks(t *testing.T) {
	for _, task := range core.AllTasks() {
		opts := quickOpts()
		opts.DatasetSamples = 24
		a, err := BuildNative(task, opts)
		if err != nil {
			t.Fatalf("%s: %v", task, err)
		}
		if a.ReferenceQuality <= 0 {
			t.Errorf("%s: reference quality %v", task, a.ReferenceQuality)
		}
		if a.Info.Params <= 0 {
			t.Errorf("%s: model metadata missing", task)
		}
	}
}

func TestBuildNativeUnknownTask(t *testing.T) {
	if _, err := BuildNative("speech", quickOpts()); err == nil {
		t.Error("unknown task: expected error")
	}
}

func TestBuildNativeWithQuantization(t *testing.T) {
	opts := quickOpts()
	opts.Quantization = quantize.INT8
	a, err := BuildNative(core.ImageClassificationLight, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.QuantizationStats) == 0 {
		t.Error("quantization requested but no conversion stats recorded")
	}
	bad := quickOpts()
	bad.Quantization = quantize.Format("int2")
	if _, err := BuildNative(core.ImageClassificationLight, bad); err == nil {
		t.Error("unapproved format: expected error")
	}
}

func TestRunSingleStreamWithAccuracy(t *testing.T) {
	a, err := BuildNative(core.ImageClassificationLight, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	settings := QuickSettings(a.Spec, loadgen.SingleStream, 64)
	settings.MinDuration = 20 * time.Millisecond
	report, err := Run(a, RunOptions{Scenario: loadgen.SingleStream, Settings: &settings, RunAccuracy: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Performance == nil || report.Performance.QueriesIssued == 0 {
		t.Fatal("missing performance result")
	}
	if report.Performance.SingleStreamLatency <= 0 {
		t.Error("missing single-stream latency metric")
	}
	if report.Accuracy == nil {
		t.Fatal("missing accuracy report")
	}
	// The unquantized reference model must meet its own quality target.
	if !report.Accuracy.Pass {
		t.Errorf("FP32 reference failed its quality target: %s", report.Accuracy)
	}
	if !report.Valid() {
		t.Errorf("report invalid: perf=%v acc=%v", report.Performance.ValidityMessages, report.Accuracy)
	}
	if report.Accuracy.String() == "" {
		t.Error("empty accuracy summary")
	}
}

func TestRunOfflineTranslation(t *testing.T) {
	opts := quickOpts()
	opts.DatasetSamples = 24
	a, err := BuildNative(core.MachineTranslation, opts)
	if err != nil {
		t.Fatal(err)
	}
	settings := QuickSettings(a.Spec, loadgen.Offline, 1024)
	settings.MinDuration = 0
	settings.MinSampleCount = 24
	report, err := Run(a, RunOptions{Scenario: loadgen.Offline, Settings: &settings, RunAccuracy: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Performance.OfflineSamplesPerSec <= 0 {
		t.Error("missing offline throughput")
	}
	if report.Accuracy == nil || !report.Accuracy.Pass {
		t.Errorf("translation reference failed its own target: %v", report.Accuracy)
	}
}

func TestRunNilAssembly(t *testing.T) {
	if _, err := Run(nil, RunOptions{Scenario: loadgen.SingleStream}); err == nil {
		t.Error("nil assembly: expected error")
	}
}

func TestQuickSettings(t *testing.T) {
	spec, err := core.Spec(core.ImageClassificationHeavy)
	if err != nil {
		t.Fatal(err)
	}
	full := QuickSettings(spec, loadgen.Server, 1)
	if full.MinQueryCount != 270336 {
		t.Errorf("factor 1 should keep production settings, got %d", full.MinQueryCount)
	}
	quick := QuickSettings(spec, loadgen.Server, 1000)
	if quick.MinQueryCount != 270 {
		t.Errorf("scaled query count = %d, want 270", quick.MinQueryCount)
	}
	if quick.MinDuration != 60*time.Millisecond {
		t.Errorf("scaled duration = %v", quick.MinDuration)
	}
	if quick.ServerTargetLatency != spec.ServerLatencyBound {
		t.Error("latency bound must not be scaled")
	}
	offline := QuickSettings(spec, loadgen.Offline, 1<<20)
	if offline.MinSampleCount < 1 {
		t.Error("scaled sample count must stay positive")
	}
}

func TestSimulatedSubmission(t *testing.T) {
	platform, err := simhw.FindPlatform("dc-gpu-g1")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.Spec(core.ImageClassificationHeavy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SimulatedSubmission(platform, spec, simhw.SearchOptions{Queries: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.SingleStreamP90 <= 0 {
		t.Error("missing single-stream metric")
	}
	if m.MultiStreamStreams <= 0 {
		t.Error("data-center GPU should sustain at least one stream")
	}
	if m.ServerQPS <= 0 || m.OfflineThroughput <= 0 {
		t.Error("missing server/offline metrics")
	}
	ratio := m.ServerToOfflineRatio()
	if ratio <= 0 || ratio > 1 {
		t.Errorf("server-to-offline ratio %v outside (0,1]", ratio)
	}
}

func TestSimulatedSubmissionUnknownWorkload(t *testing.T) {
	platform, _ := simhw.FindPlatform("dc-gpu-g1")
	spec, _ := core.Spec(core.ImageClassificationHeavy)
	spec.ReferenceModel = "bert"
	if _, err := SimulatedSubmission(platform, spec, simhw.SearchOptions{Queries: 100}); err == nil {
		t.Error("unknown workload: expected error")
	}
}

// TestFigure6ShapeAcrossPlatforms spot-checks the Figure 6 relationship on
// two contrasting platforms: a latency-friendly CPU loses little throughput
// under the server constraint, while a batching-hungry accelerator loses
// more.
func TestFigure6ShapeAcrossPlatforms(t *testing.T) {
	spec, err := core.Spec(core.ImageClassificationHeavy)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := simhw.FindPlatform("server-cpu-c2")
	gpu, _ := simhw.FindPlatform("dc-gpu-g3")
	opts := simhw.SearchOptions{Queries: 4000, Seed: 9}
	cpuMetrics, err := SimulatedSubmission(cpu, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	gpuMetrics, err := SimulatedSubmission(gpu, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cpuMetrics.ServerToOfflineRatio() <= gpuMetrics.ServerToOfflineRatio() {
		t.Errorf("expected CPU ratio (%v) above wide-accelerator ratio (%v)",
			cpuMetrics.ServerToOfflineRatio(), gpuMetrics.ServerToOfflineRatio())
	}
}
