package simhw

import (
	"testing"
	"time"
)

func TestSimulateSingleStream(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	res, err := SimulateSingleStream(p, w, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 500 || res.Samples != 500 {
		t.Errorf("counts = %d/%d", res.Queries, res.Samples)
	}
	base, _ := p.ServiceTime(w, 1)
	if res.Latencies.P50 < base/2 || res.Latencies.P50 > base*2 {
		t.Errorf("median latency %v far from deterministic service time %v", res.Latencies.P50, base)
	}
	if res.Makespan <= 0 || res.Throughput <= 0 {
		t.Error("missing makespan/throughput")
	}
	if _, err := SimulateSingleStream(p, w, 0, 1); err == nil {
		t.Error("zero queries: expected error")
	}
}

func TestSimulateSingleStreamDeterministic(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	a, err := SimulateSingleStream(p, w, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSingleStream(p, w, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latencies.P90 != b.Latencies.P90 || a.Makespan != b.Makespan {
		t.Error("same-seed simulations differ")
	}
	c, err := SimulateSingleStream(p, w, 200, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan == c.Makespan {
		t.Error("different-seed simulations identical")
	}
}

func TestSimulateServerLowLoadMeetsBound(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	peak, _ := p.PeakThroughput(w)
	res, err := SimulateServer(p, w, peak/50, 100*time.Millisecond, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverBoundFrac > 0.01 {
		t.Errorf("light load violated the bound %v of the time", res.OverBoundFrac)
	}
	if res.Throughput <= 0 {
		t.Error("missing throughput")
	}
}

func TestSimulateServerOverloadViolatesBound(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	peak, _ := p.PeakThroughput(w)
	// Offered load well beyond capacity: queues grow without bound and the
	// tail blows out.
	res, err := SimulateServer(p, w, peak*3, 3*time.Millisecond, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverBoundFrac < 0.3 {
		t.Errorf("overload only violated the bound %v of the time", res.OverBoundFrac)
	}
	// Completed throughput cannot exceed the hardware's peak.
	if res.Throughput > peak*1.2 {
		t.Errorf("throughput %v exceeds peak %v", res.Throughput, peak)
	}
}

func TestSimulateServerErrors(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	if _, err := SimulateServer(p, w, 100, 0, 100, 1); err == nil {
		t.Error("zero bound: expected error")
	}
	if _, err := SimulateServer(p, w, 100, time.Second, 0, 1); err == nil {
		t.Error("zero queries: expected error")
	}
	if _, err := SimulateServer(p, w, 0, time.Second, 100, 1); err == nil {
		t.Error("zero qps: expected error")
	}
}

func TestSimulateOfflineApproachesPeak(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	peak, _ := p.PeakThroughput(w)
	res, err := SimulateOffline(p, w, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 0.6*peak {
		t.Errorf("offline throughput %v far below peak %v", res.Throughput, peak)
	}
	if res.Throughput > 1.3*peak {
		t.Errorf("offline throughput %v above peak %v", res.Throughput, peak)
	}
	if _, err := SimulateOffline(p, w, 0, 5); err == nil {
		t.Error("zero samples: expected error")
	}
}

// TestServerBelowOffline reproduces the central observation of Figure 6: for
// a batching-dependent accelerator, the best latency-bounded server
// throughput is below the offline throughput.
func TestServerBelowOffline(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	offline, err := OfflineThroughput(p, w, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The latency bound is of the same order as the full-batch service time,
	// so the server scenario cannot simply run at full batches: this is the
	// regime in which Figure 6's degradation appears.
	qps, err := MaxServerQPS(p, w, 400*time.Microsecond, 0.99, SearchOptions{Queries: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if qps <= 0 {
		t.Fatal("server search found no feasible rate")
	}
	if qps >= offline {
		t.Errorf("server QPS %v not below offline throughput %v", qps, offline)
	}
}

func TestSimulateMultiStream(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	res, err := SimulateMultiStream(p, w, 4, 50*time.Millisecond, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 500 {
		t.Errorf("queries = %d", res.Queries)
	}
	if res.Samples != 2000 {
		t.Errorf("samples = %d", res.Samples)
	}
	if res.SkippedIntervals != 0 {
		t.Errorf("fast platform skipped %d intervals", res.SkippedIntervals)
	}
	// A tiny platform asked for a huge stream count must skip.
	slow, _ := FindPlatform("embedded-dsp-m1")
	res2, err := SimulateMultiStream(slow, StandardWorkloads()["ssd-resnet34"], 64, 50*time.Millisecond, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SkippedIntervals == 0 {
		t.Error("overloaded multistream run should skip intervals")
	}
	if _, err := SimulateMultiStream(p, w, 0, time.Millisecond, 10, 1); err == nil {
		t.Error("zero streams: expected error")
	}
	if _, err := SimulateMultiStream(p, w, 1, 0, 10, 1); err == nil {
		t.Error("zero interval: expected error")
	}
	if _, err := SimulateMultiStream(p, w, 1, time.Millisecond, 0, 1); err == nil {
		t.Error("zero queries: expected error")
	}
}

func TestMaxServerQPSSearch(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	loose, err := MaxServerQPS(p, w, 100*time.Millisecond, 0.99, SearchOptions{Queries: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := MaxServerQPS(p, w, 2*time.Millisecond, 0.99, SearchOptions{Queries: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if loose <= 0 {
		t.Fatal("loose bound should admit traffic")
	}
	if tight > loose {
		t.Errorf("tighter bound produced higher QPS: %v > %v", tight, loose)
	}
	if _, err := MaxServerQPS(p, w, time.Millisecond, 1.5, SearchOptions{}); err == nil {
		t.Error("bad percentile: expected error")
	}
}

func TestMaxServerQPSInfeasibleBound(t *testing.T) {
	slow, _ := FindPlatform("embedded-dsp-m1")
	w := StandardWorkloads()["ssd-resnet34"]
	// The single-sample latency on this platform is far above 1ms, so no rate
	// can satisfy the bound.
	qps, err := MaxServerQPS(slow, w, time.Millisecond, 0.99, SearchOptions{Queries: 500, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if qps != 0 {
		t.Errorf("infeasible bound should yield 0 QPS, got %v", qps)
	}
}

func TestMaxMultiStreamStreamsSearch(t *testing.T) {
	fast, _ := FindPlatform("dc-gpu-g2")
	w := StandardWorkloads()["mobilenet-v1"]
	streams, err := MaxMultiStreamStreams(fast, w, 50*time.Millisecond, 0.01, SearchOptions{Queries: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if streams < 2 {
		t.Errorf("data-center GPU sustains only %d streams of MobileNet", streams)
	}
	slow, _ := FindPlatform("embedded-dsp-m1")
	heavy := StandardWorkloads()["ssd-resnet34"]
	slowStreams, err := MaxMultiStreamStreams(slow, heavy, 50*time.Millisecond, 0.01, SearchOptions{Queries: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if slowStreams >= streams {
		t.Errorf("embedded DSP (%d streams) should not beat data-center GPU (%d)", slowStreams, streams)
	}
	if _, err := MaxMultiStreamStreams(fast, w, 50*time.Millisecond, 1.5, SearchOptions{}); err == nil {
		t.Error("bad skip fraction: expected error")
	}
}
