package nn

import (
	"fmt"
	"math"

	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

// LSTMCell is a single long short-term memory cell. It processes one time
// step of a sequence: given the input vector and the previous hidden and cell
// states, it produces new hidden and cell states.
type LSTMCell struct {
	name       string
	InputSize  int
	HiddenSize int
	// Wx and Wh hold the four gate weight blocks (input, forget, cell, output)
	// stacked along the output dimension: shape (4*hidden) × input and
	// (4*hidden) × hidden respectively.
	Wx   *tensor.Tensor
	Wh   *tensor.Tensor
	Bias *tensor.Tensor // 4*hidden
}

// NewLSTMCell constructs an LSTM cell with deterministic weights from rng.
func NewLSTMCell(name string, inputSize, hiddenSize int, rng *stats.RNG) *LSTMCell {
	wx := tensor.MustNew(4*hiddenSize, inputSize)
	wh := tensor.MustNew(4*hiddenSize, hiddenSize)
	initHe(wx, float64(inputSize), rng)
	initHe(wh, float64(hiddenSize), rng)
	bias := tensor.MustNew(4 * hiddenSize)
	// Standard trick: bias the forget gate positive so early state persists.
	for i := hiddenSize; i < 2*hiddenSize; i++ {
		bias.Data()[i] = 1
	}
	return &LSTMCell{name: name, InputSize: inputSize, HiddenSize: hiddenSize, Wx: wx, Wh: wh, Bias: bias}
}

// Name returns the cell's identifier.
func (c *LSTMCell) Name() string { return c.name }

// ParamCount returns the number of learned parameters.
func (c *LSTMCell) ParamCount() int64 {
	return int64(c.Wx.Len() + c.Wh.Len() + c.Bias.Len())
}

// OpsPerStep returns the multiply-accumulate-equivalent operations per time
// step.
func (c *LSTMCell) OpsPerStep() int64 {
	return 2*int64(c.Wx.Len()) + 2*int64(c.Wh.Len()) + 8*int64(c.HiddenSize)
}

// Step advances the cell by one time step, allocating the new states on the
// heap. See StepScratch for the arena-backed fast path.
func (c *LSTMCell) Step(x, hPrev, cPrev *tensor.Tensor) (h, cState *tensor.Tensor, err error) {
	return c.StepScratch(x, hPrev, cPrev, nil)
}

// StepScratch advances the cell by one time step with the gate buffer and the
// new states allocated from s (heap when s is nil). The returned states are
// arena-backed and die at the arena's next Reset; the arithmetic is
// bit-identical to Step.
func (c *LSTMCell) StepScratch(x, hPrev, cPrev *tensor.Tensor, s *tensor.Scratch) (h, cState *tensor.Tensor, err error) {
	if x.Rank() != 1 || x.Dim(0) != c.InputSize {
		return nil, nil, fmt.Errorf("lstm %s: input shape %v, want [%d]", c.name, x.Shape(), c.InputSize)
	}
	if hPrev.Rank() != 1 || hPrev.Dim(0) != c.HiddenSize || cPrev.Rank() != 1 || cPrev.Dim(0) != c.HiddenSize {
		return nil, nil, fmt.Errorf("lstm %s: state shapes %v/%v, want [%d]", c.name, hPrev.Shape(), cPrev.Shape(), c.HiddenSize)
	}
	gx := rnnAlloc(s, 4*c.HiddenSize)
	if err := tensor.MatVecInto(gx, c.Wx, x); err != nil {
		return nil, nil, err
	}
	gh := rnnAlloc(s, 4*c.HiddenSize)
	if err := tensor.MatVecInto(gh, c.Wh, hPrev); err != nil {
		return nil, nil, err
	}
	if err := gx.Add(gh); err != nil {
		return nil, nil, err
	}
	if err := gx.Add(c.Bias); err != nil {
		return nil, nil, err
	}
	hs := c.HiddenSize
	gates := gx.Data()
	h = rnnAlloc(s, hs)
	cState = rnnAlloc(s, hs)
	for i := 0; i < hs; i++ {
		in := sigmoid(gates[i])
		forget := sigmoid(gates[hs+i])
		cell := tanh(gates[2*hs+i])
		out := sigmoid(gates[3*hs+i])
		cNew := forget*cPrev.Data()[i] + in*cell
		cState.Data()[i] = cNew
		h.Data()[i] = out * tanh(cNew)
	}
	return h, cState, nil
}

// rnnAlloc returns a length-n vector from the arena (not zeroed — every
// caller fully overwrites it) or a zeroed heap vector when s is nil.
func rnnAlloc(s *tensor.Scratch, n int) *tensor.Tensor {
	if s != nil {
		return s.Tensor(n)
	}
	return tensor.MustNew(n)
}

// sigmoid matches tensor.Sigmoid's per-element rounding (float32 in, float64
// math, float32 out) without allocating a one-element tensor per scalar.
func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// tanh matches tensor.Tanh's per-element rounding.
func tanh(v float32) float32 {
	return float32(math.Tanh(float64(v)))
}

// Embedding maps token ids to dense vectors.
type Embedding struct {
	name    string
	Vocab   int
	Dim     int
	Weights *tensor.Tensor // vocab × dim
}

// NewEmbedding constructs an embedding table with deterministic weights.
func NewEmbedding(name string, vocab, dim int, rng *stats.RNG) *Embedding {
	w := tensor.MustNew(vocab, dim)
	initHe(w, float64(dim), rng)
	return &Embedding{name: name, Vocab: vocab, Dim: dim, Weights: w}
}

// Lookup returns the embedding vector for the given token id.
func (e *Embedding) Lookup(token int) (*tensor.Tensor, error) {
	return e.LookupScratch(token, nil)
}

// LookupScratch returns the embedding vector for the given token id,
// allocated from s (heap when s is nil).
func (e *Embedding) LookupScratch(token int, s *tensor.Scratch) (*tensor.Tensor, error) {
	if token < 0 || token >= e.Vocab {
		return nil, fmt.Errorf("embedding %s: token %d outside vocabulary of %d", e.name, token, e.Vocab)
	}
	out := rnnAlloc(s, e.Dim)
	copy(out.Data(), e.Weights.Data()[token*e.Dim:(token+1)*e.Dim])
	return out, nil
}

// ParamCount returns the number of learned parameters.
func (e *Embedding) ParamCount() int64 { return int64(e.Weights.Len()) }

// Seq2Seq is a GNMT-style recurrent encoder–decoder with dot-product
// attention. It translates a sequence of source-token ids into a sequence of
// target-token ids with greedy decoding.
type Seq2Seq struct {
	name       string
	SrcEmbed   *Embedding
	DstEmbed   *Embedding
	Encoder    []*LSTMCell
	Decoder    []*LSTMCell
	Output     *Dense // hidden -> target vocabulary logits
	HiddenSize int
	BOS, EOS   int
	MaxLen     int
}

// Seq2SeqConfig configures NewSeq2Seq.
type Seq2SeqConfig struct {
	SrcVocab      int
	DstVocab      int
	EmbedDim      int
	HiddenSize    int
	EncoderLayers int
	DecoderLayers int
	MaxLen        int
	Seed          uint64
}

// NewSeq2Seq constructs the encoder–decoder model.
func NewSeq2Seq(name string, cfg Seq2SeqConfig) (*Seq2Seq, error) {
	if cfg.SrcVocab < 4 || cfg.DstVocab < 4 {
		return nil, fmt.Errorf("nn: seq2seq vocabularies must hold at least BOS/EOS plus tokens")
	}
	if cfg.EmbedDim <= 0 || cfg.HiddenSize <= 0 || cfg.EncoderLayers <= 0 || cfg.DecoderLayers <= 0 {
		return nil, fmt.Errorf("nn: seq2seq dimensions must be positive: %+v", cfg)
	}
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 32
	}
	rng := stats.NewRNG(cfg.Seed)
	m := &Seq2Seq{
		name:       name,
		SrcEmbed:   NewEmbedding(name+"/src_embed", cfg.SrcVocab, cfg.EmbedDim, rng),
		DstEmbed:   NewEmbedding(name+"/dst_embed", cfg.DstVocab, cfg.EmbedDim, rng),
		HiddenSize: cfg.HiddenSize,
		BOS:        0,
		EOS:        1,
		MaxLen:     cfg.MaxLen,
	}
	for i := 0; i < cfg.EncoderLayers; i++ {
		in := cfg.EmbedDim
		if i > 0 {
			in = cfg.HiddenSize
		}
		m.Encoder = append(m.Encoder, NewLSTMCell(fmt.Sprintf("%s/enc%d", name, i), in, cfg.HiddenSize, rng))
	}
	for i := 0; i < cfg.DecoderLayers; i++ {
		in := cfg.EmbedDim + cfg.HiddenSize // embedding concatenated with attention context
		if i > 0 {
			in = cfg.HiddenSize
		}
		m.Decoder = append(m.Decoder, NewLSTMCell(fmt.Sprintf("%s/dec%d", name, i), in, cfg.HiddenSize, rng))
	}
	m.Output = NewDense(name+"/proj", cfg.HiddenSize, cfg.DstVocab, false, rng)
	return m, nil
}

// Name returns the model's identifier.
func (m *Seq2Seq) Name() string { return m.name }

// ParamCount returns the total number of learned parameters.
func (m *Seq2Seq) ParamCount() int64 {
	total := m.SrcEmbed.ParamCount() + m.DstEmbed.ParamCount() + m.Output.ParamCount()
	for _, c := range m.Encoder {
		total += c.ParamCount()
	}
	for _, c := range m.Decoder {
		total += c.ParamCount()
	}
	return total
}

// OpsPerToken estimates multiply-accumulate-equivalent operations per output
// token (encoder amortized over a typical sentence plus decoder and
// attention).
func (m *Seq2Seq) OpsPerToken() int64 {
	var ops int64
	for _, c := range m.Encoder {
		ops += c.OpsPerStep()
	}
	for _, c := range m.Decoder {
		ops += c.OpsPerStep()
	}
	ops += 2 * int64(m.Output.Weights.Len())
	ops += 4 * int64(m.HiddenSize) * int64(m.MaxLen) // attention scores + context
	return ops
}

// Translate runs greedy decoding and returns the produced target tokens
// (excluding BOS/EOS). Every intermediate of the pass — embeddings, gate
// buffers, recurrent states, attention scores and contexts — comes from a
// pooled scratch arena, the same zero-steady-state-allocation discipline the
// CNN forward passes follow; only the token slice leaves the pass.
func (m *Seq2Seq) Translate(src []int) ([]int, error) {
	sc := tensor.GetScratch()
	defer tensor.PutScratch(sc)
	return m.translate(src, sc)
}

// TranslateScratch runs greedy decoding with intermediates allocated from the
// caller's arena (heap when sc is nil). The caller owns the arena and must
// Reset it between passes.
func (m *Seq2Seq) TranslateScratch(src []int, sc *tensor.Scratch) ([]int, error) {
	return m.translate(src, sc)
}

func (m *Seq2Seq) translate(src []int, sc *tensor.Scratch) ([]int, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("nn: %s: empty source sentence", m.name)
	}
	// Encode. Initial states are zero vectors; arena memory is not zeroed, so
	// they are cleared explicitly.
	encStates := make([]*tensor.Tensor, 0, len(src))
	h := make([]*tensor.Tensor, len(m.Encoder))
	c := make([]*tensor.Tensor, len(m.Encoder))
	for i := range m.Encoder {
		h[i] = rnnZero(sc, m.HiddenSize)
		c[i] = rnnZero(sc, m.HiddenSize)
	}
	for _, tok := range src {
		x, err := m.SrcEmbed.LookupScratch(tok, sc)
		if err != nil {
			return nil, err
		}
		cur := x
		for i, cell := range m.Encoder {
			var err error
			h[i], c[i], err = cell.StepScratch(cur, h[i], c[i], sc)
			if err != nil {
				return nil, err
			}
			cur = h[i]
		}
		encStates = append(encStates, cur)
	}

	// Decode greedily with dot-product attention over encoder states.
	dh := make([]*tensor.Tensor, len(m.Decoder))
	dc := make([]*tensor.Tensor, len(m.Decoder))
	for i := range m.Decoder {
		dh[i] = rnnClone(sc, h[len(h)-1])
		dc[i] = rnnClone(sc, c[len(c)-1])
	}
	out := make([]int, 0, m.MaxLen)
	prev := m.BOS
	for step := 0; step < m.MaxLen; step++ {
		emb, err := m.DstEmbed.LookupScratch(prev, sc)
		if err != nil {
			return nil, err
		}
		context, err := m.attend(dh[len(dh)-1], encStates, sc)
		if err != nil {
			return nil, err
		}
		// Concatenate embedding and attention context from the arena.
		cur := rnnAlloc(sc, emb.Len()+context.Len())
		copy(cur.Data(), emb.Data())
		copy(cur.Data()[emb.Len():], context.Data())
		for i, cell := range m.Decoder {
			dh[i], dc[i], err = cell.StepScratch(cur, dh[i], dc[i], sc)
			if err != nil {
				return nil, err
			}
			cur = dh[i]
		}
		logits, err := ForwardWith(m.Output, cur, sc)
		if err != nil {
			return nil, err
		}
		next := logits.ArgMax()
		if next == m.EOS {
			break
		}
		out = append(out, next)
		prev = next
	}
	return out, nil
}

// rnnZero returns a zeroed length-n vector from the arena (or heap).
func rnnZero(s *tensor.Scratch, n int) *tensor.Tensor {
	t := rnnAlloc(s, n)
	if s != nil {
		t.Fill(0)
	}
	return t
}

// rnnClone deep-copies t into the arena (or heap).
func rnnClone(s *tensor.Scratch, t *tensor.Tensor) *tensor.Tensor {
	if s != nil {
		return s.CloneTensor(t)
	}
	return t.Clone()
}

// attend computes a dot-product attention context vector over the encoder
// states for the given decoder hidden state.
func (m *Seq2Seq) attend(query *tensor.Tensor, encStates []*tensor.Tensor, sc *tensor.Scratch) (*tensor.Tensor, error) {
	scores := rnnAlloc(sc, len(encStates))
	for i, s := range encStates {
		var dot float32
		for j := 0; j < m.HiddenSize; j++ {
			dot += query.Data()[j] * s.Data()[j]
		}
		scores.Data()[i] = dot
	}
	// Softmax runs in place: scores is arena-backed and not reused afterwards.
	if err := tensor.SoftmaxInto(scores, scores); err != nil {
		return nil, err
	}
	weights := scores
	context := rnnZero(sc, m.HiddenSize)
	for i, s := range encStates {
		w := weights.Data()[i]
		for j := 0; j < m.HiddenSize; j++ {
			context.Data()[j] += w * s.Data()[j]
		}
	}
	return context, nil
}
