package backend

import (
	"testing"
	"time"

	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
	"mlperf/internal/stats"
)

// offlineSettings returns a small Offline run that issues exactly n samples.
func offlineSettings(n int) loadgen.TestSettings {
	s := loadgen.DefaultSettings(loadgen.Offline)
	s.MinSampleCount = n
	s.MinDuration = 0
	return s
}

// TestReplicaMetricsAcrossEpochs pins the epoch-merge accounting: a replica
// that crashes and rejoins must report the sum of its pre-crash epoch's last
// known counters and the restarted server's live counters — each epoch counted
// exactly once, neither erased by the restart nor double counted.
func TestReplicaMetricsAcrossEpochs(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	scfg := serve.Config{Engine: engine, Store: qsl, Workers: 2, BatchWait: time.Millisecond}
	srv, remote := startLoopback(t, scfg, RemoteConfig{
		RedialInitial: time.Millisecond, RedialMax: 10 * time.Millisecond, RecoverySeed: 5,
	})
	addr := srv.Addr()

	res, err := loadgen.StartTest(remote, qsl, offlineSettings(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponsesDropped != 0 {
		t.Fatalf("run 1 dropped %d responses", res.ResponsesDropped)
	}
	remote.Wait()

	// Bank the first epoch's counters in the client (ReplicaMetrics refreshes
	// lastSnap), then crash the server. The server completes requests before
	// writing responses, but poll anyway in case the final count lags.
	deadline := time.Now().Add(5 * time.Second)
	var before serve.Snapshot
	for time.Now().Before(deadline) {
		snaps, err := remote.ReplicaMetrics()
		if err != nil {
			t.Fatal(err)
		}
		before = snaps[0]
		if before.Completed >= 64 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if before.Completed != 64 {
		t.Fatalf("epoch 1 completed %d of 64", before.Completed)
	}

	if err := srv.Kill(); err != nil {
		t.Fatal(err)
	}
	for remote.DownReplicas() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if remote.DownReplicas() != 1 {
		t.Fatal("replica not marked down after kill")
	}

	// While down, the banked epoch still answers for the replica.
	snaps, err := remote.ReplicaMetrics()
	if err != nil {
		t.Fatalf("metrics with banked epoch only: %v", err)
	}
	if snaps[0].Completed != 64 {
		t.Fatalf("banked epoch reports %d completed, want 64", snaps[0].Completed)
	}

	cfg := scfg
	cfg.Addr = addr
	restarted, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restarted.Close() })
	for remote.DownReplicas() == 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if remote.DownReplicas() != 0 {
		t.Fatal("restarted replica never rejoined")
	}

	res, err = loadgen.StartTest(remote, qsl, offlineSettings(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponsesDropped != 0 {
		t.Fatalf("run 2 dropped %d responses", res.ResponsesDropped)
	}
	remote.Wait()

	var after serve.Snapshot
	for time.Now().Before(deadline) {
		snaps, err := remote.ReplicaMetrics()
		if err != nil {
			t.Fatal(err)
		}
		after = snaps[0]
		if after.Completed >= 128 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if after.Completed != 128 {
		t.Fatalf("epochs merged to %d completed, want exactly 128 (64 banked + 64 live)", after.Completed)
	}
	if after.Admitted != 128 {
		t.Fatalf("epochs merged to %d admitted, want exactly 128", after.Admitted)
	}

	// The merged server view carries the recovery record with one closed
	// interval for the crash.
	merged, err := remote.ServerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Recovery == nil {
		t.Fatal("merged snapshot carries no recovery record")
	}
	rec := merged.Recovery
	if rec.Rejoins != 1 || len(rec.DownIntervals) != 1 {
		t.Fatalf("recovery record: %+v, want 1 rejoin with 1 interval", rec)
	}
	if iv := rec.DownIntervals[0]; iv.End.IsZero() || iv.End.Before(iv.Start) {
		t.Fatalf("malformed closed interval: %+v", iv)
	}
}

// TestDownReplicasOpenInterval pins the still-down reporting: a replica that
// has not rejoined contributes an open interval (zero End) to Recovery and
// counts in DownReplicas.
func TestDownReplicasOpenInterval(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	srv, remote := startLoopback(t,
		serve.Config{Engine: engine, Store: qsl, Workers: 1},
		RemoteConfig{RedialInitial: time.Millisecond, RedialMax: 5 * time.Millisecond})
	if err := srv.Kill(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for remote.DownReplicas() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if remote.DownReplicas() != 1 {
		t.Fatal("replica not marked down")
	}
	rec := remote.Recovery()
	if len(rec.DownIntervals) != 1 {
		t.Fatalf("want 1 open interval, got %+v", rec.DownIntervals)
	}
	if iv := rec.DownIntervals[0]; !iv.End.IsZero() || iv.Start.IsZero() {
		t.Fatalf("open interval should have a start and no end: %+v", iv)
	}
	if rec.Rejoins != 0 {
		t.Fatalf("%d rejoins recorded with no restart", rec.Rejoins)
	}
	if d := rec.DownIntervals[0].Duration(); d <= 0 {
		t.Fatalf("open interval duration %v", d)
	}
}

// TestJitterDeterministic pins the backoff jitter: a fixed seed reproduces the
// exact delay sequence, and every delay lands in [d/2, d).
func TestJitterDeterministic(t *testing.T) {
	const d = 80 * time.Millisecond
	draw := func(seed uint64) []time.Duration {
		rng := stats.NewRNG(seed)
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = jitter(d, rng)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v for the same seed", i, a[i], b[i])
		}
		if a[i] < d/2 || a[i] >= d {
			t.Fatalf("draw %d: %v outside [%v, %v)", i, a[i], d/2, d)
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}
