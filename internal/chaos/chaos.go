// Package chaos is a deterministic fault-injection harness for the serving
// stack. It wraps net.Conn and net.Listener so that connections sever, stall,
// split, truncate or corrupt frames on a schedule drawn from a seeded RNG —
// the same seed always produces the same fault sequence, so a chaos test that
// exposes a recovery bug is a reproducible test, not a flake.
//
// The injector slots into both ends of the wire without either end knowing:
// serve.Config.WrapListener wraps the server's accepted connections, and
// backend.RemoteConfig.Dialer wraps the client's dialed ones. All faults are
// transport faults — the kind backend.Remote's redial supervisors, health
// probes and failover retries exist to absorb. Application-level misbehavior
// (wrong answers, protocol violations) is out of scope: a corrupted frame is
// delivered corrupted precisely so the reader's framing checks reject it and
// the connection dies, which is the fault being injected.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mlperf/internal/stats"
)

// Config sets the fault schedule. Each rate is a per-write probability in
// [0, 1]; a zero Config injects nothing. Faults are drawn independently per
// write in rate order (sever, truncate, corrupt, partial, delay) and at most
// one structural fault (sever/truncate/corrupt) fires per write.
type Config struct {
	// Seed drives every fault decision. Conn k of an injector draws from a
	// stream derived from Seed and k, so the fault schedule is a pure
	// function of the seed and the order connections are wrapped in — not of
	// wall-clock timing.
	Seed uint64

	// SeverRate closes the connection instead of writing: the peer sees a
	// clean EOF mid-stream, the writer an error on the next use.
	SeverRate float64
	// TruncateRate writes a prefix of the frame bytes and then closes the
	// connection: the peer reads a torn frame that fails length validation.
	TruncateRate float64
	// CorruptRate flips one byte of the write at a seeded offset before
	// sending it whole; framing or body validation on the peer rejects it.
	CorruptRate float64
	// PartialWriteRate splits the write in two and stalls PartialDelay
	// between the halves, exercising readers against torn-but-eventually-
	// complete frames (this one is survivable — no data is lost).
	PartialWriteRate float64
	// PartialDelay is the stall between the halves of a partial write
	// (default 1ms).
	PartialDelay time.Duration
	// DelayRate stalls the whole write by Delay before sending it intact.
	DelayRate float64
	// Delay is the stall for DelayRate faults (default 1ms).
	Delay time.Duration

	// MaxFaults, when positive, bounds the total number of destructive
	// faults (sever/truncate/corrupt) the injector fires across all of its
	// connections; after the budget is spent the injector passes everything
	// through. This keeps a soak test's fault count fixed regardless of how
	// much traffic flows around the faults.
	MaxFaults int64
}

// Injector applies a Config's fault schedule to the connections it wraps.
// One injector is shared by every connection of a deployment; its methods are
// safe for concurrent use.
type Injector struct {
	cfg      Config
	connSeq  atomic.Uint64 // wrapped-connection counter, keys the per-conn RNG
	faults   atomic.Int64  // destructive faults fired so far
	severed  atomic.Int64
	truncats atomic.Int64
	corrupts atomic.Int64
}

// New returns an injector for the given fault schedule.
func New(cfg Config) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = time.Millisecond
	}
	if cfg.PartialDelay <= 0 {
		cfg.PartialDelay = time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// Seed returns the injector's fault-schedule seed.
func (in *Injector) Seed() uint64 { return in.cfg.Seed }

// Faults returns how many destructive faults (severs, truncations,
// corruptions) have fired so far.
func (in *Injector) Faults() int64 { return in.faults.Load() }

// Stats returns the per-kind destructive fault counts fired so far.
func (in *Injector) Stats() (severed, truncated, corrupted int64) {
	return in.severed.Load(), in.truncats.Load(), in.corrupts.Load()
}

// budget consumes one unit of the destructive-fault budget; it reports false
// when MaxFaults is set and spent.
func (in *Injector) budget() bool {
	if in.cfg.MaxFaults <= 0 {
		in.faults.Add(1)
		return true
	}
	if n := in.faults.Add(1); n > in.cfg.MaxFaults {
		in.faults.Add(-1)
		return false
	}
	return true
}

// Conn wraps one connection with the injector's fault schedule. Each wrapped
// connection draws from its own deterministic stream, derived from the
// injector seed and the wrap order.
func (in *Injector) Conn(c net.Conn) net.Conn {
	k := in.connSeq.Add(1)
	return &faultConn{
		Conn: c,
		in:   in,
		rng:  stats.NewRNG(in.cfg.Seed ^ (k * 0x9e3779b97f4a7c15)),
	}
}

// Listener wraps a listener so every accepted connection carries the fault
// schedule; Addr and Close pass through to the wrapped listener. It is the
// shape serve.Config.WrapListener expects.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, in: in}
}

// Dialer wraps a dial function (net.DialTimeout-shaped, as
// backend.RemoteConfig.Dialer expects) so every dialed connection carries the
// fault schedule. A nil inner dialer uses net.DialTimeout.
func (in *Injector) Dialer(inner func(addr string, timeout time.Duration) (net.Conn, error)) func(addr string, timeout time.Duration) (net.Conn, error) {
	if inner == nil {
		inner = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := inner(addr, timeout)
		if err != nil {
			return nil, err
		}
		return in.Conn(c), nil
	}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// faultConn injects write-side faults. Reads pass through untouched: every
// fault a reader could see (torn frame, dead peer) is produced by faulting
// the writes of the connection's other end, so injecting on writes alone
// covers both directions when both ends are wrapped.
type faultConn struct {
	net.Conn
	in  *Injector
	rng *stats.RNG

	mu     sync.Mutex // serializes fault draws and the writes they shape
	downed bool
}

func (fc *faultConn) Write(p []byte) (int, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.downed {
		return 0, fmt.Errorf("chaos: connection severed")
	}
	cfg := &fc.in.cfg
	roll := fc.rng.Float64()

	// Destructive faults, in rate order; at most one per write.
	switch {
	case roll < cfg.SeverRate:
		if fc.in.budget() {
			fc.in.severed.Add(1)
			fc.downed = true
			fc.Conn.Close()
			return 0, fmt.Errorf("chaos: connection severed before %d-byte write", len(p))
		}
	case roll < cfg.SeverRate+cfg.TruncateRate:
		if fc.in.budget() && len(p) > 1 {
			fc.in.truncats.Add(1)
			fc.downed = true
			cut := 1 + fc.rng.Intn(len(p)-1)
			n, _ := fc.Conn.Write(p[:cut])
			fc.Conn.Close()
			return n, fmt.Errorf("chaos: write truncated at %d of %d bytes", cut, len(p))
		}
	case roll < cfg.SeverRate+cfg.TruncateRate+cfg.CorruptRate:
		if fc.in.budget() && len(p) > 0 {
			fc.in.corrupts.Add(1)
			mangled := make([]byte, len(p))
			copy(mangled, p)
			mangled[fc.rng.Intn(len(mangled))] ^= 0xff
			// The peer's framing checks will kill the connection; mark this
			// side down too so the writer stops trusting it immediately.
			fc.downed = true
			n, err := fc.Conn.Write(mangled)
			if err == nil {
				fc.Conn.Close()
				err = fmt.Errorf("chaos: frame corrupted (%d bytes)", len(p))
			}
			return n, err
		}
	}

	// Survivable faults: the bytes all arrive, just not promptly or whole.
	if fc.rng.Float64() < cfg.PartialWriteRate && len(p) > 1 {
		cut := 1 + fc.rng.Intn(len(p)-1)
		n, err := fc.Conn.Write(p[:cut])
		if err != nil {
			return n, err
		}
		time.Sleep(cfg.PartialDelay)
		m, err := fc.Conn.Write(p[cut:])
		return n + m, err
	}
	if fc.rng.Float64() < cfg.DelayRate {
		time.Sleep(cfg.Delay)
	}
	return fc.Conn.Write(p)
}
