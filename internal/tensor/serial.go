package tensor

import "fmt"

// This file retains the original single-threaded reference kernels. The
// public MatMul / Conv2D / DepthwiseConv2D entry points now run the blocked,
// parallel engine (gemm.go, ops.go); the *Serial variants here are the
// numerical ground truth the equivalence tests compare against, and a
// fallback for debugging kernel regressions. They are intentionally naive —
// plain nested loops in the canonical accumulation order — so their results
// are easy to reason about.

// MatMulSerial computes C = A × B with the naive row-scalar loop.
func MatMulSerial(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dimensions differ: %d vs %d", k, k2)
	}
	c := MustNew(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := c.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c, nil
}

// MatVecSerial computes y = A × x with the naive dot-product loop.
func MatVecSerial(a, x *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("tensor: MatVec requires rank-2 and rank-1 operands, got %v and %v", a.shape, x.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if k != x.shape[0] {
		return nil, fmt.Errorf("tensor: MatVec dimension mismatch: %d vs %d", k, x.shape[0])
	}
	y := MustNew(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		var sum float32
		for p := 0; p < k; p++ {
			sum += row[p] * x.data[p]
		}
		y.data[i] = sum
	}
	return y, nil
}

// Conv2DSerial convolves with the direct six-deep loop nest.
func Conv2DSerial(input, kernels, bias *Tensor, opts Conv2DOptions) (*Tensor, error) {
	g, err := conv2DGeometry(input, kernels, bias, opts)
	if err != nil {
		return nil, err
	}
	cin, h, w := g.cin, g.h, g.w
	cout, kh, kw := g.cout, g.kh, g.kw
	hOut, wOut := g.hOut, g.wOut
	out := MustNew(cout, hOut, wOut)
	for oc := 0; oc < cout; oc++ {
		var b float32
		if bias != nil {
			b = bias.data[oc]
		}
		for oy := 0; oy < hOut; oy++ {
			for ox := 0; ox < wOut; ox++ {
				sum := b
				for ic := 0; ic < cin; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*opts.Stride + ky - opts.Padding
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*opts.Stride + kx - opts.Padding
							if ix < 0 || ix >= w {
								continue
							}
							sum += input.data[(ic*h+iy)*w+ix] * kernels.data[((oc*cin+ic)*kh+ky)*kw+kx]
						}
					}
				}
				out.data[(oc*hOut+oy)*wOut+ox] = sum
			}
		}
	}
	return out, nil
}

// DepthwiseConv2DSerial convolves each channel with the direct loop nest.
func DepthwiseConv2DSerial(input, kernels, bias *Tensor, opts Conv2DOptions) (*Tensor, error) {
	g, err := depthwiseGeometry(input, kernels, bias, opts)
	if err != nil {
		return nil, err
	}
	c, h, w := g.c, g.h, g.w
	kh, kw := g.kh, g.kw
	hOut, wOut := g.hOut, g.wOut
	out := MustNew(c, hOut, wOut)
	for ch := 0; ch < c; ch++ {
		var b float32
		if bias != nil {
			b = bias.data[ch]
		}
		for oy := 0; oy < hOut; oy++ {
			for ox := 0; ox < wOut; ox++ {
				sum := b
				for ky := 0; ky < kh; ky++ {
					iy := oy*opts.Stride + ky - opts.Padding
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*opts.Stride + kx - opts.Padding
						if ix < 0 || ix >= w {
							continue
						}
						sum += input.data[(ch*h+iy)*w+ix] * kernels.data[(ch*kh+ky)*kw+kx]
					}
				}
				out.data[(ch*hOut+oy)*wOut+ox] = sum
			}
		}
	}
	return out, nil
}
