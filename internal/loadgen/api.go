// Package loadgen implements the MLPerf Inference Load Generator: the
// traffic generator that drives a system under test (SUT), measures latency
// and throughput, logs responses for accuracy checking, and determines
// whether a run satisfies the benchmark's validity requirements
// (Sections III-C, III-D and IV-B of the paper).
//
// Five scenarios are supported. Four are the paper's Table II evaluation
// scenarios — single-stream (one query at a time, 90th-percentile latency),
// multistream (N-sample queries at a fixed interval), server (Poisson
// arrivals under a latency bound) and offline (one query holding every
// sample). The fifth, Swarm, extends the server scenario to the
// datacenter-frontend shape the paper's single aggregate Poisson stream
// abstracts away: tens of thousands of simulated client sessions, each with
// its own deterministic Poisson arrival process, a finite lifetime, and
// reconnect churn, partitioned into traffic classes with separate latency
// targets. The aggregate arrival process is statistically the superposition
// of the per-session streams (so Swarm reduces to Server as sessions → 1),
// but validity is judged per class and the per-session schedules are each a
// pure function of (ScheduleSeed, session, incarnation) — independent of
// goroutine interleaving — so runs are reproducible at any fan-out.
//
// The package mirrors the architecture of the reference C++ LoadGen: it is
// decoupled from models, data sets and metrics. It talks to the SUT through
// the SUT interface (IssueQuery / FlushQueries) and to the data set through
// the QuerySampleLibrary interface, so new scenarios can be rolled out to all
// models and SUTs without touching submitter code.
package loadgen

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Scenario is one of the four evaluation scenarios of Table II, or the Swarm
// extension.
type Scenario int

// The scenarios.
const (
	// SingleStream issues one query at a time and waits for its completion;
	// the metric is 90th-percentile latency.
	SingleStream Scenario = iota
	// MultiStream issues a query of N samples at a fixed arrival interval,
	// skipping intervals while the previous query is in flight; the metric is
	// the number of streams sustainable under the latency bound.
	MultiStream
	// Server issues single-sample queries with Poisson inter-arrival times;
	// the metric is the achievable queries per second under the latency bound.
	Server
	// Offline issues one query containing every sample; the metric is
	// throughput in samples per second.
	Offline
	// Swarm issues single-sample queries from SwarmSessions concurrent
	// simulated client sessions, each with its own deterministic Poisson
	// arrival process, exponential lifetime and reconnect churn, partitioned
	// into traffic classes with separate latency targets; the metric is the
	// aggregate queries per second subject to every class's latency bound.
	Swarm
)

// String returns the scenario's canonical name.
func (s Scenario) String() string {
	switch s {
	case SingleStream:
		return "SingleStream"
	case MultiStream:
		return "MultiStream"
	case Server:
		return "Server"
	case Offline:
		return "Offline"
	case Swarm:
		return "Swarm"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// AllScenarios lists the scenarios in Table II order, then Swarm.
func AllScenarios() []Scenario {
	return []Scenario{SingleStream, MultiStream, Server, Offline, Swarm}
}

// Mode selects between the LoadGen's two primary operating modes.
type Mode int

const (
	// PerformanceMode subjects the SUT to enough samples to measure
	// steady-state performance without sweeping the whole data set.
	PerformanceMode Mode = iota
	// AccuracyMode sweeps the entire data set so the accuracy script can
	// verify the model meets its quality target.
	AccuracyMode
)

// String returns the mode's canonical name.
func (m Mode) String() string {
	switch m {
	case PerformanceMode:
		return "Performance"
	case AccuracyMode:
		return "Accuracy"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// QuerySample is one sample reference within a query.
type QuerySample struct {
	// ID uniquely identifies this sample instance within the run.
	ID uint64
	// Index is the sample's index in the query sample library.
	Index int
}

// Response is the SUT's answer for one query sample.
type Response struct {
	// SampleID echoes QuerySample.ID.
	SampleID uint64
	// Data is an opaque result payload (e.g. the predicted class or encoded
	// boxes); it is logged in accuracy mode and checked by the accuracy
	// script.
	Data []byte
	// Dropped marks a sample the SUT answered without a prediction —
	// rejected by admission control, expired past its deadline, or failed to
	// load/infer/encode. Dropped responses still complete their query (so
	// overloaded runs terminate instead of hanging) but are counted in
	// Result.ResponsesDropped, kept out of the accuracy log, and invalidate
	// the run: a SUT must not pass the benchmark by shedding or failing load.
	Dropped bool
}

// Query is a request for inference on one or more samples.
type Query struct {
	// ID uniquely identifies the query within the run.
	ID uint64
	// Samples lists the samples the SUT must run inference on. Neighbouring
	// samples are contiguous in the slice, mirroring the contiguous-memory
	// guarantee the benchmark gives for multistream and offline queries.
	Samples []QuerySample
	// Scheduled is the intended issue time as an offset from the start of the
	// timed run (the ideal schedule the scenario defines).
	Scheduled time.Duration
	// Issued is the wall-clock time the LoadGen actually issued the query.
	Issued time.Time
	// Class is the swarm traffic-class index the issuing session belongs to
	// (meaningful only in the Swarm scenario; 0 otherwise).
	Class int

	completeOnce sync.Once
	complete     func(q *Query, responses []Response)
	mu           sync.Mutex
	responded    map[uint64]bool
	responses    []Response
}

// Complete reports responses for samples of this query back to the LoadGen.
// The SUT must eventually report every sample exactly once; it may do so in
// one call or across several calls (e.g. when it batches internally).
func (q *Query) Complete(responses []Response) {
	q.mu.Lock()
	var fresh []Response
	for _, r := range responses {
		if q.responded == nil {
			q.responded = make(map[uint64]bool, len(q.Samples))
		}
		if q.responded[r.SampleID] {
			continue
		}
		q.responded[r.SampleID] = true
		fresh = append(fresh, r)
	}
	q.responses = append(q.responses, fresh...)
	done := len(q.responses) >= len(q.Samples)
	q.mu.Unlock()
	if done {
		q.completeOnce.Do(func() {
			if q.complete != nil {
				q.complete(q, q.responses)
			}
		})
	}
}

// SetCompletionHandler registers fn to run once every sample of the query
// has been responded to. The LoadGen installs its own handler on the queries
// it issues; this method exists for SUT-side intermediaries (e.g. dynamic
// batchers) that build internal queries of their own. It must be called
// before the query is handed to anything that may complete it.
func (q *Query) SetCompletionHandler(fn func(*Query, []Response)) { q.complete = fn }

// SUT is the system under test, as seen by the LoadGen (Figure 3).
type SUT interface {
	// Name identifies the SUT in logs and reports.
	Name() string
	// IssueQuery delivers a query to the SUT. The call should return quickly;
	// inference may proceed asynchronously. The SUT signals completion by
	// calling Complete on the query.
	IssueQuery(q *Query)
	// FlushQueries tells the SUT that no further queries will arrive in this
	// series and any internally batched work should be submitted.
	FlushQueries()
}

// QuerySampleLibrary is the LoadGen-facing view of the data set (Figure 3).
type QuerySampleLibrary interface {
	// Name identifies the data set.
	Name() string
	// TotalSampleCount is the total number of samples available.
	TotalSampleCount() int
	// PerformanceSampleCount is the number of samples that fit in the SUT's
	// performance-mode working set.
	PerformanceSampleCount() int
	// LoadSamplesToRAM asks the SUT/QSL to make the samples resident
	// (untimed).
	LoadSamplesToRAM(indices []int) error
	// UnloadSamplesFromRAM releases previously loaded samples (untimed).
	UnloadSamplesFromRAM(indices []int) error
}

// Errors returned by StartTest.
var (
	// ErrNilSUT indicates a missing system under test.
	ErrNilSUT = errors.New("loadgen: nil SUT")
	// ErrNilQSL indicates a missing query sample library.
	ErrNilQSL = errors.New("loadgen: nil query sample library")
)
