// Package quantize implements the post-training quantization flow the
// benchmark's closed division permits: converting FP32 reference weights to
// lower-precision formats using a small calibration data set, without
// retraining (Section III-B and IV-A). Quantization here is simulated
// ("fake quantization"): values are rounded to the target format's grid and
// stored back as float32, which reproduces the accuracy impact while keeping
// the execution path uniform.
package quantize

import (
	"fmt"
	"math"
	"sync"

	"mlperf/internal/tensor"
)

// Format is a numerical format from the benchmark's approved list
// (Section IV-A).
type Format string

// Approved numerical formats.
const (
	FP32     Format = "fp32"
	FP16     Format = "fp16"
	BFloat16 Format = "bfloat16"
	INT16    Format = "int16"
	UINT16   Format = "uint16"
	INT8     Format = "int8"
	UINT8    Format = "uint8"
	INT4     Format = "int4"
	FP11     Format = "fp11"
)

// ApprovedFormats lists every numerical format registered for the closed
// division in a stable order.
func ApprovedFormats() []Format {
	return []Format{FP32, FP16, BFloat16, INT16, UINT16, INT8, UINT8, INT4, FP11}
}

// integerLevels returns the number of signed quantization levels on each side
// of zero for integer formats, or 0 for non-integer formats.
func integerLevels(f Format) int {
	switch f {
	case INT4:
		return 7
	case INT8, UINT8:
		return 127
	case INT16, UINT16:
		return 32767
	default:
		return 0
	}
}

// mantissaBits returns the number of explicit mantissa bits for reduced
// floating-point formats, or -1 if the format is not a float format.
func mantissaBits(f Format) int {
	switch f {
	case FP32:
		return 23
	case FP16:
		return 10
	case BFloat16:
		return 7
	case FP11:
		return 5
	default:
		return -1
	}
}

// Valid reports whether f is an approved format.
func Valid(f Format) bool {
	return integerLevels(f) > 0 || mantissaBits(f) >= 0
}

// TensorStats records the per-tensor quantization parameters produced when a
// weight tensor is converted.
type TensorStats struct {
	Format   Format
	Scale    float64 // integer formats: float value of one quantization step
	MaxAbs   float64
	Elements int
	// MeanAbsError is the mean absolute round-trip error introduced by the
	// conversion, used by tests and the audit report.
	MeanAbsError float64
}

// Tensor quantizes t in place to the given format using per-tensor symmetric
// scaling and returns the conversion statistics.
func Tensor(t *tensor.Tensor, f Format) (TensorStats, error) {
	if !Valid(f) {
		return TensorStats{}, fmt.Errorf("quantize: format %q is not on the approved list", f)
	}
	stats := TensorStats{Format: f, Elements: t.Len(), MaxAbs: float64(t.MaxAbs())}
	if f == FP32 {
		return stats, nil
	}
	data := t.Data()
	var errSum float64
	if levels := integerLevels(f); levels > 0 {
		scale := stats.MaxAbs / float64(levels)
		if scale == 0 {
			scale = 1
		}
		stats.Scale = scale
		for i, v := range data {
			q := math.Round(float64(v) / scale)
			if q > float64(levels) {
				q = float64(levels)
			}
			if q < -float64(levels) {
				q = -float64(levels)
			}
			nv := float32(q * scale)
			errSum += math.Abs(float64(nv) - float64(v))
			data[i] = nv
		}
	} else {
		bits := mantissaBits(f)
		for i, v := range data {
			nv := truncateMantissa(v, bits)
			errSum += math.Abs(float64(nv) - float64(v))
			data[i] = nv
		}
	}
	if t.Len() > 0 {
		stats.MeanAbsError = errSum / float64(t.Len())
	}
	return stats, nil
}

// truncateMantissa rounds v to a float with the given number of mantissa
// bits (simulating FP16/bfloat16/FP11 storage).
func truncateMantissa(v float32, bits int) float32 {
	if bits >= 23 {
		return v
	}
	u := math.Float32bits(v)
	drop := uint(23 - bits)
	// Round to nearest even at the dropped boundary.
	round := uint32(1) << (drop - 1)
	u += round
	u &^= (uint32(1) << drop) - 1
	return math.Float32frombits(u)
}

// Model quantizes every weight tensor of a model in place and returns the
// per-tensor statistics.
func Model(weights []*tensor.Tensor, f Format) ([]TensorStats, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("quantize: model exposes no weight tensors")
	}
	out := make([]TensorStats, 0, len(weights))
	for i, w := range weights {
		if w == nil {
			return nil, fmt.Errorf("quantize: weight tensor %d is nil", i)
		}
		s, err := Tensor(w, f)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Calibrator accumulates activation ranges observed while running the model
// over the calibration data set MLPerf provides for each reference model.
// The recorded ranges are what a real INT8 deployment would use to choose
// activation scales.
type Calibrator struct {
	mu     sync.Mutex
	ranges map[string][2]float64 // name -> (min, max)
	seen   int
}

// NewCalibrator returns an empty calibrator.
func NewCalibrator() *Calibrator {
	return &Calibrator{ranges: make(map[string][2]float64)}
}

// Observe folds one named activation tensor into the running ranges.
func (c *Calibrator) Observe(name string, t *tensor.Tensor) error {
	if t == nil || t.Len() == 0 {
		return fmt.Errorf("quantize: cannot observe empty tensor %q", name)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range t.Data() {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.ranges[name]; ok {
		if r[0] < lo {
			lo = r[0]
		}
		if r[1] > hi {
			hi = r[1]
		}
	}
	c.ranges[name] = [2]float64{lo, hi}
	c.seen++
	return nil
}

// Observations returns how many tensors have been folded in.
func (c *Calibrator) Observations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen
}

// Range returns the observed (min, max) for the named activation.
func (c *Calibrator) Range(name string) (lo, hi float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.ranges[name]
	return r[0], r[1], ok
}

// Scale returns the symmetric INT8 activation scale for the named activation.
func (c *Calibrator) Scale(name string) (float64, error) {
	lo, hi, ok := c.Range(name)
	if !ok {
		return 0, fmt.Errorf("quantize: no calibration observations for %q", name)
	}
	m := math.Max(math.Abs(lo), math.Abs(hi))
	if m == 0 {
		return 1.0 / 127, nil
	}
	return m / 127, nil
}
