package harness

import (
	"fmt"
	"time"

	"mlperf/internal/accuracy"
	"mlperf/internal/core"
	"mlperf/internal/loadgen"
	"mlperf/internal/simhw"
)

// RunOptions configures Run.
type RunOptions struct {
	Scenario loadgen.Scenario
	// Settings overrides the production settings when non-nil; otherwise the
	// task's Table III/V settings are used.
	Settings *loadgen.TestSettings
	// RunAccuracy also executes an accuracy-mode pass and scores it.
	RunAccuracy bool
}

// RunReport bundles the results of one (task, scenario, SUT) evaluation.
type RunReport struct {
	Task        core.Task
	Scenario    loadgen.Scenario
	SUTName     string
	Performance *loadgen.Result
	Accuracy    *accuracy.Report
}

// Valid reports whether both the performance run and (if present) the
// accuracy check satisfied the benchmark's requirements.
func (r *RunReport) Valid() bool {
	if r.Performance == nil || !r.Performance.Valid {
		return false
	}
	if r.Accuracy != nil && !r.Accuracy.Pass {
		return false
	}
	return true
}

// Run executes one scenario against the assembly's SUT in performance mode
// and, optionally, in accuracy mode.
func Run(a *Assembly, opts RunOptions) (*RunReport, error) {
	if a == nil {
		return nil, fmt.Errorf("harness: nil assembly")
	}
	settings := a.Spec.Settings(opts.Scenario)
	if opts.Settings != nil {
		settings = *opts.Settings
	}
	settings.Scenario = opts.Scenario
	settings.Mode = loadgen.PerformanceMode

	perf, err := loadgen.StartTest(a.SUT, a.QSL, settings)
	if err != nil {
		return nil, fmt.Errorf("harness: performance run for %s/%v: %w", a.Spec.Task, opts.Scenario, err)
	}
	if a.observed != nil {
		a.observed.Wait()
		if errs := a.observed.Errors(); len(errs) > 0 {
			return nil, fmt.Errorf("harness: SUT reported %d inference errors, first: %w", len(errs), errs[0])
		}
	}
	report := &RunReport{Task: a.Spec.Task, Scenario: opts.Scenario, SUTName: a.SUT.Name(), Performance: perf}

	if opts.RunAccuracy {
		accSettings := settings
		accSettings.Mode = loadgen.AccuracyMode
		// Stream responses straight into the accuracy checker instead of
		// accumulating the full-dataset response log in memory before scoring.
		checker, err := accuracy.NewStreamChecker(a.Dataset, a.ReferenceQuality, a.QualityTarget)
		if err != nil {
			return nil, fmt.Errorf("harness: accuracy checker for %s: %w", a.Spec.Task, err)
		}
		accSettings.AccuracySink = checker.Add
		accRes, err := loadgen.StartTest(a.SUT, a.QSL, accSettings)
		if err != nil {
			return nil, fmt.Errorf("harness: accuracy run for %s/%v: %w", a.Spec.Task, opts.Scenario, err)
		}
		if accRes.ResponsesDropped > 0 {
			// Shed samples skew toward the slow/hard ones; scoring the
			// surviving subset would bias quality upward, so refuse.
			return nil, fmt.Errorf("harness: accuracy run for %s/%v dropped %d responses; quality cannot be scored on a shed subset",
				a.Spec.Task, opts.Scenario, accRes.ResponsesDropped)
		}
		if a.observed != nil {
			a.observed.Wait()
		}
		rep, err := checker.Report()
		if err != nil {
			return nil, fmt.Errorf("harness: scoring accuracy for %s: %w", a.Spec.Task, err)
		}
		report.Accuracy = &rep
	}
	return report, nil
}

// QuickSettings scales the production settings of a task/scenario down by the
// given factor so examples and tests finish quickly while exercising the same
// code paths. Factor 1 returns the production settings unchanged.
func QuickSettings(spec core.TaskSpec, s loadgen.Scenario, factor int) loadgen.TestSettings {
	ts := spec.Settings(s)
	if factor <= 1 {
		return ts
	}
	ts.MinQueryCount = maxInt(1, ts.MinQueryCount/factor)
	ts.MinDuration = ts.MinDuration / time.Duration(factor)
	if ts.MinSampleCount > 0 {
		ts.MinSampleCount = maxInt(1, ts.MinSampleCount/factor)
	}
	if ts.Scenario == loadgen.Swarm {
		// Shrink the session population but keep the aggregate offered load:
		// fewer sessions each issuing proportionally faster, so a scaled run
		// still exercises the multi-session machinery at the production rate.
		sessions := maxInt(1, ts.SwarmSessions/factor)
		ts.SwarmSessionQPS *= float64(ts.SwarmSessions) / float64(sessions)
		ts.SwarmSessions = sessions
		ts.SwarmSessionLifetime = ts.SwarmSessionLifetime / time.Duration(factor)
	}
	return ts
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScenarioMetrics holds one platform's reported metric for every scenario of
// a task, the unit of the paper's evaluation tables.
type ScenarioMetrics struct {
	Platform string
	Task     core.Task
	Model    string

	SingleStreamP90    time.Duration
	MultiStreamStreams int
	ServerQPS          float64
	OfflineThroughput  float64
}

// ServerToOfflineRatio returns the Figure 6 quantity: latency-bounded server
// throughput normalized to unconstrained offline throughput.
func (m ScenarioMetrics) ServerToOfflineRatio() float64 {
	if m.OfflineThroughput <= 0 {
		return 0
	}
	r := m.ServerQPS / m.OfflineThroughput
	if r > 1 {
		r = 1
	}
	return r
}

// SimulatedSubmission evaluates one simulated platform on one task across all
// four scenarios in virtual time, using the task's Table III constraints.
// This is the fast path the experiment harness uses to regenerate Figures 6
// and 8 over the whole platform catalogue.
func SimulatedSubmission(p simhw.Platform, spec core.TaskSpec, opts simhw.SearchOptions) (ScenarioMetrics, error) {
	workloads := simhw.StandardWorkloads()
	w, ok := workloads[string(spec.ReferenceModel)]
	if !ok {
		return ScenarioMetrics{}, fmt.Errorf("harness: no standard workload for model %s", spec.ReferenceModel)
	}
	if opts.Queries <= 0 {
		opts.Queries = 4096
	}

	out := ScenarioMetrics{Platform: p.Name, Task: spec.Task, Model: string(spec.ReferenceModel)}

	p90, err := simhw.SingleStreamP90(p, w, minInt(opts.Queries, 1024), opts.Seed)
	if err != nil {
		return ScenarioMetrics{}, err
	}
	out.SingleStreamP90 = p90

	streams, err := simhw.MaxMultiStreamStreams(p, w, spec.MultiStreamArrivalInterval, 0.01, simhw.SearchOptions{
		Queries: minInt(opts.Queries, 512), Seed: opts.Seed, Iterations: opts.Iterations,
	})
	if err != nil {
		return ScenarioMetrics{}, err
	}
	out.MultiStreamStreams = streams

	qps, err := simhw.MaxServerQPS(p, w, spec.ServerLatencyBound, spec.ServerLatencyPercentile, opts)
	if err != nil {
		return ScenarioMetrics{}, err
	}
	out.ServerQPS = qps

	tput, err := simhw.OfflineThroughput(p, w, maxInt(opts.Queries, 4096), opts.Seed)
	if err != nil {
		return ScenarioMetrics{}, err
	}
	out.OfflineThroughput = tput
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
