package harness

import (
	"fmt"

	"mlperf/internal/capacity"
	"mlperf/internal/serve"
)

// ActiveReplicas returns how many replica slots are currently in service.
func (d *LoopbackDeployment) ActiveReplicas() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, a := range d.active {
		if a {
			n++
		}
	}
	return n
}

// ReplicaActive reports whether slot i is administratively in service.
func (d *LoopbackDeployment) ReplicaActive(i int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return i >= 0 && i < len(d.active) && d.active[i]
}

// SpawnReplica brings slot i into service: a fresh server starts on the
// slot's original address and the slot is readmitted to routing. The
// client's redial supervisors discover the new server through the probe
// handshake and reopen barrier, exactly like a crashed replica rejoining —
// spawning is a capacity decision built from the recovery machinery, not a
// separate path. No-op for a slot already active.
func (d *LoopbackDeployment) SpawnReplica(i int) error {
	d.mu.Lock()
	if i < 0 || i >= len(d.active) {
		d.mu.Unlock()
		return fmt.Errorf("harness: no replica slot %d", i)
	}
	if d.active[i] {
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	if err := d.RestartReplica(i); err != nil {
		return err
	}
	if err := d.Remote.Readmit(i); err != nil {
		return err
	}
	d.mu.Lock()
	d.active[i] = true
	d.mu.Unlock()
	return nil
}

// RetireReplica takes slot i out of service gracefully, in the order that
// keeps every request accounted: first the router stops picking the slot
// (so no new request can race the drain into a reject), then the server
// drains — answering everything already admitted — and shuts down. The
// slot's redial supervisors keep watching the address; SpawnReplica brings
// it back. Refuses to retire the last active slot.
func (d *LoopbackDeployment) RetireReplica(i int) error {
	d.mu.Lock()
	if i < 0 || i >= len(d.active) {
		d.mu.Unlock()
		return fmt.Errorf("harness: no replica slot %d", i)
	}
	if !d.active[i] {
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	if err := d.Remote.Retire(i); err != nil {
		return err
	}
	srv := d.Replica(i)
	srv.Drain()
	srv.Close()
	d.mu.Lock()
	d.active[i] = false
	d.mu.Unlock()
	return nil
}

// loopbackFleet adapts a LoopbackDeployment to capacity.Fleet.
type loopbackFleet struct{ d *LoopbackDeployment }

func (f loopbackFleet) Slots() int         { return len(f.d.addrs) }
func (f loopbackFleet) Active(i int) bool  { return f.d.ReplicaActive(i) }
func (f loopbackFleet) Spawn(i int) error  { return f.d.SpawnReplica(i) }
func (f loopbackFleet) Retire(i int) error { return f.d.RetireReplica(i) }
func (f loopbackFleet) Snapshot(i int) (serve.Snapshot, error) {
	if !f.d.ReplicaActive(i) {
		return serve.Snapshot{}, fmt.Errorf("harness: replica slot %d is not active", i)
	}
	return f.d.Replica(i).Metrics(), nil
}

// Autoscale attaches a replica autoscaler to the deployment: it grows the
// fleet into standby slots under sustained pressure and drain-retires
// replicas when the fleet goes idle. The autoscaler is stopped by the
// deployment's Close (or earlier by its own Close).
func (d *LoopbackDeployment) Autoscale(cfg capacity.AutoscaleConfig) *capacity.Autoscaler {
	a := capacity.NewAutoscaler(loopbackFleet{d}, cfg)
	d.mu.Lock()
	d.closers = append(d.closers, a.Close)
	d.mu.Unlock()
	return a
}

// replicaPool adapts one replica slot to capacity.Pool. It resolves the
// slot's current server on every call, so a manager keeps working across
// kills, restarts and spawns.
type replicaPool struct {
	d   *LoopbackDeployment
	idx int
}

func (p *replicaPool) srv() *serve.Server { return p.d.Replica(p.idx) }

func (p *replicaPool) Models() []string { return p.srv().Models() }

func (p *replicaPool) ModelMetrics(model string) (serve.Snapshot, error) {
	return p.srv().ModelMetrics(model)
}

func (p *replicaPool) Limits(model string) (serve.Limits, error) {
	return p.srv().Limits(model)
}

func (p *replicaPool) Resize(model string, req serve.ResizeRequest) ([]serve.ResizeEvent, error) {
	return p.srv().Resize(model, req)
}

// ManageCapacity attaches one capacity manager per replica slot, each
// driving that replica's live worker/queue limits from its observed load.
// Managers survive replica restarts (they resolve the slot's current server
// per call) and are stopped by the deployment's Close.
func (d *LoopbackDeployment) ManageCapacity(cfg capacity.Config) []*capacity.Manager {
	managers := make([]*capacity.Manager, len(d.addrs))
	for i := range d.addrs {
		m := capacity.NewManager(&replicaPool{d: d, idx: i}, cfg)
		managers[i] = m
		d.mu.Lock()
		d.closers = append(d.closers, m.Close)
		d.mu.Unlock()
	}
	return managers
}
