package core

import (
	"testing"
	"time"

	"mlperf/internal/loadgen"
	"mlperf/internal/model"
)

func TestSuiteHasFiveTasks(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite has %d tasks, want 5", len(suite))
	}
	seenModels := map[model.Name]bool{}
	for _, spec := range suite {
		if spec.ReferenceModel == "" || spec.DatasetName == "" || spec.QualityMetric == "" {
			t.Errorf("%s: incomplete spec %+v", spec.Task, spec)
		}
		if seenModels[spec.ReferenceModel] {
			t.Errorf("model %s used by more than one task", spec.ReferenceModel)
		}
		seenModels[spec.ReferenceModel] = true
	}
}

// TestTableIIIConstraints verifies the latency constraints of Table III.
func TestTableIIIConstraints(t *testing.T) {
	want := map[Task]struct {
		arrival time.Duration
		qos     time.Duration
	}{
		ImageClassificationHeavy: {50 * time.Millisecond, 15 * time.Millisecond},
		ImageClassificationLight: {50 * time.Millisecond, 10 * time.Millisecond},
		ObjectDetectionHeavy:     {66 * time.Millisecond, 100 * time.Millisecond},
		ObjectDetectionLight:     {50 * time.Millisecond, 10 * time.Millisecond},
		MachineTranslation:       {100 * time.Millisecond, 250 * time.Millisecond},
	}
	for task, w := range want {
		spec, err := Spec(task)
		if err != nil {
			t.Fatal(err)
		}
		if spec.MultiStreamArrivalInterval != w.arrival {
			t.Errorf("%s: multistream arrival = %v, want %v", task, spec.MultiStreamArrivalInterval, w.arrival)
		}
		if spec.ServerLatencyBound != w.qos {
			t.Errorf("%s: server QoS = %v, want %v", task, spec.ServerLatencyBound, w.qos)
		}
	}
}

// TestTableVQueryRequirements verifies the query counts of Table V.
func TestTableVQueryRequirements(t *testing.T) {
	for _, spec := range Suite() {
		if spec.SingleStreamQueries != 1024 {
			t.Errorf("%s: single-stream queries = %d, want 1024", spec.Task, spec.SingleStreamQueries)
		}
		if spec.OfflineSamples != 24576 {
			t.Errorf("%s: offline samples = %d, want 24576", spec.Task, spec.OfflineSamples)
		}
		if spec.Task == MachineTranslation {
			if spec.ServerQueries != 90112 {
				t.Errorf("translation server queries = %d, want 90112 (90K)", spec.ServerQueries)
			}
		} else {
			if spec.ServerQueries != 270336 {
				t.Errorf("%s: server queries = %d, want 270336 (270K)", spec.Task, spec.ServerQueries)
			}
			if spec.MultiStreamQueries != 270336 {
				t.Errorf("%s: multistream queries = %d, want 270336", spec.Task, spec.MultiStreamQueries)
			}
		}
	}
}

// TestServerPercentiles verifies the tail-latency percentiles: 99% for vision
// tasks, 97% for translation (Section III-C).
func TestServerPercentiles(t *testing.T) {
	for _, spec := range Suite() {
		want := 0.99
		if spec.Task == MachineTranslation {
			want = 0.97
		}
		if spec.ServerLatencyPercentile != want {
			t.Errorf("%s: percentile = %v, want %v", spec.Task, spec.ServerLatencyPercentile, want)
		}
	}
}

func TestMobileNetTargetRatio(t *testing.T) {
	spec, err := Spec(ImageClassificationLight)
	if err != nil {
		t.Fatal(err)
	}
	if spec.TargetRatio != 0.98 {
		t.Errorf("MobileNet target ratio = %v, want 0.98 (Section III-B)", spec.TargetRatio)
	}
	if spec.QualityTarget(0.71676) <= 0.70 || spec.QualityTarget(0.71676) >= 0.71 {
		t.Errorf("MobileNet quality target = %v, want ~0.702", spec.QualityTarget(0.71676))
	}
}

func TestSpecUnknownTask(t *testing.T) {
	if _, err := Spec("speech-recognition"); err == nil {
		t.Error("unknown task: expected error")
	}
}

func TestTaskForModel(t *testing.T) {
	task, err := TaskForModel(model.GNMT)
	if err != nil {
		t.Fatal(err)
	}
	if task != MachineTranslation {
		t.Errorf("TaskForModel(GNMT) = %s", task)
	}
	if _, err := TaskForModel("bert"); err == nil {
		t.Error("unknown model: expected error")
	}
}

func TestSettingsPerScenario(t *testing.T) {
	spec, err := Spec(ObjectDetectionHeavy)
	if err != nil {
		t.Fatal(err)
	}
	ss := spec.Settings(loadgen.SingleStream)
	if ss.MinQueryCount != 1024 || ss.Scenario != loadgen.SingleStream {
		t.Errorf("single-stream settings wrong: %+v", ss)
	}
	ms := spec.Settings(loadgen.MultiStream)
	if ms.MultiStreamArrivalInterval != 66*time.Millisecond {
		t.Errorf("multistream interval = %v", ms.MultiStreamArrivalInterval)
	}
	srv := spec.Settings(loadgen.Server)
	if srv.ServerTargetLatency != 100*time.Millisecond || srv.ServerLatencyPercentile != 0.99 {
		t.Errorf("server settings wrong: %+v", srv)
	}
	if srv.MinQueryCount != 270336 {
		t.Errorf("server min queries = %d", srv.MinQueryCount)
	}
	off := spec.Settings(loadgen.Offline)
	if off.MinSampleCount != 24576 {
		t.Errorf("offline samples = %d", off.MinSampleCount)
	}
	for _, s := range loadgen.AllScenarios() {
		if err := spec.Settings(s).Validate(); err != nil {
			t.Errorf("%v settings do not validate: %v", s, err)
		}
	}
}

// TestQueryRequirementConsistency cross-checks Table V against Equation 2:
// the 99th-percentile tasks need 270,336 queries and the 97th-percentile
// translation task needs fewer.
func TestQueryRequirementConsistency(t *testing.T) {
	vision, err := Spec(ImageClassificationHeavy)
	if err != nil {
		t.Fatal(err)
	}
	req, err := vision.QueryRequirementFor(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if req.Rounded != vision.ServerQueries {
		t.Errorf("recomputed requirement %d != Table V %d", req.Rounded, vision.ServerQueries)
	}
	translation, err := Spec(MachineTranslation)
	if err != nil {
		t.Fatal(err)
	}
	treq, err := translation.QueryRequirementFor(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if treq.Rounded >= req.Rounded {
		t.Errorf("translation requirement %d should be below vision requirement %d", treq.Rounded, req.Rounded)
	}
	if treq.Rounded != translation.ServerQueries {
		t.Errorf("translation recomputed requirement %d != Table V %d", treq.Rounded, translation.ServerQueries)
	}
}

func TestScenarioDescriptions(t *testing.T) {
	for _, s := range loadgen.AllScenarios() {
		if ScenarioMetric(s) == "unknown" || ScenarioExample(s) == "unknown" {
			t.Errorf("missing Table II description for %v", s)
		}
	}
	if ScenarioMetric(loadgen.Scenario(42)) != "unknown" {
		t.Error("unknown scenario should map to unknown metric")
	}
	if ScenarioExample(loadgen.Scenario(42)) != "unknown" {
		t.Error("unknown scenario should map to unknown example")
	}
}
