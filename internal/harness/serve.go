package harness

import (
	"fmt"
	"sync"

	"mlperf/internal/backend"
	"mlperf/internal/chaos"
	"mlperf/internal/serve"
)

// ServeOptions configures ServeLoopback. Zero fields inherit the assembly:
// each server replica serves the assembly's engine from its QSL, and the
// client dials the freshly bound addresses.
type ServeOptions struct {
	// Replicas is how many loopback servers to deploy (default 1). Every
	// replica serves the same engine and data set, and the client fans out
	// over all of them with least-in-flight routing — outputs stay
	// bit-identical because the replicas are identical by construction.
	Replicas int
	// Standby adds replica slots that are configured but not serving: each
	// binds once to learn its loopback address, then shuts down, and the
	// client (forced into TolerateDown mode) starts it as a down, retired
	// slot whose redial supervisors wait for a server to appear.
	// SpawnReplica — or the capacity autoscaler — brings a standby slot
	// into service; until then it costs one goroutine and no sockets.
	Standby int
	// Server configures each serve.Server. Engine and Store are filled in
	// from the assembly when unset. Addr must stay empty when Replicas > 1
	// (each replica binds its own kernel-assigned loopback port).
	Server serve.Config
	// Client configures the backend.Remote that drives the fleet. Addr/Addrs
	// are always overwritten with the servers' bound addresses.
	Client backend.RemoteConfig
	// Chaos, when set, threads the fault injector through both ends of every
	// wire: each replica's listener is wrapped (server→client writes can
	// fault) and the client's dialer is wrapped (client→server writes can
	// fault), unless the corresponding hook is already set explicitly. The
	// injector's seeded schedule makes the whole deployment's fault sequence
	// reproducible.
	Chaos *chaos.Injector
}

// LoopbackDeployment is a running fleet of serve.Servers with a connected
// Remote SUT wired into a derived Assembly: the same task, data set, settings
// and quality targets, but inference crossing a real network boundary and
// fanned out over N replicas. KillReplica and RestartReplica turn it into a
// fault-injection rig: a replica can crash mid-run and come back on the same
// address, exercising the client's redial, probe and rejoin machinery.
type LoopbackDeployment struct {
	// Assembly mirrors the source assembly with SUT swapped for the Remote.
	Assembly *Assembly
	// Server is the first replica, kept for single-replica callers.
	Server *serve.Server
	// Remote is the SUT client (also reachable as Assembly.SUT).
	Remote *backend.Remote

	// mu guards Servers against concurrent kill/restart/metrics access.
	mu sync.Mutex
	// Servers is the whole replica fleet in address order. Access it through
	// Replica/ReplicaMetrics when kills or restarts may be in flight.
	Servers []*serve.Server
	// scfg and addrs remember how to rebuild a killed replica on its
	// original address.
	scfg  serve.Config
	addrs []string
	// active[i] tracks whether slot i is administratively in service
	// (standby and retired slots are not). Guarded by mu.
	active []bool
	// closers stops capacity managers and autoscalers attached to the
	// deployment, run first by Close. Guarded by mu.
	closers []func()
}

// Close stops any attached capacity managers and autoscalers, disconnects
// the client, and shuts every replica down.
func (d *LoopbackDeployment) Close() error {
	d.mu.Lock()
	var closers []func()
	closers = append(closers, d.closers...)
	d.closers = nil
	d.mu.Unlock()
	for _, stop := range closers {
		stop()
	}
	cerr := d.Remote.Close()
	d.mu.Lock()
	servers := append([]*serve.Server(nil), d.Servers...)
	d.mu.Unlock()
	var serr error
	for _, srv := range servers {
		if err := srv.Close(); err != nil && serr == nil {
			serr = err
		}
	}
	if cerr != nil {
		return cerr
	}
	return serr
}

// Replica returns replica i's current server (which changes on restart).
func (d *LoopbackDeployment) Replica(i int) *serve.Server {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Servers[i]
}

// Addrs returns the fleet's bound addresses in replica order; a killed
// replica keeps its address, since a restart re-binds the same one.
func (d *LoopbackDeployment) Addrs() []string {
	return append([]string(nil), d.addrs...)
}

// KillReplica crashes replica i: its listener and every connection close
// immediately and queued work is abandoned, exactly as if the process died.
// The client's supervisors take it from there; RestartReplica brings the
// replica back on the same address.
func (d *LoopbackDeployment) KillReplica(i int) error {
	return d.Replica(i).Kill()
}

// DrainReplica gracefully retires replica i: it stops admitting, answers
// everything already queued, and keeps answering probes with ProbeDraining so
// the client will not readmit it until it is restarted.
func (d *LoopbackDeployment) DrainReplica(i int) {
	d.Replica(i).Drain()
}

// RestartReplica starts a fresh server for replica i on its original
// address (the previous server must have been killed or closed first — the
// bind fails otherwise). The client's redial supervisors discover it, probe
// it and re-join it to routing on their own.
func (d *LoopbackDeployment) RestartReplica(i int) error {
	d.mu.Lock()
	cfg := d.scfg
	cfg.Addr = d.addrs[i]
	d.mu.Unlock()
	srv, err := serve.New(cfg)
	if err != nil {
		return fmt.Errorf("harness: restarting replica %d on %s: %w", i, cfg.Addr, err)
	}
	d.mu.Lock()
	d.Servers[i] = srv
	if i == 0 {
		d.Server = srv
	}
	d.mu.Unlock()
	return nil
}

// ReplicaMetrics returns each replica's merged metrics snapshot, read
// directly from the in-process servers (in Servers order). A restarted
// replica reports its current (post-restart) server's counters; the client's
// Remote.ReplicaMetrics is the view that folds crashed epochs back in.
func (d *LoopbackDeployment) ReplicaMetrics() []serve.Snapshot {
	d.mu.Lock()
	servers := append([]*serve.Server(nil), d.Servers...)
	d.mu.Unlock()
	snaps := make([]serve.Snapshot, len(servers))
	for i, srv := range servers {
		snaps[i] = srv.Metrics()
	}
	return snaps
}

// ServeLoopback deploys the assembly's engine behind a fleet of loopback
// serve.Servers and returns a derived assembly whose SUT is a backend.Remote
// fanning out over all of them, so any scenario the source assembly can run
// in-process can also run over the wire — same data, same settings,
// bit-identical outputs — for side-by-side comparison. The caller must Close
// the deployment when done.
func (a *Assembly) ServeLoopback(opts ServeOptions) (*LoopbackDeployment, error) {
	if a.Engine == nil {
		return nil, fmt.Errorf("harness: assembly has no engine to serve")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	scfg := opts.Server
	if scfg.Engine == nil && len(scfg.Models) == 0 {
		scfg.Engine = a.Engine
	}
	if scfg.Store == nil {
		scfg.Store = a.QSL
	}
	if scfg.Addr != "" && opts.Replicas > 1 {
		return nil, fmt.Errorf("harness: a fixed server address cannot host %d replicas", opts.Replicas)
	}
	if opts.Chaos != nil && scfg.WrapListener == nil {
		scfg.WrapListener = opts.Chaos.Listener
	}

	if opts.Standby < 0 {
		opts.Standby = 0
	}

	var (
		servers []*serve.Server
		addrs   []string
		active  []bool
	)
	closeAll := func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
	for i := 0; i < opts.Replicas+opts.Standby; i++ {
		srv, err := serve.New(scfg)
		if err != nil {
			closeAll()
			return nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
		standby := i >= opts.Replicas
		active = append(active, !standby)
		if standby {
			// A standby slot only existed to learn its address; shut it down
			// so the slot starts down and the client's supervisors own it.
			srv.Close()
		}
	}

	rcfg := opts.Client
	rcfg.Addr = ""
	rcfg.Addrs = addrs
	if rcfg.Name == "" {
		rcfg.Name = fmt.Sprintf("%s@%dx(%s)", a.SUT.Name(), len(addrs), addrs[0])
	}
	if opts.Chaos != nil && rcfg.Dialer == nil {
		rcfg.Dialer = opts.Chaos.Dialer(nil)
	}
	if opts.Standby > 0 {
		rcfg.TolerateDown = true
	}
	remote, err := backend.NewRemote(rcfg)
	if err != nil {
		closeAll()
		return nil, err
	}
	for i := opts.Replicas; i < opts.Replicas+opts.Standby; i++ {
		if err := remote.Retire(i); err != nil {
			remote.Close()
			closeAll()
			return nil, err
		}
	}
	derived := *a
	derived.SUT = remote
	derived.observed = remote
	return &LoopbackDeployment{
		Assembly: &derived,
		Server:   servers[0],
		Servers:  servers,
		Remote:   remote,
		scfg:     scfg,
		addrs:    addrs,
		active:   active,
	}, nil
}
