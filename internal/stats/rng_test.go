package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(19)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential sample negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(29)
	child := parent.Fork()
	// The child stream must not replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked stream matches parent %d/100 times", same)
	}
}
