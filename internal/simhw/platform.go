// Package simhw models the systems under test of the paper's evaluation.
// The original submissions ran on proprietary CPUs, GPUs, DSPs, FPGAs and
// ASICs; since that hardware is unavailable, this package provides a
// parametric performance model (per-sample service time, batching-efficiency
// curve, parallel execution units, latency jitter) plus a catalogue of
// platform classes spanning the paper's reported four-orders-of-magnitude
// performance range (Section VI-D), and a discrete-event queue simulator that
// reproduces the scenario dynamics (batching under a latency bound, interval
// skipping, offline saturation) in virtual time.
package simhw

import (
	"fmt"
	"time"

	"mlperf/internal/stats"
)

// Architecture is the processor class of a platform (Figure 7).
type Architecture string

// Processor architectures seen in the v0.5 submissions.
const (
	CPU  Architecture = "CPU"
	GPU  Architecture = "GPU"
	DSP  Architecture = "DSP"
	FPGA Architecture = "FPGA"
	ASIC Architecture = "ASIC"
)

// AllArchitectures lists the processor classes in Figure 7 order.
func AllArchitectures() []Architecture {
	return []Architecture{DSP, FPGA, CPU, ASIC, GPU}
}

// Workload is the unit of work a platform executes: one sample of a reference
// model. OpsPerSample corresponds to Table I's GOPs-per-input figures;
// Variability is the coefficient of variation of per-sample work (near zero
// for fixed-size vision inputs, large for variable-length translation).
type Workload struct {
	Name         string
	OpsPerSample int64
	Variability  float64
	// PaddingWaste is the extra work fraction incurred when variable-length
	// samples are batched in arrival order (sequences padded to the longest
	// in the batch). It applies to online batching (server, multistream);
	// offline processing may re-sort inputs ("arbitrary data arrangement" is
	// allowed, Section IV-A) and avoids it. This is the mechanism behind
	// NMT's larger server-scenario degradation in Section VI-B.
	PaddingWaste float64
	// Efficiency is the fraction of a platform's peak compute the network's
	// structure can actually use (1 when unset). Depthwise-separable models
	// achieve a much lower fraction than dense residual networks, which is
	// why the measured SSD-ResNet-34 / SSD-MobileNet throughput gap is far
	// smaller than their 175x operation-count gap (Section VII-D).
	Efficiency float64
}

// Validate reports configuration errors.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("simhw: workload needs a name")
	}
	if w.OpsPerSample <= 0 {
		return fmt.Errorf("simhw: workload %s ops per sample must be positive", w.Name)
	}
	if w.Variability < 0 {
		return fmt.Errorf("simhw: workload %s variability must be non-negative", w.Name)
	}
	if w.PaddingWaste < 0 {
		return fmt.Errorf("simhw: workload %s padding waste must be non-negative", w.Name)
	}
	if w.Efficiency < 0 || w.Efficiency > 1 {
		return fmt.Errorf("simhw: workload %s efficiency %v outside [0,1]", w.Name, w.Efficiency)
	}
	return nil
}

// efficiency returns the workload's compute efficiency, defaulting to 1.
func (w Workload) efficiency() float64 {
	if w.Efficiency <= 0 {
		return 1
	}
	return w.Efficiency
}

// paddingFactor returns the work multiplier for an arrival-order batch of the
// given size.
func (w Workload) paddingFactor(batch int) float64 {
	if w.PaddingWaste <= 0 || batch <= 1 {
		return 1
	}
	return 1 + w.PaddingWaste*(1-1/float64(batch))
}

// Platform is a simulated inference system.
type Platform struct {
	Name      string
	Arch      Architecture
	Framework string // software framework, for Table VII
	Category  string // "available", "preview" or "rdo"

	// PeakGOPS is the effective peak compute throughput in billions of
	// operations per second when fully utilized.
	PeakGOPS float64
	// MinUtilization is the fraction of peak reachable at batch size 1;
	// utilization ramps linearly to 1.0 at MaxBatch. Wide accelerators have a
	// small value (they need batching), CPUs are near 1.
	MinUtilization float64
	// MaxBatch is the largest batch the platform schedules at once.
	MaxBatch int
	// QueryOverhead is the fixed per-batch dispatch overhead.
	QueryOverhead time.Duration
	// Parallelism is the number of independent execution units.
	Parallelism int
	// Jitter is the coefficient of variation of service time noise.
	Jitter float64
}

// Validate reports configuration errors.
func (p Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("simhw: platform needs a name")
	}
	if p.PeakGOPS <= 0 {
		return fmt.Errorf("simhw: platform %s peak GOPS must be positive", p.Name)
	}
	if p.MinUtilization <= 0 || p.MinUtilization > 1 {
		return fmt.Errorf("simhw: platform %s MinUtilization %v outside (0,1]", p.Name, p.MinUtilization)
	}
	if p.MaxBatch <= 0 {
		return fmt.Errorf("simhw: platform %s MaxBatch must be positive", p.Name)
	}
	if p.Parallelism <= 0 {
		return fmt.Errorf("simhw: platform %s Parallelism must be positive", p.Name)
	}
	if p.QueryOverhead < 0 {
		return fmt.Errorf("simhw: platform %s QueryOverhead must be non-negative", p.Name)
	}
	if p.Jitter < 0 {
		return fmt.Errorf("simhw: platform %s Jitter must be non-negative", p.Name)
	}
	return nil
}

// utilization returns the fraction of peak throughput achieved at the given
// batch size.
func (p Platform) utilization(batch int) float64 {
	if batch >= p.MaxBatch || p.MaxBatch == 1 {
		return 1
	}
	if batch < 1 {
		batch = 1
	}
	frac := float64(batch-1) / float64(p.MaxBatch-1)
	return p.MinUtilization + (1-p.MinUtilization)*frac
}

// ServiceTime returns the deterministic time to execute one batch of the
// workload (before jitter).
func (p Platform) ServiceTime(w Workload, batch int) (time.Duration, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if batch <= 0 {
		return 0, fmt.Errorf("simhw: batch size must be positive, got %d", batch)
	}
	if batch > p.MaxBatch {
		batch = p.MaxBatch
	}
	ops := float64(w.OpsPerSample) * float64(batch)
	effective := p.PeakGOPS * 1e9 * p.utilization(batch) * w.efficiency()
	seconds := ops / effective
	return p.QueryOverhead + time.Duration(seconds*float64(time.Second)), nil
}

// sampledServiceTime applies workload variability and platform jitter to the
// deterministic service time.
func (p Platform) sampledServiceTime(w Workload, batch int, rng *stats.RNG) (time.Duration, error) {
	base, err := p.ServiceTime(w, batch)
	if err != nil {
		return 0, err
	}
	noise := 1.0
	if p.Jitter > 0 {
		noise += p.Jitter * rng.NormFloat64()
	}
	if w.Variability > 0 {
		noise += w.Variability * rng.NormFloat64()
	}
	if noise < 0.05 {
		noise = 0.05
	}
	return time.Duration(float64(base) * noise), nil
}

// SingleSampleLatency returns the deterministic single-sample latency, the
// quantity architects usually quote for a platform/model pair.
func (p Platform) SingleSampleLatency(w Workload) (time.Duration, error) {
	return p.ServiceTime(w, 1)
}

// PeakThroughput returns the platform's best-case throughput in samples per
// second for the workload (all units busy with full batches).
func (p Platform) PeakThroughput(w Workload) (float64, error) {
	st, err := p.ServiceTime(w, p.MaxBatch)
	if err != nil {
		return 0, err
	}
	if st <= 0 {
		return 0, fmt.Errorf("simhw: non-positive service time for %s on %s", w.Name, p.Name)
	}
	perUnit := float64(p.MaxBatch) / st.Seconds()
	return perUnit * float64(p.Parallelism), nil
}
