// Package backend provides the system-under-test implementations the harness
// runs the LoadGen against:
//
//   - Native executes a model.Engine — the suite's single batch-first
//     inference contract — on synthetic data, exercising the full inference
//     path (the closest analogue to a real submission's inference engine).
//     Multi-sample queries are split into per-worker chunks and each chunk
//     runs as ONE batched Predict call, so a merged offline/server query gets
//     true batched GEMM execution rather than a sample-by-sample loop.
//   - Simulated replays a simhw.Platform's service-time model in wall-clock
//     time, so scenario dynamics can be studied for platforms far faster or
//     slower than this machine.
//   - Batching wraps another backend with a dynamic batcher, the optimization
//     that distinguishes the server and offline scenarios (Section VI-B).
//   - Remote drives one or more serve.Server replicas over loopback TCP
//     sockets: the same loadgen.SUT contract, but with queueing,
//     serialization and connection concurrency — the phenomena that bound
//     achieved QPS in a real datacenter submission — on the measured path.
//     With several Addrs it is the replica router: each sample goes to the
//     live replica with the fewest requests in flight, bounded by a
//     per-replica in-flight window. With Model set it addresses one named
//     engine on a multi-model server (V2 frames). Shed load completes its
//     queries with Dropped responses (the LoadGen invalidates the run) and
//     serving metrics are fetchable merged (ServerMetrics) or per replica
//     (ReplicaMetrics). The Remote is fault tolerant by default: requests
//     stranded by a transport failure fail over to a live replica, failed
//     connections re-dial under per-slot supervisors with exponential
//     backoff and deterministic jitter, recovered servers are readmitted
//     only after a health-probe handshake (and, for a fully-down replica,
//     the reopen barrier), a crashed replica's banked metrics merge with its
//     restarted epoch, and the whole record — down/up intervals, rejoins,
//     redials, retries, post-failover drops — is reported via Recovery.
//
// Because every model is reached through model.Engine, new backends
// (quantized, simulated-batched, multi-tenant) plug in without per-task
// dispatch: the backend never switches on the task kind to run inference.
package backend

import (
	"fmt"
	"runtime"
	"sync"

	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/tensor"
)

// SampleStore provides samples by index; dataset.QSL satisfies it.
type SampleStore interface {
	Get(index int) (*dataset.Sample, error)
}

// NativeConfig configures a Native backend.
type NativeConfig struct {
	// Name labels the SUT in results; it defaults to the engine's name.
	Name string
	// Engine is the model behind the SUT. Its Kind determines the sample
	// payload the backend expects from Store.
	Engine model.Engine
	// Store provides input samples.
	Store SampleStore
	// Workers is the number of concurrent inference workers. It defaults to
	// runtime.GOMAXPROCS(0), floored at 2, so multi-sample (offline/server)
	// traffic saturates every core while the issue loop can still overlap
	// with an in-flight inference on single-core hosts; set it to 1 for a
	// deliberately serial SUT.
	Workers int
	// FlopThreshold, when positive, overrides the compute engine's
	// parallel-dispatch threshold (tensor.SetParallelFlopThreshold) — the
	// multiply-accumulate count below which kernels stay on the calling
	// goroutine. The built-in default was calibrated on a 1-core container;
	// many-core deployments tune it here or via the
	// MLPERF_PARALLEL_FLOP_THRESHOLD environment variable. The override is
	// process-wide (the kernels are shared), never changes results, and
	// applies from NewNative on.
	FlopThreshold int
	// PanelBytes, when positive, overrides the GEMM column-panel cache
	// budget (tensor.SetGEMMPanelBytes), which also fixes the batched
	// convolution's sample-panel split. Process-wide, like FlopThreshold;
	// environment override: MLPERF_GEMM_PANEL_BYTES.
	PanelBytes int
}

// Native runs a model.Engine as the system under test.
type Native struct {
	cfg NativeConfig
	sem chan struct{}
	// preferredBatch is the engine's derived micro-batch (model.BatchSizer),
	// 0 when the engine does not publish one. Batch chunks are floored at it
	// so merged queries are not fragmented below the size the engine's
	// batched kernels were derived for.
	preferredBatch int
	wg             sync.WaitGroup
	errs           errorLog
}

// errorLog accumulates inference errors thread-safely; a real SUT would fail
// the run, so the harness checks Errors after the run.
type errorLog struct {
	mu   sync.Mutex
	errs []error
}

func (e *errorLog) add(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.errs = append(e.errs, err)
}

func (e *errorLog) all() []error {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]error, len(e.errs))
	copy(out, e.errs)
	return out
}

// NewNative validates the configuration and returns the backend.
func NewNative(cfg NativeConfig) (*Native, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("backend: native backend needs an Engine")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("backend: native backend needs a sample store")
	}
	switch cfg.Engine.Kind() {
	case dataset.KindImageClassification, dataset.KindObjectDetection, dataset.KindTranslation:
	default:
		return nil, fmt.Errorf("backend: engine %s reports unknown task kind %v", cfg.Engine.Name(), cfg.Engine.Kind())
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Engine.Name()
	}
	if cfg.Name == "" {
		cfg.Name = "native"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers()
	}
	if cfg.FlopThreshold > 0 {
		tensor.SetParallelFlopThreshold(cfg.FlopThreshold)
	}
	if cfg.PanelBytes > 0 {
		tensor.SetGEMMPanelBytes(cfg.PanelBytes)
	}
	n := &Native{cfg: cfg}
	n.sem = make(chan struct{}, cfg.Workers)
	if bs, ok := cfg.Engine.(model.BatchSizer); ok {
		n.preferredBatch = bs.PreferredBatch()
	}
	return n, nil
}

// defaultWorkers is GOMAXPROCS floored at 2: all cores for throughput, and
// never so few that the LoadGen's issue loop serializes against an in-flight
// inference on a single-core host.
func defaultWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 2 {
		return w
	}
	return 2
}

// Name implements loadgen.SUT.
func (n *Native) Name() string { return n.cfg.Name }

// Engine returns the engine behind the SUT.
func (n *Native) Engine() model.Engine { return n.cfg.Engine }

// IssueQuery implements loadgen.SUT. Single-sample queries are processed by
// a bounded worker pool so concurrent server-style queries overlap; a
// multi-sample (multistream/offline) query takes the batched path, fanning
// its samples out across all workers in contiguous chunks, each of which runs
// as one batched Engine.Predict call.
func (n *Native) IssueQuery(q *loadgen.Query) {
	if len(q.Samples) > 1 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.runBatch(q)
		}()
		return
	}
	for i := range q.Samples {
		lo := i
		n.wg.Add(1)
		n.sem <- struct{}{}
		go func() {
			defer n.wg.Done()
			defer func() { <-n.sem }()
			q.Complete(n.predictChunk(q, lo, lo+1))
		}()
	}
}

// runBatch spreads a multi-sample query's inference across the worker
// semaphore in contiguous chunks. Each chunk is one batched Predict call —
// one im2col+GEMM per layer for the whole chunk on the CNN engines — and is
// reported in a single Complete call, keeping response bookkeeping
// proportional to the worker count rather than the sample count. Because
// every chunk holds a semaphore slot while inferring, total in-flight
// inference — across this batch, concurrent batches and single-sample
// queries — never exceeds cfg.Workers.
func (n *Native) runBatch(q *loadgen.Query) {
	grain := n.batchGrain(len(q.Samples))
	for lo := 0; lo < len(q.Samples); lo += grain {
		hi := lo + grain
		if hi > len(q.Samples) {
			hi = len(q.Samples)
		}
		lo, hi := lo, hi
		n.wg.Add(1)
		n.sem <- struct{}{}
		go func() {
			defer n.wg.Done()
			defer func() { <-n.sem }()
			q.Complete(n.predictChunk(q, lo, hi))
		}()
	}
}

// batchGrain yields several chunks per worker so stragglers rebalance while
// chunks stay large enough to amortize completion bookkeeping and to win
// from batched GEMM execution. Chunks are floored at the engine's preferred
// micro-batch (when it publishes one): a chunk below it would fragment the
// batched kernels beneath the size their cache-residency was derived for, so
// straggler rebalancing yields to batch efficiency on small queries. The
// floor never starves workers, though — it is capped at an even split of the
// query, so every worker still gets a chunk (the engine's internal
// micro-batching copes with chunks below its preferred size).
func (n *Native) batchGrain(samples int) int {
	grain := samples / (4 * n.cfg.Workers)
	if pref := n.preferredBatch; grain < pref {
		grain = pref
		if even := (samples + n.cfg.Workers - 1) / n.cfg.Workers; grain > even {
			grain = even
		}
	}
	if grain > samples {
		grain = samples
	}
	if grain < 1 {
		grain = 1
	}
	return grain
}

// predictChunk runs samples [lo, hi) of the query through the engine as one
// batched Predict call and returns one response per sample (nil Data and
// Dropped set for samples that failed to load or infer, with the error
// recorded — so failed samples also invalidate the run's validity). If the
// batched call fails — one bad sample poisons a whole Predict — the chunk is
// retried sample by sample so errors stay isolated to the samples that
// actually caused them, matching the per-sample path's behavior.
func (n *Native) predictChunk(q *loadgen.Query, lo, hi int) []loadgen.Response {
	responses := make([]loadgen.Response, hi-lo)
	samples := make([]*dataset.Sample, 0, hi-lo)
	slots := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		responses[i-lo].SampleID = q.Samples[i].ID
		sample, err := n.cfg.Store.Get(q.Samples[i].Index)
		if err != nil {
			n.errs.add(fmt.Errorf("backend %s: fetching sample %d: %w", n.cfg.Name, q.Samples[i].Index, err))
			continue
		}
		samples = append(samples, sample)
		slots = append(slots, i-lo)
	}
	if len(samples) == 0 {
		return markDropped(responses)
	}
	outputs, err := n.cfg.Engine.Predict(samples, nil)
	if err != nil || len(outputs) != len(samples) {
		if err == nil {
			err = fmt.Errorf("engine returned %d outputs for %d samples", len(outputs), len(samples))
		}
		if len(samples) == 1 {
			n.errs.add(fmt.Errorf("backend %s: predicting sample %d: %w", n.cfg.Name, samples[0].Index, err))
			return markDropped(responses)
		}
		// Batched pass failed: isolate the offending samples.
		for j, sample := range samples {
			out, err := n.cfg.Engine.Predict(samples[j:j+1], nil)
			if err != nil || len(out) != 1 {
				if err == nil {
					err = fmt.Errorf("engine returned %d outputs for 1 sample", len(out))
				}
				n.errs.add(fmt.Errorf("backend %s: predicting sample %d: %w", n.cfg.Name, sample.Index, err))
				continue
			}
			responses[slots[j]].Data = n.encodeOutput(out[0], sample.Index)
		}
		return markDropped(responses)
	}
	for j, out := range outputs {
		responses[slots[j]].Data = n.encodeOutput(out, samples[j].Index)
	}
	return markDropped(responses)
}

// markDropped flags every response that carries no prediction (failed load,
// inference or encode — the error is already recorded) as dropped, so the
// LoadGen counts it and invalidates the run instead of treating a payloadless
// response as answered.
func markDropped(responses []loadgen.Response) []loadgen.Response {
	for i := range responses {
		if responses[i].Data == nil {
			responses[i].Dropped = true
		}
	}
	return responses
}

// encodeOutput serializes one prediction, recording (and nil-ing) failures.
func (n *Native) encodeOutput(out model.Output, index int) []byte {
	data, err := out.Encode()
	if err != nil {
		n.errs.add(fmt.Errorf("backend %s: encoding sample %d: %w", n.cfg.Name, index, err))
		return nil
	}
	return data
}

// FlushQueries implements loadgen.SUT; the native backend has no internal
// batching so there is nothing to flush.
func (n *Native) FlushQueries() {}

// Wait blocks until all in-flight inference finishes. The harness calls it
// after the LoadGen reports completion so error collection is complete.
func (n *Native) Wait() { n.wg.Wait() }

// Errors returns inference errors observed during the run.
func (n *Native) Errors() []error { return n.errs.all() }
