package harness

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"mlperf/internal/audit"
	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
	"mlperf/internal/trace"
)

// TestChaosTraceSoak is the tracing soak: a 2-replica fleet runs with span
// sampling live on both sides of the wire while one replica is killed and
// restarted mid-stream. Tracing must never turn a survivable fault into a
// failure (the run stays VALID with zero drops), the spans captured across
// the crash must still be well-formed (the serving-trace audit finding
// passes on the merged client+server records), and the Chrome export of
// those spans must remain valid JSON.
func TestChaosTraceSoak(t *testing.T) {
	a, err := BuildNative(core.ImageClassificationLight, BuildOptions{DatasetSamples: 32, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	clientTr := trace.New(trace.Config{SampleEvery: 4})
	serverTr := trace.New(trace.Config{SampleEvery: 4})
	dep, err := a.ServeLoopback(ServeOptions{
		Replicas: 2,
		Server:   serve.Config{Workers: 2, BatchWait: time.Millisecond, Tracer: serverTr},
		Client: backend.RemoteConfig{
			MaxInFlight: 32, Tracer: clientTr,
			RedialInitial: time.Millisecond, RedialMax: 20 * time.Millisecond, RecoverySeed: 7,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })

	settings := QuickSettings(a.Spec, loadgen.Offline, 1024)
	settings.MinDuration = 0
	settings.MinSampleCount = 4096

	type runOut struct {
		res *loadgen.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := loadgen.StartTest(dep.Assembly.SUT, dep.Assembly.QSL, settings)
		done <- runOut{res, err}
	}()

	// Crash replica 0 once it has served traced traffic, then bring it back;
	// the restarted replica reuses the same server config, so its spans keep
	// landing in the same tracer.
	killed := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if dep.Replica(0).Metrics().Completed > 0 {
			if err := dep.KillReplica(0); err != nil {
				t.Fatalf("killing replica 0: %v", err)
			}
			killed = true
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	if !killed {
		t.Fatal("replica 0 never served anything to kill")
	}
	time.Sleep(10 * time.Millisecond)
	if err := dep.RestartReplica(0); err != nil {
		t.Fatal(err)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.ResponsesDropped != 0 {
		t.Errorf("fleet dropped %d responses despite failover", res.ResponsesDropped)
	}
	if !res.Valid {
		t.Errorf("traced kill-restart run invalid: %v", res.ValidityMessages)
	}
	dep.Remote.Wait()

	traces := append(clientTr.Records(), serverTr.Records()...)
	if len(traces) == 0 {
		t.Fatal("1/4 sampling over a 4096-sample soak captured no records")
	}
	sampled := 0
	for _, rec := range traces {
		if rec.TraceID != 0 {
			sampled++
		}
	}
	if sampled == 0 {
		t.Fatal("no head-sampled records survived the crash")
	}

	snaps, err := dep.Remote.ReplicaMetrics()
	if err != nil {
		t.Fatal(err)
	}
	rec := dep.Remote.Recovery()
	findings, err := audit.CheckServing(audit.ServingEvidence{
		Result:               res,
		Settings:             settings,
		ClientRejected:       dep.Remote.Rejected(),
		ClientExpired:        dep.Remote.Expired(),
		ClientTransportDrops: dep.Remote.TransportDrops(),
		Recovery:             &rec,
		Replicas:             snaps,
		Traces:               traces,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !f.Pass {
			t.Errorf("audit %s failed: %s", f.Name, f.Detail)
		}
	}

	// The export path must survive crash-interleaved records too.
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(dump.TraceEvents) <= len(traces) {
		t.Errorf("export holds %d events for %d records — stage spans missing", len(dump.TraceEvents), len(traces))
	}
}
