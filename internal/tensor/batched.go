package tensor

import (
	"fmt"

	"mlperf/internal/parallel"
)

// Batched kernel entry points. A batch of spatial activations is stored
// CHANNEL-MAJOR — a rank-4 [C, N, H, W] tensor — and a batch of feature
// vectors is a rank-2 [F, N] tensor. The layout is chosen so the batched
// convolution's single GEMM writes its output directly in the next layer's
// input layout:
//
//	cols  = im2col(batch)        // (C_in·KH·KW) × (N·H_out·W_out)
//	out   = kernels × cols       // C_out × (N·H_out·W_out)  ==  [C_out,N,H',W']
//
// so the whole network runs one im2col + one GEMM per convolution layer with
// ZERO layout fixups between layers, and pointwise (1×1, stride 1, unpadded)
// convolutions skip im2col entirely — the activations already are the im2col
// matrix. PackSample/UnpackSample convert between per-sample CHW tensors and
// the batched layout at the boundaries.
//
// Every batched kernel is bit-for-bit identical to running its single-sample
// counterpart per batch element: each output element accumulates exactly the
// same terms in exactly the same order, regardless of batch size, batch
// position or worker count. The batch-vs-single equivalence tests in
// internal/model assert this end to end.

// SubView returns a view of the i-th slice along the first axis (e.g. sample
// i of a batch-major tensor). The view shares storage with t.
func (t *Tensor) SubView(i int) (*Tensor, error) {
	if t.Rank() < 2 {
		return nil, fmt.Errorf("tensor: SubView requires rank >= 2, got %v", t.shape)
	}
	if i < 0 || i >= t.shape[0] {
		return nil, fmt.Errorf("tensor: SubView index %d out of range [0,%d)", i, t.shape[0])
	}
	sz := 1
	for _, d := range t.shape[1:] {
		sz *= d
	}
	return &Tensor{shape: t.shape[1:], data: t.data[i*sz : (i+1)*sz : (i+1)*sz]}, nil
}

// PackSample copies a CHW sample into position n of a channel-major
// [C, N, H, W] batch.
func PackSample(batch, sample *Tensor, n int) error {
	if batch.Rank() != 4 || sample.Rank() != 3 {
		return fmt.Errorf("tensor: PackSample wants [C N H W] batch and CHW sample, got %v and %v", batch.shape, sample.shape)
	}
	c, bn, hw := batch.shape[0], batch.shape[1], batch.shape[2]*batch.shape[3]
	if n < 0 || n >= bn {
		return fmt.Errorf("tensor: PackSample index %d out of range [0,%d)", n, bn)
	}
	if sample.shape[0] != c || sample.shape[1] != batch.shape[2] || sample.shape[2] != batch.shape[3] {
		return fmt.Errorf("tensor: PackSample sample shape %v does not match batch %v", sample.shape, batch.shape)
	}
	for ch := 0; ch < c; ch++ {
		copy(batch.data[(ch*bn+n)*hw:(ch*bn+n+1)*hw], sample.data[ch*hw:(ch+1)*hw])
	}
	return nil
}

// UnpackSample copies position n of a channel-major [C, N, H, W] batch into
// the CHW tensor dst (fully overwritten).
func UnpackSample(dst, batch *Tensor, n int) error {
	if batch.Rank() != 4 || dst.Rank() != 3 {
		return fmt.Errorf("tensor: UnpackSample wants [C N H W] batch and CHW dst, got %v and %v", batch.shape, dst.shape)
	}
	c, bn, hw := batch.shape[0], batch.shape[1], batch.shape[2]*batch.shape[3]
	if n < 0 || n >= bn {
		return fmt.Errorf("tensor: UnpackSample index %d out of range [0,%d)", n, bn)
	}
	if dst.shape[0] != c || dst.shape[1] != batch.shape[2] || dst.shape[2] != batch.shape[3] {
		return fmt.Errorf("tensor: UnpackSample dst shape %v does not match batch %v", dst.shape, batch.shape)
	}
	for ch := 0; ch < c; ch++ {
		copy(dst.data[ch*hw:(ch+1)*hw], batch.data[(ch*bn+n)*hw:(ch*bn+n+1)*hw])
	}
	return nil
}

// batchConvGeometry validates a channel-major [C, N, H, W] input against
// kernels/bias and returns the batch size alongside the per-sample geometry.
func batchConvGeometry(input, kernels, bias *Tensor, opts Conv2DOptions) (int, convGeom, error) {
	if input.Rank() != 4 {
		return 0, convGeom{}, fmt.Errorf("tensor: batched conv requires [C N H W] input, got %v", input.shape)
	}
	sample := &Tensor{
		shape: []int{input.shape[0], input.shape[2], input.shape[3]},
		data:  input.data[:input.shape[0]*input.shape[2]*input.shape[3]],
	}
	g, err := conv2DGeometry(sample, kernels, bias, opts)
	if err != nil {
		return 0, convGeom{}, err
	}
	return input.shape[1], g, nil
}

// PostOp is an element-wise epilogue a batched kernel applies to its output
// while the just-computed panel is still cache-resident, instead of a
// separate full-tensor pass afterwards. The values are identical to applying
// tensor.ReLU / tensor.ReLU6 to the whole output.
type PostOp int

// The supported fused epilogues.
const (
	PostNone PostOp = iota
	PostReLU
	PostReLU6
)

// applyPost applies the epilogue to one slice.
func applyPost(seg []float32, post PostOp) {
	switch post {
	case PostReLU:
		for i, v := range seg {
			if v < 0 {
				seg[i] = 0
			}
		}
	case PostReLU6:
		for i, v := range seg {
			switch {
			case v < 0:
				seg[i] = 0
			case v > 6:
				seg[i] = 6
			}
		}
	}
}

// Conv2DBatchedInto convolves a channel-major [C_in, N, H, W] batch with
// kernels (C_out × C_in × KH × KW) into dst ([C_out, N, H_out, W_out]); the
// GEMM writes dst directly in the next layer's input layout, with no
// per-layer scatter, and post is fused into the panel epilogue. bias may be
// nil or length C_out. scratch, when non-nil, supplies the im2col staging
// buffer. dst is fully overwritten and must not alias input.
//
// The batch is processed in sample panels sized so one packed im2col panel
// (k × panel-columns) stays cache-resident: the panel buffer is filled once
// and reused by every group of output rows, giving the batched GEMM the same
// locality as the single-sample path while its inner loops run the full
// panel width — the win that makes merged offline/server queries faster than
// sample-at-a-time inference even on one core. Panels have fixed boundaries
// and are distributed over the worker pool for large batches; every output
// element accumulates in the same order regardless of panel or worker count.
func Conv2DBatchedInto(dst, input, kernels, bias *Tensor, opts Conv2DOptions, post PostOp, scratch *Scratch) error {
	batch, g, err := batchConvGeometry(input, kernels, bias, opts)
	if err != nil {
		return err
	}
	if dst.Rank() != 4 || dst.shape[0] != g.cout || dst.shape[1] != batch || dst.shape[2] != g.hOut || dst.shape[3] != g.wOut {
		return fmt.Errorf("tensor: Conv2DBatchedInto dst shape %v, want [%d %d %d %d]", dst.shape, g.cout, batch, g.hOut, g.wOut)
	}
	var biasData []float32
	if bias != nil {
		biasData = bias.data
	}
	k := g.cin * g.kh * g.kw
	hw := g.hOut * g.wOut
	n := batch * hw
	pointwise := g.kh == 1 && g.kw == 1 && opts.Stride == 1 && opts.Padding == 0

	// Samples per panel: as many whole samples as keep k × panel columns
	// within the cache budget.
	spp := GEMMPanelBytes() / (4 * k * hw)
	if spp < 1 {
		spp = 1
	}
	if spp > batch {
		spp = batch
	}
	panels := (batch + spp - 1) / spp

	// Zero-copy pointwise path: when one panel covers the whole batch, the
	// channel-major activations already are the full packed im2col matrix —
	// multiply straight off them without staging a copy.
	if pointwise && panels == 1 {
		gemmPanelInto(dst.data, kernels.data, input.data, biasData, g.cout, k, n, 0, n, post)
		return nil
	}

	// fillPanel packs the im2col columns of samples [n0, n1) into buf
	// (k × (n1-n0)·hw, contiguous). For a pointwise convolution the
	// channel-major activations already hold the im2col values, so packing is
	// a plain copy per (row, sample) plane.
	fillPanel := func(buf []float32, n0, n1 int) {
		jn := (n1 - n0) * hw
		if pointwise {
			for r := 0; r < k; r++ {
				for s := n0; s < n1; s++ {
					copy(buf[r*jn+(s-n0)*hw:r*jn+(s-n0)*hw+hw], input.data[(r*batch+s)*hw:(r*batch+s+1)*hw])
				}
			}
			return
		}
		for r := 0; r < k; r++ {
			ic := r / (g.kh * g.kw)
			ky := r / g.kw % g.kh
			kx := r % g.kw
			for s := n0; s < n1; s++ {
				im2colSampleRow(buf[r*jn+(s-n0)*hw:r*jn+(s-n0)*hw+hw],
					input.data[(ic*batch+s)*g.h*g.w:(ic*batch+s+1)*g.h*g.w], opts, g, ky, kx)
			}
		}
	}
	// onePanel stages panel p in buf and multiplies; the activation is fused
	// into the GEMM's row-group epilogue while the output is cache-hot.
	onePanel := func(buf []float32, p int) {
		n0 := p * spp
		n1 := n0 + spp
		if n1 > batch {
			n1 = batch
		}
		jn := (n1 - n0) * hw
		fillPanel(buf[:k*jn], n0, n1)
		gemmPanelInto(dst.data, kernels.data, buf[:k*jn], biasData, g.cout, k, n, n0*hw, jn, post)
	}
	runPanels := func(p0, p1 int) {
		buf := colsPool.Get().(*[]float32)
		if cap(*buf) < k*spp*hw {
			*buf = make([]float32, k*spp*hw)
		}
		for p := p0; p < p1; p++ {
			onePanel(*buf, p)
		}
		colsPool.Put(buf)
	}

	if g.cout*k*n < ParallelFlopThreshold() || parallel.Default().Workers() == 1 || panels == 1 {
		// Serial path: one staging buffer, from the caller's arena when given.
		if scratch != nil {
			buf := scratch.Floats(k * spp * hw)
			for p := 0; p < panels; p++ {
				onePanel(buf, p)
			}
			return nil
		}
		runPanels(0, panels)
		return nil
	}
	parallel.For(panels, 1, runPanels)
	return nil
}

// DepthwiseConv2DBatchedInto applies the depthwise convolution to a
// channel-major [C, N, H, W] batch, fusing post into the per-plane epilogue
// while each freshly computed plane is cache-hot. Every (channel, sample)
// plane runs the same inner kernel as the single-sample path, so results are
// bit-identical per element. Planes are distributed over the worker pool.
func DepthwiseConv2DBatchedInto(dst, input, kernels, bias *Tensor, opts Conv2DOptions, post PostOp) error {
	if input.Rank() != 4 {
		return fmt.Errorf("tensor: DepthwiseConv2DBatchedInto wants [C N H W] input, got %v", input.shape)
	}
	sample := &Tensor{
		shape: []int{input.shape[0], input.shape[2], input.shape[3]},
		data:  input.data[:input.shape[0]*input.shape[2]*input.shape[3]],
	}
	g, err := depthwiseGeometry(sample, kernels, bias, opts)
	if err != nil {
		return err
	}
	batch := input.shape[1]
	if dst.Rank() != 4 || dst.shape[0] != g.c || dst.shape[1] != batch || dst.shape[2] != g.hOut || dst.shape[3] != g.wOut {
		return fmt.Errorf("tensor: DepthwiseConv2DBatchedInto dst shape %v, want [%d %d %d %d]", dst.shape, g.c, batch, g.hOut, g.wOut)
	}
	planes := g.c * batch
	run := func(p0, p1 int) {
		for p := p0; p < p1; p++ {
			ch := p / batch
			var bv float32
			if bias != nil {
				bv = bias.data[ch]
			}
			plane := dst.data[p*g.hOut*g.wOut : (p+1)*g.hOut*g.wOut]
			depthwisePlane(plane,
				input.data[p*g.h*g.w:(p+1)*g.h*g.w],
				kernels.data[ch*g.kh*g.kw:(ch+1)*g.kh*g.kw],
				bv, opts, g)
			applyPost(plane, post)
		}
	}
	if planes*g.hOut*g.wOut*g.kh*g.kw < ParallelFlopThreshold() || parallel.Default().Workers() == 1 {
		run(0, planes)
		return nil
	}
	parallel.For(planes, 0, run)
	return nil
}

// MaxPool2DBatchedInto pools every (channel, sample) plane of a channel-major
// [C, N, H, W] batch.
func MaxPool2DBatchedInto(dst, input *Tensor, window, stride int) error {
	if input.Rank() != 4 || dst.Rank() != 4 {
		return fmt.Errorf("tensor: MaxPool2DBatchedInto wants [C N H W] tensors, got %v -> %v", input.shape, dst.shape)
	}
	sample := &Tensor{
		shape: []int{input.shape[0], input.shape[2], input.shape[3]},
		data:  input.data[:input.shape[0]*input.shape[2]*input.shape[3]],
	}
	c, hOut, wOut, err := maxPoolGeometry(sample, window, stride)
	if err != nil {
		return err
	}
	batch := input.shape[1]
	if dst.shape[0] != c || dst.shape[1] != batch || dst.shape[2] != hOut || dst.shape[3] != wOut {
		return fmt.Errorf("tensor: MaxPool2DBatchedInto dst shape %v, want [%d %d %d %d]", dst.shape, c, batch, hOut, wOut)
	}
	h, w := input.shape[2], input.shape[3]
	for p := 0; p < c*batch; p++ {
		maxPoolPlane(dst.data[p*hOut*wOut:(p+1)*hOut*wOut], input.data[p*h*w:(p+1)*h*w],
			window, stride, w, hOut, wOut)
	}
	return nil
}

// GlobalAvgPool2DBatchedInto reduces a channel-major [C, N, H, W] batch to a
// [C, N] feature matrix — exactly the layout DenseBatchedInto consumes.
func GlobalAvgPool2DBatchedInto(dst, input *Tensor) error {
	if input.Rank() != 4 {
		return fmt.Errorf("tensor: GlobalAvgPool2DBatchedInto requires [C N H W] input, got %v", input.shape)
	}
	if dst.Rank() != 2 || dst.shape[0] != input.shape[0] || dst.shape[1] != input.shape[1] {
		return fmt.Errorf("tensor: GlobalAvgPool2DBatchedInto dst shape %v, want [%d %d]", dst.shape, input.shape[0], input.shape[1])
	}
	c, batch := input.shape[0], input.shape[1]
	hw := input.shape[2] * input.shape[3]
	area := float32(hw)
	for p := 0; p < c*batch; p++ {
		dst.data[p] = avgPlane(input.data[p*hw:(p+1)*hw], area)
	}
	return nil
}

// TransposeInto writes the transpose of a rank-2 src into dst (shape
// reversed). dst must not alias src and is fully overwritten.
func TransposeInto(dst, src *Tensor) error {
	if src.Rank() != 2 || dst.Rank() != 2 || dst.shape[0] != src.shape[1] || dst.shape[1] != src.shape[0] {
		return fmt.Errorf("tensor: TransposeInto wants reversed rank-2 shapes, got %v -> %v", src.shape, dst.shape)
	}
	r, c := src.shape[0], src.shape[1]
	for i := 0; i < r; i++ {
		row := src.data[i*c : i*c+c]
		for j, v := range row {
			dst.data[j*r+i] = v
		}
	}
	return nil
}

// DenseBatchedInto computes Y = W × X (+ bias per output row) for weights W
// (out × in) and a feature-major batch X ([in, N]), writing Y ([out, N]) as
// one GEMM — no weight or activation reshuffling. Each output element
// accumulates in ascending-k order from zero and then adds the bias, matching
// MatVec-then-Add on the single-sample path bit for bit.
func DenseBatchedInto(dst, weights, x, bias *Tensor) error {
	if weights.Rank() != 2 || x.Rank() != 2 || weights.shape[1] != x.shape[0] {
		return fmt.Errorf("tensor: DenseBatchedInto wants (out×in) weights and [in N] batch, got %v and %v", weights.shape, x.shape)
	}
	out, batch := weights.shape[0], x.shape[1]
	if dst.Rank() != 2 || dst.shape[0] != out || dst.shape[1] != batch {
		return fmt.Errorf("tensor: DenseBatchedInto dst shape %v, want [%d %d]", dst.shape, out, batch)
	}
	gemmInto(dst.data, weights.data, x.data, nil, out, weights.shape[1], batch)
	if bias != nil {
		if bias.Rank() != 1 || bias.shape[0] != out {
			return fmt.Errorf("tensor: DenseBatchedInto bias shape %v, want [%d]", bias.shape, out)
		}
		for o := 0; o < out; o++ {
			row := dst.data[o*batch : o*batch+batch]
			bv := bias.data[o]
			for j := range row {
				row[j] += bv
			}
		}
	}
	return nil
}

// AddThenReLU computes t[i] = max(0, t[i]+other[i]) in one pass — the
// residual shortcut's add and activation fused so large batched activations
// are streamed once instead of twice. Values are identical to Add followed by
// ReLU.
func AddThenReLU(t, other *Tensor) error {
	if !SameShape(t, other) {
		return fmt.Errorf("tensor: AddThenReLU shape mismatch %v vs %v", t.shape, other.shape)
	}
	for i := range t.data {
		v := t.data[i] + other.data[i]
		if v < 0 {
			v = 0
		}
		t.data[i] = v
	}
	return nil
}

// ColumnArgMax returns, for column n of a rank-2 [F, N] tensor, the row index
// of the maximum element, scanning rows in ascending order exactly like
// Tensor.ArgMax scans a vector (strict greater-than, first maximum wins).
func ColumnArgMax(t *Tensor, n int) (int, error) {
	if t.Rank() != 2 {
		return 0, fmt.Errorf("tensor: ColumnArgMax requires a rank-2 tensor, got %v", t.shape)
	}
	rows, cols := t.shape[0], t.shape[1]
	if n < 0 || n >= cols {
		return 0, fmt.Errorf("tensor: ColumnArgMax column %d out of range [0,%d)", n, cols)
	}
	best := 0
	for r := 1; r < rows; r++ {
		if t.data[r*cols+n] > t.data[best*cols+n] {
			best = r
		}
	}
	return best, nil
}
