package harness

import (
	"testing"
	"time"

	"mlperf/internal/audit"
	"mlperf/internal/backend"
	"mlperf/internal/loadgen"
)

// swarmSettings shrinks the production swarm to a population that still
// exercises the multi-session machinery but finishes in test time.
func swarmSettings(a *Assembly, sessions int, aggregateQPS float64) loadgen.TestSettings {
	settings := QuickSettings(a.Spec, loadgen.Swarm, 1024)
	settings.SwarmSessions = sessions
	settings.SwarmSessionQPS = aggregateQPS / float64(sessions)
	settings.SwarmSessionLifetime = 150 * time.Millisecond
	settings.MinDuration = 100 * time.Millisecond
	settings.MinQueryCount = 400
	// The loopback fleet shares one machine with the test runner and the
	// session timers; the conformance claim is validity bookkeeping, not a
	// latency record, so give the single class headroom.
	settings.ServerTargetLatency = 500 * time.Millisecond
	return settings
}

// TestSwarmConformance runs a scaled swarm — real sessions, real churn — over
// a loopback fleet and audits the result: the run must be VALID, report its
// population, and the serving-swarm audit finding must reconcile the
// per-class accounting.
func TestSwarmConformance(t *testing.T) {
	a, dep := chaosDeployment(t, nil, backend.RemoteConfig{MaxInFlight: 64})

	settings := swarmSettings(a, 64, 1000)
	res, err := loadgen.StartTest(dep.Assembly.SUT, dep.Assembly.QSL, settings)
	if err != nil {
		t.Fatal(err)
	}
	dep.Remote.Wait()

	if !res.Valid {
		t.Errorf("swarm run invalid: %v", res.ValidityMessages)
	}
	if res.SwarmSessions != settings.SwarmSessions {
		t.Errorf("reported %d sessions, want %d", res.SwarmSessions, settings.SwarmSessions)
	}
	if res.SwarmChurns == 0 {
		t.Error("no churn despite 150ms mean lifetimes")
	}
	if len(res.SwarmClasses) != 1 {
		t.Fatalf("got %d class results, want the implicit default class", len(res.SwarmClasses))
	}
	if res.QueriesIssued < settings.MinQueryCount {
		t.Errorf("issued %d queries, want >= %d", res.QueriesIssued, settings.MinQueryCount)
	}

	findings, err := audit.CheckServing(servingEvidence(t, dep, res, settings))
	if err != nil {
		t.Fatal(err)
	}
	sawSwarm := false
	for _, f := range findings {
		if f.Name == "serving-swarm" {
			sawSwarm = true
		}
		if !f.Pass {
			t.Errorf("audit %s failed: %s", f.Name, f.Detail)
		}
	}
	if !sawSwarm {
		t.Error("swarm run produced no serving-swarm finding")
	}
}

// TestSwarmChurnKillSoak is the acceptance soak: a 10k-session swarm with
// reconnect churn runs over a 2-replica fleet while replica 0 is killed and
// restarted mid-run. The fleet must absorb the outage — the run stays VALID,
// the killed replica rejoins, and the swarm audit still reconciles. The CI
// race job runs this with -race, making it the churn/fan-out data-race probe.
func TestSwarmChurnKillSoak(t *testing.T) {
	sessions := 10000
	if testing.Short() {
		sessions = 1000
	}
	a, dep := chaosDeployment(t, nil, backend.RemoteConfig{MaxInFlight: 64})

	// The race detector costs roughly 10x of serving throughput; offer the
	// instrumented fleet a load it can sustain so the soak still asserts
	// validity rather than measuring the instrumentation.
	aggregate := 800.0
	if raceEnabled {
		aggregate = 200.0
	}
	settings := swarmSettings(a, sessions, aggregate)
	settings.SwarmSessionLifetime = 400 * time.Millisecond
	settings.MinQueryCount = 1200
	settings.MinDuration = 500 * time.Millisecond
	// A mid-run kill reroutes in-flight work through the surviving replica;
	// the validity claim is about absorbing the fault, not the tail under it.
	settings.ServerTargetLatency = 2 * time.Second
	if raceEnabled {
		settings.ServerTargetLatency = 10 * time.Second
	}

	type runOut struct {
		res *loadgen.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := loadgen.StartTest(dep.Assembly.SUT, dep.Assembly.QSL, settings)
		done <- runOut{res, err}
	}()

	killed := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if dep.Replica(0).Metrics().Completed > 0 {
			if err := dep.KillReplica(0); err != nil {
				t.Fatalf("killing replica 0: %v", err)
			}
			killed = true
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	if !killed {
		t.Fatal("replica 0 never served anything to kill")
	}
	time.Sleep(10 * time.Millisecond)
	if err := dep.RestartReplica(0); err != nil {
		t.Fatal(err)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	dep.Remote.Wait()

	if res.ResponsesDropped != 0 {
		t.Errorf("swarm dropped %d responses despite failover", res.ResponsesDropped)
	}
	if !res.Valid {
		t.Errorf("kill-mid-swarm run invalid: %v", res.ValidityMessages)
	}
	if res.SwarmSessions != sessions {
		t.Errorf("reported %d sessions, want %d", res.SwarmSessions, sessions)
	}
	if res.SwarmChurns == 0 {
		t.Error("soak saw no session churn")
	}

	// The killed replica must rejoin the fleet.
	rejoinDeadline := time.Now().Add(5 * time.Second)
	for dep.Remote.Recovery().Rejoins == 0 && time.Now().Before(rejoinDeadline) {
		time.Sleep(time.Millisecond)
	}
	if rec := dep.Remote.Recovery(); rec.Rejoins < 1 {
		t.Fatalf("killed replica never rejoined: %+v", rec)
	}

	findings, err := audit.CheckServing(servingEvidence(t, dep, res, settings))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !f.Pass {
			t.Errorf("audit %s failed: %s", f.Name, f.Detail)
		}
	}
	t.Logf("soak: %d sessions, %d churns, %d queries, p99-class %v",
		res.SwarmSessions, res.SwarmChurns, res.QueriesCompleted, res.SwarmClasses[0].PercentileLatency)
}
