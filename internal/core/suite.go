// Package core defines the MLPerf Inference v0.5 benchmark suite: the five
// tasks and their reference models (Table I), the per-task latency
// constraints (Table III), and the per-scenario query requirements (Table V).
// It is the entry point a user of the library starts from: pick a task and a
// scenario, obtain production LoadGen settings, and hand them to the harness.
package core

import (
	"fmt"
	"time"

	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/stats"
)

// Task identifies one benchmark task of the v0.5 suite.
type Task string

// The five tasks of Table I.
const (
	ImageClassificationHeavy Task = "image-classification-heavy"
	ImageClassificationLight Task = "image-classification-light"
	ObjectDetectionHeavy     Task = "object-detection-heavy"
	ObjectDetectionLight     Task = "object-detection-light"
	MachineTranslation       Task = "machine-translation"
)

// AllTasks lists the tasks in Table I order.
func AllTasks() []Task {
	return []Task{
		ImageClassificationHeavy,
		ImageClassificationLight,
		ObjectDetectionHeavy,
		ObjectDetectionLight,
		MachineTranslation,
	}
}

// TaskSpec is the full static description of one task: its reference model,
// data set, quality target, latency constraints and query requirements.
type TaskSpec struct {
	Task           Task
	Area           string
	ReferenceModel model.Name
	DatasetName    string
	QualityMetric  string
	// TargetRatio is the fraction of the FP32 reference quality an
	// implementation must reach (0.99, or 0.98 for MobileNet).
	TargetRatio float64

	// Table III constraints.
	MultiStreamArrivalInterval time.Duration
	ServerLatencyBound         time.Duration
	// ServerLatencyPercentile is 0.99 for vision and 0.97 for translation.
	ServerLatencyPercentile float64

	// Table V query requirements.
	SingleStreamQueries int
	MultiStreamQueries  int
	ServerQueries       int
	OfflineSamples      int
}

// ErrUnknownTask is returned for task names outside the v0.5 suite.
var ErrUnknownTask = fmt.Errorf("core: unknown task")

// Spec returns the static specification of a task.
func Spec(t Task) (TaskSpec, error) {
	const (
		visionQueries      = 270336 // 33 * 2^13, Table IV/V
		translationQueries = 90112  // 11 * 2^13 (97th percentile requirement rounded)
		offlineSamples     = 24576  // 3 * 2^13
		singleStream       = 1024
	)
	switch t {
	case ImageClassificationHeavy:
		return TaskSpec{
			Task: t, Area: "Vision", ReferenceModel: model.ResNet50,
			DatasetName: "ImageNet (224x224)", QualityMetric: "top1", TargetRatio: 0.99,
			MultiStreamArrivalInterval: 50 * time.Millisecond,
			ServerLatencyBound:         15 * time.Millisecond,
			ServerLatencyPercentile:    0.99,
			SingleStreamQueries:        singleStream,
			MultiStreamQueries:         visionQueries,
			ServerQueries:              visionQueries,
			OfflineSamples:             offlineSamples,
		}, nil
	case ImageClassificationLight:
		return TaskSpec{
			Task: t, Area: "Vision", ReferenceModel: model.MobileNetV1,
			DatasetName: "ImageNet (224x224)", QualityMetric: "top1", TargetRatio: 0.98,
			MultiStreamArrivalInterval: 50 * time.Millisecond,
			ServerLatencyBound:         10 * time.Millisecond,
			ServerLatencyPercentile:    0.99,
			SingleStreamQueries:        singleStream,
			MultiStreamQueries:         visionQueries,
			ServerQueries:              visionQueries,
			OfflineSamples:             offlineSamples,
		}, nil
	case ObjectDetectionHeavy:
		return TaskSpec{
			Task: t, Area: "Vision", ReferenceModel: model.SSDResNet34,
			DatasetName: "COCO (1,200x1,200)", QualityMetric: "mAP", TargetRatio: 0.99,
			MultiStreamArrivalInterval: 66 * time.Millisecond,
			ServerLatencyBound:         100 * time.Millisecond,
			ServerLatencyPercentile:    0.99,
			SingleStreamQueries:        singleStream,
			MultiStreamQueries:         visionQueries,
			ServerQueries:              visionQueries,
			OfflineSamples:             offlineSamples,
		}, nil
	case ObjectDetectionLight:
		return TaskSpec{
			Task: t, Area: "Vision", ReferenceModel: model.SSDMobileNet,
			DatasetName: "COCO (300x300)", QualityMetric: "mAP", TargetRatio: 0.99,
			MultiStreamArrivalInterval: 50 * time.Millisecond,
			ServerLatencyBound:         10 * time.Millisecond,
			ServerLatencyPercentile:    0.99,
			SingleStreamQueries:        singleStream,
			MultiStreamQueries:         visionQueries,
			ServerQueries:              visionQueries,
			OfflineSamples:             offlineSamples,
		}, nil
	case MachineTranslation:
		return TaskSpec{
			Task: t, Area: "Language", ReferenceModel: model.GNMT,
			DatasetName: "WMT16 EN-DE", QualityMetric: "BLEU", TargetRatio: 0.99,
			MultiStreamArrivalInterval: 100 * time.Millisecond,
			ServerLatencyBound:         250 * time.Millisecond,
			ServerLatencyPercentile:    0.97,
			SingleStreamQueries:        singleStream,
			MultiStreamQueries:         translationQueries,
			ServerQueries:              translationQueries,
			OfflineSamples:             offlineSamples,
		}, nil
	default:
		return TaskSpec{}, fmt.Errorf("%w: %q", ErrUnknownTask, t)
	}
}

// Suite returns the specifications of every task in the v0.5 suite.
func Suite() []TaskSpec {
	out := make([]TaskSpec, 0, len(AllTasks()))
	for _, t := range AllTasks() {
		spec, err := Spec(t)
		if err != nil {
			// AllTasks and Spec are defined together; disagreement is a
			// programming error, not a runtime condition.
			panic(err)
		}
		out = append(out, spec)
	}
	return out
}

// TaskForModel returns the task whose reference model is m.
func TaskForModel(m model.Name) (Task, error) {
	for _, spec := range Suite() {
		if spec.ReferenceModel == m {
			return spec.Task, nil
		}
	}
	return "", fmt.Errorf("%w: no task uses model %q", ErrUnknownTask, m)
}

// Settings returns the production LoadGen settings for running the given task
// under the given scenario: Table III latency constraints, Table V query
// counts and the 60-second minimum duration.
func (spec TaskSpec) Settings(s loadgen.Scenario) loadgen.TestSettings {
	ts := loadgen.DefaultSettings(s)
	switch s {
	case loadgen.SingleStream:
		ts.MinQueryCount = spec.SingleStreamQueries
	case loadgen.MultiStream:
		ts.MinQueryCount = spec.MultiStreamQueries
		ts.MultiStreamArrivalInterval = spec.MultiStreamArrivalInterval
	case loadgen.Server:
		ts.MinQueryCount = spec.ServerQueries
		ts.ServerTargetLatency = spec.ServerLatencyBound
		ts.ServerLatencyPercentile = spec.ServerLatencyPercentile
	case loadgen.Offline:
		ts.MinSampleCount = spec.OfflineSamples
	case loadgen.Swarm:
		// The swarm offers the same aggregate load and bound as the task's
		// Server scenario, split across the default session population.
		ts.MinQueryCount = spec.ServerQueries
		ts.ServerTargetLatency = spec.ServerLatencyBound
		ts.ServerLatencyPercentile = spec.ServerLatencyPercentile
	}
	return ts
}

// QualityTarget returns the minimum acceptable quality given the measured
// FP32 reference quality.
func (spec TaskSpec) QualityTarget(referenceQuality float64) float64 {
	return referenceQuality * spec.TargetRatio
}

// QueryRequirementFor recomputes the statistically required query count for
// the task's server-scenario tail percentile using the Section III-D method,
// so the Table V constants can be cross-checked against Equation 2.
func (spec TaskSpec) QueryRequirementFor(confidence float64) (stats.QueryRequirement, error) {
	return stats.Requirement(spec.ServerLatencyPercentile, confidence)
}

// ScenarioMetric returns the Table II metric description for a scenario.
func ScenarioMetric(s loadgen.Scenario) string {
	switch s {
	case loadgen.SingleStream:
		return "90th-percentile latency"
	case loadgen.MultiStream:
		return "number of streams subject to latency bound"
	case loadgen.Server:
		return "queries per second subject to latency bound"
	case loadgen.Offline:
		return "throughput (samples per second)"
	case loadgen.Swarm:
		return "aggregate queries per second subject to per-class latency bounds"
	default:
		return "unknown"
	}
}

// ScenarioExample returns the Table II real-world example for a scenario.
func ScenarioExample(s loadgen.Scenario) string {
	switch s {
	case loadgen.SingleStream:
		return "typing autocomplete, real-time AR"
	case loadgen.MultiStream:
		return "multicamera driver assistance, large-scale automation"
	case loadgen.Server:
		return "translation website"
	case loadgen.Offline:
		return "photo categorization"
	case loadgen.Swarm:
		return "assistant backend fanning in 100k client apps"
	default:
		return "unknown"
	}
}
