package serve

import (
	"sort"
	"sync"
	"time"

	"mlperf/internal/tensor"
)

// latencyWindowSize is how many recent latency observations each percentile
// window retains. A power-of-two ring keeps long runs O(1) in memory while
// p50/p99 reflect current behavior rather than the whole run's history.
const latencyWindowSize = 1 << 14

// batchBuckets are the upper bounds of the batch-size histogram ("≤ bound");
// the final implicit bucket is unbounded.
var batchBuckets = []int{1, 2, 4, 8, 16, 32, 64}

// serverMetrics accumulates the serving-side observability state. All methods
// are safe for concurrent use.
type serverMetrics struct {
	mu sync.Mutex

	admitted  uint64
	rejected  uint64
	shed      uint64
	expired   uint64
	errored   uint64
	completed uint64
	flushes   uint64

	batchCounts []uint64 // len(batchBuckets)+1, last bucket = overflow

	resizes []ResizeEvent

	queue   latencyWindow
	service latencyWindow

	// snapMu serializes snapshot assembly and guards the scratch buffers
	// below. Scrapers contend only with each other: the serving path's mu is
	// held just long enough to copy the rings out, and the O(n log n) sort
	// runs outside it, so a slow scrape never stalls request completion.
	snapMu       sync.Mutex
	scratchQueue []time.Duration
	scratchSvc   []time.Duration
}

// latencyWindow is a fixed-capacity ring of recent duration observations.
type latencyWindow struct {
	buf  []time.Duration
	next int
	n    int
}

func (w *latencyWindow) add(d time.Duration) {
	if w.buf == nil {
		w.buf = make([]time.Duration, latencyWindowSize)
	}
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// copyInto copies the retained observations into scratch (growing it if
// needed) and returns the filled prefix. Call with the owning metrics lock
// held; the returned slice aliases scratch, not the ring.
func (w *latencyWindow) copyInto(scratch []time.Duration) []time.Duration {
	if cap(scratch) < w.n {
		scratch = make([]time.Duration, w.n)
	}
	scratch = scratch[:w.n]
	copy(scratch, w.buf[:w.n])
	return scratch
}

// percentilesOf returns the p50 and p99 of a sample set, sorting it in
// place. Unlike the old latencyWindow.percentiles it takes an already-copied
// slice, so callers can sort outside the lock that guards the ring.
func percentilesOf(sorted []time.Duration) (p50, p99 time.Duration) {
	if len(sorted) == 0 {
		return 0, 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(p float64) int {
		i := int(p * float64(len(sorted)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return i
	}
	return sorted[idx(0.50)], sorted[idx(0.99)]
}

// percentiles returns the p50 and p99 of the retained window, allocating a
// fresh scratch copy. The snapshot path uses copyInto + percentilesOf with a
// reused scratch buffer instead; this remains for direct/test use.
func (w *latencyWindow) percentiles() (p50, p99 time.Duration) {
	return percentilesOf(w.copyInto(nil))
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{batchCounts: make([]uint64, len(batchBuckets)+1)}
}

func (m *serverMetrics) addAdmitted() {
	m.mu.Lock()
	m.admitted++
	m.mu.Unlock()
}

func (m *serverMetrics) addRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *serverMetrics) addShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

func (m *serverMetrics) addExpired(n int) {
	m.mu.Lock()
	m.expired += uint64(n)
	m.mu.Unlock()
}

func (m *serverMetrics) addErrored() {
	m.mu.Lock()
	m.errored++
	m.mu.Unlock()
}

func (m *serverMetrics) addFlush() {
	m.mu.Lock()
	m.flushes++
	m.mu.Unlock()
}

// observeBatch records one dispatched batch's size.
func (m *serverMetrics) observeBatch(size int) {
	m.mu.Lock()
	i := 0
	for i < len(batchBuckets) && size > batchBuckets[i] {
		i++
	}
	m.batchCounts[i]++
	m.mu.Unlock()
}

// addResizes records applied resize events in decision order.
func (m *serverMetrics) addResizes(events []ResizeEvent) {
	m.mu.Lock()
	m.resizes = append(m.resizes, events...)
	m.mu.Unlock()
}

// observeService records one served request's queue and service latencies.
func (m *serverMetrics) observeService(queued, service time.Duration) {
	m.mu.Lock()
	m.completed++
	m.queue.add(queued)
	m.service.add(service)
	m.mu.Unlock()
}

// DownInterval is one client-observed replica outage: the span between a
// replica losing its last live connection and its re-join through the probe
// handshake and reopen barrier. A zero End marks a replica still down when
// the snapshot was taken.
type DownInterval struct {
	// Replica is the replica's index in the client's address list.
	Replica int `json:"replica"`
	// Addr is the replica's dial address.
	Addr string `json:"addr,omitempty"`
	// Start is when the replica was marked down.
	Start time.Time `json:"start"`
	// End is when the replica rejoined (zero while still down).
	End time.Time `json:"end,omitempty"`
}

// Duration returns the interval's length, or how long the replica has been
// down as of now for a still-open interval.
func (d DownInterval) Duration() time.Duration {
	if d.End.IsZero() {
		return time.Since(d.Start)
	}
	return d.End.Sub(d.Start)
}

// RecoveryStats is the client-side fault-tolerance record backend.Remote
// attaches to merged snapshots: what went down, for how long, and how the
// fleet absorbed it. Server-side snapshots leave it nil.
type RecoveryStats struct {
	// DownIntervals lists every replica outage observed, in the order the
	// replicas went down. An interval with a zero End is still open.
	DownIntervals []DownInterval `json:"down_intervals,omitempty"`
	// Rejoins counts replicas readmitted to routing after an outage: probed
	// healthy on a fresh connection and re-armed through the reopen barrier.
	// It always equals the number of closed DownIntervals.
	Rejoins int `json:"rejoins"`
	// ConnRedials counts individual connections successfully re-established
	// (including those whose replica never went fully down).
	ConnRedials int64 `json:"conn_redials"`
	// Retries counts requests re-routed to another live connection after a
	// transport failure, whether or not the retry ultimately succeeded.
	Retries int64 `json:"retries"`
	// TransportDrops counts requests settled as dropped because every
	// failover attempt was exhausted — the only drops not explained by a
	// server-side reject or expiry.
	TransportDrops int64 `json:"transport_drops"`
}

// merge folds another recovery record into this one (interval lists
// concatenate, counters sum).
func (r *RecoveryStats) merge(o *RecoveryStats) {
	if o == nil {
		return
	}
	r.DownIntervals = append(r.DownIntervals, o.DownIntervals...)
	r.Rejoins += o.Rejoins
	r.ConnRedials += o.ConnRedials
	r.Retries += o.Retries
	r.TransportDrops += o.TransportDrops
}

// Resizable resources named by ResizeEvent.Resource.
const (
	// ResourceWorkers is a model's inference worker-pool size.
	ResourceWorkers = "workers"
	// ResourceQueue is a model's admission-queue bound.
	ResourceQueue = "queue"
	// ResourceMaxBatch is a model's dynamic-batch cap.
	ResourceMaxBatch = "max_batch"
	// ResourceReplicas is a fleet's live replica count (recorded by the
	// capacity autoscaler, not by individual servers).
	ResourceReplicas = "replicas"
)

// ResizeEvent records one applied live-limit change: which model's resource
// moved from what to what, when, and why. Servers record every Resize they
// apply; the events ride in Snapshot so external scrapers and the audit see
// the same capacity decisions the serving path acted on. Within one model and
// resource the events chain: each event's From equals the previous event's To
// (the audit's serving-capacity check verifies exactly this).
type ResizeEvent struct {
	Time     time.Time `json:"time"`
	Model    string    `json:"model,omitempty"`
	Resource string    `json:"resource"`
	From     int       `json:"from"`
	To       int       `json:"to"`
	Reason   string    `json:"reason,omitempty"`
}

// BatchBucket is one batch-size histogram bucket in a Snapshot.
type BatchBucket struct {
	// Le is the bucket's inclusive upper bound; 0 marks the unbounded
	// overflow bucket.
	Le    int    `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot is a point-in-time view of serving metrics for one hosted model —
// or, after MergeSnapshots, for a set of models or replicas — returned over
// the wire for the report (MsgMetrics/MsgMetricsModel) and by Server.Metrics.
type Snapshot struct {
	// Model is the hosted model id the snapshot covers ("" for the default
	// model and for merged snapshots).
	Model string `json:"model,omitempty"`
	// Error is set instead of metrics when a model-addressed request could
	// not be resolved (unknown model id) — the request is still answered, so
	// a misaddressed client learns its mistake rather than losing the
	// connection.
	Error string `json:"error,omitempty"`
	// Merged counts how many per-model or per-replica snapshots were folded
	// into this one (0 for a direct, single-host snapshot).
	Merged int `json:"merged,omitempty"`
	// QueueDepth is the admission queue's population at snapshot time.
	QueueDepth int `json:"queue_depth"`
	// Admitted counts requests accepted into the queue.
	Admitted uint64 `json:"admitted"`
	// Completed counts requests served to completion (any terminal status
	// after dispatch, including per-sample errors).
	Completed uint64 `json:"completed"`
	// Rejected counts arrivals turned away by admission control without
	// ever entering the queue (tail drop).
	Rejected uint64 `json:"rejected"`
	// Shed counts admitted requests later evicted by the ShedOldest policy,
	// so the counters reconcile: Admitted = Completed + Expired + Errors +
	// Shed + QueueDepth (at snapshot time, modulo in-flight batches).
	Shed uint64 `json:"shed"`
	// Expired counts requests whose deadline passed while queued.
	Expired uint64 `json:"expired"`
	// Errors counts requests that failed to load, infer or encode.
	Errors uint64 `json:"errors"`
	// Flushes counts end-of-series flushes observed.
	Flushes uint64 `json:"flushes"`
	// BatchHistogram is the dispatched batch-size distribution.
	BatchHistogram []BatchBucket `json:"batch_histogram"`
	// QueueP50/P99 summarize time spent in the admission queue; ServiceP50/
	// P99 summarize inference + encode + response write. Both cover the most
	// recent latencyWindowSize requests.
	QueueP50   time.Duration `json:"queue_p50_ns"`
	QueueP99   time.Duration `json:"queue_p99_ns"`
	ServiceP50 time.Duration `json:"service_p50_ns"`
	ServiceP99 time.Duration `json:"service_p99_ns"`
	// Workers and MaxBatch are the model's live limits at snapshot time (the
	// configured values until a Resize moves them).
	Workers  int `json:"workers"`
	MaxBatch int `json:"max_batch"`
	// QueueLimit is the admission queue's live bound at snapshot time (merged
	// snapshots sum it, like QueueDepth).
	QueueLimit int `json:"queue_limit,omitempty"`
	// Resizes lists every live-limit change applied to the model so far, in
	// decision order. Merged snapshots concatenate them (each input's events
	// are copied, never aliased).
	Resizes []ResizeEvent `json:"resizes,omitempty"`
	// Recovery carries the client-observed fault-tolerance record (down/up
	// intervals, rejoins, redials, failover retries). backend.Remote
	// populates it on the snapshots it returns; snapshots taken server-side
	// leave it nil — a server cannot see its own outages.
	Recovery *RecoveryStats `json:"recovery,omitempty"`
	// Kernel is the replica's compute-kernel configuration at snapshot time:
	// the SIMD dispatch tier (off/avx2/fma) and the live tuning-knob values,
	// plus whether a calibration pass produced them. It makes a fleet's
	// kernel setup auditable — a replica silently running the scalar fallback
	// (wrong env, exotic CPU) shows up right in the metrics scrape. Merged
	// snapshots keep the first non-nil value (replicas of one deployment run
	// the same binary and environment).
	Kernel *tensor.KernelConfig `json:"kernel,omitempty"`
}

// snapshot assembles a Snapshot; queueDepth is sampled by the caller, which
// owns the queue lock. The serving-path lock m.mu is held only for the O(n)
// counter-and-ring copy; the percentile sorts run under snapMu on reused
// scratch buffers, so concurrent scrapers neither stall request completion
// nor allocate a fresh window copy per scrape.
func (m *serverMetrics) snapshot(queueDepth, workers, maxBatch, queueLimit int) Snapshot {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	m.mu.Lock()
	s := Snapshot{
		QueueDepth: queueDepth,
		Admitted:   m.admitted,
		Completed:  m.completed,
		Rejected:   m.rejected,
		Shed:       m.shed,
		Expired:    m.expired,
		Errors:     m.errored,
		Flushes:    m.flushes,
		Workers:    workers,
		MaxBatch:   maxBatch,
		QueueLimit: queueLimit,
	}
	if len(m.resizes) > 0 {
		s.Resizes = append([]ResizeEvent(nil), m.resizes...)
	}
	s.BatchHistogram = make([]BatchBucket, 0, len(m.batchCounts))
	for i, count := range m.batchCounts {
		bucket := BatchBucket{Count: count}
		if i < len(batchBuckets) {
			bucket.Le = batchBuckets[i]
		}
		s.BatchHistogram = append(s.BatchHistogram, bucket)
	}
	m.scratchQueue = m.queue.copyInto(m.scratchQueue)
	m.scratchSvc = m.service.copyInto(m.scratchSvc)
	m.mu.Unlock()

	s.QueueP50, s.QueueP99 = percentilesOf(m.scratchQueue)
	s.ServiceP50, s.ServiceP99 = percentilesOf(m.scratchSvc)
	return s
}

// MergeSnapshots folds several per-model or per-replica snapshots into one
// aggregate view: counters, queue depths/limits and batch histograms sum;
// worker counts sum (total service parallelism); MaxBatch takes the largest;
// latency percentiles take the worst (max) across inputs — the conservative
// merge, since a latency bound must hold on every shard. Resize events
// concatenate (copied, never aliased with the inputs), so a fleet that
// changed size or limits mid-run folds every capacity decision into the
// merged view exactly once. An empty input yields the zero Snapshot.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	if len(snaps) == 0 {
		return out
	}
	maxDur := func(a, b time.Duration) time.Duration {
		if a > b {
			return a
		}
		return b
	}
	for _, s := range snaps {
		out.QueueDepth += s.QueueDepth
		out.QueueLimit += s.QueueLimit
		out.Resizes = append(out.Resizes, s.Resizes...)
		out.Admitted += s.Admitted
		out.Completed += s.Completed
		out.Rejected += s.Rejected
		out.Shed += s.Shed
		out.Expired += s.Expired
		out.Errors += s.Errors
		out.Flushes += s.Flushes
		out.Workers += s.Workers
		if s.MaxBatch > out.MaxBatch {
			out.MaxBatch = s.MaxBatch
		}
		out.QueueP50 = maxDur(out.QueueP50, s.QueueP50)
		out.QueueP99 = maxDur(out.QueueP99, s.QueueP99)
		out.ServiceP50 = maxDur(out.ServiceP50, s.ServiceP50)
		out.ServiceP99 = maxDur(out.ServiceP99, s.ServiceP99)
		for _, b := range s.BatchHistogram {
			merged := false
			for i := range out.BatchHistogram {
				if out.BatchHistogram[i].Le == b.Le {
					out.BatchHistogram[i].Count += b.Count
					merged = true
					break
				}
			}
			if !merged {
				out.BatchHistogram = append(out.BatchHistogram, b)
			}
		}
		if s.Merged > 0 {
			out.Merged += s.Merged
		} else {
			out.Merged++
		}
		if s.Recovery != nil {
			if out.Recovery == nil {
				out.Recovery = &RecoveryStats{}
			}
			out.Recovery.merge(s.Recovery)
		}
		if out.Kernel == nil && s.Kernel != nil {
			kc := *s.Kernel
			out.Kernel = &kc
		}
	}
	return out
}
