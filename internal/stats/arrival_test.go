package stats

import (
	"math"
	"testing"
	"time"
)

func TestPoissonProcessRate(t *testing.T) {
	rng := NewRNG(101)
	const rate = 200.0 // queries per second
	p, err := NewPoissonProcess(rng, rate)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate() != rate {
		t.Fatalf("Rate() = %v, want %v", p.Rate(), rate)
	}
	const n = 100000
	var total time.Duration
	for i := 0; i < n; i++ {
		gap := p.NextGap()
		if gap < 0 {
			t.Fatalf("negative inter-arrival gap %v", gap)
		}
		total += gap
	}
	observed := float64(n) / total.Seconds()
	if math.Abs(observed-rate)/rate > 0.02 {
		t.Errorf("observed rate %v, want ~%v", observed, rate)
	}
}

func TestPoissonProcessInvalidRate(t *testing.T) {
	if _, err := NewPoissonProcess(NewRNG(1), 0); err == nil {
		t.Error("zero rate: expected error")
	}
	if _, err := NewPoissonProcess(NewRNG(1), -5); err == nil {
		t.Error("negative rate: expected error")
	}
}

func TestPoissonScheduleMonotone(t *testing.T) {
	p, err := NewPoissonProcess(NewRNG(3), 1000)
	if err != nil {
		t.Fatal(err)
	}
	sched := p.Schedule(5000)
	if len(sched) != 5000 {
		t.Fatalf("schedule length %d, want 5000", len(sched))
	}
	for i := 1; i < len(sched); i++ {
		if sched[i] < sched[i-1] {
			t.Fatalf("schedule not monotone at %d: %v < %v", i, sched[i], sched[i-1])
		}
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	a, _ := NewPoissonProcess(NewRNG(55), 100)
	b, _ := NewPoissonProcess(NewRNG(55), 100)
	sa := a.Schedule(100)
	sb := b.Schedule(100)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same-seed schedules diverge at %d", i)
		}
	}
	c, _ := NewPoissonProcess(NewRNG(56), 100)
	sc := c.Schedule(100)
	same := 0
	for i := range sa {
		if sa[i] == sc[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different-seed schedules match %d/100 times", same)
	}
}

func TestUniformProcess(t *testing.T) {
	u, err := NewUniformProcess(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if u.Interval() != 50*time.Millisecond {
		t.Fatalf("Interval() = %v", u.Interval())
	}
	sched := u.Schedule(4)
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 150 * time.Millisecond, 200 * time.Millisecond}
	for i := range want {
		if sched[i] != want[i] {
			t.Errorf("schedule[%d] = %v, want %v", i, sched[i], want[i])
		}
	}
}

func TestUniformProcessInvalid(t *testing.T) {
	if _, err := NewUniformProcess(0); err == nil {
		t.Error("zero interval: expected error")
	}
}
