// Command mlperf-checker runs the result-review process of Section V-B
// against the reference submission system: it executes the audit battery
// (accuracy verification, caching detection, alternate random seeds) and the
// submission checker, and reports whether the system would clear review.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlperf/internal/audit"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/submission"
)

func main() {
	var (
		taskName = flag.String("task", string(core.ImageClassificationLight), "task to audit")
		samples  = flag.Int("samples", 64, "synthetic data-set size")
		scale    = flag.Int("scale", 64, "divide production query counts by this factor")
		seed     = flag.Uint64("seed", 42, "model/data seed")
	)
	flag.Parse()

	task := core.Task(*taskName)
	assembly, err := harness.BuildNative(task, harness.BuildOptions{DatasetSamples: *samples, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	settings := harness.QuickSettings(assembly.Spec, loadgen.SingleStream, *scale)
	settings.MinDuration = 100 * time.Millisecond

	fmt.Printf("auditing %s on %s\n\n", task, assembly.SUT.Name())
	suite := audit.Suite{SUT: assembly.SUT, QSL: assembly.QSL, Settings: settings}
	findings, err := suite.RunAll()
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}

	// Also run one scenario end to end and push the result through the
	// submission checker so reviewers see the full pipeline.
	report, err := harness.Run(assembly, harness.RunOptions{
		Scenario: loadgen.SingleStream, Settings: &settings, RunAccuracy: true,
	})
	if err != nil {
		fatal(err)
	}
	entry := submission.Entry{
		System: submission.SystemDescription{
			Name: "reference-native", Submitter: "reference", ProcessorType: "CPU",
			HostProcessors: 1, Framework: "mlperf-go-native",
		},
		Division:    submission.Closed,
		Category:    submission.RDO,
		Task:        task,
		Scenario:    loadgen.SingleStream,
		ModelUsed:   string(assembly.Spec.ReferenceModel),
		Performance: report.Performance,
		Accuracy:    report.Accuracy,
	}
	issues := submission.CheckEntry(0, entry, submission.CheckOptions{ScaleFactor: *scale})
	fmt.Printf("\nsubmission checker issues: %d\n", len(issues))
	for _, issue := range issues {
		fmt.Println("  -", issue)
	}

	if !audit.AllPassed(findings) || len(issues) > 0 {
		fmt.Println("\nRESULT: review FAILED")
		os.Exit(2)
	}
	fmt.Println("\nRESULT: review passed — submission would be cleared as valid")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlperf-checker:", err)
	os.Exit(1)
}
