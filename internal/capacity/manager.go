// Package capacity implements dynamic capacity management for the serving
// subsystem: a per-server capacity manager that resizes each hosted model's
// live limits against observed load, and a fleet autoscaler that spawns and
// retires whole replicas.
//
// # Grow/shrink policy
//
// The manager samples every hosted model's serve.Snapshot once per tick and
// compares it with the previous tick's to get rates. A model is under
// pressure when the tick saw admission-control losses (rejects, sheds or
// expiries) or its queue is deeper than one dispatch round can clear
// (depth > workers × max-batch). Pressure sustained for GrowAfter
// consecutive ticks doubles the worker pool and admission queue — growth
// must be earned, a one-tick blip never resizes. A model is idle when the
// tick saw no losses and the queue stayed below the worker count; idleness
// sustained for ShrinkAfter ticks halves the pool, so shrinking is much
// lazier than growing. Every resize is followed by a Cooldown during which
// the model holds still, and all limits are clamped to [Min, Max] bounds —
// the worker ceiling defaults to the probed environment's suggestion (two
// workers per available core, see Env). Pools only move through
// serve.Server.Resize, which never interrupts a batch in flight.
//
// # Environment probing
//
// DetectEnv reads the cgroup filesystem (v2 unified hierarchy first, v1
// split hierarchy as fallback) so a container's CPU quota — not the host's
// core count — bounds the worker ceiling, and the memory limit gates
// growth: when the Go heap is within memoryHeadroomFactor of the cgroup
// memory ceiling the manager refuses to grow regardless of pressure.
// Outside any cgroup the runtime's CPU count is the envelope.
//
// # Scrape endpoint format
//
// Manager.WritePrometheus (and Autoscaler.WritePrometheus) render the
// manager's own state in the Prometheus text exposition format, version
// 0.0.4: per-model ceiling/headroom/pressure gauges under
// mlperf_capacity_*, plus per-resource decision counters and
// last-applied-value gauges (mlperf_capacity_resizes_total,
// mlperf_capacity_resize_last). Registered on serve.Server.OnScrape, these
// families appear on the same GET /metrics response as the serving
// counters the decisions acted on.
package capacity

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"mlperf/internal/serve"
)

// Pool is the resizable serving pool the manager drives. *serve.Server
// implements it; tests substitute fakes.
type Pool interface {
	// Models lists the hosted model ids.
	Models() []string
	// ModelMetrics returns one hosted model's snapshot.
	ModelMetrics(model string) (serve.Snapshot, error)
	// Limits returns one hosted model's current live limits.
	Limits(model string) (serve.Limits, error)
	// Resize applies new live limits and returns the applied events.
	Resize(model string, req serve.ResizeRequest) ([]serve.ResizeEvent, error)
}

// memoryHeadroomFactor is the fraction of the cgroup memory limit the heap
// may reach before the manager stops growing pools.
const memoryHeadroomFactor = 0.8

// Config tunes a Manager. The zero value is usable: limits default from the
// detected environment and the policy constants below.
type Config struct {
	// Interval is the sampling tick. <= 0 disables the background loop —
	// the owner calls Tick explicitly (used by tests and single-threaded
	// drivers).
	Interval time.Duration
	// Env is the compute envelope; nil means DetectEnv().
	Env *Env
	// MinWorkers/MaxWorkers clamp every model's worker pool. MaxWorkers 0
	// defaults to Env.MaxWorkersSuggestion; MinWorkers 0 defaults to 1.
	MinWorkers, MaxWorkers int
	// MinQueue/MaxQueue clamp every model's admission-queue bound.
	// MaxQueue 0 defaults to 8× MaxWorkers; MinQueue 0 defaults to 1.
	MinQueue, MaxQueue int
	// GrowAfter is how many consecutive pressure ticks earn a grow
	// (default 2). ShrinkAfter is how many consecutive idle ticks earn a
	// shrink (default 8).
	GrowAfter, ShrinkAfter int
	// Cooldown is the hold-still period after any resize (default 2×
	// Interval, minimum one tick).
	Cooldown time.Duration
	// InitialWorkers, when > 0, resizes every model to this pool size at
	// start — "start conservative, grow when proven safe".
	InitialWorkers int
	// Logf, when set, receives one line per capacity decision.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Env == nil {
		env := DetectEnv()
		c.Env = &env
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = c.Env.MaxWorkersSuggestion()
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8 * c.MaxWorkers
	}
	if c.MinQueue <= 0 {
		c.MinQueue = 1
	}
	if c.GrowAfter <= 0 {
		c.GrowAfter = 2
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	return c
}

// ModelState is one model's capacity view at a point in time.
type ModelState struct {
	Model string `json:"model,omitempty"`
	// Limits are the live limits as of the last tick.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	MaxBatch   int `json:"max_batch"`
	// HeadroomWorkers is how many more workers the ceiling allows.
	HeadroomWorkers int `json:"headroom_workers"`
	// PressureTicks/IdleTicks are the current consecutive-tick streaks.
	PressureTicks int `json:"pressure_ticks"`
	IdleTicks     int `json:"idle_ticks"`
	// Resizes counts decisions applied to this model by this manager.
	Resizes int `json:"resizes"`
}

// State is the manager's full capacity view.
type State struct {
	Env    Env          `json:"env"`
	Models []ModelState `json:"models"`
	// Events lists every resize decision this manager applied, in order.
	Events []serve.ResizeEvent `json:"events,omitempty"`
}

// modelTrack is the manager's per-model memory between ticks.
type modelTrack struct {
	prev       serve.Snapshot
	primed     bool
	pressure   int
	idle       int
	holdUntil  time.Time
	resizes    int
	lastLimits serve.Limits
}

// Manager drives one Pool's live limits from observed load. Create with
// NewManager, stop with Close.
type Manager struct {
	cfg  Config
	pool Pool

	mu     sync.Mutex
	track  map[string]*modelTrack
	events []serve.ResizeEvent

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewManager starts a capacity manager over the pool. When cfg.Interval > 0
// a background loop ticks it; otherwise the owner calls Tick. When
// cfg.InitialWorkers > 0 every model is immediately resized to that pool
// size (recorded like any other decision, Reason "capacity-initial").
func NewManager(pool Pool, cfg Config) *Manager {
	m := &Manager{
		cfg:   cfg.withDefaults(),
		pool:  pool,
		track: make(map[string]*modelTrack),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if n := m.cfg.InitialWorkers; n > 0 {
		n = clamp(n, m.cfg.MinWorkers, m.cfg.MaxWorkers)
		for _, model := range pool.Models() {
			m.apply(model, serve.ResizeRequest{Workers: n, Reason: "capacity-initial"}, time.Now())
		}
	}
	if m.cfg.Interval > 0 {
		go m.loop()
	} else {
		close(m.done)
	}
	return m
}

// Close stops the background loop (if any) and waits for it to exit. The
// pool keeps its last-applied limits.
func (m *Manager) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

func (m *Manager) loop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			m.Tick(now)
		}
	}
}

// Tick samples every model once and applies at most one resize per model.
// Exported so drivers without a background loop (Interval <= 0) and tests
// can step the policy deterministically.
func (m *Manager) Tick(now time.Time) {
	for _, model := range m.pool.Models() {
		m.tickModel(model, now)
	}
}

func (m *Manager) tickModel(model string, now time.Time) {
	snap, err := m.pool.ModelMetrics(model)
	if err != nil {
		return
	}
	limits, err := m.pool.Limits(model)
	if err != nil {
		return
	}

	m.mu.Lock()
	tr := m.track[model]
	if tr == nil {
		tr = &modelTrack{}
		m.track[model] = tr
	}
	tr.lastLimits = limits
	if !tr.primed {
		tr.prev, tr.primed = snap, true
		m.mu.Unlock()
		return
	}
	prev := tr.prev
	tr.prev = snap

	lost := (snap.Rejected - prev.Rejected) +
		(snap.Shed - prev.Shed) +
		(snap.Expired - prev.Expired)
	backlogged := snap.QueueDepth > limits.Workers*limits.MaxBatch
	busy := snap.Completed > prev.Completed || snap.QueueDepth > 0

	pressure := lost > 0 || backlogged
	if pressure {
		tr.pressure++
		tr.idle = 0
	} else if !busy {
		tr.idle++
		tr.pressure = 0
	} else {
		tr.pressure = 0
		tr.idle = 0
	}

	var req serve.ResizeRequest
	switch {
	case now.Before(tr.holdUntil):
		// Cooling down after the last decision.
	case tr.pressure >= m.cfg.GrowAfter && !m.memPressure():
		req = serve.ResizeRequest{
			Workers:    clamp(2*limits.Workers, m.cfg.MinWorkers, m.cfg.MaxWorkers),
			QueueDepth: clamp(2*limits.QueueDepth, m.cfg.MinQueue, m.cfg.MaxQueue),
			Reason:     "capacity-grow",
		}
	case tr.idle >= m.cfg.ShrinkAfter, tr.pressure >= m.cfg.GrowAfter && m.memPressure():
		// Idle pools shrink; so do pools under pressure when memory is the
		// binding constraint (more workers would only deepen the heap).
		req = serve.ResizeRequest{
			Workers: clamp(limits.Workers/2, m.cfg.MinWorkers, m.cfg.MaxWorkers),
			Reason:  "capacity-shrink",
		}
	}
	m.mu.Unlock()

	if req == (serve.ResizeRequest{}) {
		return
	}
	if req.Workers == limits.Workers && (req.QueueDepth == 0 || req.QueueDepth == limits.QueueDepth) {
		return // already at the clamp; nothing to apply
	}
	m.apply(model, req, now)
}

// apply routes one decision through the pool and records the outcome.
func (m *Manager) apply(model string, req serve.ResizeRequest, now time.Time) {
	events, err := m.pool.Resize(model, req)
	if err != nil || len(events) == 0 {
		return
	}
	m.mu.Lock()
	tr := m.track[model]
	if tr == nil {
		tr = &modelTrack{}
		m.track[model] = tr
	}
	tr.pressure, tr.idle = 0, 0
	tr.holdUntil = now.Add(m.cfg.Cooldown)
	tr.resizes += len(events)
	if lim, err := m.pool.Limits(model); err == nil {
		tr.lastLimits = lim
	}
	m.events = append(m.events, events...)
	m.mu.Unlock()
	if m.cfg.Logf != nil {
		for _, e := range events {
			m.cfg.Logf("capacity: model %q %s %d -> %d (%s)",
				model, e.Resource, e.From, e.To, e.Reason)
		}
	}
}

// memPressure reports whether the heap is close enough to the cgroup memory
// limit that growing pools would risk the ceiling.
func (m *Manager) memPressure() bool {
	if m.cfg.Env.MemoryLimit == 0 {
		return false
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) >= memoryHeadroomFactor*float64(m.cfg.Env.MemoryLimit)
}

// State returns the manager's current capacity view (models sorted by id,
// events in decision order, both copied).
func (m *Manager) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := State{Env: *m.cfg.Env}
	models := make([]string, 0, len(m.track))
	for model := range m.track {
		models = append(models, model)
	}
	sort.Strings(models)
	for _, model := range models {
		tr := m.track[model]
		st.Models = append(st.Models, ModelState{
			Model:           model,
			Workers:         tr.lastLimits.Workers,
			QueueDepth:      tr.lastLimits.QueueDepth,
			MaxBatch:        tr.lastLimits.MaxBatch,
			HeadroomWorkers: m.cfg.MaxWorkers - tr.lastLimits.Workers,
			PressureTicks:   tr.pressure,
			IdleTicks:       tr.idle,
			Resizes:         tr.resizes,
		})
	}
	st.Events = append([]serve.ResizeEvent(nil), m.events...)
	return st
}

// Events returns a copy of every resize decision applied so far.
func (m *Manager) Events() []serve.ResizeEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]serve.ResizeEvent(nil), m.events...)
}

// WritePrometheus renders the manager's state in the Prometheus text format,
// suitable for serve.Server.OnScrape.
func (m *Manager) WritePrometheus(w io.Writer) {
	st := m.State()
	fmt.Fprintf(w, "# HELP mlperf_capacity_max_workers Worker ceiling from the probed environment.\n")
	fmt.Fprintf(w, "# TYPE mlperf_capacity_max_workers gauge\n")
	fmt.Fprintf(w, "mlperf_capacity_max_workers %d\n", m.cfg.MaxWorkers)
	fmt.Fprintf(w, "# HELP mlperf_capacity_cpu_limit Probed CPU envelope in cores.\n")
	fmt.Fprintf(w, "# TYPE mlperf_capacity_cpu_limit gauge\n")
	fmt.Fprintf(w, "mlperf_capacity_cpu_limit{source=%q} %g\n", m.cfg.Env.Source, m.cfg.Env.CPULimit)
	gauge := func(name, help string, value func(ModelState) int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, ms := range st.Models {
			label := ms.Model
			if label == "" {
				label = "default"
			}
			fmt.Fprintf(w, "%s{model=%q} %d\n", name, label, value(ms))
		}
	}
	gauge("mlperf_capacity_headroom_workers", "Workers the ceiling still allows.",
		func(ms ModelState) int { return ms.HeadroomWorkers })
	gauge("mlperf_capacity_pressure_ticks", "Consecutive ticks under pressure.",
		func(ms ModelState) int { return ms.PressureTicks })
	gauge("mlperf_capacity_idle_ticks", "Consecutive idle ticks.",
		func(ms ModelState) int { return ms.IdleTicks })
	serve.WriteResizesPrometheus(w, "mlperf_capacity", st.Events)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
