package harness

import (
	"testing"
	"time"

	"mlperf/internal/audit"
	"mlperf/internal/backend"
	"mlperf/internal/chaos"
	"mlperf/internal/core"
	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
)

// chaosDeployment builds a 2-replica loopback fleet with fast recovery knobs
// (tight backoff so tests converge quickly) and an optional fault injector.
func chaosDeployment(t *testing.T, in *chaos.Injector, rcfg backend.RemoteConfig) (*Assembly, *LoopbackDeployment) {
	t.Helper()
	a, err := BuildNative(core.ImageClassificationLight, BuildOptions{DatasetSamples: 32, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rcfg.RedialInitial == 0 {
		rcfg.RedialInitial = time.Millisecond
	}
	if rcfg.RedialMax == 0 {
		rcfg.RedialMax = 20 * time.Millisecond
	}
	if rcfg.RecoverySeed == 0 {
		rcfg.RecoverySeed = 7
	}
	dep, err := a.ServeLoopback(ServeOptions{
		Replicas: 2,
		Server:   serve.Config{Workers: 2, BatchWait: time.Millisecond},
		Client:   rcfg,
		Chaos:    in,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	return a, dep
}

// servingEvidence assembles the audit evidence for a chaos run from the
// client's fault-tolerant view (crashed epochs folded back into the replica
// snapshots).
func servingEvidence(t *testing.T, dep *LoopbackDeployment, res *loadgen.Result, settings loadgen.TestSettings) audit.ServingEvidence {
	t.Helper()
	snaps, err := dep.Remote.ReplicaMetrics()
	if err != nil {
		t.Fatal(err)
	}
	rec := dep.Remote.Recovery()
	return audit.ServingEvidence{
		Result:               res,
		Settings:             settings,
		ClientRejected:       dep.Remote.Rejected(),
		ClientExpired:        dep.Remote.Expired(),
		ClientTransportDrops: dep.Remote.TransportDrops(),
		Recovery:             &rec,
		Replicas:             snaps,
	}
}

// TestChaosKillRestartRejoins is the PR's acceptance test: one replica of a
// 2-replica fleet is killed mid-run and restarted on the same address. The
// fleet must route around the outage (the run completes VALID with zero
// dropped responses), the killed replica must rejoin through the probe
// handshake and reopen barrier, the outage must be visible as a closed
// down/up interval in the merged metrics, and audit.CheckServing must
// reconcile all of it.
func TestChaosKillRestartRejoins(t *testing.T) {
	a, dep := chaosDeployment(t, nil, backend.RemoteConfig{MaxInFlight: 32})

	settings := QuickSettings(a.Spec, loadgen.Offline, 1024)
	settings.MinDuration = 0
	settings.MinSampleCount = 4096

	type runOut struct {
		res *loadgen.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := loadgen.StartTest(dep.Assembly.SUT, dep.Assembly.QSL, settings)
		done <- runOut{res, err}
	}()

	// Kill replica 0 once it has demonstrably served traffic, then bring it
	// back shortly after — a crash and recovery in the middle of the stream.
	killed := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if dep.Replica(0).Metrics().Completed > 0 {
			if err := dep.KillReplica(0); err != nil {
				t.Fatalf("killing replica 0: %v", err)
			}
			killed = true
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	if !killed {
		t.Fatal("replica 0 never served anything to kill")
	}
	time.Sleep(10 * time.Millisecond)
	if err := dep.RestartReplica(0); err != nil {
		t.Fatal(err)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	if res.ResponsesDropped != 0 {
		t.Errorf("fleet dropped %d responses despite failover", res.ResponsesDropped)
	}
	if !res.Valid {
		t.Errorf("kill-restart run invalid: %v", res.ValidityMessages)
	}
	dep.Remote.Wait()

	// The replica must rejoin: probed ready, reopen barrier re-run, readmitted
	// to routing. The supervisors keep working after the run, so poll briefly.
	rejoinDeadline := time.Now().Add(5 * time.Second)
	for dep.Remote.Recovery().Rejoins == 0 && time.Now().Before(rejoinDeadline) {
		time.Sleep(time.Millisecond)
	}
	rec := dep.Remote.Recovery()
	if rec.Rejoins < 1 {
		t.Fatalf("killed replica never rejoined: %+v", rec)
	}
	if dep.Remote.DownReplicas() != 0 {
		t.Errorf("%d replicas still down after restart", dep.Remote.DownReplicas())
	}
	if len(rec.DownIntervals) == 0 {
		t.Fatal("no down interval recorded for the outage")
	}
	iv := rec.DownIntervals[0]
	if iv.End.IsZero() || iv.End.Before(iv.Start) || iv.Replica != 0 {
		t.Errorf("malformed down interval: %+v", iv)
	}
	if rec.ConnRedials < int64(rec.Rejoins) {
		t.Errorf("%d rejoins with only %d connection redials", rec.Rejoins, rec.ConnRedials)
	}

	// The outage is visible exactly where the run's counters are reported.
	merged, err := dep.Remote.ServerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Recovery == nil || merged.Recovery.Rejoins < 1 {
		t.Error("merged snapshot carries no recovery record")
	}
	if merged.Completed == 0 {
		t.Error("merged snapshot lost the run's completions")
	}

	findings, err := audit.CheckServing(servingEvidence(t, dep, res, settings))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !f.Pass {
			t.Errorf("audit %s failed: %s", f.Name, f.Detail)
		}
	}
}

// TestChaosConnFaultSoak runs an offline stream through a fleet whose every
// connection misbehaves on a seeded schedule — severed, truncated, corrupted,
// torn and delayed writes on both ends of the wire. The run must terminate
// (never hang), every dropped response must be accounted for, and the audit
// must reconcile the recovery record with the drop accounting.
func TestChaosConnFaultSoak(t *testing.T) {
	in := chaos.New(chaos.Config{
		Seed:             123,
		SeverRate:        0.01,
		TruncateRate:     0.005,
		CorruptRate:      0.005,
		PartialWriteRate: 0.02,
		DelayRate:        0.02,
		Delay:            200 * time.Microsecond,
		PartialDelay:     100 * time.Microsecond,
		MaxFaults:        12,
	})
	a, dep := chaosDeployment(t, in, backend.RemoteConfig{MaxInFlight: 32, MaxAttempts: 4})

	settings := QuickSettings(a.Spec, loadgen.Offline, 1024)
	settings.MinDuration = 0
	settings.MinSampleCount = 2048

	res, err := loadgen.StartTest(dep.Assembly.SUT, dep.Assembly.QSL, settings)
	if err != nil {
		t.Fatal(err)
	}
	dep.Remote.Wait()

	accounted := dep.Remote.Rejected() + dep.Remote.Expired() + dep.Remote.TransportDrops()
	if int64(res.ResponsesDropped) != accounted {
		t.Errorf("run dropped %d responses; client accounts for %d (rejected %d, expired %d, transport %d)",
			res.ResponsesDropped, accounted, dep.Remote.Rejected(), dep.Remote.Expired(), dep.Remote.TransportDrops())
	}
	if res.ResponsesDropped > 0 && res.Valid {
		t.Error("run dropped responses yet reports valid")
	}
	if res.SamplesCompleted != res.SamplesIssued {
		t.Errorf("soak hung work: %d of %d samples completed", res.SamplesCompleted, res.SamplesIssued)
	}

	findings, err := audit.CheckServing(servingEvidence(t, dep, res, settings))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !f.Pass {
			t.Errorf("audit %s failed: %s", f.Name, f.Detail)
		}
	}
	t.Logf("soak: %d faults fired (%d severed), %d redials, %d retries, %d transport drops, %d dropped responses",
		in.Faults(), func() int64 { s, _, _ := in.Stats(); return s }(),
		dep.Remote.Recovery().ConnRedials, dep.Remote.Recovery().Retries,
		dep.Remote.TransportDrops(), res.ResponsesDropped)
}

// TestChaosResizeSoak runs live pool resizes concurrently with a mid-run
// replica crash and restart: replica 1's worker pool oscillates every couple
// of milliseconds while replica 0 dies and rejoins under streaming load. The
// run must terminate with every drop accounted, and the audit must reconcile
// both the recovery record and replica 1's resize-event chain (contiguous,
// ending at the live limits). The CI race job runs this with -race, making it
// the kill-mid-resize data-race probe.
func TestChaosResizeSoak(t *testing.T) {
	a, dep := chaosDeployment(t, nil, backend.RemoteConfig{MaxInFlight: 32})

	settings := QuickSettings(a.Spec, loadgen.Offline, 1024)
	settings.MinDuration = 0
	settings.MinSampleCount = 4096

	type runOut struct {
		res *loadgen.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := loadgen.StartTest(dep.Assembly.SUT, dep.Assembly.QSL, settings)
		done <- runOut{res, err}
	}()

	// Oscillate replica 1's worker pool for the whole run. Only the replica
	// that never crashes is resized: a crash discards the server's event
	// chain while the client's banked epoch keeps it, and reconciling
	// cross-epoch chains is deliberately out of scope for the audit.
	stopResizer := make(chan struct{})
	resizerDone := make(chan struct{})
	go func() {
		defer close(resizerDone)
		workers := 4
		for {
			select {
			case <-stopResizer:
				return
			default:
			}
			if _, err := dep.Replica(1).Resize("", serve.ResizeRequest{Workers: workers, Reason: "soak"}); err != nil {
				t.Errorf("mid-run resize: %v", err)
				return
			}
			workers = 6 - workers // 2 <-> 4
			time.Sleep(2 * time.Millisecond)
		}
	}()

	killed := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if dep.Replica(0).Metrics().Completed > 0 {
			if err := dep.KillReplica(0); err != nil {
				t.Fatalf("killing replica 0: %v", err)
			}
			killed = true
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	if !killed {
		t.Fatal("replica 0 never served anything to kill")
	}
	time.Sleep(10 * time.Millisecond)
	if err := dep.RestartReplica(0); err != nil {
		t.Fatal(err)
	}

	out := <-done
	close(stopResizer)
	<-resizerDone
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res
	dep.Remote.Wait()

	accounted := dep.Remote.Rejected() + dep.Remote.Expired() + dep.Remote.TransportDrops()
	if int64(res.ResponsesDropped) != accounted {
		t.Errorf("run dropped %d responses; client accounts for %d", res.ResponsesDropped, accounted)
	}
	if res.SamplesCompleted != res.SamplesIssued {
		t.Errorf("soak hung work: %d of %d samples completed", res.SamplesCompleted, res.SamplesIssued)
	}

	snap := dep.Replica(1).Metrics()
	if len(snap.Resizes) < 4 {
		t.Fatalf("resizer recorded only %d events", len(snap.Resizes))
	}
	findings, err := audit.CheckServing(servingEvidence(t, dep, res, settings))
	if err != nil {
		t.Fatal(err)
	}
	sawCapacity := false
	for _, f := range findings {
		if f.Name == "serving-capacity" {
			sawCapacity = true
		}
		if !f.Pass {
			t.Errorf("audit %s failed: %s", f.Name, f.Detail)
		}
	}
	if !sawCapacity {
		t.Error("resize soak produced no serving-capacity finding")
	}
}

// TestChaosDrainRefusesReadmission pins the drain/probe interlock: when a
// crashed replica's address comes back as a DRAINING server, the client's
// redial supervisor connects, probes, reads ProbeDraining and keeps the
// replica out of routing. Only when a ready server takes the address does the
// replica rejoin.
func TestChaosDrainRefusesReadmission(t *testing.T) {
	a, err := BuildNative(core.ImageClassificationLight, BuildOptions{DatasetSamples: 16, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	scfg := serve.Config{Engine: a.Engine, Store: a.QSL, Workers: 2}
	srv, err := serve.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	remote, err := backend.NewRemote(backend.RemoteConfig{
		Addr: addr, RedialInitial: time.Millisecond, RedialMax: 5 * time.Millisecond, RecoverySeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Crash the server, then resurrect its address as a draining server.
	if err := srv.Kill(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for remote.DownReplicas() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if remote.DownReplicas() != 1 {
		t.Fatal("replica not marked down after kill")
	}
	scfg.Addr = addr
	draining, err := serve.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	draining.Drain()
	if !draining.Draining() {
		t.Fatal("server not draining after Drain")
	}

	// The supervisors reach a listening server whose probe says "draining":
	// the replica must stay out of routing.
	time.Sleep(50 * time.Millisecond)
	if remote.DownReplicas() != 1 {
		t.Fatal("draining server was readmitted to routing")
	}
	if rec := remote.Recovery(); rec.Rejoins != 0 {
		t.Fatalf("%d rejoins against a draining server", rec.Rejoins)
	}

	// A ready server on the same address is readmitted.
	if err := draining.Close(); err != nil {
		t.Fatal(err)
	}
	ready, err := serve.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ready.Close()
	for remote.DownReplicas() == 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if remote.DownReplicas() != 0 {
		t.Fatal("ready server never rejoined")
	}
	rec := remote.Recovery()
	if rec.Rejoins != 1 || len(rec.DownIntervals) != 1 || rec.DownIntervals[0].End.IsZero() {
		t.Errorf("recovery record after rejoin: %+v", rec)
	}
}
