package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if id := tr.Issue(); id != 0 {
		t.Fatalf("nil tracer issued trace id %d", id)
	}
	if mt := tr.Model("resnet"); mt != nil {
		t.Fatalf("nil tracer returned a model state")
	}
	if recs := tr.Records(); recs != nil {
		t.Fatalf("nil tracer returned records: %v", recs)
	}
	var mt *ModelTrace
	if mt.Observe(100) {
		t.Fatalf("nil model state reported a tail hit")
	}
	mt.Publish(&Record{})
	if s := mt.Snapshot(); s != nil {
		t.Fatalf("nil model state returned a snapshot: %v", s)
	}
}

func TestIssueSamplingPeriod(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 400; i++ {
		if id := tr.Issue(); id != 0 {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("SampleEvery=4 sampled %d of 400, want 100", sampled)
	}
	every := New(Config{SampleEvery: 1})
	for i := 0; i < 10; i++ {
		if every.Issue() == 0 {
			t.Fatalf("SampleEvery=1 skipped a request")
		}
	}
}

func TestSampledTraceIDsAreUniqueAndNonZero(t *testing.T) {
	tr := New(Config{SampleEvery: 2})
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := tr.Issue()
		if id == 0 {
			continue
		}
		if seen[id] {
			t.Fatalf("trace id %d issued twice", id)
		}
		seen[id] = true
	}
}

func TestRingRetainsNewestRecords(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 8})
	mt := tr.Model("m")
	for i := 1; i <= 20; i++ {
		mt.Publish(&Record{TraceID: uint64(i), Model: "m"})
	}
	recs := mt.Snapshot()
	if len(recs) != 8 {
		t.Fatalf("ring of 8 returned %d records", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(13 + i); rec.TraceID != want {
			t.Fatalf("record %d has trace id %d, want %d (oldest-first)", i, rec.TraceID, want)
		}
	}
}

func TestTailCaptureArmsAndFlagsOutliers(t *testing.T) {
	tr := New(Config{SampleEvery: 1 << 30}) // coin effectively never lands
	mt := tr.Model("m")
	// Before enough observations accumulate, nothing is a tail outlier.
	if mt.Observe(1e9) {
		t.Fatalf("tail capture armed before minimum samples")
	}
	// Feed a tight distribution around 1ms until the threshold establishes.
	for i := 0; i < 2048; i++ {
		mt.Observe(1e6 + int64(i%100))
	}
	thr := mt.TailThreshold()
	if thr <= 0 {
		t.Fatalf("tail threshold never established")
	}
	if thr > 2e6 {
		t.Fatalf("tail threshold %d ns is far beyond the 1ms distribution", thr)
	}
	if !mt.Observe(50e6) {
		t.Fatalf("50ms outlier not flagged against a ~1ms distribution (threshold %d)", thr)
	}
	if mt.Observe(1) {
		t.Fatalf("1ns observation flagged as tail")
	}
}

// TestTailBucketsQuarterOctave pins the sub-bucket math: floors invert the
// bucket function, indices are monotone in latency, and a distribution
// confined to one octave still resolves a threshold above its median — the
// failure mode plain power-of-two buckets have.
func TestTailBucketsQuarterOctave(t *testing.T) {
	for _, nanos := range []int64{0, 1, 2, 3, 4, 7, 8, 100, 999, 1e6, 2e6 - 1, 5e8, 1 << 40, 1<<62 + 12345} {
		i := tailBucket(nanos)
		if i < 0 || i >= tailBuckets {
			t.Fatalf("latency %d maps to out-of-range bucket %d", nanos, i)
		}
		floor := tailBucketFloor(i)
		if floor > nanos {
			t.Errorf("bucket floor %d above its member %d", floor, nanos)
		}
		if nanos > 0 && tailBucket(floor) != i {
			t.Errorf("floor %d of bucket %d maps back to bucket %d", floor, i, tailBucket(floor))
		}
		if next := tailBucket(nanos + 1); next < i {
			t.Errorf("bucket index not monotone at %d: %d then %d", nanos, i, next)
		}
	}

	// Narrow distribution entirely inside [2^21, 2^22): most mass at ~2.2ms,
	// 2% at ~4.0ms. The p99 threshold must clear the bulk of the
	// distribution instead of collapsing to the octave floor (2.097ms).
	var tr tailTracker
	flagged := 0
	for i := 0; i < 4096; i++ {
		lat := int64(2_200_000)
		if i%50 == 0 {
			lat = 4_000_000
		}
		if tr.observe(lat) && lat < 3_000_000 {
			flagged++
		}
	}
	if thr := tr.threshold.Load(); thr <= 2_200_000 {
		t.Fatalf("threshold %dns sits at or below the bulk of a narrow distribution", thr)
	}
	if flagged > 0 {
		t.Errorf("%d bulk (~2.2ms) observations flagged as tail", flagged)
	}
}

func TestConcurrentPublishAndSnapshot(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 64})
	mt := tr.Model("m")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mt.Observe(int64(1000 + i))
				mt.Publish(&Record{TraceID: uint64(g*1_000_000 + i + 1), Model: "m", End2End: int64(i)})
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		for _, rec := range mt.Snapshot() {
			if rec.TraceID == 0 {
				t.Errorf("snapshot surfaced a zero record")
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestRecordsMergesModelsSorted(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 8})
	tr.Model("zeta").Publish(&Record{TraceID: 1, Model: "zeta"})
	tr.Model("alpha").Publish(&Record{TraceID: 2, Model: "alpha"})
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Model != "alpha" || recs[1].Model != "zeta" {
		t.Fatalf("records not model-sorted: %v", recs)
	}
}

func TestAttributeClassifiesDominantStage(t *testing.T) {
	ms := int64(1e6)
	records := []Record{
		// Queue-dominated: 40ms queue wait vs 5ms service, little wire.
		{TraceID: 1, Origin: OriginClient, Tail: true, End2End: 50 * ms, HasServer: true,
			Stages: stageSet(map[Stage]int64{StageQueue: 40 * ms, StageService: 5 * ms})},
		// Service-dominated.
		{TraceID: 2, Origin: OriginClient, Tail: true, End2End: 50 * ms, HasServer: true,
			Stages: stageSet(map[Stage]int64{StageQueue: 2 * ms, StageService: 45 * ms})},
		// Wire-dominated: server only saw 10ms of a 60ms round trip.
		{TraceID: 3, Origin: OriginClient, Tail: true, End2End: 60 * ms, HasServer: true,
			Stages: stageSet(map[Stage]int64{StageQueue: 4 * ms, StageService: 6 * ms})},
		// Tail capture with no server data: unattributed.
		{Origin: OriginClient, Tail: true, End2End: 70 * ms},
		// Not tail: ignored.
		{TraceID: 4, Origin: OriginClient, End2End: ms},
	}
	rep := Attribute(records)
	if rep.Total != 5 || rep.Tail != 4 {
		t.Fatalf("total/tail = %d/%d, want 5/4", rep.Total, rep.Tail)
	}
	byClass := map[Dominant]ClassShare{}
	for _, c := range rep.Classes {
		byClass[c.Class] = c
	}
	for class, want := range map[Dominant]int{QueueDominated: 1, ServiceDominated: 1, WireDominated: 1, Unattributed: 1} {
		if got := byClass[class].Count; got != want {
			t.Fatalf("class %s count %d, want %d", class, got, want)
		}
	}
	if byClass[WireDominated].WorstTraceID != 3 {
		t.Fatalf("wire worst trace = %d, want 3", byClass[WireDominated].WorstTraceID)
	}
	if byClass[Unattributed].WorstNanos != 70*ms {
		t.Fatalf("unattributed worst = %d, want %d", byClass[Unattributed].WorstNanos, 70*ms)
	}
	if !strings.Contains(rep.String(), "4/5 records") {
		t.Fatalf("report string missing tail ratio: %q", rep.String())
	}
}

func TestAttributeServerOriginHasNoWireSlice(t *testing.T) {
	rec := Record{Origin: OriginServer, Tail: true, End2End: 100e6,
		Stages: stageSet(map[Stage]int64{StageQueue: 10e6, StageService: 20e6})}
	rep := Attribute([]Record{rec})
	if got := rep.Dominant(); got != ServiceDominated {
		t.Fatalf("server record classified %s, want %s", got, ServiceDominated)
	}
}

func TestRecordStageSums(t *testing.T) {
	rec := Record{Stages: stageSet(map[Stage]int64{
		StageIssue: 1, StageWrite: 2, StageAdmit: 10, StageReply: 20,
	})}
	if got := rec.ClientNanos(); got != 3 {
		t.Fatalf("ClientNanos = %d, want 3", got)
	}
	if got := rec.ServerNanos(); got != 30 {
		t.Fatalf("ServerNanos = %d, want 30", got)
	}
}

func TestPrometheusExportIsCumulativeAndLabeled(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	mt := tr.Model("resnet")
	mt.Observe(2_000) // 2µs end-to-end
	mt.Observe(900)   // sub-1µs
	mt.Publish(&Record{TraceID: 1, Model: "resnet",
		Stages: stageSet(map[Stage]int64{StageQueue: 5_000})})
	var b strings.Builder
	tr.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE mlperf_trace_stage_seconds histogram",
		"# TYPE mlperf_trace_e2e_seconds histogram",
		`mlperf_trace_stage_seconds_bucket{model="resnet",stage="queue",le="+Inf"} 1`,
		`mlperf_trace_stage_seconds_count{model="resnet",stage="queue"} 1`,
		`mlperf_trace_e2e_seconds_count{model="resnet"} 2`,
		`mlperf_trace_e2e_seconds_bucket{model="resnet",le="1e-06"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape output missing %q:\n%s", want, out)
		}
	}
	// Stages never observed must not emit series.
	if strings.Contains(out, `stage="reply"`) {
		t.Fatalf("unobserved stage emitted series:\n%s", out)
	}
}

func stageSet(m map[Stage]int64) [NumStages]int64 {
	var s [NumStages]int64
	for st, d := range m {
		s[st] = d
	}
	return s
}
