package backend

import (
	"fmt"
	"sync"
	"time"

	"mlperf/internal/loadgen"
)

// Batching wraps another SUT with a dynamic batcher: incoming queries are
// buffered and forwarded as larger merged queries once either MaxBatch
// samples have accumulated or MaxWait has elapsed since the first buffered
// sample. Dynamic batching is the key optimization separating the server and
// offline scenarios (Section VI-B): it raises throughput at the cost of
// added queueing latency.
type Batching struct {
	inner    loadgen.SUT
	maxBatch int
	maxWait  time.Duration

	mu      sync.Mutex
	pending []*pendingSample
	timer   *time.Timer
	nextID  uint64
	closed  bool
}

// pendingSample ties a buffered sample back to its originating query.
type pendingSample struct {
	query  *loadgen.Query
	sample loadgen.QuerySample
}

// NewBatching validates the configuration and returns the wrapper.
func NewBatching(inner loadgen.SUT, maxBatch int, maxWait time.Duration) (*Batching, error) {
	if inner == nil {
		return nil, fmt.Errorf("backend: batching wrapper needs an inner SUT")
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("backend: MaxBatch must be positive, got %d", maxBatch)
	}
	if maxWait <= 0 {
		return nil, fmt.Errorf("backend: MaxWait must be positive, got %v", maxWait)
	}
	return &Batching{inner: inner, maxBatch: maxBatch, maxWait: maxWait}, nil
}

// Name implements loadgen.SUT.
func (b *Batching) Name() string { return b.inner.Name() + "+dynamic-batching" }

// IssueQuery implements loadgen.SUT.
func (b *Batching) IssueQuery(q *loadgen.Query) {
	b.mu.Lock()
	for i := range q.Samples {
		b.pending = append(b.pending, &pendingSample{query: q, sample: q.Samples[i]})
	}
	shouldFlush := len(b.pending) >= b.maxBatch
	if !shouldFlush && b.timer == nil {
		b.timer = time.AfterFunc(b.maxWait, b.flushTimer)
	}
	b.mu.Unlock()
	if shouldFlush {
		b.Flush()
	}
}

// flushTimer is the MaxWait expiry path.
func (b *Batching) flushTimer() {
	b.Flush()
}

// Flush forwards all buffered samples to the inner SUT immediately.
func (b *Batching) Flush() {
	b.mu.Lock()
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	pending := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(pending) == 0 {
		return
	}

	for start := 0; start < len(pending); start += b.maxBatch {
		end := start + b.maxBatch
		if end > len(pending) {
			end = len(pending)
		}
		b.forward(pending[start:end])
	}
}

// forward builds one merged query for the inner SUT and routes its responses
// back to the original queries.
func (b *Batching) forward(batch []*pendingSample) {
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.mu.Unlock()

	merged := &loadgen.Query{ID: id, Samples: make([]loadgen.QuerySample, len(batch))}
	owners := make(map[uint64]*loadgen.Query, len(batch))
	for i, p := range batch {
		merged.Samples[i] = p.sample
		owners[p.sample.ID] = p.query
	}
	merged.Issued = time.Now()
	proxy := &batchProxy{inner: b.inner, merged: merged, owners: owners}
	proxy.run()
}

// batchProxy issues the merged query and demultiplexes responses.
type batchProxy struct {
	inner  loadgen.SUT
	merged *loadgen.Query
	owners map[uint64]*loadgen.Query
}

func (p *batchProxy) run() {
	p.merged.SetCompletionHandler(func(_ *loadgen.Query, responses []loadgen.Response) {
		// Route each response to the query that originally carried the sample.
		byOwner := make(map[*loadgen.Query][]loadgen.Response)
		for _, r := range responses {
			owner := p.owners[r.SampleID]
			if owner == nil {
				continue
			}
			byOwner[owner] = append(byOwner[owner], r)
		}
		for owner, rs := range byOwner {
			owner.Complete(rs)
		}
	})
	p.inner.IssueQuery(p.merged)
}

// FlushQueries implements loadgen.SUT: buffered samples are forwarded and the
// inner SUT is flushed.
func (b *Batching) FlushQueries() {
	b.Flush()
	b.inner.FlushQueries()
}
