// Package dataset provides the synthetic data sets and the query sample
// library (QSL) abstraction of the benchmark. The paper's tasks use ImageNet,
// COCO and WMT16; those are substituted with deterministic synthetic
// generators that preserve the benchmark-relevant behaviour: samples are
// addressed by index, loaded into memory as an untimed operation before the
// run, swept completely in accuracy mode, and scored with the same metrics
// (Top-1, mAP, BLEU).
package dataset

import (
	"fmt"

	"mlperf/internal/metrics"
	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

// Kind identifies the payload a sample carries.
type Kind int

const (
	// KindImageClassification samples carry an image and a class label.
	KindImageClassification Kind = iota
	// KindObjectDetection samples carry an image and ground-truth boxes.
	KindObjectDetection
	// KindTranslation samples carry source tokens and reference target tokens.
	KindTranslation
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindImageClassification:
		return "image-classification"
	case KindObjectDetection:
		return "object-detection"
	case KindTranslation:
		return "translation"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Sample is one element of a data set.
type Sample struct {
	Index     int
	Image     *tensor.Tensor // vision tasks (CHW)
	Label     int            // classification ground truth
	Boxes     []metrics.Box  // detection ground truth
	Tokens    []int          // translation source
	RefTokens []int          // translation reference
}

// Dataset is an indexed collection of samples with known ground truth.
type Dataset interface {
	// Name returns the data set's identifier (e.g. "synthetic-imagenet").
	Name() string
	// Kind returns the task family the samples belong to.
	Kind() Kind
	// Size returns the total number of samples.
	Size() int
	// Sample returns the i-th sample.
	Sample(i int) (*Sample, error)
	// PerformanceSampleCount returns how many samples the LoadGen should ask
	// the SUT to keep resident during performance mode (the QSL's
	// "performance sample count" in the C++ LoadGen).
	PerformanceSampleCount() int
}

// ImageConfig configures a synthetic vision data set.
type ImageConfig struct {
	Name         string
	Samples      int
	Classes      int
	Channels     int
	Height       int
	Width        int
	MaxBoxes     int // detection only: maximum ground-truth boxes per image
	Seed         uint64
	PerfSamples  int // performance sample count; defaults to min(Samples, 1024)
	ImageStdDev  float64
	ClassSignal  float64 // strength of the class-dependent planted signal
	BoxClassBase int     // detection only: first class id used for boxes
}

func (c *ImageConfig) normalize() error {
	if c.Samples <= 0 {
		return fmt.Errorf("dataset: sample count must be positive, got %d", c.Samples)
	}
	if c.Classes <= 1 {
		return fmt.Errorf("dataset: need at least 2 classes, got %d", c.Classes)
	}
	if c.Channels <= 0 || c.Height <= 0 || c.Width <= 0 {
		return fmt.Errorf("dataset: image dimensions must be positive: %dx%dx%d", c.Channels, c.Height, c.Width)
	}
	if c.PerfSamples <= 0 {
		c.PerfSamples = c.Samples
		if c.PerfSamples > 1024 {
			c.PerfSamples = 1024
		}
	}
	if c.PerfSamples > c.Samples {
		c.PerfSamples = c.Samples
	}
	if c.ImageStdDev <= 0 {
		c.ImageStdDev = 1
	}
	if c.ClassSignal <= 0 {
		c.ClassSignal = 2
	}
	if c.MaxBoxes <= 0 {
		c.MaxBoxes = 4
	}
	return nil
}

// SyntheticImages is an in-memory synthetic image-classification data set.
// Each image is Gaussian noise plus a class-dependent planted pattern so that
// trained-free reference models still expose a deterministic relationship
// between inputs and predictions.
type SyntheticImages struct {
	name        string
	samples     []*Sample
	classes     int
	perfSamples int
}

// NewSyntheticImages builds the data set eagerly and deterministically from
// the seed in cfg.
func NewSyntheticImages(cfg ImageConfig) (*SyntheticImages, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "synthetic-imagenet"
	}
	rng := stats.NewRNG(cfg.Seed)
	ds := &SyntheticImages{name: cfg.Name, classes: cfg.Classes, perfSamples: cfg.PerfSamples}
	for i := 0; i < cfg.Samples; i++ {
		label := rng.Intn(cfg.Classes)
		img := tensor.MustNew(cfg.Channels, cfg.Height, cfg.Width)
		data := img.Data()
		for j := range data {
			data[j] = float32(rng.NormFloat64() * cfg.ImageStdDev)
		}
		plantClassSignal(img, label, cfg.Classes, float32(cfg.ClassSignal))
		ds.samples = append(ds.samples, &Sample{Index: i, Image: img, Label: label})
	}
	return ds, nil
}

// plantClassSignal adds a label-dependent offset pattern to the image so that
// the class is in principle recoverable from the pixels.
func plantClassSignal(img *tensor.Tensor, label, classes int, strength float32) {
	data := img.Data()
	n := len(data)
	if n == 0 || classes <= 0 {
		return
	}
	// Offset a label-specific stripe of the image.
	stripe := n / classes
	if stripe == 0 {
		stripe = 1
	}
	start := (label * stripe) % n
	end := start + stripe
	if end > n {
		end = n
	}
	for i := start; i < end; i++ {
		data[i] += strength
	}
}

// Name implements Dataset.
func (d *SyntheticImages) Name() string { return d.name }

// Kind implements Dataset.
func (d *SyntheticImages) Kind() Kind { return KindImageClassification }

// Size implements Dataset.
func (d *SyntheticImages) Size() int { return len(d.samples) }

// Classes returns the number of classes.
func (d *SyntheticImages) Classes() int { return d.classes }

// PerformanceSampleCount implements Dataset.
func (d *SyntheticImages) PerformanceSampleCount() int { return d.perfSamples }

// Sample implements Dataset.
func (d *SyntheticImages) Sample(i int) (*Sample, error) {
	if i < 0 || i >= len(d.samples) {
		return nil, fmt.Errorf("dataset %s: sample index %d out of range [0,%d)", d.name, i, len(d.samples))
	}
	return d.samples[i], nil
}

// SetLabel overrides the ground-truth label of sample i. It is used by the
// oracle relabeling step that establishes the reference model's accuracy.
func (d *SyntheticImages) SetLabel(i, label int) error {
	if i < 0 || i >= len(d.samples) {
		return fmt.Errorf("dataset %s: sample index %d out of range", d.name, i)
	}
	if label < 0 || label >= d.classes {
		return fmt.Errorf("dataset %s: label %d outside [0,%d)", d.name, label, d.classes)
	}
	d.samples[i].Label = label
	return nil
}

// SyntheticDetection is an in-memory synthetic object-detection data set.
type SyntheticDetection struct {
	name        string
	samples     []*Sample
	classes     int
	perfSamples int
}

// NewSyntheticDetection builds a detection data set with 1..MaxBoxes
// annotated boxes per image.
func NewSyntheticDetection(cfg ImageConfig) (*SyntheticDetection, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "synthetic-coco"
	}
	rng := stats.NewRNG(cfg.Seed)
	ds := &SyntheticDetection{name: cfg.Name, classes: cfg.Classes, perfSamples: cfg.PerfSamples}
	for i := 0; i < cfg.Samples; i++ {
		img := tensor.MustNew(cfg.Channels, cfg.Height, cfg.Width)
		data := img.Data()
		for j := range data {
			data[j] = float32(rng.NormFloat64() * cfg.ImageStdDev)
		}
		nBoxes := 1 + rng.Intn(cfg.MaxBoxes)
		boxes := make([]metrics.Box, 0, nBoxes)
		for b := 0; b < nBoxes; b++ {
			x1 := rng.Float64() * 0.7
			y1 := rng.Float64() * 0.7
			w := 0.1 + rng.Float64()*0.25
			h := 0.1 + rng.Float64()*0.25
			boxes = append(boxes, metrics.Box{
				X1: x1, Y1: y1, X2: minFloat(x1+w, 1), Y2: minFloat(y1+h, 1),
				Class: cfg.BoxClassBase + rng.Intn(cfg.Classes),
			})
		}
		ds.samples = append(ds.samples, &Sample{Index: i, Image: img, Boxes: boxes})
	}
	return ds, nil
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Name implements Dataset.
func (d *SyntheticDetection) Name() string { return d.name }

// Kind implements Dataset.
func (d *SyntheticDetection) Kind() Kind { return KindObjectDetection }

// Size implements Dataset.
func (d *SyntheticDetection) Size() int { return len(d.samples) }

// Classes returns the number of object classes.
func (d *SyntheticDetection) Classes() int { return d.classes }

// PerformanceSampleCount implements Dataset.
func (d *SyntheticDetection) PerformanceSampleCount() int { return d.perfSamples }

// Sample implements Dataset.
func (d *SyntheticDetection) Sample(i int) (*Sample, error) {
	if i < 0 || i >= len(d.samples) {
		return nil, fmt.Errorf("dataset %s: sample index %d out of range [0,%d)", d.name, i, len(d.samples))
	}
	return d.samples[i], nil
}

// SetBoxes overrides the ground-truth boxes of sample i (oracle relabeling).
func (d *SyntheticDetection) SetBoxes(i int, boxes []metrics.Box) error {
	if i < 0 || i >= len(d.samples) {
		return fmt.Errorf("dataset %s: sample index %d out of range", d.name, i)
	}
	d.samples[i].Boxes = boxes
	return nil
}

// TextConfig configures a synthetic translation data set.
type TextConfig struct {
	Name        string
	Samples     int
	Vocab       int
	MinLen      int
	MaxLen      int
	Seed        uint64
	PerfSamples int
}

func (c *TextConfig) normalize() error {
	if c.Samples <= 0 {
		return fmt.Errorf("dataset: sample count must be positive, got %d", c.Samples)
	}
	if c.Vocab < 8 {
		return fmt.Errorf("dataset: vocabulary must hold at least 8 tokens, got %d", c.Vocab)
	}
	if c.MinLen <= 0 {
		c.MinLen = 4
	}
	if c.MaxLen < c.MinLen {
		c.MaxLen = c.MinLen + 8
	}
	if c.PerfSamples <= 0 || c.PerfSamples > c.Samples {
		c.PerfSamples = c.Samples
	}
	return nil
}

// SyntheticText is an in-memory synthetic translation data set. Reference
// translations default to a deterministic token-wise transformation of the
// source sentence and can be overridden by oracle relabeling.
type SyntheticText struct {
	name        string
	samples     []*Sample
	vocab       int
	perfSamples int
}

// NewSyntheticText builds the data set deterministically from cfg.Seed.
func NewSyntheticText(cfg TextConfig) (*SyntheticText, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "synthetic-wmt16"
	}
	rng := stats.NewRNG(cfg.Seed)
	ds := &SyntheticText{name: cfg.Name, vocab: cfg.Vocab, perfSamples: cfg.PerfSamples}
	for i := 0; i < cfg.Samples; i++ {
		n := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
		src := make([]int, n)
		ref := make([]int, n)
		for j := range src {
			// Reserve tokens 0 and 1 for BOS/EOS in downstream models.
			src[j] = 2 + rng.Intn(cfg.Vocab-2)
			ref[j] = 2 + (src[j]+7)%(cfg.Vocab-2)
		}
		ds.samples = append(ds.samples, &Sample{Index: i, Tokens: src, RefTokens: ref})
	}
	return ds, nil
}

// Name implements Dataset.
func (d *SyntheticText) Name() string { return d.name }

// Kind implements Dataset.
func (d *SyntheticText) Kind() Kind { return KindTranslation }

// Size implements Dataset.
func (d *SyntheticText) Size() int { return len(d.samples) }

// Vocab returns the vocabulary size.
func (d *SyntheticText) Vocab() int { return d.vocab }

// PerformanceSampleCount implements Dataset.
func (d *SyntheticText) PerformanceSampleCount() int { return d.perfSamples }

// Sample implements Dataset.
func (d *SyntheticText) Sample(i int) (*Sample, error) {
	if i < 0 || i >= len(d.samples) {
		return nil, fmt.Errorf("dataset %s: sample index %d out of range [0,%d)", d.name, i, len(d.samples))
	}
	return d.samples[i], nil
}

// SetReference overrides the reference translation of sample i (oracle
// relabeling).
func (d *SyntheticText) SetReference(i int, ref []int) error {
	if i < 0 || i >= len(d.samples) {
		return fmt.Errorf("dataset %s: sample index %d out of range", d.name, i)
	}
	d.samples[i].RefTokens = ref
	return nil
}

// CalibrationSet returns the first n sample indices of the data set; MLPerf
// publishes a small fixed calibration list per reference model for
// quantization (Section IV-A), and using a stable prefix mirrors that.
func CalibrationSet(d Dataset, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: calibration size must be positive, got %d", n)
	}
	if n > d.Size() {
		n = d.Size()
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out, nil
}
