package backend

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
)

// RemoteConfig configures a Remote SUT client.
type RemoteConfig struct {
	// Addr is a single serve.Server address (host:port). Either Addr or
	// Addrs is required; setting Addr is shorthand for a one-replica Addrs.
	Addr string
	// Addrs is the replica set: one serve.Server address per replica. The
	// Remote fans the SUT's traffic out over all of them (least-in-flight
	// routing with a per-replica in-flight window), so N identical servers
	// behave as one SUT with N times the service capacity. Replicas must be
	// identical deployments (same task/samples/seed ⇒ same weights and data),
	// which keeps outputs bit-identical no matter which replica answers.
	Addrs []string
	// Model addresses one of the server's hosted models by id. Empty drives
	// the server's default model with V1 frames (the PR 4 wire format).
	Model string
	// Name labels the SUT in results; defaults to "remote(<addrs>)".
	Name string
	// Conns is how many TCP connections the client multiplexes requests
	// over per replica (default 2). Responses return on the connection that
	// carried the request; more connections reduce head-of-line blocking in
	// the kernel socket buffers under high offered load.
	Conns int
	// MaxInFlight bounds the client's outstanding (unanswered) requests per
	// replica (default 256). This is the client half of the flow-control
	// pair — each server's admission queue is the other — and is what lets a
	// merged offline query of tens of thousands of samples stream through
	// bounded server queues without mass rejects. Issuing blocks when every
	// replica's window is full, which the LoadGen observes as scheduling
	// backpressure (an overloaded SUT falling behind, exactly what the
	// Server scenario is designed to penalize).
	MaxInFlight int
	// Deadline, when positive, stamps every request with an absolute
	// deadline this far in the future; the server answers StatusExpired
	// instead of serving requests whose deadline passed while queued.
	Deadline time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
}

func (c *RemoteConfig) normalize() error {
	if len(c.Addrs) == 0 {
		if c.Addr == "" {
			return fmt.Errorf("backend: remote SUT needs an address")
		}
		c.Addrs = []string{c.Addr}
	}
	if c.Name == "" {
		label := strings.Join(c.Addrs, ",")
		if c.Model != "" {
			label = c.Model + "@" + label
		}
		c.Name = fmt.Sprintf("remote(%s)", label)
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	return nil
}

// Remote drives one or more serve.Server replicas as a single system under
// test: a loadgen.SUT whose inference happens across a real network boundary.
// Each query sample becomes one predict request routed to the replica with
// the fewest requests in flight (each server's dynamic batcher re-coalesces
// them), so every scenario — SingleStream, MultiStream, Server, Offline —
// runs over the wire against the whole replica set with zero changes to the
// LoadGen.
//
// Shed load is never silent: requests a server rejects or expires complete
// their query with loadgen.Response.Dropped set, which the LoadGen counts and
// uses to invalidate the run. A replica that dies mid-run settles everything
// pending on it as dropped and is routed around from then on; transport and
// server-side inference errors are recorded and surfaced via Errors,
// mirroring Native.
type Remote struct {
	cfg      RemoteConfig
	replicas []*replica
	nextID   atomic.Uint64 // wire request ids

	feeders  sync.WaitGroup // multi-sample issue goroutines
	inflight sync.WaitGroup // outstanding requests

	rejected atomic.Int64
	expired  atomic.Int64

	closing atomic.Bool
	errs    errorLog
}

// replica is one server in the replica set: its connection pool, its half of
// the flow-control window, and its liveness state.
type replica struct {
	r     *Remote
	addr  string
	conns []*remoteConn
	next  atomic.Uint64 // round-robin connection cursor

	// window holds this replica's in-flight slots; len(window) doubles as
	// the in-flight count the router's least-in-flight choice reads.
	window chan struct{}

	deadConns atomic.Int32
	down      atomic.Bool // every connection has failed
}

// pendingRequest ties a wire id back to the query sample awaiting it.
type pendingRequest struct {
	query    *loadgen.Query
	sampleID uint64
}

// remoteConn is one client connection: a serialized writer plus a reader
// goroutine that demultiplexes responses back to their queries.
type remoteConn struct {
	rep *replica
	c   net.Conn

	wmu sync.Mutex
	w   *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]pendingRequest
	metrics map[uint64]chan []byte
	// dead is set by fail(): the reader is gone, so nothing will ever
	// resolve a request registered from here on — issuers settle locally
	// instead of registering.
	dead bool
}

// write serializes one frame onto the connection: fn writes it, then the
// buffered writer is flushed, all under the write lock.
func (rc *remoteConn) write(fn func(w io.Writer) error) error {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	if err := fn(rc.w); err != nil {
		return err
	}
	return rc.w.Flush()
}

// NewRemote dials every replica and returns the connected SUT client.
func NewRemote(cfg RemoteConfig) (*Remote, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := &Remote{cfg: cfg}
	for _, addr := range cfg.Addrs {
		rep := &replica{r: r, addr: addr, window: make(chan struct{}, cfg.MaxInFlight)}
		for i := 0; i < cfg.Conns; i++ {
			c, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
			if err != nil {
				r.Close()
				return nil, fmt.Errorf("backend: dialing replica %s: %w", addr, err)
			}
			rc := &remoteConn{
				rep: rep, c: c, w: bufio.NewWriter(c),
				pending: make(map[uint64]pendingRequest),
				metrics: make(map[uint64]chan []byte),
			}
			rep.conns = append(rep.conns, rc)
			go rc.readLoop()
		}
		r.replicas = append(r.replicas, rep)
	}
	return r, nil
}

// Name implements loadgen.SUT.
func (r *Remote) Name() string { return r.cfg.Name }

// Addrs returns the replica addresses in configuration order.
func (r *Remote) Addrs() []string { return append([]string(nil), r.cfg.Addrs...) }

// IssueQuery implements loadgen.SUT. Single-sample queries issue inline
// (blocking briefly on the in-flight window when it is full — backpressure
// the LoadGen should see); multi-sample queries stream from a feeder
// goroutine so the call returns quickly.
func (r *Remote) IssueQuery(q *loadgen.Query) {
	if len(q.Samples) <= 1 {
		for i := range q.Samples {
			r.issueSample(q, q.Samples[i])
		}
		return
	}
	r.feeders.Add(1)
	go func() {
		defer r.feeders.Done()
		for i := range q.Samples {
			r.issueSample(q, q.Samples[i])
		}
	}()
}

// pick chooses the replica for the next request: the live replica with the
// fewest requests in flight (ties go to the lowest index). When every replica
// is down it returns the emptiest one anyway — its dead connections settle
// the request as dropped, so the run terminates invalid instead of hanging.
func (r *Remote) pick() *replica {
	var best *replica
	bestLoad := 0
	for _, rep := range r.replicas {
		if rep.down.Load() {
			continue
		}
		load := len(rep.window)
		if best == nil || load < bestLoad {
			best, bestLoad = rep, load
		}
	}
	if best != nil {
		return best
	}
	for _, rep := range r.replicas {
		load := len(rep.window)
		if best == nil || load < bestLoad {
			best, bestLoad = rep, load
		}
	}
	return best
}

// issueSample routes one predict request to a replica, holding one of that
// replica's in-flight window slots until its response arrives. The inflight
// count is raised BEFORE the request becomes visible in the pending map:
// whichever side settles it (reader, failure drain, or this writer on a write
// error) balances it exactly once.
func (r *Remote) issueSample(q *loadgen.Query, s loadgen.QuerySample) {
	rep := r.pick()
	rep.window <- struct{}{}
	r.inflight.Add(1)
	id := r.nextID.Add(1)
	rc := rep.conns[rep.next.Add(1)%uint64(len(rep.conns))]

	rc.mu.Lock()
	if rc.dead {
		// The connection already failed: nothing will read a response, so
		// settle immediately as dropped (the failure itself was recorded by
		// fail). The run terminates invalid instead of hanging.
		rc.mu.Unlock()
		rep.settle(q, loadgen.Response{SampleID: s.ID, Dropped: true})
		return
	}
	rc.pending[id] = pendingRequest{query: q, sampleID: s.ID}
	rc.mu.Unlock()

	req := serve.PredictRequest{ID: id, SampleIndex: s.Index, Model: r.cfg.Model}
	if r.cfg.Deadline > 0 {
		req.Deadline = time.Now().Add(r.cfg.Deadline)
	}
	err := rc.write(func(w io.Writer) error { return serve.WritePredictRequest(w, req) })
	if err != nil {
		// The request never reached the server; settle it locally if the
		// reader has not already done so while failing the connection.
		rc.mu.Lock()
		_, mine := rc.pending[id]
		delete(rc.pending, id)
		rc.mu.Unlock()
		if mine {
			if !r.closing.Load() {
				r.errs.add(fmt.Errorf("backend %s: sending sample %d to %s: %w", r.cfg.Name, s.Index, rep.addr, err))
			}
			rep.settle(q, loadgen.Response{SampleID: s.ID, Dropped: true})
		}
	}
}

// settle releases one of this replica's window slots and completes one
// sample's response.
func (rep *replica) settle(q *loadgen.Query, resp loadgen.Response) {
	<-rep.window
	q.Complete([]loadgen.Response{resp})
	rep.r.inflight.Done()
}

// readLoop demultiplexes one connection's responses until it closes. On a
// transport failure every request still pending on the connection is settled
// as dropped, so the LoadGen terminates (invalid) instead of hanging.
func (rc *remoteConn) readLoop() {
	br := bufio.NewReader(rc.c)
	for {
		frame, err := serve.ReadClientFrame(br)
		if err != nil {
			rc.fail(err)
			return
		}
		switch frame.Type {
		case serve.MsgPredict:
			rc.resolve(frame.Predict)
		case serve.MsgMetrics:
			rc.mu.Lock()
			ch := rc.metrics[frame.MetricsID]
			delete(rc.metrics, frame.MetricsID)
			rc.mu.Unlock()
			if ch != nil {
				ch <- frame.MetricsJSON
			}
		}
	}
}

// resolve routes one predict response back to its query.
func (rc *remoteConn) resolve(resp serve.PredictResponse) {
	rc.mu.Lock()
	entry, ok := rc.pending[resp.ID]
	delete(rc.pending, resp.ID)
	rc.mu.Unlock()
	if !ok {
		return // already settled by a write failure
	}
	r := rc.rep.r
	out := loadgen.Response{SampleID: entry.sampleID}
	switch resp.Status {
	case serve.StatusOK:
		out.Data = resp.Data
	case serve.StatusRejected:
		r.rejected.Add(1)
		out.Dropped = true
	case serve.StatusExpired:
		r.expired.Add(1)
		out.Dropped = true
	default: // StatusError and anything unknown: recorded AND dropped, so
		// the run is invalid even for callers that never drain Errors.
		r.errs.add(fmt.Errorf("backend %s: replica %s reported %v for sample id %d", r.cfg.Name, rc.rep.addr, resp.Status, entry.sampleID))
		out.Dropped = true
	}
	rc.rep.settle(entry.query, out)
}

// fail kills a broken connection and settles everything pending on it.
// Setting dead under the same lock that guards registration guarantees no
// request can be registered after the drain and never settled. When the
// replica's last connection dies, the replica is marked down and the router
// stops sending it traffic — the replica-lifecycle half of overload
// semantics: a dead shard degrades the run to dropped (invalid), it does not
// hang it.
func (rc *remoteConn) fail(err error) {
	rc.c.Close()
	rc.mu.Lock()
	rc.dead = true
	pending := rc.pending
	rc.pending = make(map[uint64]pendingRequest)
	metrics := rc.metrics
	rc.metrics = make(map[uint64]chan []byte)
	rc.mu.Unlock()
	rep := rc.rep
	r := rep.r
	if int(rep.deadConns.Add(1)) == len(rep.conns) {
		rep.down.Store(true)
		if !r.closing.Load() {
			r.errs.add(fmt.Errorf("backend %s: replica %s is down (all %d connections failed)", r.cfg.Name, rep.addr, len(rep.conns)))
		}
	}
	if !r.closing.Load() && len(pending) > 0 {
		r.errs.add(fmt.Errorf("backend %s: connection to %s failed with %d requests outstanding: %w", r.cfg.Name, rep.addr, len(pending), err))
	}
	for _, entry := range pending {
		rep.settle(entry.query, loadgen.Response{SampleID: entry.sampleID, Dropped: true})
	}
	for _, ch := range metrics {
		close(ch)
	}
}

// FlushQueries implements loadgen.SUT: once every issued sample has been
// written (feeders drained), the end-of-series flush is forwarded to every
// replica so no batcher keeps holding partial batches open.
func (r *Remote) FlushQueries() {
	r.feeders.Wait()
	r.control(serve.MsgFlush)
}

// Reopen re-arms every replica's batcher for a new query series;
// loadgen.StartTest calls it at the start of every run. The metrics
// round-trip after the control frame is a barrier: each server reads frames
// per connection in order, so when the replies arrive the reopen has been
// applied — queries issued after Reopen returns (on any connection) can no
// longer be dispatched in the previous series' pass-through mode.
func (r *Remote) Reopen() {
	r.control(serve.MsgReopen)
	for _, rep := range r.replicas {
		_, _ = rep.serverMetrics()
	}
}

// control sends a control frame to every replica on its first connection.
func (r *Remote) control(msgType byte) {
	for _, rep := range r.replicas {
		if len(rep.conns) == 0 {
			continue
		}
		rc := rep.conns[0]
		err := rc.write(func(w io.Writer) error { return serve.WriteControlModel(w, msgType, r.cfg.Model) })
		if err != nil && !r.closing.Load() && !rep.down.Load() {
			r.errs.add(fmt.Errorf("backend %s: sending control frame %d to %s: %w", r.cfg.Name, msgType, rep.addr, err))
		}
	}
}

// ServerMetrics fetches a metrics snapshot from every live replica and merges
// them (serve.MergeSnapshots): counters sum, latency percentiles take the
// worst shard. It fails only when no replica answers.
func (r *Remote) ServerMetrics() (serve.Snapshot, error) {
	snaps, err := r.ReplicaMetrics()
	if err != nil {
		return serve.Snapshot{}, err
	}
	if len(snaps) == 1 {
		return snaps[0], nil
	}
	return serve.MergeSnapshots(snaps...), nil
}

// ReplicaMetrics fetches each live replica's snapshot (in Addrs order, down
// replicas skipped). It fails when no replica answers.
func (r *Remote) ReplicaMetrics() ([]serve.Snapshot, error) {
	var (
		snaps   []serve.Snapshot
		lastErr error
	)
	for _, rep := range r.replicas {
		snap, err := rep.serverMetrics()
		if err != nil {
			lastErr = err
			continue
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) == 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("backend %s: no replicas", r.cfg.Name)
		}
		return nil, lastErr
	}
	return snaps, nil
}

// serverMetrics fetches one replica's snapshot (the hosted model's when the
// client is model-addressed, the server's merged snapshot otherwise).
func (rep *replica) serverMetrics() (serve.Snapshot, error) {
	r := rep.r
	var snap serve.Snapshot
	if len(rep.conns) == 0 {
		return snap, fmt.Errorf("backend %s: replica %s has no connections", r.cfg.Name, rep.addr)
	}
	rc := rep.conns[0]
	id := r.nextID.Add(1)
	ch := make(chan []byte, 1)
	rc.mu.Lock()
	if rc.dead {
		rc.mu.Unlock()
		return snap, fmt.Errorf("backend %s: replica %s connection is down", r.cfg.Name, rep.addr)
	}
	rc.metrics[id] = ch
	rc.mu.Unlock()

	if err := rc.write(func(w io.Writer) error { return serve.WriteMetricsRequestModel(w, id, r.cfg.Model) }); err != nil {
		rc.mu.Lock()
		delete(rc.metrics, id)
		rc.mu.Unlock()
		return snap, fmt.Errorf("backend %s: requesting metrics from %s: %w", r.cfg.Name, rep.addr, err)
	}
	select {
	case data, ok := <-ch:
		if !ok {
			return snap, fmt.Errorf("backend %s: replica %s closed before metrics arrived", r.cfg.Name, rep.addr)
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			return snap, fmt.Errorf("backend %s: decoding metrics from %s: %w", r.cfg.Name, rep.addr, err)
		}
		if snap.Error != "" {
			return snap, fmt.Errorf("backend %s: replica %s: %s", r.cfg.Name, rep.addr, snap.Error)
		}
		return snap, nil
	case <-time.After(10 * time.Second):
		rc.mu.Lock()
		delete(rc.metrics, id)
		rc.mu.Unlock()
		return snap, fmt.Errorf("backend %s: metrics request to %s timed out", r.cfg.Name, rep.addr)
	}
}

// Wait blocks until every issued request has been answered (or settled by a
// connection failure). The harness calls it after the LoadGen reports
// completion, like Native.Wait.
func (r *Remote) Wait() {
	r.feeders.Wait()
	r.inflight.Wait()
}

// Errors returns transport and server-side inference errors observed so far.
// Rejected and expired requests are NOT errors — they are shed load, counted
// by Rejected/Expired and reflected in the run's validity via dropped
// responses.
func (r *Remote) Errors() []error { return r.errs.all() }

// Rejected returns how many requests the replicas' admission control shed.
func (r *Remote) Rejected() int64 { return r.rejected.Load() }

// Expired returns how many requests expired past their deadline while queued.
func (r *Remote) Expired() int64 { return r.expired.Load() }

// DownReplicas returns how many replicas have lost every connection.
func (r *Remote) DownReplicas() int {
	n := 0
	for _, rep := range r.replicas {
		if rep.down.Load() {
			n++
		}
	}
	return n
}

// Close tears down the client's connections to every replica. In-flight
// requests settle as dropped without recording transport errors.
func (r *Remote) Close() error {
	r.closing.Store(true)
	var first error
	for _, rep := range r.replicas {
		for _, rc := range rep.conns {
			if err := rc.c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
