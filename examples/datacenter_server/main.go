// Datacenter server: the online-serving use case (translation websites,
// consumer-facing services) where queries arrive as a Poisson process and
// must be answered within a QoS bound.
//
// The example demonstrates three views of the server scenario:
//
//  1. A wall-clock LoadGen run against the native MobileNet backend — direct,
//     and wrapped in an in-process dynamic batcher — showing how batching
//     trades latency for throughput.
//
//  2. The same engine served over a real network boundary: a loopback
//     serve.Server (bounded admission queue, dynamic batching, worker pool)
//     driven by backend.Remote, side by side with the in-process run, plus
//     the server's own latency breakdown (queue vs service time) — the
//     phenomena an in-process SUT cannot exhibit.
//
//  3. The sharded form of the same deployment: a 2-replica loopback fleet
//     with backend.Remote fanning queries out least-in-flight, the merged
//     and per-replica metrics showing how the load split.
//
//  4. A virtual-time sweep over data-center platforms from the catalogue,
//     searching for the highest Poisson rate each sustains under Table III's
//     latency bound, and comparing it to the unconstrained offline throughput
//     (the Figure 6 analysis for a single task).
//
//     go run ./examples/datacenter_server
package main

import (
	"fmt"
	"log"
	"time"

	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
	"mlperf/internal/simhw"
)

func main() {
	// Part 1: wall-clock server run against the native backend, with and
	// without dynamic batching.
	assembly, err := harness.BuildNative(core.ImageClassificationLight, harness.BuildOptions{
		DatasetSamples: 128, Seed: 3, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := assembly.Spec

	settings := harness.QuickSettings(spec, loadgen.Server, 512)
	settings.MinDuration = 300 * time.Millisecond
	settings.ServerTargetQPS = 300
	settings.ServerTargetLatency = 50 * time.Millisecond

	report := func(label string, res *loadgen.Result) {
		fmt.Printf("  %-22s achieved %6.1f QPS, p99 %9v, violations %.2f%%, dropped %d, valid=%v\n",
			label, res.ServerAchievedQPS, res.QueryLatencies.P99,
			100*res.LatencyBoundViolations, res.ResponsesDropped, res.Valid)
	}

	plain, err := loadgen.StartTest(assembly.SUT, assembly.QSL, settings)
	if err != nil {
		log.Fatal(err)
	}
	batcher, err := backend.NewBatching(assembly.SUT, 8, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	batched, err := loadgen.StartTest(batcher, assembly.QSL, settings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== native MobileNet, server scenario at 300 QPS offered (wall clock, scaled down) ==")
	report("in-process direct", plain)
	report("in-process batching", batched)

	// Part 2: the same engine behind a loopback network server. The LoadGen
	// is unchanged — only the SUT now crosses a socket, with admission
	// control and server-side dynamic batching on the measured path.
	dep, err := assembly.ServeLoopback(harness.ServeOptions{
		Server: serve.Config{QueueDepth: 256, BatchWait: 2 * time.Millisecond},
		Client: backend.RemoteConfig{Conns: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	remote, err := loadgen.StartTest(dep.Assembly.SUT, dep.Assembly.QSL, settings)
	if err != nil {
		log.Fatal(err)
	}
	dep.Remote.Wait()
	if errs := dep.Remote.Errors(); len(errs) > 0 {
		log.Fatalf("remote SUT reported %d errors, first: %v", len(errs), errs[0])
	}
	report("over-the-wire (TCP)", remote)
	snap := dep.Server.Metrics()
	fmt.Printf("  %-22s queue p50/p99 %v/%v, service p50/p99 %v/%v\n",
		"serving breakdown", snap.QueueP50, snap.QueueP99, snap.ServiceP50, snap.ServiceP99)
	fmt.Printf("  %-22s ", "batch histogram")
	prevLe := 0
	for _, b := range snap.BatchHistogram {
		if b.Count > 0 {
			if b.Le == 0 { // unbounded overflow bucket
				fmt.Printf(">%d=%d ", prevLe, b.Count)
			} else {
				fmt.Printf("≤%d=%d ", b.Le, b.Count)
			}
		}
		prevLe = b.Le
	}
	fmt.Printf("(rejected %d, shed %d, expired %d)\n", snap.Rejected, snap.Shed, snap.Expired)

	// Part 3: the same deployment sharded over two replicas. Outputs stay
	// bit-identical (the replicas derive identical weights and data); only
	// capacity and the routing change.
	fleet, err := assembly.ServeLoopback(harness.ServeOptions{
		Replicas: 2,
		Server:   serve.Config{QueueDepth: 256, BatchWait: 2 * time.Millisecond},
		Client:   backend.RemoteConfig{Conns: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	sharded, err := loadgen.StartTest(fleet.Assembly.SUT, fleet.Assembly.QSL, settings)
	if err != nil {
		log.Fatal(err)
	}
	fleet.Remote.Wait()
	if errs := fleet.Remote.Errors(); len(errs) > 0 {
		log.Fatalf("sharded SUT reported %d errors, first: %v", len(errs), errs[0])
	}
	report("2-replica fleet (TCP)", sharded)
	for i, rsnap := range fleet.ReplicaMetrics() {
		fmt.Printf("  %-22s completed %d, service p99 %v\n",
			fmt.Sprintf("replica %d (%s)", i, fleet.Servers[i].Addr()), rsnap.Completed, rsnap.ServiceP99)
	}

	// Part 4: virtual-time sweep across data-center platforms for the heavy
	// classification task (ResNet-50, 15 ms QoS bound).
	heavySpec, err := core.Spec(core.ImageClassificationHeavy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== simulated data-center platforms, %s server scenario (bound %v, p%.0f) ==\n",
		heavySpec.ReferenceModel, heavySpec.ServerLatencyBound, 100*heavySpec.ServerLatencyPercentile)
	fmt.Printf("  %-16s %14s %16s %10s\n", "SYSTEM", "SERVER QPS", "OFFLINE (inf/s)", "RATIO")
	for _, name := range []string{"server-cpu-c2", "dc-fpga-f3", "dc-asic-a1", "dc-gpu-g1", "dc-gpu-g2"} {
		platform, err := simhw.FindPlatform(name)
		if err != nil {
			log.Fatal(err)
		}
		metrics, err := harness.SimulatedSubmission(platform, heavySpec, simhw.SearchOptions{Queries: 4096, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %14.1f %16.1f %10.2f\n",
			name, metrics.ServerQPS, metrics.OfflineThroughput, metrics.ServerToOfflineRatio())
	}
	fmt.Println("\nthe latency bound costs every platform throughput; platforms that need large")
	fmt.Println("batches to reach peak lose the most (the paper's Figure 6 observation)")
}
