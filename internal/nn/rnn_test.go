package nn

import (
	"testing"

	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

func TestLSTMCellStep(t *testing.T) {
	cell := NewLSTMCell("lstm", 4, 8, stats.NewRNG(1))
	if cell.ParamCount() != int64(4*8*4+4*8*8+4*8) {
		t.Errorf("param count = %d", cell.ParamCount())
	}
	if cell.OpsPerStep() <= 0 {
		t.Error("ops per step must be positive")
	}
	x := tensor.MustNew(4)
	x.Fill(0.5)
	h := tensor.MustNew(8)
	c := tensor.MustNew(8)
	h2, c2, err := cell.Step(x, h, c)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 8 || c2.Len() != 8 {
		t.Fatalf("state sizes %d/%d", h2.Len(), c2.Len())
	}
	for _, v := range h2.Data() {
		if v < -1 || v > 1 {
			t.Fatalf("hidden state out of tanh range: %v", v)
		}
	}
}

func TestLSTMCellShapeErrors(t *testing.T) {
	cell := NewLSTMCell("lstm", 4, 8, stats.NewRNG(1))
	if _, _, err := cell.Step(tensor.MustNew(5), tensor.MustNew(8), tensor.MustNew(8)); err == nil {
		t.Error("wrong input size: expected error")
	}
	if _, _, err := cell.Step(tensor.MustNew(4), tensor.MustNew(7), tensor.MustNew(8)); err == nil {
		t.Error("wrong state size: expected error")
	}
}

func TestLSTMDeterminism(t *testing.T) {
	run := func() *tensor.Tensor {
		cell := NewLSTMCell("lstm", 3, 5, stats.NewRNG(7))
		x := tensor.MustNew(3)
		x.Fill(1)
		h := tensor.MustNew(5)
		c := tensor.MustNew(5)
		for i := 0; i < 10; i++ {
			h, c, _ = cell.Step(x, h, c)
		}
		return h
	}
	if !tensor.Equalish(run(), run(), 0) {
		t.Error("LSTM runs with identical seeds diverge")
	}
}

func TestEmbedding(t *testing.T) {
	e := NewEmbedding("emb", 10, 4, stats.NewRNG(2))
	if e.ParamCount() != 40 {
		t.Errorf("params = %d", e.ParamCount())
	}
	v, err := e.Lookup(3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 {
		t.Errorf("embedding dim = %d", v.Len())
	}
	if _, err := e.Lookup(10); err == nil {
		t.Error("out-of-vocabulary lookup: expected error")
	}
	if _, err := e.Lookup(-1); err == nil {
		t.Error("negative lookup: expected error")
	}
}

func TestSeq2SeqTranslate(t *testing.T) {
	m, err := NewSeq2Seq("gnmt-mini", Seq2SeqConfig{
		SrcVocab: 32, DstVocab: 32, EmbedDim: 8, HiddenSize: 16,
		EncoderLayers: 2, DecoderLayers: 2, MaxLen: 12, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ParamCount() <= 0 || m.OpsPerToken() <= 0 {
		t.Error("expected positive params and ops")
	}
	out, err := m.Translate([]int{5, 9, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > m.MaxLen {
		t.Errorf("translation longer than MaxLen: %d", len(out))
	}
	for _, tok := range out {
		if tok < 0 || tok >= 32 {
			t.Errorf("token %d outside vocabulary", tok)
		}
	}
	// Determinism: same input yields the same output.
	out2, err := m.Translate([]int{5, 9, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(out2) {
		t.Fatalf("non-deterministic translation: %v vs %v", out, out2)
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("non-deterministic translation at %d", i)
		}
	}
}

func TestSeq2SeqErrors(t *testing.T) {
	if _, err := NewSeq2Seq("bad", Seq2SeqConfig{SrcVocab: 2, DstVocab: 32, EmbedDim: 8, HiddenSize: 8, EncoderLayers: 1, DecoderLayers: 1}); err == nil {
		t.Error("tiny vocab: expected error")
	}
	if _, err := NewSeq2Seq("bad", Seq2SeqConfig{SrcVocab: 32, DstVocab: 32, EmbedDim: 0, HiddenSize: 8, EncoderLayers: 1, DecoderLayers: 1}); err == nil {
		t.Error("zero embed dim: expected error")
	}
	m, err := NewSeq2Seq("ok", Seq2SeqConfig{SrcVocab: 16, DstVocab: 16, EmbedDim: 4, HiddenSize: 8, EncoderLayers: 1, DecoderLayers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(nil); err == nil {
		t.Error("empty source: expected error")
	}
	if _, err := m.Translate([]int{99}); err == nil {
		t.Error("out-of-vocabulary source: expected error")
	}
}
