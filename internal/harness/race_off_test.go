//go:build !race

package harness

// raceEnabled is false in uninstrumented builds; see race_on_test.go.
const raceEnabled = false
