package submission

import (
	"strings"
	"testing"
	"time"

	"mlperf/internal/accuracy"
	"mlperf/internal/core"
	"mlperf/internal/loadgen"
)

func validSystem() SystemDescription {
	return SystemDescription{
		Name: "dc-gpu-g1", Submitter: "acme", ProcessorType: "GPU",
		AcceleratorCount: 4, HostProcessors: 2, MemoryGB: 256,
		Framework: "TensorRT", SoftwareStack: "driver 440",
	}
}

func validResult(s loadgen.Scenario) *loadgen.Result {
	r := &loadgen.Result{
		Scenario:         s,
		Mode:             loadgen.PerformanceMode,
		QueriesIssued:    1024,
		QueriesCompleted: 1024,
		SamplesIssued:    24576,
		SamplesCompleted: 24576,
		TestDuration:     61 * time.Second,
		Valid:            true,
	}
	switch s {
	case loadgen.SingleStream:
		r.SingleStreamLatency = 5 * time.Millisecond
	case loadgen.Server:
		r.ServerAchievedQPS = 1000
		r.QueriesIssued = 270336
		r.QueriesCompleted = 270336
	case loadgen.MultiStream:
		r.MultiStreamStreams = 8
		r.QueriesIssued = 270336
		r.QueriesCompleted = 270336
	case loadgen.Offline:
		r.OfflineSamplesPerSec = 50000
		r.QueriesIssued = 1
		r.QueriesCompleted = 1
	}
	return r
}

func validEntry(t core.Task, s loadgen.Scenario) Entry {
	spec, _ := core.Spec(t)
	return Entry{
		System:      validSystem(),
		Division:    Closed,
		Category:    Available,
		Task:        t,
		Scenario:    s,
		ModelUsed:   string(spec.ReferenceModel),
		Performance: validResult(s),
		Accuracy:    &accuracy.Report{Metric: "top1", Value: 0.757, Target: 0.752, Reference: 0.76456, Pass: true, Samples: 256},
	}
}

func TestDivisionAndCategoryValidation(t *testing.T) {
	if !ValidDivision(Closed) || !ValidDivision(Open) || ValidDivision("middle") {
		t.Error("division validation wrong")
	}
	if !ValidCategory(Available) || !ValidCategory(Preview) || !ValidCategory(RDO) || ValidCategory("beta") {
		t.Error("category validation wrong")
	}
}

func TestSystemDescriptionValidate(t *testing.T) {
	if err := validSystem().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*SystemDescription){
		func(s *SystemDescription) { s.Name = "" },
		func(s *SystemDescription) { s.Submitter = "" },
		func(s *SystemDescription) { s.ProcessorType = "" },
		func(s *SystemDescription) { s.Framework = "" },
	}
	for i, mutate := range bad {
		s := validSystem()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestCheckEntryCleanClosedEntry(t *testing.T) {
	e := validEntry(core.ImageClassificationHeavy, loadgen.SingleStream)
	issues := CheckEntry(0, e, CheckOptions{})
	if len(issues) != 0 {
		t.Errorf("clean entry reported issues: %v", issues)
	}
}

func TestCheckEntryRules(t *testing.T) {
	base := func() Entry { return validEntry(core.ImageClassificationHeavy, loadgen.SingleStream) }

	wrongModel := base()
	wrongModel.ModelUsed = "efficientnet"
	if issues := CheckEntry(0, wrongModel, CheckOptions{}); len(issues) == 0 {
		t.Error("closed division with non-reference model: expected issue")
	}

	openMissingDocs := base()
	openMissingDocs.Division = Open
	if issues := CheckEntry(0, openMissingDocs, CheckOptions{}); len(issues) == 0 {
		t.Error("open division without deviation docs: expected issue")
	}
	openOK := base()
	openOK.Division = Open
	openOK.ModelUsed = "efficientnet" // allowed in open
	openOK.OpenDeviations = "replaced the model with EfficientNet, INT4 weights"
	openOK.Accuracy = nil // open division may change quality targets
	if issues := CheckEntry(0, openOK, CheckOptions{}); len(issues) != 0 {
		t.Errorf("documented open entry flagged: %v", issues)
	}

	missingPerf := base()
	missingPerf.Performance = nil
	if issues := CheckEntry(0, missingPerf, CheckOptions{}); len(issues) == 0 {
		t.Error("missing performance: expected issue")
	}

	invalidRun := base()
	invalidRun.Performance = validResult(loadgen.SingleStream)
	invalidRun.Performance.Valid = false
	invalidRun.Performance.ValidityMessages = []string{"too few queries"}
	if issues := CheckEntry(0, invalidRun, CheckOptions{}); len(issues) == 0 {
		t.Error("invalid LoadGen run: expected issue")
	}

	tooFewQueries := base()
	tooFewQueries.Performance = validResult(loadgen.SingleStream)
	tooFewQueries.Performance.QueriesIssued = 100
	if issues := CheckEntry(0, tooFewQueries, CheckOptions{}); len(issues) == 0 {
		t.Error("query count below Table V: expected issue")
	}
	// The same entry passes when the checker is told the run was scaled down.
	if issues := CheckEntry(0, tooFewQueries, CheckOptions{ScaleFactor: 16}); len(issues) != 0 {
		t.Errorf("scaled check still flagged: %v", issues)
	}

	failedQuality := base()
	failedQuality.Accuracy = &accuracy.Report{Metric: "top1", Value: 0.70, Target: 0.752, Pass: false}
	if issues := CheckEntry(0, failedQuality, CheckOptions{}); len(issues) == 0 {
		t.Error("quality below target: expected issue")
	}

	missingAccuracy := base()
	missingAccuracy.Accuracy = nil
	if issues := CheckEntry(0, missingAccuracy, CheckOptions{}); len(issues) == 0 {
		t.Error("closed entry without accuracy run: expected issue")
	}

	badTask := base()
	badTask.Task = "speech-recognition"
	if issues := CheckEntry(0, badTask, CheckOptions{}); len(issues) == 0 {
		t.Error("unknown task: expected issue")
	}

	badDivision := base()
	badDivision.Division = "middle"
	badDivision.Category = "beta"
	badDivision.System.Framework = ""
	issues := CheckEntry(3, badDivision, CheckOptions{})
	if len(issues) < 3 {
		t.Errorf("expected multiple issues, got %v", issues)
	}
	if issues[0].String() == "" {
		t.Error("issue string empty")
	}
}

func TestCheckEntryOfflineSampleCount(t *testing.T) {
	e := validEntry(core.ImageClassificationHeavy, loadgen.Offline)
	e.Performance.SamplesIssued = 1000
	if issues := CheckEntry(0, e, CheckOptions{}); len(issues) == 0 {
		t.Error("offline with too few samples: expected issue")
	}
	e.Performance.SamplesIssued = 24576
	if issues := CheckEntry(0, e, CheckOptions{}); len(issues) != 0 {
		t.Errorf("offline with enough samples flagged: %v", issues)
	}
}

func TestCheckSubmission(t *testing.T) {
	good := validEntry(core.ImageClassificationHeavy, loadgen.SingleStream)
	bad := validEntry(core.MachineTranslation, loadgen.Server)
	bad.Accuracy = nil
	sub := Submission{Submitter: "acme", Entries: []Entry{good, bad}}
	issues, cleared := Check(sub, CheckOptions{})
	if cleared != 1 {
		t.Errorf("cleared = %d, want 1", cleared)
	}
	if len(issues) == 0 {
		t.Error("expected issues for the bad entry")
	}
	tasks := sub.TasksCovered()
	if len(tasks) != 2 {
		t.Errorf("tasks covered = %v", tasks)
	}
}

func TestReport(t *testing.T) {
	entries := []Entry{
		validEntry(core.ImageClassificationHeavy, loadgen.SingleStream),
		validEntry(core.ImageClassificationHeavy, loadgen.Offline),
		validEntry(core.MachineTranslation, loadgen.Server),
	}
	sub := Submission{Submitter: "acme", Entries: entries}
	report := Report(sub)
	for _, want := range []string{"acme", "no summary score", "image-classification-heavy", "machine-translation", "QPS", "samples/s"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// An entry without performance/accuracy prints placeholders instead of
	// crashing.
	sub.Entries = append(sub.Entries, Entry{System: validSystem(), Division: Open, Category: RDO,
		Task: core.ImageClassificationLight, Scenario: loadgen.MultiStream, OpenDeviations: "prototype"})
	if !strings.Contains(Report(sub), "n/a") {
		t.Error("expected placeholder metric for incomplete entry")
	}
}

func TestCoverageTable(t *testing.T) {
	entries := []Entry{
		validEntry(core.ImageClassificationHeavy, loadgen.SingleStream),
		validEntry(core.ImageClassificationHeavy, loadgen.SingleStream),
		validEntry(core.ImageClassificationHeavy, loadgen.Offline),
		validEntry(core.MachineTranslation, loadgen.Server),
	}
	table := CoverageTable(entries)
	if table["resnet50-v1.5"][loadgen.SingleStream] != 2 {
		t.Errorf("resnet single-stream count = %d", table["resnet50-v1.5"][loadgen.SingleStream])
	}
	if table["resnet50-v1.5"][loadgen.Offline] != 1 {
		t.Errorf("resnet offline count = %d", table["resnet50-v1.5"][loadgen.Offline])
	}
	if table["gnmt"][loadgen.Server] != 1 {
		t.Errorf("gnmt server count = %d", table["gnmt"][loadgen.Server])
	}
	// Open entries with custom models are counted under the custom name.
	open := validEntry(core.ImageClassificationLight, loadgen.SingleStream)
	open.Division = Open
	open.ModelUsed = "efficientnet"
	table = CoverageTable([]Entry{open})
	if table["efficientnet"][loadgen.SingleStream] != 1 {
		t.Error("open-division custom model not counted")
	}
}
