package experiments

import (
	"strings"
	"testing"
)

// fastOptions keeps every experiment quick in unit tests.
func fastOptions() Options {
	return Options{Seed: 7, SearchQueries: 256, Figure6Systems: 3, DatasetSamples: 32}
}

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("expected 13 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	// Every table and figure of the evaluation section is present.
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig5", "fig6", "fig7", "fig8", "audits", "modeled-vs-measured"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestFind(t *testing.T) {
	e, err := Find("table4")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "table4" {
		t.Errorf("found %s", e.ID)
	}
	if _, err := Find("table99"); err == nil {
		t.Error("unknown id: expected error")
	}
}

func TestStaticTables(t *testing.T) {
	cases := map[string][]string{
		"table1": {"ResNet-50 v1.5", "GNMT", "QUALITY TARGET"},
		"table2": {"Poisson", "90th-percentile latency", "photo categorization"},
		"table3": {"66ms", "250ms", "machine-translation"},
		"table4": {"23886", "24576", "270336"},
		"table5": {"1024 / 1", "1 / 24576", "90112"},
	}
	for id, wants := range cases {
		e, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Run(fastOptions())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, want := range wants {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", id, want, out)
			}
		}
	}
}

func TestCorpusTablesAndFigures(t *testing.T) {
	table6, err := Table6(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"resnet50-v1.5", "TOTAL", "51", "15", "33", "67"} {
		if !strings.Contains(table6, want) {
			t.Errorf("table6 missing %q:\n%s", want, table6)
		}
	}
	table7, err := Table7(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TensorRT", "SNPE", "GPU"} {
		if !strings.Contains(table7, want) {
			t.Errorf("table7 missing %q", want)
		}
	}
	fig5, err := Figure5(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig5, "32.5%") {
		t.Errorf("fig5 missing the paper share column:\n%s", fig5)
	}
	fig7, err := Figure7(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []string{"CPU", "GPU", "DSP", "FPGA", "ASIC"} {
		if !strings.Contains(fig7, arch) {
			t.Errorf("fig7 missing %s", arch)
		}
	}
}

func TestFigure6And8(t *testing.T) {
	opts := fastOptions()
	fig6, err := Figure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig6, "server-to-offline") {
		t.Errorf("fig6 header missing:\n%s", fig6)
	}
	if !strings.Contains(fig6, "resnet50-v1.5") {
		t.Error("fig6 missing model columns")
	}
	fig8, err := Figure8(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig8, "SPREAD") || !strings.Contains(fig8, "largest spread") {
		t.Errorf("fig8 incomplete:\n%s", fig8)
	}
}

func TestAuditsExperiment(t *testing.T) {
	out, err := Audits(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "all audits passed") {
		t.Errorf("reference system failed its own audits:\n%s", out)
	}
}

func TestModeledVsMeasured(t *testing.T) {
	out, err := ModeledVsMeasured(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "operation-count ratio: 175x") {
		t.Errorf("expected the 175x operation ratio, got:\n%s", out)
	}
	if !strings.Contains(out, "MEASURED RATIO") {
		t.Error("missing measured ratio column")
	}
}
