package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"mlperf/internal/tensor"
)

// TestResizeGrowsWorkersLive proves worker growth takes effect while the
// server is serving: with one gated worker, two requests serialize; after
// growing to two workers, two requests proceed concurrently.
func TestResizeGrowsWorkersLive(t *testing.T) {
	gate := make(chan struct{})
	s := newTestServer(t, Config{
		Engine: &echoEngine{gate: gate}, Workers: 1, MaxBatch: 1,
		BatchWait: time.Millisecond, QueueDepth: 16,
	})
	tc := dialTest(t, s.Addr())

	events, err := s.Resize("", ResizeRequest{Workers: 2, Reason: "test-grow"})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Resource != ResourceWorkers || events[0].From != 1 || events[0].To != 2 {
		t.Fatalf("grow events: %+v", events)
	}

	// Two single-sample batches need two workers to block on the gate at
	// once; with one worker the second release would deadlock this test's
	// sequential gate feed.
	tc.predict(1, 0, time.Time{})
	tc.predict(2, 1, time.Time{})
	done := make(chan struct{})
	go func() {
		gate <- struct{}{}
		gate <- struct{}{}
		close(done)
	}()
	resp := tc.read(2)
	<-done
	if resp[1].Status != StatusOK || resp[2].Status != StatusOK {
		t.Fatalf("responses: %+v", resp)
	}

	lim, err := s.Limits("")
	if err != nil {
		t.Fatal(err)
	}
	if lim.Workers != 2 {
		t.Fatalf("live workers %d, want 2", lim.Workers)
	}
}

// TestResizeShrinkRetiresAtBatchBoundary pins the shrink protocol: surplus
// workers retire only after finishing their current batch, and the pool
// keeps serving afterwards.
func TestResizeShrinkRetiresAtBatchBoundary(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, MaxBatch: 1, BatchWait: time.Millisecond})
	tc := dialTest(t, s.Addr())

	events, err := s.Resize("", ResizeRequest{Workers: 1, Reason: "test-shrink"})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].From != 4 || events[0].To != 1 {
		t.Fatalf("shrink events: %+v", events)
	}
	// The pool still answers: every request after the shrink is served by
	// whatever workers remain (surplus ones retire at their next batch).
	for i := 0; i < 8; i++ {
		tc.predict(uint64(i+1), i, time.Time{})
	}
	resp := tc.read(8)
	for id, r := range resp {
		if r.Status != StatusOK {
			t.Fatalf("request %d: status %d", id, r.Status)
		}
	}
	if lim, _ := s.Limits(""); lim.Workers != 1 {
		t.Fatalf("live workers %d, want 1", lim.Workers)
	}
}

// TestResizeQueueAndMaxBatch moves the admission bound and batch cap and
// checks the new queue bound actually rejects. A long BatchWait keeps
// admitted requests sitting in the queue (the batcher is waiting to fill a
// batch), so the shrunken bound is what the next arrival hits.
func TestResizeQueueAndMaxBatch(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, MaxBatch: 8, BatchWait: 10 * time.Second, QueueDepth: 64,
	})
	tc := dialTest(t, s.Addr())
	if _, err := s.Resize("", ResizeRequest{QueueDepth: 1, MaxBatch: 2, Reason: "test"}); err != nil {
		t.Fatal(err)
	}
	if lim, _ := s.Limits(""); lim.QueueDepth != 1 || lim.MaxBatch != 2 {
		t.Fatalf("limits after resize: %+v", lim)
	}
	tc.predict(1, 0, time.Time{})
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request 1 never queued")
		}
		time.Sleep(time.Millisecond)
	}
	tc.predict(2, 1, time.Time{}) // queue already at its shrunken bound
	resp := tc.read(1)
	if resp[2].Status != StatusRejected {
		t.Fatalf("request 2 status %d, want rejected (queue bound not live)", resp[2].Status)
	}
	tc.control(MsgFlush) // flush the held batch so request 1 completes
	resp = tc.read(1)
	if resp[1].Status != StatusOK {
		t.Fatalf("request 1 status %d, want OK", resp[1].Status)
	}
}

// TestResizeValidation pins the guard rails: out-of-range limits and unknown
// models error; zero fields leave limits untouched; draining servers ignore
// resizes.
func TestResizeValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxBatch: 2, BatchWait: time.Millisecond})
	if _, err := s.Resize("", ResizeRequest{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := s.Resize("", ResizeRequest{QueueDepth: 1 << 20}); err == nil {
		t.Error("absurd queue depth accepted")
	}
	if _, err := s.Resize("nope", ResizeRequest{Workers: 1}); err == nil {
		t.Error("unknown model accepted")
	}
	before, _ := s.Limits("")
	if events, err := s.Resize("", ResizeRequest{}); err != nil || len(events) != 0 {
		t.Errorf("no-op resize: events %v err %v", events, err)
	}
	if after, _ := s.Limits(""); after != before {
		t.Errorf("no-op resize moved limits: %+v -> %+v", before, after)
	}
	s.Drain()
	if events, _ := s.Resize("", ResizeRequest{Workers: 8}); len(events) != 0 {
		t.Errorf("draining server applied a resize: %v", events)
	}
}

// TestResizeEventsChain pins the audit invariant: per resource, each event's
// From equals the previous event's To, and the chain's end matches the live
// snapshot.
func TestResizeEventsChain(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxBatch: 1, BatchWait: time.Millisecond, QueueDepth: 8})
	for _, w := range []int{2, 4, 3} {
		if _, err := s.Resize("", ResizeRequest{Workers: w, QueueDepth: w * 8, Reason: "step"}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics()
	last := map[string]int{}
	for i, e := range snap.Resizes {
		if prev, ok := last[e.Resource]; ok && e.From != prev {
			t.Fatalf("event %d (%s) starts at %d, previous ended at %d", i, e.Resource, e.From, prev)
		}
		last[e.Resource] = e.To
	}
	if last[ResourceWorkers] != snap.Workers {
		t.Errorf("worker chain ends at %d, snapshot says %d", last[ResourceWorkers], snap.Workers)
	}
	if last[ResourceQueue] != snap.QueueLimit {
		t.Errorf("queue chain ends at %d, snapshot says %d", last[ResourceQueue], snap.QueueLimit)
	}
}

// TestMergeSnapshotsFleetSizeChange covers merging over a fleet that changed
// size mid-run: a retired replica contributes its banked epoch exactly once,
// and resize events concatenate without aliasing the inputs.
func TestMergeSnapshotsFleetSizeChange(t *testing.T) {
	t0 := time.Now()
	// Replica 0 ran the whole time and grew its pool.
	r0 := Snapshot{
		Admitted: 100, Completed: 100, Workers: 4, QueueLimit: 32,
		Resizes: []ResizeEvent{
			{Time: t0, Resource: ResourceWorkers, From: 2, To: 4, Reason: "capacity-grow"},
			{Time: t0, Resource: ResourceQueue, From: 16, To: 32, Reason: "capacity-grow"},
		},
	}
	// Replica 1 was retired mid-run: its last epoch was banked with the
	// counters it had at retirement. It contributes once — there is no live
	// snapshot to double it with.
	banked := Snapshot{Admitted: 40, Completed: 40, Workers: 2, QueueLimit: 16}
	// Replica 2 was spawned mid-run by the autoscaler.
	r2 := Snapshot{
		Admitted: 25, Completed: 25, Workers: 2, QueueLimit: 16,
		Resizes: []ResizeEvent{
			{Time: t0, Resource: ResourceWorkers, From: 1, To: 2, Reason: "capacity-initial"},
		},
	}
	m := MergeSnapshots(r0, banked, r2)
	if m.Admitted != 165 || m.Completed != 165 {
		t.Fatalf("merged counters: %+v", m)
	}
	if m.Workers != 8 || m.QueueLimit != 64 {
		t.Errorf("merged limits: workers %d queue %d", m.Workers, m.QueueLimit)
	}
	if len(m.Resizes) != 3 {
		t.Fatalf("merged %d resize events, want 3 (each input's folded exactly once)", len(m.Resizes))
	}
	if m.Merged != 3 {
		t.Errorf("merged count %d, want 3", m.Merged)
	}
	// Merging the merge with a later epoch must not re-count events, and the
	// merged event list must not alias the inputs' slices.
	m.Resizes[0].To = 999
	if r0.Resizes[0].To == 999 {
		t.Error("merged resize events alias the input's slice")
	}
	again := MergeSnapshots(m)
	if len(again.Resizes) != 3 || again.Merged != 3 {
		t.Errorf("re-merge changed fold: %d events, merged %d", len(again.Resizes), again.Merged)
	}
}

// TestMergeSnapshotsKeepsKernelConfig: merged snapshots keep the first
// non-nil kernel config (one deployment, one binary) and copy it rather than
// aliasing the input.
func TestMergeSnapshotsKeepsKernelConfig(t *testing.T) {
	a := Snapshot{Kernel: &tensor.KernelConfig{SIMD: "avx2", FlopThreshold: 1 << 20, PanelBytes: 192 << 10}}
	b := Snapshot{Kernel: &tensor.KernelConfig{SIMD: "off"}}
	m := MergeSnapshots(Snapshot{}, a, b)
	if m.Kernel == nil || m.Kernel.SIMD != "avx2" {
		t.Fatalf("merged kernel = %+v, want first non-nil (avx2)", m.Kernel)
	}
	a.Kernel.SIMD = "mutated"
	if m.Kernel.SIMD != "avx2" {
		t.Error("merged kernel aliases its input")
	}
}

// promValues parses a Prometheus text page into metric{labels} -> value.
func promValues(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestPrometheusEndpointMatchesWireMetrics drives traffic, fetches the
// metrics snapshot over the wire protocol, scrapes the HTTP endpoint, and
// asserts the scraped counters equal the wire-fetched ones — the external
// scraper and the conformance audit must see the same numbers.
func TestPrometheusEndpointMatchesWireMetrics(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 2, MaxBatch: 2, BatchWait: time.Millisecond,
		QueueDepth: 8, MetricsAddr: "127.0.0.1:0",
	})
	if s.MetricsAddr() == "" {
		t.Fatal("metrics endpoint not bound")
	}
	if _, err := s.Resize("", ResizeRequest{Workers: 3, Reason: "test"}); err != nil {
		t.Fatal(err)
	}
	tc := dialTest(t, s.Addr())
	for i := 0; i < 10; i++ {
		tc.predict(uint64(i+1), i, time.Time{})
	}
	tc.read(10)

	// Wire-fetched snapshot (the same frames backend.Remote uses).
	tc.mu.Lock()
	err := WriteMetricsRequest(tc.c, 42)
	tc.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := ReadClientFrame(tc.r)
	if err != nil {
		t.Fatal(err)
	}
	var wire Snapshot
	if err := json.Unmarshal(frame.MetricsJSON, &wire); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + s.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	vals := promValues(t, string(body))

	for name, want := range map[string]uint64{
		`mlperf_serve_admitted_total{model="default"}`:      wire.Admitted,
		`mlperf_serve_completed_total{model="default"}`:     wire.Completed,
		`mlperf_serve_rejected_total{model="default"}`:      wire.Rejected,
		`mlperf_serve_expired_total{model="default"}`:       wire.Expired,
		`mlperf_serve_errors_total{model="default"}`:        wire.Errors,
		`mlperf_serve_resize_events_total{model="default"}`: uint64(len(wire.Resizes)),
	} {
		got, ok := vals[name]
		if !ok {
			t.Errorf("scrape lacks %s\n%s", name, body)
			continue
		}
		if uint64(got) != want {
			t.Errorf("%s = %v, scraped vs wire %d", name, got, want)
		}
	}
	for name, want := range map[string]int{
		`mlperf_serve_workers{model="default"}`:     wire.Workers,
		`mlperf_serve_queue_limit{model="default"}`: wire.QueueLimit,
		`mlperf_serve_max_batch{model="default"}`:   wire.MaxBatch,
	} {
		if got := vals[name]; int(got) != want {
			t.Errorf("%s = %v, want %d", name, got, want)
		}
	}
	// Histogram buckets must be cumulative and end at the wire total.
	var batches uint64
	for _, b := range wire.BatchHistogram {
		batches += b.Count
	}
	if got := vals[`mlperf_serve_batch_size_count{model="default"}`]; uint64(got) != batches {
		t.Errorf("batch_size_count %v, wire says %d", got, batches)
	}
	if got := vals[`mlperf_serve_batch_size_bucket{model="default",le="+Inf"}`]; uint64(got) != batches {
		t.Errorf("+Inf bucket %v, want cumulative total %d", got, batches)
	}

	// The kernel configuration rides both channels: the wire snapshot carries
	// it as a struct, the scrape as mlperf_kernel_* families, and they must
	// agree with the live tensor dispatch state.
	kc := tensor.CurrentKernelConfig()
	if wire.Kernel == nil {
		t.Fatal("wire snapshot lacks kernel config")
	}
	if *wire.Kernel != kc {
		t.Errorf("wire kernel config %+v, want %+v", *wire.Kernel, kc)
	}
	if got, ok := vals[`mlperf_kernel_info{simd="`+kc.SIMD+`"}`]; !ok || got != 1 {
		t.Errorf("scrape lacks mlperf_kernel_info{simd=%q}\n%s", kc.SIMD, body)
	}
	if got := vals["mlperf_kernel_flop_threshold"]; int(got) != kc.FlopThreshold {
		t.Errorf("mlperf_kernel_flop_threshold = %v, want %d", got, kc.FlopThreshold)
	}
	if got := vals["mlperf_kernel_panel_bytes"]; int(got) != kc.PanelBytes {
		t.Errorf("mlperf_kernel_panel_bytes = %v, want %d", got, kc.PanelBytes)
	}
	if _, ok := vals["mlperf_kernel_calibrated"]; !ok {
		t.Errorf("scrape lacks mlperf_kernel_calibrated")
	}

	// Registered extra sources ride the same endpoint.
	s.OnScrape(func(w io.Writer) { fmt.Fprintln(w, "mlperf_test_extra 7") })
	resp2, err := http.Get("http://" + s.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if vals2 := promValues(t, string(body2)); vals2["mlperf_test_extra"] != 7 {
		t.Errorf("registered scrape source missing:\n%s", body2)
	}
}
