package audit

import (
	"strings"
	"testing"

	"mlperf/internal/trace"
)

// goodTraces builds a matched client/server record pair whose spans nest
// correctly: server work starts after issue and ends before the response
// lands, all stage sums stay inside their end-to-end spans.
func goodTraces() []trace.Record {
	base := int64(1_700_000_000_000_000_000)
	client := trace.Record{
		TraceID: 64, Model: "resnet", Origin: trace.OriginClient,
		Start: base, End2End: 5_000_000,
		HasServer: true, ServerStart: base + 1_000_000,
	}
	client.Stages[trace.StageIssue] = 100_000
	client.Stages[trace.StageAcquire] = 50_000
	client.Stages[trace.StageWrite] = 200_000
	client.Stages[trace.StageAwait] = 4_000_000
	client.Stages[trace.StageDecode] = 300_000
	client.Stages[trace.StageAdmit] = 50_000
	client.Stages[trace.StageQueue] = 900_000
	client.Stages[trace.StageAssembly] = 50_000
	client.Stages[trace.StageService] = 2_000_000
	client.Stages[trace.StageEncode] = 100_000
	server := trace.Record{
		TraceID: 64, Model: "resnet", Origin: trace.OriginServer,
		Start: base + 1_000_000, End2End: 3_200_000,
	}
	server.Stages[trace.StageAdmit] = 50_000
	server.Stages[trace.StageQueue] = 900_000
	server.Stages[trace.StageAssembly] = 50_000
	server.Stages[trace.StageService] = 2_000_000
	server.Stages[trace.StageEncode] = 100_000
	server.Stages[trace.StageReply] = 80_000
	return []trace.Record{client, server}
}

func tracedEvidence(records []trace.Record) ServingEvidence {
	ev := evidence()
	ev.Traces = records
	return ev
}

// TestCheckServingTraceWellFormed: nesting, bounded sums and a tail-only
// record all pass; an untraced run (nil Traces) gets no trace finding at all.
func TestCheckServingTraceWellFormed(t *testing.T) {
	records := goodTraces()
	// A tail-captured outlier with no trace id is legitimate evidence.
	records = append(records, trace.Record{
		Model: "resnet", Origin: trace.OriginServer, Tail: true,
		Start: 1_700_000_000_000_000_000, End2End: 80_000_000,
	})
	findings, err := CheckServing(tracedEvidence(records))
	if err != nil {
		t.Fatal(err)
	}
	f := findingByName(t, findings, "serving-trace")
	if !f.Pass {
		t.Fatalf("well-formed traces failed: %s", f.Detail)
	}
	if !strings.Contains(f.Detail, "2 client") && !strings.Contains(f.Detail, "1 client") {
		t.Errorf("detail lacks the origin split: %s", f.Detail)
	}

	findings, err = CheckServing(evidence())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Name == "serving-trace" {
			t.Fatal("untraced evidence produced a trace finding")
		}
	}

	// Tracing on but nothing captured is still a (passing) finding.
	findings, _ = CheckServing(tracedEvidence([]trace.Record{}))
	if f := findingByName(t, findings, "serving-trace"); !f.Pass {
		t.Errorf("empty trace set failed: %s", f.Detail)
	}
}

// TestCheckServingTraceDetectsMalformedSpans walks every class of impossible
// trace through the checker.
func TestCheckServingTraceDetectsMalformedSpans(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(r []trace.Record) []trace.Record
		want   string
	}{
		{"negative stage", func(r []trace.Record) []trace.Record {
			r[0].Stages[trace.StageWrite] = -1
			return r
		}, "negative"},
		{"client sum beyond e2e", func(r []trace.Record) []trace.Record {
			r[0].Stages[trace.StageAwait] += r[0].End2End
			return r
		}, "beyond"},
		{"server sum beyond e2e", func(r []trace.Record) []trace.Record {
			r[1].Stages[trace.StageService] += r[1].End2End
			return r
		}, "beyond"},
		{"server span before issue", func(r []trace.Record) []trace.Record {
			r[0].ServerStart = r[0].Start - 10_000_000
			return r
		}, "before the client issued"},
		{"server span past client close", func(r []trace.Record) []trace.Record {
			r[0].ServerStart = r[0].Start + r[0].End2End
			return r
		}, "after the client span closed"},
		{"folded block without start", func(r []trace.Record) []trace.Record {
			r[0].ServerStart = 0
			return r
		}, "without a server start"},
		{"retained without cause", func(r []trace.Record) []trace.Record {
			r[1].TraceID, r[1].Tail = 0, false
			return r
		}, "neither head-sampled nor an outlier"},
		{"zero start", func(r []trace.Record) []trace.Record {
			r[0].Start = 0
			return r
		}, "non-positive"},
		{"server-origin with folded block", func(r []trace.Record) []trace.Record {
			r[1].HasServer = true
			return r
		}, "server-origin"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			findings, err := CheckServing(tracedEvidence(tc.mutate(goodTraces())))
			if err != nil {
				t.Fatal(err)
			}
			f := findingByName(t, findings, "serving-trace")
			if f.Pass {
				t.Fatalf("malformed trace passed: %s", f.Detail)
			}
			if !strings.Contains(f.Detail, tc.want) {
				t.Errorf("detail %q lacks %q", f.Detail, tc.want)
			}
		})
	}
}
