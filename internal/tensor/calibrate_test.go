package tensor

import (
	"testing"

	"mlperf/internal/parallel"
)

func TestCalibrateMeasuresAndDerives(t *testing.T) {
	c := Calibrate()
	if c.SIMD != ActiveSIMD().String() {
		t.Errorf("Calibration.SIMD = %q, want %q", c.SIMD, ActiveSIMD().String())
	}
	if c.Workers != parallel.Default().Workers() {
		t.Errorf("Calibration.Workers = %d, want %d", c.Workers, parallel.Default().Workers())
	}
	if c.MACRate <= 0 {
		t.Errorf("Calibration.MACRate = %v, want > 0", c.MACRate)
	}
	if c.FlopThreshold < calMinFlopThreshold || c.FlopThreshold > calMaxFlopThreshold {
		t.Errorf("FlopThreshold %d outside [%d, %d]", c.FlopThreshold, calMinFlopThreshold, calMaxFlopThreshold)
	}
	if c.PanelBytes < calMinPanelBytes || c.PanelBytes > calMaxPanelBytes {
		t.Errorf("PanelBytes %d outside [%d, %d]", c.PanelBytes, calMinPanelBytes, calMaxPanelBytes)
	}
	if c.Workers <= 1 {
		if c.ForkOverhead != 0 {
			t.Errorf("single worker: ForkOverhead = %v, want 0", c.ForkOverhead)
		}
		if c.FlopThreshold != calMaxFlopThreshold {
			t.Errorf("single worker: FlopThreshold = %d, want ceiling %d", c.FlopThreshold, calMaxFlopThreshold)
		}
	} else if c.ForkOverhead <= 0 {
		t.Errorf("multi worker: ForkOverhead = %v, want > 0", c.ForkOverhead)
	}
}

func TestCalibrationPanelFromL2Fixture(t *testing.T) {
	dir := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "1024K"},
	})
	prevDir := calibrationL2Dir
	calibrationL2Dir = dir
	defer func() { calibrationL2Dir = prevDir }()

	c := Calibrate()
	if c.L2Bytes != 1024<<10 {
		t.Errorf("L2Bytes = %d, want %d", c.L2Bytes, 1024<<10)
	}
	if want := (1024 << 10) * 3 / 4; c.PanelBytes != want {
		t.Errorf("PanelBytes = %d, want 3/4 of L2 = %d", c.PanelBytes, want)
	}

	// Probe failure falls back to the shipped default.
	calibrationL2Dir = t.TempDir()
	if c := Calibrate(); c.PanelBytes != defaultGEMMPanelBytes {
		t.Errorf("no L2: PanelBytes = %d, want default %d", c.PanelBytes, defaultGEMMPanelBytes)
	}

	// Clamps on pathological topologies.
	calibrationL2Dir = writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "16K"},
	})
	if c := Calibrate(); c.PanelBytes != calMinPanelBytes {
		t.Errorf("tiny L2: PanelBytes = %d, want floor %d", c.PanelBytes, calMinPanelBytes)
	}
	calibrationL2Dir = writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "64M"},
	})
	if c := Calibrate(); c.PanelBytes != calMaxPanelBytes {
		t.Errorf("huge L2: PanelBytes = %d, want ceiling %d", c.PanelBytes, calMaxPanelBytes)
	}
}

func TestCalibrationApplyInstallsKnobs(t *testing.T) {
	defer func() {
		SetParallelFlopThreshold(0)
		SetGEMMPanelBytes(0)
		calibratedV.Store(false)
	}()
	calibratedV.Store(false)
	if CurrentKernelConfig().Calibrated {
		t.Fatal("Calibrated true before Apply")
	}
	c := Calibrate()
	c.Apply()
	cfg := CurrentKernelConfig()
	if !cfg.Calibrated {
		t.Error("Calibrated false after Apply")
	}
	if cfg.FlopThreshold != c.FlopThreshold || cfg.PanelBytes != c.PanelBytes {
		t.Errorf("applied knobs = (%d, %d), want (%d, %d)",
			cfg.FlopThreshold, cfg.PanelBytes, c.FlopThreshold, c.PanelBytes)
	}
	// Calibration is pure scheduling: results across applied/default knobs
	// stay bit-identical (the knob tests pin this in depth; spot-check here).
	a := seededTensor(7, 40, 30)
	b := seededTensor(8, 30, 50)
	calibrated, _ := MatMul(a, b)
	SetParallelFlopThreshold(0)
	SetGEMMPanelBytes(0)
	defaulted, _ := MatMul(a, b)
	requireBitEqual(t, "MatMul calibrated vs default knobs", calibrated, defaulted)
}
