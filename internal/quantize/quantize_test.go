package quantize

import (
	"math"
	"testing"
	"testing/quick"

	"mlperf/internal/model"
	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

func randomTensor(n int, seed uint64) *tensor.Tensor {
	t := tensor.MustNew(n)
	rng := stats.NewRNG(seed)
	for i := range t.Data() {
		t.Data()[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestApprovedFormats(t *testing.T) {
	formats := ApprovedFormats()
	if len(formats) != 9 {
		t.Fatalf("approved list has %d formats, want 9 (Section IV-A)", len(formats))
	}
	for _, f := range formats {
		if !Valid(f) {
			t.Errorf("approved format %q not Valid", f)
		}
	}
	if Valid(Format("int2")) {
		t.Error("int2 should not be valid")
	}
}

func TestFP32IsIdentity(t *testing.T) {
	x := randomTensor(256, 1)
	orig := x.Clone()
	s, err := Tensor(x, FP32)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equalish(x, orig, 0) {
		t.Error("FP32 quantization changed values")
	}
	if s.MeanAbsError != 0 {
		t.Errorf("FP32 error = %v", s.MeanAbsError)
	}
}

func TestInt8RoundTripError(t *testing.T) {
	x := randomTensor(4096, 2)
	orig := x.Clone()
	s, err := Tensor(x, INT8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale <= 0 {
		t.Errorf("scale = %v", s.Scale)
	}
	if s.MeanAbsError <= 0 {
		t.Error("INT8 should introduce nonzero error on random data")
	}
	// Error per element is bounded by half a quantization step.
	maxErr := 0.0
	for i := range x.Data() {
		e := math.Abs(float64(x.Data()[i]) - float64(orig.Data()[i]))
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > s.Scale/2+1e-9 {
		t.Errorf("max error %v exceeds half step %v", maxErr, s.Scale/2)
	}
}

func TestLowerPrecisionHasLargerError(t *testing.T) {
	base := randomTensor(4096, 3)
	errFor := func(f Format) float64 {
		x := base.Clone()
		s, err := Tensor(x, f)
		if err != nil {
			t.Fatal(err)
		}
		return s.MeanAbsError
	}
	int4 := errFor(INT4)
	int8 := errFor(INT8)
	int16 := errFor(INT16)
	if !(int4 > int8 && int8 > int16) {
		t.Errorf("error ordering violated: int4=%v int8=%v int16=%v", int4, int8, int16)
	}
	fp16 := errFor(FP16)
	bf16 := errFor(BFloat16)
	fp11 := errFor(FP11)
	if !(fp11 >= bf16 && bf16 >= fp16) {
		t.Errorf("float error ordering violated: fp11=%v bf16=%v fp16=%v", fp11, bf16, fp16)
	}
}

func TestTensorInvalidFormat(t *testing.T) {
	if _, err := Tensor(tensor.MustNew(4), Format("fp8")); err == nil {
		t.Error("unapproved format: expected error")
	}
}

func TestZeroTensorQuantizes(t *testing.T) {
	x := tensor.MustNew(16)
	s, err := Tensor(x, INT8)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanAbsError != 0 {
		t.Errorf("all-zero tensor error = %v", s.MeanAbsError)
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Error("all-zero tensor changed")
		}
	}
}

func TestModelQuantization(t *testing.T) {
	m, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	statsList, err := Model(m.Weights(), INT8)
	if err != nil {
		t.Fatal(err)
	}
	if len(statsList) != len(m.Weights()) {
		t.Errorf("stats for %d tensors, want %d", len(statsList), len(m.Weights()))
	}
	// The quantized model must still run.
	img := tensor.MustNew(3, 16, 16)
	img.Fill(0.2)
	if _, err := m.Classify(img); err != nil {
		t.Fatal(err)
	}
}

func TestModelQuantizationErrors(t *testing.T) {
	if _, err := Model(nil, INT8); err == nil {
		t.Error("no weights: expected error")
	}
	if _, err := Model([]*tensor.Tensor{nil}, INT8); err == nil {
		t.Error("nil weight: expected error")
	}
}

func TestQuantizationPerturbsModelOutputs(t *testing.T) {
	// INT4 weight quantization must perturb the model's logits visibly more
	// than INT16 — this is the accuracy-versus-format behaviour Section III-B
	// is built around.
	build := func() *model.ImageClassifier {
		m, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	rng := stats.NewRNG(77)
	images := make([]*tensor.Tensor, 10)
	for i := range images {
		img := tensor.MustNew(3, 16, 16)
		for j := range img.Data() {
			img.Data()[j] = float32(rng.NormFloat64())
		}
		images[i] = img
	}
	logitsOf := func(m *model.ImageClassifier) []*tensor.Tensor {
		out := make([]*tensor.Tensor, len(images))
		for i, img := range images {
			l, err := m.Logits(img)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = l
		}
		return out
	}
	reference := logitsOf(build())

	deviation := func(f Format) float64 {
		m := build()
		if _, err := Model(m.Weights(), f); err != nil {
			t.Fatal(err)
		}
		quantized := logitsOf(m)
		var sum float64
		var n int
		for i := range quantized {
			for j, v := range quantized[i].Data() {
				sum += math.Abs(float64(v) - float64(reference[i].Data()[j]))
				n++
			}
		}
		return sum / float64(n)
	}
	dInt4 := deviation(INT4)
	dInt16 := deviation(INT16)
	if dInt4 <= 0 {
		t.Error("INT4 quantization left logits unchanged; expected visible impact")
	}
	if dInt16 >= dInt4 {
		t.Errorf("INT16 deviation (%v) not smaller than INT4 (%v)", dInt16, dInt4)
	}
}

func TestCalibrator(t *testing.T) {
	c := NewCalibrator()
	if _, err := c.Scale("act0"); err == nil {
		t.Error("scale before observation: expected error")
	}
	a, _ := tensor.FromSlice([]float32{-1, 2, 0.5}, 3)
	b, _ := tensor.FromSlice([]float32{-3, 1}, 2)
	if err := c.Observe("act0", a); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe("act0", b); err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := c.Range("act0")
	if !ok || lo != -3 || hi != 2 {
		t.Errorf("range = (%v, %v, %v)", lo, hi, ok)
	}
	s, err := c.Scale("act0")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-3.0/127) > 1e-12 {
		t.Errorf("scale = %v, want 3/127", s)
	}
	if c.Observations() != 2 {
		t.Errorf("observations = %d", c.Observations())
	}
	if err := c.Observe("bad", nil); err == nil {
		t.Error("nil tensor: expected error")
	}
}

func TestCalibratorZeroActivations(t *testing.T) {
	c := NewCalibrator()
	z := tensor.MustNew(4)
	if err := c.Observe("zero", z); err != nil {
		t.Fatal(err)
	}
	s, err := c.Scale("zero")
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("zero-activation scale = %v, must be positive", s)
	}
}

func TestQuantizePreservesSignProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 || len(vals) > 512 {
			return true
		}
		for _, v := range vals {
			if v != v || math.IsInf(float64(v), 0) {
				return true
			}
		}
		x, err := tensor.FromSlice(append([]float32(nil), vals...), len(vals))
		if err != nil {
			return false
		}
		s, err := Tensor(x, INT8)
		if err != nil {
			return false
		}
		for i, v := range x.Data() {
			orig := vals[i]
			// Quantized values never flip sign by more than one step.
			if float64(orig) > s.Scale && v < 0 {
				return false
			}
			if float64(orig) < -s.Scale && v > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
