package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"mlperf/internal/trace"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

// parseExposition parses a full Prometheus text-format (0.0.4) payload,
// enforcing the grammar rules a real scraper enforces: comment lines are
// HELP/TYPE with valid metric names, TYPE appears at most once per family and
// before any of its samples, sample names belong to an announced family
// (allowing the _sum/_count/_bucket suffixes for summaries and histograms),
// label syntax is well-formed, and no two samples share a name+labelset.
func parseExposition(t *testing.T, body string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	helped := map[string]bool{}
	sampled := map[string]bool{}
	seen := map[string]bool{}
	for _, raw := range strings.Split(body, "\n") {
		line := strings.TrimRight(raw, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				t.Fatalf("malformed comment line %q", line)
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				t.Fatalf("invalid metric name in %q", line)
			}
			switch fields[1] {
			case "HELP":
				if helped[name] {
					t.Errorf("duplicate HELP for %s", name)
				}
				helped[name] = true
			case "TYPE":
				if types[name] != "" {
					t.Errorf("duplicate TYPE for %s", name)
				}
				if sampled[name] {
					t.Errorf("TYPE for %s appears after its samples", name)
				}
				if len(fields) != 4 {
					t.Fatalf("TYPE line %q missing the type", line)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					t.Fatalf("unknown type %q in %q", fields[3], line)
				}
				types[name] = fields[3]
			default:
				t.Fatalf("comment line %q is neither HELP nor TYPE", line)
			}
			continue
		}
		s := parseSampleLine(t, line)
		base := familyOf(s.name, types)
		if base == "" {
			t.Fatalf("sample %q belongs to no announced family", line)
		}
		sampled[base] = true
		key := s.name + "|" + labelKey(s.labels)
		if seen[key] {
			t.Errorf("duplicate sample %q", line)
		}
		seen[key] = true
		samples = append(samples, s)
	}
	for name := range types {
		if !sampled[name] {
			t.Errorf("family %s announced but has no samples", name)
		}
	}
	return types, samples
}

// parseSampleLine splits `name{label="v",...} value` (labels optional).
func parseSampleLine(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}, line: line}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			t.Fatalf("unbalanced braces in %q", line)
		}
		for _, pair := range splitLabels(t, rest[i+1:end], line) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				t.Fatalf("label %q in %q has no '='", pair, line)
			}
			name, quoted := pair[:eq], pair[eq+1:]
			if !labelNameRe.MatchString(name) {
				t.Fatalf("invalid label name %q in %q", name, line)
			}
			val, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("label value %s in %q is not a quoted string: %v", quoted, line, err)
			}
			if _, dup := s.labels[name]; dup {
				t.Fatalf("label %q repeated in %q", name, line)
			}
			s.labels[name] = val
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		s.name, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	if !metricNameRe.MatchString(s.name) {
		t.Fatalf("invalid sample name in %q", line)
	}
	// The value may be followed by an optional timestamp; this exporter never
	// emits one, so a second field is a bug.
	if strings.ContainsAny(rest, " \t") {
		t.Fatalf("unexpected trailing fields in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("unparseable value in %q: %v", line, err)
	}
	s.value = v
	return s
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(t *testing.T, body, line string) []string {
	t.Helper()
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(body):
			cur.WriteByte(c)
			i++
			cur.WriteByte(body[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		t.Fatalf("unterminated quote in %q", line)
	}
	if cur.Len() > 0 {
		out = append(out, strings.TrimSpace(cur.String()))
	}
	return out
}

// familyOf maps a sample name back to its announced family, honouring the
// summary and histogram child suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		switch types[base] {
		case "summary":
			if suffix != "_bucket" {
				return base
			}
		case "histogram":
			return base
		}
	}
	return ""
}

func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// TestScrapeWellFormed scrapes a live metrics endpoint — with tracing,
// runtime and latency families all populated — and validates the whole
// payload against the exposition grammar, then pins the family shapes the
// observability stack depends on: latency percentiles are summaries with
// quantile labels, trace stages are histograms with cumulative non-decreasing
// le buckets where the +Inf bucket equals _count, and the runtime families
// are present with sane values.
func TestScrapeWellFormed(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1})
	s := newTestServer(t, Config{
		Workers: 2, MaxBatch: 2, BatchWait: time.Millisecond,
		QueueDepth: 8, MetricsAddr: "127.0.0.1:0", Tracer: tr,
	})
	tc := dialTest(t, s.Addr())
	for i := 0; i < 10; i++ {
		tc.predict(uint64(i+1), i, time.Time{})
	}
	tc.read(10)
	// Guarantee a fully-populated stage histogram independent of scheduling:
	// publish one record that exercises every server stage.
	rec := &trace.Record{TraceID: 1, Model: "scrape", Origin: trace.OriginServer,
		Start: time.Now().UnixNano(), End2End: 6_000_000}
	for _, st := range []trace.Stage{trace.StageAdmit, trace.StageQueue, trace.StageAssembly,
		trace.StageService, trace.StageEncode, trace.StageReply} {
		rec.Stages[st] = 1_000_000
	}
	tr.Model("scrape").Publish(rec)

	resp, err := http.Get("http://" + s.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, string(raw))

	wantTypes := map[string]string{
		"mlperf_serve_queue_latency_seconds":   "summary",
		"mlperf_serve_service_latency_seconds": "summary",
		"mlperf_runtime_heap_bytes":            "gauge",
		"mlperf_runtime_gc_pause_seconds":      "summary",
		"mlperf_runtime_goroutines":            "gauge",
		"mlperf_trace_stage_seconds":           "histogram",
		"mlperf_trace_e2e_seconds":             "histogram",
	}
	for name, typ := range wantTypes {
		if got := types[name]; got != typ {
			t.Errorf("family %s: type %q, want %q", name, got, typ)
		}
	}

	// Index samples per metric name for the shape checks.
	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}

	// Summaries: every base sample carries a quantile label.
	for _, fam := range []string{"mlperf_serve_queue_latency_seconds", "mlperf_serve_service_latency_seconds"} {
		if len(byName[fam]) == 0 {
			t.Errorf("summary %s has no quantile samples", fam)
		}
		for _, s := range byName[fam] {
			q, ok := s.labels["quantile"]
			if !ok {
				t.Errorf("summary sample %q lacks a quantile label", s.line)
				continue
			}
			if v, err := strconv.ParseFloat(q, 64); err != nil || v < 0 || v > 1 {
				t.Errorf("quantile %q out of [0,1] in %q", q, s.line)
			}
		}
	}

	// Histograms: per labelset, le buckets are cumulative, non-decreasing,
	// include +Inf, and +Inf equals the family's _count.
	for _, fam := range []string{"mlperf_trace_stage_seconds", "mlperf_trace_e2e_seconds"} {
		counts := map[string]float64{}
		for _, s := range byName[fam+"_count"] {
			counts[labelKey(s.labels)] = s.value
		}
		if len(counts) == 0 {
			t.Errorf("histogram %s has no _count samples", fam)
		}
		type series struct {
			les  []float64
			vals []float64
			inf  float64
		}
		bySeries := map[string]*series{}
		for _, s := range byName[fam+"_bucket"] {
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("bucket sample %q lacks le", s.line)
			}
			rest := map[string]string{}
			for k, v := range s.labels {
				if k != "le" {
					rest[k] = v
				}
			}
			sr := bySeries[labelKey(rest)]
			if sr == nil {
				sr = &series{}
				bySeries[labelKey(rest)] = sr
			}
			if le == "+Inf" {
				sr.inf = s.value
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("unparseable le %q in %q", le, s.line)
			}
			sr.les = append(sr.les, bound)
			sr.vals = append(sr.vals, s.value)
		}
		for key, sr := range bySeries {
			if !sort.Float64sAreSorted(sr.les) {
				t.Errorf("%s{%s}: le bounds not ascending", fam, key)
			}
			if !sort.Float64sAreSorted(sr.vals) {
				t.Errorf("%s{%s}: bucket counts not cumulative", fam, key)
			}
			if n := len(sr.vals); n > 0 && sr.inf < sr.vals[n-1] {
				t.Errorf("%s{%s}: +Inf bucket %v below last bucket %v", fam, key, sr.inf, sr.vals[n-1])
			}
			if want, ok := counts[key]; !ok || sr.inf != want {
				t.Errorf("%s{%s}: +Inf bucket %v != _count %v", fam, key, sr.inf, want)
			}
		}
	}

	// The synthetic record must show up: six stages for model "scrape".
	stageCount := 0.0
	for _, s := range byName["mlperf_trace_stage_seconds_count"] {
		if s.labels["model"] == "scrape" {
			stageCount += s.value
		}
	}
	if stageCount != 6 {
		t.Errorf("model=scrape stage observations = %v, want 6", stageCount)
	}

	// Runtime families carry live, finite values.
	for _, fam := range []string{"mlperf_runtime_heap_bytes", "mlperf_runtime_goroutines"} {
		ss := byName[fam]
		if len(ss) != 1 {
			t.Fatalf("%s: %d samples, want 1", fam, len(ss))
		}
		if v := ss[0].value; v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("%s = %v, want a positive finite value", fam, v)
		}
	}
	if len(byName["mlperf_runtime_gc_pause_seconds_count"]) != 1 {
		t.Errorf("gc pause summary missing its _count")
	}
}
