package capacity

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// Env describes the compute envelope the serving process actually runs in —
// the ceiling the capacity manager grows toward. It is probed from the cgroup
// filesystem (v2 first, v1 fallback) so a container's CPU quota and memory
// limit bound the worker pool rather than the host's core count; outside any
// cgroup limit the runtime's view of the machine is used.
type Env struct {
	// CPULimit is the effective CPU budget in whole-or-fractional cores
	// (cgroup quota/period, or the runtime CPU count when unlimited).
	CPULimit float64
	// MemoryLimit is the memory ceiling in bytes, 0 when unlimited.
	MemoryLimit uint64
	// GOMAXPROCS is the runtime's scheduler parallelism at probe time.
	GOMAXPROCS int
	// Source names where the limits came from: "cgroup2", "cgroup1", or
	// "runtime" when no cgroup limit applied.
	Source string
}

// MaxWorkersSuggestion converts the CPU envelope into a worker-pool ceiling:
// two workers per available core (inference workers block on queue waits and
// response writes, so modest oversubscription keeps cores busy), never below
// one.
func (e Env) MaxWorkersSuggestion() int {
	n := int(2 * e.CPULimit)
	if n < 1 {
		n = 1
	}
	return n
}

func (e Env) String() string {
	mem := "unlimited"
	if e.MemoryLimit > 0 {
		mem = fmt.Sprintf("%dMiB", e.MemoryLimit>>20)
	}
	return fmt.Sprintf("cpu=%.2g mem=%s gomaxprocs=%d source=%s",
		e.CPULimit, mem, e.GOMAXPROCS, e.Source)
}

// DetectEnv probes /sys/fs/cgroup for this process's CPU and memory limits.
// It never fails: when no cgroup limit is readable it falls back to the
// runtime's CPU count and an unlimited memory envelope.
func DetectEnv() Env {
	return detectEnv("/sys/fs/cgroup")
}

// detectEnv is DetectEnv against an arbitrary cgroup mount root, so tests can
// point it at a fake tree.
func detectEnv(root string) Env {
	env := Env{
		CPULimit:   float64(runtime.NumCPU()),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Source:     "runtime",
	}
	if cpu, mem, ok := readCgroup2(root); ok {
		if cpu > 0 {
			env.CPULimit = cpu
		}
		env.MemoryLimit = mem
		env.Source = "cgroup2"
		return env
	}
	if cpu, mem, ok := readCgroup1(root); ok {
		if cpu > 0 {
			env.CPULimit = cpu
		}
		env.MemoryLimit = mem
		env.Source = "cgroup1"
		return env
	}
	return env
}

// readCgroup2 parses the unified hierarchy's cpu.max ("$MAX $PERIOD" or
// "max $PERIOD") and memory.max ("max" or bytes). ok reports whether the
// tree looked like cgroup v2 at all (cpu.max present).
func readCgroup2(root string) (cpu float64, mem uint64, ok bool) {
	raw, err := os.ReadFile(filepath.Join(root, "cpu.max"))
	if err != nil {
		return 0, 0, false
	}
	fields := strings.Fields(string(raw))
	if len(fields) >= 2 && fields[0] != "max" {
		quota, qerr := strconv.ParseFloat(fields[0], 64)
		period, perr := strconv.ParseFloat(fields[1], 64)
		if qerr == nil && perr == nil && period > 0 && quota > 0 {
			cpu = quota / period
		}
	}
	if raw, err := os.ReadFile(filepath.Join(root, "memory.max")); err == nil {
		s := strings.TrimSpace(string(raw))
		if s != "max" {
			if v, err := strconv.ParseUint(s, 10, 64); err == nil {
				mem = v
			}
		}
	}
	return cpu, mem, true
}

// readCgroup1 parses the legacy split hierarchy's cpu.cfs_quota_us /
// cpu.cfs_period_us (quota -1 = unlimited) and memory.limit_in_bytes
// (very large values mean unlimited).
func readCgroup1(root string) (cpu float64, mem uint64, ok bool) {
	quotaRaw, err := os.ReadFile(filepath.Join(root, "cpu", "cpu.cfs_quota_us"))
	if err != nil {
		return 0, 0, false
	}
	quota, qerr := strconv.ParseFloat(strings.TrimSpace(string(quotaRaw)), 64)
	if periodRaw, err := os.ReadFile(filepath.Join(root, "cpu", "cpu.cfs_period_us")); err == nil && qerr == nil && quota > 0 {
		if period, err := strconv.ParseFloat(strings.TrimSpace(string(periodRaw)), 64); err == nil && period > 0 {
			cpu = quota / period
		}
	}
	if raw, err := os.ReadFile(filepath.Join(root, "memory", "memory.limit_in_bytes")); err == nil {
		if v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64); err == nil {
			// Kernels report "unlimited" as PAGE_COUNTER_MAX, a huge
			// page-aligned value; treat anything ≥ 1 PiB as no limit.
			if v < 1<<50 {
				mem = v
			}
		}
	}
	return cpu, mem, true
}
