package multitenant

import (
	"fmt"
	"testing"
	"time"

	"mlperf/internal/backend"
	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/serve"
	"mlperf/internal/tensor"
)

// tenantEngine is a deterministic engine for serving tests: it answers each
// sample's index plus a tenant-specific offset, optionally sleeping per batch
// to simulate a slow model.
type tenantEngine struct {
	offset int
	delay  time.Duration
}

func (e *tenantEngine) Name() string       { return fmt.Sprintf("tenant(%d)", e.offset) }
func (e *tenantEngine) Kind() dataset.Kind { return dataset.KindImageClassification }

func (e *tenantEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]model.Output, error) {
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	out := make([]model.Output, len(samples))
	for i, s := range samples {
		out[i] = model.Output{Kind: dataset.KindImageClassification, Class: s.Index + e.offset}
	}
	return out, nil
}

func testQSL(t testing.TB, seed uint64) *dataset.QSL {
	t.Helper()
	ds, err := dataset.NewSyntheticImages(dataset.ImageConfig{
		Samples: 32, Classes: 10, Channels: 3, Height: 8, Width: 8, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	qsl, err := dataset.NewQSL(ds)
	if err != nil {
		t.Fatal(err)
	}
	return qsl
}

// TestMultitenantOverNetwork drives two tenants concurrently against ONE
// multi-engine listener — the network form of the paper's multitenancy mode.
// Each tenant's run must be independently valid, and the per-model queue
// metrics must show each tenant's traffic only in its own model's counters.
func TestMultitenantOverNetwork(t *testing.T) {
	qslA, qslB := testQSL(t, 3), testQSL(t, 4)
	srv, err := serve.New(serve.Config{
		Models: []serve.ModelConfig{
			{Name: "vision-a", Engine: &tenantEngine{offset: 1000}, Store: qslA},
			{Name: "vision-b", Engine: &tenantEngine{offset: 2000}, Store: qslB},
		},
		Workers: 2, BatchWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	newClient := func(modelID string) *backend.Remote {
		t.Helper()
		remote, err := backend.NewRemote(backend.RemoteConfig{
			Addr: srv.Addr(), Model: modelID, MaxInFlight: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { remote.Close() })
		return remote
	}
	remoteA, remoteB := newClient("vision-a"), newClient("vision-b")

	report, err := Run([]Tenant{
		{Name: "tenant-a", SUT: remoteA, QSL: qslA, Settings: serverSettings(150, 500*time.Millisecond, 48)},
		{Name: "tenant-b", SUT: remoteB, QSL: qslB, Settings: serverSettings(150, 500*time.Millisecond, 48)},
	})
	if err != nil {
		t.Fatal(err)
	}
	remoteA.Wait()
	remoteB.Wait()
	if !report.AllValid() {
		t.Fatalf("multitenant-over-network run invalid: %v", report.Violations())
	}

	// Per-model queue metrics are separated: each model's completions match
	// its own tenant's sample count exactly — no cross-tenant bleed.
	snapA, err := srv.ModelMetrics("vision-a")
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := srv.ModelMetrics("vision-b")
	if err != nil {
		t.Fatal(err)
	}
	var resA, resB *loadgen.Result
	for _, tr := range report.Tenants {
		switch tr.Tenant {
		case "tenant-a":
			resA = tr.Result
		case "tenant-b":
			resB = tr.Result
		}
	}
	if snapA.Completed != uint64(resA.SamplesCompleted) {
		t.Errorf("model vision-a completed %d, tenant-a issued %d", snapA.Completed, resA.SamplesCompleted)
	}
	if snapB.Completed != uint64(resB.SamplesCompleted) {
		t.Errorf("model vision-b completed %d, tenant-b issued %d", snapB.Completed, resB.SamplesCompleted)
	}
	if snapA.Rejected+snapA.Shed+snapB.Rejected+snapB.Shed != 0 {
		t.Errorf("provisioned tenants saw rejects: a=%d b=%d", snapA.Rejected+snapA.Shed, snapB.Rejected+snapB.Shed)
	}
}

// TestMultitenantQoSIsolation overloads one tenant's model (tiny queue, slow
// engine, far-overscheduled arrival rate) while the other runs a modest load
// behind the same listener. Per-model admission queues must keep the blast
// radius contained: the overloaded tenant's run is invalid with counted
// drops, the well-provisioned tenant's p99 bound is evaluated independently
// and stays satisfied.
func TestMultitenantQoSIsolation(t *testing.T) {
	qslA, qslB := testQSL(t, 5), testQSL(t, 6)
	srv, err := serve.New(serve.Config{
		Models: []serve.ModelConfig{
			{Name: "fast", Engine: &tenantEngine{offset: 0}, Store: qslA, Workers: 2},
			{Name: "slow", Engine: &tenantEngine{offset: 0, delay: 5 * time.Millisecond},
				Store: qslB, Workers: 1, QueueDepth: 2, MaxBatch: 1},
		},
		BatchWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	newClient := func(modelID string) *backend.Remote {
		t.Helper()
		remote, err := backend.NewRemote(backend.RemoteConfig{
			Addr: srv.Addr(), Model: modelID, MaxInFlight: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { remote.Close() })
		return remote
	}
	remoteFast, remoteSlow := newClient("fast"), newClient("slow")

	slowSettings := serverSettings(2000, 5*time.Millisecond, 200) // ~200/s capacity
	report, err := Run([]Tenant{
		{Name: "fast-tenant", SUT: remoteFast, QSL: qslA, Settings: serverSettings(100, time.Second, 48)},
		{Name: "slow-tenant", SUT: remoteSlow, QSL: qslB, Settings: slowSettings},
	})
	if err != nil {
		t.Fatal(err)
	}
	remoteFast.Wait()
	remoteSlow.Wait()

	var fast, slow TenantResult
	for _, tr := range report.Tenants {
		switch tr.Tenant {
		case "fast-tenant":
			fast = tr
		case "slow-tenant":
			slow = tr
		}
	}
	if fast.Err != nil || slow.Err != nil {
		t.Fatalf("run errors: fast %v, slow %v", fast.Err, slow.Err)
	}
	if !fast.Result.Valid {
		t.Errorf("well-provisioned tenant invalidated by a noisy neighbor: %v", fast.Result.ValidityMessages)
	}
	if fast.Result.ResponsesDropped != 0 {
		t.Errorf("fast tenant dropped %d responses", fast.Result.ResponsesDropped)
	}
	if slow.Result.Valid {
		t.Error("overloaded tenant reported valid")
	}
	if slow.Result.ResponsesDropped == 0 && slow.Result.LatencyBoundViolations == 0 {
		t.Error("overloaded tenant shows neither drops nor latency violations")
	}
	// The overload shows up only in the slow model's queue counters.
	fastSnap, _ := srv.ModelMetrics("fast")
	if fastSnap.Rejected+fastSnap.Shed != 0 {
		t.Errorf("fast model's queue rejected %d — not isolated", fastSnap.Rejected+fastSnap.Shed)
	}
	if report.AllValid() {
		t.Error("report claims all tenants valid despite the overloaded one")
	}
}
