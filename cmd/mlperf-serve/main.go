// Command mlperf-serve exposes a benchmark task's reference model over a
// network socket: it builds the task's zoo model and synthetic data set
// exactly as mlperf-loadgen does (same -samples/-seed ⇒ same weights and
// samples, so responses are bit-identical to an in-process run), then serves
// inference requests — with dynamic batching, bounded admission and
// per-request deadlines — until interrupted.
//
// Drive it from another process with mlperf-loadgen's remote backend:
//
//	mlperf-serve -task image-classification-light -addr 127.0.0.1:9090 \
//	    -samples 128 -seed 42 &
//	mlperf-loadgen -task image-classification-light -scenario Server \
//	    -backend remote -addr 127.0.0.1:9090 -samples 128 -seed 42
//
// On SIGINT/SIGTERM the server drains admitted work and prints its serving
// metrics (queue depth, batch-size histogram, queue/service latency
// percentiles, rejects) as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/serve"
)

func main() {
	var (
		taskName  = flag.String("task", string(core.ImageClassificationLight), "benchmark task whose reference model to serve")
		addr      = flag.String("addr", "127.0.0.1:9090", "listen address")
		samples   = flag.Int("samples", 128, "synthetic data-set size (must match the driving loadgen)")
		seed      = flag.Uint64("seed", 42, "model/data seed (must match the driving loadgen)")
		workers   = flag.Int("workers", 0, "inference workers (0 = all cores)")
		queue     = flag.Int("queue", 1024, "admission queue depth")
		policy    = flag.String("policy", "reject", "overload policy: reject or shed-oldest")
		maxBatch  = flag.Int("max-batch", 0, "dynamic batch cap (0 = the engine's derived micro-batch)")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "how long to hold an under-full batch open")
	)
	flag.Parse()

	overload, err := serve.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	assembly, err := harness.BuildNative(core.Task(*taskName), harness.BuildOptions{
		DatasetSamples: *samples, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	// The serving side owns sample residency: load the whole data set before
	// accepting traffic (the untimed load of the benchmark rules — the remote
	// LoadGen's own LoadSamplesToRAM applies to its local copy only).
	all := make([]int, assembly.QSL.TotalSampleCount())
	for i := range all {
		all[i] = i
	}
	if err := assembly.QSL.LoadSamplesToRAM(all); err != nil {
		fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Engine: assembly.Engine, Store: assembly.QSL, Addr: *addr,
		Workers: *workers, QueueDepth: *queue, Policy: overload,
		MaxBatch: *maxBatch, BatchWait: *batchWait,
	})
	if err != nil {
		fatal(err)
	}
	started := srv.Metrics()
	fmt.Printf("serving %s (%s) on %s\n", assembly.Info.Name, assembly.Spec.Task, srv.Addr())
	fmt.Printf("workers=%d max-batch=%d queue=%d policy=%s batch-wait=%v\n",
		started.Workers, started.MaxBatch, *queue, overload, *batchWait)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	snap := srv.Metrics()
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nserving metrics:\n%s\n", out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlperf-serve:", err)
	os.Exit(1)
}
