package tensor

import (
	"os"
	"path/filepath"
	"testing"
)

// writeSysfsCache fabricates a /sys/devices/system/cpu/cpu0/cache layout.
func writeSysfsCache(t *testing.T, indexes []map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for i, attrs := range indexes {
		idx := filepath.Join(dir, "index"+string(rune('0'+i)))
		if err := os.Mkdir(idx, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, value := range attrs {
			if err := os.WriteFile(filepath.Join(idx, name), []byte(value+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dir
}

func TestProbeL2CacheBytes(t *testing.T) {
	dir := writeSysfsCache(t, []map[string]string{
		{"level": "1", "type": "Data", "size": "48K"},
		{"level": "1", "type": "Instruction", "size": "32K"},
		{"level": "2", "type": "Unified", "size": "2048K"},
		{"level": "3", "type": "Unified", "size": "32M"},
	})
	if got := ProbeL2CacheBytes(dir); got != 2048<<10 {
		t.Errorf("ProbeL2CacheBytes = %d, want %d", got, 2048<<10)
	}
	if got := ProbeL2CacheBytes(filepath.Join(dir, "missing")); got != 0 {
		t.Errorf("missing topology: ProbeL2CacheBytes = %d, want 0", got)
	}
	malformed := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "lots"},
	})
	if got := ProbeL2CacheBytes(malformed); got != 0 {
		t.Errorf("malformed size: ProbeL2CacheBytes = %d, want 0", got)
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := map[string]int{
		"48K": 48 << 10, "2048K": 2048 << 10, "1M": 1 << 20, "1G": 1 << 30,
		"123": 123, "": 0, "K": 0, "-4K": 0, "4.5M": 0,
	}
	for in, want := range cases {
		if got := parseCacheSize(in); got != want {
			t.Errorf("parseCacheSize(%q) = %d, want %d", in, got, want)
		}
	}
}
