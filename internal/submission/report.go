package submission

import (
	"fmt"
	"sort"
	"strings"

	"mlperf/internal/core"
	"mlperf/internal/loadgen"
)

// Report renders a submission's results as a per-task, per-scenario text
// table. Deliberately, no summary score is computed: "MLPerf Inference
// provides no summary score" (Section V-C), because weighting tasks against
// each other is application specific.
func Report(s Submission) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MLPerf Inference results for %s\n", s.Submitter)
	fmt.Fprintf(&b, "%d entries across %d tasks (no summary score is provided by design)\n\n",
		len(s.Entries), len(s.TasksCovered()))

	entries := make([]Entry, len(s.Entries))
	copy(entries, s.Entries)
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Task != entries[j].Task {
			return entries[i].Task < entries[j].Task
		}
		return entries[i].Scenario < entries[j].Scenario
	})

	fmt.Fprintf(&b, "%-28s %-14s %-10s %-10s %-24s %-14s %s\n",
		"TASK", "SCENARIO", "DIVISION", "CATEGORY", "SYSTEM", "METRIC", "QUALITY")
	for _, e := range entries {
		metric := "n/a"
		if e.Performance != nil {
			metric = fmt.Sprintf("%.4g %s", e.MetricValue(), metricUnit(e.Scenario))
		}
		quality := "n/a"
		if e.Accuracy != nil {
			status := "FAIL"
			if e.Accuracy.Pass {
				status = "ok"
			}
			quality = fmt.Sprintf("%s=%.3f (%s)", e.Accuracy.Metric, e.Accuracy.Value, status)
		}
		fmt.Fprintf(&b, "%-28s %-14s %-10s %-10s %-24s %-14s %s\n",
			e.Task, e.Scenario, e.Division, e.Category, e.System.Name, metric, quality)
	}
	return b.String()
}

// metricUnit returns the unit suffix for a scenario's headline metric.
func metricUnit(s loadgen.Scenario) string {
	switch s {
	case loadgen.SingleStream:
		return "ms (p90)"
	case loadgen.MultiStream:
		return "streams"
	case loadgen.Server:
		return "QPS"
	case loadgen.Offline:
		return "samples/s"
	default:
		return ""
	}
}

// CoverageTable counts entries per (model, scenario) pair, the shape of
// Table VI of the paper.
func CoverageTable(entries []Entry) map[string]map[loadgen.Scenario]int {
	out := make(map[string]map[loadgen.Scenario]int)
	for _, e := range entries {
		spec, err := core.Spec(e.Task)
		if err != nil {
			continue
		}
		modelName := string(spec.ReferenceModel)
		if e.Division == Open && e.ModelUsed != "" {
			modelName = e.ModelUsed
		}
		if out[modelName] == nil {
			out[modelName] = make(map[loadgen.Scenario]int)
		}
		out[modelName][e.Scenario]++
	}
	return out
}
