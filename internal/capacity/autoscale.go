package capacity

import (
	"io"
	"sync"
	"time"

	"mlperf/internal/serve"
)

// Fleet is the replica set an Autoscaler resizes. harness.LoopbackDeployment
// adapts to it; tests substitute fakes. Slots are fixed at deployment time —
// autoscaling moves replicas between active and retired within them, so the
// client's address list (and its redial supervisors) never changes shape.
type Fleet interface {
	// Slots is the total replica slot count (active + retired).
	Slots() int
	// Active reports whether slot i currently serves traffic.
	Active(i int) bool
	// Spawn brings slot i into service: start (or restart) its server and
	// readmit it to routing; the client's redial supervisors discover it
	// through the probe handshake.
	Spawn(i int) error
	// Retire takes slot i out of service gracefully: leave routing, drain,
	// shut down. Never called on the last active slot.
	Retire(i int) error
	// Snapshot returns slot i's server-side metrics (zero Snapshot when the
	// slot is down).
	Snapshot(i int) (serve.Snapshot, error)
}

// AutoscaleConfig tunes an Autoscaler. The zero value is usable.
type AutoscaleConfig struct {
	// Interval is the sampling tick. <= 0 disables the background loop —
	// the owner calls Tick explicitly.
	Interval time.Duration
	// MinReplicas/MaxReplicas clamp the active count. MinReplicas 0
	// defaults to 1; MaxReplicas 0 defaults to the fleet's slot count.
	MinReplicas, MaxReplicas int
	// GrowAfter/ShrinkAfter are the consecutive-tick streaks that earn a
	// spawn (default 2) or a retire (default 8).
	GrowAfter, ShrinkAfter int
	// Cooldown is the hold-still period after any fleet change (default
	// 2× Interval).
	Cooldown time.Duration
	// QueueWatermark is the per-active-replica queue depth above which the
	// fleet counts as backlogged (default 4).
	QueueWatermark int
	// Logf, when set, receives one line per fleet decision.
	Logf func(format string, args ...any)
}

func (c AutoscaleConfig) withDefaults(slots int) AutoscaleConfig {
	if c.MinReplicas <= 0 {
		c.MinReplicas = 1
	}
	if c.MaxReplicas <= 0 || c.MaxReplicas > slots {
		c.MaxReplicas = slots
	}
	if c.GrowAfter <= 0 {
		c.GrowAfter = 2
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	if c.QueueWatermark <= 0 {
		c.QueueWatermark = 4
	}
	return c
}

// Autoscaler grows and shrinks a Fleet's active replica count against load,
// using the same earn-your-resize policy as the per-server Manager: pressure
// (admission losses or a backlogged fleet) sustained GrowAfter ticks spawns
// a replica into the first inactive slot; idleness sustained ShrinkAfter
// ticks drain-retires the highest active slot. Every decision is recorded as
// a serve.ResizeEvent with Resource "replicas" (From/To are active counts),
// so fleet-size changes reconcile through the same audit path as pool
// resizes.
type Autoscaler struct {
	cfg   AutoscaleConfig
	fleet Fleet

	mu       sync.Mutex
	prev     serve.Snapshot
	primed   bool
	pressure int
	idle     int
	holdTil  time.Time
	events   []serve.ResizeEvent

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewAutoscaler starts an autoscaler over the fleet. When cfg.Interval > 0 a
// background loop ticks it; otherwise the owner calls Tick.
func NewAutoscaler(fleet Fleet, cfg AutoscaleConfig) *Autoscaler {
	a := &Autoscaler{
		cfg:   cfg.withDefaults(fleet.Slots()),
		fleet: fleet,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if a.cfg.Interval > 0 {
		go a.loop()
	} else {
		close(a.done)
	}
	return a
}

// Close stops the background loop (if any) and waits for it to exit. The
// fleet keeps its current shape.
func (a *Autoscaler) Close() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}

func (a *Autoscaler) loop() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case now := <-t.C:
			a.Tick(now)
		}
	}
}

// Tick samples the fleet once and applies at most one spawn or retire.
func (a *Autoscaler) Tick(now time.Time) {
	var snaps []serve.Snapshot
	active := 0
	firstInactive, lastActive := -1, -1
	for i := 0; i < a.fleet.Slots(); i++ {
		if !a.fleet.Active(i) {
			if firstInactive < 0 {
				firstInactive = i
			}
			continue
		}
		active++
		lastActive = i
		if s, err := a.fleet.Snapshot(i); err == nil {
			snaps = append(snaps, s)
		}
	}
	if active == 0 {
		return
	}
	snap := serve.MergeSnapshots(snaps...)

	a.mu.Lock()
	if !a.primed {
		a.prev, a.primed = snap, true
		a.mu.Unlock()
		return
	}
	prev := a.prev
	a.prev = snap

	lost := (snap.Rejected - prev.Rejected) +
		(snap.Shed - prev.Shed) +
		(snap.Expired - prev.Expired)
	backlogged := snap.QueueDepth > active*a.cfg.QueueWatermark
	busy := snap.Completed > prev.Completed || snap.QueueDepth > 0

	switch {
	case lost > 0 || backlogged:
		a.pressure++
		a.idle = 0
	case !busy:
		a.idle++
		a.pressure = 0
	default:
		a.pressure, a.idle = 0, 0
	}

	grow := a.pressure >= a.cfg.GrowAfter && active < a.cfg.MaxReplicas && firstInactive >= 0
	shrink := a.idle >= a.cfg.ShrinkAfter && active > a.cfg.MinReplicas
	if now.Before(a.holdTil) || (!grow && !shrink) {
		a.mu.Unlock()
		return
	}
	a.pressure, a.idle = 0, 0
	a.holdTil = now.Add(a.cfg.Cooldown)
	a.mu.Unlock()

	if grow {
		if err := a.fleet.Spawn(firstInactive); err != nil {
			if a.cfg.Logf != nil {
				a.cfg.Logf("autoscale: spawn slot %d: %v", firstInactive, err)
			}
			return
		}
		a.record(now, active, active+1, "autoscale-grow")
		if a.cfg.Logf != nil {
			a.cfg.Logf("autoscale: spawned slot %d (%d -> %d replicas)", firstInactive, active, active+1)
		}
		return
	}
	if err := a.fleet.Retire(lastActive); err != nil {
		if a.cfg.Logf != nil {
			a.cfg.Logf("autoscale: retire slot %d: %v", lastActive, err)
		}
		return
	}
	a.record(now, active, active-1, "autoscale-shrink")
	if a.cfg.Logf != nil {
		a.cfg.Logf("autoscale: retired slot %d (%d -> %d replicas)", lastActive, active, active-1)
	}
}

func (a *Autoscaler) record(now time.Time, from, to int, reason string) {
	a.mu.Lock()
	a.events = append(a.events, serve.ResizeEvent{
		Time: now, Resource: serve.ResourceReplicas,
		From: from, To: to, Reason: reason,
	})
	a.mu.Unlock()
}

// Events returns a copy of every fleet decision applied so far.
func (a *Autoscaler) Events() []serve.ResizeEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]serve.ResizeEvent(nil), a.events...)
}

// WritePrometheus renders the autoscaler's decisions in the Prometheus text
// format (mlperf_autoscale_resizes_total / mlperf_autoscale_resize_last).
func (a *Autoscaler) WritePrometheus(w io.Writer) {
	serve.WriteResizesPrometheus(w, "mlperf_autoscale", a.Events())
}
