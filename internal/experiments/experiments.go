// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I–VII, Figures 5–8, the Section V-B audits and the
// Section VII-D modeled-versus-measured analysis). Each experiment returns a
// formatted text report; the mlperf-experiments command prints them and the
// repository-level benchmarks time them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"mlperf/internal/audit"
	"mlperf/internal/core"
	"mlperf/internal/evalcorpus"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/simhw"
	"mlperf/internal/stats"
)

// Options tunes how heavy the experiment computations are.
type Options struct {
	// Seed drives every simulation in the experiment suite.
	Seed uint64
	// SearchQueries is the virtual-time trial size for metric searches.
	SearchQueries int
	// Figure6Systems is how many systems the Figure 6 sweep evaluates
	// (the paper plots 11).
	Figure6Systems int
	// DatasetSamples sizes the synthetic data sets for native runs (audits).
	DatasetSamples int
}

// DefaultOptions returns a configuration that regenerates every experiment in
// seconds on a laptop while preserving the published shapes.
func DefaultOptions() Options {
	return Options{Seed: 2020, SearchQueries: 1024, Figure6Systems: 11, DatasetSamples: 64}
}

func (o *Options) normalize() {
	if o.Seed == 0 {
		o.Seed = 2020
	}
	if o.SearchQueries <= 0 {
		o.SearchQueries = 1024
	}
	if o.Figure6Systems <= 0 {
		o.Figure6Systems = 11
	}
	if o.DatasetSamples <= 0 {
		o.DatasetSamples = 64
	}
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID          string
	Description string
	Run         func(Options) (string, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: tasks, reference models, parameters, ops and quality targets", Table1},
		{"table2", "Table II: scenario descriptions and metrics", Table2},
		{"table3", "Table III: multistream arrival intervals and server QoS constraints", Table3},
		{"table4", "Table IV: query requirements for statistical confidence", Table4},
		{"table5", "Table V: queries and samples per query for each task", Table5},
		{"table6", "Table VI: closed-division coverage of models and scenarios", Table6},
		{"table7", "Table VII: framework versus hardware architecture", Table7},
		{"fig5", "Figure 5: closed-division result share per model", Figure5},
		{"fig6", "Figure 6: server-to-offline throughput ratio per system and model", Figure6},
		{"fig7", "Figure 7: results per processor architecture", Figure7},
		{"fig8", "Figure 8: relative performance span per model and scenario", Figure8},
		{"audits", "Section V-B: accuracy-verification, caching and alternate-seed audits", Audits},
		{"modeled-vs-measured", "Section VII-D: operation count versus measured throughput", ModeledVsMeasured},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// table builds an aligned text table.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 2, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	return b.String()
}

// Table1 reports the model zoo against the published Table I figures.
func Table1(opts Options) (string, error) {
	opts.normalize()
	zoo, err := model.NewZoo(model.ZooConfig{Seed: opts.Seed})
	if err != nil {
		return "", err
	}
	infos := zoo.Infos()
	rows := make([][]string, 0, len(infos))
	for _, name := range model.AllNames() {
		info := infos[name]
		rows = append(rows, []string{
			info.Area,
			info.TaskLabel,
			info.PaperName,
			fmt.Sprintf("%d", info.Params),
			fmt.Sprintf("%d", info.OpsPerInput),
			fmt.Sprintf("%d", info.PaperParams),
			fmt.Sprintf("%d", info.PaperOpsPerInput),
			fmt.Sprintf("%s >= %.2f%% of FP32 (%.4g)", info.QualityMetric, 100*info.TargetRatio, info.PaperReferenceQuality),
		})
	}
	header := []string{"AREA", "TASK", "REFERENCE MODEL", "PARAMS (mini)", "OPS/INPUT (mini)", "PARAMS (paper)", "OPS/INPUT (paper)", "QUALITY TARGET"}
	return "Table I — tasks and reference models\n" + table(header, rows), nil
}

// Table2 reports the four scenarios, their metrics and examples.
func Table2(opts Options) (string, error) {
	rows := make([][]string, 0, 4)
	samples := map[loadgen.Scenario]string{
		loadgen.SingleStream: "1",
		loadgen.MultiStream:  "N",
		loadgen.Server:       "1",
		loadgen.Offline:      "at least 24,576",
	}
	generation := map[loadgen.Scenario]string{
		loadgen.SingleStream: "sequential",
		loadgen.MultiStream:  "arrival interval with dropping",
		loadgen.Server:       "Poisson distribution",
		loadgen.Offline:      "batch",
	}
	for _, s := range loadgen.AllScenarios() {
		rows = append(rows, []string{
			s.String(), generation[s], core.ScenarioMetric(s), samples[s], core.ScenarioExample(s),
		})
	}
	header := []string{"SCENARIO", "QUERY GENERATION", "METRIC", "SAMPLES/QUERY", "EXAMPLES"}
	return "Table II — scenario descriptions and metrics\n" + table(header, rows), nil
}

// Table3 reports the per-task latency constraints.
func Table3(opts Options) (string, error) {
	rows := make([][]string, 0, 5)
	for _, spec := range core.Suite() {
		rows = append(rows, []string{
			string(spec.Task),
			spec.MultiStreamArrivalInterval.String(),
			spec.ServerLatencyBound.String(),
			fmt.Sprintf("%.0f%%", 100*spec.ServerLatencyPercentile),
		})
	}
	header := []string{"TASK", "MULTISTREAM ARRIVAL", "SERVER QOS", "SERVER PERCENTILE"}
	return "Table III — latency constraints\n" + table(header, rows), nil
}

// Table4 reports the statistically required query counts.
func Table4(opts Options) (string, error) {
	reqs, err := stats.TableIV()
	if err != nil {
		return "", err
	}
	rows := make([][]string, 0, len(reqs))
	for _, r := range reqs {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", 100*r.TailPercentile),
			fmt.Sprintf("%.0f%%", 100*r.Confidence),
			fmt.Sprintf("%.2f%%", 100*r.Margin),
			fmt.Sprintf("%d", r.Inferences),
			fmt.Sprintf("%d (= %d x 2^13)", r.Rounded, r.Rounded/stats.QueryBlock),
		})
	}
	header := []string{"TAIL PERCENTILE", "CONFIDENCE", "MARGIN", "INFERENCES", "ROUNDED"}
	return "Table IV — query requirements for statistical confidence\n" + table(header, rows), nil
}

// Table5 reports the per-task, per-scenario query requirements.
func Table5(opts Options) (string, error) {
	rows := make([][]string, 0, 5)
	for _, spec := range core.Suite() {
		rows = append(rows, []string{
			string(spec.Task),
			fmt.Sprintf("%d / 1", spec.SingleStreamQueries),
			fmt.Sprintf("%d / N", spec.MultiStreamQueries),
			fmt.Sprintf("%d / 1", spec.ServerQueries),
			fmt.Sprintf("1 / %d", spec.OfflineSamples),
		})
	}
	header := []string{"TASK", "SINGLE-STREAM", "MULTISTREAM", "SERVER", "OFFLINE"}
	return "Table V — number of queries / samples per query\n" + table(header, rows), nil
}

// Table6 reports the closed-division coverage matrix.
func Table6(opts Options) (string, error) {
	opts.normalize()
	corpus, err := evalcorpus.Generate(evalcorpus.Options{Seed: opts.Seed, SkipMetrics: true})
	if err != nil {
		return "", err
	}
	coverage := corpus.Coverage()
	rows := make([][]string, 0, len(coverage))
	totals := map[loadgen.Scenario]int{}
	for _, m := range model.AllNames() {
		row := coverage[string(m)]
		rows = append(rows, []string{
			string(m),
			fmt.Sprintf("%d", row[loadgen.SingleStream]),
			fmt.Sprintf("%d", row[loadgen.MultiStream]),
			fmt.Sprintf("%d", row[loadgen.Server]),
			fmt.Sprintf("%d", row[loadgen.Offline]),
		})
		for s, n := range row {
			totals[s] += n
		}
	}
	rows = append(rows, []string{
		"TOTAL",
		fmt.Sprintf("%d", totals[loadgen.SingleStream]),
		fmt.Sprintf("%d", totals[loadgen.MultiStream]),
		fmt.Sprintf("%d", totals[loadgen.Server]),
		fmt.Sprintf("%d", totals[loadgen.Offline]),
	})
	header := []string{"MODEL", "SINGLE-STREAM", "MULTISTREAM", "SERVER", "OFFLINE"}
	return "Table VI — coverage of models and scenarios (closed division)\n" + table(header, rows), nil
}

// Table7 reports the framework-versus-architecture matrix.
func Table7(opts Options) (string, error) {
	opts.normalize()
	corpus, err := evalcorpus.Generate(evalcorpus.Options{Seed: opts.Seed, SkipMetrics: true})
	if err != nil {
		return "", err
	}
	matrix := corpus.FrameworkMatrix()
	frameworks := make([]string, 0, len(matrix))
	for f := range matrix {
		frameworks = append(frameworks, f)
	}
	sort.Strings(frameworks)
	archs := []simhw.Architecture{simhw.ASIC, simhw.CPU, simhw.DSP, simhw.FPGA, simhw.GPU}
	rows := make([][]string, 0, len(frameworks))
	for _, f := range frameworks {
		row := []string{f}
		for _, a := range archs {
			mark := ""
			if matrix[f][a] {
				mark = "X"
			}
			row = append(row, mark)
		}
		rows = append(rows, row)
	}
	header := []string{"FRAMEWORK", "ASIC", "CPU", "DSP", "FPGA", "GPU"}
	return "Table VII — framework versus hardware architecture\n" + table(header, rows), nil
}

// Figure5 reports each model's share of the closed-division results.
func Figure5(opts Options) (string, error) {
	opts.normalize()
	corpus, err := evalcorpus.Generate(evalcorpus.Options{Seed: opts.Seed, SkipMetrics: true})
	if err != nil {
		return "", err
	}
	share := corpus.ModelShare()
	paper := map[string]float64{
		"resnet50-v1.5": 0.325, "mobilenet-v1": 0.223, "ssd-mobilenet-v1": 0.175,
		"ssd-resnet34": 0.163, "gnmt": 0.114,
	}
	rows := make([][]string, 0, len(share))
	for _, m := range model.AllNames() {
		rows = append(rows, []string{
			string(m),
			fmt.Sprintf("%.1f%%", 100*share[string(m)]),
			fmt.Sprintf("%.1f%%", 100*paper[string(m)]),
		})
	}
	header := []string{"MODEL", "SHARE (reproduced)", "SHARE (paper)"}
	return "Figure 5 — closed-division result share per model\n" + table(header, rows), nil
}

// Figure6 reports the server-to-offline throughput ratio per system and model.
func Figure6(opts Options) (string, error) {
	opts.normalize()
	series, err := evalcorpus.ServerToOfflineRatios(opts.Figure6Systems, evalcorpus.Options{
		Seed: opts.Seed, SearchQueries: opts.SearchQueries,
	})
	if err != nil {
		return "", err
	}
	header := []string{"SYSTEM"}
	for _, m := range model.AllNames() {
		header = append(header, string(m))
	}
	rows := make([][]string, 0, len(series))
	for _, s := range series {
		row := []string{s.Platform}
		for _, m := range model.AllNames() {
			row = append(row, fmt.Sprintf("%.2f", s.Ratios[string(m)]))
		}
		rows = append(rows, row)
	}
	summary := figure6Summary(series)
	return "Figure 6 — server-to-offline throughput ratio (1.0 = no degradation)\n" + table(header, rows) + summary, nil
}

// figure6Summary reproduces the Section VI-B observations about degradation
// ranges per model family.
func figure6Summary(series []evalcorpus.RatioSeries) string {
	degradation := func(m string) (min, max float64, n int) {
		min, max = 1, 0
		for _, s := range series {
			r, ok := s.Ratios[m]
			if !ok || r <= 0 {
				continue
			}
			d := 1 - r
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
			n++
		}
		if n == 0 {
			return 0, 0, 0
		}
		return min, max, n
	}
	var b strings.Builder
	for _, m := range []string{"gnmt", "resnet50-v1.5", "mobilenet-v1"} {
		lo, hi, n := degradation(m)
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s: throughput reduction under the server constraint spans %.0f%%-%.0f%% across %d systems\n",
			m, 100*lo, 100*hi, n)
	}
	return b.String()
}

// Figure7 reports result counts per processor architecture.
func Figure7(opts Options) (string, error) {
	opts.normalize()
	corpus, err := evalcorpus.Generate(evalcorpus.Options{Seed: opts.Seed, SkipMetrics: true})
	if err != nil {
		return "", err
	}
	counts := corpus.ArchitectureCounts()
	rows := make([][]string, 0, len(counts))
	for _, a := range simhw.AllArchitectures() {
		rows = append(rows, []string{string(a), fmt.Sprintf("%d", counts[a])})
	}
	header := []string{"ARCHITECTURE", "RESULTS"}
	return "Figure 7 — closed-division results per processor architecture\n" + table(header, rows), nil
}

// Figure8 reports the relative performance span per model and scenario.
func Figure8(opts Options) (string, error) {
	opts.normalize()
	corpus, err := evalcorpus.Generate(evalcorpus.Options{Seed: opts.Seed, SearchQueries: opts.SearchQueries})
	if err != nil {
		return "", err
	}
	ranges := corpus.PerformanceRanges()
	rows := make([][]string, 0, len(ranges))
	maxSpread := 0.0
	for _, r := range ranges {
		if r.Spread > maxSpread {
			maxSpread = r.Spread
		}
		rows = append(rows, []string{
			r.Model, r.Scenario.String(), fmt.Sprintf("%d", r.Systems), fmt.Sprintf("%.0fx", r.Spread),
		})
	}
	header := []string{"MODEL", "SCENARIO", "SYSTEMS", "BEST/WORST SPREAD"}
	footer := fmt.Sprintf("largest spread across any model/scenario: %.0fx (paper reports up to ~10,000x across the full corpus)\n", maxSpread)
	return "Figure 8 — relative performance span per model and scenario\n" + table(header, rows) + footer, nil
}

// Audits runs the Section V-B validation suite against a compliant native
// submission system.
func Audits(opts Options) (string, error) {
	opts.normalize()
	assembly, err := harness.BuildNative(core.ImageClassificationLight, harness.BuildOptions{
		DatasetSamples: opts.DatasetSamples, Seed: opts.Seed,
	})
	if err != nil {
		return "", err
	}
	settings := harness.QuickSettings(assembly.Spec, loadgen.SingleStream, 16)
	settings.MinDuration = 50 * time.Millisecond
	suite := audit.Suite{SUT: assembly.SUT, QSL: assembly.QSL, Settings: settings}
	findings, err := suite.RunAll()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Section V-B — result-review audits against the reference submission system\n")
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	if audit.AllPassed(findings) {
		b.WriteString("all audits passed\n")
	} else {
		b.WriteString("AUDIT FAILURES DETECTED\n")
	}
	return b.String(), nil
}

// ModeledVsMeasured reproduces the Section VII-D analysis: SSD-ResNet-34
// requires ~175x more operations per image than SSD-MobileNet-v1, but
// measured throughput differs far less.
func ModeledVsMeasured(opts Options) (string, error) {
	opts.normalize()
	workloads := simhw.StandardWorkloads()
	heavy := workloads["ssd-resnet34"]
	light := workloads["ssd-mobilenet-v1"]
	opsRatio := float64(heavy.OpsPerSample) / float64(light.OpsPerSample)

	rows := make([][]string, 0, 8)
	var ratios []float64
	for _, p := range simhw.Catalog() {
		heavyTput, err := simhw.OfflineThroughput(p, heavy, 4096, opts.Seed)
		if err != nil {
			return "", err
		}
		lightTput, err := simhw.OfflineThroughput(p, light, 4096, opts.Seed)
		if err != nil {
			return "", err
		}
		if heavyTput <= 0 {
			continue
		}
		ratio := lightTput / heavyTput
		ratios = append(ratios, ratio)
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%.1f", lightTput),
			fmt.Sprintf("%.1f", heavyTput),
			fmt.Sprintf("%.0fx", ratio),
		})
	}
	header := []string{"SYSTEM", "SSD-MOBILENET samples/s", "SSD-RESNET-34 samples/s", "MEASURED RATIO"}
	mean := 0.0
	for _, r := range ratios {
		mean += r
	}
	if len(ratios) > 0 {
		mean /= float64(len(ratios))
	}
	footer := fmt.Sprintf("operation-count ratio: %.0fx; mean measured throughput ratio: %.0fx — structure matters, not just ops (Section VII-D)\n",
		opsRatio, mean)
	return "Section VII-D — modeled (operation count) versus measured performance\n" + table(header, rows) + footer, nil
}
