//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in. Soak tests
// scale their offered load down under it: instrumentation costs roughly an
// order of magnitude of throughput, and the soaks assert validity against
// latency bounds calibrated for uninstrumented builds.
const raceEnabled = true
