package nn

import (
	"fmt"

	"mlperf/internal/tensor"
)

// BatchLayer is implemented by layers that can run a whole batch of samples
// as one (or a small constant number of) kernel invocations. Batched
// activations are CHANNEL-MAJOR: rank-4 [C, N, H, W] for spatial layers and
// rank-2 [F, N] for vector layers (see the layout discussion in
// internal/tensor/batched.go — a convolution's output GEMM then lands
// directly in the next layer's input layout). Implementations are bit-for-bit
// identical to running Forward per sample — batching is a throughput
// optimization, never a numerics change — which is what lets the dynamic
// batcher merge queries without perturbing accuracy-mode results.
type BatchLayer interface {
	// ForwardBatch runs the layer on a channel-major batch, allocating
	// intermediates and the output from s when non-nil (the result is then
	// arena-backed and dies at the arena's next Reset).
	ForwardBatch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error)
}

// ForwardBatchWith runs l on the channel-major batch x, using the layer's
// native batched path when available and falling back to unpacking the batch
// and running Forward per sample otherwise. The fallback preserves the
// bit-equivalence contract trivially.
func ForwardBatchWith(l Layer, x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if bl, ok := l.(BatchLayer); ok {
		return bl.ForwardBatch(x, s)
	}
	return forwardBatchFallback(l, x, s)
}

// forwardBatchFallback unpacks each sample from the channel-major batch, runs
// the layer's single-sample path, and repacks the outputs.
func forwardBatchFallback(l Layer, x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("nn: %s: batched fallback needs a [C N H W] batch, got %v", l.Name(), x.Shape())
	}
	batch := x.Dim(1)
	in := batchAlloc(s, x.Dim(0), x.Dim(2), x.Dim(3))
	var out *tensor.Tensor
	for n := 0; n < batch; n++ {
		if err := tensor.UnpackSample(in, x, n); err != nil {
			return nil, err
		}
		y, err := ForwardWith(l, in, s)
		if err != nil {
			return nil, fmt.Errorf("nn: %s: sample %d: %w", l.Name(), n, err)
		}
		if y.Rank() != 3 {
			return nil, fmt.Errorf("nn: %s: batched fallback supports CHW outputs, got %v", l.Name(), y.Shape())
		}
		if out == nil {
			out = batchAlloc(s, y.Dim(0), batch, y.Dim(1), y.Dim(2))
		}
		if err := tensor.PackSample(out, y, n); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// batchAlloc returns a tensor from the arena when s is non-nil and from the
// heap otherwise.
func batchAlloc(s *tensor.Scratch, shape ...int) *tensor.Tensor {
	if s != nil {
		return s.Tensor(shape...)
	}
	return tensor.MustNew(shape...)
}

// sampleShape returns the per-sample CHW shape of a [C, N, H, W] batch.
func sampleShape(x *tensor.Tensor) []int {
	return []int{x.Dim(0), x.Dim(2), x.Dim(3)}
}

// ForwardBatch implements BatchLayer: the whole batch runs as one im2col +
// one GEMM (tensor.Conv2DBatchedInto), writing straight into the next
// layer's channel-major input layout.
func (c *Conv) ForwardBatch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("conv %s: want [C N H W] batch, got %v", c.name, x.Shape())
	}
	out, err := c.OutputShape(sampleShape(x))
	if err != nil {
		return nil, err
	}
	dst := batchAlloc(s, out[0], x.Dim(1), out[1], out[2])
	post := tensor.PostNone
	switch {
	case c.Relu6:
		post = tensor.PostReLU6
	case c.Relu:
		post = tensor.PostReLU
	}
	if err := tensor.Conv2DBatchedInto(dst, x, c.Weights, c.Bias, tensor.Conv2DOptions{Stride: c.Stride, Padding: c.Padding}, post, s); err != nil {
		return nil, err
	}
	return dst, nil
}

// ForwardBatch implements BatchLayer.
func (d *DepthwiseConv) ForwardBatch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("dwconv %s: want [C N H W] batch, got %v", d.name, x.Shape())
	}
	out, err := d.OutputShape(sampleShape(x))
	if err != nil {
		return nil, err
	}
	dst := batchAlloc(s, out[0], x.Dim(1), out[1], out[2])
	if err := tensor.DepthwiseConv2DBatchedInto(dst, x, d.Weights, d.Bias, tensor.Conv2DOptions{Stride: d.Stride, Padding: d.Padding}, tensor.PostReLU6); err != nil {
		return nil, err
	}
	return dst, nil
}

// ForwardBatch implements BatchLayer: one GEMM of the weight matrix against
// the feature-major batch covers every sample, with no reshuffling of either
// operand.
func (d *Dense) ForwardBatch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(0) != d.Weights.Dim(1) {
		return nil, fmt.Errorf("dense %s: want [%d N] batch, got %v", d.name, d.Weights.Dim(1), x.Shape())
	}
	y := batchAlloc(s, d.Weights.Dim(0), x.Dim(1))
	if err := tensor.DenseBatchedInto(y, d.Weights, x, d.Bias); err != nil {
		return nil, err
	}
	if d.Relu {
		return tensor.ReLU(y), nil
	}
	return y, nil
}

// ForwardBatch implements BatchLayer.
func (m *MaxPool) ForwardBatch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("maxpool %s: want [C N H W] batch, got %v", m.name, x.Shape())
	}
	out, err := m.OutputShape(sampleShape(x))
	if err != nil {
		return nil, err
	}
	dst := batchAlloc(s, out[0], x.Dim(1), out[1], out[2])
	if err := tensor.MaxPool2DBatchedInto(dst, x, m.Window, m.Stride); err != nil {
		return nil, err
	}
	return dst, nil
}

// ForwardBatch implements BatchLayer: [C, N, H, W] reduces to the
// feature-major [C, N] matrix the batched Dense head consumes directly.
func (g *GlobalAvgPool) ForwardBatch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("gap %s: want [C N H W] batch, got %v", g.name, x.Shape())
	}
	dst := batchAlloc(s, x.Dim(0), x.Dim(1))
	if err := tensor.GlobalAvgPool2DBatchedInto(dst, x); err != nil {
		return nil, err
	}
	return dst, nil
}

// ForwardBatch implements BatchLayer: softmax applies per column of the
// feature-major batch.
func (s *Softmax) ForwardBatch(x *tensor.Tensor, sc *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 2 {
		return nil, fmt.Errorf("softmax %s: want [F N] batch, got %v", s.name, x.Shape())
	}
	f, batch := x.Dim(0), x.Dim(1)
	dst := batchAlloc(sc, f, batch)
	col := batchAlloc(sc, f)
	for n := 0; n < batch; n++ {
		for r := 0; r < f; r++ {
			col.Data()[r] = x.Data()[r*batch+n]
		}
		if err := tensor.SoftmaxInto(col, col); err != nil {
			return nil, err
		}
		for r := 0; r < f; r++ {
			dst.Data()[r*batch+n] = col.Data()[r]
		}
	}
	return dst, nil
}

// ForwardBatch implements BatchLayer by chaining the contained layers'
// batched paths.
func (s *Sequential) ForwardBatch(x *tensor.Tensor, sc *tensor.Scratch) (*tensor.Tensor, error) {
	cur := x
	for _, l := range s.layers {
		out, err := ForwardBatchWith(l, cur, sc)
		if err != nil {
			return nil, fmt.Errorf("nn: %s/%s: %w", s.name, l.Name(), err)
		}
		cur = out
	}
	return cur, nil
}

// ForwardBatch implements BatchLayer. The element-wise shortcut add and ReLU
// act identically per sample in any layout, so bit-equivalence is preserved.
func (r *Residual) ForwardBatch(x *tensor.Tensor, sc *tensor.Scratch) (*tensor.Tensor, error) {
	var body *tensor.Tensor
	if sc != nil {
		body = sc.CloneTensor(x)
	} else {
		body = x.Clone()
	}
	out, err := ForwardBatchWith(r.body, body, sc)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", r.name, err)
	}
	if !tensor.SameShape(out, x) {
		return nil, fmt.Errorf("nn: %s: residual body changed shape from %v to %v", r.name, x.Shape(), out.Shape())
	}
	// Fused add+ReLU: one pass over the batched activations instead of two.
	if err := tensor.AddThenReLU(out, x); err != nil {
		return nil, err
	}
	return out, nil
}
