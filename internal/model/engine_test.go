package model

import (
	"math"
	"math/rand"
	"testing"

	"mlperf/internal/dataset"
	"mlperf/internal/tensor"
)

// randSamples builds n random CHW image samples matching shape.
func randSamples(r *rand.Rand, n int, shape []int) []*dataset.Sample {
	out := make([]*dataset.Sample, n)
	for i := range out {
		img := tensor.MustNew(shape...)
		data := img.Data()
		for j := range data {
			data[j] = float32(r.NormFloat64())
		}
		out[i] = &dataset.Sample{Index: i, Image: img}
	}
	return out
}

// requireSameOutputs asserts two output slices are bit-identical predictions.
func requireSameOutputs(t *testing.T, got, want []Output, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Class != w.Class {
			t.Fatalf("%s: output %d = %+v, want %+v", label, i, g, w)
		}
		if len(g.Boxes) != len(w.Boxes) {
			t.Fatalf("%s: output %d has %d boxes, want %d", label, i, len(g.Boxes), len(w.Boxes))
		}
		for b := range g.Boxes {
			gb, wb := g.Boxes[b], w.Boxes[b]
			if gb.Class != wb.Class ||
				math.Float64bits(gb.Score) != math.Float64bits(wb.Score) ||
				math.Float64bits(gb.X1) != math.Float64bits(wb.X1) ||
				math.Float64bits(gb.Y1) != math.Float64bits(wb.Y1) ||
				math.Float64bits(gb.X2) != math.Float64bits(wb.X2) ||
				math.Float64bits(gb.Y2) != math.Float64bits(wb.Y2) {
				t.Fatalf("%s: output %d box %d differs bit-for-bit: %+v vs %+v", label, i, b, gb, wb)
			}
		}
		if len(g.Tokens) != len(w.Tokens) {
			t.Fatalf("%s: output %d has %d tokens, want %d", label, i, len(g.Tokens), len(w.Tokens))
		}
		for tk := range g.Tokens {
			if g.Tokens[tk] != w.Tokens[tk] {
				t.Fatalf("%s: output %d token %d differs", label, i, tk)
			}
		}
	}
}

// predictSingles runs Predict once per sample and concatenates the results —
// the reference the batched path must match bit for bit.
func predictSingles(t *testing.T, e Engine, samples []*dataset.Sample) []Output {
	t.Helper()
	var out []Output
	for _, s := range samples {
		one, err := e.Predict([]*dataset.Sample{s}, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, one...)
	}
	return out
}

func TestClassifierBatchMatchesSingles(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	builds := map[string]func(ClassifierConfig) (*ImageClassifier, error){
		"resnet50":  NewResNet50Mini,
		"mobilenet": NewMobileNetV1Mini,
		"wide":      NewWideResNetMini,
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			m, err := build(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			// Ragged sizes including 1 and a non-divisor final batch.
			for _, batch := range []int{1, 3, 8, 5} {
				samples := randSamples(r, batch, m.InputShape())
				got, err := m.Predict(samples, nil)
				if err != nil {
					t.Fatal(err)
				}
				want := predictSingles(t, m, samples)
				requireSameOutputs(t, got, want, name)
			}
		})
	}
}

func TestDetectorBatchMatchesSingles(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	builds := map[string]func(DetectorConfig) (*SSDDetector, error){
		"ssd-resnet34":  NewSSDResNet34Mini,
		"ssd-mobilenet": NewSSDMobileNetMini,
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			d, err := build(DetectorConfig{Classes: 5, ImageSize: 16, Seed: 6, ScoreThreshold: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{1, 4, 7} {
				samples := randSamples(r, batch, d.InputShape())
				got, err := d.Predict(samples, nil)
				if err != nil {
					t.Fatal(err)
				}
				want := predictSingles(t, d, samples)
				requireSameOutputs(t, got, want, name)
			}
		})
	}
}

func TestPredictOnRecycledScratchIsStable(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	m, err := NewResNet50Mini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	samples := randSamples(r, 6, m.InputShape())
	s := tensor.NewScratch()
	var first []Output
	for pass := 0; pass < 3; pass++ {
		s.Reset()
		got, err := m.Predict(samples, s)
		if err != nil {
			t.Fatal(err)
		}
		if pass == 0 {
			first = got
			continue
		}
		requireSameOutputs(t, got, first, "recycled scratch pass")
	}
	// Different batch geometry on the same arena must not corrupt results.
	s.Reset()
	ragged, err := m.Predict(samples[:4], s)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutputs(t, ragged, first[:4], "ragged batch on recycled arena")
}

func TestEngineAdaptersMatchNativePredict(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	m, err := NewMobileNetV1Mini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	samples := randSamples(r, 5, m.InputShape())
	adapter := EngineFromClassifier("wrapped-mobilenet", m)
	if adapter.Name() != "wrapped-mobilenet" || adapter.Kind() != dataset.KindImageClassification {
		t.Error("adapter identity wrong")
	}
	got, err := adapter.Predict(samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Predict(samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutputs(t, got, want, "classifier adapter")

	d, err := NewSSDMobileNetMini(DetectorConfig{Classes: 5, ImageSize: 16, Seed: 8, ScoreThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	detAdapter := EngineFromDetector("wrapped-ssd", d)
	if detAdapter.Kind() != dataset.KindObjectDetection {
		t.Error("detector adapter kind wrong")
	}
	gotDet, err := detAdapter.Predict(samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDet, err := d.Predict(samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutputs(t, gotDet, wantDet, "detector adapter")

	g, err := NewGNMTMini(TranslatorConfig{Vocab: 64, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	text := []*dataset.Sample{
		{Index: 0, Tokens: []int{5, 9, 3}},
		{Index: 1, Tokens: []int{7, 2, 2, 8}},
	}
	trAdapter := EngineFromTranslator("wrapped-gnmt", g)
	if trAdapter.Kind() != dataset.KindTranslation {
		t.Error("translator adapter kind wrong")
	}
	gotTr, err := trAdapter.Predict(text, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantTr, err := g.Predict(text, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutputs(t, gotTr, wantTr, "translator adapter")
}

// TestTranslateGoldenOutputs pins GNMT greedy decoding to outputs recorded
// before the recurrent path moved onto the scratch arena: the arena is a
// memory optimization and must not change a single token.
func TestTranslateGoldenOutputs(t *testing.T) {
	g, err := NewGNMTMini(TranslatorConfig{Vocab: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string][]int{
		"5,9,3":        {4, 4, 54, 54, 54, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32, 32},
		"7,2,2,8":      {51, 0, 27, 27, 27, 22, 22, 22, 27, 27, 27, 27, 27, 27, 27, 27, 29, 29, 29, 29, 29, 29, 29, 29},
		"63,1,0,12,40": {12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 33, 4, 4, 33, 4, 33, 4, 4, 40, 40},
		"2":            {40, 55, 5, 50, 5, 5, 5, 5, 5, 5, 40, 40, 32, 32, 32, 32, 32, 33, 33, 32, 32, 32, 33, 5},
	}
	inputs := map[string][]int{
		"5,9,3":        {5, 9, 3},
		"7,2,2,8":      {7, 2, 2, 8},
		"63,1,0,12,40": {63, 1, 0, 12, 40},
		"2":            {2},
	}
	for key, src := range inputs {
		got, err := g.Translate(src)
		if err != nil {
			t.Fatal(err)
		}
		want := golden[key]
		if len(got) != len(want) {
			t.Fatalf("src %s: %d tokens, want %d", key, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("src %s: token %d = %d, want %d", key, i, got[i], want[i])
			}
		}
	}
}

// randTextSamples builds n token samples with ragged lengths in [1, maxLen].
func randTextSamples(r *rand.Rand, n, vocab, maxLen int) []*dataset.Sample {
	out := make([]*dataset.Sample, n)
	for i := range out {
		tokens := make([]int, 1+r.Intn(maxLen))
		for j := range tokens {
			tokens[j] = 2 + r.Intn(vocab-2)
		}
		out[i] = &dataset.Sample{Index: i, Tokens: tokens}
	}
	return out
}

// translateSingles runs the serial single-sentence Translate per sample — the
// reference the batched Predict must match bit for bit.
func translateSingles(t *testing.T, g *GNMTMini, samples []*dataset.Sample) []Output {
	t.Helper()
	out := make([]Output, len(samples))
	for i, s := range samples {
		tokens, err := g.Translate(s.Tokens)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = Output{Kind: dataset.KindTranslation, Tokens: tokens}
	}
	return out
}

// TestGNMTBatchMatchesSerialTranslate: batched greedy decoding over ragged
// sentence lengths — including batches that span several micro-batches and
// the single-sentence batch — is bit-identical to N serial Translate calls.
func TestGNMTBatchMatchesSerialTranslate(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	g, err := NewGNMTMini(TranslatorConfig{Vocab: 64, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	batches := []int{1, 2, 5, 9, g.PreferredBatch() + 3}
	for _, batch := range batches {
		samples := randTextSamples(r, batch, 64, 12)
		got, err := g.Predict(samples, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireSameOutputs(t, got, translateSingles(t, g, samples), "gnmt batch")
	}
}

// TestGNMTBatchAllFinishImmediately: rigging the output bias so EOS always
// wins makes every sentence finish on decode step 1; the batch must drain on
// that step and return empty translations, exactly like the serial path.
func TestGNMTBatchAllFinishImmediately(t *testing.T) {
	g, err := NewGNMTMini(TranslatorConfig{Vocab: 64, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g.net.Output.Bias.Data()[g.net.EOS] = 1000
	samples := []*dataset.Sample{
		{Index: 0, Tokens: []int{5, 9, 3}},
		{Index: 1, Tokens: []int{7}},
		{Index: 2, Tokens: []int{8, 2, 2, 8, 11}},
	}
	got, err := g.Predict(samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range got {
		if len(out.Tokens) != 0 {
			t.Errorf("sentence %d produced %v, want empty", i, out.Tokens)
		}
	}
	requireSameOutputs(t, got, translateSingles(t, g, samples), "all-EOS batch")
}

// TestGNMTBatchOnRecycledScratchIsStable: repeated batched passes over one
// recycled arena, including a different batch geometry, must not perturb a
// single token.
func TestGNMTBatchOnRecycledScratchIsStable(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	g, err := NewGNMTMini(TranslatorConfig{Vocab: 64, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	samples := randTextSamples(r, 7, 64, 10)
	s := tensor.NewScratch()
	var first []Output
	for pass := 0; pass < 3; pass++ {
		s.Reset()
		got, err := g.Predict(samples, s)
		if err != nil {
			t.Fatal(err)
		}
		if pass == 0 {
			first = got
			continue
		}
		requireSameOutputs(t, got, first, "recycled arena pass")
	}
	s.Reset()
	ragged, err := g.Predict(samples[:3], s)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutputs(t, ragged, first[:3], "ragged batch on recycled arena")
	requireSameOutputs(t, first, translateSingles(t, g, samples), "arena passes vs serial")
}

// TestMicroBatchDerivation pins the footprint-derived micro-batch sizes: the
// heavyweight classifier keeps the previously tuned 8, lighter activations
// batch deeper, the wide model batches shallower, and the translator's tiny
// step state hits the cap. The cache budget is pinned to the historical
// 384 KiB so the assertions are machine-independent (the production budget is
// probed from the host's L2; see cachebudget.go).
func TestMicroBatchDerivation(t *testing.T) {
	defer setMicroBatchCacheBudgetForTest(defaultMicroBatchCacheBudget)()
	resnet, err := NewResNet50Mini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mobilenet, err := NewMobileNetV1Mini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewWideResNetMini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gnmt, err := NewGNMTMini(TranslatorConfig{Vocab: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := resnet.PreferredBatch(); got != 8 {
		t.Errorf("resnet micro-batch = %d, want 8", got)
	}
	if got := mobilenet.PreferredBatch(); got <= resnet.PreferredBatch() {
		t.Errorf("mobilenet micro-batch = %d, want deeper than resnet's %d", got, resnet.PreferredBatch())
	}
	if got := wide.PreferredBatch(); got >= resnet.PreferredBatch() || got < 1 {
		t.Errorf("wide micro-batch = %d, want shallower than resnet's %d", got, resnet.PreferredBatch())
	}
	if got := gnmt.PreferredBatch(); got != microBatchCap {
		t.Errorf("gnmt micro-batch = %d, want the cap %d", got, microBatchCap)
	}
	det, err := NewSSDResNet34Mini(DetectorConfig{Classes: 5, ImageSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := det.PreferredBatch(); got < 1 {
		t.Errorf("detector micro-batch = %d", got)
	}
}

// TestWideModelWeightsExceedL2 pins the premise of the weight-streaming
// benchmark: the wide classifier's weights cannot be cache-resident.
func TestWideModelWeightsExceedL2(t *testing.T) {
	wide, err := NewWideResNetMini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes := weightBytes(wide); bytes <= wideL2Budget {
		t.Fatalf("wide model weights = %d bytes, want > %d", bytes, wideL2Budget)
	}
	small, err := NewResNet50Mini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if weightBytes(small) >= weightBytes(wide) {
		t.Error("wide model should carry more weight bytes than the mini ResNet")
	}
}

func TestPredictValidatesSamples(t *testing.T) {
	m, err := NewMobileNetV1Mini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]*dataset.Sample{{Index: 0}}, nil); err == nil {
		t.Error("nil image: expected error")
	}
	wrong := tensor.MustNew(3, 8, 8)
	if _, err := m.Predict([]*dataset.Sample{{Index: 0, Image: wrong}}, nil); err == nil {
		t.Error("wrong shape: expected error")
	}
	if out, err := m.Predict(nil, nil); err != nil || out != nil {
		t.Errorf("empty batch: got %v, %v", out, err)
	}
	if _, err := (Output{Kind: dataset.Kind(99)}).Encode(); err == nil {
		t.Error("unknown kind encode: expected error")
	}
}
