package payload

import (
	"testing"

	"mlperf/internal/metrics"
)

func TestClassRoundTrip(t *testing.T) {
	data, err := EncodeClass(7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeClass(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("round trip = %d, want 7", got)
	}
	if _, err := DecodeClass([]byte("not json")); err == nil {
		t.Error("garbage input: expected error")
	}
}

func TestBoxesRoundTrip(t *testing.T) {
	boxes := []metrics.Box{
		{X1: 0.1, Y1: 0.2, X2: 0.5, Y2: 0.6, Class: 3, Score: 0.9},
		{X1: 0.3, Y1: 0.3, X2: 0.4, Y2: 0.4, Class: 1, Score: 0.5},
	}
	data, err := EncodeBoxes(boxes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBoxes(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Class != 3 || got[1].Score != 0.5 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeBoxes([]byte("{")); err == nil {
		t.Error("garbage input: expected error")
	}
	empty, err := EncodeBoxes(nil)
	if err != nil {
		t.Fatal(err)
	}
	gotEmpty, err := DecodeBoxes(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotEmpty) != 0 {
		t.Errorf("empty boxes round trip = %+v", gotEmpty)
	}
}

func TestTokensRoundTrip(t *testing.T) {
	tokens := []int{4, 8, 15, 16, 23, 42}
	data, err := EncodeTokens(tokens)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTokens(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tokens) {
		t.Fatalf("length mismatch")
	}
	for i := range tokens {
		if got[i] != tokens[i] {
			t.Errorf("token %d = %d, want %d", i, got[i], tokens[i])
		}
	}
	if _, err := DecodeTokens([]byte("[")); err == nil {
		t.Error("garbage input: expected error")
	}
}
