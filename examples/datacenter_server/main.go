// Datacenter server: the online-serving use case (translation websites,
// consumer-facing services) where queries arrive as a Poisson process and
// must be answered within a QoS bound.
//
// The example demonstrates the two sides of the server scenario:
//
//  1. A wall-clock LoadGen run against the native MobileNet backend wrapped in
//     a dynamic batcher, showing how batching trades latency for throughput.
//
//  2. A virtual-time sweep over data-center platforms from the catalogue,
//     searching for the highest Poisson rate each sustains under Table III's
//     latency bound, and comparing it to the unconstrained offline throughput
//     (the Figure 6 analysis for a single task).
//
//     go run ./examples/datacenter_server
package main

import (
	"fmt"
	"log"
	"time"

	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/simhw"
)

func main() {
	// Part 1: wall-clock server run against the native backend, with and
	// without dynamic batching.
	assembly, err := harness.BuildNative(core.ImageClassificationLight, harness.BuildOptions{
		DatasetSamples: 128, Seed: 3, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := assembly.Spec

	settings := harness.QuickSettings(spec, loadgen.Server, 512)
	settings.MinDuration = 300 * time.Millisecond
	settings.ServerTargetQPS = 300
	settings.ServerTargetLatency = 50 * time.Millisecond

	plain, err := loadgen.StartTest(assembly.SUT, assembly.QSL, settings)
	if err != nil {
		log.Fatal(err)
	}
	batcher, err := backend.NewBatching(assembly.SUT, 8, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	batched, err := loadgen.StartTest(batcher, assembly.QSL, settings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== native MobileNet, server scenario at 300 QPS offered (wall clock, scaled down) ==")
	fmt.Printf("  %-22s achieved %6.1f QPS, p99 %9v, violations %.2f%%, valid=%v\n",
		"direct backend", plain.ServerAchievedQPS, plain.QueryLatencies.P99, 100*plain.LatencyBoundViolations, plain.Valid)
	fmt.Printf("  %-22s achieved %6.1f QPS, p99 %9v, violations %.2f%%, valid=%v\n",
		"with dynamic batching", batched.ServerAchievedQPS, batched.QueryLatencies.P99, 100*batched.LatencyBoundViolations, batched.Valid)

	// Part 2: virtual-time sweep across data-center platforms for the heavy
	// classification task (ResNet-50, 15 ms QoS bound).
	heavySpec, err := core.Spec(core.ImageClassificationHeavy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== simulated data-center platforms, %s server scenario (bound %v, p%.0f) ==\n",
		heavySpec.ReferenceModel, heavySpec.ServerLatencyBound, 100*heavySpec.ServerLatencyPercentile)
	fmt.Printf("  %-16s %14s %16s %10s\n", "SYSTEM", "SERVER QPS", "OFFLINE (inf/s)", "RATIO")
	for _, name := range []string{"server-cpu-c2", "dc-fpga-f3", "dc-asic-a1", "dc-gpu-g1", "dc-gpu-g2"} {
		platform, err := simhw.FindPlatform(name)
		if err != nil {
			log.Fatal(err)
		}
		metrics, err := harness.SimulatedSubmission(platform, heavySpec, simhw.SearchOptions{Queries: 4096, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %14.1f %16.1f %10.2f\n",
			name, metrics.ServerQPS, metrics.OfflineThroughput, metrics.ServerToOfflineRatio())
	}
	fmt.Println("\nthe latency bound costs every platform throughput; platforms that need large")
	fmt.Println("batches to reach peak lose the most (the paper's Figure 6 observation)")
}
