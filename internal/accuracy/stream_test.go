package accuracy

import (
	"testing"

	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/metrics"
	"mlperf/internal/payload"
)

// streamAll feeds a log through a fresh StreamChecker and returns its report.
func streamAll(t *testing.T, ds dataset.Dataset, log []loadgen.AccuracyEntry, reference, target float64) Report {
	t.Helper()
	c, err := NewStreamChecker(ds, reference, target)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range log {
		c.Add(e)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestStreamCheckerMatchesBatchCheck: streaming one entry at a time must
// reproduce the batch accuracy script exactly for every task kind.
func TestStreamCheckerMatchesBatchCheck(t *testing.T) {
	// Classification.
	imgDS, imgLog := classificationFixture(t)
	batch, err := Check(imgLog, imgDS, 0.8, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	stream := streamAll(t, imgDS, imgLog, 0.8, 0.7)
	if stream != batch {
		t.Errorf("classification: stream report %+v != batch report %+v", stream, batch)
	}

	// Detection.
	detDS, err := dataset.NewSyntheticDetection(dataset.ImageConfig{
		Samples: 10, Classes: 3, Channels: 1, Height: 4, Width: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var detLog []loadgen.AccuracyEntry
	for i := 0; i < detDS.Size(); i++ {
		s, _ := detDS.Sample(i)
		boxes := make([]metrics.Box, len(s.Boxes))
		copy(boxes, s.Boxes)
		for j := range boxes {
			boxes[j].Score = 0.9
		}
		data, err := payload.EncodeBoxes(boxes)
		if err != nil {
			t.Fatal(err)
		}
		detLog = append(detLog, loadgen.AccuracyEntry{SampleIndex: i, Data: data})
	}
	detBatch, err := Check(detLog, detDS, 0.5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	detStream := streamAll(t, detDS, detLog, 0.5, 0.4)
	if detStream != detBatch {
		t.Errorf("detection: stream report %+v != batch report %+v", detStream, detBatch)
	}

	// Translation.
	textDS, err := dataset.NewSyntheticText(dataset.TextConfig{Samples: 12, Vocab: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var textLog []loadgen.AccuracyEntry
	for i := 0; i < textDS.Size(); i++ {
		s, _ := textDS.Sample(i)
		data, err := payload.EncodeTokens(s.RefTokens)
		if err != nil {
			t.Fatal(err)
		}
		textLog = append(textLog, loadgen.AccuracyEntry{SampleIndex: i, Data: data})
	}
	textBatch, err := Check(textLog, textDS, 24, 23)
	if err != nil {
		t.Fatal(err)
	}
	textStream := streamAll(t, textDS, textLog, 24, 23)
	if textStream != textBatch {
		t.Errorf("translation: stream report %+v != batch report %+v", textStream, textBatch)
	}
}

func TestStreamCheckerErrors(t *testing.T) {
	imgDS, imgLog := classificationFixture(t)

	// Empty stream.
	c, err := NewStreamChecker(imgDS, 0.8, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(); err == nil {
		t.Error("empty stream: expected error")
	}

	// Corrupt payload surfaces at Report.
	c2, _ := NewStreamChecker(imgDS, 0.8, 0.7)
	c2.Add(loadgen.AccuracyEntry{SampleIndex: 0, Data: []byte("junk")})
	c2.Add(imgLog[0])
	if _, err := c2.Report(); err == nil {
		t.Error("corrupt payload: expected error from Report")
	}

	// Out-of-range sample index.
	c3, _ := NewStreamChecker(imgDS, 0.8, 0.7)
	c3.Add(loadgen.AccuracyEntry{SampleIndex: 999, Data: imgLog[0].Data})
	if _, err := c3.Report(); err == nil {
		t.Error("out-of-range sample: expected error from Report")
	}

	// Unsupported dataset type.
	if _, err := NewStreamChecker(nil, 0, 0); err == nil {
		t.Error("nil dataset: expected error")
	}
}

// TestBLEUAccumulatorMatchesCorpusBLEU cross-checks the incremental and batch
// BLEU forms on an imperfect corpus.
func TestBLEUAccumulatorMatchesCorpusBLEU(t *testing.T) {
	hyps := [][]int{{1, 2, 3, 4}, {5, 6}, {7, 8, 9}, {1, 1, 1, 1, 1}}
	refs := [][]int{{1, 2, 3, 5}, {5, 6}, {9, 8, 7}, {1, 2, 1, 2, 1, 2}}
	want, err := metrics.CorpusBLEU(hyps, refs)
	if err != nil {
		t.Fatal(err)
	}
	var acc metrics.BLEUAccumulator
	for i := range hyps {
		acc.Add(hyps[i], refs[i])
	}
	got, err := acc.Score()
	if err != nil {
		t.Fatal(err)
	}
	if got != want || acc.Pairs() != len(hyps) {
		t.Errorf("accumulator BLEU = %v (%d pairs), CorpusBLEU = %v", got, acc.Pairs(), want)
	}
}
