package tensor

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// Cache-topology probing. The GEMM panel budget (tuning.go) and the model
// package's micro-batch cache budget both want the per-core L2 size; the
// probe lives here, next to the knobs it calibrates, and model re-exports its
// budget math on top of it.

// ProbeL2CacheBytes reads the level-2 data/unified cache size of one core
// from a sysfs cache directory (normally
// /sys/devices/system/cpu/cpu0/cache). It returns 0 when the topology is
// unreadable — non-Linux, masked sysfs in a container, unparsable size —
// which callers treat as "probe unavailable".
func ProbeL2CacheBytes(cacheDir string) int {
	if runtime.GOOS != "linux" {
		return 0
	}
	indexes, err := filepath.Glob(filepath.Join(cacheDir, "index*"))
	if err != nil {
		return 0
	}
	for _, dir := range indexes {
		if readSysfsString(filepath.Join(dir, "level")) != "2" {
			continue
		}
		typ := readSysfsString(filepath.Join(dir, "type"))
		if typ != "Unified" && typ != "Data" {
			continue
		}
		if size := parseCacheSize(readSysfsString(filepath.Join(dir, "size"))); size > 0 {
			return size
		}
	}
	return 0
}

// readSysfsString returns the trimmed contents of a sysfs attribute, or ""
// when unreadable.
func readSysfsString(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(data))
}

// parseCacheSize parses sysfs cache sizes like "48K", "2048K" or "1M" into
// bytes, returning 0 on malformed input.
func parseCacheSize(s string) int {
	if s == "" {
		return 0
	}
	mult := 1
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0
	}
	return n * mult
}
