// Package accuracy implements the benchmark's accuracy script (Figure 3,
// step 7): it decodes the responses the LoadGen logged during an
// accuracy-mode run, scores them against the data set's ground truth with the
// task's quality metric, and decides whether the model meets its quality
// target. It also provides the log-consistency check used by the
// accuracy-verification audit (Section V-B).
package accuracy

import (
	"bytes"
	"fmt"

	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/metrics"
	"mlperf/internal/payload"
)

// Report is the outcome of scoring one accuracy-mode run.
type Report struct {
	Metric    string  // "top1", "mAP" or "BLEU"
	Value     float64 // measured quality
	Reference float64 // FP32 reference quality the target derives from
	Target    float64 // minimum acceptable quality
	Samples   int     // scored samples
	Pass      bool
}

// String formats the report the way result summaries print it.
func (r Report) String() string {
	status := "FAILED"
	if r.Pass {
		status = "PASSED"
	}
	return fmt.Sprintf("%s=%.4f (target %.4f, reference %.4f, %d samples): %s",
		r.Metric, r.Value, r.Target, r.Reference, r.Samples, status)
}

// CheckClassification scores an image-classification accuracy log.
func CheckClassification(log []loadgen.AccuracyEntry, ds *dataset.SyntheticImages) (float64, error) {
	if len(log) == 0 {
		return 0, fmt.Errorf("accuracy: empty accuracy log")
	}
	var preds, labels []int
	for _, entry := range log {
		sample, err := ds.Sample(entry.SampleIndex)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		class, err := payload.DecodeClass(entry.Data)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		preds = append(preds, class)
		labels = append(labels, sample.Label)
	}
	return metrics.Top1Accuracy(preds, labels)
}

// CheckDetection scores an object-detection accuracy log at the given IoU
// threshold.
func CheckDetection(log []loadgen.AccuracyEntry, ds *dataset.SyntheticDetection, iouThreshold float64) (float64, error) {
	if len(log) == 0 {
		return 0, fmt.Errorf("accuracy: empty accuracy log")
	}
	var dets []metrics.Detection
	var truths []metrics.GroundTruth
	for _, entry := range log {
		sample, err := ds.Sample(entry.SampleIndex)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		boxes, err := payload.DecodeBoxes(entry.Data)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		dets = append(dets, metrics.Detection{SampleIndex: entry.SampleIndex, Boxes: boxes})
		truths = append(truths, metrics.GroundTruth{SampleIndex: entry.SampleIndex, Boxes: sample.Boxes})
	}
	return metrics.MeanAveragePrecision(dets, truths, iouThreshold)
}

// CheckTranslation scores a machine-translation accuracy log with corpus
// BLEU.
func CheckTranslation(log []loadgen.AccuracyEntry, ds *dataset.SyntheticText) (float64, error) {
	if len(log) == 0 {
		return 0, fmt.Errorf("accuracy: empty accuracy log")
	}
	var hyps, refs [][]int
	for _, entry := range log {
		sample, err := ds.Sample(entry.SampleIndex)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		tokens, err := payload.DecodeTokens(entry.Data)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		hyps = append(hyps, tokens)
		refs = append(refs, sample.RefTokens)
	}
	return metrics.CorpusBLEU(hyps, refs)
}

// Check scores an accuracy log against the appropriate metric for the data
// set's kind and compares the result to target (derived from the reference
// quality).
func Check(log []loadgen.AccuracyEntry, ds dataset.Dataset, reference, target float64) (Report, error) {
	var (
		value  float64
		metric string
		err    error
	)
	switch d := ds.(type) {
	case *dataset.SyntheticImages:
		metric = "top1"
		value, err = CheckClassification(log, d)
	case *dataset.SyntheticDetection:
		metric = "mAP"
		value, err = CheckDetection(log, d, 0.5)
	case *dataset.SyntheticText:
		metric = "BLEU"
		value, err = CheckTranslation(log, d)
	default:
		return Report{}, fmt.Errorf("accuracy: unsupported data set type %T", ds)
	}
	if err != nil {
		return Report{}, err
	}
	return Report{
		Metric:    metric,
		Value:     value,
		Reference: reference,
		Target:    target,
		Samples:   len(log),
		Pass:      value >= target,
	}, nil
}

// VerifyConsistency implements the accuracy-verification audit: responses
// sampled during a performance run must match the responses recorded for the
// same samples during the accuracy run. It returns the number of compared
// entries and an error describing the first mismatch.
func VerifyConsistency(performanceLog, accuracyLog []loadgen.AccuracyEntry) (int, error) {
	if len(accuracyLog) == 0 {
		return 0, fmt.Errorf("accuracy: accuracy-mode log is empty")
	}
	reference := make(map[int][]byte, len(accuracyLog))
	for _, entry := range accuracyLog {
		reference[entry.SampleIndex] = entry.Data
	}
	compared := 0
	for _, entry := range performanceLog {
		want, ok := reference[entry.SampleIndex]
		if !ok {
			return compared, fmt.Errorf("accuracy: sample %d logged in performance mode but absent from the accuracy run", entry.SampleIndex)
		}
		if !bytes.Equal(entry.Data, want) {
			return compared, fmt.Errorf("accuracy: sample %d response differs between performance and accuracy runs", entry.SampleIndex)
		}
		compared++
	}
	return compared, nil
}
