package audit

import (
	"testing"
	"time"

	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
	"mlperf/internal/stats"
	"mlperf/internal/trace"
)

// evidence fabricates a fully reconciled 2-replica Server run: 100 queries,
// 4 rejected (3 on replica 0, 1 on replica 1), 2 expired, invalid because of
// the drops, latency log consistent with the reported violation fraction.
func evidence() ServingEvidence {
	log := make([]time.Duration, 100)
	for i := range log {
		log[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms
	}
	return ServingEvidence{
		Result: &loadgen.Result{
			Scenario:         loadgen.Server,
			QueriesIssued:    100,
			QueriesCompleted: 100,
			SamplesIssued:    100,
			SamplesCompleted: 100,
			ResponsesDropped: 6,
			Valid:            false,
			ValidityMessages: []string{"SUT dropped 6 responses"},
			QueryLatencies:   stats.LatencySummary{Count: len(log), Sorted: log},
			// 10 of 100 queries exceed the 90ms bound.
			LatencyBoundViolations: 0.10,
		},
		Settings: loadgen.TestSettings{
			Scenario:                loadgen.Server,
			ServerTargetLatency:     90 * time.Millisecond,
			ServerLatencyPercentile: 0.9,
		},
		ClientRejected: 4,
		ClientExpired:  2,
		Replicas: []serve.Snapshot{
			{Rejected: 3, Expired: 2, Completed: 60},
			{Rejected: 1, Completed: 34},
		},
	}
}

func findingByName(t *testing.T, findings []Finding, name string) Finding {
	t.Helper()
	for _, f := range findings {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no finding %q in %v", name, findings)
	return Finding{}
}

// TestCheckServingReconciled: fully consistent sharded evidence passes every
// conformance check.
func TestCheckServingReconciled(t *testing.T) {
	findings, err := CheckServing(evidence())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Fatalf("expected 4 findings, got %d: %v", len(findings), findings)
	}
	for _, f := range findings {
		if !f.Pass {
			t.Errorf("reconciled evidence failed %s: %s", f.Name, f.Detail)
		}
	}
}

// TestCheckServingDetectsSilentShed: a replica that rejected work the client
// never saw is the canonical silent drop — the accounting check must fail.
func TestCheckServingDetectsSilentShed(t *testing.T) {
	ev := evidence()
	ev.Replicas[0].Rejected += 5 // server-side rejects the client never saw
	findings, err := CheckServing(ev)
	if err != nil {
		t.Fatal(err)
	}
	if f := findingByName(t, findings, "serving-drop-accounting"); f.Pass {
		t.Errorf("silent shed passed: %s", f.Detail)
	}

	ev = evidence()
	ev.Replicas[0].Expired = 0 // expiries the client saw but no server counted
	findings, _ = CheckServing(ev)
	if f := findingByName(t, findings, "serving-drop-accounting"); f.Pass {
		t.Errorf("unexplained client expiries passed: %s", f.Detail)
	}

	ev = evidence()
	ev.Result.ResponsesDropped = 9 // transport drops beyond reject+expire
	findings, _ = CheckServing(ev)
	if f := findingByName(t, findings, "serving-drop-accounting"); f.Pass {
		t.Errorf("transport loss passed: %s", f.Detail)
	}
}

// TestCheckServingDetectsDroppedButValid: reporting a run with drops as valid
// violates the run rules.
func TestCheckServingDetectsDroppedButValid(t *testing.T) {
	ev := evidence()
	ev.Result.Valid = true
	findings, err := CheckServing(ev)
	if err != nil {
		t.Fatal(err)
	}
	if f := findingByName(t, findings, "serving-drop-validity"); f.Pass {
		t.Errorf("dropped-but-valid passed: %s", f.Detail)
	}
}

// TestCheckServingDetectsIncompleteRun: queries that never completed mean the
// fleet hung or lost work.
func TestCheckServingDetectsIncompleteRun(t *testing.T) {
	ev := evidence()
	ev.Result.QueriesCompleted = 90
	findings, err := CheckServing(ev)
	if err != nil {
		t.Fatal(err)
	}
	if f := findingByName(t, findings, "serving-completion"); f.Pass {
		t.Errorf("incomplete run passed: %s", f.Detail)
	}
}

// TestCheckServingDetectsUnderstatedViolations: a result whose reported
// violation fraction disagrees with its own latency log must fail.
func TestCheckServingDetectsUnderstatedViolations(t *testing.T) {
	ev := evidence()
	ev.Result.LatencyBoundViolations = 0.01 // log says 10%
	findings, err := CheckServing(ev)
	if err != nil {
		t.Fatal(err)
	}
	if f := findingByName(t, findings, "serving-latency-bound"); f.Pass {
		t.Errorf("understated violations passed: %s", f.Detail)
	}

	// And a run over the bound that still claims validity.
	ev = evidence()
	ev.Settings.ServerLatencyPercentile = 0.95 // allowed 5% < actual 10%
	ev.Result.Valid = true
	ev.Result.ResponsesDropped = 0
	ev.ClientRejected, ev.ClientExpired = 0, 0
	for i := range ev.Replicas {
		ev.Replicas[i].Rejected, ev.Replicas[i].Shed, ev.Replicas[i].Expired = 0, 0, 0
	}
	findings, _ = CheckServing(ev)
	if f := findingByName(t, findings, "serving-latency-bound"); f.Pass {
		t.Errorf("over-bound-but-valid passed: %s", f.Detail)
	}
}

// TestCheckServingEvidenceValidation pins the input requirements.
func TestCheckServingEvidenceValidation(t *testing.T) {
	if _, err := CheckServing(ServingEvidence{}); err == nil {
		t.Error("empty evidence: expected error")
	}
	ev := evidence()
	ev.Replicas = nil
	if _, err := CheckServing(ev); err == nil {
		t.Error("no replica snapshots: expected error")
	}
}

// TestServingConformanceLoopback runs the conformance suite against a real
// 2-replica loopback deployment — with tracing sampled at 1/4 on both sides,
// so the serving-trace finding verifies live span trees, not fabricated ones.
// A provisioned fleet must clear every check with zero drops, end to end.
func TestServingConformanceLoopback(t *testing.T) {
	a, err := harness.BuildNative(core.ImageClassificationLight, harness.BuildOptions{
		DatasetSamples: 32, Seed: 7, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	clientTr := trace.New(trace.Config{SampleEvery: 4})
	serverTr := trace.New(trace.Config{SampleEvery: 4})
	dep, err := a.ServeLoopback(harness.ServeOptions{
		Replicas: 2,
		Server:   serve.Config{Workers: 2, BatchWait: time.Millisecond, Tracer: serverTr},
		Client:   backend.RemoteConfig{MaxInFlight: 64, Tracer: clientTr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	settings := loadgen.DefaultSettings(loadgen.Server)
	settings.MinQueryCount = 64
	settings.MinDuration = 100 * time.Millisecond
	settings.ServerTargetQPS = 200
	settings.ServerTargetLatency = 250 * time.Millisecond
	res, err := loadgen.StartTest(dep.Remote, a.QSL, settings)
	if err != nil {
		t.Fatal(err)
	}
	dep.Remote.Wait()
	if errs := dep.Remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}

	traces := append(clientTr.Records(), serverTr.Records()...)
	if len(traces) == 0 {
		t.Error("1/4 sampling over 64+ queries captured no trace records")
	}
	findings, err := CheckServing(ServingEvidence{
		Result:         res,
		Settings:       settings,
		ClientRejected: dep.Remote.Rejected(),
		ClientExpired:  dep.Remote.Expired(),
		Replicas:       dep.ReplicaMetrics(),
		Traces:         traces,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !AllPassed(findings) {
		for _, f := range findings {
			t.Logf("%s", f)
		}
		t.Error("provisioned 2-replica loopback run failed serving conformance")
	}
	findingByName(t, findings, "serving-trace")
}
