package tensor

import (
	"fmt"
	"math"
	"sync"

	"mlperf/internal/parallel"
)

// MatMul computes C = A × B for 2-D tensors A (m×k) and B (k×n) on the
// blocked parallel engine. Results are deterministic across runs; see
// MatMulSerial for the retained reference kernel.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dimensions differ: %d vs %d", k, k2)
	}
	c := MustNew(m, n)
	gemmInto(c.data, a.data, b.data, nil, m, k, n)
	return c, nil
}

// MatMulInto computes C = A × B into the caller-provided dst, which must have
// shape m×n and must not alias a or b. dst is fully overwritten, so it may be
// uninitialized Scratch memory.
func MatMulInto(dst, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 {
		return fmt.Errorf("tensor: MatMulInto requires rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: MatMulInto inner dimensions differ: %d vs %d", k, k2)
	}
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n)
	}
	gemmInto(dst.data, a.data, b.data, nil, m, k, n)
	return nil
}

// MatVec computes y = A × x for a 2-D tensor A (m×k) and 1-D tensor x (k),
// parallelized across output rows.
func MatVec(a, x *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("tensor: MatVec requires rank-2 and rank-1 operands, got %v and %v", a.shape, x.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if k != x.shape[0] {
		return nil, fmt.Errorf("tensor: MatVec dimension mismatch: %d vs %d", k, x.shape[0])
	}
	y := MustNew(m)
	matVecInto(y.data, a.data, x.data, m, k)
	return y, nil
}

// MatVecInto computes y = A × x into the caller-provided dst (length m),
// which must not alias a or x. dst is fully overwritten.
func MatVecInto(dst, a, x *Tensor) error {
	if a.Rank() != 2 || x.Rank() != 1 {
		return fmt.Errorf("tensor: MatVecInto requires rank-2 and rank-1 operands, got %v and %v", a.shape, x.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if k != x.shape[0] {
		return fmt.Errorf("tensor: MatVecInto dimension mismatch: %d vs %d", k, x.shape[0])
	}
	if dst.Rank() != 1 || dst.shape[0] != m {
		return fmt.Errorf("tensor: MatVecInto dst shape %v, want [%d]", dst.shape, m)
	}
	matVecInto(dst.data, a.data, x.data, m, k)
	return nil
}

// Conv2DOptions configures a 2-D convolution over NCHW-free single-image
// tensors in CHW layout.
type Conv2DOptions struct {
	Stride  int
	Padding int
}

// convGeom carries the validated dimensions of a standard convolution.
type convGeom struct {
	cin, h, w    int
	cout, kh, kw int
	hOut, wOut   int
}

// conv2DGeometry validates operands and computes the output geometry.
func conv2DGeometry(input, kernels, bias *Tensor, opts Conv2DOptions) (convGeom, error) {
	var g convGeom
	if input.Rank() != 3 || kernels.Rank() != 4 {
		return g, fmt.Errorf("tensor: Conv2D requires CHW input and OIHW kernels, got %v and %v", input.shape, kernels.shape)
	}
	if opts.Stride <= 0 {
		return g, fmt.Errorf("tensor: Conv2D stride must be positive, got %d", opts.Stride)
	}
	g.cin, g.h, g.w = input.shape[0], input.shape[1], input.shape[2]
	g.cout, g.kh, g.kw = kernels.shape[0], kernels.shape[2], kernels.shape[3]
	if g.cin != kernels.shape[1] {
		return g, fmt.Errorf("tensor: Conv2D channel mismatch: input %d vs kernel %d", g.cin, kernels.shape[1])
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != g.cout) {
		return g, fmt.Errorf("tensor: Conv2D bias shape %v does not match %d output channels", bias.shape, g.cout)
	}
	g.hOut = (g.h+2*opts.Padding-g.kh)/opts.Stride + 1
	g.wOut = (g.w+2*opts.Padding-g.kw)/opts.Stride + 1
	if g.hOut <= 0 || g.wOut <= 0 {
		return g, fmt.Errorf("tensor: Conv2D output would be empty (input %dx%d, kernel %dx%d, stride %d, pad %d)",
			g.h, g.w, g.kh, g.kw, opts.Stride, opts.Padding)
	}
	return g, nil
}

// Conv2D convolves input (C_in × H × W) with kernels (C_out × C_in × KH × KW)
// and returns a (C_out × H_out × W_out) tensor. bias may be nil or a 1-D
// tensor of length C_out.
//
// The implementation lowers the convolution to im2col followed by a blocked
// parallel GEMM — the weight matrix is C_out × (C_in·KH·KW) in exactly the
// OIHW storage order, so no weight reshuffling is needed. Pointwise (1×1,
// stride 1, unpadded) convolutions skip im2col entirely and multiply against
// the input in place. See Conv2DSerial for the reference kernel.
func Conv2D(input, kernels, bias *Tensor, opts Conv2DOptions) (*Tensor, error) {
	g, err := conv2DGeometry(input, kernels, bias, opts)
	if err != nil {
		return nil, err
	}
	out := MustNew(g.cout, g.hOut, g.wOut)
	conv2dCompute(out, input, kernels, bias, opts, g, nil)
	return out, nil
}

// Conv2DInto convolves into the caller-provided dst, which must have the
// output shape and must not alias input. scratch, when non-nil, supplies the
// im2col buffer (otherwise an internal pool is used). dst is fully
// overwritten.
func Conv2DInto(dst, input, kernels, bias *Tensor, opts Conv2DOptions, scratch *Scratch) error {
	g, err := conv2DGeometry(input, kernels, bias, opts)
	if err != nil {
		return err
	}
	if dst.Rank() != 3 || dst.shape[0] != g.cout || dst.shape[1] != g.hOut || dst.shape[2] != g.wOut {
		return fmt.Errorf("tensor: Conv2DInto dst shape %v, want [%d %d %d]", dst.shape, g.cout, g.hOut, g.wOut)
	}
	conv2dCompute(dst, input, kernels, bias, opts, g, scratch)
	return nil
}

// colsPool recycles im2col buffers for the non-Scratch convolution path.
var colsPool = sync.Pool{New: func() any { return new([]float32) }}

// conv2dCompute runs the validated im2col+GEMM pipeline.
func conv2dCompute(out, input, kernels, bias *Tensor, opts Conv2DOptions, g convGeom, scratch *Scratch) {
	var biasData []float32
	if bias != nil {
		biasData = bias.data
	}
	k := g.cin * g.kh * g.kw
	n := g.hOut * g.wOut

	// Pointwise fast path: the input already is the im2col matrix.
	if g.kh == 1 && g.kw == 1 && opts.Stride == 1 && opts.Padding == 0 {
		gemmInto(out.data, kernels.data, input.data, biasData, g.cout, k, n)
		return
	}

	var cols []float32
	var pooled *[]float32
	if scratch != nil {
		cols = scratch.Floats(k * n)
	} else {
		pooled = colsPool.Get().(*[]float32)
		if cap(*pooled) < k*n {
			*pooled = make([]float32, k*n)
		}
		cols = (*pooled)[:k*n]
	}

	im2col(cols, input.data, opts, g)
	gemmInto(out.data, kernels.data, cols, biasData, g.cout, k, n)

	if pooled != nil {
		colsPool.Put(pooled)
	}
}

// im2col expands the input into a (C_in·KH·KW) × (H_out·W_out) matrix whose
// row r = (ic·KH+ky)·KW+kx holds, for every output position, the input value
// that kernel tap (ic, ky, kx) reads there (zero where the tap falls into
// padding). Rows are independent, so the expansion is parallelized across
// them for large outputs. cols is fully overwritten.
func im2col(cols, in []float32, opts Conv2DOptions, g convGeom) {
	rows := g.cin * g.kh * g.kw
	n := g.hOut * g.wOut
	if rows*n < ParallelFlopThreshold() || parallel.Default().Workers() == 1 {
		im2colRows(cols, in, opts, g, 0, rows)
		return
	}
	parallel.For(rows, 0, func(lo, hi int) {
		im2colRows(cols, in, opts, g, lo, hi)
	})
}

// im2colRows fills im2col matrix rows [r0, r1).
func im2colRows(cols, in []float32, opts Conv2DOptions, g convGeom, r0, r1 int) {
	n := g.hOut * g.wOut
	for r := r0; r < r1; r++ {
		ic := r / (g.kh * g.kw)
		ky := r / g.kw % g.kh
		kx := r % g.kw
		im2colSampleRow(cols[r*n:r*n+n], in[ic*g.h*g.w:(ic+1)*g.h*g.w], opts, g, ky, kx)
	}
}

// im2colSampleRow fills one im2col row segment (length hOut·wOut) for one
// sample: the values kernel tap (ky, kx) reads from the channel plane src at
// every output position, zero where the tap falls into padding. It is the
// shared inner loop of the single-sample and batched im2col expansions.
func im2colSampleRow(dst, src []float32, opts Conv2DOptions, g convGeom, ky, kx int) {
	stride, pad := opts.Stride, opts.Padding
	offX := kx - pad
	lo, hi := validRange(offX, stride, g.w, g.wOut)
	for oy := 0; oy < g.hOut; oy++ {
		seg := dst[oy*g.wOut : oy*g.wOut+g.wOut]
		iy := oy*stride + ky - pad
		if iy < 0 || iy >= g.h {
			for i := range seg {
				seg[i] = 0
			}
			continue
		}
		srow := src[iy*g.w : iy*g.w+g.w]
		for i := 0; i < lo; i++ {
			seg[i] = 0
		}
		if stride == 1 {
			copy(seg[lo:hi], srow[lo+offX:hi+offX])
		} else {
			ix := lo*stride + offX
			for ox := lo; ox < hi; ox++ {
				seg[ox] = srow[ix]
				ix += stride
			}
		}
		for i := hi; i < g.wOut; i++ {
			seg[i] = 0
		}
	}
}

// validRange returns the half-open range of output positions ox for which
// ox*stride+off lands inside [0, extent); the result is clipped to
// [0, outExtent).
func validRange(off, stride, extent, outExtent int) (lo, hi int) {
	if off < 0 {
		lo = (-off + stride - 1) / stride
	}
	last := extent - 1 - off
	if last < 0 {
		return 0, 0
	}
	hi = last/stride + 1
	if hi > outExtent {
		hi = outExtent
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// dwGeom carries the validated dimensions of a depthwise convolution.
type dwGeom struct {
	c, h, w    int
	kh, kw     int
	hOut, wOut int
}

// depthwiseGeometry validates operands and computes the output geometry.
func depthwiseGeometry(input, kernels, bias *Tensor, opts Conv2DOptions) (dwGeom, error) {
	var g dwGeom
	if input.Rank() != 3 || kernels.Rank() != 3 {
		return g, fmt.Errorf("tensor: DepthwiseConv2D requires CHW input and CHW kernels, got %v and %v", input.shape, kernels.shape)
	}
	if opts.Stride <= 0 {
		return g, fmt.Errorf("tensor: DepthwiseConv2D stride must be positive, got %d", opts.Stride)
	}
	g.c, g.h, g.w = input.shape[0], input.shape[1], input.shape[2]
	g.kh, g.kw = kernels.shape[1], kernels.shape[2]
	if g.c != kernels.shape[0] {
		return g, fmt.Errorf("tensor: DepthwiseConv2D channel mismatch: %d vs %d", g.c, kernels.shape[0])
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != g.c) {
		return g, fmt.Errorf("tensor: DepthwiseConv2D bias shape %v does not match %d channels", bias.shape, g.c)
	}
	g.hOut = (g.h+2*opts.Padding-g.kh)/opts.Stride + 1
	g.wOut = (g.w+2*opts.Padding-g.kw)/opts.Stride + 1
	if g.hOut <= 0 || g.wOut <= 0 {
		return g, fmt.Errorf("tensor: DepthwiseConv2D output would be empty")
	}
	return g, nil
}

// DepthwiseConv2D convolves each input channel with its own kernel
// (C × KH × KW), as used by the MobileNet family's depthwise-separable
// convolutions. bias may be nil or length C. Channels are independent and
// are distributed over the worker pool; within a channel the kernel
// accumulates whole output rows with the bounds checks hoisted out of the
// inner loop. See DepthwiseConv2DSerial for the reference kernel.
func DepthwiseConv2D(input, kernels, bias *Tensor, opts Conv2DOptions) (*Tensor, error) {
	g, err := depthwiseGeometry(input, kernels, bias, opts)
	if err != nil {
		return nil, err
	}
	out := MustNew(g.c, g.hOut, g.wOut)
	depthwiseCompute(out, input, kernels, bias, opts, g)
	return out, nil
}

// DepthwiseConv2DInto convolves into the caller-provided dst, which must
// have the output shape and must not alias input. dst is fully overwritten.
func DepthwiseConv2DInto(dst, input, kernels, bias *Tensor, opts Conv2DOptions) error {
	g, err := depthwiseGeometry(input, kernels, bias, opts)
	if err != nil {
		return err
	}
	if dst.Rank() != 3 || dst.shape[0] != g.c || dst.shape[1] != g.hOut || dst.shape[2] != g.wOut {
		return fmt.Errorf("tensor: DepthwiseConv2DInto dst shape %v, want [%d %d %d]", dst.shape, g.c, g.hOut, g.wOut)
	}
	depthwiseCompute(dst, input, kernels, bias, opts, g)
	return nil
}

func depthwiseCompute(out, input, kernels, bias *Tensor, opts Conv2DOptions, g dwGeom) {
	var biasData []float32
	if bias != nil {
		biasData = bias.data
	}
	if g.c*g.hOut*g.wOut*g.kh*g.kw < ParallelFlopThreshold() || parallel.Default().Workers() == 1 {
		depthwiseChannels(out.data, input.data, kernels.data, biasData, opts, g, 0, g.c)
		return
	}
	parallel.For(g.c, 0, func(lo, hi int) {
		depthwiseChannels(out.data, input.data, kernels.data, biasData, opts, g, lo, hi)
	})
}

// depthwiseChannels computes output channels [c0, c1).
func depthwiseChannels(out, in, kernels, bias []float32, opts Conv2DOptions, g dwGeom, c0, c1 int) {
	for ch := c0; ch < c1; ch++ {
		var bv float32
		if bias != nil {
			bv = bias[ch]
		}
		depthwisePlane(
			out[ch*g.hOut*g.wOut:(ch+1)*g.hOut*g.wOut],
			in[ch*g.h*g.w:(ch+1)*g.h*g.w],
			kernels[ch*g.kh*g.kw:(ch+1)*g.kh*g.kw],
			bv, opts, g)
	}
}

// depthwisePlane convolves one spatial plane with one kernel. Each output row
// is initialized to the bias and accumulated tap by tap over the valid range
// of output positions, so the inner loops carry no bounds tests; accumulation
// order per element matches the serial reference (ky then kx ascending). It
// is the shared inner kernel of the single-sample and batched depthwise
// convolutions.
func depthwisePlane(dst, src, ker []float32, bv float32, opts Conv2DOptions, g dwGeom) {
	stride, pad := opts.Stride, opts.Padding
	for oy := 0; oy < g.hOut; oy++ {
		row := dst[oy*g.wOut : oy*g.wOut+g.wOut]
		for i := range row {
			row[i] = bv
		}
		for ky := 0; ky < g.kh; ky++ {
			iy := oy*stride + ky - pad
			if iy < 0 || iy >= g.h {
				continue
			}
			srow := src[iy*g.w : iy*g.w+g.w]
			krow := ker[ky*g.kw : ky*g.kw+g.kw]
			for kx, wv := range krow {
				off := kx - pad
				lo, hi := validRange(off, stride, g.w, g.wOut)
				if stride == 1 {
					for ox := lo; ox < hi; ox++ {
						row[ox] += wv * srow[ox+off]
					}
				} else {
					ix := lo*stride + off
					for ox := lo; ox < hi; ox++ {
						row[ox] += wv * srow[ix]
						ix += stride
					}
				}
			}
		}
	}
}

// MaxPool2D applies max pooling with the given window and stride to a CHW
// tensor; channels are distributed over the worker pool.
func MaxPool2D(input *Tensor, window, stride int) (*Tensor, error) {
	c, hOut, wOut, err := maxPoolGeometry(input, window, stride)
	if err != nil {
		return nil, err
	}
	out := MustNew(c, hOut, wOut)
	maxPoolCompute(out, input, window, stride, hOut, wOut)
	return out, nil
}

// MaxPool2DInto pools into the caller-provided dst, which must have the
// output shape and must not alias input. dst is fully overwritten.
func MaxPool2DInto(dst, input *Tensor, window, stride int) error {
	c, hOut, wOut, err := maxPoolGeometry(input, window, stride)
	if err != nil {
		return err
	}
	if dst.Rank() != 3 || dst.shape[0] != c || dst.shape[1] != hOut || dst.shape[2] != wOut {
		return fmt.Errorf("tensor: MaxPool2DInto dst shape %v, want [%d %d %d]", dst.shape, c, hOut, wOut)
	}
	maxPoolCompute(dst, input, window, stride, hOut, wOut)
	return nil
}

func maxPoolGeometry(input *Tensor, window, stride int) (c, hOut, wOut int, err error) {
	if input.Rank() != 3 {
		return 0, 0, 0, fmt.Errorf("tensor: MaxPool2D requires CHW input, got %v", input.shape)
	}
	if window <= 0 || stride <= 0 {
		return 0, 0, 0, fmt.Errorf("tensor: MaxPool2D window and stride must be positive")
	}
	c = input.shape[0]
	hOut = (input.shape[1]-window)/stride + 1
	wOut = (input.shape[2]-window)/stride + 1
	if hOut <= 0 || wOut <= 0 {
		return 0, 0, 0, fmt.Errorf("tensor: MaxPool2D output would be empty")
	}
	return c, hOut, wOut, nil
}

func maxPoolCompute(out, input *Tensor, window, stride, hOut, wOut int) {
	c := input.shape[0]
	if c*hOut*wOut*window*window < ParallelFlopThreshold() || parallel.Default().Workers() == 1 {
		maxPoolChannels(out, input, window, stride, hOut, wOut, 0, c)
		return
	}
	parallel.For(c, 0, func(c0, c1 int) {
		maxPoolChannels(out, input, window, stride, hOut, wOut, c0, c1)
	})
}

func maxPoolChannels(out, input *Tensor, window, stride, hOut, wOut, c0, c1 int) {
	h, w := input.shape[1], input.shape[2]
	for ch := c0; ch < c1; ch++ {
		maxPoolPlane(out.data[ch*hOut*wOut:(ch+1)*hOut*wOut], input.data[ch*h*w:(ch+1)*h*w],
			window, stride, w, hOut, wOut)
	}
}

// maxPoolPlane pools one spatial plane; shared by the single-sample and
// batched pooling paths.
func maxPoolPlane(dst, src []float32, window, stride, w, hOut, wOut int) {
	for oy := 0; oy < hOut; oy++ {
		for ox := 0; ox < wOut; ox++ {
			best := float32(math.Inf(-1))
			for ky := 0; ky < window; ky++ {
				srow := src[(oy*stride+ky)*w+ox*stride:]
				for kx := 0; kx < window; kx++ {
					if v := srow[kx]; v > best {
						best = v
					}
				}
			}
			dst[oy*wOut+ox] = best
		}
	}
}

// GlobalAvgPool2D reduces a CHW tensor to a length-C vector by averaging each
// channel.
func GlobalAvgPool2D(input *Tensor) (*Tensor, error) {
	if input.Rank() != 3 {
		return nil, fmt.Errorf("tensor: GlobalAvgPool2D requires CHW input, got %v", input.shape)
	}
	out := MustNew(input.shape[0])
	globalAvgPoolCompute(out, input)
	return out, nil
}

// GlobalAvgPool2DInto reduces into the caller-provided dst (length C). dst is
// fully overwritten.
func GlobalAvgPool2DInto(dst, input *Tensor) error {
	if input.Rank() != 3 {
		return fmt.Errorf("tensor: GlobalAvgPool2DInto requires CHW input, got %v", input.shape)
	}
	if dst.Rank() != 1 || dst.shape[0] != input.shape[0] {
		return fmt.Errorf("tensor: GlobalAvgPool2DInto dst shape %v, want [%d]", dst.shape, input.shape[0])
	}
	globalAvgPoolCompute(dst, input)
	return nil
}

func globalAvgPoolCompute(out, input *Tensor) {
	c, h, w := input.shape[0], input.shape[1], input.shape[2]
	if c*h*w < ParallelFlopThreshold() || parallel.Default().Workers() == 1 {
		globalAvgPoolChannels(out, input, 0, c)
		return
	}
	parallel.For(c, 0, func(c0, c1 int) {
		globalAvgPoolChannels(out, input, c0, c1)
	})
}

func globalAvgPoolChannels(out, input *Tensor, c0, c1 int) {
	h, w := input.shape[1], input.shape[2]
	for ch := c0; ch < c1; ch++ {
		out.data[ch] = avgPlane(input.data[ch*h*w:(ch+1)*h*w], float32(h*w))
	}
}

// avgPlane averages one spatial plane; shared by the single-sample and
// batched global pooling paths (sum ascending, then one divide).
func avgPlane(src []float32, area float32) float32 {
	var sum float32
	for _, v := range src {
		sum += v
	}
	return sum / area
}

// ReLU applies max(0, x) in place and returns the tensor for chaining.
func ReLU(t *Tensor) *Tensor {
	for i, v := range t.data {
		if v < 0 {
			t.data[i] = 0
		}
	}
	return t
}

// ReLU6 applies min(max(0, x), 6) in place (MobileNet's activation).
func ReLU6(t *Tensor) *Tensor {
	for i, v := range t.data {
		switch {
		case v < 0:
			t.data[i] = 0
		case v > 6:
			t.data[i] = 6
		}
	}
	return t
}

// Sigmoid applies the logistic function in place.
func Sigmoid(t *Tensor) *Tensor {
	for i, v := range t.data {
		t.data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return t
}

// Tanh applies the hyperbolic tangent in place.
func Tanh(t *Tensor) *Tensor {
	for i, v := range t.data {
		t.data[i] = float32(math.Tanh(float64(v)))
	}
	return t
}

// Softmax returns the softmax of a 1-D tensor as a new tensor.
func Softmax(t *Tensor) (*Tensor, error) {
	if t.Rank() != 1 {
		return nil, fmt.Errorf("tensor: Softmax requires a rank-1 tensor, got %v", t.shape)
	}
	out := MustNew(t.shape[0])
	if err := SoftmaxInto(out, t); err != nil {
		return nil, err
	}
	return out, nil
}

// SoftmaxInto computes the softmax of a 1-D tensor into the caller-provided
// dst (same length). dst is fully overwritten; it may equal t for an
// in-place softmax.
func SoftmaxInto(dst, t *Tensor) error {
	if t.Rank() != 1 {
		return fmt.Errorf("tensor: Softmax requires a rank-1 tensor, got %v", t.shape)
	}
	if dst.Rank() != 1 || dst.shape[0] != t.shape[0] {
		return fmt.Errorf("tensor: SoftmaxInto dst shape %v, want %v", dst.shape, t.shape)
	}
	maxV := float64(math.Inf(-1))
	for _, v := range t.data {
		if float64(v) > maxV {
			maxV = float64(v)
		}
	}
	var sum float64
	for i, v := range t.data {
		e := math.Exp(float64(v) - maxV)
		dst.data[i] = float32(e)
		sum += e
	}
	if sum == 0 {
		return fmt.Errorf("tensor: Softmax underflow")
	}
	for i := range dst.data {
		dst.data[i] = float32(float64(dst.data[i]) / sum)
	}
	return nil
}

// ScaleShift applies y = x*scale[c] + shift[c] per channel of a CHW tensor in
// place; it is the inference-time (folded) form of batch normalization.
func ScaleShift(t *Tensor, scale, shift *Tensor) error {
	if t.Rank() != 3 || scale.Rank() != 1 || shift.Rank() != 1 {
		return fmt.Errorf("tensor: ScaleShift requires CHW input and 1-D scale/shift")
	}
	c, h, w := t.shape[0], t.shape[1], t.shape[2]
	if scale.shape[0] != c || shift.shape[0] != c {
		return fmt.Errorf("tensor: ScaleShift channel mismatch: input %d, scale %d, shift %d", c, scale.shape[0], shift.shape[0])
	}
	for ch := 0; ch < c; ch++ {
		s, b := scale.data[ch], shift.data[ch]
		base := ch * h * w
		for i := 0; i < h*w; i++ {
			t.data[base+i] = t.data[base+i]*s + b
		}
	}
	return nil
}

// Concat concatenates 1-D tensors into a single 1-D tensor.
func Concat(tensors ...*Tensor) (*Tensor, error) {
	total := 0
	for _, t := range tensors {
		if t.Rank() != 1 {
			return nil, fmt.Errorf("tensor: Concat requires rank-1 tensors, got %v", t.shape)
		}
		total += t.shape[0]
	}
	if total == 0 {
		return nil, fmt.Errorf("tensor: Concat of zero elements")
	}
	out := MustNew(total)
	off := 0
	for _, t := range tensors {
		copy(out.data[off:], t.data)
		off += t.shape[0]
	}
	return out, nil
}
