package tensor

import (
	"fmt"
	"math"
)

// MatMul computes C = A × B for 2-D tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dimensions differ: %d vs %d", k, k2)
	}
	c := MustNew(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := c.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c, nil
}

// MatVec computes y = A × x for a 2-D tensor A (m×k) and 1-D tensor x (k).
func MatVec(a, x *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("tensor: MatVec requires rank-2 and rank-1 operands, got %v and %v", a.shape, x.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if k != x.shape[0] {
		return nil, fmt.Errorf("tensor: MatVec dimension mismatch: %d vs %d", k, x.shape[0])
	}
	y := MustNew(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		var sum float32
		for p := 0; p < k; p++ {
			sum += row[p] * x.data[p]
		}
		y.data[i] = sum
	}
	return y, nil
}

// Conv2DOptions configures a 2-D convolution over NCHW-free single-image
// tensors in CHW layout.
type Conv2DOptions struct {
	Stride  int
	Padding int
}

// Conv2D convolves input (C_in × H × W) with kernels (C_out × C_in × KH × KW)
// and returns a (C_out × H_out × W_out) tensor. bias may be nil or a 1-D
// tensor of length C_out.
func Conv2D(input, kernels, bias *Tensor, opts Conv2DOptions) (*Tensor, error) {
	if input.Rank() != 3 || kernels.Rank() != 4 {
		return nil, fmt.Errorf("tensor: Conv2D requires CHW input and OIHW kernels, got %v and %v", input.shape, kernels.shape)
	}
	if opts.Stride <= 0 {
		return nil, fmt.Errorf("tensor: Conv2D stride must be positive, got %d", opts.Stride)
	}
	cin, h, w := input.shape[0], input.shape[1], input.shape[2]
	cout, kcin, kh, kw := kernels.shape[0], kernels.shape[1], kernels.shape[2], kernels.shape[3]
	if cin != kcin {
		return nil, fmt.Errorf("tensor: Conv2D channel mismatch: input %d vs kernel %d", cin, kcin)
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != cout) {
		return nil, fmt.Errorf("tensor: Conv2D bias shape %v does not match %d output channels", bias.shape, cout)
	}
	hOut := (h+2*opts.Padding-kh)/opts.Stride + 1
	wOut := (w+2*opts.Padding-kw)/opts.Stride + 1
	if hOut <= 0 || wOut <= 0 {
		return nil, fmt.Errorf("tensor: Conv2D output would be empty (input %dx%d, kernel %dx%d, stride %d, pad %d)", h, w, kh, kw, opts.Stride, opts.Padding)
	}
	out := MustNew(cout, hOut, wOut)
	for oc := 0; oc < cout; oc++ {
		var b float32
		if bias != nil {
			b = bias.data[oc]
		}
		for oy := 0; oy < hOut; oy++ {
			for ox := 0; ox < wOut; ox++ {
				sum := b
				for ic := 0; ic < cin; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*opts.Stride + ky - opts.Padding
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*opts.Stride + kx - opts.Padding
							if ix < 0 || ix >= w {
								continue
							}
							sum += input.data[(ic*h+iy)*w+ix] * kernels.data[((oc*cin+ic)*kh+ky)*kw+kx]
						}
					}
				}
				out.data[(oc*hOut+oy)*wOut+ox] = sum
			}
		}
	}
	return out, nil
}

// DepthwiseConv2D convolves each input channel with its own kernel
// (C × KH × KW), as used by the MobileNet family's depthwise-separable
// convolutions. bias may be nil or length C.
func DepthwiseConv2D(input, kernels, bias *Tensor, opts Conv2DOptions) (*Tensor, error) {
	if input.Rank() != 3 || kernels.Rank() != 3 {
		return nil, fmt.Errorf("tensor: DepthwiseConv2D requires CHW input and CHW kernels, got %v and %v", input.shape, kernels.shape)
	}
	if opts.Stride <= 0 {
		return nil, fmt.Errorf("tensor: DepthwiseConv2D stride must be positive, got %d", opts.Stride)
	}
	c, h, w := input.shape[0], input.shape[1], input.shape[2]
	kc, kh, kw := kernels.shape[0], kernels.shape[1], kernels.shape[2]
	if c != kc {
		return nil, fmt.Errorf("tensor: DepthwiseConv2D channel mismatch: %d vs %d", c, kc)
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != c) {
		return nil, fmt.Errorf("tensor: DepthwiseConv2D bias shape %v does not match %d channels", bias.shape, c)
	}
	hOut := (h+2*opts.Padding-kh)/opts.Stride + 1
	wOut := (w+2*opts.Padding-kw)/opts.Stride + 1
	if hOut <= 0 || wOut <= 0 {
		return nil, fmt.Errorf("tensor: DepthwiseConv2D output would be empty")
	}
	out := MustNew(c, hOut, wOut)
	for ch := 0; ch < c; ch++ {
		var b float32
		if bias != nil {
			b = bias.data[ch]
		}
		for oy := 0; oy < hOut; oy++ {
			for ox := 0; ox < wOut; ox++ {
				sum := b
				for ky := 0; ky < kh; ky++ {
					iy := oy*opts.Stride + ky - opts.Padding
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*opts.Stride + kx - opts.Padding
						if ix < 0 || ix >= w {
							continue
						}
						sum += input.data[(ch*h+iy)*w+ix] * kernels.data[(ch*kh+ky)*kw+kx]
					}
				}
				out.data[(ch*hOut+oy)*wOut+ox] = sum
			}
		}
	}
	return out, nil
}

// MaxPool2D applies max pooling with the given window and stride to a CHW
// tensor.
func MaxPool2D(input *Tensor, window, stride int) (*Tensor, error) {
	if input.Rank() != 3 {
		return nil, fmt.Errorf("tensor: MaxPool2D requires CHW input, got %v", input.shape)
	}
	if window <= 0 || stride <= 0 {
		return nil, fmt.Errorf("tensor: MaxPool2D window and stride must be positive")
	}
	c, h, w := input.shape[0], input.shape[1], input.shape[2]
	hOut := (h-window)/stride + 1
	wOut := (w-window)/stride + 1
	if hOut <= 0 || wOut <= 0 {
		return nil, fmt.Errorf("tensor: MaxPool2D output would be empty")
	}
	out := MustNew(c, hOut, wOut)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < hOut; oy++ {
			for ox := 0; ox < wOut; ox++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < window; ky++ {
					for kx := 0; kx < window; kx++ {
						v := input.data[(ch*h+oy*stride+ky)*w+ox*stride+kx]
						if v > best {
							best = v
						}
					}
				}
				out.data[(ch*hOut+oy)*wOut+ox] = best
			}
		}
	}
	return out, nil
}

// GlobalAvgPool2D reduces a CHW tensor to a length-C vector by averaging each
// channel.
func GlobalAvgPool2D(input *Tensor) (*Tensor, error) {
	if input.Rank() != 3 {
		return nil, fmt.Errorf("tensor: GlobalAvgPool2D requires CHW input, got %v", input.shape)
	}
	c, h, w := input.shape[0], input.shape[1], input.shape[2]
	out := MustNew(c)
	area := float32(h * w)
	for ch := 0; ch < c; ch++ {
		var sum float32
		base := ch * h * w
		for i := 0; i < h*w; i++ {
			sum += input.data[base+i]
		}
		out.data[ch] = sum / area
	}
	return out, nil
}

// ReLU applies max(0, x) in place and returns the tensor for chaining.
func ReLU(t *Tensor) *Tensor {
	for i, v := range t.data {
		if v < 0 {
			t.data[i] = 0
		}
	}
	return t
}

// ReLU6 applies min(max(0, x), 6) in place (MobileNet's activation).
func ReLU6(t *Tensor) *Tensor {
	for i, v := range t.data {
		switch {
		case v < 0:
			t.data[i] = 0
		case v > 6:
			t.data[i] = 6
		}
	}
	return t
}

// Sigmoid applies the logistic function in place.
func Sigmoid(t *Tensor) *Tensor {
	for i, v := range t.data {
		t.data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return t
}

// Tanh applies the hyperbolic tangent in place.
func Tanh(t *Tensor) *Tensor {
	for i, v := range t.data {
		t.data[i] = float32(math.Tanh(float64(v)))
	}
	return t
}

// Softmax returns the softmax of a 1-D tensor as a new tensor.
func Softmax(t *Tensor) (*Tensor, error) {
	if t.Rank() != 1 {
		return nil, fmt.Errorf("tensor: Softmax requires a rank-1 tensor, got %v", t.shape)
	}
	out := MustNew(t.shape[0])
	maxV := float64(math.Inf(-1))
	for _, v := range t.data {
		if float64(v) > maxV {
			maxV = float64(v)
		}
	}
	var sum float64
	for i, v := range t.data {
		e := math.Exp(float64(v) - maxV)
		out.data[i] = float32(e)
		sum += e
	}
	if sum == 0 {
		return nil, fmt.Errorf("tensor: Softmax underflow")
	}
	for i := range out.data {
		out.data[i] = float32(float64(out.data[i]) / sum)
	}
	return out, nil
}

// ScaleShift applies y = x*scale[c] + shift[c] per channel of a CHW tensor in
// place; it is the inference-time (folded) form of batch normalization.
func ScaleShift(t *Tensor, scale, shift *Tensor) error {
	if t.Rank() != 3 || scale.Rank() != 1 || shift.Rank() != 1 {
		return fmt.Errorf("tensor: ScaleShift requires CHW input and 1-D scale/shift")
	}
	c, h, w := t.shape[0], t.shape[1], t.shape[2]
	if scale.shape[0] != c || shift.shape[0] != c {
		return fmt.Errorf("tensor: ScaleShift channel mismatch: input %d, scale %d, shift %d", c, scale.shape[0], shift.shape[0])
	}
	for ch := 0; ch < c; ch++ {
		s, b := scale.data[ch], shift.data[ch]
		base := ch * h * w
		for i := 0; i < h*w; i++ {
			t.data[base+i] = t.data[base+i]*s + b
		}
	}
	return nil
}

// Concat concatenates 1-D tensors into a single 1-D tensor.
func Concat(tensors ...*Tensor) (*Tensor, error) {
	total := 0
	for _, t := range tensors {
		if t.Rank() != 1 {
			return nil, fmt.Errorf("tensor: Concat requires rank-1 tensors, got %v", t.shape)
		}
		total += t.shape[0]
	}
	if total == 0 {
		return nil, fmt.Errorf("tensor: Concat of zero elements")
	}
	out := MustNew(total)
	off := 0
	for _, t := range tensors {
		copy(out.data[off:], t.data)
		off += t.shape[0]
	}
	return out, nil
}
