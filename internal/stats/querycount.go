package stats

import (
	"fmt"
	"math"
)

// QueryBlock is the rounding granularity for query requirements: the paper
// rounds the statistically required query count up to the nearest multiple of
// 2^13 = 8192 (Section III-D).
const QueryBlock = 1 << 13

// QueryRequirement captures one row of Table IV: the number of queries needed
// so that, with the stated confidence, the measured tail-latency percentile is
// within the stated margin of the reported result.
type QueryRequirement struct {
	TailPercentile float64 // e.g. 0.90, 0.95, 0.99
	Confidence     float64 // e.g. 0.99
	Margin         float64 // e.g. 0.005
	Inferences     int     // exact requirement from Equation 2 (rounded up)
	Rounded        int     // Inferences rounded up to a multiple of QueryBlock
}

// Margin implements Equation 1 of the paper: the error margin is one
// twentieth of the distance between the tail-latency percentile and 100%.
func Margin(tailPercentile float64) (float64, error) {
	if !(tailPercentile > 0 && tailPercentile < 1) {
		return 0, fmt.Errorf("stats: tail percentile %v outside (0,1): %w", tailPercentile, ErrInvalidProbability)
	}
	return (1 - tailPercentile) / 20, nil
}

// MinQueries implements Equation 2 of the paper: the minimum number of
// queries required for the tail-latency bound to hold with the given
// confidence and margin. The result is rounded up to the next integer.
func MinQueries(tailPercentile, confidence, margin float64) (int, error) {
	if !(tailPercentile > 0 && tailPercentile < 1) {
		return 0, fmt.Errorf("stats: tail percentile %v outside (0,1): %w", tailPercentile, ErrInvalidProbability)
	}
	if !(confidence > 0 && confidence < 1) {
		return 0, fmt.Errorf("stats: confidence %v outside (0,1): %w", confidence, ErrInvalidProbability)
	}
	if margin <= 0 {
		return 0, fmt.Errorf("stats: margin %v must be positive", margin)
	}
	z, err := NormSInv((1 - confidence) / 2)
	if err != nil {
		return 0, err
	}
	n := z * z * tailPercentile * (1 - tailPercentile) / (margin * margin)
	return int(math.Ceil(n)), nil
}

// RoundToBlock rounds n up to the nearest positive multiple of QueryBlock.
func RoundToBlock(n int) int {
	if n <= 0 {
		return QueryBlock
	}
	blocks := (n + QueryBlock - 1) / QueryBlock
	return blocks * QueryBlock
}

// Requirement computes a full Table IV row for the given tail percentile and
// confidence, deriving the margin from Equation 1.
func Requirement(tailPercentile, confidence float64) (QueryRequirement, error) {
	margin, err := Margin(tailPercentile)
	if err != nil {
		return QueryRequirement{}, err
	}
	n, err := MinQueries(tailPercentile, confidence, margin)
	if err != nil {
		return QueryRequirement{}, err
	}
	return QueryRequirement{
		TailPercentile: tailPercentile,
		Confidence:     confidence,
		Margin:         margin,
		Inferences:     n,
		Rounded:        RoundToBlock(n),
	}, nil
}

// TableIV returns the three rows of Table IV of the paper (90th, 95th and
// 99th percentile guarantees at 99% confidence).
func TableIV() ([]QueryRequirement, error) {
	rows := make([]QueryRequirement, 0, 3)
	for _, p := range []float64{0.90, 0.95, 0.99} {
		r, err := Requirement(p, 0.99)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}
