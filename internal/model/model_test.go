package model

import (
	"testing"

	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

func TestDescribeAllModels(t *testing.T) {
	for _, n := range AllNames() {
		info, err := Describe(n)
		if err != nil {
			t.Fatalf("Describe(%s): %v", n, err)
		}
		if info.PaperName == "" || info.QualityMetric == "" {
			t.Errorf("%s: incomplete metadata %+v", n, info)
		}
		if info.TargetRatio <= 0 || info.TargetRatio > 1 {
			t.Errorf("%s: target ratio %v", n, info.TargetRatio)
		}
	}
	if _, err := Describe("bert"); err == nil {
		t.Error("unknown model: expected error")
	}
}

func TestDescribeTableIQualityTargets(t *testing.T) {
	// Table I: ResNet-50 must reach 99% of 76.456%, MobileNet 98% of 71.676%.
	resnet, _ := Describe(ResNet50)
	if got := resnet.QualityTarget(resnet.PaperReferenceQuality); got < 0.756 || got > 0.758 {
		t.Errorf("ResNet-50 quality target = %v, want ~0.757", got)
	}
	mobilenet, _ := Describe(MobileNetV1)
	if mobilenet.TargetRatio != 0.98 {
		t.Errorf("MobileNet target ratio = %v, want 0.98 (Section III-B)", mobilenet.TargetRatio)
	}
	gnmt, _ := Describe(GNMT)
	if gnmt.PaperReferenceQuality != 23.9 {
		t.Errorf("GNMT reference BLEU = %v", gnmt.PaperReferenceQuality)
	}
}

func classifierCfg() ClassifierConfig {
	return ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 7}
}

func TestResNet50Mini(t *testing.T) {
	m, err := NewResNet50Mini(classifierCfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.Info().Params <= 0 || m.Info().OpsPerInput <= 0 {
		t.Error("missing computed metadata")
	}
	img := tensor.MustNew(3, 16, 16)
	img.Fill(0.1)
	cls, err := m.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if cls < 0 || cls >= 10 {
		t.Errorf("class %d out of range", cls)
	}
	logits, err := m.Logits(img)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Len() != 10 {
		t.Errorf("logit count = %d", logits.Len())
	}
	if len(m.Weights()) == 0 {
		t.Error("no weights exposed")
	}
	if _, err := m.Classify(tensor.MustNew(3, 16)); err == nil {
		t.Error("bad input rank: expected error")
	}
}

func TestMobileNetV1Mini(t *testing.T) {
	m, err := NewMobileNetV1Mini(classifierCfg())
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.MustNew(3, 16, 16)
	img.Fill(-0.2)
	if _, err := m.Classify(img); err != nil {
		t.Fatal(err)
	}
	shape := m.InputShape()
	if shape[0] != 3 || shape[1] != 16 {
		t.Errorf("input shape = %v", shape)
	}
}

func TestHeavyVsLightComputeOrdering(t *testing.T) {
	// The paper's heavy/light pairing must hold for the miniatures too:
	// ResNet-50 mini must cost several times more ops and params than
	// MobileNet mini, and SSD-ResNet more than SSD-MobileNet.
	resnet, err := NewResNet50Mini(classifierCfg())
	if err != nil {
		t.Fatal(err)
	}
	mobilenet, err := NewMobileNetV1Mini(classifierCfg())
	if err != nil {
		t.Fatal(err)
	}
	if resnet.Info().OpsPerInput < 3*mobilenet.Info().OpsPerInput {
		t.Errorf("ResNet ops %d not sufficiently heavier than MobileNet ops %d",
			resnet.Info().OpsPerInput, mobilenet.Info().OpsPerInput)
	}
	if resnet.Info().Params < 2*mobilenet.Info().Params {
		t.Errorf("ResNet params %d not sufficiently heavier than MobileNet params %d",
			resnet.Info().Params, mobilenet.Info().Params)
	}

	ssdRes, err := NewSSDResNet34Mini(DetectorConfig{Classes: 5, ImageSize: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ssdMob, err := NewSSDMobileNetMini(DetectorConfig{Classes: 5, ImageSize: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ssdRes.Info().OpsPerInput <= ssdMob.Info().OpsPerInput {
		t.Errorf("SSD-ResNet ops %d not heavier than SSD-MobileNet ops %d",
			ssdRes.Info().OpsPerInput, ssdMob.Info().OpsPerInput)
	}
}

func TestClassifierConfigErrors(t *testing.T) {
	if _, err := NewResNet50Mini(ClassifierConfig{Classes: 1}); err == nil {
		t.Error("1 class: expected error")
	}
	if _, err := NewMobileNetV1Mini(ClassifierConfig{Classes: 10, ImageSize: 4}); err == nil {
		t.Error("tiny image: expected error")
	}
}

func TestClassifierDeterminism(t *testing.T) {
	a, _ := NewResNet50Mini(classifierCfg())
	b, _ := NewResNet50Mini(classifierCfg())
	img := tensor.MustNew(3, 16, 16)
	rng := stats.NewRNG(5)
	for i := range img.Data() {
		img.Data()[i] = float32(rng.NormFloat64())
	}
	ca, _ := a.Classify(img)
	cb, _ := b.Classify(img)
	if ca != cb {
		t.Error("same-seed models disagree")
	}
}

func TestSSDDetectors(t *testing.T) {
	for _, build := range []func(DetectorConfig) (*SSDDetector, error){NewSSDResNet34Mini, NewSSDMobileNetMini} {
		d, err := build(DetectorConfig{Classes: 5, ImageSize: 16, Seed: 3, ScoreThreshold: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if d.Info().Params <= 0 {
			t.Error("missing params")
		}
		img := tensor.MustNew(3, 16, 16)
		rng := stats.NewRNG(11)
		for i := range img.Data() {
			img.Data()[i] = float32(rng.NormFloat64())
		}
		boxes, err := d.Detect(img)
		if err != nil {
			t.Fatal(err)
		}
		if len(boxes) > 10 {
			t.Errorf("NMS kept %d boxes, cap is 10", len(boxes))
		}
		for _, b := range boxes {
			if b.X1 < 0 || b.Y1 < 0 || b.X2 > 1 || b.Y2 > 1 {
				t.Errorf("box out of bounds: %+v", b)
			}
			if b.Class < 0 || b.Class >= 5 {
				t.Errorf("box class out of range: %+v", b)
			}
			if b.Score < 0.1 {
				t.Errorf("box below score threshold: %+v", b)
			}
		}
		if len(d.Weights()) == 0 {
			t.Error("no weights exposed")
		}
		if _, err := d.Detect(tensor.MustNew(4)); err == nil {
			t.Error("bad input rank: expected error")
		}
	}
}

func TestDetectorConfigErrors(t *testing.T) {
	if _, err := NewSSDResNet34Mini(DetectorConfig{Classes: 0}); err == nil {
		t.Error("0 classes: expected error")
	}
	if _, err := NewSSDMobileNetMini(DetectorConfig{Classes: 5, ImageSize: 4}); err == nil {
		t.Error("tiny image: expected error")
	}
}

func TestGNMTMini(t *testing.T) {
	g, err := NewGNMTMini(TranslatorConfig{Vocab: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if g.Info().Params <= 0 || g.Info().OpsPerInput <= 0 {
		t.Error("missing computed metadata")
	}
	out, err := g.Translate([]int{5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range out {
		if tok < 0 || tok >= 64 {
			t.Errorf("token %d out of range", tok)
		}
	}
	if len(g.Weights()) == 0 {
		t.Error("no weights exposed")
	}
	if _, err := NewGNMTMini(TranslatorConfig{Vocab: 2}); err == nil {
		t.Error("tiny vocab: expected error")
	}
}

func TestZoo(t *testing.T) {
	zoo, err := NewZoo(ZooConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	infos := zoo.Infos()
	if len(infos) != 6 { // the five suite models plus the weight-streaming wide classifier
		t.Fatalf("zoo has %d models", len(infos))
	}
	if _, err := zoo.Weighted(ResNet50Wide); err != nil {
		t.Errorf("Weighted(%s): %v", ResNet50Wide, err)
	}
	for _, n := range AllNames() {
		info, ok := infos[n]
		if !ok {
			t.Errorf("zoo missing %s", n)
			continue
		}
		if info.Params <= 0 {
			t.Errorf("%s: params not computed", n)
		}
		if _, err := zoo.Weighted(n); err != nil {
			t.Errorf("Weighted(%s): %v", n, err)
		}
	}
	if _, err := zoo.Weighted("bert"); err == nil {
		t.Error("unknown model: expected error")
	}
	// GNMT is by far the largest parameter count in Table I; the miniature
	// should preserve that ordering against the vision models.
	if infos[GNMT].Params <= infos[MobileNetV1].Params {
		t.Error("GNMT mini should have more parameters than MobileNet mini")
	}
}
