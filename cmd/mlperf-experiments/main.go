// Command mlperf-experiments regenerates the tables and figures of the
// paper's evaluation section from the in-repo reproduction.
//
// Usage:
//
//	mlperf-experiments                 # run every experiment
//	mlperf-experiments -exp table4     # run a single experiment
//	mlperf-experiments -list           # list available experiments
//	mlperf-experiments -queries 4096   # use a larger simulation trial size
package main

import (
	"flag"
	"fmt"
	"os"

	"mlperf/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (default: all)")
		list    = flag.Bool("list", false, "list available experiments and exit")
		seed    = flag.Uint64("seed", 2020, "simulation seed")
		queries = flag.Int("queries", 1024, "virtual-time trial size for metric searches")
		systems = flag.Int("fig6-systems", 11, "number of systems in the Figure 6 sweep")
		samples = flag.Int("dataset-samples", 64, "synthetic data-set size for the audit experiment")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := experiments.Options{
		Seed:           *seed,
		SearchQueries:  *queries,
		Figure6Systems: *systems,
		DatasetSamples: *samples,
	}

	run := func(e experiments.Experiment) error {
		out, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("==== %s — %s ====\n%s\n", e.ID, e.Description, out)
		return nil
	}

	if *exp != "" {
		e, err := experiments.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := run(e); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, e := range experiments.All() {
		if err := run(e); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
