// Package accuracy implements the benchmark's accuracy script (Figure 3,
// step 7): it decodes the responses the LoadGen logged during an
// accuracy-mode run, scores them against the data set's ground truth with the
// task's quality metric, and decides whether the model meets its quality
// target. It also provides the log-consistency check used by the
// accuracy-verification audit (Section V-B).
package accuracy

import (
	"bytes"
	"fmt"
	"sync"

	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/metrics"
	"mlperf/internal/payload"
)

// Report is the outcome of scoring one accuracy-mode run.
type Report struct {
	Metric    string  // "top1", "mAP" or "BLEU"
	Value     float64 // measured quality
	Reference float64 // FP32 reference quality the target derives from
	Target    float64 // minimum acceptable quality
	Samples   int     // scored samples
	Pass      bool
}

// String formats the report the way result summaries print it.
func (r Report) String() string {
	status := "FAILED"
	if r.Pass {
		status = "PASSED"
	}
	return fmt.Sprintf("%s=%.4f (target %.4f, reference %.4f, %d samples): %s",
		r.Metric, r.Value, r.Target, r.Reference, r.Samples, status)
}

// CheckClassification scores an image-classification accuracy log.
func CheckClassification(log []loadgen.AccuracyEntry, ds *dataset.SyntheticImages) (float64, error) {
	if len(log) == 0 {
		return 0, fmt.Errorf("accuracy: empty accuracy log")
	}
	var preds, labels []int
	for _, entry := range log {
		sample, err := ds.Sample(entry.SampleIndex)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		class, err := payload.DecodeClass(entry.Data)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		preds = append(preds, class)
		labels = append(labels, sample.Label)
	}
	return metrics.Top1Accuracy(preds, labels)
}

// CheckDetection scores an object-detection accuracy log at the given IoU
// threshold.
func CheckDetection(log []loadgen.AccuracyEntry, ds *dataset.SyntheticDetection, iouThreshold float64) (float64, error) {
	if len(log) == 0 {
		return 0, fmt.Errorf("accuracy: empty accuracy log")
	}
	var dets []metrics.Detection
	var truths []metrics.GroundTruth
	for _, entry := range log {
		sample, err := ds.Sample(entry.SampleIndex)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		boxes, err := payload.DecodeBoxes(entry.Data)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		dets = append(dets, metrics.Detection{SampleIndex: entry.SampleIndex, Boxes: boxes})
		truths = append(truths, metrics.GroundTruth{SampleIndex: entry.SampleIndex, Boxes: sample.Boxes})
	}
	return metrics.MeanAveragePrecision(dets, truths, iouThreshold)
}

// CheckTranslation scores a machine-translation accuracy log with corpus
// BLEU.
func CheckTranslation(log []loadgen.AccuracyEntry, ds *dataset.SyntheticText) (float64, error) {
	if len(log) == 0 {
		return 0, fmt.Errorf("accuracy: empty accuracy log")
	}
	var hyps, refs [][]int
	for _, entry := range log {
		sample, err := ds.Sample(entry.SampleIndex)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		tokens, err := payload.DecodeTokens(entry.Data)
		if err != nil {
			return 0, fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
		}
		hyps = append(hyps, tokens)
		refs = append(refs, sample.RefTokens)
	}
	return metrics.CorpusBLEU(hyps, refs)
}

// Check scores an accuracy log against the appropriate metric for the data
// set's kind and compares the result to target (derived from the reference
// quality). It is the batch form of StreamChecker — one implementation of
// the scoring rules serves both the in-memory log and the streaming path.
func Check(log []loadgen.AccuracyEntry, ds dataset.Dataset, reference, target float64) (Report, error) {
	c, err := NewStreamChecker(ds, reference, target)
	if err != nil {
		return Report{}, err
	}
	for _, entry := range log {
		c.Add(entry)
	}
	return c.Report()
}

// StreamChecker scores an accuracy-mode run incrementally: each response is
// decoded and folded into the metric's sufficient statistics the moment the
// LoadGen logs it, so a full-dataset sweep never has to hold the raw response
// log in memory. Wire Add as the run's loadgen.TestSettings.AccuracySink and
// call Report after the run completes.
//
// Classification keeps two counters, translation keeps corpus BLEU n-gram
// statistics (metrics.BLEUAccumulator), and detection — whose mAP needs a
// global score ranking — keeps only the decoded boxes rather than the raw
// JSON payloads.
type StreamChecker struct {
	ds        dataset.Dataset
	reference float64
	target    float64

	mu       sync.Mutex
	samples  int
	firstErr error

	// Classification.
	correct int
	// Detection.
	dets   []metrics.Detection
	truths []metrics.GroundTruth
	// Translation.
	bleu metrics.BLEUAccumulator
}

// NewStreamChecker returns a checker for the data set's task kind. reference
// and target mirror accuracy.Check's parameters.
func NewStreamChecker(ds dataset.Dataset, reference, target float64) (*StreamChecker, error) {
	switch ds.(type) {
	case *dataset.SyntheticImages, *dataset.SyntheticDetection, *dataset.SyntheticText:
		return &StreamChecker{ds: ds, reference: reference, target: target}, nil
	default:
		return nil, fmt.Errorf("accuracy: unsupported data set type %T", ds)
	}
}

// Add decodes and scores one logged response. It is safe for concurrent use;
// entry.Data is not retained past the call. Decode failures are recorded and
// surfaced by Report.
func (c *StreamChecker) Add(entry loadgen.AccuracyEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.add(entry); err != nil && c.firstErr == nil {
		c.firstErr = fmt.Errorf("accuracy: sample %d: %w", entry.SampleIndex, err)
	}
}

func (c *StreamChecker) add(entry loadgen.AccuracyEntry) error {
	switch d := c.ds.(type) {
	case *dataset.SyntheticImages:
		sample, err := d.Sample(entry.SampleIndex)
		if err != nil {
			return err
		}
		class, err := payload.DecodeClass(entry.Data)
		if err != nil {
			return err
		}
		if class == sample.Label {
			c.correct++
		}
	case *dataset.SyntheticDetection:
		sample, err := d.Sample(entry.SampleIndex)
		if err != nil {
			return err
		}
		boxes, err := payload.DecodeBoxes(entry.Data)
		if err != nil {
			return err
		}
		c.dets = append(c.dets, metrics.Detection{SampleIndex: entry.SampleIndex, Boxes: boxes})
		c.truths = append(c.truths, metrics.GroundTruth{SampleIndex: entry.SampleIndex, Boxes: sample.Boxes})
	case *dataset.SyntheticText:
		sample, err := d.Sample(entry.SampleIndex)
		if err != nil {
			return err
		}
		tokens, err := payload.DecodeTokens(entry.Data)
		if err != nil {
			return err
		}
		c.bleu.Add(tokens, sample.RefTokens)
	}
	c.samples++
	return nil
}

// Report computes the final quality report over everything streamed so far.
func (c *StreamChecker) Report() (Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.firstErr != nil {
		return Report{}, c.firstErr
	}
	if c.samples == 0 {
		return Report{}, fmt.Errorf("accuracy: empty accuracy log")
	}
	var (
		value  float64
		metric string
		err    error
	)
	switch c.ds.(type) {
	case *dataset.SyntheticImages:
		metric = "top1"
		value = float64(c.correct) / float64(c.samples)
	case *dataset.SyntheticDetection:
		metric = "mAP"
		value, err = metrics.MeanAveragePrecision(c.dets, c.truths, 0.5)
	case *dataset.SyntheticText:
		metric = "BLEU"
		value, err = c.bleu.Score()
	}
	if err != nil {
		return Report{}, err
	}
	return Report{
		Metric:    metric,
		Value:     value,
		Reference: c.reference,
		Target:    c.target,
		Samples:   c.samples,
		Pass:      value >= c.target,
	}, nil
}

// VerifyConsistency implements the accuracy-verification audit: responses
// sampled during a performance run must match the responses recorded for the
// same samples during the accuracy run. It returns the number of compared
// entries and an error describing the first mismatch.
func VerifyConsistency(performanceLog, accuracyLog []loadgen.AccuracyEntry) (int, error) {
	if len(accuracyLog) == 0 {
		return 0, fmt.Errorf("accuracy: accuracy-mode log is empty")
	}
	reference := make(map[int][]byte, len(accuracyLog))
	for _, entry := range accuracyLog {
		reference[entry.SampleIndex] = entry.Data
	}
	compared := 0
	for _, entry := range performanceLog {
		want, ok := reference[entry.SampleIndex]
		if !ok {
			return compared, fmt.Errorf("accuracy: sample %d logged in performance mode but absent from the accuracy run", entry.SampleIndex)
		}
		if !bytes.Equal(entry.Data, want) {
			return compared, fmt.Errorf("accuracy: sample %d response differs between performance and accuracy runs", entry.SampleIndex)
		}
		compared++
	}
	return compared, nil
}
