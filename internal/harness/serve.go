package harness

import (
	"fmt"

	"mlperf/internal/backend"
	"mlperf/internal/serve"
)

// ServeOptions configures ServeLoopback. Zero fields inherit the assembly:
// the server serves the assembly's engine from its QSL, and the client dials
// the freshly bound address.
type ServeOptions struct {
	// Server configures the serve.Server. Engine, Store and (for the SUT
	// label) Addr are filled in from the assembly when unset.
	Server serve.Config
	// Client configures the backend.Remote that drives it. Addr is always
	// overwritten with the server's bound address.
	Client backend.RemoteConfig
}

// LoopbackDeployment is a running serve.Server with a connected Remote SUT
// wired into a derived Assembly: the same task, data set, settings and
// quality targets, but inference crossing a real network boundary.
type LoopbackDeployment struct {
	// Assembly mirrors the source assembly with SUT swapped for the Remote.
	Assembly *Assembly
	// Server is the in-process loopback inference server.
	Server *serve.Server
	// Remote is the SUT client (also reachable as Assembly.SUT).
	Remote *backend.Remote
}

// Close disconnects the client and shuts the server down.
func (d *LoopbackDeployment) Close() error {
	cerr := d.Remote.Close()
	serr := d.Server.Close()
	if cerr != nil {
		return cerr
	}
	return serr
}

// ServeLoopback deploys the assembly's engine behind a loopback serve.Server
// and returns a derived assembly whose SUT is a backend.Remote driving it, so
// any scenario the source assembly can run in-process can also run over the
// wire — same data, same settings, bit-identical outputs — for side-by-side
// comparison. The caller must Close the deployment when done.
func (a *Assembly) ServeLoopback(opts ServeOptions) (*LoopbackDeployment, error) {
	if a.Engine == nil {
		return nil, fmt.Errorf("harness: assembly has no engine to serve")
	}
	scfg := opts.Server
	if scfg.Engine == nil {
		scfg.Engine = a.Engine
	}
	if scfg.Store == nil {
		scfg.Store = a.QSL
	}
	srv, err := serve.New(scfg)
	if err != nil {
		return nil, err
	}
	rcfg := opts.Client
	rcfg.Addr = srv.Addr()
	if rcfg.Name == "" {
		rcfg.Name = fmt.Sprintf("%s@%s", a.SUT.Name(), srv.Addr())
	}
	remote, err := backend.NewRemote(rcfg)
	if err != nil {
		srv.Close()
		return nil, err
	}
	derived := *a
	derived.SUT = remote
	derived.observed = remote
	return &LoopbackDeployment{Assembly: &derived, Server: srv, Remote: remote}, nil
}
