package tensor

import "mlperf/internal/parallel"

// Blocked, parallel GEMM engine. The matrix is partitioned into independent
// strips of output rows that are distributed over the shared worker pool;
// within a strip, a register-blocked kernel computes four output rows at a
// time so each streamed row of B is reused fourfold from registers. Every
// output element is accumulated by exactly one goroutine in ascending-p
// order, so results are bit-for-bit deterministic for any worker count and,
// for finite inputs, match the serial reference (which skips zero A terms —
// a no-op except for Inf/NaN operands) bit-for-bit on amd64.

// The parallel-dispatch threshold and the panel cache budget live in
// tuning.go (ParallelFlopThreshold / GEMMPanelBytes): both are
// 1-core-calibrated defaults overridable per process via environment or
// backend configuration, and neither changes results — only scheduling.

// gemmInto computes C = A×B into c, where a is m×k, b is k×n and c is m×n.
// When bias is non-nil it must have length m and is added to every element of
// the corresponding output row (the im2col convolution's per-channel bias).
// c is fully overwritten; it may be uninitialized arena memory.
func gemmInto(c, a, b, bias []float32, m, k, n int) {
	if m*k*n < ParallelFlopThreshold() || parallel.Default().Workers() == 1 {
		gemmRows(c, a, b, bias, k, n, 0, m)
		return
	}
	grain := gemmRowGrain(m, k, n)
	parallel.For(m, grain, func(lo, hi int) {
		gemmRows(c, a, b, bias, k, n, lo, hi)
	})
}

// gemmRowGrain picks a row-strip size that yields several chunks per worker
// while keeping each chunk above the fork overhead.
func gemmRowGrain(m, k, n int) int {
	threshold := ParallelFlopThreshold()
	grain := m / (4 * parallel.Default().Workers())
	for grain > 1 && (grain/2)*k*n >= threshold {
		grain /= 2
	}
	if grain < 1 {
		grain = 1
	}
	return grain
}

// gemmPanelCols picks the column-panel width for a k×n right-hand side. Wide
// right-hand sides — the batched convolution's im2col matrix spans every
// sample of a merged query — are processed panel by panel so the streamed B
// rows stay resident across the row groups instead of thrashing the cache
// once per four output rows.
func gemmPanelCols(k, n int) int {
	budget := GEMMPanelBytes()
	if k*n*4 <= budget {
		return n
	}
	p := budget / (4 * k)
	if p < 64 {
		p = 64
	}
	if p > n {
		p = n
	}
	return p
}

// gemmDotBytes is the right-hand-side size below which gemmRows switches
// from the streaming axpy kernel to the register-accumulating dot kernel.
// The axpy form updates every output element k times through memory — the
// right trade when B is wide and streamed once per four output rows — but
// for a narrow B that lives in L1 (the batched RNN's [k, N] step inputs with
// N bounded by the micro-batch cap) those k read-modify-writes dominate, and
// dot-form register accumulation is several times faster.
const gemmDotBytes = 16 << 10

// gemmRows computes output rows [i0, i1) of C = A×B (+ bias). Narrow
// L1-resident right-hand sides take the dot kernel; wide ones iterate
// cache-sized column panels of B (see gemmPanelCols), within which the core
// processes four output rows at a time in axpy form, so each streamed row of
// B is loaded once and folded into four accumulator rows. Either way every
// output element starts from the bias (zero when nil) and accumulates in
// ascending-p order regardless of kernel choice, panel width or row
// grouping, matching the serial reference bit for bit.
func gemmRows(c, a, b, bias []float32, k, n, i0, i1 int) {
	// The dot kernel's column packing is a scalar cache optimization; once a
	// SIMD tier is active and there are at least 8 columns, the vector block
	// kernel reads B directly and wins, so the packed path is bypassed.
	if 4*k*n <= gemmDotBytes && (ActiveSIMD() == SIMDOff || n < 8) {
		gemmDotRows(c, a, b, bias, k, n, i0, i1)
		return
	}
	panel := gemmPanelCols(k, n)
	for j0 := 0; j0 < n; j0 += panel {
		jn := panel
		if j0+jn > n {
			jn = n - j0
		}
		gemmRowsPanel(c, a, b, bias, k, n, i0, i1, j0, n, j0, jn, PostNone)
	}
}

// gemmDotRows computes output rows [i0, i1) of C = A×B (+ bias) with four
// register accumulators per row sweep, writing each output element exactly
// once. Each 4-column block of B is first packed into contiguous column
// vectors — one strided sweep reused by every output row, which also lets
// the compiler drop the inner loop's bounds checks. Per element the
// arithmetic is identical to the axpy kernel: start from the bias, add
// a[i,p]*b[p,j] in ascending p.
func gemmDotRows(c, a, b, bias []float32, k, n, i0, i1 int) {
	if n == 1 {
		// Column vector: the matVec inner loop, seeded with the bias. Only the
		// FMA tier vectorizes this — a bit-exact k-vectorization is impossible
		// (the horizontal reduction re-associates the sum), so off and avx2
		// stay scalar.
		x := b[:k]
		if ActiveSIMD() == SIMDFMA && k >= 32 {
			for i := i0; i < i1; i++ {
				s := simdDot(&a[i*k], &x[0], k)
				if bias != nil {
					s += bias[i]
				}
				c[i] = s
			}
			return
		}
		for i := i0; i < i1; i++ {
			row := a[i*k : i*k+k]
			var s float32
			if bias != nil {
				s = bias[i]
			}
			for p, v := range x {
				s += row[p] * v
			}
			c[i] = s
		}
		return
	}
	// gemmDotBytes bounds k*n to 4096 floats, and the blocked path below
	// needs n >= 4, so 4 columns of k floats always fit.
	var colBuf [4096]float32
	for j := 0; j+4 <= n; j += 4 {
		b0 := colBuf[0*k : 0*k+k]
		b1 := colBuf[1*k : 1*k+k]
		b2 := colBuf[2*k : 2*k+k]
		b3 := colBuf[3*k : 3*k+k]
		for p := 0; p < k; p++ {
			off := p*n + j
			b0[p], b1[p], b2[p], b3[p] = b[off], b[off+1], b[off+2], b[off+3]
		}
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			d0, d1, d2, d3 := b0[:len(arow)], b1[:len(arow)], b2[:len(arow)], b3[:len(arow)]
			var s0, s1, s2, s3 float32
			if bias != nil {
				s0 = bias[i]
				s1, s2, s3 = s0, s0, s0
			}
			for p, av := range arow {
				s0 += av * d0[p]
				s1 += av * d1[p]
				s2 += av * d2[p]
				s3 += av * d3[p]
			}
			crow := c[i*n+j : i*n+j+4]
			crow[0], crow[1], crow[2], crow[3] = s0, s1, s2, s3
		}
	}
	j := n - n%4
	if j+2 <= n {
		b0 := colBuf[0*k : 0*k+k]
		b1 := colBuf[1*k : 1*k+k]
		for p := 0; p < k; p++ {
			off := p*n + j
			b0[p], b1[p] = b[off], b[off+1]
		}
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			d0, d1 := b0[:len(arow)], b1[:len(arow)]
			var s0, s1 float32
			if bias != nil {
				s0 = bias[i]
				s1 = s0
			}
			for p, av := range arow {
				s0 += av * d0[p]
				s1 += av * d1[p]
			}
			c[i*n+j], c[i*n+j+1] = s0, s1
		}
		j += 2
	}
	if j < n {
		b0 := colBuf[:k]
		for p := 0; p < k; p++ {
			b0[p] = b[p*n+j]
		}
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			d0 := b0[:len(arow)]
			var s float32
			if bias != nil {
				s = bias[i]
			}
			for p, av := range arow {
				s += av * d0[p]
			}
			c[i*n+j] = s
		}
	}
}

// gemmPanelInto computes C[:, j0:j0+jn) = A × Bp (+ bias, + fused post) for a
// PACKED panel Bp: a contiguous k×jn matrix holding columns [j0, j0+jn) of
// the full k×n right-hand side. The batched convolution packs its im2col
// output panel by panel so the compute kernel always streams a dense
// cache-resident block, regardless of how wide the whole batch is; the fused
// activation is applied to each group of output rows the moment it finishes,
// while its segments are still in L1. Arithmetic per output element is
// identical to the unpacked path followed by a separate activation pass. (A
// 4×4 register-tiled micro-kernel was measured here and lost ~10% to the
// streaming axpy kernel — the Go compiler spills the accumulator tile — so
// the axpy form stays.)
func gemmPanelInto(c, a, bp, bias []float32, m, k, n, j0, jn int, post PostOp) {
	gemmRowsPanel(c, a, bp, bias, k, n, 0, m, 0, jn, j0, jn, post)
}

// gemmRowsPanel computes the [i0,i1) × [j0,j0+jn) block of C = A×B (+ bias),
// reading B rows at b[p*bStride+bOff : +jn] — bStride/bOff describe either a
// window of the full matrix or a packed panel — and applies post to each
// finished group of output rows.
func gemmRowsPanel(c, a, b, bias []float32, k, n, i0, i1, bOff, bStride, j0, jn int, post PostOp) {
	// Columns [0, jv) go to the SIMD microkernel (8-wide blocks); the ragged
	// tail [jv, jn) — and, with SIMD off, the whole panel — runs the scalar
	// loop. The AVX2 kernel performs the identical per-element arithmetic, so
	// the split is numerically invisible.
	tier := ActiveSIMD()
	jv := 0
	if tier != SIMDOff && k > 0 {
		jv = jn &^ 7
	}
	i := i0
	for ; i+4 <= i1; i += 4 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		c0 := c[(i+0)*n+j0 : (i+0)*n+j0+jn]
		c1 := c[(i+1)*n+j0 : (i+1)*n+j0+jn]
		c2 := c[(i+2)*n+j0 : (i+2)*n+j0+jn]
		c3 := c[(i+3)*n+j0 : (i+3)*n+j0+jn]
		var b0, b1, b2, b3 float32
		if bias != nil {
			b0, b1, b2, b3 = bias[i+0], bias[i+1], bias[i+2], bias[i+3]
		}
		for j := range c0 {
			c0[j] = b0
			c1[j] = b1
			c2[j] = b2
			c3[j] = b3
		}
		if jv > 0 {
			simdGEMM4(tier, &c0[0], &c1[0], &c2[0], &c3[0],
				&a0[0], &a1[0], &a2[0], &a3[0], &b[bOff], k, bStride, jv)
		}
		if jv < jn {
			t0, t1, t2, t3 := c0[jv:], c1[jv:], c2[jv:], c3[jv:]
			for p := 0; p < k; p++ {
				av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
				brow := b[p*bStride+bOff+jv : p*bStride+bOff+jn]
				// Reslicing the accumulator rows to brow's length drops the
				// per-store bounds checks in the hot loop.
				d0, d1, d2, d3 := t0[:len(brow)], t1[:len(brow)], t2[:len(brow)], t3[:len(brow)]
				for j, bv := range brow {
					d0[j] += av0 * bv
					d1[j] += av1 * bv
					d2[j] += av2 * bv
					d3[j] += av3 * bv
				}
			}
		}
		if post != PostNone {
			applyPost(c0, post)
			applyPost(c1, post)
			applyPost(c2, post)
			applyPost(c3, post)
		}
	}
	for ; i < i1; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n+j0 : i*n+j0+jn]
		var b0 float32
		if bias != nil {
			b0 = bias[i]
		}
		for j := range crow {
			crow[j] = b0
		}
		// No zero-skip here: the remainder rows must perform exactly the same
		// arithmetic as the 4-row kernel, otherwise which arithmetic a row
		// gets would depend on chunk boundaries (and thus the worker count)
		// for non-finite inputs.
		if jv > 0 {
			simdGEMM1(tier, &crow[0], &arow[0], &b[bOff], k, bStride, jv)
		}
		if jv < jn {
			tail := crow[jv:]
			for p := 0; p < k; p++ {
				av := arow[p]
				brow := b[p*bStride+bOff+jv : p*bStride+bOff+jn]
				d := tail[:len(brow)]
				for j, bv := range brow {
					d[j] += av * bv
				}
			}
		}
		applyPost(crow, post)
	}
}

// matVecInto computes y = A×x for a in m×k layout, overwriting y.
func matVecInto(y, a, x []float32, m, k int) {
	if m*k < ParallelFlopThreshold() || parallel.Default().Workers() == 1 {
		matVecRows(y, a, x, k, 0, m)
		return
	}
	parallel.For(m, 0, func(lo, hi int) {
		matVecRows(y, a, x, k, lo, hi)
	})
}

// matVecRows computes output elements [i0, i1) of y = A×x in the serial
// reference's accumulation order. The FMA tier (opt-in, tolerance-validated)
// routes through the re-associated dot kernel; off and avx2 stay scalar
// because a bit-exact vectorization of a single dot product does not exist.
func matVecRows(y, a, x []float32, k, i0, i1 int) {
	x = x[:k]
	if ActiveSIMD() == SIMDFMA && k >= 32 {
		for i := i0; i < i1; i++ {
			y[i] = simdDot(&a[i*k], &x[0], k)
		}
		return
	}
	for i := i0; i < i1; i++ {
		row := a[i*k : i*k+k]
		var sum float32
		for p, v := range x {
			sum += row[p] * v
		}
		y[i] = sum
	}
}
