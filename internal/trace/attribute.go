package trace

import (
	"fmt"
	"strings"
)

// Dominant classifies which slice of a tail request's latency was the
// largest contributor.
type Dominant string

const (
	// QueueDominated: admission wait + batch assembly dominated.
	QueueDominated Dominant = "queue"
	// ServiceDominated: inference + encode + reply dominated.
	ServiceDominated Dominant = "service"
	// WireDominated: time outside the server (client pool + network)
	// dominated.
	WireDominated Dominant = "wire"
	// Unattributed: the record carries no server decomposition (e.g. a
	// tail capture on an untraced client request), so no class fits.
	Unattributed Dominant = "unattributed"
)

// ClassShare is one attribution class's weight in a Report.
type ClassShare struct {
	Class Dominant
	// Count is how many tail records the class dominated.
	Count int
	// Share is Count over the tail-record total, in [0, 1].
	Share float64
	// WorstNanos is the largest end-to-end latency among the class's
	// records; WorstTraceID is that record's trace ID (0 if tail-only).
	WorstNanos   int64
	WorstTraceID uint64
}

// Report is the tail-attribution summary Attribute produces.
type Report struct {
	// Total is how many records were examined.
	Total int
	// Tail is how many records were classified (retained at ≥ the p99
	// estimate).
	Tail int
	// Classes holds the attribution classes in fixed order (queue,
	// service, wire, unattributed), including empty ones.
	Classes []ClassShare
}

// Dominant returns the report's overall dominant class — the class with
// the most tail records, Unattributed when the tail is empty.
func (r Report) Dominant() Dominant {
	best := Unattributed
	bestCount := 0
	for _, c := range r.Classes {
		if c.Count > bestCount {
			best, bestCount = c.Class, c.Count
		}
	}
	return best
}

// String renders the report for CLI output.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tail attribution: %d/%d records at or beyond p99", r.Tail, r.Total)
	if r.Tail == 0 {
		b.WriteString(" (no tail retained)")
		return b.String()
	}
	fmt.Fprintf(&b, "; dominant class %s\n", r.Dominant())
	for _, c := range r.Classes {
		if c.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-12s %4d (%5.1f%%)  worst %.3fms", c.Class, c.Count, 100*c.Share, float64(c.WorstNanos)/1e6)
		if c.WorstTraceID != 0 {
			fmt.Fprintf(&b, " (trace %d)", c.WorstTraceID)
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// Attribute classifies the retained tail records (Record.Tail) among the
// given records: for each, it splits end-to-end latency into a queue slice
// (admit + queue wait + batch assembly), a service slice (inference +
// encode + reply) and a wire slice (everything the server never saw —
// client-pool time plus the network), and charges the record to the
// largest slice. Records with no server decomposition are Unattributed.
// Server-origin records have no wire slice by construction.
func Attribute(records []Record) Report {
	rep := Report{
		Total: len(records),
		Classes: []ClassShare{
			{Class: QueueDominated},
			{Class: ServiceDominated},
			{Class: WireDominated},
			{Class: Unattributed},
		},
	}
	idx := map[Dominant]int{QueueDominated: 0, ServiceDominated: 1, WireDominated: 2, Unattributed: 3}
	for i := range records {
		rec := &records[i]
		if !rec.Tail {
			continue
		}
		rep.Tail++
		class := classify(rec)
		c := &rep.Classes[idx[class]]
		c.Count++
		if rec.End2End > c.WorstNanos {
			c.WorstNanos = rec.End2End
			c.WorstTraceID = rec.TraceID
		}
	}
	if rep.Tail > 0 {
		for i := range rep.Classes {
			rep.Classes[i].Share = float64(rep.Classes[i].Count) / float64(rep.Tail)
		}
	}
	return rep
}

func classify(rec *Record) Dominant {
	queue := rec.Stages[StageAdmit] + rec.Stages[StageQueue] + rec.Stages[StageAssembly]
	service := rec.Stages[StageService] + rec.Stages[StageEncode] + rec.Stages[StageReply]
	server := queue + service
	if server == 0 {
		return Unattributed
	}
	var wire int64
	if rec.Origin == OriginClient {
		if w := rec.End2End - server; w > 0 {
			wire = w
		}
	}
	switch {
	case wire >= queue && wire >= service:
		return WireDominated
	case queue >= service:
		return QueueDominated
	default:
		return ServiceDominated
	}
}
