// Package parallel provides the shared worker pool the compute kernels use
// to spread data-parallel loops across cores. The pool is sized to
// runtime.GOMAXPROCS once at startup and shared by every kernel in the
// process, so nested parallelism (e.g. the native backend's inference workers
// each invoking parallel kernels) degrades gracefully to caller-executed work
// instead of oversubscribing the machine.
//
// The primitive is For(n, grain, fn): the half-open range [0, n) is split
// into chunks of at most grain indices and each chunk is passed to fn exactly
// once. The caller always participates in the loop ("help-first" scheduling),
// so For never deadlocks even when every pool worker is busy, and a chunk is
// processed by exactly one goroutine, which keeps floating-point accumulation
// order — and therefore results — bit-for-bit deterministic regardless of how
// chunks land on workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker goroutines that help execute For loops.
type Pool struct {
	workers int
	tasks   chan *forJob
}

// forJob is the shared state of one For invocation. Jobs are recycled
// through a sync.Pool so a parallel loop costs one closure allocation at the
// call site and nothing else in steady state.
type forJob struct {
	fn     func(lo, hi int)
	n      int
	grain  int
	chunks int64
	cursor atomic.Int64
	wg     sync.WaitGroup
}

// run claims chunks from the shared cursor until none remain.
func (j *forJob) run() {
	for {
		c := j.cursor.Add(1) - 1
		if c >= j.chunks {
			return
		}
		lo := int(c) * j.grain
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
	}
}

var jobPool = sync.Pool{New: func() any { return new(forJob) }}

// NewPool returns a pool with the given number of logical workers. The caller
// of For counts as one worker, so workers-1 helper goroutines are spawned;
// a pool of one runs everything inline.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tasks: make(chan *forJob)}
	for i := 0; i < workers-1; i++ {
		go func() {
			for job := range p.tasks {
				job.run()
				job.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's logical worker count (including the caller).
func (p *Pool) Workers() int { return p.workers }

// For splits [0, n) into chunks of at most grain indices and runs
// fn(lo, hi) for each chunk. Chunks are claimed from a shared atomic cursor
// by the caller and by any idle pool workers; the call returns after every
// chunk has finished. fn must be safe to call concurrently on disjoint
// ranges. A non-positive grain defaults to a grain that yields roughly four
// chunks per worker (enough slack for load balancing without scheduling
// overhead).
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (4 * p.workers)
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	if chunks == 1 || p.workers == 1 {
		fn(0, n)
		return
	}

	job := jobPool.Get().(*forJob)
	job.fn, job.n, job.grain, job.chunks = fn, n, grain, int64(chunks)
	job.cursor.Store(0)

	// Recruit idle pool workers without blocking: an unbuffered send succeeds
	// only when a worker is ready. If the pool is saturated (nested For), the
	// caller simply does all the work itself.
	helpers := p.workers - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	for i := 0; i < helpers; i++ {
		job.wg.Add(1)
		select {
		case p.tasks <- job:
		default:
			job.wg.Done()
		}
	}
	job.run()
	job.wg.Wait()
	job.fn = nil
	jobPool.Put(job)
}

// defaultPool is the process-wide pool used by Default. It is sized once at
// init; kernels observing a later GOMAXPROCS change keep the startup size.
var defaultPool = NewPool(runtime.GOMAXPROCS(0))

// Default returns the shared process-wide pool.
func Default() *Pool { return defaultPool }

// For runs fn over [0, n) on the shared pool; see Pool.For.
func For(n, grain int, fn func(lo, hi int)) { defaultPool.For(n, grain, fn) }
