// Submission and audit: the full result-submission pipeline of Section V —
// run every scenario for one task, assemble a closed-division submission,
// subject it to the result-review audits (accuracy verification, caching
// detection, alternate random seeds) and the submission checker, and print
// the final report (which, by design, contains no summary score).
//
//	go run ./examples/submission_audit
package main

import (
	"fmt"
	"log"
	"time"

	"mlperf/internal/audit"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/quantize"
	"mlperf/internal/submission"
)

func main() {
	const task = core.ImageClassificationLight
	const scale = 2048 // divide production query counts by this factor

	// Build the submission system: the reference model post-training
	// quantized to INT8 with the provided calibration set, exactly what the
	// closed division permits.
	assembly, err := harness.BuildNative(task, harness.BuildOptions{
		DatasetSamples: 96,
		Seed:           2020,
		Workers:        4,
		Quantization:   quantize.INT8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submission system: %s, INT8 weights (%d tensors quantized)\n",
		assembly.SUT.Name(), len(assembly.QuantizationStats))
	fmt.Printf("reference quality %.4f, target %.4f\n\n", assembly.ReferenceQuality, assembly.QualityTarget)

	// Run every scenario in performance + accuracy mode and collect entries.
	system := submission.SystemDescription{
		Name: "go-native-int8", Submitter: "example-org", ProcessorType: "CPU",
		HostProcessors: 1, Framework: "mlperf-go-native", SoftwareStack: "go, int8 weights",
	}
	sub := submission.Submission{Submitter: "example-org"}
	for _, scenario := range loadgen.AllScenarios() {
		settings := harness.QuickSettings(assembly.Spec, scenario, scale)
		settings.MinDuration = 200 * time.Millisecond
		if scenario == loadgen.Offline {
			// A single scaled-down offline query finishes in milliseconds;
			// requiring a 200 ms minimum would only flag the demo as short.
			settings.MinDuration = 0
		}
		if scenario == loadgen.Server {
			settings.ServerTargetQPS = 400
			settings.ServerTargetLatency = 100 * time.Millisecond
		}
		if scenario == loadgen.MultiStream {
			// The production 50 ms arrival interval would make even a scaled
			// run take minutes of wall-clock time; compress it for the demo
			// (the skip-accounting logic is unchanged).
			settings.MultiStreamSamplesPerQuery = 2
			settings.MultiStreamArrivalInterval = 5 * time.Millisecond
		}
		report, err := harness.Run(assembly, harness.RunOptions{
			Scenario: scenario, Settings: &settings, RunAccuracy: true,
		})
		if err != nil {
			log.Fatalf("%v: %v", scenario, err)
		}
		fmt.Printf("  %-13s metric %10.4g  valid=%-5v  %s\n",
			scenario, report.Performance.MetricValue(), report.Performance.Valid, report.Accuracy)
		sub.Entries = append(sub.Entries, submission.Entry{
			System: system, Division: submission.Closed, Category: submission.Available,
			Task: task, Scenario: scenario, ModelUsed: string(assembly.Spec.ReferenceModel),
			Performance: report.Performance, Accuracy: report.Accuracy,
		})
	}

	// Result review: audit battery plus the submission checker.
	fmt.Println("\n== result-review audits (Section V-B) ==")
	auditSettings := harness.QuickSettings(assembly.Spec, loadgen.SingleStream, scale)
	auditSettings.MinDuration = 100 * time.Millisecond
	findings, err := audit.Suite{SUT: assembly.SUT, QSL: assembly.QSL, Settings: auditSettings}.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Println(" ", f)
	}

	issues, cleared := submission.Check(sub, submission.CheckOptions{ScaleFactor: scale})
	fmt.Printf("\n== submission checker: %d/%d entries cleared, %d issues ==\n", cleared, len(sub.Entries), len(issues))
	for _, issue := range issues {
		fmt.Println("  -", issue)
	}

	fmt.Println()
	fmt.Println(submission.Report(sub))
	if audit.AllPassed(findings) && len(issues) == 0 {
		fmt.Println("review outcome: submission cleared as valid")
	} else {
		fmt.Println("review outcome: submission needs fixes before release")
	}
}
