package backend

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
	"mlperf/internal/stats"
	"mlperf/internal/trace"
)

// RemoteConfig configures a Remote SUT client.
type RemoteConfig struct {
	// Addr is a single serve.Server address (host:port). Either Addr or
	// Addrs is required; setting Addr is shorthand for a one-replica Addrs.
	Addr string
	// Addrs is the replica set: one serve.Server address per replica. The
	// Remote fans the SUT's traffic out over all of them (least-in-flight
	// routing with a per-replica in-flight window), so N identical servers
	// behave as one SUT with N times the service capacity. Replicas must be
	// identical deployments (same task/samples/seed ⇒ same weights and data),
	// which keeps outputs bit-identical no matter which replica answers.
	Addrs []string
	// Model addresses one of the server's hosted models by id. Empty drives
	// the server's default model with V1 frames (the PR 4 wire format).
	Model string
	// Name labels the SUT in results; defaults to "remote(<addrs>)".
	Name string
	// Conns is how many TCP connections the client multiplexes requests
	// over per replica (default 2). Responses return on the connection that
	// carried the request; more connections reduce head-of-line blocking in
	// the kernel socket buffers under high offered load.
	Conns int
	// MaxInFlight bounds the client's outstanding (unanswered) requests per
	// replica (default 256). This is the client half of the flow-control
	// pair — each server's admission queue is the other — and is what lets a
	// merged offline query of tens of thousands of samples stream through
	// bounded server queues without mass rejects. Issuing blocks when every
	// replica's window is full, which the LoadGen observes as scheduling
	// backpressure (an overloaded SUT falling behind, exactly what the
	// Server scenario is designed to penalize).
	MaxInFlight int
	// Deadline, when positive, stamps every request with an absolute
	// deadline this far in the future; the server answers StatusExpired
	// instead of serving requests whose deadline passed while queued.
	Deadline time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration

	// DisableRecovery restores the PR 5 failure semantics: a failed
	// connection stays dead, a replica that loses every connection stays
	// down for the Remote's lifetime, and requests stranded by a transport
	// failure settle as dropped instead of failing over. By default the
	// Remote supervises every connection: it re-dials with exponential
	// backoff and deterministic jitter, health-probes the server before
	// readmitting it, re-runs the reopen barrier when a whole replica
	// rejoins, and retries transport-failed requests on a live replica
	// (inference is idempotent — the same sample index yields bit-identical
	// bytes on any replica — so failover never changes what a sample
	// answers, only who answers it).
	DisableRecovery bool
	// RedialInitial is the first redial backoff step (default 10ms); each
	// failed attempt doubles it up to RedialMax (default 1s). The actual
	// delay is jittered in [delay/2, delay) by a deterministic RNG.
	RedialInitial time.Duration
	RedialMax     time.Duration
	// RecoverySeed seeds the deterministic backoff jitter (default 1). Every
	// (replica, connection, outage) triple forks its own stream from it, so
	// a fixed seed reproduces the same redial schedule run over run.
	RecoverySeed uint64
	// MaxAttempts bounds the total delivery attempts per request, the first
	// included (default: number of replicas + 1, floored at 2). When the
	// attempts are exhausted, or no replica is live, the request settles as
	// dropped — the run terminates invalid instead of hanging or retrying
	// forever.
	MaxAttempts int
	// ProbeTimeout bounds the health-probe round trip on a fresh connection
	// before it is readmitted (default 2s).
	ProbeTimeout time.Duration
	// RejoinWait is the grace period a request caught with NO live replica
	// waits for a re-join before settling as dropped. The deadline is shared
	// by every request stranded in the same outage, so a total outage stalls
	// the stream by at most RejoinWait rather than dropping everything issued
	// during a few-millisecond blip. Zero derives the default (twice
	// RedialMax); negative disables waiting (instant drops, the PR 5
	// behavior for a fully-down fleet).
	RejoinWait time.Duration
	// Dialer, when set, replaces net.DialTimeout for every connection (the
	// initial pool and every redial). It exists for fault injection:
	// internal/chaos supplies a dialer whose connections sever, delay,
	// truncate or corrupt frames on a seeded schedule.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Tracer, when set, enables client-side request tracing: every request
	// feeds the tail tracker (outliers beyond the live p99 estimate are
	// retained with their end-to-end latency), and one request in every
	// Tracer.SampleEvery is head-sampled — it carries a trace id to the
	// server in a V3 frame, records the client's issue/acquire/write/await/
	// decode stages, and folds the server's span block from the traced
	// response into one cross-process record. Nil disables tracing with
	// zero per-request cost.
	Tracer *trace.Tracer
	// TolerateDown lets NewRemote succeed even when some replicas refuse
	// their initial dial: the failed slots start dead, the replica starts
	// down, and the redial supervisors own bringing it up — the same
	// probe-gated rejoin a crashed replica goes through. This is what lets
	// an autoscaled fleet configure standby replica slots that have no
	// server behind them yet. Incompatible with DisableRecovery (a dead
	// slot would stay dead forever); at least one replica must still dial.
	TolerateDown bool
}

func (c *RemoteConfig) normalize() error {
	if len(c.Addrs) == 0 {
		if c.Addr == "" {
			return fmt.Errorf("backend: remote SUT needs an address")
		}
		c.Addrs = []string{c.Addr}
	}
	if c.Name == "" {
		label := strings.Join(c.Addrs, ",")
		if c.Model != "" {
			label = c.Model + "@" + label
		}
		c.Name = fmt.Sprintf("remote(%s)", label)
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RedialInitial <= 0 {
		c.RedialInitial = 10 * time.Millisecond
	}
	if c.RedialMax <= 0 {
		c.RedialMax = time.Second
	}
	if c.RecoverySeed == 0 {
		c.RecoverySeed = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = len(c.Addrs) + 1
		if c.MaxAttempts < 2 {
			c.MaxAttempts = 2
		}
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.RejoinWait == 0 {
		c.RejoinWait = 2 * c.RedialMax
	}
	return nil
}

// Remote drives one or more serve.Server replicas as a single system under
// test: a loadgen.SUT whose inference happens across a real network boundary.
// Each query sample becomes one predict request routed to the replica with
// the fewest requests in flight (each server's dynamic batcher re-coalesces
// them), so every scenario — SingleStream, MultiStream, Server, Offline —
// runs over the wire against the whole replica set with zero changes to the
// LoadGen.
//
// Shed load is never silent: requests a server rejects or expires complete
// their query with loadgen.Response.Dropped set, which the LoadGen counts and
// uses to invalidate the run.
//
// Transport failures, by contrast, are transients the fleet absorbs: a
// request stranded on a failed connection fails over to a live replica
// (bounded by MaxAttempts; outputs stay bit-identical because replicas are
// identical deployments), every failed connection re-dials under an
// exponential-backoff supervisor with deterministic jitter, and a replica
// that lost all its connections is readmitted to routing only after a fresh
// connection passes the health-probe handshake and the reopen barrier has
// re-armed its batcher. Down/up intervals, rejoins, redials, retries and the
// drops that remained after failover are recorded in Recovery and attached
// to merged metrics snapshots. Only when failover is exhausted (or recovery
// is disabled) does a transport failure settle the request as dropped, which
// invalidates the run rather than hanging it.
type Remote struct {
	cfg      RemoteConfig
	replicas []*replica
	nextID   atomic.Uint64 // wire request ids

	// mt is the addressed model's client-side trace state (nil when
	// RemoteConfig.Tracer is unset), cached so the hot path never takes the
	// tracer's model-map lock.
	mt *trace.ModelTrace

	feeders  sync.WaitGroup // multi-sample issue goroutines
	inflight sync.WaitGroup // outstanding requests

	rejected atomic.Int64
	expired  atomic.Int64

	// Recovery counters (per-replica interval state lives on each replica).
	connRedials    atomic.Int64
	retries        atomic.Int64
	transportDrops atomic.Int64

	// liveMu guards the full-fleet outage state: liveCh is non-nil while no
	// replica is live (closed and cleared when one rejoins, waking every
	// request waiting out the outage) and outageEnd is the shared drop-dead
	// deadline those waiters share.
	liveMu    sync.Mutex
	liveCh    chan struct{}
	outageEnd time.Time

	closing atomic.Bool
	stop    chan struct{} // closed by Close; ends redial supervisors
	// superMu serializes spawning redial supervisors against Close: closing
	// flips under it before superWG.Wait, so no supervisor can Add after the
	// Wait has started on a drained group.
	superMu sync.Mutex
	superWG sync.WaitGroup
	errs    errorLog
}

// replica is one server in the replica set: its connection pool, its half of
// the flow-control window, and its liveness state.
type replica struct {
	r     *Remote
	idx   int
	addr  string
	conns []*remoteConn
	next  atomic.Uint64 // round-robin connection cursor

	// window holds this replica's in-flight slots; its load doubles as the
	// in-flight count the router's least-in-flight choice reads, and its
	// capacity is live-resizable (Remote.SetMaxInFlight).
	window *flowWindow

	down    atomic.Bool // no live connections; the router skips it
	retired atomic.Bool // administratively out of routing (Remote.Retire)

	// mu guards the lifecycle state below.
	mu        sync.Mutex
	liveConns int
	rejoining bool      // a rejoin barrier is in progress
	downSince time.Time // valid while down
	intervals []serve.DownInterval
	rejoins   int
	// lastSnap is the most recent metrics snapshot fetched from the current
	// server epoch; when the replica goes down it is banked in lostEpochs so
	// a restarted (zero-countered) server's numbers merge with — rather than
	// replace — what its predecessor reported. Counters are never double
	// counted: each epoch contributes either its live snapshot or its last
	// fetch before the crash, never both.
	lastSnap   serve.Snapshot
	hasLast    bool
	lostEpochs []serve.Snapshot
}

// pendingRequest ties a wire id back to the query sample awaiting it.
type pendingRequest struct {
	query    *loadgen.Query
	sampleID uint64
	index    int
	attempt  int // 1-based delivery attempt

	// Tracing state. issueNano is set for every request when tracing is
	// enabled (the tail tracker needs end-to-end latency for all of them);
	// the remaining fields are populated only for head-sampled requests
	// (traceID != 0). writeNs and sentNano are stored back into the pending
	// map under rc.mu after the socket flush — the same mutex the reader
	// pops the entry under — which is the happens-before edge that makes
	// them safely visible to resolve.
	traceID   uint64
	issueNano int64 // wall clock at issue (UnixNano)
	issueNs   int64 // StageIssue duration
	acquireNs int64 // StageAcquire duration (accumulated across attempts)
	writeNs   int64 // StageWrite duration
	sentNano  int64 // wall clock after the request frame flushed
}

// remoteConn is one slot in a replica's connection pool. The slot is stable
// for the Remote's lifetime; the connection inside it is an epoch that dies
// on transport failure and is replaced by the redial supervisor (gen counts
// epochs so a stale reader cannot kill its successor). Each live epoch has a
// serialized writer plus a reader goroutine that demultiplexes responses.
type remoteConn struct {
	rep  *replica
	slot int

	wmu sync.Mutex
	w   *bufio.Writer

	mu      sync.Mutex
	gen     uint64
	c       net.Conn
	dead    bool
	pending map[uint64]pendingRequest
	metrics map[uint64]chan []byte
}

// write serializes one frame onto the connection: fn writes it, then the
// buffered writer is flushed, all under the write lock. A dead slot fails
// fast instead of writing into a replaced epoch.
func (rc *remoteConn) write(fn func(w io.Writer) error) error {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	rc.mu.Lock()
	dead := rc.dead
	rc.mu.Unlock()
	if dead {
		return fmt.Errorf("backend: connection to %s is down", rc.rep.addr)
	}
	if err := fn(rc.w); err != nil {
		return err
	}
	return rc.w.Flush()
}

// install swaps a freshly dialed (and probed) connection into the slot and
// starts its reader. Holding both locks while swapping guarantees no writer
// is mid-frame and no request registers against the old epoch's maps.
func (rc *remoteConn) install(c net.Conn) uint64 {
	rc.wmu.Lock()
	rc.mu.Lock()
	rc.gen++
	gen := rc.gen
	rc.c = c
	rc.w = bufio.NewWriter(c)
	rc.dead = false
	rc.pending = make(map[uint64]pendingRequest)
	rc.metrics = make(map[uint64]chan []byte)
	rc.mu.Unlock()
	rc.wmu.Unlock()
	go rc.readLoop(gen, c)
	return gen
}

// dial opens one connection to addr through the configured dialer.
func (r *Remote) dial(addr string) (net.Conn, error) {
	if r.cfg.Dialer != nil {
		return r.cfg.Dialer(addr, r.cfg.DialTimeout)
	}
	return net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
}

// NewRemote dials every replica and returns the connected SUT client. With
// TolerateDown set, replicas that refuse their initial dial start down (dead
// slots under redial supervisors) instead of failing construction, as long
// as at least one replica dialed.
func NewRemote(cfg RemoteConfig) (*Remote, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.TolerateDown && cfg.DisableRecovery {
		return nil, fmt.Errorf("backend: TolerateDown needs recovery (a dead slot would stay dead forever)")
	}
	r := &Remote{cfg: cfg, stop: make(chan struct{}), mt: cfg.Tracer.Model(cfg.Model)}
	// Build the whole structure before starting any reader: a connection that
	// dies instantly would otherwise race its fail() against construction.
	var conns [][]net.Conn // conns[i][j] == nil marks a tolerated dead slot
	closeAll := func() {
		for _, cs := range conns {
			for _, c := range cs {
				if c != nil {
					c.Close()
				}
			}
		}
	}
	dialed := 0
	for idx, addr := range cfg.Addrs {
		rep := &replica{r: r, idx: idx, addr: addr, window: newFlowWindow(cfg.MaxInFlight)}
		var raw []net.Conn
		live := 0
		for i := 0; i < cfg.Conns; i++ {
			c, err := r.dial(addr)
			if err != nil {
				if cfg.TolerateDown {
					c = nil
				} else {
					closeAll()
					for _, c := range raw {
						if c != nil {
							c.Close()
						}
					}
					return nil, fmt.Errorf("backend: dialing replica %s: %w", addr, err)
				}
			} else {
				live++
			}
			raw = append(raw, c)
			rep.conns = append(rep.conns, &remoteConn{rep: rep, slot: i})
		}
		rep.liveConns = live
		if live > 0 {
			dialed++
		} else {
			rep.down.Store(true)
			rep.downSince = time.Now()
		}
		conns = append(conns, raw)
		r.replicas = append(r.replicas, rep)
	}
	if dialed == 0 {
		closeAll()
		return nil, fmt.Errorf("backend: dialing %s: no replica reachable", strings.Join(cfg.Addrs, ","))
	}
	for i, rep := range r.replicas {
		for j, rc := range rep.conns {
			if conns[i][j] != nil {
				rc.install(conns[i][j])
				continue
			}
			// Tolerated dead slot: mark it dead and hand it to a redial
			// supervisor, which probes, installs and rejoins exactly as it
			// would after a crash.
			rc.dead = true
			r.superWG.Add(1)
			go rc.redial(0)
		}
	}
	return r, nil
}

// Name implements loadgen.SUT.
func (r *Remote) Name() string { return r.cfg.Name }

// Tracer returns the client's span subsystem, nil when tracing is disabled.
func (r *Remote) Tracer() *trace.Tracer { return r.cfg.Tracer }

// Addrs returns the replica addresses in configuration order.
func (r *Remote) Addrs() []string { return append([]string(nil), r.cfg.Addrs...) }

// IssueQuery implements loadgen.SUT. Single-sample queries issue inline
// (blocking briefly on the in-flight window when it is full — backpressure
// the LoadGen should see); multi-sample queries stream from a feeder
// goroutine so the call returns quickly.
func (r *Remote) IssueQuery(q *loadgen.Query) {
	if len(q.Samples) <= 1 {
		for i := range q.Samples {
			r.issueSample(q, q.Samples[i])
		}
		return
	}
	r.feeders.Add(1)
	go func() {
		defer r.feeders.Done()
		for i := range q.Samples {
			r.issueSample(q, q.Samples[i])
		}
	}()
}

// pick chooses the replica for the next request: the live, routable replica
// with the fewest requests in flight (ties go to the lowest index). Retired
// replicas are skipped while any alternative exists; when every replica is
// down it returns the emptiest one anyway — its dead connections settle the
// request as dropped, so the run terminates invalid instead of hanging.
func (r *Remote) pick() *replica {
	pickWhere := func(ok func(*replica) bool) *replica {
		var best *replica
		bestLoad := 0
		for _, rep := range r.replicas {
			if !ok(rep) {
				continue
			}
			load := rep.window.load()
			if best == nil || load < bestLoad {
				best, bestLoad = rep, load
			}
		}
		return best
	}
	if best := pickWhere(func(rep *replica) bool {
		return !rep.down.Load() && !rep.retired.Load()
	}); best != nil {
		return best
	}
	if best := pickWhere(func(rep *replica) bool { return !rep.retired.Load() }); best != nil {
		return best
	}
	return pickWhere(func(*replica) bool { return true })
}

// anyLive reports whether at least one routable replica is admitting traffic.
func (r *Remote) anyLive() bool {
	for _, rep := range r.replicas {
		if !rep.down.Load() && !rep.retired.Load() {
			return true
		}
	}
	return false
}

// issueSample raises the in-flight count for one query sample and makes its
// first delivery attempt. Whichever side settles it — the reader on a
// response, or failover once every attempt is spent — balances the count
// exactly once.
func (r *Remote) issueSample(q *loadgen.Query, s loadgen.QuerySample) {
	r.inflight.Add(1)
	p := pendingRequest{query: q, sampleID: s.ID, index: s.Index, attempt: 1}
	if r.mt != nil {
		p.issueNano = time.Now().UnixNano()
		p.traceID = r.cfg.Tracer.Issue()
	}
	r.send(p)
}

// send routes one delivery attempt to a replica, holding one of that
// replica's in-flight window slots until its response arrives (or the
// attempt fails and the slot is released by failover). The connection scan
// starts at the round-robin cursor and skips dead slots, so a replica with
// one broken connection keeps serving on its live ones while the supervisor
// re-dials the broken one.
func (r *Remote) send(p pendingRequest) {
	traced := p.traceID != 0
	var acquireStart time.Time
	if traced {
		acquireStart = time.Now()
		if p.issueNs == 0 {
			p.issueNs = acquireStart.UnixNano() - p.issueNano
		}
	}
	rep := r.pick()
	rep.window.acquire()
	var rc *remoteConn
	start := rep.next.Add(1)
	for i := 0; i < len(rep.conns); i++ {
		if cand := rep.conns[(start+uint64(i))%uint64(len(rep.conns))]; !cand.isDead() {
			rc = cand
			break
		}
	}
	if traced {
		// Accumulates across failover attempts: the slot answers "how long
		// did this request wait for a window and a live connection, total".
		p.acquireNs += time.Since(acquireStart).Nanoseconds()
	}
	if rc == nil {
		// Every slot is between epochs (the replica is going down or coming
		// up); burn this attempt and re-route.
		r.failover(rep, p, nil)
		return
	}

	id := r.nextID.Add(1)
	rc.mu.Lock()
	if rc.dead {
		rc.mu.Unlock()
		r.failover(rep, p, nil)
		return
	}
	gen := rc.gen
	rc.pending[id] = p
	rc.mu.Unlock()

	req := serve.PredictRequest{ID: id, SampleIndex: p.index, Model: r.cfg.Model, TraceID: p.traceID}
	if r.cfg.Deadline > 0 {
		req.Deadline = time.Now().Add(r.cfg.Deadline)
	}
	var writeStart time.Time
	if traced {
		writeStart = time.Now()
	}
	err := rc.write(func(w io.Writer) error { return serve.WritePredictRequest(w, req) })
	if err != nil {
		// A failed write means the connection is broken, not just this
		// request: kill the epoch. fail drains every pending request on it —
		// this one included — into failover, closes the socket (unblocking a
		// reader that has not noticed yet) and hands the slot to the redial
		// supervisor. Idempotent against the reader failing it concurrently.
		rc.fail(gen, err)
		return
	}
	if traced {
		// Store the write duration and flush timestamp back into the pending
		// entry under rc.mu — the reader pops entries under the same mutex,
		// so this is the happens-before edge that publishes them (the socket
		// itself gives the race detector no cross-goroutine ordering). If the
		// response already arrived, the entry is gone and the await/write
		// slots simply stay zero.
		writeNs := time.Since(writeStart).Nanoseconds()
		rc.mu.Lock()
		if entry, ok := rc.pending[id]; ok && rc.gen == gen {
			entry.writeNs = writeNs
			entry.sentNano = time.Now().UnixNano()
			rc.pending[id] = entry
		}
		rc.mu.Unlock()
	}
}

// failover releases the failed attempt's window slot and re-routes the
// request to a live replica — waiting out a full-fleet outage up to the
// shared RejoinWait deadline if it has to — or settles it as dropped when
// attempts are exhausted, no replica comes back, recovery is disabled, or
// the client is closing. Retrying is sound because inference is idempotent:
// any replica answers a sample index with bit-identical bytes.
func (r *Remote) failover(rep *replica, p pendingRequest, cause error) {
	rep.window.release()
	if !r.closing.Load() && !r.cfg.DisableRecovery && p.attempt < r.cfg.MaxAttempts &&
		(r.anyLive() || r.awaitFleet()) {
		r.retries.Add(1)
		p.attempt++
		r.send(p)
		return
	}
	if !r.closing.Load() && !r.cfg.DisableRecovery {
		r.transportDrops.Add(1)
	}
	p.query.Complete([]loadgen.Response{{SampleID: p.sampleID, Dropped: true}})
	r.inflight.Done()
}

// fleetDown opens the full-fleet outage window (no-op if one is already
// open): requests that find no live replica wait on liveCh until a rejoin
// closes it or the shared outage deadline passes.
func (r *Remote) fleetDown() {
	r.liveMu.Lock()
	if r.liveCh == nil {
		r.liveCh = make(chan struct{})
		r.outageEnd = time.Now().Add(r.cfg.RejoinWait)
	}
	r.liveMu.Unlock()
}

// fleetUp ends the outage window, waking every waiter.
func (r *Remote) fleetUp() {
	r.liveMu.Lock()
	if r.liveCh != nil {
		close(r.liveCh)
		r.liveCh = nil
	}
	r.liveMu.Unlock()
}

// awaitFleet blocks until some replica is live again, the outage's shared
// grace deadline passes, or the client closes; it reports whether a live
// replica exists. Sharing one deadline across every stranded request bounds
// a total outage's stall to RejoinWait regardless of how much traffic is
// caught in it.
func (r *Remote) awaitFleet() bool {
	for {
		if r.anyLive() {
			return true
		}
		r.liveMu.Lock()
		ch := r.liveCh
		end := r.outageEnd
		r.liveMu.Unlock()
		if ch == nil {
			// No outage window is open (it closed just now, or the failing
			// path has not opened one yet) — nothing to wait on.
			return r.anyLive()
		}
		wait := time.Until(end)
		if wait <= 0 {
			return r.anyLive()
		}
		timer := time.NewTimer(wait)
		select {
		case <-ch:
			timer.Stop()
			// A replica rejoined (or another outage replaced this one) —
			// loop and re-check.
		case <-timer.C:
			return r.anyLive()
		case <-r.stop:
			timer.Stop()
			return false
		}
	}
}

// settle releases one of this replica's window slots and completes one
// sample's response.
func (rep *replica) settle(q *loadgen.Query, resp loadgen.Response) {
	rep.window.release()
	q.Complete([]loadgen.Response{resp})
	rep.r.inflight.Done()
}

// readLoop demultiplexes one connection epoch's responses until it closes.
// On a transport failure the epoch dies: every request still pending on it
// fails over (or settles as dropped), and the redial supervisor takes the
// slot.
func (rc *remoteConn) readLoop(gen uint64, c net.Conn) {
	br := bufio.NewReader(c)
	for {
		frame, err := serve.ReadClientFrame(br)
		if err != nil {
			rc.fail(gen, err)
			return
		}
		switch frame.Type {
		case serve.MsgPredict, serve.MsgPredictTraced:
			if rc.resolve(frame.Predict) {
				// The query settled synchronously and nothing retains
				// resp.Data past completion (the accuracy log copies; sinks
				// are documented not to retain), so the pooled frame buffer
				// goes straight back — this is what closes the client-side
				// read loop at zero steady-state allocations.
				frame.Release()
			}
		case serve.MsgMetrics:
			rc.mu.Lock()
			ch := rc.metrics[frame.MetricsID]
			delete(rc.metrics, frame.MetricsID)
			rc.mu.Unlock()
			if ch != nil {
				ch <- frame.MetricsJSON
			}
		}
	}
}

// resolve routes one predict response back to its query. Server-decided
// dispositions (rejected, expired, errored) are terminal — shed load must
// stay visible, so it is never retried.
//
// It reports whether the caller may reuse the memory resp.Data points into:
// true for single-sample queries (the completion handler ran synchronously
// inside settle and Query.responses is never read again) and for responses
// with no live entry; false for multi-sample queries, whose Query retains
// every sample's Data until the last response arrives.
func (rc *remoteConn) resolve(resp serve.PredictResponse) bool {
	rc.mu.Lock()
	entry, ok := rc.pending[resp.ID]
	delete(rc.pending, resp.ID)
	rc.mu.Unlock()
	if !ok {
		return true // already settled by a write failure
	}
	r := rc.rep.r
	var rec *trace.Record
	var decodeStart time.Time
	if r.mt != nil {
		// Every response feeds the tail tracker; a record is retained when
		// the request was head-sampled OR its latency is a tail outlier.
		decodeStart = time.Now()
		e2e := decodeStart.UnixNano() - entry.issueNano
		tail := r.mt.Observe(e2e)
		if entry.traceID != 0 || tail {
			rec = &trace.Record{
				TraceID: entry.traceID, Model: r.cfg.Model,
				Origin: trace.OriginClient,
				Start:  entry.issueNano, End2End: e2e, Tail: tail,
			}
			if entry.traceID != 0 {
				rec.Stages[trace.StageIssue] = entry.issueNs
				rec.Stages[trace.StageAcquire] = entry.acquireNs
				rec.Stages[trace.StageWrite] = entry.writeNs
				if entry.sentNano > 0 {
					if await := decodeStart.UnixNano() - entry.sentNano; await > 0 {
						rec.Stages[trace.StageAwait] = await
					}
				}
			}
			if resp.Spans != nil {
				// Fold the server's span block in: the cross-process record.
				rec.HasServer = true
				rec.ServerStart = resp.Spans.RecvUnixNano
				rec.Stages[trace.StageAdmit] = resp.Spans.Admit
				rec.Stages[trace.StageQueue] = resp.Spans.Queue
				rec.Stages[trace.StageAssembly] = resp.Spans.Assembly
				rec.Stages[trace.StageService] = resp.Spans.Service
				rec.Stages[trace.StageEncode] = resp.Spans.Encode
			}
		}
	}
	out := loadgen.Response{SampleID: entry.sampleID}
	switch resp.Status {
	case serve.StatusOK:
		out.Data = resp.Data
	case serve.StatusRejected:
		r.rejected.Add(1)
		out.Dropped = true
	case serve.StatusExpired:
		r.expired.Add(1)
		out.Dropped = true
	default: // StatusError and anything unknown: recorded AND dropped, so
		// the run is invalid even for callers that never drain Errors.
		r.errs.add(fmt.Errorf("backend %s: replica %s reported %v for sample id %d", r.cfg.Name, rc.rep.addr, resp.Status, entry.sampleID))
		out.Dropped = true
	}
	rc.rep.settle(entry.query, out)
	if rec != nil {
		if entry.traceID != 0 {
			decode := time.Since(decodeStart).Nanoseconds()
			rec.Stages[trace.StageDecode] = decode
			// End2End was snapped at decodeStart (the tail tracker needs it
			// then); stretch it over the decode span so the client stages
			// always sum to at most the end-to-end duration.
			rec.End2End += decode
		}
		r.mt.Publish(rec)
	}
	return len(entry.query.Samples) <= 1
}

// fail kills a broken connection epoch and fails over everything pending on
// it. Setting dead under the same lock that guards registration guarantees
// no request can be registered after the drain and never settled. When the
// replica's last connection dies the replica is marked down and the router
// stops sending it traffic; unless recovery is disabled, a supervisor then
// owns the slot and re-dials it with backoff.
func (rc *remoteConn) fail(gen uint64, err error) {
	rc.mu.Lock()
	if rc.gen != gen || rc.dead {
		// A stale epoch's reader (or a duplicate failure) — the slot has
		// already moved on.
		rc.mu.Unlock()
		return
	}
	rc.dead = true
	rc.c.Close()
	pending := rc.pending
	rc.pending = make(map[uint64]pendingRequest)
	metrics := rc.metrics
	rc.metrics = make(map[uint64]chan []byte)
	rc.mu.Unlock()

	rep := rc.rep
	r := rep.r
	rep.mu.Lock()
	rep.liveConns--
	wentDown := rep.liveConns == 0 && !rep.down.Load()
	if wentDown {
		rep.down.Store(true)
		rep.downSince = time.Now()
		if rep.hasLast {
			// Bank the dying epoch's last known counters so a restarted
			// server's zeroed metrics merge with them instead of erasing them.
			rep.lostEpochs = append(rep.lostEpochs, rep.lastSnap)
			rep.hasLast = false
		}
	}
	rep.mu.Unlock()

	if wentDown {
		if !r.anyLive() {
			r.fleetDown()
		}
		if !r.closing.Load() {
			r.errs.add(fmt.Errorf("backend %s: replica %s is down (all %d connections failed)", r.cfg.Name, rep.addr, len(rep.conns)))
		}
	}
	if !r.closing.Load() && len(pending) > 0 {
		r.errs.add(fmt.Errorf("backend %s: connection to %s failed with %d requests outstanding: %w", r.cfg.Name, rep.addr, len(pending), err))
	}
	for _, entry := range pending {
		r.failover(rep, entry, err)
	}
	for _, ch := range metrics {
		close(ch)
	}
	if !r.cfg.DisableRecovery {
		r.superMu.Lock()
		if !r.closing.Load() {
			r.superWG.Add(1)
			go rc.redial(gen)
		}
		r.superMu.Unlock()
	}
}

// redial is the per-connection supervisor: it re-dials the slot's address
// with exponential backoff and deterministic jitter, health-probes the fresh
// connection, and only then installs it and (when the whole replica was
// down) re-runs the reopen barrier before readmitting the replica to
// routing. It exits when the connection is restored or the client closes.
func (rc *remoteConn) redial(failedGen uint64) {
	rep := rc.rep
	r := rep.r
	defer r.superWG.Done()
	// One deterministic jitter stream per (replica, slot, outage): a fixed
	// RecoverySeed reproduces the same backoff schedule run over run.
	rng := stats.NewRNG(r.cfg.RecoverySeed ^
		(uint64(rep.idx)+1)<<40 ^ (uint64(rc.slot)+1)<<20 ^ failedGen)
	backoff := r.cfg.RedialInitial
	timer := time.NewTimer(jitter(backoff, rng))
	defer timer.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-timer.C:
		}
		if r.closing.Load() {
			return
		}
		c, err := r.dial(rep.addr)
		if err == nil {
			err = r.probe(c)
			if err == nil {
				r.connRedials.Add(1)
				rc.install(c)
				rep.rejoined(rc)
				return
			}
			c.Close()
		}
		if backoff *= 2; backoff > r.cfg.RedialMax {
			backoff = r.cfg.RedialMax
		}
		timer.Reset(jitter(backoff, rng))
	}
}

// jitter draws a deterministic delay in [d/2, d).
func jitter(d time.Duration, rng *stats.RNG) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rng.Float64()*float64(half))
}

// probe runs the health-probe handshake on a fresh, not-yet-installed
// connection: the server must answer the V2 probe frame ProbeReady within
// ProbeTimeout. A draining (retiring) or unresponsive server is not
// readmitted — the supervisor keeps backing off instead.
func (r *Remote) probe(c net.Conn) error {
	id := r.nextID.Add(1)
	c.SetDeadline(time.Now().Add(r.cfg.ProbeTimeout))
	defer c.SetDeadline(time.Time{})
	w := bufio.NewWriter(c)
	if err := serve.WriteProbeRequest(w, id); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	frame, err := serve.ReadClientFrame(bufio.NewReaderSize(c, 64))
	if err != nil {
		return err
	}
	defer frame.Release()
	if frame.Type != serve.MsgProbe || frame.ProbeID != id {
		return fmt.Errorf("backend: probe answered with frame type %d", frame.Type)
	}
	if !frame.ProbeReady {
		return fmt.Errorf("backend: server %s is draining", c.RemoteAddr())
	}
	return nil
}

// rejoined records a restored connection and, when it is a down replica's
// first, re-runs the reopen barrier before readmitting the replica to
// routing — the same discipline as recovering to a consistent point before
// rejoining: a restarted server comes up with its batcher armed for a new
// series, and the barrier's metrics round trip both proves the ordering and
// baselines the new epoch's counters.
func (rep *replica) rejoined(rc *remoteConn) {
	rep.mu.Lock()
	rep.liveConns++
	barrier := rep.down.Load() && !rep.rejoining
	if barrier {
		rep.rejoining = true
	}
	rep.mu.Unlock()
	if !barrier {
		return
	}

	err := rep.rejoinBarrier(rc)
	ok := err == nil && !rc.isDead()
	rep.mu.Lock()
	rep.rejoining = false
	if ok {
		rep.intervals = append(rep.intervals, serve.DownInterval{
			Replica: rep.idx, Addr: rep.addr, Start: rep.downSince, End: time.Now(),
		})
		rep.rejoins++
		rep.down.Store(false)
		rep.mu.Unlock()
		rep.r.fleetUp()
		return
	}
	rep.mu.Unlock()
	// The barrier failed: the fresh connection died again. Its reader's
	// fail() restarts the supervisor; the replica stays down.
}

// isDead reports whether the slot's current epoch has already failed.
func (rc *remoteConn) isDead() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.dead
}

// rejoinBarrier re-arms the restarted replica's batcher (model-scoped
// MsgReopen) and fences it with a metrics round trip on the same
// connection: the server reads frames per connection in order, so when the
// reply arrives the reopen has been applied. The fetched snapshot baselines
// the new epoch for per-replica metrics merging.
func (rep *replica) rejoinBarrier(rc *remoteConn) error {
	err := rc.write(func(w io.Writer) error {
		return serve.WriteControlModel(w, serve.MsgReopen, rep.r.cfg.Model)
	})
	if err != nil {
		return err
	}
	snap, err := rep.metricsOn(rc)
	if err != nil {
		return err
	}
	rep.mu.Lock()
	rep.lastSnap = snap
	rep.hasLast = true
	rep.mu.Unlock()
	return nil
}

// FlushQueries implements loadgen.SUT: once every issued sample has been
// written (feeders drained), the end-of-series flush is forwarded to every
// replica so no batcher keeps holding partial batches open.
func (r *Remote) FlushQueries() {
	r.feeders.Wait()
	r.control(serve.MsgFlush)
}

// Reopen re-arms every replica's batcher for a new query series;
// loadgen.StartTest calls it at the start of every run. The metrics
// round-trip after the control frame is a barrier: each server reads frames
// per connection in order, so when the replies arrive the reopen has been
// applied — queries issued after Reopen returns (on any connection) can no
// longer be dispatched in the previous series' pass-through mode.
func (r *Remote) Reopen() {
	r.control(serve.MsgReopen)
	for _, rep := range r.replicas {
		_, _ = rep.serverMetrics()
	}
}

// liveConn returns the replica's first live connection slot, or nil when the
// replica is entirely down.
func (rep *replica) liveConn() *remoteConn {
	for _, rc := range rep.conns {
		if !rc.isDead() {
			return rc
		}
	}
	return nil
}

// control sends a control frame to every replica on its first live
// connection; a fully-down replica is skipped (its rejoin barrier re-arms it
// instead).
func (r *Remote) control(msgType byte) {
	for _, rep := range r.replicas {
		rc := rep.liveConn()
		if rc == nil {
			continue
		}
		err := rc.write(func(w io.Writer) error { return serve.WriteControlModel(w, msgType, r.cfg.Model) })
		if err != nil && !r.closing.Load() && !rep.down.Load() {
			r.errs.add(fmt.Errorf("backend %s: sending control frame %d to %s: %w", r.cfg.Name, msgType, rep.addr, err))
		}
	}
}

// Recovery returns the client-observed fault-tolerance record: every replica
// outage (closed intervals for rejoined replicas, an open interval for any
// replica still down), plus redial, failover-retry and transport-drop
// counters. Intervals are sorted by start time.
func (r *Remote) Recovery() serve.RecoveryStats {
	rec := serve.RecoveryStats{
		ConnRedials:    r.connRedials.Load(),
		Retries:        r.retries.Load(),
		TransportDrops: r.transportDrops.Load(),
	}
	for _, rep := range r.replicas {
		rep.mu.Lock()
		rec.DownIntervals = append(rec.DownIntervals, rep.intervals...)
		rec.Rejoins += rep.rejoins
		if rep.down.Load() {
			rec.DownIntervals = append(rec.DownIntervals, serve.DownInterval{
				Replica: rep.idx, Addr: rep.addr, Start: rep.downSince,
			})
		}
		rep.mu.Unlock()
	}
	sort.Slice(rec.DownIntervals, func(i, j int) bool {
		return rec.DownIntervals[i].Start.Before(rec.DownIntervals[j].Start)
	})
	return rec
}

// ServerMetrics fetches a metrics snapshot from every replica and merges
// them (serve.MergeSnapshots): counters sum, latency percentiles take the
// worst shard. The merged snapshot carries the Recovery record, so down/up
// intervals are visible exactly where the run's counters are reported. It
// fails only when no replica answers.
func (r *Remote) ServerMetrics() (serve.Snapshot, error) {
	snaps, err := r.ReplicaMetrics()
	if err != nil {
		return serve.Snapshot{}, err
	}
	var merged serve.Snapshot
	if len(snaps) == 1 {
		merged = snaps[0]
	} else {
		merged = serve.MergeSnapshots(snaps...)
	}
	rec := r.Recovery()
	merged.Recovery = &rec
	return merged, nil
}

// ReplicaMetrics fetches each replica's snapshot (in Addrs order). A replica
// that crashed and rejoined reports the merge of its pre-crash epochs' last
// known counters with the current server's live snapshot — summed once per
// epoch, never double counted — and a replica that is down right now still
// contributes its banked epochs. It fails when no replica yields anything.
func (r *Remote) ReplicaMetrics() ([]serve.Snapshot, error) {
	var (
		snaps   []serve.Snapshot
		lastErr error
	)
	for _, rep := range r.replicas {
		snap, err := rep.serverMetrics()
		if err != nil {
			rep.mu.Lock()
			epochs := append([]serve.Snapshot(nil), rep.lostEpochs...)
			rep.mu.Unlock()
			if len(epochs) == 0 {
				lastErr = err
				continue
			}
			if len(epochs) == 1 {
				snap = epochs[0]
			} else {
				snap = serve.MergeSnapshots(epochs...)
			}
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) == 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("backend %s: no replicas", r.cfg.Name)
		}
		return nil, lastErr
	}
	return snaps, nil
}

// serverMetrics fetches one replica's snapshot (the hosted model's when the
// client is model-addressed, the server's merged snapshot otherwise), folded
// with any pre-crash epochs the client banked for it.
func (rep *replica) serverMetrics() (serve.Snapshot, error) {
	rc := rep.liveConn()
	if rc == nil {
		return serve.Snapshot{}, fmt.Errorf("backend %s: replica %s has no live connections", rep.r.cfg.Name, rep.addr)
	}
	live, err := rep.metricsOn(rc)
	if err != nil {
		return serve.Snapshot{}, err
	}
	rep.mu.Lock()
	rep.lastSnap = live
	rep.hasLast = true
	epochs := append([]serve.Snapshot(nil), rep.lostEpochs...)
	rep.mu.Unlock()
	if len(epochs) == 0 {
		return live, nil
	}
	return serve.MergeSnapshots(append(epochs, live)...), nil
}

// metricsOn runs one metrics round trip on a specific connection.
func (rep *replica) metricsOn(rc *remoteConn) (serve.Snapshot, error) {
	r := rep.r
	var snap serve.Snapshot
	id := r.nextID.Add(1)
	ch := make(chan []byte, 1)
	rc.mu.Lock()
	if rc.dead {
		rc.mu.Unlock()
		return snap, fmt.Errorf("backend %s: replica %s connection is down", r.cfg.Name, rep.addr)
	}
	rc.metrics[id] = ch
	rc.mu.Unlock()

	if err := rc.write(func(w io.Writer) error { return serve.WriteMetricsRequestModel(w, id, r.cfg.Model) }); err != nil {
		rc.mu.Lock()
		delete(rc.metrics, id)
		rc.mu.Unlock()
		return snap, fmt.Errorf("backend %s: requesting metrics from %s: %w", r.cfg.Name, rep.addr, err)
	}
	select {
	case data, ok := <-ch:
		if !ok {
			return snap, fmt.Errorf("backend %s: replica %s closed before metrics arrived", r.cfg.Name, rep.addr)
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			return snap, fmt.Errorf("backend %s: decoding metrics from %s: %w", r.cfg.Name, rep.addr, err)
		}
		if snap.Error != "" {
			return snap, fmt.Errorf("backend %s: replica %s: %s", r.cfg.Name, rep.addr, snap.Error)
		}
		return snap, nil
	case <-time.After(10 * time.Second):
		rc.mu.Lock()
		delete(rc.metrics, id)
		rc.mu.Unlock()
		return snap, fmt.Errorf("backend %s: metrics request to %s timed out", r.cfg.Name, rep.addr)
	}
}

// Wait blocks until every issued request has been answered (or settled by a
// connection failure). The harness calls it after the LoadGen reports
// completion, like Native.Wait.
func (r *Remote) Wait() {
	r.feeders.Wait()
	r.inflight.Wait()
}

// Errors returns transport and server-side inference errors observed so far.
// Rejected and expired requests are NOT errors — they are shed load, counted
// by Rejected/Expired and reflected in the run's validity via dropped
// responses. Successful recoveries are not errors either: they are recorded
// in Recovery.
func (r *Remote) Errors() []error { return r.errs.all() }

// Rejected returns how many requests the replicas' admission control shed.
func (r *Remote) Rejected() int64 { return r.rejected.Load() }

// Expired returns how many requests expired past their deadline while queued.
func (r *Remote) Expired() int64 { return r.expired.Load() }

// TransportDrops returns how many requests settled as dropped after
// exhausting failover — the drops not explained by a reject or expiry.
func (r *Remote) TransportDrops() int64 { return r.transportDrops.Load() }

// DownReplicas returns how many replicas currently have no live connection.
// A replica that crashed and rejoined no longer counts; its outage is
// recorded in Recovery.
func (r *Remote) DownReplicas() int {
	n := 0
	for _, rep := range r.replicas {
		if rep.down.Load() {
			n++
		}
	}
	return n
}

// Close tears down the client's connections to every replica and stops the
// redial supervisors. In-flight requests settle as dropped without recording
// transport errors.
func (r *Remote) Close() error {
	var first error
	r.superMu.Lock()
	if r.closing.CompareAndSwap(false, true) {
		close(r.stop)
	}
	r.superMu.Unlock()
	for _, rep := range r.replicas {
		for _, rc := range rep.conns {
			rc.mu.Lock()
			c := rc.c
			rc.mu.Unlock()
			if c == nil {
				continue
			}
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	r.superWG.Wait()
	return first
}
