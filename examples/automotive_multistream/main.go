// Automotive multistream: the multicamera driver-assistance use case — a new
// query of N camera frames arrives every fixed interval and must finish
// before the next interval, or the interval is skipped. The reported metric
// is the largest N the system sustains with no more than 1% of queries
// producing skipped intervals.
//
// The example searches for the sustainable stream count of the two object
// detectors on simulated edge and data-center platforms, then validates one
// operating point with a wall-clock LoadGen run.
//
//	go run ./examples/automotive_multistream
package main

import (
	"fmt"
	"log"

	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/loadgen"
	"mlperf/internal/simhw"
)

func main() {
	tasks := []core.Task{core.ObjectDetectionLight, core.ObjectDetectionHeavy}
	platforms := []string{"edge-gpu-x1", "dc-gpu-g1", "dc-asic-a1"}

	fmt.Println("== sustainable concurrent streams (virtual-time search) ==")
	fmt.Printf("  %-26s %-14s %-18s %s\n", "TASK", "PLATFORM", "ARRIVAL INTERVAL", "STREAMS")
	chosen := struct {
		platform simhw.Platform
		workload simhw.Workload
		spec     core.TaskSpec
		streams  int
	}{}
	for _, task := range tasks {
		spec, err := core.Spec(task)
		if err != nil {
			log.Fatal(err)
		}
		workload := simhw.StandardWorkloads()[string(spec.ReferenceModel)]
		for _, name := range platforms {
			platform, err := simhw.FindPlatform(name)
			if err != nil {
				log.Fatal(err)
			}
			streams, err := simhw.MaxMultiStreamStreams(platform, workload, spec.MultiStreamArrivalInterval, 0.01,
				simhw.SearchOptions{Queries: 512, Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-26s %-14s %-18v %d\n", task, name, spec.MultiStreamArrivalInterval, streams)
			if task == core.ObjectDetectionLight && name == "edge-gpu-x1" {
				chosen.platform, chosen.workload, chosen.spec, chosen.streams = platform, workload, spec, streams
			}
		}
	}

	if chosen.streams == 0 {
		fmt.Println("\nno operating point to validate")
		return
	}

	// Validate a conservative operating point (75% of the searched maximum)
	// with the real LoadGen driving the simulated SUT in real time: goroutine
	// scheduling and sleep granularity add real overhead that the
	// virtual-time search does not see, exactly the kind of gap submitters
	// discover when they move from modelling to measurement.
	validateStreams := chosen.streams * 3 / 4
	if validateStreams < 1 {
		validateStreams = 1
	}
	sut, err := backend.NewSimulated(backend.SimulatedConfig{
		Platform: chosen.platform, Workload: chosen.workload, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	settings := loadgen.DefaultSettings(loadgen.MultiStream)
	settings.MultiStreamSamplesPerQuery = validateStreams
	settings.MultiStreamArrivalInterval = chosen.spec.MultiStreamArrivalInterval
	settings.MinQueryCount = 60
	settings.MinDuration = 0

	res, err := loadgen.StartTest(sut, &cameraQSL{total: 4096}, settings)
	if err != nil {
		log.Fatal(err)
	}
	sut.Wait()
	fmt.Printf("\n== wall-clock validation: %s on %s with %d streams (searched max %d) ==\n",
		chosen.spec.ReferenceModel, chosen.platform.Name, validateStreams, chosen.streams)
	fmt.Printf("  queries issued:     %d\n", res.QueriesIssued)
	fmt.Printf("  skipped intervals:  %d (%.2f%% of queries, limit 1%%)\n",
		res.SkippedIntervals, 100*float64(res.SkippedIntervals)/float64(res.QueriesIssued))
	fmt.Printf("  run valid:          %v %v\n", res.Valid, res.ValidityMessages)
	fmt.Printf("  reported metric:    %d streams\n", res.MultiStreamStreams)
}

// cameraQSL stands in for the multicamera frame source; the simulated SUT
// models time only, so samples carry no pixels.
type cameraQSL struct{ total int }

func (q *cameraQSL) Name() string                             { return "camera-frames" }
func (q *cameraQSL) TotalSampleCount() int                    { return q.total }
func (q *cameraQSL) PerformanceSampleCount() int              { return q.total }
func (q *cameraQSL) LoadSamplesToRAM(indices []int) error     { return nil }
func (q *cameraQSL) UnloadSamplesFromRAM(indices []int) error { return nil }
