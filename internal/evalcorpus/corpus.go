// Package evalcorpus regenerates the paper's evaluation-section analyses
// (Section VI). The original corpus was ~600 third-party submissions; here a
// synthetic corpus is constructed whose coverage matches the published
// closed-division counts of Table VI exactly, with systems drawn from the
// simulated platform catalogue and per-entry metrics computed by the
// virtual-time scenario simulator. Tables VI/VII and Figures 5-8 are then
// derived from this corpus.
package evalcorpus

import (
	"fmt"
	"sort"

	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/simhw"
	"mlperf/internal/stats"
)

// Record is one closed-division result: a (system, model, scenario) triple
// with its headline metric.
type Record struct {
	Platform  string
	Arch      simhw.Architecture
	Framework string
	Category  string
	Task      core.Task
	Model     string
	Scenario  loadgen.Scenario
	// Metric is the scenario's headline value (ms for single-stream, streams
	// for multistream, QPS for server, samples/s for offline); zero means the
	// platform could not meet the scenario's constraints.
	Metric float64
}

// Corpus is the synthetic closed-division result set.
type Corpus struct {
	Records []Record
}

// TableVICounts returns the published closed-division result counts per
// reference model and scenario (Table VI of the paper).
func TableVICounts() map[model.Name]map[loadgen.Scenario]int {
	return map[model.Name]map[loadgen.Scenario]int{
		model.GNMT: {
			loadgen.SingleStream: 2, loadgen.MultiStream: 0, loadgen.Server: 6, loadgen.Offline: 11,
		},
		model.MobileNetV1: {
			loadgen.SingleStream: 18, loadgen.MultiStream: 3, loadgen.Server: 5, loadgen.Offline: 11,
		},
		model.ResNet50: {
			loadgen.SingleStream: 19, loadgen.MultiStream: 5, loadgen.Server: 10, loadgen.Offline: 20,
		},
		model.SSDMobileNet: {
			loadgen.SingleStream: 8, loadgen.MultiStream: 3, loadgen.Server: 5, loadgen.Offline: 13,
		},
		model.SSDResNet34: {
			loadgen.SingleStream: 4, loadgen.MultiStream: 4, loadgen.Server: 7, loadgen.Offline: 12,
		},
	}
}

// TableVITotal returns the total number of closed-division results in
// Table VI (166, the count the paper ultimately released).
func TableVITotal() int {
	total := 0
	for _, row := range TableVICounts() {
		for _, n := range row {
			total += n
		}
	}
	return total
}

// Options configures corpus generation.
type Options struct {
	// Seed drives platform assignment and metric simulation.
	Seed uint64
	// SearchQueries is the virtual-time trial size used when computing
	// metrics (default 1024; larger is more faithful but slower).
	SearchQueries int
	// SkipMetrics leaves Record.Metric at zero, for analyses that only need
	// coverage (Tables VI/VII, Figures 5/7). This makes those analyses
	// instantaneous.
	SkipMetrics bool
}

func (o *Options) normalize() {
	if o.SearchQueries <= 0 {
		o.SearchQueries = 1024
	}
}

// Generate builds a corpus whose per-(model, scenario) coverage equals
// Table VI. Platforms are drawn from the catalogue with data-center GPUs
// weighted most heavily, matching the architecture mix of Figure 7.
func Generate(opts Options) (*Corpus, error) {
	opts.normalize()
	rng := stats.NewRNG(opts.Seed)
	pool := assignmentPool()
	counts := TableVICounts()

	// Deterministic iteration order over models and scenarios.
	modelNames := model.AllNames()
	scenarios := loadgen.AllScenarios()

	var corpus Corpus
	cursors := make(map[loadgen.Scenario]int)
	for _, m := range modelNames {
		task, err := core.TaskForModel(m)
		if err != nil {
			return nil, err
		}
		spec, err := core.Spec(task)
		if err != nil {
			return nil, err
		}
		for _, s := range scenarios {
			n := counts[m][s]
			scenarioPool := pool[s]
			for i := 0; i < n; i++ {
				p := scenarioPool[cursors[s]%len(scenarioPool)]
				cursors[s]++
				rec := Record{
					Platform:  p.Name,
					Arch:      p.Arch,
					Framework: p.Framework,
					Category:  p.Category,
					Task:      task,
					Model:     string(m),
					Scenario:  s,
				}
				if !opts.SkipMetrics {
					metric, err := simulateMetric(p, spec, s, simhw.SearchOptions{
						Queries: opts.SearchQueries,
						Seed:    opts.Seed ^ rng.Uint64(),
					})
					if err != nil {
						return nil, fmt.Errorf("evalcorpus: %s on %s/%v: %w", p.Name, m, s, err)
					}
					rec.Metric = metric
				}
				corpus.Records = append(corpus.Records, rec)
			}
		}
	}
	return &corpus, nil
}

// assignmentPool returns per-scenario platform rotations used to assign
// systems to results. Two properties of the published corpus are preserved:
// data-center GPUs and ASICs hold the most results (Figure 7), and the
// latency-constrained scenarios (server) and the bulk scenarios (offline,
// multistream) are dominated by edge/data-center systems while single-stream
// attracts everything down to phones and embedded parts.
func assignmentPool() map[loadgen.Scenario][]simhw.Platform {
	byName := make(map[string]simhw.Platform)
	for _, p := range simhw.Catalog() {
		byName[p.Name] = p
	}
	build := func(names []string) []simhw.Platform {
		pool := make([]simhw.Platform, 0, len(names))
		for _, name := range names {
			if p, ok := byName[name]; ok {
				pool = append(pool, p)
			}
		}
		return pool
	}
	// Single-stream: the full spectrum, embedded parts included.
	singleStream := build([]string{
		"smartphone-dsp-s1", "dc-gpu-g1", "smartphone-soc-s2", "edge-gpu-x1", "tablet-gpu-t1",
		"embedded-npu-e2", "dc-gpu-g2", "desktop-cpu-c1", "embedded-dsp-m1", "edge-fpga-f1",
		"dc-asic-a1", "server-cpu-c2", "dc-gpu-g3", "dc-dsp-d1", "edge-fpga-f2",
		"dc-asic-a2", "server-cpu-c3", "dc-fpga-f3", "dc-gpu-g1", "tablet-gpu-t1",
	})
	// Multistream: edge and data-center systems (automotive/industrial).
	multiStream := build([]string{
		"edge-gpu-x1", "dc-gpu-g1", "dc-asic-a1", "edge-fpga-f2", "dc-gpu-g2",
		"dc-fpga-f3", "server-cpu-c2", "dc-gpu-g3", "dc-dsp-d1", "edge-fpga-f1",
	})
	// Server and offline: data-center and server-class systems.
	datacenter := build([]string{
		"dc-gpu-g1", "dc-gpu-g2", "dc-asic-a1", "server-cpu-c2", "dc-gpu-g3",
		"dc-asic-a2", "dc-fpga-f3", "server-cpu-c3", "dc-gpu-g1", "dc-dsp-d1",
		"edge-gpu-x1", "dc-gpu-g2", "dc-asic-a1", "server-cpu-c2", "dc-gpu-g3",
	})
	return map[loadgen.Scenario][]simhw.Platform{
		loadgen.SingleStream: singleStream,
		loadgen.MultiStream:  multiStream,
		loadgen.Server:       datacenter,
		loadgen.Offline:      datacenter,
	}
}

// simulateMetric computes the scenario's headline metric for the platform.
func simulateMetric(p simhw.Platform, spec core.TaskSpec, s loadgen.Scenario, opts simhw.SearchOptions) (float64, error) {
	w, ok := simhw.StandardWorkloads()[string(spec.ReferenceModel)]
	if !ok {
		return 0, fmt.Errorf("no workload for %s", spec.ReferenceModel)
	}
	switch s {
	case loadgen.SingleStream:
		p90, err := simhw.SingleStreamP90(p, w, minInt(opts.Queries, 1024), opts.Seed)
		if err != nil {
			return 0, err
		}
		return float64(p90.Milliseconds()) + float64(p90.Microseconds()%1000)/1000, nil
	case loadgen.MultiStream:
		streams, err := simhw.MaxMultiStreamStreams(p, w, spec.MultiStreamArrivalInterval, 0.01, simhw.SearchOptions{
			Queries: minInt(opts.Queries, 256), Seed: opts.Seed,
		})
		if err != nil {
			return 0, err
		}
		return float64(streams), nil
	case loadgen.Server:
		qps, err := simhw.MaxServerQPS(p, w, spec.ServerLatencyBound, spec.ServerLatencyPercentile, opts)
		if err != nil {
			return 0, err
		}
		return qps, nil
	case loadgen.Offline:
		return simhw.OfflineThroughput(p, w, maxInt(opts.Queries, 4096), opts.Seed)
	default:
		return 0, fmt.Errorf("unknown scenario %v", s)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Coverage counts records per model and scenario (Table VI).
func (c *Corpus) Coverage() map[string]map[loadgen.Scenario]int {
	out := make(map[string]map[loadgen.Scenario]int)
	for _, r := range c.Records {
		if out[r.Model] == nil {
			out[r.Model] = make(map[loadgen.Scenario]int)
		}
		out[r.Model][r.Scenario]++
	}
	return out
}

// ModelShare returns each model's share of all results (Figure 5).
func (c *Corpus) ModelShare() map[string]float64 {
	counts := make(map[string]int)
	for _, r := range c.Records {
		counts[r.Model]++
	}
	out := make(map[string]float64, len(counts))
	if len(c.Records) == 0 {
		return out
	}
	for m, n := range counts {
		out[m] = float64(n) / float64(len(c.Records))
	}
	return out
}

// ArchitectureCounts returns the number of results per processor architecture
// (Figure 7).
func (c *Corpus) ArchitectureCounts() map[simhw.Architecture]int {
	out := make(map[simhw.Architecture]int)
	for _, r := range c.Records {
		out[r.Arch]++
	}
	return out
}

// FrameworkMatrix returns which software frameworks appeared on which
// processor architectures (Table VII).
func (c *Corpus) FrameworkMatrix() map[string]map[simhw.Architecture]bool {
	out := make(map[string]map[simhw.Architecture]bool)
	for _, r := range c.Records {
		if out[r.Framework] == nil {
			out[r.Framework] = make(map[simhw.Architecture]bool)
		}
		out[r.Framework][r.Arch] = true
	}
	return out
}

// RatioSeries is one system's Figure 6 series: the server-to-offline
// throughput ratio per model.
type RatioSeries struct {
	Platform string
	Ratios   map[string]float64 // model -> ratio in (0, 1]
}

// ServerToOfflineRatios evaluates the Figure 6 experiment: for the requested
// number of systems, the latency-bounded server throughput divided by the
// offline throughput, per model. Platforms that cannot meet the server
// latency bound for any model (e.g. phone-class parts) are skipped — the
// paper's Figure 6 likewise only plots systems that reported server results.
// Individual models a system cannot serve are reported with a zero ratio.
func ServerToOfflineRatios(systems int, opts Options) ([]RatioSeries, error) {
	opts.normalize()
	if systems <= 0 {
		return nil, fmt.Errorf("evalcorpus: system count must be positive, got %d", systems)
	}
	// Figure 6 compares systems that reported both server and offline
	// results, so draw from the server/offline assignment pool.
	pool := dedupePlatforms(assignmentPool()[loadgen.Server])
	var out []RatioSeries
	for i := 0; i < len(pool) && len(out) < systems; i++ {
		p := pool[i]
		series := RatioSeries{Platform: p.Name, Ratios: make(map[string]float64)}
		any := false
		for _, spec := range core.Suite() {
			metrics, err := harness.SimulatedSubmission(p, spec, simhw.SearchOptions{
				Queries: opts.SearchQueries, Seed: opts.Seed + uint64(i),
			})
			if err != nil {
				return nil, err
			}
			ratio := metrics.ServerToOfflineRatio()
			if ratio > 0 {
				any = true
			}
			series.Ratios[string(spec.ReferenceModel)] = ratio
		}
		if any {
			out = append(out, series)
		}
	}
	return out, nil
}

// dedupePlatforms preserves first-appearance order while removing duplicates.
func dedupePlatforms(pool []simhw.Platform) []simhw.Platform {
	seen := make(map[string]bool)
	var out []simhw.Platform
	for _, p := range pool {
		if !seen[p.Name] {
			seen[p.Name] = true
			out = append(out, p)
		}
	}
	return out
}

// RangeEntry is one Figure 8 bar: the spread of relative performance across
// systems for a (model, scenario) combination.
type RangeEntry struct {
	Model    string
	Scenario loadgen.Scenario
	Systems  int     // systems with a non-zero metric
	Spread   float64 // best metric divided by worst metric (>= 1)
}

// PerformanceRanges evaluates the Figure 8 experiment from the corpus: for
// every (model, scenario) with at least two measured systems, the ratio
// between the best and worst system. For the single-stream scenario lower
// latency is better, so the spread is worst/best latency.
func (c *Corpus) PerformanceRanges() []RangeEntry {
	type key struct {
		m string
		s loadgen.Scenario
	}
	grouped := make(map[key][]float64)
	for _, r := range c.Records {
		if r.Metric <= 0 {
			continue
		}
		k := key{m: r.Model, s: r.Scenario}
		grouped[k] = append(grouped[k], r.Metric)
	}
	var out []RangeEntry
	for k, values := range grouped {
		if len(values) < 2 {
			continue
		}
		min, max := values[0], values[0]
		for _, v := range values {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if min <= 0 {
			continue
		}
		out = append(out, RangeEntry{Model: k.m, Scenario: k.s, Systems: len(values), Spread: max / min})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		return out[i].Scenario < out[j].Scenario
	})
	return out
}
