package tensor

import "sync"

// Scratch is a bump-pointer arena for the intermediate tensors of one
// inference pass. Allocating every layer output and im2col buffer from a
// per-goroutine Scratch lets steady-state inference run without touching the
// garbage collector: the arena grows to the pass's high-water mark on the
// first few passes and is then recycled wholesale by Reset.
//
// A Scratch is not safe for concurrent use; use one per goroutine (GetScratch
// hands out pooled instances). Reset invalidates every tensor and slice
// previously returned by the arena — callers must copy anything that outlives
// the pass (see Tensor.Clone).
type Scratch struct {
	data    []float32
	dataOff int
	headers []Tensor
	hdrOff  int
	dims    []int
	dimOff  int

	// overflow tracks demand beyond the current slabs so Reset can grow them
	// to the high-water mark instead of thrashing.
	dataOverflow, hdrOverflow, dimOverflow int
}

// NewScratch returns an empty arena; it grows on demand.
func NewScratch() *Scratch { return &Scratch{} }

// Reset recycles the arena, growing its slabs to cover everything the
// previous pass asked for. All previously returned tensors become invalid.
func (s *Scratch) Reset() {
	if s.dataOverflow > 0 {
		s.data = make([]float32, s.dataOff+s.dataOverflow)
	}
	if s.hdrOverflow > 0 {
		s.headers = make([]Tensor, s.hdrOff+s.hdrOverflow)
	}
	if s.dimOverflow > 0 {
		s.dims = make([]int, s.dimOff+s.dimOverflow)
	}
	s.dataOff, s.hdrOff, s.dimOff = 0, 0, 0
	s.dataOverflow, s.hdrOverflow, s.dimOverflow = 0, 0, 0
}

// Floats returns an arena-backed slice of n float32s. The contents are NOT
// zeroed: they hold whatever a previous pass left behind, so callers must
// fully overwrite the slice.
func (s *Scratch) Floats(n int) []float32 {
	if s.dataOff+n <= len(s.data) {
		v := s.data[s.dataOff : s.dataOff+n : s.dataOff+n]
		s.dataOff += n
		return v
	}
	s.dataOverflow += n
	return make([]float32, n)
}

// Tensor returns an arena-backed tensor with the given shape. Like Floats,
// the element storage is not zeroed; it is intended as the destination of
// *Into kernels, which fully overwrite their output.
func (s *Scratch) Tensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: Scratch.Tensor dimensions must be positive")
		}
		n *= d
	}

	var dims []int
	if s.dimOff+len(shape) <= len(s.dims) {
		dims = s.dims[s.dimOff : s.dimOff+len(shape) : s.dimOff+len(shape)]
		s.dimOff += len(shape)
	} else {
		s.dimOverflow += len(shape)
		dims = make([]int, len(shape))
	}
	copy(dims, shape)

	var t *Tensor
	if s.hdrOff < len(s.headers) {
		t = &s.headers[s.hdrOff]
		s.hdrOff++
	} else {
		s.hdrOverflow++
		t = new(Tensor)
	}
	t.shape = dims
	t.data = s.Floats(n)
	return t
}

// CloneTensor returns an arena-backed deep copy of t.
func (s *Scratch) CloneTensor(t *Tensor) *Tensor {
	c := s.Tensor(t.shape...)
	copy(c.data, t.data)
	return c
}

// scratchPool recycles Scratch arenas across inference calls.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// GetScratch returns a recycled (already Reset) arena from the process-wide
// pool. Pair with PutScratch when the pass's results have been extracted.
func GetScratch() *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.Reset()
	return s
}

// PutScratch returns an arena to the pool. The caller must not use the arena
// or any tensor allocated from it afterwards.
func PutScratch(s *Scratch) { scratchPool.Put(s) }
