package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"mlperf/internal/payload"
)

func TestBufClassSizing(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{4096, 6}, {1 << 24, bufPoolClasses - 1}, {1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := bufClass(c.n); got != c.want {
			t.Errorf("bufClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAcquireBufferContract(t *testing.T) {
	for _, n := range []int{1, 64, 100, 4096, 1 << 20} {
		b := AcquireBuffer(n)
		if len(b.B) != 0 {
			t.Errorf("AcquireBuffer(%d) returned len %d, want 0", n, len(b.B))
		}
		if cap(b.B) < n {
			t.Errorf("AcquireBuffer(%d) returned cap %d", n, cap(b.B))
		}
		b.Release()
	}
}

func TestBufferReleaseReclassifies(t *testing.T) {
	// Grow a small buffer well past its class before releasing. The pool's
	// invariant is that a class never hands out a buffer smaller than it
	// promises, so the released class must be fully covered by the capacity.
	b := AcquireBuffer(64)
	b.B = append(b.B, make([]byte, 10000)...)
	grown := cap(b.B)
	b.Release()
	if b.class < 0 {
		t.Fatalf("grown in-range buffer dropped (class %d)", b.class)
	}
	if promised := 1 << (int(b.class) + bufPoolMinBits); promised > grown {
		t.Errorf("class %d promises %d bytes but buffer caps at %d", b.class, promised, grown)
	}
}

func TestOversizeBufferBypassesPool(t *testing.T) {
	before := ReadBufferPoolStats()
	b := AcquireBuffer(maxFrameBytes + 1)
	if b.class != -1 {
		t.Errorf("oversize buffer got class %d", b.class)
	}
	if cap(b.B) < maxFrameBytes+1 {
		t.Errorf("oversize cap %d", cap(b.B))
	}
	b.Release() // must be a no-op, not a pool insert
	after := ReadBufferPoolStats()
	if after.Oversized != before.Oversized+1 {
		t.Errorf("oversized counter %d -> %d", before.Oversized, after.Oversized)
	}
	if after.Puts != before.Puts {
		t.Error("oversize release was filed into the pool")
	}
}

func TestBufferPoolStatsCount(t *testing.T) {
	before := ReadBufferPoolStats()
	b := AcquireBuffer(256)
	b.Release()
	after := ReadBufferPoolStats()
	if after.Gets != before.Gets+1 {
		t.Errorf("gets %d -> %d", before.Gets, after.Gets)
	}
	if after.Puts != before.Puts+1 {
		t.Errorf("puts %d -> %d", before.Puts, after.Puts)
	}
}

// The steady-state swarm wire path — request framing on the client, payload
// encode + response framing on the server, pooled frame read + in-place
// decode back on the client — must allocate nothing once the pools are warm.
// This is the allocation-regression gate CI runs.
func TestWirePathZeroAlloc(t *testing.T) {
	req := PredictRequest{ID: 1, SampleIndex: 3, Deadline: time.Time{}}

	// Pre-encode one response frame to replay through the client reader.
	respFrame := appendPredictResponseFrame(nil, 1, StatusOK, payload.AppendClass(nil, 7))
	stream := bytes.NewReader(nil)
	reader := bufio.NewReader(stream)

	// Warm the pools.
	_ = WritePredictRequest(io.Discard, req)

	if n := testing.AllocsPerRun(200, func() {
		if err := WritePredictRequest(io.Discard, req); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("client request framing allocates %v/op", n)
	}

	if n := testing.AllocsPerRun(200, func() {
		// The server's finish() shape: header, id, status and payload encoded
		// back-to-back into one pooled frame.
		buf := AcquireBuffer(frameHeaderBytes + 9 + 64)
		b := beginFrame(buf.B)
		b = binary.BigEndian.AppendUint64(b, 42)
		b = append(b, byte(StatusOK))
		b = payload.AppendClass(b, 7)
		buf.B = endFrame(b, 0, MsgPredict)
		buf.Release()
	}); n != 0 {
		t.Errorf("server response framing allocates %v/op", n)
	}

	if n := testing.AllocsPerRun(200, func() {
		stream.Reset(respFrame)
		reader.Reset(stream)
		frame, err := ReadClientFrame(reader)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := payload.DecodeClass(frame.Predict.Data); err != nil {
			t.Fatal(err)
		}
		frame.Release()
	}); n != 0 {
		t.Errorf("client response read+decode allocates %v/op", n)
	}
}
