package dataset

import (
	"testing"

	"mlperf/internal/metrics"
	"mlperf/internal/tensor"
)

func imgCfg() ImageConfig {
	return ImageConfig{Samples: 64, Classes: 10, Channels: 3, Height: 8, Width: 8, Seed: 1}
}

func TestSyntheticImages(t *testing.T) {
	ds, err := NewSyntheticImages(imgCfg())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Kind() != KindImageClassification {
		t.Errorf("kind = %v", ds.Kind())
	}
	if ds.Size() != 64 || ds.Classes() != 10 {
		t.Fatalf("size/classes = %d/%d", ds.Size(), ds.Classes())
	}
	if ds.PerformanceSampleCount() != 64 {
		t.Errorf("perf sample count = %d", ds.PerformanceSampleCount())
	}
	s, err := ds.Sample(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Index != 5 || s.Image == nil {
		t.Error("sample missing fields")
	}
	shape := s.Image.Shape()
	if shape[0] != 3 || shape[1] != 8 || shape[2] != 8 {
		t.Errorf("image shape = %v", shape)
	}
	if s.Label < 0 || s.Label >= 10 {
		t.Errorf("label out of range: %d", s.Label)
	}
	if _, err := ds.Sample(64); err == nil {
		t.Error("out-of-range index: expected error")
	}
	if _, err := ds.Sample(-1); err == nil {
		t.Error("negative index: expected error")
	}
}

func TestSyntheticImagesDeterminism(t *testing.T) {
	a, _ := NewSyntheticImages(imgCfg())
	b, _ := NewSyntheticImages(imgCfg())
	sa, _ := a.Sample(3)
	sb, _ := b.Sample(3)
	if sa.Label != sb.Label || !tensor.Equalish(sa.Image, sb.Image, 0) {
		t.Error("same-seed data sets differ")
	}
	cfg := imgCfg()
	cfg.Seed = 2
	c, _ := NewSyntheticImages(cfg)
	sc, _ := c.Sample(3)
	if tensor.Equalish(sa.Image, sc.Image, 0) {
		t.Error("different-seed data sets identical")
	}
}

func TestSyntheticImagesConfigErrors(t *testing.T) {
	bad := []ImageConfig{
		{Samples: 0, Classes: 10, Channels: 3, Height: 8, Width: 8},
		{Samples: 8, Classes: 1, Channels: 3, Height: 8, Width: 8},
		{Samples: 8, Classes: 10, Channels: 0, Height: 8, Width: 8},
	}
	for i, cfg := range bad {
		if _, err := NewSyntheticImages(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestSetLabel(t *testing.T) {
	ds, _ := NewSyntheticImages(imgCfg())
	if err := ds.SetLabel(0, 7); err != nil {
		t.Fatal(err)
	}
	s, _ := ds.Sample(0)
	if s.Label != 7 {
		t.Errorf("label = %d after SetLabel", s.Label)
	}
	if err := ds.SetLabel(0, 99); err == nil {
		t.Error("label out of range: expected error")
	}
	if err := ds.SetLabel(999, 1); err == nil {
		t.Error("index out of range: expected error")
	}
}

func TestSyntheticDetection(t *testing.T) {
	cfg := imgCfg()
	cfg.MaxBoxes = 3
	ds, err := NewSyntheticDetection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Kind() != KindObjectDetection {
		t.Errorf("kind = %v", ds.Kind())
	}
	for i := 0; i < ds.Size(); i++ {
		s, err := ds.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Boxes) == 0 || len(s.Boxes) > 3 {
			t.Fatalf("sample %d has %d boxes", i, len(s.Boxes))
		}
		for _, b := range s.Boxes {
			if b.X1 < 0 || b.Y1 < 0 || b.X2 > 1 || b.Y2 > 1 || b.Area() <= 0 {
				t.Fatalf("invalid box %+v", b)
			}
		}
	}
	if err := ds.SetBoxes(0, []metrics.Box{{X1: 0, Y1: 0, X2: 1, Y2: 1, Class: 0}}); err != nil {
		t.Fatal(err)
	}
	s, _ := ds.Sample(0)
	if len(s.Boxes) != 1 {
		t.Error("SetBoxes did not replace boxes")
	}
	if err := ds.SetBoxes(-1, nil); err == nil {
		t.Error("bad index: expected error")
	}
}

func TestSyntheticText(t *testing.T) {
	ds, err := NewSyntheticText(TextConfig{Samples: 32, Vocab: 64, MinLen: 4, MaxLen: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Kind() != KindTranslation {
		t.Errorf("kind = %v", ds.Kind())
	}
	if ds.Vocab() != 64 {
		t.Errorf("vocab = %d", ds.Vocab())
	}
	for i := 0; i < ds.Size(); i++ {
		s, err := ds.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Tokens) < 4 || len(s.Tokens) > 10 {
			t.Fatalf("sample %d source length %d", i, len(s.Tokens))
		}
		if len(s.RefTokens) != len(s.Tokens) {
			t.Fatalf("sample %d reference length mismatch", i)
		}
		for _, tok := range s.Tokens {
			if tok < 2 || tok >= 64 {
				t.Fatalf("token %d outside reserved range", tok)
			}
		}
	}
	if err := ds.SetReference(0, []int{5, 6}); err != nil {
		t.Fatal(err)
	}
	s, _ := ds.Sample(0)
	if len(s.RefTokens) != 2 {
		t.Error("SetReference did not replace reference")
	}
	if _, err := NewSyntheticText(TextConfig{Samples: 0, Vocab: 64}); err == nil {
		t.Error("zero samples: expected error")
	}
	if _, err := NewSyntheticText(TextConfig{Samples: 4, Vocab: 2}); err == nil {
		t.Error("tiny vocab: expected error")
	}
}

func TestCalibrationSet(t *testing.T) {
	ds, _ := NewSyntheticImages(imgCfg())
	cal, err := CalibrationSet(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal) != 16 || cal[0] != 0 || cal[15] != 15 {
		t.Errorf("calibration set = %v", cal)
	}
	// Requesting more than available clamps.
	cal, err = CalibrationSet(ds, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal) != ds.Size() {
		t.Errorf("clamped calibration size = %d", len(cal))
	}
	if _, err := CalibrationSet(ds, 0); err == nil {
		t.Error("zero calibration size: expected error")
	}
}

func TestPerfSampleCountDefaults(t *testing.T) {
	cfg := imgCfg()
	cfg.Samples = 3000
	ds, err := NewSyntheticImages(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.PerformanceSampleCount() != 1024 {
		t.Errorf("default perf sample count = %d, want 1024", ds.PerformanceSampleCount())
	}
	cfg.PerfSamples = 5000 // more than samples: clamped
	ds2, err := NewSyntheticImages(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.PerformanceSampleCount() != 3000 {
		t.Errorf("clamped perf sample count = %d", ds2.PerformanceSampleCount())
	}
}
