package accuracy

import (
	"strings"
	"testing"

	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/metrics"
	"mlperf/internal/payload"
)

func classificationFixture(t *testing.T) (*dataset.SyntheticImages, []loadgen.AccuracyEntry) {
	t.Helper()
	ds, err := dataset.NewSyntheticImages(dataset.ImageConfig{
		Samples: 20, Classes: 5, Channels: 1, Height: 4, Width: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Predictions match ground truth for the first 15 samples (75% accuracy).
	var log []loadgen.AccuracyEntry
	for i := 0; i < ds.Size(); i++ {
		s, _ := ds.Sample(i)
		pred := s.Label
		if i >= 15 {
			pred = (s.Label + 1) % 5
		}
		data, err := payload.EncodeClass(pred)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, loadgen.AccuracyEntry{QueryID: uint64(i), SampleIndex: i, Data: data})
	}
	return ds, log
}

func TestCheckClassification(t *testing.T) {
	ds, log := classificationFixture(t)
	acc, err := CheckClassification(log, ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", acc)
	}
	if _, err := CheckClassification(nil, ds); err == nil {
		t.Error("empty log: expected error")
	}
	bad := []loadgen.AccuracyEntry{{SampleIndex: 0, Data: []byte("junk")}}
	if _, err := CheckClassification(bad, ds); err == nil {
		t.Error("corrupt payload: expected error")
	}
	outOfRange := []loadgen.AccuracyEntry{{SampleIndex: 999, Data: log[0].Data}}
	if _, err := CheckClassification(outOfRange, ds); err == nil {
		t.Error("out-of-range sample: expected error")
	}
}

func TestCheckDetection(t *testing.T) {
	ds, err := dataset.NewSyntheticDetection(dataset.ImageConfig{
		Samples: 10, Classes: 3, Channels: 1, Height: 4, Width: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Perfect detections: echo the ground truth with scores.
	var log []loadgen.AccuracyEntry
	for i := 0; i < ds.Size(); i++ {
		s, _ := ds.Sample(i)
		boxes := make([]metrics.Box, len(s.Boxes))
		copy(boxes, s.Boxes)
		for j := range boxes {
			boxes[j].Score = 0.9
		}
		data, err := payload.EncodeBoxes(boxes)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, loadgen.AccuracyEntry{SampleIndex: i, Data: data})
	}
	mAP, err := CheckDetection(log, ds, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if mAP < 0.99 {
		t.Errorf("perfect detections mAP = %v", mAP)
	}
	if _, err := CheckDetection(nil, ds, 0.5); err == nil {
		t.Error("empty log: expected error")
	}
}

func TestCheckTranslation(t *testing.T) {
	ds, err := dataset.NewSyntheticText(dataset.TextConfig{Samples: 12, Vocab: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var log []loadgen.AccuracyEntry
	for i := 0; i < ds.Size(); i++ {
		s, _ := ds.Sample(i)
		data, err := payload.EncodeTokens(s.RefTokens)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, loadgen.AccuracyEntry{SampleIndex: i, Data: data})
	}
	bleu, err := CheckTranslation(log, ds)
	if err != nil {
		t.Fatal(err)
	}
	if bleu < 99 {
		t.Errorf("perfect hypotheses BLEU = %v", bleu)
	}
	if _, err := CheckTranslation(nil, ds); err == nil {
		t.Error("empty log: expected error")
	}
}

func TestCheckDispatchAndReport(t *testing.T) {
	ds, log := classificationFixture(t)
	report, err := Check(log, ds, 0.75, 0.74)
	if err != nil {
		t.Fatal(err)
	}
	if report.Metric != "top1" || !report.Pass {
		t.Errorf("report = %+v", report)
	}
	if report.Samples != 20 {
		t.Errorf("samples = %d", report.Samples)
	}
	if !strings.Contains(report.String(), "PASSED") {
		t.Errorf("String() = %q", report.String())
	}
	failing, err := Check(log, ds, 0.75, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if failing.Pass {
		t.Error("target above measured value must fail")
	}
	if !strings.Contains(failing.String(), "FAILED") {
		t.Errorf("String() = %q", failing.String())
	}
}

type unknownDataset struct{ dataset.Dataset }

func TestCheckUnsupportedDataset(t *testing.T) {
	_, log := classificationFixture(t)
	if _, err := Check(log, unknownDataset{}, 1, 1); err == nil {
		t.Error("unsupported dataset type: expected error")
	}
}

func TestVerifyConsistency(t *testing.T) {
	_, accLog := classificationFixture(t)
	// A performance log that sampled a subset of the same responses.
	perfLog := []loadgen.AccuracyEntry{accLog[0], accLog[5], accLog[19]}
	n, err := VerifyConsistency(perfLog, accLog)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("compared %d entries, want 3", n)
	}
	// Mismatching data must be flagged.
	tampered, _ := payload.EncodeClass(4)
	bad := []loadgen.AccuracyEntry{{SampleIndex: accLog[0].SampleIndex, Data: tampered}}
	if _, err := VerifyConsistency(bad, accLog); err == nil {
		t.Error("tampered response: expected error")
	}
	// A sample missing from the accuracy log must be flagged.
	missing := []loadgen.AccuracyEntry{{SampleIndex: 9999, Data: accLog[0].Data}}
	if _, err := VerifyConsistency(missing, accLog); err == nil {
		t.Error("missing reference entry: expected error")
	}
	if _, err := VerifyConsistency(perfLog, nil); err == nil {
		t.Error("empty accuracy log: expected error")
	}
	// An empty performance log trivially passes (nothing was sampled).
	if n, err := VerifyConsistency(nil, accLog); err != nil || n != 0 {
		t.Errorf("empty performance log: n=%d err=%v", n, err)
	}
}
