package backend

import (
	"fmt"
	"sync"
)

// flowWindow is a replica's resizable in-flight window: a counting semaphore
// whose capacity can move while acquirers are blocked on it. It replaces the
// fixed-capacity channel the router used before live resizing existed —
// acquire blocks while the window is full (the backpressure the LoadGen is
// meant to observe), release wakes one waiter, and setLimit retunes the
// capacity in place: growth wakes every waiter so the newly legal slots fill
// immediately; shrink simply stops admitting until enough releases bring the
// count under the new bound (in-flight requests are never cancelled).
type flowWindow struct {
	mu    sync.Mutex
	cond  *sync.Cond
	limit int
	used  int
}

func newFlowWindow(limit int) *flowWindow {
	w := &flowWindow{limit: limit}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// acquire blocks until an in-flight slot is free, then takes it.
func (w *flowWindow) acquire() {
	w.mu.Lock()
	for w.used >= w.limit {
		w.cond.Wait()
	}
	w.used++
	w.mu.Unlock()
}

// release frees one slot and wakes one waiter.
func (w *flowWindow) release() {
	w.mu.Lock()
	w.used--
	w.cond.Signal()
	w.mu.Unlock()
}

// load returns the current in-flight count (the router's least-loaded key).
func (w *flowWindow) load() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.used
}

// setLimit retunes the window capacity (floored at 1) and wakes every
// waiter so they re-check against the new bound.
func (w *flowWindow) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	w.mu.Lock()
	w.limit = n
	w.cond.Broadcast()
	w.mu.Unlock()
}

// limitNow returns the current capacity.
func (w *flowWindow) limitNow() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.limit
}

// SetMaxInFlight retunes every replica's in-flight window to n (floored at
// 1) without disturbing requests already in flight — the client half of a
// live capacity resize, paired with the server half (serve.Server.Resize).
func (r *Remote) SetMaxInFlight(n int) {
	for _, rep := range r.replicas {
		rep.window.setLimit(n)
	}
}

// InFlightLimit returns the current per-replica in-flight window capacity.
func (r *Remote) InFlightLimit() int {
	if len(r.replicas) == 0 {
		return 0
	}
	return r.replicas[0].window.limitNow()
}

// Retire administratively removes replica i from routing: new requests skip
// it even though its connections stay healthy. It is the client half of a
// graceful replica retirement — call it before draining the server so no
// request races the drain into a reject — and it refuses to retire the last
// routable replica. Requests already in flight on the replica settle
// normally.
func (r *Remote) Retire(i int) error {
	if i < 0 || i >= len(r.replicas) {
		return fmt.Errorf("backend %s: no replica %d", r.cfg.Name, i)
	}
	routable := 0
	for j, rep := range r.replicas {
		if j != i && !rep.retired.Load() {
			routable++
		}
	}
	if routable == 0 {
		return fmt.Errorf("backend %s: cannot retire replica %d: it is the last routable replica", r.cfg.Name, i)
	}
	r.replicas[i].retired.Store(true)
	return nil
}

// Readmit reverses Retire: replica i becomes routable again as soon as its
// connections are live (a replica readmitted while down is picked up by its
// redial supervisors' probe handshake and reopen barrier, exactly like a
// crashed replica rejoining).
func (r *Remote) Readmit(i int) error {
	if i < 0 || i >= len(r.replicas) {
		return fmt.Errorf("backend %s: no replica %d", r.cfg.Name, i)
	}
	r.replicas[i].retired.Store(false)
	return nil
}

// Retired reports whether replica i is administratively out of routing.
func (r *Remote) Retired(i int) bool {
	if i < 0 || i >= len(r.replicas) {
		return false
	}
	return r.replicas[i].retired.Load()
}
