// Package trace is a low-overhead span subsystem that follows sampled
// requests across the serving process boundary.
//
// A request gets a trace ID stamped by the client router at issue time and
// carried to the server in a V3 predict frame (see internal/serve); both
// sides record fixed-slot stage durations — the client its issue, connection
// acquire, write, await and decode phases, the server its admit, queue wait,
// batch assembly, service, encode and reply phases — into per-model
// lock-free ring buffers. Two capture policies compose:
//
//   - Head sampling: one request in every Config.SampleEvery is traced end
//     to end (trace ID on the wire, all slots measured on both sides).
//   - Tail capture: every request's end-to-end latency feeds a streaming
//     p99 estimate, and any request landing at or beyond the current p99
//     is retained regardless of the sampling coin, so the traces that
//     explain a latency-bound run's validity are never lost to the coin.
//
// Retained records export three ways: a Chrome trace-event JSON dump
// (WriteChrome) that opens directly in Perfetto, per-stage latency
// histogram families for a Prometheus scrape (WritePrometheus), and a
// tail-attribution report (Attribute) that classifies ≥p99 traces as
// queue-, service- or wire-dominated.
//
// The tracer is safe for concurrent use from every serving goroutine. With
// a nil *Tracer every hook is a no-op; with tracing enabled the unsampled
// path costs one atomic increment plus one tail-histogram update per
// request.
package trace

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Stage indexes one fixed span slot in a Record. Client-side stages cover
// the request's life in backend.Remote; server-side stages cover its life
// in serve.Server. A single traced request yields client slots measured by
// the client and server slots measured by the server and folded into the
// client's record from the V3 response frame.
type Stage int

const (
	// StageIssue: loadgen hand-off until the router starts sending
	// (scheduling, replica choice bookkeeping).
	StageIssue Stage = iota
	// StageAcquire: waiting for an in-flight window slot and a live
	// connection.
	StageAcquire
	// StageWrite: encoding and flushing the request frame onto the socket.
	StageWrite
	// StageAwait: from flush until the reader goroutine picks up the
	// response frame (wire + server time).
	StageAwait
	// StageDecode: decoding the response and settling it with the loadgen.
	StageDecode

	// StageAdmit: socket read-off until the request enters the admission
	// queue.
	StageAdmit
	// StageQueue: waiting in the admission queue for the batcher.
	StageQueue
	// StageAssembly: from batch take until the batch begins service.
	StageAssembly
	// StageService: inference (the request's share is its batch's run).
	StageService
	// StageEncode: encoding the model output into the response payload.
	StageEncode
	// StageReply: writing the response frame back onto the socket.
	StageReply

	// NumStages is the number of fixed span slots in a Record.
	NumStages
)

// stageNames are the wire/export names, indexed by Stage.
var stageNames = [NumStages]string{
	"issue", "acquire", "write", "await", "decode",
	"admit", "queue", "assembly", "service", "encode", "reply",
}

// String returns the stage's export name.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Origin says which side of the wire recorded a Record.
type Origin uint8

const (
	// OriginClient: recorded by backend.Remote.
	OriginClient Origin = iota
	// OriginServer: recorded by serve.Server.
	OriginServer
)

// String returns the origin's export name.
func (o Origin) String() string {
	if o == OriginServer {
		return "server"
	}
	return "client"
}

// Record is one retained request trace. Stage slots hold durations in
// nanoseconds; a zero slot means the stage was not measured (an untraced
// tail-captured request carries only its end-to-end latency and, on the
// server side, its queue/service split).
type Record struct {
	// TraceID is the wire-propagated id for head-sampled requests, 0 for
	// requests retained by tail capture alone.
	TraceID uint64
	// Model names the engine the request addressed.
	Model string
	// Origin is the side that recorded this record.
	Origin Origin
	// Start is the record's wall-clock start (UnixNano): issue time for
	// client records, request receipt for server records.
	Start int64
	// End2End is the request's total latency in nanoseconds as seen by
	// Origin (client: issue → settle; server: receipt → reply written).
	End2End int64
	// Tail marks a record retained because End2End landed at or beyond the
	// tracker's p99 estimate at observation time.
	Tail bool
	// HasServer marks a client record whose server slots were folded in
	// from the V3 response frame.
	HasServer bool
	// ServerStart is the server's receipt wall clock (UnixNano) when
	// HasServer is set, 0 otherwise. Client and server share a clock on a
	// loopback deployment; across machines it is the server's own clock.
	ServerStart int64
	// Stages holds per-stage durations in nanoseconds.
	Stages [NumStages]int64
}

// ServerNanos returns the summed server-side stage durations.
func (r *Record) ServerNanos() int64 {
	var total int64
	for s := StageAdmit; s <= StageReply; s++ {
		total += r.Stages[s]
	}
	return total
}

// ClientNanos returns the summed client-side stage durations.
func (r *Record) ClientNanos() int64 {
	var total int64
	for s := StageIssue; s <= StageDecode; s++ {
		total += r.Stages[s]
	}
	return total
}

// WireSpans is the server-measured span block carried back to the client in
// a V3 response frame. Durations are nanoseconds. The reply stage is absent
// by construction: the server cannot know the response write's duration
// before writing it, so reply lands only in the server's own ring.
type WireSpans struct {
	// RecvUnixNano is the server's receipt wall clock.
	RecvUnixNano int64
	// Admit, Queue, Assembly, Service, Encode are the server stage
	// durations up to (not including) the response write.
	Admit, Queue, Assembly, Service, Encode int64
}

// Config parameterizes a Tracer.
type Config struct {
	// SampleEvery is the head-sampling period: one request in every
	// SampleEvery gets a trace ID and full span capture. Values below 1
	// mean every request. The tail-capture path is independent of this
	// coin and always on.
	SampleEvery int
	// RingSize is the per-model retained-record ring capacity, rounded up
	// to a power of two. 0 means a 4096-record default.
	RingSize int
}

// defaultRingSize bounds per-model retained records when Config.RingSize is
// zero: 4096 records ≈ a few hundred KiB per model.
const defaultRingSize = 4096

// Tracer allocates trace IDs, flips the sampling coin and owns the
// per-model rings, tail trackers and stage histograms. A nil *Tracer is a
// valid no-op tracer.
type Tracer struct {
	sampleEvery uint64
	ringSize    int

	seq atomic.Uint64

	mu     sync.RWMutex
	models map[string]*ModelTrace
}

// New builds a Tracer. See Config for knob semantics.
func New(cfg Config) *Tracer {
	every := cfg.SampleEvery
	if every < 1 {
		every = 1
	}
	size := cfg.RingSize
	if size <= 0 {
		size = defaultRingSize
	}
	// Round up to a power of two so ring indexing is a mask.
	size = 1 << bits.Len(uint(size-1))
	return &Tracer{
		sampleEvery: uint64(every),
		ringSize:    size,
		models:      make(map[string]*ModelTrace),
	}
}

// SampleEvery reports the head-sampling period (0 for a nil tracer).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleEvery)
}

// Issue allocates the next request's trace identity: a non-zero trace ID
// when the sampling coin lands on this request, 0 otherwise. On a nil
// tracer it returns 0 (never sampled).
func (t *Tracer) Issue() uint64 {
	if t == nil {
		return 0
	}
	n := t.seq.Add(1)
	if n%t.sampleEvery != 0 {
		return 0
	}
	return n
}

// Model returns the per-model trace state, creating it on first use. Call
// sites on hot paths should cache the result. Returns nil on a nil tracer.
func (t *Tracer) Model(name string) *ModelTrace {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	mt := t.models[name]
	t.mu.RUnlock()
	if mt != nil {
		return mt
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if mt = t.models[name]; mt != nil {
		return mt
	}
	mt = newModelTrace(name, t.ringSize)
	t.models[name] = mt
	return mt
}

// Records snapshots every model's retained records, oldest first within
// each model. The copy is safe to hold while tracing continues.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	names := make([]string, 0, len(t.models))
	for name := range t.models {
		names = append(names, name)
	}
	t.mu.RUnlock()
	sortStrings(names)
	var out []Record
	for _, name := range names {
		out = append(out, t.Model(name).Snapshot()...)
	}
	return out
}

// sortStrings is an insertion sort: model counts are tiny and this keeps
// the package dependency-free.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ModelTrace holds one model's retained-record ring, tail tracker and
// per-stage histograms. All methods are safe for concurrent use and a nil
// receiver is a no-op.
type ModelTrace struct {
	name string
	ring ring
	tail tailTracker
	hist stageHistograms
}

func newModelTrace(name string, ringSize int) *ModelTrace {
	mt := &ModelTrace{name: name}
	mt.ring.init(ringSize)
	return mt
}

// Name returns the model name this state belongs to.
func (m *ModelTrace) Name() string {
	if m == nil {
		return ""
	}
	return m.name
}

// Observe feeds one request's end-to-end latency into the tail tracker and
// the end-to-end histogram, and reports whether the request qualifies for
// tail capture (it landed at or beyond the current p99 estimate). Call for
// every request, sampled or not.
func (m *ModelTrace) Observe(e2eNanos int64) bool {
	if m == nil {
		return false
	}
	m.hist.observeEnd2End(e2eNanos)
	return m.tail.observe(e2eNanos)
}

// TailThreshold returns the current p99 capture threshold in nanoseconds
// (0 until enough observations have accumulated to establish one).
func (m *ModelTrace) TailThreshold() int64 {
	if m == nil {
		return 0
	}
	return m.tail.threshold.Load()
}

// Publish retains a record in the ring and folds its measured stage
// durations into the per-stage histograms.
func (m *ModelTrace) Publish(rec *Record) {
	if m == nil || rec == nil {
		return
	}
	for s := Stage(0); s < NumStages; s++ {
		if d := rec.Stages[s]; d > 0 {
			m.hist.observeStage(s, d)
		}
	}
	m.ring.put(rec)
}

// Snapshot copies the ring's retained records, oldest first.
func (m *ModelTrace) Snapshot() []Record {
	if m == nil {
		return nil
	}
	return m.ring.snapshot()
}

// ring is a lock-free bounded record buffer: an atomic cursor picks the
// slot, an atomic pointer store publishes the record. Writers never block
// and never tear (a slot transition is one pointer swap); readers see each
// slot either empty, old or new — never mixed. Records are allocated by the
// producer, so at sampling rates like 1/64 the allocation cost is noise.
type ring struct {
	slots  []atomic.Pointer[Record]
	cursor atomic.Uint64
	mask   uint64
}

func (r *ring) init(size int) {
	r.slots = make([]atomic.Pointer[Record], size)
	r.mask = uint64(size - 1)
}

func (r *ring) put(rec *Record) {
	i := r.cursor.Add(1) - 1
	r.slots[i&r.mask].Store(rec)
}

func (r *ring) snapshot() []Record {
	n := r.cursor.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	count := n
	if n > size {
		start = n - size
		count = size
	}
	out := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		if rec := r.slots[(start+i)&r.mask].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	return out
}

// tailTracker keeps a streaming p99 estimate over end-to-end latencies
// using quarter-octave buckets: each power-of-two range is split into four
// sub-buckets (≈19% wide), so the estimate tracks the true p99 even when
// the whole distribution sits inside one octave — plain power-of-two
// buckets would then put the p99's lower bound below the median and flag
// most of the run as "tail". The estimate is the lower bound of the bucket
// holding the 99th percentile, refreshed every tailRecompute observations —
// cheap, lock free, and conservative in the right direction: a request at
// or beyond the estimate is at or beyond the true p99's bucket.
type tailTracker struct {
	buckets   [tailBuckets]atomic.Uint64
	count     atomic.Uint64
	threshold atomic.Int64
}

// tailBuckets covers 65 octaves (the full int64 nanosecond range, plus a
// zero bucket) at four sub-buckets each.
const tailBuckets = 65 * 4

// tailRecompute is how many observations pass between threshold refreshes.
const tailRecompute = 256

// tailMinSamples is how many observations must accumulate before tail
// capture arms; below it every request would trivially be "the tail".
const tailMinSamples = 128

// tailBucket maps a latency to its quarter-octave bucket index. Octave o
// (values in [2^(o-1), 2^o)) contributes buckets 4o..4o+3, split on the two
// mantissa bits below the leading one.
func tailBucket(nanos int64) int {
	u := uint64(nanos)
	o := bits.Len64(u) // 0 for 0; else floor(log2(u))+1
	if o < 3 {
		// Octaves too narrow to quarter (0, 1, 2, [4,8) has sub-bucket
		// width <1ns for the first two): use their base bucket alone.
		return o * 4
	}
	sub := (u >> (o - 3)) & 3
	return o*4 + int(sub)
}

// tailBucketFloor is the inverse: the smallest latency landing in bucket i.
func tailBucketFloor(i int) int64 {
	o, sub := i/4, int64(i%4)
	if o == 0 {
		return 0
	}
	if o < 3 {
		return int64(1) << (o - 1)
	}
	return (4 + sub) << (o - 3)
}

func (t *tailTracker) observe(nanos int64) bool {
	if nanos < 0 {
		nanos = 0
	}
	t.buckets[tailBucket(nanos)].Add(1)
	n := t.count.Add(1)
	if n >= tailMinSamples && n%tailRecompute == 0 {
		t.recompute()
	}
	thr := t.threshold.Load()
	return thr > 0 && nanos >= thr
}

func (t *tailTracker) recompute() {
	var counts [tailBuckets]uint64
	var total uint64
	for i := range t.buckets {
		counts[i] = t.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return
	}
	// Rank of the p99 observation (1-based); walk buckets up to it.
	rank := (total*99 + 99) / 100
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			thr := tailBucketFloor(i)
			if thr < 1 {
				thr = 1
			}
			t.threshold.Store(thr)
			return
		}
	}
}
