package capacity

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDetectEnvCgroup2(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "cpu.max"), "200000 100000\n")
	writeFile(t, filepath.Join(root, "memory.max"), "1073741824\n")
	env := detectEnv(root)
	if env.Source != "cgroup2" {
		t.Fatalf("source = %q, want cgroup2", env.Source)
	}
	if env.CPULimit != 2 {
		t.Errorf("CPULimit = %g, want 2", env.CPULimit)
	}
	if env.MemoryLimit != 1<<30 {
		t.Errorf("MemoryLimit = %d, want %d", env.MemoryLimit, 1<<30)
	}
	if env.MaxWorkersSuggestion() != 4 {
		t.Errorf("MaxWorkersSuggestion = %d, want 4", env.MaxWorkersSuggestion())
	}
}

func TestDetectEnvCgroup2Unlimited(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "cpu.max"), "max 100000\n")
	writeFile(t, filepath.Join(root, "memory.max"), "max\n")
	env := detectEnv(root)
	if env.Source != "cgroup2" {
		t.Fatalf("source = %q, want cgroup2", env.Source)
	}
	// "max" quota means no CPU limit: the runtime's core count applies.
	if env.CPULimit != float64(runtime.NumCPU()) {
		t.Errorf("CPULimit = %g, want runtime %d", env.CPULimit, runtime.NumCPU())
	}
	if env.MemoryLimit != 0 {
		t.Errorf("MemoryLimit = %d, want 0 (unlimited)", env.MemoryLimit)
	}
}

func TestDetectEnvCgroup1(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "cpu", "cpu.cfs_quota_us"), "150000\n")
	writeFile(t, filepath.Join(root, "cpu", "cpu.cfs_period_us"), "100000\n")
	writeFile(t, filepath.Join(root, "memory", "memory.limit_in_bytes"), "536870912\n")
	env := detectEnv(root)
	if env.Source != "cgroup1" {
		t.Fatalf("source = %q, want cgroup1", env.Source)
	}
	if env.CPULimit != 1.5 {
		t.Errorf("CPULimit = %g, want 1.5", env.CPULimit)
	}
	if env.MemoryLimit != 512<<20 {
		t.Errorf("MemoryLimit = %d, want %d", env.MemoryLimit, 512<<20)
	}
}

func TestDetectEnvCgroup1Unlimited(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "cpu", "cpu.cfs_quota_us"), "-1\n")
	writeFile(t, filepath.Join(root, "cpu", "cpu.cfs_period_us"), "100000\n")
	// PAGE_COUNTER_MAX-style huge value means "no memory limit".
	writeFile(t, filepath.Join(root, "memory", "memory.limit_in_bytes"), "9223372036854771712\n")
	env := detectEnv(root)
	if env.Source != "cgroup1" {
		t.Fatalf("source = %q, want cgroup1", env.Source)
	}
	if env.CPULimit != float64(runtime.NumCPU()) {
		t.Errorf("CPULimit = %g, want runtime %d", env.CPULimit, runtime.NumCPU())
	}
	if env.MemoryLimit != 0 {
		t.Errorf("MemoryLimit = %d, want 0 (unlimited)", env.MemoryLimit)
	}
}

func TestDetectEnvRuntimeFallback(t *testing.T) {
	env := detectEnv(t.TempDir()) // no cgroup files at all
	if env.Source != "runtime" {
		t.Fatalf("source = %q, want runtime", env.Source)
	}
	if env.CPULimit != float64(runtime.NumCPU()) {
		t.Errorf("CPULimit = %g, want runtime %d", env.CPULimit, runtime.NumCPU())
	}
	if env.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("GOMAXPROCS = %d, want %d", env.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
}

func TestMaxWorkersSuggestionFloor(t *testing.T) {
	if got := (Env{CPULimit: 0.2}).MaxWorkersSuggestion(); got != 1 {
		t.Errorf("fractional-core suggestion = %d, want floor of 1", got)
	}
	if got := (Env{CPULimit: 2.5}).MaxWorkersSuggestion(); got != 5 {
		t.Errorf("2.5-core suggestion = %d, want 5", got)
	}
}
