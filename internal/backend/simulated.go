package backend

import (
	"fmt"
	"sync"
	"time"

	"mlperf/internal/loadgen"
	"mlperf/internal/payload"
	"mlperf/internal/simhw"
	"mlperf/internal/stats"
)

// SimulatedConfig configures a Simulated backend.
type SimulatedConfig struct {
	// Platform and Workload define the service-time model.
	Platform simhw.Platform
	Workload simhw.Workload
	// TimeScale divides every service time so wall-clock runs of slow
	// platforms stay practical (e.g. 100 makes a 50 ms inference take 0.5 ms).
	// Zero or one means real time.
	TimeScale float64
	// Seed drives the latency jitter.
	Seed uint64
	// Oracle, when set, produces the response payload for a sample index so
	// accuracy mode remains meaningful; otherwise an empty payload is sent.
	Oracle func(sampleIndex int) ([]byte, error)
}

// Simulated is a loadgen.SUT backed by a simhw performance model rather than
// real computation: it sleeps the modelled service time and responds.
type Simulated struct {
	cfg   SimulatedConfig
	units chan struct{}
	mu    sync.Mutex
	rng   *stats.RNG
	errs  errorLog
	wg    sync.WaitGroup
}

// NewSimulated validates the configuration and returns the backend.
func NewSimulated(cfg SimulatedConfig) (*Simulated, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("backend: TimeScale must be non-negative, got %v", cfg.TimeScale)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	return &Simulated{
		cfg:   cfg,
		units: make(chan struct{}, cfg.Platform.Parallelism),
		rng:   stats.NewRNG(cfg.Seed),
	}, nil
}

// Name implements loadgen.SUT.
func (s *Simulated) Name() string {
	return fmt.Sprintf("simulated/%s/%s", s.cfg.Platform.Name, s.cfg.Workload.Name)
}

// Platform returns the modelled platform.
func (s *Simulated) Platform() simhw.Platform { return s.cfg.Platform }

// IssueQuery implements loadgen.SUT: the whole query executes as one batch on
// the next free execution unit after the modelled service time elapses.
func (s *Simulated) IssueQuery(q *loadgen.Query) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.units <- struct{}{}
		defer func() { <-s.units }()

		batch := len(q.Samples)
		s.mu.Lock()
		base, err := s.cfg.Platform.ServiceTime(s.cfg.Workload, batch)
		noise := 1.0
		if err == nil {
			if s.cfg.Platform.Jitter > 0 {
				noise += s.cfg.Platform.Jitter * s.rng.NormFloat64()
			}
			if s.cfg.Workload.Variability > 0 {
				noise += s.cfg.Workload.Variability * s.rng.NormFloat64()
			}
			if noise < 0.05 {
				noise = 0.05
			}
		}
		s.mu.Unlock()
		if err != nil {
			s.errs.add(err)
			q.Complete(emptyResponses(q))
			return
		}
		service := time.Duration(float64(base) * noise / s.cfg.TimeScale)
		time.Sleep(service)

		responses := make([]loadgen.Response, len(q.Samples))
		for i, smp := range q.Samples {
			var data []byte
			if s.cfg.Oracle != nil {
				d, oerr := s.cfg.Oracle(smp.Index)
				if oerr != nil {
					s.errs.add(oerr)
				} else {
					data = d
				}
			}
			if data == nil {
				data, _ = payload.EncodeClass(smp.Index)
			}
			responses[i] = loadgen.Response{SampleID: smp.ID, Data: data}
		}
		q.Complete(responses)
	}()
}

func emptyResponses(q *loadgen.Query) []loadgen.Response {
	out := make([]loadgen.Response, len(q.Samples))
	for i, smp := range q.Samples {
		out[i] = loadgen.Response{SampleID: smp.ID}
	}
	return out
}

// FlushQueries implements loadgen.SUT.
func (s *Simulated) FlushQueries() {}

// Wait blocks until all in-flight simulated work finishes.
func (s *Simulated) Wait() { s.wg.Wait() }

// Errors returns modelling errors observed during the run.
func (s *Simulated) Errors() []error { return s.errs.all() }
