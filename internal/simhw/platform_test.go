package simhw

import (
	"testing"
	"time"
)

func testPlatform() Platform {
	return Platform{
		Name: "test-gpu", Arch: GPU, Framework: "TensorRT", Category: "available",
		PeakGOPS: 1000, MinUtilization: 0.1, MaxBatch: 32,
		QueryOverhead: 50 * time.Microsecond, Parallelism: 2, Jitter: 0.05,
	}
}

func testWorkload() Workload {
	return Workload{Name: "resnet50-v1.5", OpsPerSample: 8_200_000, Variability: 0.02}
}

func TestPlatformValidate(t *testing.T) {
	if err := testPlatform().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Platform){
		func(p *Platform) { p.Name = "" },
		func(p *Platform) { p.PeakGOPS = 0 },
		func(p *Platform) { p.MinUtilization = 0 },
		func(p *Platform) { p.MinUtilization = 1.5 },
		func(p *Platform) { p.MaxBatch = 0 },
		func(p *Platform) { p.Parallelism = 0 },
		func(p *Platform) { p.QueryOverhead = -time.Second },
		func(p *Platform) { p.Jitter = -1 },
	}
	for i, mutate := range bad {
		p := testPlatform()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := testWorkload().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Workload{Name: "", OpsPerSample: 1}).Validate(); err == nil {
		t.Error("empty name: expected error")
	}
	if err := (Workload{Name: "x", OpsPerSample: 0}).Validate(); err == nil {
		t.Error("zero ops: expected error")
	}
	if err := (Workload{Name: "x", OpsPerSample: 1, Variability: -1}).Validate(); err == nil {
		t.Error("negative variability: expected error")
	}
}

func TestServiceTimeBatchingEconomics(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	t1, err := p.ServiceTime(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	t32, err := p.ServiceTime(w, 32)
	if err != nil {
		t.Fatal(err)
	}
	if t32 <= t1 {
		t.Errorf("batch of 32 (%v) should take longer than batch of 1 (%v)", t32, t1)
	}
	// Per-sample cost must drop with batching on a wide accelerator.
	perSample1 := float64(t1)
	perSample32 := float64(t32) / 32
	if perSample32 >= perSample1 {
		t.Errorf("per-sample time did not improve with batching: %v vs %v", perSample32, perSample1)
	}
	// Requests beyond MaxBatch are clamped.
	t64, err := p.ServiceTime(w, 64)
	if err != nil {
		t.Fatal(err)
	}
	if t64 != t32 {
		t.Errorf("batch beyond MaxBatch not clamped: %v vs %v", t64, t32)
	}
	if _, err := p.ServiceTime(w, 0); err == nil {
		t.Error("zero batch: expected error")
	}
}

func TestServiceTimeScalesWithOps(t *testing.T) {
	p := testPlatform()
	light := Workload{Name: "light", OpsPerSample: 1_000_000}
	heavy := Workload{Name: "heavy", OpsPerSample: 100_000_000}
	tl, err := p.ServiceTime(light, 1)
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.ServiceTime(heavy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if th <= tl {
		t.Errorf("heavier workload not slower: %v vs %v", th, tl)
	}
}

func TestPeakThroughput(t *testing.T) {
	p := testPlatform()
	w := testWorkload()
	peak, err := p.PeakThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	if peak <= 0 {
		t.Fatal("peak throughput must be positive")
	}
	// Peak (batched, all units) must exceed the single-stream rate.
	single, err := p.SingleSampleLatency(w)
	if err != nil {
		t.Fatal(err)
	}
	singleRate := 1 / single.Seconds()
	if peak <= singleRate {
		t.Errorf("peak throughput %v not above single-stream rate %v", peak, singleRate)
	}
}

func TestCatalogIsValidAndDiverse(t *testing.T) {
	platforms := Catalog()
	if len(platforms) < 10 {
		t.Fatalf("catalogue has only %d platforms", len(platforms))
	}
	archs := map[Architecture]int{}
	names := map[string]bool{}
	for _, p := range platforms {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate platform name %s", p.Name)
		}
		names[p.Name] = true
		archs[p.Arch]++
		if p.Framework == "" || p.Category == "" {
			t.Errorf("%s: missing framework or category", p.Name)
		}
	}
	for _, a := range AllArchitectures() {
		if archs[a] == 0 {
			t.Errorf("no platform with architecture %s (Figure 7 needs all five)", a)
		}
	}
}

// TestCatalogPerformanceSpan verifies the Section VI-D observation that the
// performance delta between the smallest and largest systems is on the order
// of four orders of magnitude.
func TestCatalogPerformanceSpan(t *testing.T) {
	w := StandardWorkloads()["mobilenet-v1"]
	min, max := 0.0, 0.0
	for i, p := range Catalog() {
		tput, err := p.PeakThroughput(w)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || tput < min {
			min = tput
		}
		if tput > max {
			max = tput
		}
	}
	span := max / min
	if span < 1000 {
		t.Errorf("throughput span = %.0fx, want >= 1000x (paper reports ~10,000x)", span)
	}
}

func TestFindPlatform(t *testing.T) {
	p, err := FindPlatform("dc-gpu-g1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Arch != GPU {
		t.Errorf("dc-gpu-g1 arch = %s", p.Arch)
	}
	if _, err := FindPlatform("nonexistent"); err == nil {
		t.Error("unknown platform: expected error")
	}
}

func TestStandardWorkloads(t *testing.T) {
	ws := StandardWorkloads()
	if len(ws) != 5 {
		t.Fatalf("expected 5 standard workloads, got %d", len(ws))
	}
	for name, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Table I ordering: SSD-ResNet-34 is the heaviest, MobileNet the lightest.
	if ws["ssd-resnet34"].OpsPerSample <= ws["resnet50-v1.5"].OpsPerSample {
		t.Error("SSD-ResNet-34 should be heavier than ResNet-50")
	}
	if ws["mobilenet-v1"].OpsPerSample >= ws["resnet50-v1.5"].OpsPerSample {
		t.Error("MobileNet should be lighter than ResNet-50")
	}
	if ws["gnmt"].Variability <= ws["resnet50-v1.5"].Variability {
		t.Error("GNMT should have higher variability than fixed-size vision inputs")
	}
}
