package model

import (
	"os"
	"path/filepath"
	"testing"
)

// writeSysfsCache fabricates a /sys/devices/system/cpu/cpu0/cache layout.
func writeSysfsCache(t *testing.T, indexes []map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for i, attrs := range indexes {
		idx := filepath.Join(dir, "index"+string(rune('0'+i)))
		if err := os.Mkdir(idx, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, value := range attrs {
			if err := os.WriteFile(filepath.Join(idx, name), []byte(value+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dir
}

func TestDetectCacheBudget(t *testing.T) {
	// Env override beats the probe.
	t.Setenv(microBatchCacheBudgetEnv, "262144")
	dir := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "2048K"},
	})
	if got := detectCacheBudget(dir); got != 262144 {
		t.Errorf("env override: budget = %d, want 262144", got)
	}

	// Probe: 3/4 of L2.
	t.Setenv(microBatchCacheBudgetEnv, "")
	if got, want := detectCacheBudget(dir), (2048<<10)*3/4; got != want {
		t.Errorf("probed budget = %d, want %d", got, want)
	}
	// A 512 KiB L2 reproduces the historical 384 KiB default exactly.
	half := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "512K"},
	})
	if got := detectCacheBudget(half); got != defaultMicroBatchCacheBudget {
		t.Errorf("512K L2 budget = %d, want the historical %d", got, defaultMicroBatchCacheBudget)
	}

	// Clamps.
	tiny := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "64K"},
	})
	if got := detectCacheBudget(tiny); got != minMicroBatchCacheBudget {
		t.Errorf("tiny L2 budget = %d, want floor %d", got, minMicroBatchCacheBudget)
	}
	huge := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "1G"},
	})
	if got := detectCacheBudget(huge); got != maxMicroBatchCacheBudget {
		t.Errorf("huge L2 budget = %d, want ceiling %d", got, maxMicroBatchCacheBudget)
	}

	// No probe, no env: historical default.
	if got := detectCacheBudget(t.TempDir()); got != defaultMicroBatchCacheBudget {
		t.Errorf("fallback budget = %d, want %d", got, defaultMicroBatchCacheBudget)
	}

	// Garbage env falls through to the probe.
	t.Setenv(microBatchCacheBudgetEnv, "not-a-number")
	if got, want := detectCacheBudget(dir), (2048<<10)*3/4; got != want {
		t.Errorf("garbage env: budget = %d, want probed %d", got, want)
	}
}

// TestMicroBatchBudgetAffectsDerivation closes the loop: a larger budget must
// deepen a derived micro-batch — on an ALREADY-BUILT engine, because
// PreferredBatch derives from the live budget rather than freezing it at
// construction (so calibration reaches running replicas).
func TestMicroBatchBudgetAffectsDerivation(t *testing.T) {
	defer setMicroBatchCacheBudgetForTest(defaultMicroBatchCacheBudget)()
	m, err := NewResNet50Mini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	narrow := m.PreferredBatch()

	SetMicroBatchCacheBudget(4 * defaultMicroBatchCacheBudget)
	if deep := m.PreferredBatch(); deep <= narrow {
		t.Errorf("4x budget micro-batch = %d, want deeper than %d", deep, narrow)
	}
}
