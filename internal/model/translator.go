package model

import (
	"fmt"

	"mlperf/internal/nn"
	"mlperf/internal/tensor"
)

// TranslatorConfig configures the miniature GNMT-style translator.
type TranslatorConfig struct {
	Vocab         int
	EmbedDim      int
	HiddenSize    int
	EncoderLayers int
	DecoderLayers int
	MaxLen        int
	Seed          uint64
}

func (c *TranslatorConfig) normalize() error {
	if c.Vocab < 8 {
		return fmt.Errorf("model: translator vocabulary must hold at least 8 tokens, got %d", c.Vocab)
	}
	if c.EmbedDim <= 0 {
		c.EmbedDim = 16
	}
	if c.HiddenSize <= 0 {
		c.HiddenSize = 32
	}
	if c.EncoderLayers <= 0 {
		c.EncoderLayers = 2
	}
	if c.DecoderLayers <= 0 {
		c.DecoderLayers = 2
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 24
	}
	return nil
}

// GNMTMini is the miniature recurrent encoder–decoder translation model.
type GNMTMini struct {
	info Info
	net  *nn.Seq2Seq
}

// NewGNMTMini builds the translator.
func NewGNMTMini(cfg TranslatorConfig) (*GNMTMini, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	net, err := nn.NewSeq2Seq("gnmt-mini", nn.Seq2SeqConfig{
		SrcVocab: cfg.Vocab, DstVocab: cfg.Vocab,
		EmbedDim: cfg.EmbedDim, HiddenSize: cfg.HiddenSize,
		EncoderLayers: cfg.EncoderLayers, DecoderLayers: cfg.DecoderLayers,
		MaxLen: cfg.MaxLen, Seed: cfg.Seed ^ 0x69273,
	})
	if err != nil {
		return nil, err
	}
	info, err := Describe(GNMT)
	if err != nil {
		return nil, err
	}
	info.Params = net.ParamCount()
	info.OpsPerInput = net.OpsPerToken() * int64(cfg.MaxLen)
	return &GNMTMini{info: info, net: net}, nil
}

// Info returns the model's metadata with Params and OpsPerInput filled in.
func (g *GNMTMini) Info() Info { return g.info }

// Translate implements Translator.
func (g *GNMTMini) Translate(tokens []int) ([]int, error) {
	return g.net.Translate(tokens)
}

// Weights implements WeightedModel.
func (g *GNMTMini) Weights() []*tensor.Tensor {
	var out []*tensor.Tensor
	out = append(out, g.net.SrcEmbed.Weights, g.net.DstEmbed.Weights)
	for _, c := range g.net.Encoder {
		out = append(out, c.Wx, c.Wh, c.Bias)
	}
	for _, c := range g.net.Decoder {
		out = append(out, c.Wx, c.Wh, c.Bias)
	}
	out = append(out, g.net.Output.Weights, g.net.Output.Bias)
	return out
}
