package metrics

import (
	"fmt"
	"sort"
)

// Box is an axis-aligned bounding box with a class label and, for
// predictions, a confidence score. Coordinates are normalized to [0, 1].
type Box struct {
	X1, Y1, X2, Y2 float64
	Class          int
	Score          float64
}

// Area returns the box area (zero for degenerate boxes).
func (b Box) Area() float64 {
	w := b.X2 - b.X1
	h := b.Y2 - b.Y1
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// IoU returns the intersection-over-union of two boxes.
func IoU(a, b Box) float64 {
	ix1 := maxF(a.X1, b.X1)
	iy1 := maxF(a.Y1, b.Y1)
	ix2 := minF(a.X2, b.X2)
	iy2 := minF(a.Y2, b.Y2)
	iw := ix2 - ix1
	ih := iy2 - iy1
	if iw <= 0 || ih <= 0 {
		return 0
	}
	inter := iw * ih
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Detection ties a set of predicted boxes to a sample index.
type Detection struct {
	SampleIndex int
	Boxes       []Box
}

// GroundTruth ties the annotated boxes to a sample index.
type GroundTruth struct {
	SampleIndex int
	Boxes       []Box
}

// MeanAveragePrecision computes class-averaged AP at the given IoU threshold
// (COCO-style greedy matching, all-point interpolation). The detection task
// in the paper reports mAP on COCO; 0.5 is the threshold used here.
func MeanAveragePrecision(detections []Detection, truths []GroundTruth, iouThreshold float64) (float64, error) {
	if iouThreshold <= 0 || iouThreshold > 1 {
		return 0, fmt.Errorf("metrics: IoU threshold %v outside (0,1]", iouThreshold)
	}
	if len(truths) == 0 {
		return 0, fmt.Errorf("metrics: no ground truth provided")
	}

	gtBySample := make(map[int][]Box, len(truths))
	classes := make(map[int]bool)
	totalGT := make(map[int]int)
	for _, t := range truths {
		gtBySample[t.SampleIndex] = t.Boxes
		for _, b := range t.Boxes {
			classes[b.Class] = true
			totalGT[b.Class]++
		}
	}

	type scoredDet struct {
		sample int
		box    Box
	}
	detsByClass := make(map[int][]scoredDet)
	for _, d := range detections {
		for _, b := range d.Boxes {
			detsByClass[b.Class] = append(detsByClass[b.Class], scoredDet{sample: d.SampleIndex, box: b})
		}
	}

	var apSum float64
	var classCount int
	for class := range classes {
		nGT := totalGT[class]
		if nGT == 0 {
			continue
		}
		classCount++
		dets := detsByClass[class]
		sort.SliceStable(dets, func(i, j int) bool { return dets[i].box.Score > dets[j].box.Score })

		matched := make(map[int][]bool) // sample -> per-GT-box matched flag
		tp := make([]int, len(dets))
		fp := make([]int, len(dets))
		for i, d := range dets {
			gts := gtBySample[d.sample]
			if matched[d.sample] == nil {
				matched[d.sample] = make([]bool, len(gts))
			}
			bestIoU := 0.0
			bestJ := -1
			for j, g := range gts {
				if g.Class != class {
					continue
				}
				iou := IoU(d.box, g)
				if iou > bestIoU {
					bestIoU = iou
					bestJ = j
				}
			}
			if bestJ >= 0 && bestIoU >= iouThreshold && !matched[d.sample][bestJ] {
				matched[d.sample][bestJ] = true
				tp[i] = 1
			} else {
				fp[i] = 1
			}
		}

		// Precision-recall curve and all-point interpolated AP.
		var ap float64
		cumTP, cumFP := 0, 0
		prevRecall := 0.0
		maxPrecisionFrom := make([]float64, len(dets)+1)
		precisions := make([]float64, len(dets))
		recalls := make([]float64, len(dets))
		for i := range dets {
			cumTP += tp[i]
			cumFP += fp[i]
			precisions[i] = float64(cumTP) / float64(cumTP+cumFP)
			recalls[i] = float64(cumTP) / float64(nGT)
		}
		// Interpolate precision: max precision at recall >= r.
		for i := len(dets) - 1; i >= 0; i-- {
			maxPrecisionFrom[i] = maxF(maxPrecisionFrom[i+1], precisions[i])
		}
		for i := range dets {
			ap += (recalls[i] - prevRecall) * maxPrecisionFrom[i]
			prevRecall = recalls[i]
		}
		apSum += ap
	}
	if classCount == 0 {
		return 0, fmt.Errorf("metrics: ground truth holds no boxes")
	}
	return apSum / float64(classCount), nil
}
