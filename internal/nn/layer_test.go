package nn

import (
	"testing"

	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

func TestConvLayerShapesAndOps(t *testing.T) {
	rng := stats.NewRNG(1)
	conv := NewConv("c1", 3, 8, 3, 2, 1, rng)
	in := []int{3, 16, 16}
	out, err := conv.OutputShape(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 8 || out[1] != 8 || out[2] != 8 {
		t.Fatalf("output shape = %v", out)
	}
	if conv.ParamCount() != int64(8*3*3*3+8) {
		t.Errorf("param count = %d", conv.ParamCount())
	}
	ops, err := conv.Ops(in)
	if err != nil {
		t.Fatal(err)
	}
	if ops != int64(2*3*3*3)*8*8*8 {
		t.Errorf("ops = %d", ops)
	}
	x := tensor.MustNew(3, 16, 16)
	x.Fill(0.5)
	y, err := conv.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	ys := y.Shape()
	if ys[0] != out[0] || ys[1] != out[1] || ys[2] != out[2] {
		t.Errorf("Forward shape %v != OutputShape %v", ys, out)
	}
	// ReLU fused: no negatives.
	for _, v := range y.Data() {
		if v < 0 {
			t.Fatal("fused ReLU did not clamp negatives")
		}
	}
}

func TestConvLayerShapeErrors(t *testing.T) {
	conv := NewConv("c", 3, 4, 3, 1, 0, stats.NewRNG(1))
	if _, err := conv.OutputShape([]int{4, 8, 8}); err == nil {
		t.Error("channel mismatch: expected error")
	}
	if _, err := conv.OutputShape([]int{3, 2, 2}); err == nil {
		t.Error("too-small input: expected error")
	}
	if _, err := conv.Ops([]int{3, 2}); err == nil {
		t.Error("bad rank: expected error")
	}
}

func TestDepthwiseConvLayer(t *testing.T) {
	dw := NewDepthwiseConv("dw", 4, 3, 1, 1, stats.NewRNG(2))
	out, err := dw.OutputShape([]int{4, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 4 || out[1] != 10 || out[2] != 10 {
		t.Fatalf("shape = %v", out)
	}
	x := tensor.MustNew(4, 10, 10)
	x.Fill(1)
	y, err := dw.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data() {
		if v < 0 || v > 6 {
			t.Fatal("ReLU6 bounds violated")
		}
	}
}

func TestDenseLayer(t *testing.T) {
	d := NewDense("fc", 4, 3, false, stats.NewRNG(3))
	if d.ParamCount() != 4*3+3 {
		t.Errorf("params = %d", d.ParamCount())
	}
	ops, err := d.Ops([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if ops != 24 {
		t.Errorf("ops = %d", ops)
	}
	x := tensor.MustNew(4)
	x.Fill(1)
	y, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Len() != 3 {
		t.Errorf("output length = %d", y.Len())
	}
	if _, err := d.Forward(tensor.MustNew(5)); err == nil {
		t.Error("wrong input size: expected error")
	}
}

func TestPoolAndSoftmaxLayers(t *testing.T) {
	mp := NewMaxPool("mp", 2, 2)
	out, err := mp.OutputShape([]int{3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != 4 {
		t.Errorf("maxpool shape = %v", out)
	}
	if mp.ParamCount() != 0 {
		t.Error("maxpool has no parameters")
	}
	gap := NewGlobalAvgPool("gap")
	gout, err := gap.OutputShape([]int{5, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(gout) != 1 || gout[0] != 5 {
		t.Errorf("gap shape = %v", gout)
	}
	sm := NewSoftmax("sm")
	if _, err := sm.OutputShape([]int{3, 3}); err == nil {
		t.Error("softmax on rank-2: expected error")
	}
	probs, err := sm.Forward(tensor.MustNew(10))
	if err != nil {
		t.Fatal(err)
	}
	if probs.Len() != 10 {
		t.Errorf("softmax output length = %d", probs.Len())
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := stats.NewRNG(4)
	model := NewSequential("tiny",
		NewConv("c1", 1, 4, 3, 1, 1, rng),
		NewMaxPool("p1", 2, 2),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 4, 10, false, rng),
		NewSoftmax("sm"),
	)
	in := []int{1, 8, 8}
	out, err := model.OutputShape(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 10 {
		t.Fatalf("model output shape = %v", out)
	}
	if model.ParamCount() == 0 {
		t.Error("expected nonzero parameters")
	}
	ops, err := model.Ops(in)
	if err != nil {
		t.Fatal(err)
	}
	if ops <= 0 {
		t.Error("expected positive op count")
	}
	x := tensor.MustNew(1, 8, 8)
	x.Fill(0.3)
	y, err := model.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Len() != 10 {
		t.Errorf("forward output length = %d", y.Len())
	}
	if len(model.Layers()) != 5 {
		t.Errorf("Layers() = %d", len(model.Layers()))
	}
}

func TestSequentialPropagatesErrors(t *testing.T) {
	rng := stats.NewRNG(5)
	model := NewSequential("bad",
		NewConv("c1", 1, 4, 3, 1, 1, rng),
		NewDense("fc", 4, 10, false, rng), // dense on CHW input: error
	)
	if _, err := model.OutputShape([]int{1, 8, 8}); err == nil {
		t.Error("expected shape error to propagate")
	}
	x := tensor.MustNew(1, 8, 8)
	if _, err := model.Forward(x); err == nil {
		t.Error("expected forward error to propagate")
	}
	if _, err := model.Ops([]int{1, 8, 8}); err == nil {
		t.Error("expected ops error to propagate")
	}
}

func TestResidualBlock(t *testing.T) {
	rng := stats.NewRNG(6)
	body := NewSequential("body",
		NewConv("c1", 4, 4, 3, 1, 1, rng),
		NewConv("c2", 4, 4, 3, 1, 1, rng),
	)
	res := NewResidual("res", body)
	in := []int{4, 8, 8}
	out, err := res.OutputShape(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 4 || out[1] != 8 || out[2] != 8 {
		t.Fatalf("residual shape = %v", out)
	}
	x := tensor.MustNew(4, 8, 8)
	x.Fill(0.1)
	y, err := res.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(x, y) {
		t.Error("residual changed shape")
	}
	if res.ParamCount() != body.ParamCount() {
		t.Error("residual param count mismatch")
	}
	bodyOps, _ := body.Ops(in)
	resOps, _ := res.Ops(in)
	if resOps <= bodyOps {
		t.Error("residual ops should exceed body ops (adds elementwise work)")
	}
}

func TestResidualShapeMismatchRejected(t *testing.T) {
	rng := stats.NewRNG(7)
	body := NewConv("c", 4, 8, 3, 1, 1, rng) // changes channel count
	res := NewResidual("res", body)
	if _, err := res.OutputShape([]int{4, 8, 8}); err == nil {
		t.Error("expected shape-change rejection")
	}
	if _, err := res.Forward(tensor.MustNew(4, 8, 8)); err == nil {
		t.Error("expected forward rejection")
	}
}

func TestDeterministicInitialization(t *testing.T) {
	a := NewConv("c", 3, 8, 3, 1, 1, stats.NewRNG(99))
	b := NewConv("c", 3, 8, 3, 1, 1, stats.NewRNG(99))
	if !tensor.Equalish(a.Weights, b.Weights, 0) {
		t.Error("same-seed initialization differs")
	}
	c := NewConv("c", 3, 8, 3, 1, 1, stats.NewRNG(100))
	if tensor.Equalish(a.Weights, c.Weights, 0) {
		t.Error("different-seed initialization identical")
	}
}
