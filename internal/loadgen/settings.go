package loadgen

import (
	"fmt"
	"time"
)

// SampleIndexPolicy selects how performance-mode queries pick sample indices
// from the loaded performance set. The default, RandomWithReplacement, is
// what the benchmark uses; the other policies exist for the compliance/audit
// tests of Section V-B (on-the-fly caching detection issues queries with
// unique and then duplicate indices and compares performance).
type SampleIndexPolicy int

const (
	// RandomWithReplacement picks each sample uniformly at random (default).
	RandomWithReplacement SampleIndexPolicy = iota
	// UniqueSweep cycles through the loaded samples without repetition until
	// they are exhausted, then wraps.
	UniqueSweep
	// DuplicateSingle issues the same sample index for every query.
	DuplicateSingle
)

// String returns the policy's name.
func (p SampleIndexPolicy) String() string {
	switch p {
	case RandomWithReplacement:
		return "RandomWithReplacement"
	case UniqueSweep:
		return "UniqueSweep"
	case DuplicateSingle:
		return "DuplicateSingle"
	default:
		return fmt.Sprintf("SampleIndexPolicy(%d)", int(p))
	}
}

// TestSettings controls a LoadGen run. The zero value is not valid; use
// DefaultSettings for a scenario-appropriate starting point and override as
// needed.
type TestSettings struct {
	Scenario Scenario
	Mode     Mode

	// MinQueryCount is the minimum number of queries the run must issue
	// (Table V: 1,024 for single-stream, 270K/90K for server and multistream,
	// 1 for offline).
	MinQueryCount int
	// MaxQueryCount, when positive, caps the number of issued queries. It is
	// used to keep accuracy runs bounded and by unit tests; production
	// performance runs leave it at zero (unbounded).
	MaxQueryCount int
	// MinDuration is the minimum wall-clock duration of the timed portion
	// (60 seconds in the benchmark; shorter in tests).
	MinDuration time.Duration

	// MinSampleCount is the minimum number of samples the offline scenario's
	// single query must contain (24,576 in the benchmark).
	MinSampleCount int
	// OfflineExpectedQPS, when positive, scales the offline query so it holds
	// enough samples to keep the SUT busy for MinDuration
	// (samples = max(MinSampleCount, OfflineExpectedQPS * MinDuration)), the
	// same mechanism submitters use to satisfy the 60-second minimum run time.
	OfflineExpectedQPS float64

	// ServerTargetQPS is the Poisson arrival rate for the server scenario.
	ServerTargetQPS float64
	// ServerQPSStepAfter and ServerQPSStepTo, when both set, step the offered
	// load mid-run: after ServerQPSStepAfter of scheduled time the Poisson
	// rate becomes ServerQPSStepTo (the same RNG keeps drawing, so a run's
	// arrival schedule stays deterministic under ScheduleSeed). This models a
	// production load shift — the stimulus a capacity manager must absorb for
	// the run to stay valid — rather than anything in the MLPerf rules, which
	// fix the rate for a whole run.
	ServerQPSStepAfter time.Duration
	ServerQPSStepTo    float64
	// ServerTargetLatency is the per-query latency bound in the server
	// scenario (Table III).
	ServerTargetLatency time.Duration
	// ServerLatencyPercentile is the percentile that must meet the bound
	// (0.99 for vision tasks, 0.97 for translation).
	ServerLatencyPercentile float64

	// SwarmSessions is the number of concurrent simulated client sessions the
	// Swarm scenario runs. Each session issues single-sample queries on its
	// own deterministic Poisson clock.
	SwarmSessions int
	// SwarmSessionQPS is each session's individual Poisson arrival rate; the
	// aggregate offered load is SwarmSessions * SwarmSessionQPS.
	SwarmSessionQPS float64
	// SwarmSessionLifetime is the mean session lifetime. A session whose
	// (exponentially distributed) lifetime expires reconnects: it counts one
	// churn event and continues as a fresh incarnation with a fresh,
	// deterministic schedule stream. Zero disables churn (sessions live for
	// the whole run).
	SwarmSessionLifetime time.Duration
	// SwarmClasses partitions the sessions into traffic classes, each with
	// its own latency target; sessions are assigned to classes by weight,
	// deterministically under ScheduleSeed. Empty means one implicit class
	// ("default") with the ServerTargetLatency/ServerLatencyPercentile bound.
	SwarmClasses []SwarmClass

	// MultiStreamSamplesPerQuery is N, the number of concurrent streams.
	MultiStreamSamplesPerQuery int
	// MultiStreamArrivalInterval is the fixed query arrival period, which also
	// acts as the latency bound (Table III).
	MultiStreamArrivalInterval time.Duration
	// MultiStreamMaxSkipFraction is the largest fraction of queries that may
	// produce one or more skipped intervals (0.01 in the benchmark).
	MultiStreamMaxSkipFraction float64

	// SingleStreamTargetPercentile is the reported latency percentile for the
	// single-stream scenario (0.90 in the benchmark).
	SingleStreamTargetPercentile float64

	// AccuracyLogSamplingRate is the probability that a performance-mode
	// response is logged for the accuracy-verification audit (0 disables).
	AccuracyLogSamplingRate float64

	// AccuracySink, when non-nil, receives every entry that would otherwise
	// accumulate in Result.AccuracyLog, as it is logged. The log stays empty,
	// bounding a full-dataset accuracy sweep's memory to the sink's own state
	// (see accuracy.StreamChecker). Entries arrive serialized (never two
	// calls at once) but from SUT completion goroutines; the entry's Data
	// slice is only valid for the duration of the call.
	AccuracySink func(AccuracyEntry)

	// SampleIndexPolicy selects the sample-index generation strategy.
	SampleIndexPolicy SampleIndexPolicy

	// QuerySeed seeds query sample selection; ScheduleSeed seeds the arrival
	// process; AccuracyLogSeed seeds the response-sampling choice. The
	// benchmark fixes official seeds per round and the alternate-random-seed
	// audit replaces them.
	QuerySeed       uint64
	ScheduleSeed    uint64
	AccuracyLogSeed uint64
}

// SwarmClass is one traffic class of the Swarm scenario: a named slice of
// the session population with its own latency target. Weights are relative
// (they need not sum to 1).
type SwarmClass struct {
	// Name labels the class in results and the audit ("interactive",
	// "batchy", ...).
	Name string
	// Weight is the class's relative share of the session population.
	Weight float64
	// TargetLatency is the per-query latency bound for the class's sessions.
	TargetLatency time.Duration
	// TargetPercentile is the fraction of the class's queries that must meet
	// TargetLatency for the run to be valid.
	TargetPercentile float64
}

// swarmClasses returns the run's effective class list: the configured
// classes, or the implicit single class derived from the Server-scenario
// bound when none are set.
func (ts TestSettings) swarmClasses() []SwarmClass {
	if len(ts.SwarmClasses) > 0 {
		return ts.SwarmClasses
	}
	return []SwarmClass{{
		Name:             "default",
		Weight:           1,
		TargetLatency:    ts.ServerTargetLatency,
		TargetPercentile: ts.ServerLatencyPercentile,
	}}
}

// Official default seeds for the v0.5 round. The audit suite swaps these for
// alternates to detect seed-dependent optimizations.
const (
	DefaultQuerySeed       = 0x2b7e151628aed2a6
	DefaultScheduleSeed    = 0x093c467e37db0c7a
	DefaultAccuracyLogSeed = 0x3243f6a8885a308d
)

// DefaultSettings returns the benchmark's production settings for a scenario
// (Table II, Table IV and Table V defaults). Latency bounds and rates are
// task-specific and must still be set by the caller for server and
// multistream.
func DefaultSettings(s Scenario) TestSettings {
	ts := TestSettings{
		Scenario:                     s,
		Mode:                         PerformanceMode,
		MinDuration:                  60 * time.Second,
		SingleStreamTargetPercentile: 0.90,
		ServerLatencyPercentile:      0.99,
		MultiStreamMaxSkipFraction:   0.01,
		SampleIndexPolicy:            RandomWithReplacement,
		QuerySeed:                    DefaultQuerySeed,
		ScheduleSeed:                 DefaultScheduleSeed,
		AccuracyLogSeed:              DefaultAccuracyLogSeed,
	}
	switch s {
	case SingleStream:
		ts.MinQueryCount = 1024
	case MultiStream:
		ts.MinQueryCount = 270336
		ts.MultiStreamSamplesPerQuery = 1
		ts.MultiStreamArrivalInterval = 50 * time.Millisecond
	case Server:
		ts.MinQueryCount = 270336
		ts.ServerTargetQPS = 100
		ts.ServerTargetLatency = 15 * time.Millisecond
	case Offline:
		ts.MinQueryCount = 1
		ts.MinSampleCount = 24576
	case Swarm:
		// Same aggregate query floor and default bound as Server, offered as
		// 10k sessions of 0.01 QPS each. Sessions churn on a 30-second mean
		// lifetime so a production run exercises reconnects by default.
		ts.MinQueryCount = 270336
		ts.SwarmSessions = 10000
		ts.SwarmSessionQPS = 0.01
		ts.SwarmSessionLifetime = 30 * time.Second
		ts.ServerTargetQPS = 100
		ts.ServerTargetLatency = 15 * time.Millisecond
	}
	return ts
}

// Validate reports configuration errors before a run starts.
func (ts TestSettings) Validate() error {
	switch ts.Scenario {
	case SingleStream, MultiStream, Server, Offline, Swarm:
	default:
		return fmt.Errorf("loadgen: unknown scenario %v", ts.Scenario)
	}
	switch ts.Mode {
	case PerformanceMode, AccuracyMode:
	default:
		return fmt.Errorf("loadgen: unknown mode %v", ts.Mode)
	}
	if ts.MinQueryCount <= 0 {
		return fmt.Errorf("loadgen: MinQueryCount must be positive, got %d", ts.MinQueryCount)
	}
	if ts.MaxQueryCount > 0 && ts.MaxQueryCount < ts.MinQueryCount && ts.Mode == PerformanceMode {
		return fmt.Errorf("loadgen: MaxQueryCount %d below MinQueryCount %d", ts.MaxQueryCount, ts.MinQueryCount)
	}
	if ts.MinDuration < 0 {
		return fmt.Errorf("loadgen: MinDuration must be non-negative, got %v", ts.MinDuration)
	}
	if ts.SingleStreamTargetPercentile <= 0 || ts.SingleStreamTargetPercentile >= 1 {
		return fmt.Errorf("loadgen: SingleStreamTargetPercentile %v outside (0,1)", ts.SingleStreamTargetPercentile)
	}
	switch ts.Scenario {
	case Server:
		if ts.ServerTargetQPS <= 0 {
			return fmt.Errorf("loadgen: ServerTargetQPS must be positive, got %v", ts.ServerTargetQPS)
		}
		if ts.ServerTargetLatency <= 0 {
			return fmt.Errorf("loadgen: ServerTargetLatency must be positive, got %v", ts.ServerTargetLatency)
		}
		if ts.ServerLatencyPercentile <= 0 || ts.ServerLatencyPercentile >= 1 {
			return fmt.Errorf("loadgen: ServerLatencyPercentile %v outside (0,1)", ts.ServerLatencyPercentile)
		}
		if ts.ServerQPSStepAfter < 0 {
			return fmt.Errorf("loadgen: ServerQPSStepAfter must be non-negative, got %v", ts.ServerQPSStepAfter)
		}
		if ts.ServerQPSStepAfter > 0 && ts.ServerQPSStepTo <= 0 {
			return fmt.Errorf("loadgen: ServerQPSStepTo must be positive when ServerQPSStepAfter is set, got %v", ts.ServerQPSStepTo)
		}
	case MultiStream:
		if ts.MultiStreamSamplesPerQuery <= 0 {
			return fmt.Errorf("loadgen: MultiStreamSamplesPerQuery must be positive, got %d", ts.MultiStreamSamplesPerQuery)
		}
		if ts.MultiStreamArrivalInterval <= 0 {
			return fmt.Errorf("loadgen: MultiStreamArrivalInterval must be positive, got %v", ts.MultiStreamArrivalInterval)
		}
		if ts.MultiStreamMaxSkipFraction < 0 || ts.MultiStreamMaxSkipFraction >= 1 {
			return fmt.Errorf("loadgen: MultiStreamMaxSkipFraction %v outside [0,1)", ts.MultiStreamMaxSkipFraction)
		}
	case Offline:
		if ts.MinSampleCount <= 0 {
			return fmt.Errorf("loadgen: MinSampleCount must be positive for the offline scenario, got %d", ts.MinSampleCount)
		}
	case Swarm:
		if ts.SwarmSessions <= 0 {
			return fmt.Errorf("loadgen: SwarmSessions must be positive, got %d", ts.SwarmSessions)
		}
		if ts.SwarmSessionQPS <= 0 {
			return fmt.Errorf("loadgen: SwarmSessionQPS must be positive, got %v", ts.SwarmSessionQPS)
		}
		if ts.SwarmSessionLifetime < 0 {
			return fmt.Errorf("loadgen: SwarmSessionLifetime must be non-negative, got %v", ts.SwarmSessionLifetime)
		}
		for i, c := range ts.swarmClasses() {
			if c.Weight <= 0 {
				return fmt.Errorf("loadgen: swarm class %d (%q) has non-positive weight %v", i, c.Name, c.Weight)
			}
			if c.TargetLatency <= 0 {
				return fmt.Errorf("loadgen: swarm class %d (%q) has non-positive target latency %v", i, c.Name, c.TargetLatency)
			}
			if c.TargetPercentile <= 0 || c.TargetPercentile >= 1 {
				return fmt.Errorf("loadgen: swarm class %d (%q) target percentile %v outside (0,1)", i, c.Name, c.TargetPercentile)
			}
		}
	}
	if ts.AccuracyLogSamplingRate < 0 || ts.AccuracyLogSamplingRate > 1 {
		return fmt.Errorf("loadgen: AccuracyLogSamplingRate %v outside [0,1]", ts.AccuracyLogSamplingRate)
	}
	return nil
}
