package model

import (
	"testing"

	"mlperf/internal/dataset"
	"mlperf/internal/metrics"
	"mlperf/internal/payload"
)

// A mixed-version deployment has binary-codec peers and JSON peers answering
// the same queries; the two encodings of one Output must decode to the same
// prediction or accuracy scoring would depend on which replica answered.
func TestOutputCodecEquivalence(t *testing.T) {
	outputs := []Output{
		{Kind: dataset.KindImageClassification, Class: 42},
		{Kind: dataset.KindImageClassification, Class: 0},
		{Kind: dataset.KindObjectDetection, Boxes: []metrics.Box{
			{X1: 0.25, Y1: 0.5, X2: 0.75, Y2: 1, Class: 17, Score: 0.875},
		}},
		{Kind: dataset.KindObjectDetection},
		{Kind: dataset.KindTranslation, Tokens: []int{1, 0, 512, 3}},
	}
	for i, out := range outputs {
		bin, err := out.AppendTo(nil, payload.CodecBinary)
		if err != nil {
			t.Fatalf("output %d: binary encode: %v", i, err)
		}
		js, err := out.AppendTo(nil, payload.CodecJSON)
		if err != nil {
			t.Fatalf("output %d: json encode: %v", i, err)
		}
		for _, data := range [][]byte{bin, js} {
			switch out.Kind {
			case dataset.KindImageClassification:
				got, err := payload.DecodeClass(data)
				if err != nil || got != out.Class {
					t.Errorf("output %d: class decode %d, %v", i, got, err)
				}
			case dataset.KindObjectDetection:
				got, err := payload.DecodeBoxes(data)
				if err != nil || len(got) != len(out.Boxes) {
					t.Fatalf("output %d: box decode %v (%d boxes)", i, err, len(got))
				}
				for j := range got {
					if got[j] != out.Boxes[j] {
						t.Errorf("output %d box %d: %+v != %+v", i, j, got[j], out.Boxes[j])
					}
				}
			case dataset.KindTranslation:
				got, err := payload.DecodeTokens(data)
				if err != nil || len(got) != len(out.Tokens) {
					t.Fatalf("output %d: token decode %v", i, err)
				}
				for j := range got {
					if got[j] != out.Tokens[j] {
						t.Errorf("output %d token %d: %d != %d", i, j, got[j], out.Tokens[j])
					}
				}
			}
		}
		// Encode() is the default entry point; it must match the binary path.
		def, err := out.Encode()
		if err != nil || string(def) != string(bin) {
			t.Errorf("output %d: Encode() diverges from binary AppendTo", i)
		}
	}
}
