// Package mlperf holds the repository-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation section (each
// regenerates the corresponding result through the experiments package), plus
// microbenchmarks for the core components (LoadGen scenario drivers, native
// model inference, quantization and the virtual-time queue simulator).
//
// Run with:
//
//	go test -bench=. -benchmem
package mlperf

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"testing"
	"time"

	"mlperf/internal/backend"
	"mlperf/internal/capacity"
	"mlperf/internal/core"
	"mlperf/internal/dataset"
	"mlperf/internal/experiments"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/payload"
	"mlperf/internal/quantize"
	"mlperf/internal/serve"
	"mlperf/internal/simhw"
	"mlperf/internal/stats"
	"mlperf/internal/tensor"
	"mlperf/internal/trace"
)

// benchOptions keeps the experiment regeneration benchmarks fast while still
// exercising the full pipeline of each table/figure.
func benchOptions() experiments.Options {
	return experiments.Options{Seed: 2020, SearchQueries: 512, Figure6Systems: 4, DatasetSamples: 48}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per table of the paper. ---

func BenchmarkTable1ModelZoo(b *testing.B)           { runExperiment(b, "table1") }
func BenchmarkTable2Scenarios(b *testing.B)          { runExperiment(b, "table2") }
func BenchmarkTable3LatencyConstraints(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4QueryRequirements(b *testing.B)  { runExperiment(b, "table4") }
func BenchmarkTable5QueryCounts(b *testing.B)        { runExperiment(b, "table5") }
func BenchmarkTable6Coverage(b *testing.B)           { runExperiment(b, "table6") }
func BenchmarkTable7Frameworks(b *testing.B)         { runExperiment(b, "table7") }

// --- One benchmark per figure of the evaluation section. ---

func BenchmarkFigure5TaskCoverage(b *testing.B)     { runExperiment(b, "fig5") }
func BenchmarkFigure6ServerVsOffline(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFigure7Architectures(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFigure8PerformanceRange(b *testing.B) { runExperiment(b, "fig8") }

// --- Audit and analysis sections. ---

func BenchmarkAuditSuite(b *testing.B)        { runExperiment(b, "audits") }
func BenchmarkModeledVsMeasured(b *testing.B) { runExperiment(b, "modeled-vs-measured") }

// --- LoadGen scenario drivers against an instant SUT (traffic-generation
// overhead, independent of any model). ---

type instantSUT struct{}

func (instantSUT) Name() string { return "instant" }
func (instantSUT) IssueQuery(q *loadgen.Query) {
	responses := make([]loadgen.Response, len(q.Samples))
	for i, s := range q.Samples {
		responses[i] = loadgen.Response{SampleID: s.ID}
	}
	q.Complete(responses)
}
func (instantSUT) FlushQueries() {}

type benchQSL struct{ total int }

func (q benchQSL) Name() string                             { return "bench" }
func (q benchQSL) TotalSampleCount() int                    { return q.total }
func (q benchQSL) PerformanceSampleCount() int              { return q.total }
func (q benchQSL) LoadSamplesToRAM(indices []int) error     { return nil }
func (q benchQSL) UnloadSamplesFromRAM(indices []int) error { return nil }

func BenchmarkLoadGenSingleStream(b *testing.B) {
	settings := loadgen.DefaultSettings(loadgen.SingleStream)
	settings.MinQueryCount = 256
	settings.MinDuration = 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := loadgen.StartTest(instantSUT{}, benchQSL{total: 1024}, settings); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadGenServer(b *testing.B) {
	settings := loadgen.DefaultSettings(loadgen.Server)
	settings.MinQueryCount = 256
	settings.MinDuration = 0
	settings.ServerTargetQPS = 1e6 // stress the issuing path, not the sleep
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := loadgen.StartTest(instantSUT{}, benchQSL{total: 1024}, settings); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadGenOffline(b *testing.B) {
	settings := loadgen.DefaultSettings(loadgen.Offline)
	settings.MinSampleCount = 4096
	settings.MinDuration = 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := loadgen.StartTest(instantSUT{}, benchQSL{total: 1024}, settings); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Native reference-model inference (the substrate's compute cost). ---

func benchmarkClassifier(b *testing.B, build func(model.ClassifierConfig) (*model.ImageClassifier, error)) {
	b.Helper()
	m, err := build(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	img := tensor.MustNew(3, 16, 16)
	rng := stats.NewRNG(2)
	for i := range img.Data() {
		img.Data()[i] = float32(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Classify(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResNet50MiniInference(b *testing.B) { benchmarkClassifier(b, model.NewResNet50Mini) }
func BenchmarkMobileNetV1MiniInference(b *testing.B) {
	benchmarkClassifier(b, model.NewMobileNetV1Mini)
}

func BenchmarkSSDMobileNetMiniDetection(b *testing.B) {
	m, err := model.NewSSDMobileNetMini(model.DetectorConfig{Classes: 5, ImageSize: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	img := tensor.MustNew(3, 16, 16)
	img.Fill(0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Detect(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGNMTMiniTranslation(b *testing.B) {
	m, err := model.NewGNMTMini(model.TranslatorConfig{Vocab: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	src := []int{5, 9, 13, 21, 34, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Translate(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Compute-kernel microbenchmarks: blocked/parallel engine vs the
// retained serial reference kernels (the speedup the paper's "as fast as the
// hardware allows" requirement hinges on). ---

func randTensor(seed uint64, shape ...int) *tensor.Tensor {
	t := tensor.MustNew(shape...)
	rng := stats.NewRNG(seed)
	data := t.Data()
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	return t
}

func BenchmarkKernelMatMul(b *testing.B) {
	a := randTensor(1, 128, 256)
	bm := randTensor(2, 256, 128)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tensor.MatMulSerial(a, bm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blocked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tensor.MatMul(a, bm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelGEMMSIMD measures the SIMD GEMM microkernels against the
// forced-scalar path on the shapes that bracket the kernels' regimes: a
// cache-resident square GEMM (every operand fits in L2, so the benchmark sees
// pure ALU throughput) and a streaming GEMM whose B matrix exceeds L2 (the
// panel loop's memory-bandwidth regime). One sub-benchmark per dispatch tier;
// tiers the host cannot run are skipped, so the recorded JSON shows exactly
// what this machine's silicon earned.
func BenchmarkKernelGEMMSIMD(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"cache_64x64x64", 64, 64, 64},
		{"stream_64x256x4096", 64, 256, 4096},
	}
	tiers := []tensor.SIMDTier{tensor.SIMDOff, tensor.SIMDAVX2, tensor.SIMDFMA}
	prev := tensor.ActiveSIMD()
	defer tensor.SetSIMD(prev)
	for _, sh := range shapes {
		a := randTensor(11, sh.m, sh.k)
		bm := randTensor(12, sh.k, sh.n)
		flops := 2 * float64(sh.m) * float64(sh.k) * float64(sh.n)
		for _, tier := range tiers {
			b.Run(fmt.Sprintf("%s/%s", sh.name, tier), func(b *testing.B) {
				if !tensor.SIMDSupported(tier) {
					b.Skipf("tier %s not supported on this CPU", tier)
				}
				tensor.SetSIMD(tier)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := tensor.MatMul(a, bm); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
			})
		}
	}
}

func BenchmarkKernelConv2D(b *testing.B) {
	input := randTensor(3, 32, 32, 32)
	kernels := randTensor(4, 64, 32, 3, 3)
	bias := randTensor(5, 64)
	opts := tensor.Conv2DOptions{Stride: 1, Padding: 1}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tensor.Conv2DSerial(input, kernels, bias, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("im2col", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tensor.Conv2D(input, kernels, bias, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelDepthwiseConv2D(b *testing.B) {
	input := randTensor(6, 64, 32, 32)
	kernels := randTensor(7, 64, 3, 3)
	bias := randTensor(8, 64)
	opts := tensor.Conv2DOptions{Stride: 1, Padding: 1}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tensor.DepthwiseConv2DSerial(input, kernels, bias, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rowwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tensor.DepthwiseConv2D(input, kernels, bias, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNativeClassifier contrasts the zero-allocation scratch-arena
// inference path (what the native SUT runs) with the plain heap-allocating
// forward pass it replaced.
func BenchmarkNativeClassifier(b *testing.B) {
	builders := []struct {
		name  string
		build func(model.ClassifierConfig) (*model.ImageClassifier, error)
	}{
		{"resnet50", model.NewResNet50Mini},
		{"mobilenet", model.NewMobileNetV1Mini},
	}
	for _, bl := range builders {
		m, err := bl.build(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		img := randTensor(9, 3, 16, 16)
		b.Run(bl.name+"/heap", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.ClassifyReference(img); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(bl.name+"/scratch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Classify(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Quantization flow. ---

func BenchmarkINT8WeightQuantization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := quantize.Model(m.Weights(), quantize.INT8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Virtual-time scenario simulation (the experiment substrate). ---

func BenchmarkQueueSimServer(b *testing.B) {
	platform, err := simhw.FindPlatform("dc-gpu-g1")
	if err != nil {
		b.Fatal(err)
	}
	w := simhw.StandardWorkloads()["resnet50-v1.5"]
	peak, err := platform.PeakThroughput(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simhw.SimulateServer(platform, w, peak/2, 15*time.Millisecond, 4096, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxServerQPSSearch(b *testing.B) {
	platform, err := simhw.FindPlatform("dc-gpu-g1")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := core.Spec(core.ImageClassificationHeavy)
	if err != nil {
		b.Fatal(err)
	}
	w := simhw.StandardWorkloads()[string(spec.ReferenceModel)]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simhw.MaxServerQPS(platform, w, spec.ServerLatencyBound, spec.ServerLatencyPercentile,
			simhw.SearchOptions{Queries: 1024, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end native harness run (build + performance + accuracy). ---

func BenchmarkHarnessSingleStreamEndToEnd(b *testing.B) {
	assembly, err := harness.BuildNative(core.ImageClassificationLight, harness.BuildOptions{DatasetSamples: 48, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	settings := harness.QuickSettings(assembly.Spec, loadgen.SingleStream, 64)
	settings.MinDuration = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(assembly, harness.RunOptions{Scenario: loadgen.SingleStream, Settings: &settings}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Native backend against the LoadGen through a dynamic batcher. ---

func BenchmarkDynamicBatchingServer(b *testing.B) {
	assembly, err := harness.BuildNative(core.ImageClassificationLight, harness.BuildOptions{DatasetSamples: 48, Seed: 5, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	batcher, err := backend.NewBatching(assembly.SUT, 8, 2*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	settings := harness.QuickSettings(assembly.Spec, loadgen.Server, 2048)
	settings.MinDuration = 0
	settings.ServerTargetQPS = 2000
	settings.ServerTargetLatency = 100 * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loadgen.StartTest(batcher, assembly.QSL, settings); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batch-first Engine API: batched Predict vs the per-sample loop. ---

// benchSamples builds n random image samples for an engine's input shape.
func benchSamples(seed uint64, n int, shape []int) []*dataset.Sample {
	rng := stats.NewRNG(seed)
	out := make([]*dataset.Sample, n)
	for i := range out {
		img := tensor.MustNew(shape...)
		data := img.Data()
		for j := range data {
			data[j] = float32(rng.NormFloat64())
		}
		out[i] = &dataset.Sample{Index: i, Image: img}
	}
	return out
}

// BenchmarkBatchedPredict contrasts the native batched Engine.Predict (one
// im2col+GEMM per layer for the whole batch) with the per-sample adapter loop
// (model.EngineFromClassifier) at the offline-relevant batch sizes. Each op
// processes the whole batch, so ns/op at equal batch size is directly
// comparable between the two variants.
func BenchmarkBatchedPredict(b *testing.B) {
	builders := []struct {
		name  string
		build func(model.ClassifierConfig) (*model.ImageClassifier, error)
	}{
		{"resnet50", model.NewResNet50Mini},
		{"mobilenet", model.NewMobileNetV1Mini},
	}
	for _, bl := range builders {
		m, err := bl.build(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		persample := model.EngineFromClassifier(bl.name+"-persample", m)
		for _, batch := range []int{1, 8, 32} {
			samples := benchSamples(uint64(batch)*31, batch, m.InputShape())
			run := func(e model.Engine) func(*testing.B) {
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := e.Predict(samples, nil); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
				}
			}
			b.Run(fmt.Sprintf("%s/batch%d/batched", bl.name, batch), run(m))
			b.Run(fmt.Sprintf("%s/batch%d/persample", bl.name, batch), run(persample))
		}
	}
}

// BenchmarkOfflineBatched runs the full offline scenario — LoadGen, dynamic
// batcher, native backend — once with the batched engine and once with the
// per-sample adapter, so the batching win is visible at the system level and
// not just at the kernel level. It uses MobileNet, the paper's light
// (high-throughput) offline classification workload; the heavy model's
// batched-vs-per-sample ratio is recorded by BenchmarkBatchedPredict.
func BenchmarkOfflineBatched(b *testing.B) {
	m, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dataset.NewSyntheticImages(dataset.ImageConfig{
		Samples: 64, Classes: 10, Channels: 3, Height: 16, Width: 16, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	qsl, err := dataset.NewQSL(ds)
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name   string
		engine model.Engine
	}{
		{"batched", m},
		{"persample", model.EngineFromClassifier("mobilenet-persample", m)},
	}
	for _, e := range engines {
		sut, err := backend.NewNative(backend.NativeConfig{Engine: e.engine, Store: qsl})
		if err != nil {
			b.Fatal(err)
		}
		settings := loadgen.DefaultSettings(loadgen.Offline)
		settings.MinSampleCount = 4096
		settings.MinDuration = 0
		b.Run(e.name, func(b *testing.B) {
			b.ReportAllocs()
			var throughput float64
			for i := 0; i < b.N; i++ {
				res, err := loadgen.StartTest(sut, qsl, settings)
				if err != nil {
					b.Fatal(err)
				}
				throughput = res.OfflineSamplesPerSec
			}
			sut.Wait()
			if errs := sut.Errors(); len(errs) > 0 {
				b.Fatal(errs[0])
			}
			b.ReportMetric(throughput, "samples/s")
		})
	}
}

// benchTextSamples builds n ragged token sentences from the synthetic
// translation generator.
func benchTextSamples(b *testing.B, n int) []*dataset.Sample {
	b.Helper()
	ds, err := dataset.NewSyntheticText(dataset.TextConfig{Samples: n, Vocab: 64, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]*dataset.Sample, n)
	for i := range out {
		s, err := ds.Sample(i)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = s
	}
	return out
}

// BenchmarkGNMTBatchedDecode contrasts batched greedy decoding (one GEMM per
// weight matrix per step over all active sentences, finished sentences
// compacting out) with the serial sentence-at-a-time loop
// (model.EngineFromTranslator) at the offline-relevant batch sizes. Each op
// processes the whole batch, so ns/op at equal batch size is directly
// comparable between the two variants.
func BenchmarkGNMTBatchedDecode(b *testing.B) {
	g, err := model.NewGNMTMini(model.TranslatorConfig{Vocab: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	serial := model.EngineFromTranslator("gnmt-serial", g)
	for _, batch := range []int{1, 8, 32} {
		samples := benchTextSamples(b, batch)
		run := func(e model.Engine) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.Predict(samples, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
			}
		}
		b.Run(fmt.Sprintf("batch%d/batched", batch), run(g))
		b.Run(fmt.Sprintf("batch%d/persample", batch), run(serial))
	}
}

// BenchmarkWideBatchedPredict measures the weight-streaming amortization the
// wide-channel classifier exists for: its weights exceed L2, so the
// per-sample loop re-streams every weight panel per sample while the batched
// engine streams each panel once per micro-batch (A-panel reuse).
func BenchmarkWideBatchedPredict(b *testing.B) {
	m, err := model.NewWideResNetMini(model.ClassifierConfig{Classes: 10, ImageSize: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	persample := model.EngineFromClassifier("resnet50-wide-persample", m)
	for _, batch := range []int{1, 8, 32} {
		samples := benchSamples(uint64(batch)*37, batch, m.InputShape())
		run := func(e model.Engine) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.Predict(samples, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
			}
		}
		b.Run(fmt.Sprintf("batch%d/batched", batch), run(m))
		b.Run(fmt.Sprintf("batch%d/persample", batch), run(persample))
	}
}

// BenchmarkOfflineGNMT runs the full offline translation scenario — LoadGen,
// merged query, native backend — once with batched greedy decoding and once
// with the sentence-at-a-time adapter, the system-level view of the batched
// recurrent path.
func BenchmarkOfflineGNMT(b *testing.B) {
	g, err := model.NewGNMTMini(model.TranslatorConfig{Vocab: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dataset.NewSyntheticText(dataset.TextConfig{Samples: 64, Vocab: 64, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	qsl, err := dataset.NewQSL(ds)
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name   string
		engine model.Engine
	}{
		{"batched", g},
		{"persample", model.EngineFromTranslator("gnmt-persample", g)},
	}
	for _, e := range engines {
		sut, err := backend.NewNative(backend.NativeConfig{Engine: e.engine, Store: qsl})
		if err != nil {
			b.Fatal(err)
		}
		settings := loadgen.DefaultSettings(loadgen.Offline)
		settings.MinSampleCount = 512
		settings.MinDuration = 0
		b.Run(e.name, func(b *testing.B) {
			b.ReportAllocs()
			var throughput float64
			for i := 0; i < b.N; i++ {
				res, err := loadgen.StartTest(sut, qsl, settings)
				if err != nil {
					b.Fatal(err)
				}
				throughput = res.OfflineSamplesPerSec
			}
			sut.Wait()
			if errs := sut.Errors(); len(errs) > 0 {
				b.Fatal(errs[0])
			}
			b.ReportMetric(throughput, "samples/s")
		})
	}
}

// --- Network serving: the same engine as an in-process SUT vs served over a
// loopback TCP socket (internal/serve + backend.Remote). The remote variants
// also report the server's queue/service p99 breakdown, the quantities an
// in-process SUT cannot exhibit. ---

// servingStack builds the MobileNet engine + QSL pair the serving benchmarks
// share.
func servingStack(b *testing.B) (model.Engine, *dataset.QSL) {
	b.Helper()
	m, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dataset.NewSyntheticImages(dataset.ImageConfig{
		Samples: 64, Classes: 10, Channels: 3, Height: 16, Width: 16, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	qsl, err := dataset.NewQSL(ds)
	if err != nil {
		b.Fatal(err)
	}
	return m, qsl
}

// startServing deploys engine behind a loopback serve.Server with a connected
// Remote, cleaned up when the benchmark ends.
func startServing(b *testing.B, engine model.Engine, qsl *dataset.QSL) (*serve.Server, *backend.Remote) {
	b.Helper()
	srv, err := serve.New(serve.Config{Engine: engine, Store: qsl, BatchWait: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	remote, err := backend.NewRemote(backend.RemoteConfig{Addr: srv.Addr(), Conns: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { remote.Close() })
	return srv, remote
}

// BenchmarkServingServer runs the Server scenario end to end, in-process vs
// over the wire. One op is one complete LoadGen run; "qps" is the achieved
// rate of the last run.
func BenchmarkServingServer(b *testing.B) {
	engine, qsl := servingStack(b)
	settings := loadgen.DefaultSettings(loadgen.Server)
	settings.MinQueryCount = 256
	settings.MinDuration = 0
	settings.ServerTargetQPS = 1000
	settings.ServerTargetLatency = 100 * time.Millisecond

	native, err := backend.NewNative(backend.NativeConfig{Engine: engine, Store: qsl})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("inprocess", func(b *testing.B) {
		var qps float64
		for i := 0; i < b.N; i++ {
			res, err := loadgen.StartTest(native, qsl, settings)
			if err != nil {
				b.Fatal(err)
			}
			qps = res.ServerAchievedQPS
		}
		native.Wait()
		b.ReportMetric(qps, "qps")
	})

	srv, remote := startServing(b, engine, qsl)
	b.Run("remote", func(b *testing.B) {
		var qps float64
		for i := 0; i < b.N; i++ {
			res, err := loadgen.StartTest(remote, qsl, settings)
			if err != nil {
				b.Fatal(err)
			}
			if res.ResponsesDropped > 0 {
				b.Fatalf("%d responses dropped", res.ResponsesDropped)
			}
			qps = res.ServerAchievedQPS
		}
		remote.Wait()
		if errs := remote.Errors(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
		snap := srv.Metrics()
		b.ReportMetric(qps, "qps")
		b.ReportMetric(float64(snap.QueueP99), "queue_p99_ns")
		b.ReportMetric(float64(snap.ServiceP99), "service_p99_ns")
	})
}

// BenchmarkServingTrace measures the span subsystem's overhead: the same
// Server-scenario run over the wire with tracing off versus sampled at 1/64
// on both ends (the production default). One op is one complete LoadGen run;
// "qps" is the achieved rate of the last run, and the acceptance bar is the
// traced leg within 2% of the untraced one.
func BenchmarkServingTrace(b *testing.B) {
	settings := loadgen.DefaultSettings(loadgen.Server)
	settings.MinQueryCount = 256
	settings.MinDuration = 0
	settings.ServerTargetQPS = 1000
	settings.ServerTargetLatency = 100 * time.Millisecond

	run := func(b *testing.B, clientTr, serverTr *trace.Tracer) {
		engine, qsl := servingStack(b)
		srv, err := serve.New(serve.Config{
			Engine: engine, Store: qsl, BatchWait: 2 * time.Millisecond, Tracer: serverTr,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		remote, err := backend.NewRemote(backend.RemoteConfig{
			Addr: srv.Addr(), Conns: 2, Tracer: clientTr,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { remote.Close() })
		var qps float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := loadgen.StartTest(remote, qsl, settings)
			if err != nil {
				b.Fatal(err)
			}
			if res.ResponsesDropped > 0 {
				b.Fatalf("%d responses dropped", res.ResponsesDropped)
			}
			qps = res.ServerAchievedQPS
		}
		remote.Wait()
		if errs := remote.Errors(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
		b.ReportMetric(qps, "qps")
		if clientTr != nil {
			records := clientTr.Records()
			b.ReportMetric(float64(len(records)), "spans")
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, nil, nil) })
	b.Run("traced", func(b *testing.B) {
		run(b, trace.New(trace.Config{SampleEvery: 64}), trace.New(trace.Config{SampleEvery: 64}))
	})
}

// BenchmarkServingOffline runs the Offline scenario's single merged query
// through both SUT forms: the remote path streams samples under client flow
// control while the server's dynamic batcher re-coalesces them.
func BenchmarkServingOffline(b *testing.B) {
	engine, qsl := servingStack(b)
	settings := loadgen.DefaultSettings(loadgen.Offline)
	settings.MinSampleCount = 2048
	settings.MinDuration = 0

	native, err := backend.NewNative(backend.NativeConfig{Engine: engine, Store: qsl})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("inprocess", func(b *testing.B) {
		var tput float64
		for i := 0; i < b.N; i++ {
			res, err := loadgen.StartTest(native, qsl, settings)
			if err != nil {
				b.Fatal(err)
			}
			tput = res.OfflineSamplesPerSec
		}
		native.Wait()
		b.ReportMetric(tput, "samples/s")
	})

	srv, remote := startServing(b, engine, qsl)
	b.Run("remote", func(b *testing.B) {
		var tput float64
		for i := 0; i < b.N; i++ {
			res, err := loadgen.StartTest(remote, qsl, settings)
			if err != nil {
				b.Fatal(err)
			}
			if res.ResponsesDropped > 0 {
				b.Fatalf("%d responses dropped", res.ResponsesDropped)
			}
			tput = res.OfflineSamplesPerSec
		}
		remote.Wait()
		if errs := remote.Errors(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
		snap := srv.Metrics()
		b.ReportMetric(tput, "samples/s")
		b.ReportMetric(float64(snap.QueueP99), "queue_p99_ns")
		b.ReportMetric(float64(snap.ServiceP99), "service_p99_ns")
	})
}

// startServingFleet deploys engine behind n loopback serve.Servers with a
// Remote fanning out over all of them.
func startServingFleet(b *testing.B, engine model.Engine, qsl *dataset.QSL, n int) ([]*serve.Server, *backend.Remote) {
	b.Helper()
	var (
		servers []*serve.Server
		addrs   []string
	)
	for i := 0; i < n; i++ {
		srv, err := serve.New(serve.Config{Engine: engine, Store: qsl, BatchWait: 2 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	remote, err := backend.NewRemote(backend.RemoteConfig{Addrs: addrs, Conns: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { remote.Close() })
	return servers, remote
}

// BenchmarkServingReplicas measures the scale-out serving path: the Server
// and Offline scenarios against 1 vs 2 loopback replicas, with the
// per-replica completion/latency breakdown reported for the sharded runs.
// On a single-core runner the replicas share the core, so parity (not
// speedup) is the expected outcome; the speedup materializes when each
// replica gets its own cores.
func BenchmarkServingReplicas(b *testing.B) {
	engine, qsl := servingStack(b)
	serverSettings := loadgen.DefaultSettings(loadgen.Server)
	serverSettings.MinQueryCount = 256
	serverSettings.MinDuration = 0
	serverSettings.ServerTargetQPS = 1000
	serverSettings.ServerTargetLatency = 100 * time.Millisecond
	offlineSettings := loadgen.DefaultSettings(loadgen.Offline)
	offlineSettings.MinSampleCount = 2048
	offlineSettings.MinDuration = 0

	// Each sub-benchmark gets its own fleet: server metrics accumulate from
	// server start, so sharing one fleet would fold the previous scenario's
	// traffic into the reported per-replica breakdown.
	reportReplicas := func(b *testing.B, servers []*serve.Server) {
		b.Helper()
		for i, srv := range servers {
			snap := srv.Metrics()
			b.ReportMetric(float64(snap.Completed), fmt.Sprintf("replica%d_completed", i))
			b.ReportMetric(float64(snap.ServiceP99), fmt.Sprintf("replica%d_service_p99_ns", i))
		}
	}
	for _, replicas := range []int{1, 2} {
		b.Run(fmt.Sprintf("server/replicas%d", replicas), func(b *testing.B) {
			servers, remote := startServingFleet(b, engine, qsl, replicas)
			var qps float64
			for i := 0; i < b.N; i++ {
				res, err := loadgen.StartTest(remote, qsl, serverSettings)
				if err != nil {
					b.Fatal(err)
				}
				if res.ResponsesDropped > 0 {
					b.Fatalf("%d responses dropped", res.ResponsesDropped)
				}
				qps = res.ServerAchievedQPS
			}
			remote.Wait()
			if errs := remote.Errors(); len(errs) > 0 {
				b.Fatal(errs[0])
			}
			b.ReportMetric(qps, "qps")
			reportReplicas(b, servers)
		})
		b.Run(fmt.Sprintf("offline/replicas%d", replicas), func(b *testing.B) {
			servers, remote := startServingFleet(b, engine, qsl, replicas)
			var tput float64
			for i := 0; i < b.N; i++ {
				res, err := loadgen.StartTest(remote, qsl, offlineSettings)
				if err != nil {
					b.Fatal(err)
				}
				if res.ResponsesDropped > 0 {
					b.Fatalf("%d responses dropped", res.ResponsesDropped)
				}
				tput = res.OfflineSamplesPerSec
			}
			remote.Wait()
			if errs := remote.Errors(); len(errs) > 0 {
				b.Fatal(errs[0])
			}
			b.ReportMetric(tput, "samples/s")
			reportReplicas(b, servers)
		})
	}
}

// BenchmarkServingRecovery measures the cost of surviving a replica crash:
// an Offline stream runs through a 2-replica fleet while replica 0 is killed
// mid-run and restarted on its address. The run must complete with zero
// dropped responses (the fleet routes around the outage and failover retries
// re-deliver the stranded samples); reported metrics are the faulted run's
// throughput and the outage's measured down-to-rejoin latency.
func BenchmarkServingRecovery(b *testing.B) {
	engine, qsl := servingStack(b)
	settings := loadgen.DefaultSettings(loadgen.Offline)
	settings.MinSampleCount = 2048
	settings.MinDuration = 0

	var tput, rejoinMS float64
	for i := 0; i < b.N; i++ {
		scfg := serve.Config{Engine: engine, Store: qsl, BatchWait: 2 * time.Millisecond}
		srv0, err := serve.New(scfg)
		if err != nil {
			b.Fatal(err)
		}
		srv1, err := serve.New(scfg)
		if err != nil {
			b.Fatal(err)
		}
		remote, err := backend.NewRemote(backend.RemoteConfig{
			Addrs:         []string{srv0.Addr(), srv1.Addr()},
			RedialInitial: time.Millisecond,
			RedialMax:     10 * time.Millisecond,
			RecoverySeed:  uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}

		done := make(chan *loadgen.Result, 1)
		go func() {
			res, err := loadgen.StartTest(remote, qsl, settings)
			if err != nil {
				b.Error(err)
			}
			done <- res
		}()
		// Crash replica 0 once it has served traffic, then bring it back.
		for srv0.Metrics().Completed == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		srv0.Kill()
		time.Sleep(2 * time.Millisecond)
		restarted, err := serve.New(serve.Config{
			Engine: engine, Store: qsl, BatchWait: 2 * time.Millisecond, Addr: srv0.Addr(),
		})
		if err != nil {
			b.Fatal(err)
		}

		res := <-done
		if res == nil {
			b.Fatal("run failed")
		}
		if res.ResponsesDropped > 0 {
			b.Fatalf("%d responses dropped despite failover", res.ResponsesDropped)
		}
		remote.Wait()
		deadline := time.Now().Add(5 * time.Second)
		for remote.Recovery().Rejoins == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		rec := remote.Recovery()
		if rec.Rejoins == 0 {
			b.Fatal("killed replica never rejoined")
		}
		iv := rec.DownIntervals[0]
		rejoinMS = float64(iv.End.Sub(iv.Start)) / float64(time.Millisecond)
		tput = res.OfflineSamplesPerSec

		remote.Close()
		restarted.Close()
		srv1.Close()
	}
	b.ReportMetric(tput, "samples/s")
	b.ReportMetric(rejoinMS, "rejoin_ms")
}

// BenchmarkServingAutoscale measures what live capacity management buys an
// undersized server: the same Offline stream runs against a 1-worker pool,
// once with its startup limits frozen and once with a capacity manager
// growing workers and queue from observed pressure mid-run. Reported metrics
// are each form's throughput plus the managed pool's final worker count and
// recorded resize decisions.
func BenchmarkServingAutoscale(b *testing.B) {
	engine, qsl := servingStack(b)
	settings := loadgen.DefaultSettings(loadgen.Offline)
	settings.MinSampleCount = 2048
	settings.MinDuration = 0

	small := serve.Config{
		Engine: engine, Store: qsl,
		Workers: 1, MaxBatch: 4, QueueDepth: 4096, BatchWait: 500 * time.Microsecond,
	}
	run := func(b *testing.B, srv *serve.Server) float64 {
		b.Helper()
		// The in-flight window must outrun the dispatcher's batch pre-buffer,
		// or the admission queue never shows the depth the manager reads as
		// pressure.
		remote, err := backend.NewRemote(backend.RemoteConfig{
			Addr: srv.Addr(), Conns: 2, MaxInFlight: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer remote.Close()
		var tput float64
		for i := 0; i < b.N; i++ {
			res, err := loadgen.StartTest(remote, qsl, settings)
			if err != nil {
				b.Fatal(err)
			}
			if res.ResponsesDropped > 0 {
				b.Fatalf("%d responses dropped", res.ResponsesDropped)
			}
			tput = res.OfflineSamplesPerSec
		}
		remote.Wait()
		if errs := remote.Errors(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
		return tput
	}

	b.Run("static", func(b *testing.B) {
		srv, err := serve.New(small)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		b.ReportMetric(run(b, srv), "samples/s")
	})

	b.Run("managed", func(b *testing.B) {
		srv, err := serve.New(small)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		// Env and MaxWorkers are left to detection: the manager grows the
		// pool only as far as the measured cgroup/runtime CPU limit allows,
		// so workers_final reports what this machine actually earned. The
		// idle-shrink threshold is pushed out of reach so the gaps between
		// benchmark iterations don't oscillate the pool mid-measurement.
		m := capacity.NewManager(srv, capacity.Config{
			Interval: 2 * time.Millisecond, GrowAfter: 1, Cooldown: 4 * time.Millisecond,
			MaxQueue: 8192, ShrinkAfter: 1 << 20,
		})
		tput := run(b, srv)
		m.Close()
		lim, err := srv.Limits("")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tput, "samples/s")
		b.ReportMetric(float64(lim.Workers), "workers_final")
		b.ReportMetric(float64(len(m.Events())), "resize_decisions")
	})
}

// --- Statistical machinery. ---

func BenchmarkPoissonSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := stats.NewPoissonProcess(stats.NewRNG(uint64(i)), 1000)
		if err != nil {
			b.Fatal(err)
		}
		p.Schedule(8192)
	}
}

func BenchmarkQueryRequirementTableIV(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stats.TableIV(); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard against the synthetic dataset generator regressing, since every
// harness benchmark depends on it.
func BenchmarkSyntheticImageNetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.NewSyntheticImages(dataset.ImageConfig{
			Samples: 256, Classes: 10, Channels: 3, Height: 16, Width: 16, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingSwarm runs the Swarm scenario end to end over a loopback
// serving deployment: a population of simulated client sessions, each on its
// own Poisson clock with reconnect churn, multiplexed over the Remote's
// connection pool. One op is one complete LoadGen run; "qps" is the
// aggregate achieved rate and "churns" the session reconnects of the last
// run.
func BenchmarkServingSwarm(b *testing.B) {
	engine, qsl := servingStack(b)
	settings := loadgen.DefaultSettings(loadgen.Swarm)
	settings.MinQueryCount = 512
	settings.MinDuration = 0
	settings.SwarmSessions = 500
	settings.SwarmSessionQPS = 2
	settings.SwarmSessionLifetime = 100 * time.Millisecond
	settings.ServerTargetLatency = 500 * time.Millisecond

	_, remote := startServing(b, engine, qsl)
	var qps, sessions, churns float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := loadgen.StartTest(remote, qsl, settings)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Valid {
			b.Fatalf("swarm run invalid: %v", res.ValidityMessages)
		}
		qps = res.ServerAchievedQPS
		sessions = float64(res.SwarmSessions)
		churns = float64(res.SwarmChurns)
	}
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		b.Fatal(errs[0])
	}
	b.ReportMetric(qps, "qps")
	b.ReportMetric(sessions, "sessions")
	b.ReportMetric(churns, "churns")
}

// BenchmarkServingSwarmWire pins the steady-state swarm wire path: one op is
// one request framed into a pooled buffer and written, plus one response
// frame read back through the pooled reader and its binary-codec payload
// decoded in place. The acceptance bar is 0 allocs/op — the zero-allocation
// claim of the binary codec plus size-classed buffer pools, measured across
// the full client send/receive cycle.
func BenchmarkServingSwarmWire(b *testing.B) {
	// One response frame as the server emits it:
	// [u32 len][type][u64 id][status][binary payload].
	payloadBytes := payload.AppendClass(nil, 7)
	body := binary.BigEndian.AppendUint64(nil, 42)
	body = append(body, byte(serve.StatusOK))
	body = append(body, payloadBytes...)
	respFrame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	respFrame = append(respFrame, serve.MsgPredict)
	respFrame = append(respFrame, body...)

	req := serve.PredictRequest{ID: 42, SampleIndex: 3}
	stream := bytes.NewReader(nil)
	reader := bufio.NewReader(stream)
	_ = serve.WritePredictRequest(io.Discard, req) // warm the pools

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := serve.WritePredictRequest(io.Discard, req); err != nil {
			b.Fatal(err)
		}
		stream.Reset(respFrame)
		reader.Reset(stream)
		frame, err := serve.ReadClientFrame(reader)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := payload.DecodeClass(frame.Predict.Data); err != nil {
			b.Fatal(err)
		}
		frame.Release()
	}
}
