// Quickstart: run one MLPerf Inference benchmark end to end.
//
// This example builds the lightweight image-classification task
// (MobileNet-v1 on a synthetic ImageNet-like data set), runs the LoadGen in
// the single-stream scenario in performance mode, then runs accuracy mode and
// checks the model against its quality target — the same flow a submitter
// follows, scaled down so it finishes in about a second.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
)

func main() {
	// 1. Assemble the task: reference model, synthetic data set, QSL and SUT.
	assembly, err := harness.BuildNative(core.ImageClassificationLight, harness.BuildOptions{
		DatasetSamples: 128,
		Seed:           42,
	})
	if err != nil {
		log.Fatalf("building task: %v", err)
	}
	fmt.Printf("task:               %s\n", assembly.Spec.Task)
	fmt.Printf("reference model:    %s (%d parameters, %d ops/input)\n",
		assembly.Info.PaperName, assembly.Info.Params, assembly.Info.OpsPerInput)
	fmt.Printf("reference quality:  %.4f (%s)\n", assembly.ReferenceQuality, assembly.Spec.QualityMetric)
	fmt.Printf("quality target:     %.4f (%.0f%% of reference)\n\n",
		assembly.QualityTarget, 100*assembly.Spec.TargetRatio)

	// 2. Scale the production settings (1,024 queries, 60 s minimum) down so
	//    the example finishes quickly, then run performance + accuracy modes.
	settings := harness.QuickSettings(assembly.Spec, loadgen.SingleStream, 8)
	settings.MinDuration = 250 * time.Millisecond

	report, err := harness.Run(assembly, harness.RunOptions{
		Scenario:    loadgen.SingleStream,
		Settings:    &settings,
		RunAccuracy: true,
	})
	if err != nil {
		log.Fatalf("running benchmark: %v", err)
	}

	// 3. Inspect the results the way a submission would report them.
	perf := report.Performance
	fmt.Printf("scenario:           %s (%s)\n", perf.Scenario, core.ScenarioMetric(perf.Scenario))
	fmt.Printf("queries completed:  %d in %v\n", perf.QueriesCompleted, perf.TestDuration)
	fmt.Printf("90th pct latency:   %v\n", perf.SingleStreamLatency)
	fmt.Printf("latency p50/p99:    %v / %v\n", perf.QueryLatencies.P50, perf.QueryLatencies.P99)
	fmt.Printf("run valid:          %v\n", perf.Valid)
	fmt.Printf("accuracy check:     %s\n", report.Accuracy)
	if report.Valid() {
		fmt.Println("\nresult would be accepted as a valid closed-division entry")
	} else {
		fmt.Println("\nresult would be REJECTED:", perf.ValidityMessages)
	}
}
