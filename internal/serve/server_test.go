package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mlperf/internal/dataset"
	"mlperf/internal/model"
	"mlperf/internal/payload"
	"mlperf/internal/tensor"
)

// echoEngine answers every sample with its index as the class, optionally
// blocking on a gate so tests can hold the worker pool busy deterministically.
type echoEngine struct {
	gate chan struct{} // when non-nil, every Predict waits for one token
}

func (e *echoEngine) Name() string       { return "echo" }
func (e *echoEngine) Kind() dataset.Kind { return dataset.KindImageClassification }

func (e *echoEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]model.Output, error) {
	if e.gate != nil {
		<-e.gate
	}
	out := make([]model.Output, len(samples))
	for i, s := range samples {
		out[i] = model.Output{Kind: dataset.KindImageClassification, Class: s.Index}
	}
	return out, nil
}

// indexStore fabricates samples on demand.
type indexStore struct{}

func (indexStore) Get(index int) (*dataset.Sample, error) {
	if index < 0 || index >= 1<<20 {
		return nil, fmt.Errorf("bad index %d", index)
	}
	return &dataset.Sample{Index: index}, nil
}

// testClient is a bare protocol client for white-box server tests.
type testClient struct {
	t  *testing.T
	c  net.Conn
	r  *bufio.Reader
	mu sync.Mutex
}

func dialTest(t *testing.T, addr string) *testClient {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &testClient{t: t, c: c, r: bufio.NewReader(c)}
}

func (tc *testClient) predict(id uint64, index int, deadline time.Time) {
	tc.t.Helper()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := WritePredictRequest(tc.c, PredictRequest{ID: id, SampleIndex: index, Deadline: deadline}); err != nil {
		tc.t.Fatal(err)
	}
}

func (tc *testClient) control(msgType byte) {
	tc.t.Helper()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := WriteControl(tc.c, msgType); err != nil {
		tc.t.Fatal(err)
	}
}

// read collects n predict responses keyed by id.
func (tc *testClient) read(n int) map[uint64]PredictResponse {
	tc.t.Helper()
	tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	out := make(map[uint64]PredictResponse, n)
	for len(out) < n {
		frame, err := ReadClientFrame(tc.r)
		if err != nil {
			tc.t.Fatalf("reading response %d of %d: %v", len(out)+1, n, err)
		}
		if frame.Type != MsgPredict {
			continue
		}
		out[frame.Predict.ID] = frame.Predict
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Engine == nil && len(cfg.Models) == 0 {
		cfg.Engine = &echoEngine{}
	}
	if cfg.Store == nil {
		cfg.Store = indexStore{}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	deadline := time.Unix(0, 1234567890)
	if err := WritePredictRequest(&buf, PredictRequest{ID: 42, SampleIndex: 7, Deadline: deadline}); err != nil {
		t.Fatal(err)
	}
	msgType, body, err := readFrame(bufio.NewReader(&buf))
	if err != nil || msgType != MsgPredict {
		t.Fatalf("readFrame: type %d, err %v", msgType, err)
	}
	req, err := decodePredictRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if req.ID != 42 || req.SampleIndex != 7 || !req.Deadline.Equal(deadline) {
		t.Errorf("request round-trip mismatch: %+v", req)
	}

	buf.Reset()
	if err := writeFrame(&buf, MsgPredict, encodePredictResponse(42, StatusOK, []byte("payload"))); err != nil {
		t.Fatal(err)
	}
	frame, err := ReadClientFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	resp := frame.Predict
	if resp.ID != 42 || resp.Status != StatusOK || string(resp.Data) != "payload" {
		t.Errorf("response round-trip mismatch: %+v", resp)
	}

	// Zero deadline survives as zero.
	buf.Reset()
	if err := WritePredictRequest(&buf, PredictRequest{ID: 1, SampleIndex: 2}); err != nil {
		t.Fatal(err)
	}
	_, body, _ = readFrame(bufio.NewReader(&buf))
	req, _ = decodePredictRequest(body)
	if !req.Deadline.IsZero() {
		t.Errorf("zero deadline decoded as %v", req.Deadline)
	}

	// Oversized frames are refused.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, MsgPredict})
	if _, _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Error("oversized frame: expected error")
	}
}

func TestServeAnswersWithEncodedOutputs(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 4, BatchWait: time.Millisecond})
	tc := dialTest(t, s.Addr())
	const n = 16
	for i := 0; i < n; i++ {
		tc.predict(uint64(i+1), i*3, time.Time{})
	}
	responses := tc.read(n)
	for i := 0; i < n; i++ {
		resp := responses[uint64(i+1)]
		if resp.Status != StatusOK {
			t.Fatalf("request %d: status %v", i+1, resp.Status)
		}
		class, err := payload.DecodeClass(resp.Data)
		if err != nil {
			t.Fatal(err)
		}
		if class != i*3 {
			t.Errorf("request %d: class %d, want %d", i+1, class, i*3)
		}
	}
	snap := s.Metrics()
	if snap.Admitted != n || snap.Completed != n || snap.Rejected != 0 {
		t.Errorf("metrics: %+v", snap)
	}
	var batched uint64
	for _, b := range snap.BatchHistogram {
		batched += b.Count
	}
	if batched == 0 {
		t.Error("no batches recorded in the histogram")
	}
}

func TestServeBadSampleIndexIsIsolated(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 4, BatchWait: time.Millisecond})
	tc := dialTest(t, s.Addr())
	tc.predict(1, 5, time.Time{})
	tc.predict(2, 1<<21, time.Time{}) // store error
	tc.predict(3, 9, time.Time{})
	responses := tc.read(3)
	if responses[1].Status != StatusOK || responses[3].Status != StatusOK {
		t.Errorf("good samples: %v, %v", responses[1].Status, responses[3].Status)
	}
	if responses[2].Status != StatusError {
		t.Errorf("bad sample: status %v, want %v", responses[2].Status, StatusError)
	}
	if snap := s.Metrics(); snap.Errors != 1 {
		t.Errorf("metrics errors = %d, want 1", snap.Errors)
	}
}

func TestAdmissionControlRejects(t *testing.T) {
	gate := make(chan struct{})
	s := newTestServer(t, Config{
		Engine: &echoEngine{gate: gate}, Workers: 1, QueueDepth: 2,
		MaxBatch: 1, BatchWait: time.Millisecond, Policy: RejectNewest,
	})
	tc := dialTest(t, s.Addr())
	const n = 12
	for i := 0; i < n; i++ {
		tc.predict(uint64(i+1), i, time.Time{})
	}
	// The worker pool (1 worker, 1 queued batch) plus the admission queue (2)
	// cannot hold 12 requests: rejects must surface while the gate is shut.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no rejects despite a full queue")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	responses := tc.read(n)
	var ok, rejected int
	for _, resp := range responses {
		switch resp.Status {
		case StatusOK:
			ok++
		case StatusRejected:
			rejected++
		default:
			t.Errorf("unexpected status %v", resp.Status)
		}
	}
	if rejected == 0 || ok == 0 || ok+rejected != n {
		t.Errorf("ok %d + rejected %d, want both positive summing to %d", ok, rejected, n)
	}
	snap := s.Metrics()
	if snap.Rejected != uint64(rejected) || snap.Admitted != uint64(ok) {
		t.Errorf("metrics admitted/rejected = %d/%d, want %d/%d", snap.Admitted, snap.Rejected, ok, rejected)
	}
}

func TestAdmissionControlShedsOldest(t *testing.T) {
	gate := make(chan struct{})
	s := newTestServer(t, Config{
		Engine: &echoEngine{gate: gate}, Workers: 1, QueueDepth: 2,
		MaxBatch: 1, BatchWait: time.Millisecond, Policy: ShedOldest,
	})
	tc := dialTest(t, s.Addr())
	const n = 12
	for i := 0; i < n; i++ {
		tc.predict(uint64(i+1), i, time.Time{})
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Shed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sheds despite a full queue")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	responses := tc.read(n)
	var rejectedIDs, okIDs []uint64
	for id, resp := range responses {
		if resp.Status == StatusRejected {
			rejectedIDs = append(rejectedIDs, id)
		} else if resp.Status == StatusOK {
			okIDs = append(okIDs, id)
		}
	}
	if len(rejectedIDs) == 0 {
		t.Fatal("no rejects recorded")
	}
	// Shedding the oldest means the LAST arrival always survives.
	for _, id := range rejectedIDs {
		if id == n {
			t.Errorf("shed-oldest rejected the newest request (id %d)", id)
		}
	}
	if len(okIDs)+len(rejectedIDs) != n {
		t.Errorf("%d ok + %d rejected, want %d total", len(okIDs), len(rejectedIDs), n)
	}
	// Counter reconciliation: every shed request was first admitted, so
	// admitted covers both the served and the shed.
	snap := s.Metrics()
	if snap.Shed != uint64(len(rejectedIDs)) || snap.Rejected != 0 {
		t.Errorf("metrics shed/rejected = %d/%d, want %d/0", snap.Shed, snap.Rejected, len(rejectedIDs))
	}
	if snap.Admitted != snap.Completed+snap.Shed {
		t.Errorf("admitted %d != completed %d + shed %d", snap.Admitted, snap.Completed, snap.Shed)
	}
}

func TestDeadlineExpiresQueuedRequests(t *testing.T) {
	gate := make(chan struct{})
	s := newTestServer(t, Config{
		Engine: &echoEngine{gate: gate}, Workers: 1, QueueDepth: 16,
		MaxBatch: 1, BatchWait: time.Millisecond,
	})
	tc := dialTest(t, s.Addr())
	tc.predict(1, 0, time.Time{})                        // occupies the worker
	tc.predict(2, 1, time.Now().Add(5*time.Millisecond)) // will expire while queued
	tc.predict(3, 2, time.Now().Add(10*time.Second))     // generous: survives
	time.Sleep(30 * time.Millisecond)                    // let request 2's deadline lapse
	gate <- struct{}{}                                   // finish request 1
	gate <- struct{}{}                                   // serve request 3 (request 2 expires without predicting)
	close(gate)
	responses := tc.read(3)
	if responses[1].Status != StatusOK {
		t.Errorf("request 1: %v, want ok", responses[1].Status)
	}
	if responses[2].Status != StatusExpired {
		t.Errorf("request 2: %v, want expired", responses[2].Status)
	}
	if responses[3].Status != StatusOK {
		t.Errorf("request 3: %v, want ok", responses[3].Status)
	}
	if snap := s.Metrics(); snap.Expired != 1 {
		t.Errorf("metrics expired = %d, want 1", snap.Expired)
	}
}

func TestFlushSwitchesToPassthroughAndReopenRearms(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 8, BatchWait: 10 * time.Second})
	tc := dialTest(t, s.Addr())
	// Three requests would wait out the 10s window...
	tc.predict(1, 0, time.Time{})
	tc.predict(2, 1, time.Time{})
	tc.predict(3, 2, time.Time{})
	tc.control(MsgFlush) // ...but the end-of-series flush forces them out now.
	responses := tc.read(3)
	for id := uint64(1); id <= 3; id++ {
		if responses[id].Status != StatusOK {
			t.Errorf("request %d: %v", id, responses[id].Status)
		}
	}
	// Pass-through: a straggler is answered immediately, no re-armed window.
	tc.predict(4, 3, time.Time{})
	if resp := tc.read(1); resp[4].Status != StatusOK {
		t.Errorf("straggler: %v", resp[4].Status)
	}
	// Reopen re-arms batching: a full batch dispatches without the window.
	tc.control(MsgReopen)
	for i := 0; i < 8; i++ {
		tc.predict(uint64(10+i), i, time.Time{})
	}
	full := tc.read(8)
	for i := 0; i < 8; i++ {
		if full[uint64(10+i)].Status != StatusOK {
			t.Errorf("batched request %d: %v", 10+i, full[uint64(10+i)].Status)
		}
	}
	if snap := s.Metrics(); snap.Flushes != 1 {
		t.Errorf("metrics flushes = %d, want 1", snap.Flushes)
	}
}

func TestMetricsOverTheWire(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 2, BatchWait: time.Millisecond})
	tc := dialTest(t, s.Addr())
	tc.predict(1, 4, time.Time{})
	tc.read(1)
	tc.mu.Lock()
	err := WriteMetricsRequest(tc.c, 99)
	tc.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := ReadClientFrame(tc.r)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != MsgMetrics || frame.MetricsID != 99 {
		t.Fatalf("frame type %d id %d, want metrics id 99", frame.Type, frame.MetricsID)
	}
	var snap Snapshot
	if err := json.Unmarshal(frame.MetricsJSON, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Completed != 1 || snap.Admitted != 1 {
		t.Errorf("wire snapshot: %+v", snap)
	}
	if snap.ServiceP99 <= 0 || snap.QueueP99 < 0 {
		t.Errorf("latency percentiles not populated: %+v", snap)
	}
}

func TestConcurrentConnections(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 8, BatchWait: time.Millisecond})
	const conns, per = 4, 64
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", s.Addr(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			go func() {
				for i := 0; i < per; i++ {
					id := uint64(c*per + i + 1)
					WritePredictRequest(conn, PredictRequest{ID: id, SampleIndex: int(id) * 7})
				}
			}()
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			for i := 0; i < per; i++ {
				frame, err := ReadClientFrame(r)
				if err != nil {
					errs <- err
					return
				}
				resp := frame.Predict
				class, err := payload.DecodeClass(resp.Data)
				if err != nil {
					errs <- err
					return
				}
				if class != int(resp.ID)*7 {
					errs <- fmt.Errorf("id %d answered class %d, want %d", resp.ID, class, resp.ID*7)
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if snap := s.Metrics(); snap.Completed != conns*per {
		t.Errorf("completed %d, want %d", snap.Completed, conns*per)
	}
}

func TestCloseDrainsAdmittedWork(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 4, BatchWait: time.Millisecond})
	tc := dialTest(t, s.Addr())
	const n = 8
	for i := 0; i < n; i++ {
		tc.predict(uint64(i+1), i, time.Time{})
	}
	responses := tc.read(n) // all answered before we close
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for id, resp := range responses {
		if resp.Status != StatusOK {
			t.Errorf("request %d: %v", id, resp.Status)
		}
	}
	// Double close is safe.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Store: indexStore{}}); err == nil {
		t.Error("missing engine: expected error")
	}
	if _, err := New(Config{Engine: &echoEngine{}}); err == nil {
		t.Error("missing store: expected error")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy: expected error")
	}
	if p, err := ParsePolicy("shed-oldest"); err != nil || p != ShedOldest {
		t.Errorf("ParsePolicy(shed-oldest) = %v, %v", p, err)
	}
}

// offsetEngine answers sample index + offset, so multi-model tests can tell
// which engine served a request.
type offsetEngine struct {
	offset int
}

func (e *offsetEngine) Name() string       { return fmt.Sprintf("offset(%d)", e.offset) }
func (e *offsetEngine) Kind() dataset.Kind { return dataset.KindImageClassification }

func (e *offsetEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]model.Output, error) {
	out := make([]model.Output, len(samples))
	for i, s := range samples {
		out[i] = model.Output{Kind: dataset.KindImageClassification, Class: s.Index + e.offset}
	}
	return out, nil
}

// predictModel writes a V2 model-addressed predict request.
func (tc *testClient) predictModel(id uint64, index int, modelID string) {
	tc.t.Helper()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := WritePredictRequest(tc.c, PredictRequest{ID: id, SampleIndex: index, Model: modelID}); err != nil {
		tc.t.Fatal(err)
	}
}

// TestMultiModelRouting hosts two named engines behind one listener and
// checks that V2 frames route by model id, each model's metrics stay
// separate, and the merged snapshot reconciles with their sum.
func TestMultiModelRouting(t *testing.T) {
	s := newTestServer(t, Config{
		Store: indexStore{},
		Models: []ModelConfig{
			{Name: "alpha", Engine: &offsetEngine{offset: 1000}},
			{Name: "beta", Engine: &offsetEngine{offset: 2000}},
		},
		MaxBatch: 4, BatchWait: time.Millisecond,
	})
	got := s.Models()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Models() = %v", got)
	}
	tc := dialTest(t, s.Addr())
	const n = 8
	for i := 0; i < n; i++ {
		tc.predictModel(uint64(i+1), i, "alpha")
		tc.predictModel(uint64(100+i+1), i, "beta")
	}
	responses := tc.read(2 * n)
	for i := 0; i < n; i++ {
		a := responses[uint64(i+1)]
		b := responses[uint64(100+i+1)]
		if a.Status != StatusOK || b.Status != StatusOK {
			t.Fatalf("request %d: alpha %v, beta %v", i, a.Status, b.Status)
		}
		aClass, err := payload.DecodeClass(a.Data)
		if err != nil {
			t.Fatal(err)
		}
		bClass, err := payload.DecodeClass(b.Data)
		if err != nil {
			t.Fatal(err)
		}
		if aClass != i+1000 {
			t.Errorf("alpha answered class %d for index %d, want %d", aClass, i, i+1000)
		}
		if bClass != i+2000 {
			t.Errorf("beta answered class %d for index %d, want %d", bClass, i, i+2000)
		}
	}

	// Per-model metrics are separated; the merged snapshot is their sum.
	alpha, err := s.ModelMetrics("alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := s.ModelMetrics("beta")
	if err != nil {
		t.Fatal(err)
	}
	if alpha.Model != "alpha" || beta.Model != "beta" {
		t.Errorf("snapshot labels: %q, %q", alpha.Model, beta.Model)
	}
	if alpha.Completed != n || beta.Completed != n {
		t.Errorf("per-model completed: alpha %d, beta %d, want %d each", alpha.Completed, beta.Completed, n)
	}
	merged := s.Metrics()
	if merged.Completed != 2*n || merged.Admitted != 2*n {
		t.Errorf("merged snapshot: %+v", merged)
	}
	if merged.Merged != 2 {
		t.Errorf("merged count = %d, want 2", merged.Merged)
	}
	if _, err := s.ModelMetrics("gamma"); err == nil {
		t.Error("unknown model metrics: expected error")
	}
}

// TestMultiModelUnroutableAnswersError: V1 predicts against an ambiguous
// multi-model server and V2 predicts naming an unknown model are answered
// with StatusError — never silently dropped, never crossing to a wrong model.
func TestMultiModelUnroutableAnswersError(t *testing.T) {
	s := newTestServer(t, Config{
		Store: indexStore{},
		Models: []ModelConfig{
			{Name: "alpha", Engine: &offsetEngine{offset: 1000}},
			{Name: "beta", Engine: &offsetEngine{offset: 2000}},
		},
		MaxBatch: 2, BatchWait: time.Millisecond,
	})
	tc := dialTest(t, s.Addr())
	tc.predict(1, 3, time.Time{})  // V1 frame, no default model
	tc.predictModel(2, 3, "gamma") // unknown model id
	tc.predictModel(3, 3, "alpha") // sanity: still routable
	responses := tc.read(3)
	if responses[1].Status != StatusError {
		t.Errorf("V1 predict on ambiguous server: %v, want %v", responses[1].Status, StatusError)
	}
	if responses[2].Status != StatusError {
		t.Errorf("unknown model: %v, want %v", responses[2].Status, StatusError)
	}
	if responses[3].Status != StatusOK {
		t.Errorf("routable request: %v, want ok", responses[3].Status)
	}
}

// TestSingleNamedModelIsDefault: when exactly one (named) model is hosted, V1
// frames route to it, keeping PR 4 clients compatible with named deployments.
func TestSingleNamedModelIsDefault(t *testing.T) {
	s := newTestServer(t, Config{
		Store:    indexStore{},
		Models:   []ModelConfig{{Name: "solo", Engine: &offsetEngine{offset: 500}}},
		MaxBatch: 2, BatchWait: time.Millisecond,
	})
	tc := dialTest(t, s.Addr())
	tc.predict(1, 7, time.Time{})
	resp := tc.read(1)[1]
	if resp.Status != StatusOK {
		t.Fatalf("status %v", resp.Status)
	}
	class, err := payload.DecodeClass(resp.Data)
	if err != nil {
		t.Fatal(err)
	}
	if class != 507 {
		t.Errorf("class %d, want 507", class)
	}
}

// TestModelScopedControls: a model-addressed flush switches only that model
// to pass-through; the V1 flush (empty id) flushes every hosted model.
func TestModelScopedControls(t *testing.T) {
	s := newTestServer(t, Config{
		Store: indexStore{},
		Models: []ModelConfig{
			{Name: "alpha", Engine: &offsetEngine{offset: 0}},
			{Name: "beta", Engine: &offsetEngine{offset: 0}},
		},
		MaxBatch: 8, BatchWait: 10 * time.Second,
	})
	tc := dialTest(t, s.Addr())
	writeControlModel := func(msgType byte, modelID string) {
		tc.t.Helper()
		tc.mu.Lock()
		defer tc.mu.Unlock()
		if err := WriteControlModel(tc.c, msgType, modelID); err != nil {
			t.Fatal(err)
		}
	}
	// A lone alpha request would wait out the 10s window; flushing alpha (and
	// only alpha) forces it out.
	tc.predictModel(1, 1, "alpha")
	writeControlModel(MsgFlush, "alpha")
	if resp := tc.read(1)[1]; resp.Status != StatusOK {
		t.Fatalf("alpha flush: %v", resp.Status)
	}
	alpha, _ := s.ModelMetrics("alpha")
	beta, _ := s.ModelMetrics("beta")
	if alpha.Flushes != 1 || beta.Flushes != 0 {
		t.Errorf("flushes alpha/beta = %d/%d, want 1/0", alpha.Flushes, beta.Flushes)
	}
	// The V1 flush reaches every model.
	tc.control(MsgFlush)
	deadline := time.Now().Add(5 * time.Second)
	for {
		alpha, _ = s.ModelMetrics("alpha")
		beta, _ = s.ModelMetrics("beta")
		if alpha.Flushes == 2 && beta.Flushes == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("global flush not applied: alpha %d, beta %d", alpha.Flushes, beta.Flushes)
		}
		time.Sleep(time.Millisecond)
	}
	// Beta is now in pass-through too: its straggler answers immediately.
	tc.predictModel(9, 2, "beta")
	if resp := tc.read(1)[9]; resp.Status != StatusOK {
		t.Errorf("beta pass-through: %v", resp.Status)
	}
}

// TestProbeDrainKill pins the health-probe handshake against the server's
// three lifecycle states: a live server answers ProbeReady, a draining server
// answers ProbeDraining (while still answering everything already admitted),
// and a killed server answers nothing at all.
func TestProbeDrainKill(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	tc := dialTest(t, s.Addr())

	probe := func(id uint64) (ClientFrame, error) {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		if err := WriteProbeRequest(tc.c, id); err != nil {
			return ClientFrame{}, err
		}
		tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
		return ReadClientFrame(tc.r)
	}

	frame, err := probe(1)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != MsgProbe || frame.ProbeID != 1 || !frame.ProbeReady {
		t.Fatalf("live server probe: %+v", frame)
	}

	// Admit work, then drain: the admitted request is answered, and probes on
	// the still-open connection now report draining.
	tc.predict(2, 3, time.Time{})
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Admitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Drain()
	if !s.Draining() {
		t.Fatal("server not draining after Drain")
	}
	got := tc.read(1)
	if resp, ok := got[2]; !ok || resp.Status != StatusOK {
		t.Fatalf("drained server abandoned admitted work: %+v", got)
	}
	frame, err = probe(4)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != MsgProbe || frame.ProbeReady {
		t.Fatalf("draining server probe should answer ProbeDraining: %+v", frame)
	}

	if err := s.Kill(); err != nil {
		t.Fatal(err)
	}
	if _, err := probe(5); err == nil {
		t.Fatal("killed server answered a probe")
	}
}

// TestMergeSnapshots pins the merge semantics the router's merged view and
// the multi-model server's Metrics rely on.
func TestMergeSnapshots(t *testing.T) {
	a := Snapshot{
		QueueDepth: 1, Admitted: 10, Completed: 8, Rejected: 2, Expired: 1,
		Workers: 2, MaxBatch: 8, QueueP99: 100, ServiceP99: 50,
		BatchHistogram: []BatchBucket{{Le: 1, Count: 3}, {Le: 2, Count: 5}},
	}
	b := Snapshot{
		QueueDepth: 2, Admitted: 20, Completed: 20, Shed: 3,
		Workers: 4, MaxBatch: 4, QueueP99: 40, ServiceP99: 70,
		BatchHistogram: []BatchBucket{{Le: 1, Count: 1}},
	}
	m := MergeSnapshots(a, b)
	if m.QueueDepth != 3 || m.Admitted != 30 || m.Completed != 28 || m.Rejected != 2 || m.Shed != 3 || m.Expired != 1 {
		t.Errorf("merged counters: %+v", m)
	}
	if m.Workers != 6 || m.MaxBatch != 8 {
		t.Errorf("merged config echo: workers %d, maxbatch %d", m.Workers, m.MaxBatch)
	}
	if m.QueueP99 != 100 || m.ServiceP99 != 70 {
		t.Errorf("merged percentiles should take the worst shard: %+v", m)
	}
	var le1 uint64
	for _, bb := range m.BatchHistogram {
		if bb.Le == 1 {
			le1 = bb.Count
		}
	}
	if le1 != 4 {
		t.Errorf("merged histogram le=1 count %d, want 4", le1)
	}
	if m.Merged != 2 {
		t.Errorf("merged count %d, want 2", m.Merged)
	}
	if z := MergeSnapshots(); z.Admitted != 0 || z.Merged != 0 {
		t.Errorf("empty merge: %+v", z)
	}
}

// TestMergeSnapshotsRecovery pins the recovery-record fold: interval lists
// concatenate, counters sum, and snapshots without a record neither produce
// one nor lose a sibling's.
func TestMergeSnapshotsRecovery(t *testing.T) {
	t0 := time.Now()
	a := Snapshot{Recovery: &RecoveryStats{
		DownIntervals: []DownInterval{{Replica: 0, Start: t0, End: t0.Add(time.Second)}},
		Rejoins:       1, ConnRedials: 3, Retries: 5, TransportDrops: 1,
	}}
	b := Snapshot{} // a shard that saw no faults carries no record
	c := Snapshot{Recovery: &RecoveryStats{
		DownIntervals: []DownInterval{{Replica: 1, Start: t0.Add(time.Minute)}},
		ConnRedials:   2, Retries: 1,
	}}
	m := MergeSnapshots(a, b, c)
	if m.Recovery == nil {
		t.Fatal("merge dropped the recovery records")
	}
	rec := m.Recovery
	if len(rec.DownIntervals) != 2 {
		t.Fatalf("merged %d intervals, want 2", len(rec.DownIntervals))
	}
	if rec.Rejoins != 1 || rec.ConnRedials != 5 || rec.Retries != 6 || rec.TransportDrops != 1 {
		t.Errorf("merged recovery counters: %+v", rec)
	}
	if !rec.DownIntervals[1].End.IsZero() {
		t.Error("open interval lost its open end in the merge")
	}
	// The inputs' records are not aliased into the output.
	a.Recovery.ConnRedials = 100
	if m.Recovery.ConnRedials != 5 {
		t.Error("merged record aliases an input's record")
	}
	if m2 := MergeSnapshots(b, Snapshot{}); m2.Recovery != nil {
		t.Error("merging recovery-free snapshots invented a record")
	}
}

// TestMultiModelConfigValidation pins the config rules.
func TestMultiModelConfigValidation(t *testing.T) {
	if _, err := New(Config{Store: indexStore{}}); err == nil {
		t.Error("no engines: expected error")
	}
	if _, err := New(Config{Store: indexStore{}, Models: []ModelConfig{{Name: "", Engine: &echoEngine{}}}}); err == nil {
		t.Error("unnamed Models entry: expected error")
	}
	if _, err := New(Config{Store: indexStore{}, Models: []ModelConfig{
		{Name: "dup", Engine: &echoEngine{}},
		{Name: "dup", Engine: &echoEngine{}},
	}}); err == nil {
		t.Error("duplicate model id: expected error")
	}
	if _, err := New(Config{Models: []ModelConfig{{Name: "nostore", Engine: &echoEngine{}}}}); err == nil {
		t.Error("model without a store: expected error")
	}
}

// TestUnknownModelMetricsAnswered: a metrics request naming an unknown model
// is answered with an in-band error — the connection survives and keeps
// serving routable traffic (a misaddressed client must not lose its conn).
func TestUnknownModelMetricsAnswered(t *testing.T) {
	s := newTestServer(t, Config{
		Store:    indexStore{},
		Models:   []ModelConfig{{Name: "solo", Engine: &offsetEngine{offset: 0}}},
		MaxBatch: 2, BatchWait: time.Millisecond,
	})
	tc := dialTest(t, s.Addr())
	tc.mu.Lock()
	err := WriteMetricsRequestModel(tc.c, 7, "nope")
	tc.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := ReadClientFrame(tc.r)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != MsgMetrics || frame.MetricsID != 7 {
		t.Fatalf("frame type %d id %d, want metrics id 7", frame.Type, frame.MetricsID)
	}
	var snap Snapshot
	if err := json.Unmarshal(frame.MetricsJSON, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Error == "" || snap.Model != "nope" {
		t.Errorf("unknown-model snapshot: %+v, want in-band error", snap)
	}
	// The connection is still alive and serving.
	tc.predictModel(1, 5, "solo")
	if resp := tc.read(1)[1]; resp.Status != StatusOK {
		t.Errorf("post-error request: %v, want ok", resp.Status)
	}
}

// TestModelPolicyOverridesServerDefault: a model can pick RejectNewest even
// when the server-wide default is ShedOldest (PolicyDefault inherits).
func TestModelPolicyOverridesServerDefault(t *testing.T) {
	cfg := Config{
		Store:  indexStore{},
		Policy: ShedOldest,
		Models: []ModelConfig{
			{Name: "explicit", Engine: &echoEngine{}, Policy: RejectNewest},
			{Name: "inherit", Engine: &echoEngine{}},
		},
	}
	models, err := cfg.normalize()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]ModelConfig, len(models))
	for _, m := range models {
		byName[m.Name] = m
	}
	if byName["explicit"].Policy != RejectNewest {
		t.Errorf("explicit RejectNewest resolved to %v", byName["explicit"].Policy)
	}
	if byName["inherit"].Policy != ShedOldest {
		t.Errorf("PolicyDefault resolved to %v, want inherited ShedOldest", byName["inherit"].Policy)
	}
	zero := Config{Engine: &echoEngine{}, Store: indexStore{}}
	models, err = zero.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if models[0].Policy != RejectNewest {
		t.Errorf("zero-value config policy resolved to %v, want RejectNewest", models[0].Policy)
	}
}
