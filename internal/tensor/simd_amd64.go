//go:build amd64

package tensor

// amd64 side of the SIMD dispatch: CPUID/XGETBV feature probing and the Go
// declarations of the assembly microkernels in gemm_amd64.s. The kernels are
// declared //go:noescape so routing pointers through them never forces a
// heap allocation on the zero-alloc inference paths.

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled vector state).
func xgetbv() (eax, edx uint32)

// detectSIMD probes the highest dispatch tier this CPU and OS can run:
// AVX2 requires the CPU flag, OSXSAVE, and XMM+YMM state enabled in XCR0;
// FMA additionally requires the FMA CPU flag.
func detectSIMD() SIMDTier {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return SIMDOff
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return SIMDOff
	}
	// The OS must save/restore XMM (bit 1) and YMM (bit 2) state.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return SIMDOff
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const cpuidAVX2 = 1 << 5
	if ebx7&cpuidAVX2 == 0 {
		return SIMDOff
	}
	if ecx1&cpuidFMA != 0 {
		return SIMDFMA
	}
	return SIMDAVX2
}

// gemmBlock4AVX2 accumulates, for four output rows r in {0..3},
//
//	cr[j] += Σ_{p=0}^{k-1} ar[p] * b[p*bStride+j]   for j in [0, jn)
//
// in ascending-p order per element with separate vmulps/vaddps roundings —
// bit-identical to the scalar kernels. The caller seeds the c rows (bias)
// and guarantees jn > 0 is a multiple of 8, k > 0, and that all rows are at
// least jn (c) / k (a) / (k-1)*bStride+jn (b) floats long.
//
//go:noescape
func gemmBlock4AVX2(c0, c1, c2, c3, a0, a1, a2, a3, b *float32, k, bStride, jn int)

// gemmBlock4FMA is gemmBlock4AVX2 with fused multiply-adds: one rounding per
// mul+add pair, so results differ from the scalar oracle within relative
// error (validated by the tolerance tests, never selected automatically).
//
//go:noescape
func gemmBlock4FMA(c0, c1, c2, c3, a0, a1, a2, a3, b *float32, k, bStride, jn int)

// gemmBlock1AVX2 is the single-row form of gemmBlock4AVX2, used for the
// row-group remainder (m mod 4) so short or ragged matrices still vectorize.
//
//go:noescape
func gemmBlock1AVX2(c0, a0, b *float32, k, bStride, jn int)

// gemmBlock1FMA is gemmBlock1AVX2 with fused multiply-adds.
//
//go:noescape
func gemmBlock1FMA(c0, a0, b *float32, k, bStride, jn int)

// dotFMA returns Σ a[p]*x[p] for p in [0, k) using four 8-wide FMA
// accumulators and a re-associated horizontal reduction — fast but not
// order-preserving, so it serves only the FMA tier's matrix-vector path.
//
//go:noescape
func dotFMA(a, x *float32, k int) float32

// simdGEMM4 dispatches the four-row column-vectorized microkernel.
func simdGEMM4(tier SIMDTier, c0, c1, c2, c3, a0, a1, a2, a3, b *float32, k, bStride, jn int) {
	if tier >= SIMDFMA {
		gemmBlock4FMA(c0, c1, c2, c3, a0, a1, a2, a3, b, k, bStride, jn)
		return
	}
	gemmBlock4AVX2(c0, c1, c2, c3, a0, a1, a2, a3, b, k, bStride, jn)
}

// simdGEMM1 dispatches the single-row column-vectorized microkernel.
func simdGEMM1(tier SIMDTier, c0, a0, b *float32, k, bStride, jn int) {
	if tier >= SIMDFMA {
		gemmBlock1FMA(c0, a0, b, k, bStride, jn)
		return
	}
	gemmBlock1AVX2(c0, a0, b, k, bStride, jn)
}

// simdDot dispatches the FMA dot kernel (FMA tier only; callers gate on it).
func simdDot(a, x *float32, k int) float32 { return dotFMA(a, x, k) }
