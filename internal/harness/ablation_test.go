package harness

import (
	"testing"
	"time"

	"mlperf/internal/core"
	"mlperf/internal/loadgen"
	"mlperf/internal/quantize"
	"mlperf/internal/simhw"
)

// TestQuantizationFormatAblation reproduces the design discussion of
// Section III-B: lower-precision weight formats cost accuracy, the ~1%
// relative target is comfortably achievable at INT8-class precision without
// retraining, and aggressive 4-bit quantization (an open-division technique
// in Section VI-E) costs noticeably more quality than 8-bit.
func TestQuantizationFormatAblation(t *testing.T) {
	formats := []quantize.Format{quantize.FP32, quantize.FP16, quantize.INT16, quantize.INT8, quantize.INT4}
	quality := make(map[quantize.Format]float64, len(formats))

	for _, format := range formats {
		opts := quickOpts()
		opts.DatasetSamples = 96
		opts.Quantization = format
		assembly, err := BuildNative(core.ImageClassificationLight, opts)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		settings := QuickSettings(assembly.Spec, loadgen.SingleStream, 1024)
		settings.MinDuration = time.Millisecond
		report, err := Run(assembly, RunOptions{Scenario: loadgen.SingleStream, Settings: &settings, RunAccuracy: true})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		quality[format] = report.Accuracy.Value

		switch format {
		case quantize.FP32, quantize.FP16, quantize.INT16, quantize.INT8:
			if !report.Accuracy.Pass {
				t.Errorf("%s: expected the quality target to be met, got %s", format, report.Accuracy)
			}
		}
	}

	if quality[quantize.INT4] > quality[quantize.FP32] {
		t.Errorf("INT4 quality %.4f above FP32 quality %.4f", quality[quantize.INT4], quality[quantize.FP32])
	}
	if quality[quantize.INT4] > quality[quantize.INT8] {
		t.Errorf("INT4 quality %.4f above INT8 quality %.4f — coarser formats should not score better",
			quality[quantize.INT4], quality[quantize.INT8])
	}
	if quality[quantize.FP16] < quality[quantize.INT4] {
		t.Errorf("FP16 quality %.4f below INT4 quality %.4f", quality[quantize.FP16], quality[quantize.INT4])
	}
}

// TestLatencyBoundAblation checks the design claim of Section VII-B: the same
// system's reportable server throughput shrinks monotonically as the latency
// bound tightens, which is why "a performance comparison with unconstrained
// latency has little bearing on a latency-constrained scenario".
func TestLatencyBoundAblation(t *testing.T) {
	spec, err := core.Spec(core.ImageClassificationHeavy)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := simhw.FindPlatform("dc-gpu-g1")
	if err != nil {
		t.Fatal(err)
	}
	bounds := []time.Duration{100 * time.Millisecond, 15 * time.Millisecond, 5 * time.Millisecond}
	var prev float64
	for i, bound := range bounds {
		modified := spec
		modified.ServerLatencyBound = bound
		metrics, err := SimulatedSubmission(platform, modified, simhw.SearchOptions{Queries: 2048, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && metrics.ServerQPS > prev*1.05 {
			t.Errorf("tightening the bound to %v increased QPS from %.1f to %.1f", bound, prev, metrics.ServerQPS)
		}
		prev = metrics.ServerQPS
	}
	if prev <= 0 {
		t.Log("tightest bound is infeasible on this platform (QPS 0), which is itself a valid outcome")
	}
}
