package harness

import (
	"testing"
	"time"

	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
)

// TestServeLoopbackRunsScenarios deploys an assembly's engine behind the
// loopback server and runs Server and Offline scenarios through the harness,
// exercising the full Run path (performance + error draining) over the wire.
func TestServeLoopbackRunsScenarios(t *testing.T) {
	a, err := BuildNative(core.ImageClassificationLight, BuildOptions{DatasetSamples: 32, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := a.ServeLoopback(ServeOptions{
		Server: serve.Config{Workers: 2, BatchWait: time.Millisecond},
		Client: backend.RemoteConfig{MaxInFlight: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	settings := QuickSettings(a.Spec, loadgen.Server, 1024)
	settings.MinDuration = 50 * time.Millisecond
	settings.ServerTargetQPS = 100
	settings.ServerTargetLatency = 250 * time.Millisecond
	report, err := Run(dep.Assembly, RunOptions{Scenario: loadgen.Server, Settings: &settings})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Performance.Valid {
		t.Fatalf("server scenario over the wire invalid: %v", report.Performance.ValidityMessages)
	}

	off := QuickSettings(a.Spec, loadgen.Offline, 1024)
	off.MinDuration = 0
	off.MinSampleCount = 128
	report, err = Run(dep.Assembly, RunOptions{Scenario: loadgen.Offline, Settings: &off})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Performance.Valid {
		t.Fatalf("offline scenario over the wire invalid: %v", report.Performance.ValidityMessages)
	}
	if report.Performance.OfflineSamplesPerSec <= 0 {
		t.Error("no offline throughput recorded")
	}

	snap := dep.Server.Metrics()
	if snap.Completed == 0 {
		t.Error("server metrics recorded no completions")
	}
	// The derived assembly still scores accuracy through the remote SUT.
	if dep.Assembly.NativeBackend() != nil {
		t.Error("derived assembly should not report a native backend")
	}
}

// TestServeLoopbackReplicaFleet deploys the assembly behind a 2-replica
// loopback fleet and checks the run stays valid with the work genuinely
// spread across both servers, and that the deployment's per-replica and
// client-side merged metrics reconcile.
func TestServeLoopbackReplicaFleet(t *testing.T) {
	a, err := BuildNative(core.ImageClassificationLight, BuildOptions{DatasetSamples: 32, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := a.ServeLoopback(ServeOptions{
		Replicas: 2,
		Server:   serve.Config{Workers: 2, BatchWait: time.Millisecond},
		Client:   backend.RemoteConfig{MaxInFlight: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if len(dep.Servers) != 2 || dep.Server != dep.Servers[0] {
		t.Fatalf("deployment has %d servers", len(dep.Servers))
	}

	off := QuickSettings(a.Spec, loadgen.Offline, 1024)
	off.MinDuration = 0
	off.MinSampleCount = 256
	report, err := Run(dep.Assembly, RunOptions{Scenario: loadgen.Offline, Settings: &off})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Performance.Valid {
		t.Fatalf("2-replica offline run invalid: %v", report.Performance.ValidityMessages)
	}

	snaps := dep.ReplicaMetrics()
	if len(snaps) != 2 {
		t.Fatalf("ReplicaMetrics returned %d snapshots", len(snaps))
	}
	var sum uint64
	for i, snap := range snaps {
		if snap.Completed == 0 {
			t.Errorf("replica %d served nothing", i)
		}
		sum += snap.Completed
	}
	merged, err := dep.Remote.ServerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Completed != sum {
		t.Errorf("client merged completed %d != server-side sum %d", merged.Completed, sum)
	}
	if dep.Remote.DownReplicas() != 0 {
		t.Errorf("%d replicas down on a healthy fleet", dep.Remote.DownReplicas())
	}
}

// TestServeLoopbackRejectsFixedAddrFleet: a fixed listen address cannot host
// several replicas.
func TestServeLoopbackRejectsFixedAddrFleet(t *testing.T) {
	a, err := BuildNative(core.ImageClassificationLight, BuildOptions{DatasetSamples: 16, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.ServeLoopback(ServeOptions{
		Replicas: 2,
		Server:   serve.Config{Addr: "127.0.0.1:39091"},
	})
	if err == nil {
		t.Fatal("fixed address with 2 replicas: expected error")
	}
}
