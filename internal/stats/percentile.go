package stats

import (
	"fmt"
	"sort"
	"time"
)

// Percentile returns the p-quantile (0 < p <= 1) of the given latency samples
// using the nearest-rank method, which is what the MLPerf LoadGen reports:
// the k-th smallest sample with k = ceil(p * n). The input slice is not
// modified.
func Percentile(samples []time.Duration, p float64) (time.Duration, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty sample set")
	}
	if !(p > 0 && p <= 1) {
		return 0, fmt.Errorf("stats: percentile %v outside (0,1]: %w", p, ErrInvalidProbability)
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(float64(len(sorted)) * p)
	if float64(rank) < float64(len(sorted))*p {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1], nil
}

// LatencySummary aggregates a latency distribution into the statistics the
// LoadGen reports at the end of a run.
type LatencySummary struct {
	Count  int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	P50    time.Duration
	P90    time.Duration
	P95    time.Duration
	P97    time.Duration
	P99    time.Duration
	P999   time.Duration
	Sorted []time.Duration // ascending copy of the samples
}

// Summarize computes a LatencySummary over the samples. It returns an error
// for an empty sample set.
func Summarize(samples []time.Duration) (LatencySummary, error) {
	if len(samples) == 0 {
		return LatencySummary{}, fmt.Errorf("stats: cannot summarize empty sample set")
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	pick := func(p float64) time.Duration {
		rank := int(float64(len(sorted)) * p)
		if float64(rank) < float64(len(sorted))*p {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		return sorted[rank-1]
	}
	return LatencySummary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   sum / time.Duration(len(sorted)),
		P50:    pick(0.50),
		P90:    pick(0.90),
		P95:    pick(0.95),
		P97:    pick(0.97),
		P99:    pick(0.99),
		P999:   pick(0.999),
		Sorted: sorted,
	}, nil
}

// Quantile returns an arbitrary quantile from an already computed summary.
func (s LatencySummary) Quantile(p float64) (time.Duration, error) {
	if len(s.Sorted) == 0 {
		return 0, fmt.Errorf("stats: summary holds no samples")
	}
	return Percentile(s.Sorted, p)
}

// FractionOver returns the fraction of samples strictly greater than bound.
// The server and multistream scenarios limit this fraction (e.g. no more than
// 1% of queries may exceed the latency bound).
func FractionOver(samples []time.Duration, bound time.Duration) float64 {
	if len(samples) == 0 {
		return 0
	}
	over := 0
	for _, s := range samples {
		if s > bound {
			over++
		}
	}
	return float64(over) / float64(len(samples))
}
