package dataset

import (
	"sync"
	"testing"
)

func newTestQSL(t *testing.T) *QSL {
	t.Helper()
	ds, err := NewSyntheticImages(imgCfg())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQSL(ds)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQSLBasics(t *testing.T) {
	q := newTestQSL(t)
	if q.TotalSampleCount() != 64 {
		t.Errorf("total = %d", q.TotalSampleCount())
	}
	if q.PerformanceSampleCount() != 64 {
		t.Errorf("perf = %d", q.PerformanceSampleCount())
	}
	if q.Name() == "" {
		t.Error("empty name")
	}
	if q.Dataset() == nil {
		t.Error("nil dataset")
	}
}

func TestQSLNilAndEmpty(t *testing.T) {
	if _, err := NewQSL(nil); err == nil {
		t.Error("nil dataset: expected error")
	}
}

func TestQSLLoadUnload(t *testing.T) {
	q := newTestQSL(t)
	if q.IsLoaded(3) {
		t.Error("sample loaded before LoadSamplesToRAM")
	}
	if _, err := q.Get(3); err == nil {
		t.Error("Get before load: expected error")
	}
	if err := q.LoadSamplesToRAM([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !q.IsLoaded(3) || q.LoadedCount() != 3 {
		t.Error("load state wrong")
	}
	s, err := q.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Index != 3 {
		t.Errorf("got sample %d", s.Index)
	}
	if err := q.UnloadSamplesFromRAM([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if q.LoadedCount() != 0 {
		t.Error("samples still loaded after unload")
	}
}

func TestQSLLoadErrors(t *testing.T) {
	q := newTestQSL(t)
	if err := q.LoadSamplesToRAM([]int{0, 999}); err == nil {
		t.Error("out-of-range load: expected error")
	}
	// A failed load must not partially apply.
	if q.LoadedCount() != 0 {
		t.Error("failed load left residue")
	}
	if err := q.UnloadSamplesFromRAM([]int{0}); err == nil {
		t.Error("unload of never-loaded sample: expected error")
	}
}

func TestQSLNestedLoads(t *testing.T) {
	q := newTestQSL(t)
	if err := q.LoadSamplesToRAM([]int{5}); err != nil {
		t.Fatal(err)
	}
	if err := q.LoadSamplesToRAM([]int{5}); err != nil {
		t.Fatal(err)
	}
	if err := q.UnloadSamplesFromRAM([]int{5}); err != nil {
		t.Fatal(err)
	}
	if !q.IsLoaded(5) {
		t.Error("nested load released too early")
	}
	if err := q.UnloadSamplesFromRAM([]int{5}); err != nil {
		t.Fatal(err)
	}
	if q.IsLoaded(5) {
		t.Error("sample still loaded after balanced unloads")
	}
}

func TestQSLConcurrentAccess(t *testing.T) {
	q := newTestQSL(t)
	if err := q.LoadSamplesToRAM([]int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, err := q.Get(idx); err != nil {
					t.Errorf("concurrent Get(%d): %v", idx, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
