#!/usr/bin/env bash
# bench.sh — kernel/native micro-benchmark gate.
#
# Runs `go vet` over the tree, then the compute-kernel and native-classifier
# benchmarks (serial reference vs blocked/parallel engine, heap vs
# scratch-arena inference) and writes the aggregated numbers to a JSON file
# (default BENCH_PR1.json) so speedups and allocation counts are recorded in
# the repository alongside the code they measure.
#
# Usage: scripts/bench.sh            # 5 runs per benchmark -> BENCH_PR1.json
#        COUNT=10 OUT=out.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
OUT="${OUT:-BENCH_PR1.json}"

go vet ./...

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Kernel|Native' -benchmem -count "$COUNT" . | tee "$raw"

awk -v generated="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go version)" \
    -v count="$COUNT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; runs[name]++
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes[name]  += $(i-1)
        if ($i == "allocs/op") allocs[name] += $(i-1)
    }
    if (!(name in order)) { order[name] = ++n; names[n] = name }
}
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
END {
    printf "{\n"
    printf "  \"generated_utc\": \"%s\",\n", generated
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"count\": %d,\n", count
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) {
        name = names[i]
        printf "    \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f}%s\n", \
            name, ns[name]/runs[name], bytes[name]/runs[name], allocs[name]/runs[name], (i < n ? "," : "")
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    printf "    \"matmul_speedup_vs_serial\": %.2f,\n", \
        ns["BenchmarkKernelMatMul/serial"] / ns["BenchmarkKernelMatMul/blocked"]
    printf "    \"conv2d_speedup_vs_serial\": %.2f,\n", \
        ns["BenchmarkKernelConv2D/serial"] / ns["BenchmarkKernelConv2D/im2col"]
    printf "    \"depthwise_speedup_vs_serial\": %.2f,\n", \
        ns["BenchmarkKernelDepthwiseConv2D/serial"] / ns["BenchmarkKernelDepthwiseConv2D/rowwise"]
    printf "    \"resnet50_allocs_heap_vs_scratch\": [%.1f, %.1f],\n", \
        allocs["BenchmarkNativeClassifier/resnet50/heap"]/runs["BenchmarkNativeClassifier/resnet50/heap"], \
        allocs["BenchmarkNativeClassifier/resnet50/scratch"]/runs["BenchmarkNativeClassifier/resnet50/scratch"]
    printf "    \"mobilenet_allocs_heap_vs_scratch\": [%.1f, %.1f]\n", \
        allocs["BenchmarkNativeClassifier/mobilenet/heap"]/runs["BenchmarkNativeClassifier/mobilenet/heap"], \
        allocs["BenchmarkNativeClassifier/mobilenet/scratch"]/runs["BenchmarkNativeClassifier/mobilenet/scratch"]
    printf "  }\n"
    printf "}\n"
}' "$raw" > "$OUT"

echo "wrote $OUT"
