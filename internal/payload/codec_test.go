package payload

import (
	"bytes"
	"encoding/hex"
	"testing"

	"mlperf/internal/metrics"
)

// The binary codec's bytes are a wire contract shared with every deployed
// peer: these goldens pin them, so an encoding change that would strand old
// decoders fails here first.
func TestGoldenBinaryBytes(t *testing.T) {
	golden := []struct {
		name string
		got  []byte
		hex  string
	}{
		{"class 7", AppendClass(nil, 7), "01010e"},
		{"class -1", AppendClass(nil, -1), "010101"},
		{"class 0", AppendClass(nil, 0), "010100"},
		{"tokens empty", AppendTokens(nil, nil), "010300"},
		{"tokens 4,8,15", AppendTokens(nil, []int{4, 8, 15}), "010303" + "08101e"},
		{"boxes empty", AppendBoxes(nil, nil), "010200"},
		{"boxes one", AppendBoxes(nil, []metrics.Box{{X1: 1, Y1: 2, X2: 3, Y2: 4, Class: 5, Score: 0.5}}),
			"010201" +
				"000000000000f03f" + // X1 = 1.0
				"0000000000000040" + // Y1 = 2.0
				"0000000000000840" + // X2 = 3.0
				"0000000000001040" + // Y2 = 4.0
				"0a" + //               class 5, zigzag
				"000000000000e03f"}, // score = 0.5
	}
	for _, g := range golden {
		want, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("%s: bad golden hex: %v", g.name, err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s = %x, want %x", g.name, g.got, want)
		}
	}
}

// The JSON codec is the compatibility surface for pre-codec peers; its bytes
// are pinned too.
func TestGoldenJSONBytes(t *testing.T) {
	if data, _ := EncodeClassJSON(7); string(data) != `{"class":7}` {
		t.Errorf("EncodeClassJSON = %s", data)
	}
	if data, _ := EncodeTokensJSON([]int{4, 8}); string(data) != `{"tokens":[4,8]}` {
		t.Errorf("EncodeTokensJSON = %s", data)
	}
	if data, _ := EncodeBoxesJSON(nil); string(data) != `{"boxes":null}` {
		t.Errorf("EncodeBoxesJSON = %s", data)
	}
}

// Cross-version matrix: the same prediction encoded by either codec must
// decode to the same value through the sniffing decoders — a new client
// against an old JSON server and an old client's payloads replayed through a
// new decoder both land on identical results.
func TestCrossCodecMatrix(t *testing.T) {
	boxes := []metrics.Box{
		{X1: 0.1, Y1: 0.2, X2: 0.5, Y2: 0.6, Class: 3, Score: 0.9},
		{X1: -1, Y1: 0, X2: 4096, Y2: 2.5, Class: -7, Score: 0.125},
	}
	tokens := []int{0, -3, 1 << 20, 42}

	binClass, _ := EncodeClass(-12)
	jsonClass, _ := EncodeClassJSON(-12)
	for _, data := range [][]byte{binClass, jsonClass} {
		got, err := DecodeClass(data)
		if err != nil || got != -12 {
			t.Errorf("DecodeClass(%x) = %d, %v", data, got, err)
		}
	}

	binBoxes, _ := EncodeBoxes(boxes)
	jsonBoxes, _ := EncodeBoxesJSON(boxes)
	for _, data := range [][]byte{binBoxes, jsonBoxes} {
		got, err := DecodeBoxes(data)
		if err != nil || len(got) != len(boxes) {
			t.Fatalf("DecodeBoxes: %v (%d boxes)", err, len(got))
		}
		for i := range boxes {
			if got[i] != boxes[i] {
				t.Errorf("box %d: %+v != %+v", i, got[i], boxes[i])
			}
		}
	}

	binTokens, _ := EncodeTokens(tokens)
	jsonTokens, _ := EncodeTokensJSON(tokens)
	for _, data := range [][]byte{binTokens, jsonTokens} {
		got, err := DecodeTokens(data)
		if err != nil || len(got) != len(tokens) {
			t.Fatalf("DecodeTokens: %v", err)
		}
		for i := range tokens {
			if got[i] != tokens[i] {
				t.Errorf("token %d: %d != %d", i, got[i], tokens[i])
			}
		}
	}
}

func TestDetectCodec(t *testing.T) {
	if c, err := DetectCodec([]byte{BinaryVersion, kindClass, 0}); err != nil || c != CodecBinary {
		t.Errorf("binary sniff = %v, %v", c, err)
	}
	if c, err := DetectCodec([]byte(`{"class":1}`)); err != nil || c != CodecJSON {
		t.Errorf("json sniff = %v, %v", c, err)
	}
	if _, err := DetectCodec(nil); err == nil {
		t.Error("empty payload should not sniff")
	}
	if _, err := DetectCodec([]byte{0x7f}); err == nil {
		t.Error("unknown version byte should not sniff")
	}
}

func TestParseCodec(t *testing.T) {
	for arg, want := range map[string]Codec{"": CodecBinary, "binary": CodecBinary, "json": CodecJSON} {
		got, err := ParseCodec(arg)
		if err != nil || got != want {
			t.Errorf("ParseCodec(%q) = %v, %v", arg, got, err)
		}
	}
	if _, err := ParseCodec("protobuf"); err == nil {
		t.Error("unknown codec should error")
	}
	if CodecBinary.String() != "binary" || CodecJSON.String() != "json" || Codec(9).String() == "" {
		t.Error("codec strings wrong")
	}
}

// Lying length prefixes must be rejected before any count-sized allocation:
// these payloads declare astronomically more elements than their bytes can
// hold.
func TestDecodeRejectsLyingCounts(t *testing.T) {
	hugeTokens := append([]byte{BinaryVersion, kindTokens}, 0xff, 0xff, 0xff, 0xff, 0x0f)
	if _, err := DecodeTokens(hugeTokens); err == nil {
		t.Error("lying token count should be rejected")
	}
	if _, err := DecodeTokensInto(nil, hugeTokens); err == nil {
		t.Error("lying token count should be rejected by DecodeTokensInto")
	}
	hugeBoxes := append([]byte{BinaryVersion, kindBoxes}, 0xff, 0xff, 0xff, 0xff, 0x0f)
	if _, err := DecodeBoxes(hugeBoxes); err == nil {
		t.Error("lying box count should be rejected")
	}
	// Truncated variants: a valid header whose fields run out of bytes.
	if _, err := DecodeBoxes([]byte{BinaryVersion, kindBoxes, 0x01, 0x00}); err == nil {
		t.Error("truncated box should be rejected")
	}
	if _, err := DecodeClass([]byte{BinaryVersion, kindClass}); err == nil {
		t.Error("missing class varint should be rejected")
	}
	if _, err := DecodeClass([]byte{BinaryVersion, kindClass, 0x0e, 0x00}); err == nil {
		t.Error("trailing bytes after class should be rejected")
	}
	if _, err := DecodeClass([]byte{BinaryVersion, kindTokens, 0x00}); err == nil {
		t.Error("kind mismatch should be rejected")
	}
}

func TestDecodeTokensInto(t *testing.T) {
	tokens := []int{9, -9, 0, 127, -128}
	data := AppendTokens(nil, tokens)
	scratch := make([]int, 0, 16)
	got, err := DecodeTokensInto(scratch, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tokens) {
		t.Fatalf("decoded %d tokens, want %d", len(got), len(tokens))
	}
	for i := range tokens {
		if got[i] != tokens[i] {
			t.Errorf("token %d: %d != %d", i, got[i], tokens[i])
		}
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("DecodeTokensInto should reuse the caller's backing array")
	}
	// JSON fallback still decodes (allocating).
	jdata, _ := EncodeTokensJSON(tokens)
	if got, err := DecodeTokensInto(scratch, jdata); err != nil || len(got) != len(tokens) {
		t.Errorf("JSON fallback: %v", err)
	}
}

// The steady-state swarm path runs these appenders and the in-place decoder
// millions of times per run; pin them at zero allocations.
func TestCodecZeroAlloc(t *testing.T) {
	dst := make([]byte, 0, 256)
	boxes := []metrics.Box{{X1: 1, Y1: 2, X2: 3, Y2: 4, Class: 5, Score: 0.5}}
	tokens := []int{4, 8, 15, 16, 23, 42}
	scratch := make([]int, 0, 16)
	encoded := AppendTokens(nil, tokens)

	if n := testing.AllocsPerRun(100, func() { dst = AppendClass(dst[:0], 7) }); n != 0 {
		t.Errorf("AppendClass allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { dst = AppendBoxes(dst[:0], boxes) }); n != 0 {
		t.Errorf("AppendBoxes allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { dst = AppendTokens(dst[:0], tokens) }); n != 0 {
		t.Errorf("AppendTokens allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		var err error
		scratch, err = DecodeTokensInto(scratch[:0], encoded)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeTokensInto allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := DecodeClass(dst[:0]); err == nil {
			t.Fatal("empty payload decoded")
		}
	}); n > 2 {
		t.Errorf("DecodeClass error path allocates %v/op", n)
	}
}
