package simhw

import (
	"container/heap"
	"fmt"
	"time"

	"mlperf/internal/stats"
)

// SimResult summarises one simulated scenario run in virtual time.
type SimResult struct {
	Queries          int
	Samples          int
	Makespan         time.Duration // virtual time from first arrival to last completion
	LastArrival      time.Duration // virtual time of the final arrival
	Latencies        stats.LatencySummary
	OverBoundFrac    float64 // fraction of queries over the supplied latency bound
	SkippedIntervals int     // multistream only
	Throughput       float64 // samples per second of virtual time
}

// KeepsUp reports whether the system drained its backlog promptly after the
// final arrival: the makespan must not exceed the last arrival by more than
// the given slack. An overloaded system accumulates an ever-growing queue and
// fails this check long before its tail latency statistics stabilize, which
// is how short virtual-time trials avoid over-reporting server throughput.
func (r SimResult) KeepsUp(slack time.Duration) bool {
	return r.Makespan <= r.LastArrival+slack
}

// durationHeap is a min-heap of unit-free times.
type durationHeap []time.Duration

func (h durationHeap) Len() int            { return len(h) }
func (h durationHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h durationHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *durationHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *durationHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// SimulateSingleStream runs the single-stream scenario in virtual time: one
// single-sample query at a time, each issued when the previous one finishes.
func SimulateSingleStream(p Platform, w Workload, queries int, seed uint64) (SimResult, error) {
	if queries <= 0 {
		return SimResult{}, fmt.Errorf("simhw: query count must be positive, got %d", queries)
	}
	rng := stats.NewRNG(seed)
	latencies := make([]time.Duration, queries)
	var clock time.Duration
	for i := 0; i < queries; i++ {
		st, err := p.sampledServiceTime(w, 1, rng)
		if err != nil {
			return SimResult{}, err
		}
		latencies[i] = st
		clock += st
	}
	return summarizeSim(latencies, queries, queries, clock, 0, 0)
}

// SimulateServer runs the server scenario in virtual time: single-sample
// queries arrive as a Poisson process at the given rate; idle execution units
// greedily batch whatever has queued (up to the platform's MaxBatch). The
// returned OverBoundFrac is measured against latencyBound.
func SimulateServer(p Platform, w Workload, qps float64, latencyBound time.Duration, queries int, seed uint64) (SimResult, error) {
	if queries <= 0 {
		return SimResult{}, fmt.Errorf("simhw: query count must be positive, got %d", queries)
	}
	if latencyBound <= 0 {
		return SimResult{}, fmt.Errorf("simhw: latency bound must be positive, got %v", latencyBound)
	}
	process, err := stats.NewPoissonProcess(stats.NewRNG(seed), qps)
	if err != nil {
		return SimResult{}, err
	}
	arrivals := process.Schedule(queries)
	// Server batches form in arrival order, so variable-length workloads pay
	// their padding waste.
	return simulateQueue(p, w, arrivals, latencyBound, seed^0x9e37, true)
}

// SimulateOffline runs the offline scenario in virtual time: every sample is
// available at time zero and the platform is free to batch maximally. Because
// the rules allow arbitrary data arrangement, variable-length inputs can be
// sorted and padding waste is avoided.
func SimulateOffline(p Platform, w Workload, samples int, seed uint64) (SimResult, error) {
	if samples <= 0 {
		return SimResult{}, fmt.Errorf("simhw: sample count must be positive, got %d", samples)
	}
	arrivals := make([]time.Duration, samples)
	return simulateQueue(p, w, arrivals, 0, seed^0x51ff, false)
}

// simulateQueue is the shared queueing simulation: work items arrive at the
// given times, idle units take up to MaxBatch queued items at once. When
// padded is true, arrival-order batches of variable-length samples incur the
// workload's padding waste.
func simulateQueue(p Platform, w Workload, arrivals []time.Duration, latencyBound time.Duration, seed uint64, padded bool) (SimResult, error) {
	if err := p.Validate(); err != nil {
		return SimResult{}, err
	}
	if err := w.Validate(); err != nil {
		return SimResult{}, err
	}
	rng := stats.NewRNG(seed)
	n := len(arrivals)
	latencies := make([]time.Duration, 0, n)

	units := make(durationHeap, p.Parallelism)
	heap.Init(&units)

	next := 0 // next arrival not yet queued
	type item struct{ arrival time.Duration }
	var queue []item
	var makespan time.Duration

	for len(latencies) < n {
		if len(queue) == 0 {
			// Nothing waiting: advance to the next arrival.
			queue = append(queue, item{arrival: arrivals[next]})
			next++
			continue
		}
		unitFree := heap.Pop(&units).(time.Duration)
		start := unitFree
		if queue[0].arrival > start {
			start = queue[0].arrival
		}
		// Admit everything that has arrived by the start time.
		for next < n && arrivals[next] <= start {
			queue = append(queue, item{arrival: arrivals[next]})
			next++
		}
		batch := len(queue)
		if batch > p.MaxBatch {
			batch = p.MaxBatch
		}
		st, err := p.sampledServiceTime(w, batch, rng)
		if err != nil {
			return SimResult{}, err
		}
		if padded {
			st = time.Duration(float64(st) * w.paddingFactor(batch))
		}
		finish := start + st
		for i := 0; i < batch; i++ {
			latencies = append(latencies, finish-queue[i].arrival)
		}
		queue = queue[batch:]
		heap.Push(&units, finish)
		if finish > makespan {
			makespan = finish
		}
	}
	res, err := summarizeSim(latencies, n, n, makespan, latencyBound, 0)
	if err != nil {
		return SimResult{}, err
	}
	res.LastArrival = arrivals[n-1]
	return res, nil
}

// SimulateMultiStream runs the multistream scenario in virtual time: a query
// of streams samples is scheduled every interval; if the previous query is
// still executing, the interval is skipped and the in-flight query is charged
// with a skipped interval.
func SimulateMultiStream(p Platform, w Workload, streams int, interval time.Duration, queries int, seed uint64) (SimResult, error) {
	if streams <= 0 {
		return SimResult{}, fmt.Errorf("simhw: stream count must be positive, got %d", streams)
	}
	if interval <= 0 {
		return SimResult{}, fmt.Errorf("simhw: interval must be positive, got %v", interval)
	}
	if queries <= 0 {
		return SimResult{}, fmt.Errorf("simhw: query count must be positive, got %d", queries)
	}
	rng := stats.NewRNG(seed)
	latencies := make([]time.Duration, 0, queries)
	skipped := 0
	var busyUntil time.Duration
	issued := 0
	tick := 0
	samples := 0
	inflightCharged := true
	for issued < queries {
		tick++
		scheduled := time.Duration(tick) * interval
		if busyUntil > scheduled {
			// Previous query still processing: skip this interval.
			if !inflightCharged {
				skipped++
				inflightCharged = true
			}
			continue
		}
		st, err := p.sampledServiceTime(w, streams, rng)
		if err != nil {
			return SimResult{}, err
		}
		// Concurrent streams batch in arrival order, so padding waste applies.
		st = time.Duration(float64(st) * w.paddingFactor(streams))
		// A multistream query must fit within the platform's batch ability;
		// oversize queries execute in several passes.
		passes := (streams + p.MaxBatch - 1) / p.MaxBatch
		if passes > 1 {
			st = time.Duration(int64(st) * int64(passes))
		}
		finish := scheduled + st
		latencies = append(latencies, st)
		busyUntil = finish
		issued++
		samples += streams
		inflightCharged = false
	}
	makespan := busyUntil
	res, err := summarizeSim(latencies, issued, samples, makespan, interval, skipped)
	if err != nil {
		return SimResult{}, err
	}
	res.LastArrival = time.Duration(tick) * interval
	return res, nil
}

// summarizeSim assembles a SimResult.
func summarizeSim(latencies []time.Duration, queries, samples int, makespan, bound time.Duration, skipped int) (SimResult, error) {
	if len(latencies) == 0 {
		return SimResult{}, fmt.Errorf("simhw: simulation produced no completions")
	}
	summary, err := stats.Summarize(latencies)
	if err != nil {
		return SimResult{}, err
	}
	if makespan <= 0 {
		makespan = time.Nanosecond
	}
	res := SimResult{
		Queries:          queries,
		Samples:          samples,
		Makespan:         makespan,
		Latencies:        summary,
		SkippedIntervals: skipped,
		Throughput:       float64(samples) / makespan.Seconds(),
	}
	if bound > 0 {
		res.OverBoundFrac = stats.FractionOver(latencies, bound)
	}
	return res, nil
}
