package model

import (
	"fmt"

	"mlperf/internal/nn"
	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

// ClassifierConfig configures the miniature image-classification models.
type ClassifierConfig struct {
	Classes   int
	Channels  int // input channels
	ImageSize int // square input height/width
	Seed      uint64
}

func (c *ClassifierConfig) normalize() error {
	if c.Classes <= 1 {
		return fmt.Errorf("model: classifier needs at least 2 classes, got %d", c.Classes)
	}
	if c.Channels <= 0 {
		c.Channels = 3
	}
	if c.ImageSize <= 0 {
		c.ImageSize = 16
	}
	if c.ImageSize < 8 {
		return fmt.Errorf("model: image size %d too small for the backbone strides", c.ImageSize)
	}
	return nil
}

// ImageClassifier is a CNN classifier built from an nn.Sequential backbone.
type ImageClassifier struct {
	info       Info
	net        *nn.Sequential
	inShape    []int
	footprint  int // per-sample activation bytes; micro-batch derives live
}

// Info returns the model's metadata with Params and OpsPerInput filled in.
func (m *ImageClassifier) Info() Info { return m.info }

// InputShape returns the expected CHW input shape.
func (m *ImageClassifier) InputShape() []int {
	s := make([]int, len(m.inShape))
	copy(s, m.inShape)
	return s
}

// logitsOn validates the input and runs the forward pass, allocating
// intermediates from s (or the heap when s is nil). The result is
// arena-backed when s is non-nil and must not outlive the arena.
func (m *ImageClassifier) logitsOn(img *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if img.Rank() != 3 {
		return nil, fmt.Errorf("model %s: want CHW input, got %v", m.info.Name, img.Shape())
	}
	return nn.ForwardWith(m.net, img, s)
}

// Logits implements Classifier. The forward pass runs on a pooled scratch
// arena; the returned tensor is an independent copy the caller owns.
func (m *ImageClassifier) Logits(img *tensor.Tensor) (*tensor.Tensor, error) {
	s := tensor.GetScratch()
	defer tensor.PutScratch(s)
	logits, err := m.logitsOn(img, s)
	if err != nil {
		return nil, err
	}
	return logits.Clone(), nil
}

// Classify implements Classifier. Steady-state calls are allocation-free:
// every intermediate tensor comes from a pooled scratch arena and only the
// argmax leaves the pass.
func (m *ImageClassifier) Classify(img *tensor.Tensor) (int, error) {
	s := tensor.GetScratch()
	defer tensor.PutScratch(s)
	logits, err := m.logitsOn(img, s)
	if err != nil {
		return 0, err
	}
	return logits.ArgMax(), nil
}

// ClassifyReference runs the plain allocating forward pass (every layer
// output on the heap, no arena). It is retained as the baseline the
// zero-allocation Classify path is benchmarked against.
func (m *ImageClassifier) ClassifyReference(img *tensor.Tensor) (int, error) {
	logits, err := m.logitsOn(img, nil)
	if err != nil {
		return 0, err
	}
	return logits.ArgMax(), nil
}

// Weights implements WeightedModel.
func (m *ImageClassifier) Weights() []*tensor.Tensor {
	return collectWeights(m.net)
}

// collectWeights walks a layer tree and gathers every weight tensor.
func collectWeights(layer nn.Layer) []*tensor.Tensor {
	var out []*tensor.Tensor
	switch l := layer.(type) {
	case *nn.Sequential:
		for _, sub := range l.Layers() {
			out = append(out, collectWeights(sub)...)
		}
	case *nn.Residual:
		out = append(out, collectWeights(l.Body())...)
	case *nn.Conv:
		out = append(out, l.Weights, l.Bias)
	case *nn.DepthwiseConv:
		out = append(out, l.Weights, l.Bias)
	case *nn.Dense:
		out = append(out, l.Weights, l.Bias)
	}
	return out
}

// NewResNet50Mini builds the heavyweight image classifier: a residual CNN in
// the style of ResNet-50 v1.5 (stem convolution, three residual stages with
// increasing width, global average pooling and a dense classifier).
func NewResNet50Mini(cfg ClassifierConfig) (*ImageClassifier, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x5e5e5e)
	widths := []int{16, 32, 64}
	seq := nn.NewSequential("resnet50-mini",
		nn.NewConv("stem", cfg.Channels, widths[0], 3, 1, 1, rng),
	)
	inC := widths[0]
	for stage, w := range widths {
		if w != inC {
			// Projection to the new width with stride 2 downsampling.
			seq.Add(nn.NewConv(fmt.Sprintf("proj%d", stage), inC, w, 3, 2, 1, rng))
			inC = w
		}
		for b := 0; b < 2; b++ {
			body := nn.NewSequential(fmt.Sprintf("stage%d_block%d", stage, b),
				nn.NewConv(fmt.Sprintf("s%db%d_c1", stage, b), w, w, 3, 1, 1, rng),
				nn.NewConv(fmt.Sprintf("s%db%d_c2", stage, b), w, w, 3, 1, 1, rng),
			)
			seq.Add(nn.NewResidual(fmt.Sprintf("s%db%d", stage, b), body))
		}
	}
	seq.Add(
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("fc", inC, cfg.Classes, false, rng),
	)
	return finishClassifier(ResNet50, seq, cfg)
}

// NewMobileNetV1Mini builds the lightweight image classifier: a
// depthwise-separable CNN in the style of MobileNet-v1 (alternating depthwise
// and pointwise convolutions).
func NewMobileNetV1Mini(cfg ClassifierConfig) (*ImageClassifier, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x30b11e)
	seq := nn.NewSequential("mobilenet-v1-mini",
		nn.NewConv("stem", cfg.Channels, 8, 3, 2, 1, rng),
	)
	widths := []int{16, 32, 32}
	inC := 8
	for i, w := range widths {
		stride := 1
		if i > 0 && i%2 == 0 {
			stride = 2
		}
		seq.Add(
			nn.NewDepthwiseConv(fmt.Sprintf("dw%d", i), inC, 3, stride, 1, rng),
			pointwise(fmt.Sprintf("pw%d", i), inC, w, rng),
		)
		inC = w
	}
	seq.Add(
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("fc", inC, cfg.Classes, false, rng),
	)
	return finishClassifier(MobileNetV1, seq, cfg)
}

// wideL2Budget is the L2 size the wide classifier's weights must exceed for
// the weight-streaming amortization effect to be visible: below it the whole
// weight set is cache-resident and batched-vs-per-sample GEMM is
// throughput-neutral on one core (BENCH_PR2).
const wideL2Budget = 1 << 20

// NewWideResNetMini builds the weight-streaming classifier: the same residual
// topology as the mini ResNet-50 but with 4× the channel widths, which puts
// its weight tensors (~3.5 MB) well past a typical L2 cache (wideL2Budget).
// Per-sample inference must then re-stream every weight panel from memory for
// every sample, while a batched Predict streams each panel once per
// micro-batch — the "large batch sizes to reach peak" effect of the paper's
// throughput scenarios, reproduced at cache scale.
func NewWideResNetMini(cfg ClassifierConfig) (*ImageClassifier, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x71de5e)
	widths := []int{32, 64, 256}
	seq := nn.NewSequential("resnet50-wide-mini",
		nn.NewConv("stem", cfg.Channels, widths[0], 3, 1, 1, rng),
	)
	inC := widths[0]
	for stage, w := range widths {
		if w != inC {
			seq.Add(nn.NewConv(fmt.Sprintf("proj%d", stage), inC, w, 3, 2, 1, rng))
			inC = w
		}
		for b := 0; b < 2; b++ {
			body := nn.NewSequential(fmt.Sprintf("stage%d_block%d", stage, b),
				nn.NewConv(fmt.Sprintf("s%db%d_c1", stage, b), w, w, 3, 1, 1, rng),
				nn.NewConv(fmt.Sprintf("s%db%d_c2", stage, b), w, w, 3, 1, 1, rng),
			)
			seq.Add(nn.NewResidual(fmt.Sprintf("s%db%d", stage, b), body))
		}
	}
	seq.Add(
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("fc", inC, cfg.Classes, false, rng),
	)
	m, err := finishClassifier(ResNet50Wide, seq, cfg)
	if err != nil {
		return nil, err
	}
	if bytes := weightBytes(m); bytes <= wideL2Budget {
		return nil, fmt.Errorf("model %s: weights are %d bytes, expected to exceed the %d-byte L2 budget", ResNet50Wide, bytes, wideL2Budget)
	}
	return m, nil
}

// weightBytes sums a model's weight storage.
func weightBytes(m WeightedModel) int {
	total := 0
	for _, w := range m.Weights() {
		total += 4 * w.Len()
	}
	return total
}

// pointwise returns a 1x1 convolution used after each depthwise convolution.
func pointwise(name string, inC, outC int, rng *stats.RNG) *nn.Conv {
	c := nn.NewConv(name, inC, outC, 1, 1, 0, rng)
	c.Relu6 = true
	return c
}

// finishClassifier fills metadata from the constructed network.
func finishClassifier(name Name, seq *nn.Sequential, cfg ClassifierConfig) (*ImageClassifier, error) {
	info, err := Describe(name)
	if err != nil {
		return nil, err
	}
	inShape := []int{cfg.Channels, cfg.ImageSize, cfg.ImageSize}
	if _, err := seq.OutputShape(inShape); err != nil {
		return nil, fmt.Errorf("model %s: invalid architecture for input %v: %w", name, inShape, err)
	}
	ops, err := seq.Ops(inShape)
	if err != nil {
		return nil, err
	}
	footprint, err := activationFootprintBytes(seq.Layers(), inShape)
	if err != nil {
		return nil, err
	}
	info.Params = seq.ParamCount()
	info.OpsPerInput = ops
	return &ImageClassifier{info: info, net: seq, inShape: inShape, footprint: footprint}, nil
}
