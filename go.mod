module mlperf

go 1.24
