package evalcorpus

import (
	"testing"

	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/simhw"
)

func TestTableVICounts(t *testing.T) {
	counts := TableVICounts()
	if len(counts) != 5 {
		t.Fatalf("Table VI rows = %d, want 5", len(counts))
	}
	// Column totals from the paper: 51 / 15 / 33 / 67.
	colTotals := map[loadgen.Scenario]int{}
	for _, row := range counts {
		for s, n := range row {
			colTotals[s] += n
		}
	}
	want := map[loadgen.Scenario]int{
		loadgen.SingleStream: 51, loadgen.MultiStream: 15, loadgen.Server: 33, loadgen.Offline: 67,
	}
	for s, w := range want {
		if colTotals[s] != w {
			t.Errorf("%v column total = %d, want %d", s, colTotals[s], w)
		}
	}
	if TableVITotal() != 166 {
		t.Errorf("Table VI total = %d, want 166", TableVITotal())
	}
	// GNMT multistream is the one empty cell (Section VI-B).
	if counts[model.GNMT][loadgen.MultiStream] != 0 {
		t.Error("GNMT multistream should have no results")
	}
}

func TestGenerateCoverageMatchesTableVI(t *testing.T) {
	corpus, err := Generate(Options{Seed: 1, SkipMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Records) != TableVITotal() {
		t.Fatalf("corpus has %d records, want %d", len(corpus.Records), TableVITotal())
	}
	coverage := corpus.Coverage()
	for m, row := range TableVICounts() {
		for s, n := range row {
			if coverage[string(m)][s] != n {
				t.Errorf("%s/%v coverage = %d, want %d", m, s, coverage[string(m)][s], n)
			}
		}
	}
}

func TestModelShareMatchesFigure5(t *testing.T) {
	corpus, err := Generate(Options{Seed: 1, SkipMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	share := corpus.ModelShare()
	// Figure 5 reports ResNet-50 32.5%, MobileNet 22.3%, SSD-MobileNet 17.5%,
	// SSD-ResNet-34 16.3%, GNMT 11.4%.
	want := map[string]float64{
		"resnet50-v1.5":    0.325,
		"mobilenet-v1":     0.223,
		"ssd-mobilenet-v1": 0.175,
		"ssd-resnet34":     0.163,
		"gnmt":             0.114,
	}
	for m, w := range want {
		got := share[m]
		if got < w-0.01 || got > w+0.01 {
			t.Errorf("%s share = %.3f, want %.3f (Figure 5)", m, got, w)
		}
	}
}

func TestArchitectureCountsCoverAllArchitectures(t *testing.T) {
	corpus, err := Generate(Options{Seed: 1, SkipMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := corpus.ArchitectureCounts()
	for _, a := range simhw.AllArchitectures() {
		if counts[a] == 0 {
			t.Errorf("no results for architecture %s (Figure 7 shows all five)", a)
		}
	}
	// GPUs hold the most results, as in Figure 7.
	max := simhw.Architecture("")
	best := 0
	for a, n := range counts {
		if n > best {
			best = n
			max = a
		}
	}
	if max != simhw.GPU {
		t.Errorf("architecture with most results = %s, want GPU", max)
	}
}

func TestFrameworkMatrix(t *testing.T) {
	corpus, err := Generate(Options{Seed: 1, SkipMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	matrix := corpus.FrameworkMatrix()
	if len(matrix) < 6 {
		t.Errorf("framework matrix has only %d frameworks", len(matrix))
	}
	// TensorRT runs on GPUs; SNPE runs on DSPs (Table VII).
	if !matrix["TensorRT"][simhw.GPU] {
		t.Error("TensorRT should appear on GPU")
	}
	if !matrix["SNPE"][simhw.DSP] {
		t.Error("SNPE should appear on DSP")
	}
}

func TestGenerateWithMetrics(t *testing.T) {
	corpus, err := Generate(Options{Seed: 2, SearchQueries: 256})
	if err != nil {
		t.Fatal(err)
	}
	withMetric := 0
	for _, r := range corpus.Records {
		if r.Metric > 0 {
			withMetric++
		}
	}
	// Most records should carry a usable metric; a few slow-platform /
	// tight-bound combinations legitimately report zero.
	if withMetric < len(corpus.Records)/2 {
		t.Errorf("only %d/%d records carry a metric", withMetric, len(corpus.Records))
	}
	ranges := corpus.PerformanceRanges()
	if len(ranges) == 0 {
		t.Fatal("no performance ranges computed")
	}
	for _, r := range ranges {
		if r.Spread < 1 {
			t.Errorf("%s/%v spread %v below 1", r.Model, r.Scenario, r.Spread)
		}
		if r.Systems < 2 {
			t.Errorf("%s/%v computed from %d systems", r.Model, r.Scenario, r.Systems)
		}
	}
}

func TestServerToOfflineRatios(t *testing.T) {
	series, err := ServerToOfflineRatios(3, Options{Seed: 3, SearchQueries: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series, want 3", len(series))
	}
	for _, s := range series {
		if s.Platform == "" || len(s.Ratios) != 5 {
			t.Errorf("incomplete series %+v", s)
		}
		for m, ratio := range s.Ratios {
			if ratio < 0 || ratio > 1 {
				t.Errorf("%s/%s ratio %v outside [0,1]", s.Platform, m, ratio)
			}
		}
	}
	if _, err := ServerToOfflineRatios(0, Options{}); err == nil {
		t.Error("zero systems: expected error")
	}
}
