// Package backend provides the system-under-test implementations the harness
// runs the LoadGen against:
//
//   - Native executes the in-repo miniature reference models on synthetic
//     data, exercising the full inference path (the closest analogue to a
//     real submission's inference engine).
//   - Simulated replays a simhw.Platform's service-time model in wall-clock
//     time, so scenario dynamics can be studied for platforms far faster or
//     slower than this machine.
//   - Batching wraps another backend with a dynamic batcher, the optimization
//     that distinguishes the server and offline scenarios (Section VI-B).
package backend

import (
	"fmt"
	"runtime"
	"sync"

	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/payload"
)

// SampleStore provides samples by index; dataset.QSL satisfies it.
type SampleStore interface {
	Get(index int) (*dataset.Sample, error)
}

// NativeConfig configures a Native backend.
type NativeConfig struct {
	// Name labels the SUT in results.
	Name string
	// Kind selects which model field is used.
	Kind dataset.Kind
	// Exactly one of Classifier, Detector or Translator must be set,
	// matching Kind.
	Classifier model.Classifier
	Detector   model.Detector
	Translator model.Translator
	// Store provides input samples.
	Store SampleStore
	// Workers is the number of concurrent inference workers. It defaults to
	// runtime.GOMAXPROCS(0), floored at 2, so multi-sample (offline/server)
	// traffic saturates every core while the issue loop can still overlap
	// with an in-flight inference on single-core hosts; set it to 1 for a
	// deliberately serial SUT.
	Workers int
}

// Native runs the in-repo models as the system under test.
type Native struct {
	cfg  NativeConfig
	sem  chan struct{}
	wg   sync.WaitGroup
	errs errorLog
}

// errorLog accumulates inference errors thread-safely; a real SUT would fail
// the run, so the harness checks Errors after the run.
type errorLog struct {
	mu   sync.Mutex
	errs []error
}

func (e *errorLog) add(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.errs = append(e.errs, err)
}

func (e *errorLog) all() []error {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]error, len(e.errs))
	copy(out, e.errs)
	return out
}

// NewNative validates the configuration and returns the backend.
func NewNative(cfg NativeConfig) (*Native, error) {
	if cfg.Name == "" {
		cfg.Name = "native"
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("backend: native backend needs a sample store")
	}
	switch cfg.Kind {
	case dataset.KindImageClassification:
		if cfg.Classifier == nil {
			return nil, fmt.Errorf("backend: classification backend needs a Classifier")
		}
	case dataset.KindObjectDetection:
		if cfg.Detector == nil {
			return nil, fmt.Errorf("backend: detection backend needs a Detector")
		}
	case dataset.KindTranslation:
		if cfg.Translator == nil {
			return nil, fmt.Errorf("backend: translation backend needs a Translator")
		}
	default:
		return nil, fmt.Errorf("backend: unknown task kind %v", cfg.Kind)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers()
	}
	return &Native{cfg: cfg, sem: make(chan struct{}, cfg.Workers)}, nil
}

// defaultWorkers is GOMAXPROCS floored at 2: all cores for throughput, and
// never so few that the LoadGen's issue loop serializes against an in-flight
// inference on a single-core host.
func defaultWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 2 {
		return w
	}
	return 2
}

// Name implements loadgen.SUT.
func (n *Native) Name() string { return n.cfg.Name }

// IssueQuery implements loadgen.SUT. Single-sample queries are processed by
// a bounded worker pool so concurrent server-style queries overlap; a
// multi-sample (multistream/offline) query takes the batched path, fanning
// its samples out across all workers and completing each worker's chunk in
// one call, so one big offline query saturates every core.
func (n *Native) IssueQuery(q *loadgen.Query) {
	if len(q.Samples) > 1 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.runBatch(q)
		}()
		return
	}
	for _, s := range q.Samples {
		s := s
		n.wg.Add(1)
		n.sem <- struct{}{}
		go func() {
			defer n.wg.Done()
			defer func() { <-n.sem }()
			data, err := n.inferSample(s.Index)
			if err != nil {
				n.errs.add(err)
				data = nil
			}
			q.Complete([]loadgen.Response{{SampleID: s.ID, Data: data}})
		}()
	}
}

// runBatch spreads a multi-sample query's inference across the worker
// semaphore in contiguous chunks. Each chunk is inferred by one goroutine and
// reported in a single Complete call, keeping response bookkeeping
// proportional to the worker count rather than the sample count. Because
// every chunk holds a semaphore slot while inferring, total in-flight
// inference — across this batch, concurrent batches and single-sample
// queries — never exceeds cfg.Workers.
func (n *Native) runBatch(q *loadgen.Query) {
	grain := batchGrain(len(q.Samples), n.cfg.Workers)
	for lo := 0; lo < len(q.Samples); lo += grain {
		hi := lo + grain
		if hi > len(q.Samples) {
			hi = len(q.Samples)
		}
		lo, hi := lo, hi
		n.wg.Add(1)
		n.sem <- struct{}{}
		go func() {
			defer n.wg.Done()
			defer func() { <-n.sem }()
			responses := make([]loadgen.Response, hi-lo)
			for i := lo; i < hi; i++ {
				data, err := n.inferSample(q.Samples[i].Index)
				if err != nil {
					n.errs.add(err)
					data = nil
				}
				responses[i-lo] = loadgen.Response{SampleID: q.Samples[i].ID, Data: data}
			}
			q.Complete(responses)
		}()
	}
}

// batchGrain yields several chunks per worker so stragglers rebalance while
// chunks stay large enough to amortize completion bookkeeping.
func batchGrain(samples, workers int) int {
	grain := samples / (4 * workers)
	if grain < 1 {
		grain = 1
	}
	return grain
}

// inferSample runs the model on one sample and encodes the prediction.
func (n *Native) inferSample(index int) ([]byte, error) {
	sample, err := n.cfg.Store.Get(index)
	if err != nil {
		return nil, fmt.Errorf("backend %s: fetching sample %d: %w", n.cfg.Name, index, err)
	}
	switch n.cfg.Kind {
	case dataset.KindImageClassification:
		class, err := n.cfg.Classifier.Classify(sample.Image)
		if err != nil {
			return nil, fmt.Errorf("backend %s: classifying sample %d: %w", n.cfg.Name, index, err)
		}
		return payload.EncodeClass(class)
	case dataset.KindObjectDetection:
		boxes, err := n.cfg.Detector.Detect(sample.Image)
		if err != nil {
			return nil, fmt.Errorf("backend %s: detecting sample %d: %w", n.cfg.Name, index, err)
		}
		return payload.EncodeBoxes(boxes)
	case dataset.KindTranslation:
		tokens, err := n.cfg.Translator.Translate(sample.Tokens)
		if err != nil {
			return nil, fmt.Errorf("backend %s: translating sample %d: %w", n.cfg.Name, index, err)
		}
		return payload.EncodeTokens(tokens)
	default:
		return nil, fmt.Errorf("backend %s: unknown task kind %v", n.cfg.Name, n.cfg.Kind)
	}
}

// FlushQueries implements loadgen.SUT; the native backend has no internal
// batching so there is nothing to flush.
func (n *Native) FlushQueries() {}

// Wait blocks until all in-flight inference finishes. The harness calls it
// after the LoadGen reports completion so error collection is complete.
func (n *Native) Wait() { n.wg.Wait() }

// Errors returns inference errors observed during the run.
func (n *Native) Errors() []error { return n.errs.all() }
