// Package model provides the reference-model zoo of the benchmark suite.
// The paper's five reference models (ResNet-50 v1.5, MobileNet-v1,
// SSD-ResNet-34, SSD-MobileNet-v1 and GNMT) are substituted with miniature
// but structurally faithful analogues built on the internal nn package:
// residual stacks, depthwise-separable stacks, SSD-style detection heads on
// both backbones and a recurrent encoder–decoder with attention. Each model
// carries metadata mirroring Table I (parameters, operations per input,
// quality metric and target) so the suite's quality-target machinery behaves
// like the original.
//
// Every model is served through ONE batch-first contract, Engine: backends
// hand Predict a slice of samples — a single-stream query or a whole merged
// offline/server batch — and the CNN models execute it as one im2col+GEMM
// per layer while the recurrent translator decodes the whole batch greedily,
// one GEMM per weight matrix per step with finished sentences compacting out
// of the active set (nn.Seq2Seq.TranslateBatch). Predict on a batch is
// bit-identical to per-sample calls, so dynamic batching is purely a
// scheduling decision.
//
// Large batches run as micro-batches whose size each engine derives from its
// per-sample activation footprint against a fixed cache budget (see
// microBatchFor): wide-activation models batch shallow so one micro-batch's
// working set stays cache-resident, the translator's tiny step state batches
// to the cap. Engines publish the derived size through BatchSizer so
// backends can size inference chunks to it. The narrower single-sample
// interfaces (Classifier, Detector, Translator) remain for direct use and
// calibration; EngineFromClassifier and friends adapt any of them into an
// Engine.
package model

import (
	"fmt"

	"mlperf/internal/metrics"
	"mlperf/internal/tensor"
)

// Name identifies a reference model in the v0.5 suite.
type Name string

// The five reference models of MLPerf Inference v0.5 (Table I).
const (
	ResNet50     Name = "resnet50-v1.5"
	MobileNetV1  Name = "mobilenet-v1"
	SSDResNet34  Name = "ssd-resnet34"
	SSDMobileNet Name = "ssd-mobilenet-v1"
	GNMT         Name = "gnmt"
)

// ResNet50Wide is a wide-channel variant of the heavyweight classifier whose
// weights exceed a typical L2 cache. It is not part of the v0.5 suite
// (AllNames excludes it); it exists to exhibit the paper's "large batches to
// reach peak" effect on weight streaming: batched GEMMs stream the
// out-of-cache weight panels once per micro-batch instead of once per sample.
const ResNet50Wide Name = "resnet50-wide"

// AllNames lists every reference model in a stable order.
func AllNames() []Name {
	return []Name{ResNet50, MobileNetV1, SSDResNet34, SSDMobileNet, GNMT}
}

// Classifier produces a class prediction for an image.
type Classifier interface {
	// Classify returns the predicted class index for a CHW image.
	Classify(img *tensor.Tensor) (int, error)
	// Logits returns the raw class scores for a CHW image.
	Logits(img *tensor.Tensor) (*tensor.Tensor, error)
}

// Detector produces bounding-box predictions for an image.
type Detector interface {
	// Detect returns scored, classed boxes for a CHW image.
	Detect(img *tensor.Tensor) ([]metrics.Box, error)
}

// Translator maps a source-token sequence to a target-token sequence.
type Translator interface {
	// Translate returns the predicted target tokens for the source tokens.
	Translate(tokens []int) ([]int, error)
}

// WeightedModel exposes a model's weight tensors for post-training
// quantization (Section III-B / IV-A allow weight-format changes with
// calibration but prohibit retraining).
type WeightedModel interface {
	// Weights returns the model's mutable weight tensors.
	Weights() []*tensor.Tensor
}

// Info is the Table I metadata for a reference model.
type Info struct {
	Name      Name
	PaperName string
	Area      string // "Vision" or "Language"
	TaskLabel string // e.g. "Image classification (heavy)"

	// Miniature-model figures computed from the in-repo implementation.
	Params      int64
	OpsPerInput int64

	// Published figures from Table I, kept for the modeled-vs-measured
	// analysis of Section VII-D and for documentation.
	PaperParams      int64
	PaperOpsPerInput int64

	// QualityMetric names the accuracy metric ("top1", "mAP", "BLEU").
	QualityMetric string
	// PaperReferenceQuality is the FP32 reference quality from Table I
	// (fraction for top1/mAP, BLEU points for translation).
	PaperReferenceQuality float64
	// TargetRatio is the fraction of the reference quality an equivalent
	// implementation must reach (0.99 for most models, 0.98 for MobileNet).
	TargetRatio float64
}

// QualityTarget returns the minimum acceptable quality given the measured
// FP32 reference quality of the miniature model.
func (i Info) QualityTarget(referenceQuality float64) float64 {
	return referenceQuality * i.TargetRatio
}

// ErrUnknownModel is returned for names outside the v0.5 suite.
var ErrUnknownModel = fmt.Errorf("model: unknown reference model")

// Describe returns the static Table I metadata for a model name. The Params
// and OpsPerInput fields are zero until a concrete model is built; BuildInfo
// fills them from an instantiated model.
func Describe(n Name) (Info, error) {
	switch n {
	case ResNet50:
		return Info{
			Name: n, PaperName: "ResNet-50 v1.5", Area: "Vision",
			TaskLabel:   "Image classification (heavy)",
			PaperParams: 25_600_000, PaperOpsPerInput: 8_200_000_000,
			QualityMetric: "top1", PaperReferenceQuality: 0.76456, TargetRatio: 0.99,
		}, nil
	case MobileNetV1:
		return Info{
			Name: n, PaperName: "MobileNet-v1 224", Area: "Vision",
			TaskLabel:   "Image classification (light)",
			PaperParams: 4_200_000, PaperOpsPerInput: 1_138_000_000,
			QualityMetric: "top1", PaperReferenceQuality: 0.71676, TargetRatio: 0.98,
		}, nil
	case SSDResNet34:
		return Info{
			Name: n, PaperName: "SSD-ResNet-34", Area: "Vision",
			TaskLabel:   "Object detection (heavy)",
			PaperParams: 36_300_000, PaperOpsPerInput: 433_000_000_000,
			QualityMetric: "mAP", PaperReferenceQuality: 0.20, TargetRatio: 0.99,
		}, nil
	case SSDMobileNet:
		return Info{
			Name: n, PaperName: "SSD-MobileNet-v1", Area: "Vision",
			TaskLabel:   "Object detection (light)",
			PaperParams: 6_910_000, PaperOpsPerInput: 2_470_000_000,
			QualityMetric: "mAP", PaperReferenceQuality: 0.22, TargetRatio: 0.99,
		}, nil
	case GNMT:
		return Info{
			Name: n, PaperName: "GNMT", Area: "Language",
			TaskLabel:   "Machine translation",
			PaperParams: 210_000_000, PaperOpsPerInput: 0,
			QualityMetric: "BLEU", PaperReferenceQuality: 23.9, TargetRatio: 0.99,
		}, nil
	case ResNet50Wide:
		return Info{
			Name: n, PaperName: "ResNet-50 v1.5 (wide)", Area: "Vision",
			TaskLabel: "Image classification (weight-streaming)",
			// Not a Table I entry: no published figures to mirror.
			QualityMetric: "top1", PaperReferenceQuality: 0.76456, TargetRatio: 0.99,
		}, nil
	default:
		return Info{}, fmt.Errorf("%w: %q", ErrUnknownModel, n)
	}
}
