package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestPercentileNearestRank(t *testing.T) {
	samples := []time.Duration{ms(10), ms(20), ms(30), ms(40), ms(50), ms(60), ms(70), ms(80), ms(90), ms(100)}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, ms(50)},
		{0.90, ms(90)},
		{0.99, ms(100)},
		{1.00, ms(100)},
		{0.05, ms(10)},
	}
	for _, c := range cases {
		got, err := Percentile(samples, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Percentile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 0.9); err == nil {
		t.Error("empty samples: expected error")
	}
	if _, err := Percentile([]time.Duration{ms(1)}, 0); err == nil {
		t.Error("p=0: expected error")
	}
	if _, err := Percentile([]time.Duration{ms(1)}, 1.5); err == nil {
		t.Error("p>1: expected error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	samples := []time.Duration{ms(30), ms(10), ms(20)}
	if _, err := Percentile(samples, 0.5); err != nil {
		t.Fatal(err)
	}
	if samples[0] != ms(30) || samples[1] != ms(10) || samples[2] != ms(20) {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	samples := make([]time.Duration, 0, 100)
	for i := 1; i <= 100; i++ {
		samples = append(samples, ms(i))
	}
	s, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 100 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Min != ms(1) || s.Max != ms(100) {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != ms(50) || s.P90 != ms(90) || s.P99 != ms(99) {
		t.Errorf("P50/P90/P99 = %v/%v/%v", s.P50, s.P90, s.P99)
	}
	if s.Mean != ms(50)+500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestFractionOver(t *testing.T) {
	samples := []time.Duration{ms(5), ms(10), ms(15), ms(20)}
	if f := FractionOver(samples, ms(10)); f != 0.5 {
		t.Errorf("FractionOver = %v, want 0.5", f)
	}
	if f := FractionOver(samples, ms(100)); f != 0 {
		t.Errorf("FractionOver = %v, want 0", f)
	}
	if f := FractionOver(nil, ms(1)); f != 0 {
		t.Errorf("FractionOver(nil) = %v, want 0", f)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(int(v)+40000) * time.Microsecond
		}
		p := 0.01 + 0.99*float64(pRaw)/255
		got, err := Percentile(samples, p)
		if err != nil {
			return false
		}
		s, err := Summarize(samples)
		if err != nil {
			return false
		}
		// Any percentile lies within [min, max] and is one of the samples.
		if got < s.Min || got > s.Max {
			return false
		}
		found := false
		for _, v := range samples {
			if v == got {
				found = true
				break
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
