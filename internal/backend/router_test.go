package backend

import (
	"testing"
	"time"

	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
)

// startFleet launches n identical loopback serve.Servers plus a Remote
// fanning out over all of them.
func startFleet(t testing.TB, n int, scfg serve.Config, rcfg RemoteConfig) ([]*serve.Server, *Remote) {
	t.Helper()
	var (
		servers []*serve.Server
		addrs   []string
	)
	for i := 0; i < n; i++ {
		srv, err := serve.New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	rcfg.Addrs = addrs
	remote, err := NewRemote(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	return servers, remote
}

// offlineAccuracyByIndex runs an Offline accuracy sweep and returns each
// sample's response payload keyed by sample index.
func offlineAccuracyByIndex(t *testing.T, sut loadgen.SUT, qsl *dataset.QSL) map[int][]byte {
	t.Helper()
	settings := loadgen.DefaultSettings(loadgen.Offline)
	settings.Mode = loadgen.AccuracyMode
	settings.MinDuration = 0
	settings.MinSampleCount = 1
	out := make(map[int][]byte)
	settings.AccuracySink = func(e loadgen.AccuracyEntry) {
		data := make([]byte, len(e.Data))
		copy(data, e.Data)
		out[e.SampleIndex] = data
	}
	res, err := loadgen.StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponsesDropped != 0 {
		t.Fatalf("offline accuracy sweep dropped %d responses", res.ResponsesDropped)
	}
	return out
}

// TestReplicaInvariance is the scale-out acceptance test: Server and Offline
// accuracy sweeps through 1, 2 and 4 loopback replicas must produce
// byte-identical per-sample payloads to the in-process backend.Native path —
// routing must never change what a sample answers, only who answers it.
func TestReplicaInvariance(t *testing.T) {
	engine, qsl := buildClassificationStack(t)

	native, err := NewNative(NativeConfig{Engine: engine, Store: qsl, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	nativeServer := accuracyByIndex(t, native, qsl)
	nativeOffline := offlineAccuracyByIndex(t, native, qsl)
	native.Wait()
	if errs := native.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}

	for _, replicas := range []int{1, 2, 4} {
		servers, remote := startFleet(t, replicas,
			serve.Config{Engine: engine, Store: qsl, Workers: 2, BatchWait: time.Millisecond},
			RemoteConfig{Conns: 2})

		for name, want := range map[string]map[int][]byte{
			"server":  nativeServer,
			"offline": nativeOffline,
		} {
			var got map[int][]byte
			if name == "server" {
				got = accuracyByIndex(t, remote, qsl)
			} else {
				got = offlineAccuracyByIndex(t, remote, qsl)
			}
			remote.Wait()
			if errs := remote.Errors(); len(errs) > 0 {
				t.Fatal(errs[0])
			}
			if len(got) != len(want) || len(got) != qsl.TotalSampleCount() {
				t.Fatalf("%d replicas %s: coverage %d, want %d", replicas, name, len(got), qsl.TotalSampleCount())
			}
			for idx, wantData := range want {
				if string(got[idx]) != string(wantData) {
					t.Errorf("%d replicas %s: sample %d: %q != native %q", replicas, name, idx, got[idx], wantData)
				}
			}
		}

		// The merged client-side view reconciles with the per-server truth.
		merged, err := remote.ServerMetrics()
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, srv := range servers {
			sum += srv.Metrics().Completed
		}
		if merged.Completed != sum {
			t.Errorf("%d replicas: merged completed %d != per-server sum %d", replicas, merged.Completed, sum)
		}
		snaps, err := remote.ReplicaMetrics()
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) != replicas {
			t.Errorf("ReplicaMetrics returned %d snapshots, want %d", len(snaps), replicas)
		}
	}
}

// TestRouterSpreadsLoad: with least-in-flight routing, a saturating offline
// run must land work on every replica, and the per-replica completions must
// sum to the total.
func TestRouterSpreadsLoad(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	servers, remote := startFleet(t, 2,
		serve.Config{Engine: engine, Store: qsl, Workers: 2, BatchWait: time.Millisecond},
		RemoteConfig{MaxInFlight: 16})

	settings := loadgen.DefaultSettings(loadgen.Offline)
	settings.MinSampleCount = 512
	settings.MinDuration = 0
	res, err := loadgen.StartTest(remote, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if !res.Valid {
		t.Fatalf("offline run invalid: %v", res.ValidityMessages)
	}
	var sum uint64
	for i, srv := range servers {
		snap := srv.Metrics()
		if snap.Completed == 0 {
			t.Errorf("replica %d served nothing — router did not spread the load", i)
		}
		sum += snap.Completed
	}
	if sum != uint64(res.SamplesCompleted) {
		t.Errorf("replicas served %d samples, loadgen counted %d", sum, res.SamplesCompleted)
	}
}

// TestReplicaDeathRoutesAround is the replica-lifecycle test: when one of two
// replicas dies mid-run, (a) everything pending on it settles as dropped so
// nothing hangs, (b) the router stops sending it traffic, and (c) the
// surviving replica keeps serving — so a degraded fleet still terminates with
// an invalid run and counted drops rather than a hang or a silent loss.
func TestReplicaDeathRoutesAround(t *testing.T) {
	servers, remote := startFleet(t, 2,
		serve.Config{
			Engine: &slowEngine{delay: 2 * time.Millisecond}, Store: fixedStore{},
			Workers: 1, MaxBatch: 1, BatchWait: 100 * time.Microsecond,
		},
		RemoteConfig{Conns: 2, MaxInFlight: 64})

	issue := func(id uint64) chan []loadgen.Response {
		q := &loadgen.Query{ID: id, Samples: []loadgen.QuerySample{{ID: id, Index: int(id)}}}
		ch := make(chan []loadgen.Response, 1)
		q.SetCompletionHandler(func(_ *loadgen.Query, rs []loadgen.Response) { ch <- rs })
		remote.IssueQuery(q)
		return ch
	}
	drain := func(chans []chan []loadgen.Response) (ok, dropped int) {
		t.Helper()
		for i, ch := range chans {
			select {
			case rs := <-ch:
				if rs[0].Dropped {
					dropped++
				} else {
					ok++
				}
			case <-time.After(15 * time.Second):
				t.Fatalf("query %d never completed after replica death", i+1)
			}
		}
		return ok, dropped
	}

	var before []chan []loadgen.Response
	for i := uint64(1); i <= 16; i++ {
		before = append(before, issue(i))
	}
	servers[0].Close() // replica 0 dies; its pending work settles as dropped
	_, _ = drain(before)

	// Wait until the router has marked the replica down (its connections fail
	// as soon as the closed server tears them down).
	deadline := time.Now().Add(10 * time.Second)
	for remote.DownReplicas() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica never marked down")
		}
		time.Sleep(time.Millisecond)
	}

	// New traffic routes around the dead replica: it must ALL complete OK on
	// the survivor, not just terminate.
	var after []chan []loadgen.Response
	for i := uint64(100); i < 132; i++ {
		after = append(after, issue(i))
	}
	ok, dropped := drain(after)
	if dropped != 0 || ok != 32 {
		t.Errorf("after death: %d ok, %d dropped — survivor should have served everything", ok, dropped)
	}
	if servers[1].Metrics().Completed == 0 {
		t.Error("surviving replica served nothing")
	}

	remote.Wait()
	if remote.DownReplicas() != 1 {
		t.Errorf("DownReplicas = %d, want 1", remote.DownReplicas())
	}
	if errs := remote.Errors(); len(errs) == 0 {
		t.Error("replica death recorded no errors")
	}
	// The merged metrics still answer from the survivor.
	if _, err := remote.ServerMetrics(); err != nil {
		t.Errorf("merged metrics after replica death: %v", err)
	}
}

// TestRemoteModelAddressedFleet: a model-addressed Remote against a fleet of
// multi-model servers routes by model id on every replica.
func TestRemoteModelAddressedFleet(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	_, remote := startFleet(t, 2,
		serve.Config{
			Store: qsl,
			Models: []serve.ModelConfig{
				{Name: "mobilenet", Engine: engine},
			},
			BatchWait: time.Millisecond,
		},
		RemoteConfig{Model: "mobilenet"})

	native, err := NewNative(NativeConfig{Engine: engine, Store: qsl, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := accuracyByIndex(t, native, qsl)
	got := accuracyByIndex(t, remote, qsl)
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	for idx, wantData := range want {
		if string(got[idx]) != string(wantData) {
			t.Errorf("sample %d: model-addressed fleet %q != native %q", idx, got[idx], wantData)
		}
	}
	snap, err := remote.ServerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Completed != uint64(len(want)) {
		t.Errorf("merged model metrics completed %d, want %d", snap.Completed, len(want))
	}
}
