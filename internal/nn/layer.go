// Package nn implements the neural-network layers and containers used to
// build the miniature reference models of the benchmark suite (residual CNNs,
// depthwise-separable CNNs, SSD detection heads and a recurrent
// encoder–decoder). Layers run single samples through Forward/ForwardScratch
// and, where profitable, whole merged batches through BatchLayer — one
// kernel invocation per layer over channel-major batch tensors, bit-identical
// to per-sample execution (the benchmark leaves batching strategy to the
// submitter, Section IV-A; here it is a pure scheduling decision).
//
// The recurrent stack is batch-first too: LSTMCell.StepBatch advances N
// sequences as one matrix step (states stacked feature-major [H, N], one
// packed GEMM per weight matrix with the gate nonlinearities fused in the
// epilogue), Embedding.LookupBatch gathers a token batch into [Dim, N], and
// Seq2Seq.TranslateBatch runs batched greedy decoding with an active-sentence
// mask: ragged sentences drop out of the encoder batch as their prefixes end
// and out of the decoder batch the step they emit EOS, so per-step cost
// shrinks as sentences terminate. Every batched column is bit-identical to
// the corresponding single-sequence call; see rnn_batch.go for the layout and
// compaction contract.
package nn

import (
	"fmt"

	"mlperf/internal/tensor"
)

// Layer is a single differentiable-free inference operator.
type Layer interface {
	// Name returns a short human-readable identifier for logs and errors.
	Name() string
	// Forward runs the layer on one input sample and returns the output.
	Forward(x *tensor.Tensor) (*tensor.Tensor, error)
	// OutputShape returns the layer's output shape for the given input shape
	// without running it.
	OutputShape(in []int) ([]int, error)
	// ParamCount returns the number of learned parameters.
	ParamCount() int64
	// Ops returns the number of multiply-accumulate-equivalent operations the
	// layer performs on an input of the given shape. It is used to reproduce
	// the GOPs-per-input figures of Table I.
	Ops(in []int) (int64, error)
}

// ScratchLayer is implemented by layers that can run their forward pass with
// all intermediate and output tensors allocated from a caller-provided
// Scratch arena, so steady-state inference performs no per-sample heap
// allocation. The returned tensor is arena-backed: it is invalidated by the
// arena's next Reset and must be cloned if it outlives the pass.
type ScratchLayer interface {
	ForwardScratch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error)
}

// ForwardWith runs l on x, using the arena-backed fast path when s is
// non-nil and the layer supports it, and the plain allocating Forward
// otherwise.
func ForwardWith(l Layer, x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if s != nil {
		if sl, ok := l.(ScratchLayer); ok {
			return sl.ForwardScratch(x, s)
		}
	}
	return l.Forward(x)
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	name   string
	layers []Layer
}

// NewSequential returns an empty sequential container.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, layers: layers}
}

// Add appends layers to the container and returns it for chaining.
func (s *Sequential) Add(layers ...Layer) *Sequential {
	s.layers = append(s.layers, layers...)
	return s
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Layers returns the contained layers in execution order.
func (s *Sequential) Layers() []Layer { return s.layers }

// Forward implements Layer by running every contained layer in order.
func (s *Sequential) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.forward(x, nil)
}

// ForwardScratch implements ScratchLayer; contained layers that support the
// arena path use it, the rest fall back to Forward.
func (s *Sequential) ForwardScratch(x *tensor.Tensor, sc *tensor.Scratch) (*tensor.Tensor, error) {
	return s.forward(x, sc)
}

func (s *Sequential) forward(x *tensor.Tensor, sc *tensor.Scratch) (*tensor.Tensor, error) {
	cur := x
	for _, l := range s.layers {
		out, err := ForwardWith(l, cur, sc)
		if err != nil {
			return nil, fmt.Errorf("nn: %s/%s: %w", s.name, l.Name(), err)
		}
		cur = out
	}
	return cur, nil
}

// OutputShape implements Layer.
func (s *Sequential) OutputShape(in []int) ([]int, error) {
	cur := in
	for _, l := range s.layers {
		out, err := l.OutputShape(cur)
		if err != nil {
			return nil, fmt.Errorf("nn: %s/%s: %w", s.name, l.Name(), err)
		}
		cur = out
	}
	return cur, nil
}

// ParamCount implements Layer.
func (s *Sequential) ParamCount() int64 {
	var total int64
	for _, l := range s.layers {
		total += l.ParamCount()
	}
	return total
}

// Ops implements Layer.
func (s *Sequential) Ops(in []int) (int64, error) {
	cur := in
	var total int64
	for _, l := range s.layers {
		ops, err := l.Ops(cur)
		if err != nil {
			return 0, fmt.Errorf("nn: %s/%s: %w", s.name, l.Name(), err)
		}
		total += ops
		out, err := l.OutputShape(cur)
		if err != nil {
			return 0, err
		}
		cur = out
	}
	return total, nil
}

// Residual wraps a body whose output is added to its input (identity
// shortcut), the building block of ResNet-style models. The body's output
// shape must equal its input shape.
type Residual struct {
	name string
	body Layer
}

// NewResidual returns a residual block around body.
func NewResidual(name string, body Layer) *Residual {
	return &Residual{name: name, body: body}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Body returns the wrapped layer, e.g. for weight enumeration.
func (r *Residual) Body() Layer { return r.body }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return r.forward(x, nil)
}

// ForwardScratch implements ScratchLayer.
func (r *Residual) ForwardScratch(x *tensor.Tensor, sc *tensor.Scratch) (*tensor.Tensor, error) {
	return r.forward(x, sc)
}

func (r *Residual) forward(x *tensor.Tensor, sc *tensor.Scratch) (*tensor.Tensor, error) {
	// The body may run in place over its input, so it gets a copy and the
	// original x stays intact for the shortcut add.
	var body *tensor.Tensor
	if sc != nil {
		body = sc.CloneTensor(x)
	} else {
		body = x.Clone()
	}
	out, err := ForwardWith(r.body, body, sc)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", r.name, err)
	}
	if !tensor.SameShape(out, x) {
		return nil, fmt.Errorf("nn: %s: residual body changed shape from %v to %v", r.name, x.Shape(), out.Shape())
	}
	if err := out.Add(x); err != nil {
		return nil, err
	}
	return tensor.ReLU(out), nil
}

// OutputShape implements Layer.
func (r *Residual) OutputShape(in []int) ([]int, error) {
	out, err := r.body.OutputShape(in)
	if err != nil {
		return nil, err
	}
	if len(out) != len(in) {
		return nil, fmt.Errorf("nn: %s: residual body rank change", r.name)
	}
	for i := range in {
		if in[i] != out[i] {
			return nil, fmt.Errorf("nn: %s: residual body shape change %v -> %v", r.name, in, out)
		}
	}
	return out, nil
}

// ParamCount implements Layer.
func (r *Residual) ParamCount() int64 { return r.body.ParamCount() }

// Ops implements Layer. The element-wise add and ReLU are counted as one op
// per element.
func (r *Residual) Ops(in []int) (int64, error) {
	ops, err := r.body.Ops(in)
	if err != nil {
		return 0, err
	}
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return ops + 2*n, nil
}
