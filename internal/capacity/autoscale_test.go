package capacity

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mlperf/internal/serve"
)

// fakeFleet is a slot array with scripted per-slot snapshots.
type fakeFleet struct {
	mu      sync.Mutex
	active  []bool
	snaps   []serve.Snapshot
	spawned []int
	retired []int
	fail    error
}

func newFakeFleet(active ...bool) *fakeFleet {
	return &fakeFleet{active: active, snaps: make([]serve.Snapshot, len(active))}
}

func (f *fakeFleet) Slots() int { return len(f.active) }

func (f *fakeFleet) Active(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active[i]
}

func (f *fakeFleet) Spawn(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	f.active[i] = true
	f.spawned = append(f.spawned, i)
	return nil
}

func (f *fakeFleet) Retire(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	f.active[i] = false
	f.retired = append(f.retired, i)
	return nil
}

func (f *fakeFleet) Snapshot(i int) (serve.Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.active[i] {
		return serve.Snapshot{}, fmt.Errorf("slot %d inactive", i)
	}
	return f.snaps[i], nil
}

// reject bumps every active slot's reject counter so the next tick counts as
// fleet pressure.
func (f *fakeFleet) reject() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.snaps {
		if f.active[i] {
			f.snaps[i].Rejected++
		}
	}
}

func TestAutoscalerSpawnsIntoFirstInactiveSlot(t *testing.T) {
	fleet := newFakeFleet(true, false, false)
	a := NewAutoscaler(fleet, AutoscaleConfig{GrowAfter: 2, ShrinkAfter: 8, Cooldown: time.Second})
	defer a.Close()

	base := time.Unix(1000, 0)
	a.Tick(base) // prime
	fleet.reject()
	a.Tick(base.Add(1 * time.Second))
	if len(fleet.spawned) != 0 {
		t.Fatalf("spawned after one pressure tick: %v", fleet.spawned)
	}
	fleet.reject()
	a.Tick(base.Add(2 * time.Second))
	if len(fleet.spawned) != 1 || fleet.spawned[0] != 1 {
		t.Fatalf("spawned = %v, want first inactive slot [1]", fleet.spawned)
	}
	events := a.Events()
	if len(events) != 1 || events[0].Resource != serve.ResourceReplicas ||
		events[0].From != 1 || events[0].To != 2 || events[0].Reason != "autoscale-grow" {
		t.Fatalf("events = %+v", events)
	}
}

func TestAutoscalerRetiresLastActiveSlot(t *testing.T) {
	fleet := newFakeFleet(true, true, true)
	a := NewAutoscaler(fleet, AutoscaleConfig{GrowAfter: 2, ShrinkAfter: 3, Cooldown: time.Second})
	defer a.Close()

	base := time.Unix(1000, 0)
	for i := 0; i <= 3; i++ { // prime + 3 idle ticks
		a.Tick(base.Add(time.Duration(i) * time.Second))
	}
	if len(fleet.retired) != 1 || fleet.retired[0] != 2 {
		t.Fatalf("retired = %v, want last active slot [2]", fleet.retired)
	}
	events := a.Events()
	if len(events) != 1 || events[0].From != 3 || events[0].To != 2 || events[0].Reason != "autoscale-shrink" {
		t.Fatalf("events = %+v", events)
	}
}

func TestAutoscalerRespectsMinAndMax(t *testing.T) {
	fleet := newFakeFleet(true, true)
	a := NewAutoscaler(fleet, AutoscaleConfig{
		MinReplicas: 2, MaxReplicas: 2,
		GrowAfter: 1, ShrinkAfter: 1, Cooldown: time.Second,
	})
	defer a.Close()

	base := time.Unix(1000, 0)
	a.Tick(base)
	for i := 1; i <= 3; i++ { // sustained idleness: may not go below MinReplicas
		a.Tick(base.Add(time.Duration(i) * 10 * time.Second))
	}
	for i := 4; i <= 6; i++ { // sustained pressure: may not exceed MaxReplicas
		fleet.reject()
		a.Tick(base.Add(time.Duration(i) * 10 * time.Second))
	}
	if len(fleet.spawned) != 0 || len(fleet.retired) != 0 {
		t.Fatalf("fleet moved outside [min,max]: spawned %v retired %v", fleet.spawned, fleet.retired)
	}
}

func TestAutoscalerCooldown(t *testing.T) {
	fleet := newFakeFleet(true, false, false)
	a := NewAutoscaler(fleet, AutoscaleConfig{GrowAfter: 1, ShrinkAfter: 8, Cooldown: 10 * time.Second})
	defer a.Close()

	base := time.Unix(1000, 0)
	a.Tick(base)
	fleet.reject()
	a.Tick(base.Add(1 * time.Second)) // spawn #1
	for i := 2; i <= 10; i++ {        // within cooldown
		fleet.reject()
		a.Tick(base.Add(time.Duration(i) * time.Second))
	}
	if len(fleet.spawned) != 1 {
		t.Fatalf("spawned during cooldown: %v", fleet.spawned)
	}
	fleet.reject()
	a.Tick(base.Add(12 * time.Second))
	if len(fleet.spawned) != 2 || fleet.spawned[1] != 2 {
		t.Fatalf("after cooldown spawned = %v, want [1 2]", fleet.spawned)
	}
}

func TestAutoscalerWritePrometheus(t *testing.T) {
	fleet := newFakeFleet(true, false)
	a := NewAutoscaler(fleet, AutoscaleConfig{GrowAfter: 1, ShrinkAfter: 8, Cooldown: time.Second})
	defer a.Close()
	base := time.Unix(1000, 0)
	a.Tick(base)
	fleet.reject()
	a.Tick(base.Add(time.Second))

	var sb strings.Builder
	a.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`mlperf_autoscale_resizes_total{model="default",resource="replicas"} 1`,
		`mlperf_autoscale_resize_last{model="default",resource="replicas"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape output missing %q:\n%s", want, out)
		}
	}
}
