package backend

import (
	"net"
	"testing"
	"time"

	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
)

// TestFlowWindowResize pins the resizable-semaphore semantics: acquire blocks
// at the limit, growth wakes blocked acquirers, shrink stops admitting until
// releases bring the count under the new bound, and the limit floors at 1.
func TestFlowWindowResize(t *testing.T) {
	w := newFlowWindow(2)
	w.acquire()
	w.acquire()
	if w.load() != 2 {
		t.Fatalf("load = %d, want 2", w.load())
	}

	acquired := make(chan struct{})
	go func() {
		w.acquire()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("third acquire succeeded past the limit")
	case <-time.After(20 * time.Millisecond):
	}

	w.setLimit(3) // growth admits the blocked acquirer without any release
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("acquire still blocked after the window grew")
	}

	w.setLimit(1) // shrink below the in-flight count: 3 in flight, limit 1
	blocked := make(chan struct{})
	go func() {
		w.acquire()
		close(blocked)
	}()
	w.release() // 2 in flight, still over the shrunken limit
	w.release() // 1 in flight, at the limit
	select {
	case <-blocked:
		t.Fatal("acquire admitted while still at the shrunken limit")
	case <-time.After(20 * time.Millisecond):
	}
	w.release() // 0 in flight: one slot free
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("acquire never admitted after releases cleared the shrunken window")
	}

	w.setLimit(0)
	if w.limitNow() != 1 {
		t.Fatalf("limit after setLimit(0) = %d, want floor of 1", w.limitNow())
	}
}

// TestSetMaxInFlightLive checks the Remote-level half: every replica's window
// retunes without reconnecting.
func TestSetMaxInFlightLive(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	_, remote := startFleet(t, 2,
		serve.Config{Engine: engine, Store: qsl, Workers: 2, BatchWait: time.Millisecond},
		RemoteConfig{MaxInFlight: 4})
	if got := remote.InFlightLimit(); got != 4 {
		t.Fatalf("initial in-flight limit %d, want 4", got)
	}
	remote.SetMaxInFlight(16)
	if got := remote.InFlightLimit(); got != 16 {
		t.Fatalf("after resize limit %d, want 16", got)
	}
	// Traffic still flows at the new limit.
	got := offlineAccuracyByIndex(t, remote, qsl)
	if len(got) != qsl.TotalSampleCount() {
		t.Fatalf("coverage %d of %d after live resize", len(got), qsl.TotalSampleCount())
	}
	remote.SetMaxInFlight(0)
	if got := remote.InFlightLimit(); got != 1 {
		t.Fatalf("limit after SetMaxInFlight(0) = %d, want floor of 1", got)
	}
}

// TestRetireSkipsReplica: a retired replica receives no new traffic even
// though its connections stay healthy, and readmission restores it.
func TestRetireSkipsReplica(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	servers, remote := startFleet(t, 2,
		serve.Config{Engine: engine, Store: qsl, Workers: 2, BatchWait: time.Millisecond},
		RemoteConfig{MaxInFlight: 16})

	if err := remote.Retire(1); err != nil {
		t.Fatal(err)
	}
	if !remote.Retired(1) || remote.Retired(0) {
		t.Fatalf("retired flags: 0=%v 1=%v", remote.Retired(0), remote.Retired(1))
	}
	settings := loadgen.DefaultSettings(loadgen.Offline)
	settings.MinSampleCount = 256
	settings.MinDuration = 0
	if _, err := loadgen.StartTest(remote, qsl, settings); err != nil {
		t.Fatal(err)
	}
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if n := servers[1].Metrics().Completed; n != 0 {
		t.Fatalf("retired replica served %d requests", n)
	}
	if servers[0].Metrics().Completed == 0 {
		t.Fatal("surviving replica served nothing")
	}

	if err := remote.Readmit(1); err != nil {
		t.Fatal(err)
	}
	if _, err := loadgen.StartTest(remote, qsl, settings); err != nil {
		t.Fatal(err)
	}
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if servers[1].Metrics().Completed == 0 {
		t.Fatal("readmitted replica still receives no traffic")
	}
}

// TestRetireLastRoutableRefused: the router never retires itself into a
// zero-replica fleet.
func TestRetireLastRoutableRefused(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	_, remote := startFleet(t, 2,
		serve.Config{Engine: engine, Store: qsl, Workers: 1, BatchWait: time.Millisecond},
		RemoteConfig{})
	if err := remote.Retire(5); err == nil {
		t.Fatal("out-of-range retire succeeded")
	}
	if err := remote.Retire(0); err != nil {
		t.Fatal(err)
	}
	if err := remote.Retire(1); err == nil {
		t.Fatal("retired the last routable replica")
	}
	if err := remote.Readmit(5); err == nil {
		t.Fatal("out-of-range readmit succeeded")
	}
}

// TestTolerateDownStandbySlot: a Remote built with TolerateDown accepts an
// address with no server behind it (a standby slot), keeps serving from the
// live replicas, and picks the slot up through the redial supervisors when a
// server later appears there — the client half of a replica spawn.
func TestTolerateDownStandbySlot(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	scfg := serve.Config{Engine: engine, Store: qsl, Workers: 2, BatchWait: time.Millisecond}
	live, err := serve.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })

	// Reserve an address for the standby slot, then free it: nothing listens
	// there when the client dials.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	standbyAddr := l.Addr().String()
	l.Close()

	if _, err := NewRemote(RemoteConfig{
		Addrs: []string{live.Addr(), standbyAddr}, TolerateDown: true, DisableRecovery: true,
	}); err == nil {
		t.Fatal("TolerateDown with recovery disabled must refuse construction")
	}

	remote, err := NewRemote(RemoteConfig{
		Addrs: []string{live.Addr(), standbyAddr}, TolerateDown: true,
		MaxInFlight: 16, RedialInitial: time.Millisecond, RedialMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("TolerateDown construction with a dead slot: %v", err)
	}
	t.Cleanup(func() { remote.Close() })
	if remote.DownReplicas() != 1 {
		t.Fatalf("DownReplicas = %d, want the standby slot down", remote.DownReplicas())
	}

	// The fleet serves from the live replica while the slot is empty.
	got := offlineAccuracyByIndex(t, remote, qsl)
	if len(got) != qsl.TotalSampleCount() {
		t.Fatalf("coverage %d of %d with a standby slot", len(got), qsl.TotalSampleCount())
	}

	// Spawn a server into the slot; the redial supervisor's probe handshake
	// rejoins it without any client-side action.
	cfg := scfg
	cfg.Addr = standbyAddr
	spawned, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { spawned.Close() })
	deadline := time.Now().Add(10 * time.Second)
	for remote.DownReplicas() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("standby slot never rejoined after a server appeared")
		}
		time.Sleep(time.Millisecond)
	}

	settings := loadgen.DefaultSettings(loadgen.Offline)
	settings.MinSampleCount = 512
	settings.MinDuration = 0
	if _, err := loadgen.StartTest(remote, qsl, settings); err != nil {
		t.Fatal(err)
	}
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if spawned.Metrics().Completed == 0 {
		t.Fatal("spawned replica served nothing after rejoining")
	}
}
