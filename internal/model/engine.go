package model

import (
	"fmt"

	"mlperf/internal/dataset"
	"mlperf/internal/metrics"
	"mlperf/internal/nn"
	"mlperf/internal/payload"
	"mlperf/internal/tensor"
)

// Engine is the single batch-first inference contract between the model zoo
// and every system under test. A backend hands an Engine a slice of samples —
// one for a single-stream query, a whole merged query for the server/offline
// batching path — and receives one Output per sample, in order. Implementers
// must make Predict on a batch bit-for-bit identical to N single-sample
// Predict calls (the batch-vs-single equivalence tests enforce this), so
// dynamic batching is purely a throughput decision and never perturbs
// accuracy-mode results.
type Engine interface {
	// Name identifies the model (e.g. "resnet50-v1.5") in results.
	Name() string
	// Kind reports the task family the engine serves; backends use it to
	// validate sample payloads and accuracy scripts use it to pick a metric.
	Kind() dataset.Kind
	// Predict runs inference on every sample and returns one Output per
	// sample, in input order. Intermediates are allocated from s when non-nil
	// (the caller owns the arena and must Reset it between passes); a nil s
	// uses a pooled arena internally. Returned Outputs are plain values that
	// do not alias arena memory.
	Predict(samples []*dataset.Sample, s *tensor.Scratch) ([]Output, error)
}

// Output is one tagged prediction. Exactly the field group matching Kind is
// meaningful: Class for image classification, Boxes for object detection,
// Tokens for translation.
type Output struct {
	Kind   dataset.Kind
	Class  int
	Boxes  []metrics.Box
	Tokens []int
}

// Encode serializes the output into the suite's response wire format
// (internal/payload, default binary codec), ready to hand back to the
// LoadGen.
func (o Output) Encode() ([]byte, error) {
	return o.AppendTo(nil, payload.CodecBinary)
}

// AppendTo appends the output's wire encoding under the given codec to dst
// and returns the extended slice. With the binary codec and sufficient
// capacity in dst it does not allocate, which is what lets the serving
// response path run entirely on pooled buffers.
func (o Output) AppendTo(dst []byte, codec payload.Codec) ([]byte, error) {
	if codec == payload.CodecJSON {
		var data []byte
		var err error
		switch o.Kind {
		case dataset.KindImageClassification:
			data, err = payload.EncodeClassJSON(o.Class)
		case dataset.KindObjectDetection:
			data, err = payload.EncodeBoxesJSON(o.Boxes)
		case dataset.KindTranslation:
			data, err = payload.EncodeTokensJSON(o.Tokens)
		default:
			return nil, fmt.Errorf("model: cannot encode output of kind %v", o.Kind)
		}
		if err != nil {
			return nil, err
		}
		return append(dst, data...), nil
	}
	switch o.Kind {
	case dataset.KindImageClassification:
		return payload.AppendClass(dst, o.Class), nil
	case dataset.KindObjectDetection:
		return payload.AppendBoxes(dst, o.Boxes), nil
	case dataset.KindTranslation:
		return payload.AppendTokens(dst, o.Tokens), nil
	default:
		return nil, fmt.Errorf("model: cannot encode output of kind %v", o.Kind)
	}
}

// stackImages packs the samples' CHW images into one arena-backed
// channel-major [C, N, H, W] batch, validating every image against the
// expected input shape.
func stackImages(name Name, inShape []int, samples []*dataset.Sample, s *tensor.Scratch) (*tensor.Tensor, error) {
	batch := s.Tensor(inShape[0], len(samples), inShape[1], inShape[2])
	for i, sample := range samples {
		if sample == nil || sample.Image == nil {
			return nil, fmt.Errorf("model %s: sample %d carries no image", name, i)
		}
		img := sample.Image
		if img.Rank() != 3 || img.Dim(0) != inShape[0] || img.Dim(1) != inShape[1] || img.Dim(2) != inShape[2] {
			return nil, fmt.Errorf("model %s: sample %d shape %v, want %v", name, i, img.Shape(), inShape)
		}
		if err := tensor.PackSample(batch, img, i); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

// withScratch invokes fn with s, or with a pooled arena when s is nil.
func withScratch(s *tensor.Scratch, fn func(*tensor.Scratch) error) error {
	if s == nil {
		s = tensor.GetScratch()
		defer tensor.PutScratch(s)
	}
	return fn(s)
}

// Micro-batch derivation. One batched forward pass carries at most the
// engine's micro-batch worth of samples; larger merged queries are processed
// in micro-batches of that size, keeping the activation working set
// cache-resident instead of scaling with the query. The size is derived per
// engine from its per-sample activation footprint — wide models whose layer
// activations are large batch shallow so a micro-batch still fits in cache,
// while the recurrent translator's tiny per-sentence step state lets it batch
// up to the cap — replacing the old fixed micro-batch of 8. With a nil
// Scratch the pooled arena is recycled per micro-batch, so memory stays
// O(micro-batch); a caller-provided arena cannot be reset mid-call and grows
// with the whole query (the caller owns its lifecycle). Grouping does not
// change results: Predict on any batch is bit-identical to per-sample calls,
// so it is bit-identical under any grouping too.
// microBatchCap bounds the derived size: beyond it the batched GEMMs'
// weight-streaming amortization has flattened and response latency within a
// merged query starts to dominate. The cache budget dividing the footprint is
// no longer a constant — see cachebudget.go for the probe/override chain.
const microBatchCap = 64

// microBatchFor derives a micro-batch size from a per-sample activation
// footprint in bytes.
func microBatchFor(footprintBytes int) int {
	if footprintBytes <= 0 {
		return microBatchCap
	}
	mb := microBatchCacheBudget() / footprintBytes
	if mb < 1 {
		return 1
	}
	if mb > microBatchCap {
		return microBatchCap
	}
	return mb
}

// activationFootprintBytes estimates a layer stack's per-sample activation
// working set: the largest input+output activation pair live at any layer,
// recursing into containers so a composite layer's internal activations
// count too (a residual body runs with the shortcut copy additionally held
// live). It is the denominator of the micro-batch derivation, not an exact
// allocator bound — the scratch arena holds a whole pass, but only the
// current layer's operand pair needs to stay cache-resident for the batched
// kernels to stream well.
func activationFootprintBytes(layers []nn.Layer, inShape []int) (int, error) {
	elems, _, err := peakActivationElems(layers, inShape, 0)
	if err != nil {
		return 0, err
	}
	return 4 * elems, nil
}

// peakActivationElems returns the peak live element count across the layer
// sequence and its output shape. held counts elements pinned by enclosing
// layers for the duration of the sequence (e.g. a residual shortcut).
func peakActivationElems(layers []nn.Layer, inShape []int, held int) (int, []int, error) {
	cur := inShape
	maxElems := 0
	for _, l := range layers {
		var (
			peak int
			out  []int
			err  error
		)
		switch ll := l.(type) {
		case *nn.Sequential:
			peak, out, err = peakActivationElems(ll.Layers(), cur, held)
		case *nn.Residual:
			peak, out, err = peakActivationElems([]nn.Layer{ll.Body()}, cur, held+shapeElems(cur))
		default:
			out, err = l.OutputShape(cur)
			if err == nil {
				peak = held + shapeElems(cur) + shapeElems(out)
			}
		}
		if err != nil {
			return 0, nil, err
		}
		if peak > maxElems {
			maxElems = peak
		}
		cur = out
	}
	return maxElems, cur, nil
}

// shapeElems returns the element count of a shape.
func shapeElems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// BatchSizer is implemented by engines that derive a preferred micro-batch
// size from their per-sample activation footprint. Backends use it to size
// inference chunks so batched execution actually reaches the engine's
// micro-batch instead of fragmenting merged queries below it.
type BatchSizer interface {
	// PreferredBatch returns the engine's derived micro-batch size (>= 1).
	PreferredBatch() int
}

// inMicroBatches runs fn over [start, end) windows of at most size samples.
func inMicroBatches(n, size int, fn func(start, end int) error) error {
	if size < 1 {
		size = 1
	}
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		if err := fn(start, end); err != nil {
			return err
		}
	}
	return nil
}

// Name implements Engine.
func (m *ImageClassifier) Name() string { return string(m.info.Name) }

// Kind implements Engine.
func (m *ImageClassifier) Kind() dataset.Kind { return dataset.KindImageClassification }

// PreferredBatch implements BatchSizer: the micro-batch derived from the
// backbone's per-sample activation footprint and the LIVE cache budget —
// derived per call, not frozen at construction, so calibration or a
// SetMicroBatchCacheBudget override reaches engines that already exist.
func (m *ImageClassifier) PreferredBatch() int { return microBatchFor(m.footprint) }

// Predict implements Engine: each micro-batch runs as one im2col+GEMM per
// convolution layer and one GEMM through the classifier head.
func (m *ImageClassifier) Predict(samples []*dataset.Sample, s *tensor.Scratch) ([]Output, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	outputs := make([]Output, len(samples))
	err := inMicroBatches(len(samples), m.PreferredBatch(), func(start, end int) error {
		group := samples[start:end]
		return withScratch(s, func(s *tensor.Scratch) error {
			batch, err := stackImages(m.info.Name, m.inShape, group, s)
			if err != nil {
				return err
			}
			logits, err := m.net.ForwardBatch(batch, s)
			if err != nil {
				return err
			}
			if logits.Rank() != 2 || logits.Dim(1) != len(group) {
				return fmt.Errorf("model %s: batched head produced %v, want [classes %d]", m.info.Name, logits.Shape(), len(group))
			}
			for i := range group {
				class, err := tensor.ColumnArgMax(logits, i)
				if err != nil {
					return err
				}
				outputs[start+i] = Output{Kind: dataset.KindImageClassification, Class: class}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return outputs, nil
}

// Name implements Engine.
func (d *SSDDetector) Name() string { return string(d.info.Name) }

// Kind implements Engine.
func (d *SSDDetector) Kind() dataset.Kind { return dataset.KindObjectDetection }

// PreferredBatch implements BatchSizer (live-derived; see ImageClassifier).
func (d *SSDDetector) PreferredBatch() int { return microBatchFor(d.footprint) }

// Predict implements Engine: backbone and head each run once over every
// micro-batch; only the box decode (threshold + NMS) runs per sample.
func (d *SSDDetector) Predict(samples []*dataset.Sample, s *tensor.Scratch) ([]Output, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	outputs := make([]Output, len(samples))
	err := inMicroBatches(len(samples), d.PreferredBatch(), func(start, end int) error {
		group := samples[start:end]
		return withScratch(s, func(s *tensor.Scratch) error {
			batch, err := stackImages(d.info.Name, d.inShape, group, s)
			if err != nil {
				return err
			}
			features, err := d.backbone.ForwardBatch(batch, s)
			if err != nil {
				return err
			}
			raw, err := d.head.ForwardBatch(features, s)
			if err != nil {
				return err
			}
			if raw.Rank() != 4 {
				return fmt.Errorf("model %s: batched head produced %v, want [perCell N H W]", d.info.Name, raw.Shape())
			}
			// Gather each sample's CHW head output out of the channel-major
			// batch for the per-sample decode (threshold + NMS).
			sampleRaw := s.Tensor(raw.Dim(0), raw.Dim(2), raw.Dim(3))
			for i := range group {
				if err := tensor.UnpackSample(sampleRaw, raw, i); err != nil {
					return err
				}
				boxes, err := d.decode(sampleRaw)
				if err != nil {
					return err
				}
				outputs[start+i] = Output{Kind: dataset.KindObjectDetection, Boxes: boxes}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return outputs, nil
}

// Name implements Engine.
func (g *GNMTMini) Name() string { return string(g.info.Name) }

// Kind implements Engine.
func (g *GNMTMini) Kind() dataset.Kind { return dataset.KindTranslation }

// PreferredBatch implements BatchSizer: the recurrent step state per sentence
// is tiny, so the translator batches up to the cap (live-derived; see
// ImageClassifier).
func (g *GNMTMini) PreferredBatch() int { return microBatchFor(g.footprint) }

// Predict implements Engine. Each micro-batch decodes as one batched greedy
// pass: every recurrent step runs the active sentences through one GEMM per
// weight matrix instead of a per-sentence MatVec loop, with finished
// sentences compacting out of the batch (nn.Seq2Seq.TranslateBatch). Ragged
// decoding lengths therefore cost only the steps they use, and every
// sentence's tokens are bit-identical to a single-sentence Translate call.
func (g *GNMTMini) Predict(samples []*dataset.Sample, s *tensor.Scratch) ([]Output, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	outputs := make([]Output, len(samples))
	err := inMicroBatches(len(samples), g.PreferredBatch(), func(start, end int) error {
		group := samples[start:end]
		srcs := make([][]int, len(group))
		for i, sample := range group {
			if sample == nil || sample.Tokens == nil {
				return fmt.Errorf("model %s: sample %d carries no tokens", g.info.Name, start+i)
			}
			srcs[i] = sample.Tokens
		}
		return withScratch(s, func(s *tensor.Scratch) error {
			translated, err := g.net.TranslateBatch(srcs, s)
			if err != nil {
				return err
			}
			for i, tokens := range translated {
				outputs[start+i] = Output{Kind: dataset.KindTranslation, Tokens: tokens}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return outputs, nil
}

// EngineFromClassifier wraps a single-sample Classifier in the Engine
// contract, predicting sample by sample. It exists so hand-rolled classifiers
// (and the per-sample baseline in benchmarks) plug into the batch-first
// backend without implementing batching themselves.
func EngineFromClassifier(name string, c Classifier) Engine {
	return &classifierEngine{name: name, c: c}
}

type classifierEngine struct {
	name string
	c    Classifier
}

func (e *classifierEngine) Name() string       { return e.name }
func (e *classifierEngine) Kind() dataset.Kind { return dataset.KindImageClassification }

func (e *classifierEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]Output, error) {
	outputs := make([]Output, len(samples))
	for i, sample := range samples {
		if sample == nil || sample.Image == nil {
			return nil, fmt.Errorf("model %s: sample %d carries no image", e.name, i)
		}
		class, err := e.c.Classify(sample.Image)
		if err != nil {
			return nil, err
		}
		outputs[i] = Output{Kind: dataset.KindImageClassification, Class: class}
	}
	return outputs, nil
}

// EngineFromDetector wraps a single-sample Detector in the Engine contract.
func EngineFromDetector(name string, d Detector) Engine {
	return &detectorEngine{name: name, d: d}
}

type detectorEngine struct {
	name string
	d    Detector
}

func (e *detectorEngine) Name() string       { return e.name }
func (e *detectorEngine) Kind() dataset.Kind { return dataset.KindObjectDetection }

func (e *detectorEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]Output, error) {
	outputs := make([]Output, len(samples))
	for i, sample := range samples {
		if sample == nil || sample.Image == nil {
			return nil, fmt.Errorf("model %s: sample %d carries no image", e.name, i)
		}
		boxes, err := e.d.Detect(sample.Image)
		if err != nil {
			return nil, err
		}
		outputs[i] = Output{Kind: dataset.KindObjectDetection, Boxes: boxes}
	}
	return outputs, nil
}

// EngineFromTranslator wraps a single-sample Translator in the Engine
// contract.
func EngineFromTranslator(name string, t Translator) Engine {
	return &translatorEngine{name: name, t: t}
}

type translatorEngine struct {
	name string
	t    Translator
}

func (e *translatorEngine) Name() string       { return e.name }
func (e *translatorEngine) Kind() dataset.Kind { return dataset.KindTranslation }

func (e *translatorEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]Output, error) {
	outputs := make([]Output, len(samples))
	for i, sample := range samples {
		if sample == nil || sample.Tokens == nil {
			return nil, fmt.Errorf("model %s: sample %d carries no tokens", e.name, i)
		}
		tokens, err := e.t.Translate(sample.Tokens)
		if err != nil {
			return nil, err
		}
		outputs[i] = Output{Kind: dataset.KindTranslation, Tokens: tokens}
	}
	return outputs, nil
}
