package loadgen

import (
	"time"

	"mlperf/internal/stats"
)

// The Swarm scenario: tens of thousands of simulated client sessions, each
// issuing single-sample queries on its own Poisson clock, multiplexed over
// whatever connection fan-out the SUT provides (backend.Remote pools and
// routes; the LoadGen only generates the per-session traffic shape).
//
// Determinism contract: a session's arrival-gap stream and lifetime draw are
// a pure function of (ScheduleSeed, session id, incarnation) — independent
// of goroutine interleaving and of every other session — so a run's offered
// schedule is reproducible at any fan-out and any machine speed, and the
// per-session streams can be regenerated after the fact for auditing. Churn
// advances the incarnation, giving the reconnected session a fresh but
// equally deterministic stream.

// Salts folded into the per-stream seeds. Odd constants (splitmix64's
// multipliers) so session id and incarnation land in different bit mixes.
const (
	swarmSessionSalt     = 0x9e3779b97f4a7c15
	swarmIncarnationSalt = 0xbf58476d1ce4e5b9
	swarmClassSalt       = 0x94d049bb133111eb
)

// swarmStreamSeed derives the RNG seed for one session incarnation's stream
// from a base seed. stats.NewRNG splitmix-expands the result, so the cheap
// mix here is only about making the inputs distinct, not well-distributed.
func swarmStreamSeed(base, sid, inc uint64) uint64 {
	return base ^ (sid+1)*swarmSessionSalt ^ (inc+1)*swarmIncarnationSalt
}

// swarmSessionGaps returns the arrival-gap source and the lifetime draw for
// one session incarnation. The lifetime is exponentially distributed with
// mean SwarmSessionLifetime (zero when churn is disabled). Both are pure
// functions of the settings' seeds and (sid, inc).
func swarmSessionGaps(ts TestSettings, sid, inc uint64) (*stats.PoissonProcess, time.Duration, error) {
	rng := stats.NewRNG(swarmStreamSeed(ts.ScheduleSeed, sid, inc))
	proc, err := stats.NewPoissonProcess(rng, ts.SwarmSessionQPS)
	if err != nil {
		return nil, 0, err
	}
	var life time.Duration
	if ts.SwarmSessionLifetime > 0 {
		// Drawn before any gaps so the lifetime does not shift the arrival
		// stream (the process owns the RNG from here on).
		life = time.Duration(rng.ExpFloat64() * float64(ts.SwarmSessionLifetime))
	}
	return proc, life, nil
}

// swarmAssignClasses deterministically assigns each session to a traffic
// class by relative weight under ScheduleSeed.
func swarmAssignClasses(ts TestSettings, classes []SwarmClass) []int {
	var total float64
	for _, c := range classes {
		total += c.Weight
	}
	rng := stats.NewRNG(ts.ScheduleSeed ^ swarmClassSalt)
	assign := make([]int, ts.SwarmSessions)
	for i := range assign {
		draw := rng.Float64() * total
		for j, c := range classes {
			draw -= c.Weight
			if draw < 0 || j == len(classes)-1 {
				assign[i] = j
				break
			}
		}
	}
	return assign
}

// runSwarm drives the Swarm scenario: one goroutine per simulated session,
// each following its deterministic per-incarnation schedule until the run's
// minimum query count and duration are both met.
func (r *activeRun) runSwarm() error {
	classes := r.settings.swarmClasses()
	r.classIssued = make([]int, len(classes))
	r.classCompleted = make([]int, len(classes))
	r.classDropped = make([]int, len(classes))
	r.classLatencies = make([][]time.Duration, len(classes))

	if r.settings.Mode == AccuracyMode {
		return r.runSwarmAccuracy(classes)
	}

	assign := swarmAssignClasses(r.settings, classes)
	stop := make(chan struct{})
	done := make(chan struct{})
	r.start = time.Now()

	for sid := 0; sid < r.settings.SwarmSessions; sid++ {
		go r.swarmSession(uint64(sid), assign[sid], stop)
	}

	// Controller: close stop once the run has met its minimums. Sessions
	// check the channel inside every inter-arrival sleep, so shutdown is
	// prompt at any fan-out.
	go func() {
		defer close(done)
		for {
			r.mu.Lock()
			issued := r.queriesIssued
			r.mu.Unlock()
			if !r.shouldContinue(issued, time.Since(r.start)) {
				close(stop)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-done

	r.markIssueLoopEnd()
	r.sut.FlushQueries()
	r.pending.Wait()
	return nil
}

// runSwarmAccuracy sweeps the whole data set through the swarm path: the
// aggregate Poisson process (the superposition of every session's stream)
// paces the sweep and classes rotate round-robin, so per-class bookkeeping
// and payload decoding are exercised without needing the full session count.
func (r *activeRun) runSwarmAccuracy(classes []SwarmClass) error {
	rng := stats.NewRNG(r.settings.ScheduleSeed)
	aggregate := float64(r.settings.SwarmSessions) * r.settings.SwarmSessionQPS
	proc, err := stats.NewPoissonProcess(rng, aggregate)
	if err != nil {
		return err
	}
	r.start = time.Now()
	var offset time.Duration
	for i, idx := range r.accuracyIndices() {
		offset += proc.NextGap()
		r.waitUntil(offset)
		q := r.newQuery([]int{idx}, offset)
		q.Class = i % len(classes)
		r.issue(q, nil)
	}
	r.markIssueLoopEnd()
	r.sut.FlushQueries()
	r.pending.Wait()
	return nil
}

// swarmSession simulates one client session across its incarnations. Each
// incarnation replays its deterministic gap stream until its lifetime
// expires (a churn: the session reconnects as the next incarnation) or the
// run stops.
func (r *activeRun) swarmSession(sid uint64, classIdx int, stop <-chan struct{}) {
	var inc uint64
	for {
		proc, life, err := swarmSessionGaps(r.settings, sid, inc)
		if err != nil {
			return // validated settings cannot reach this
		}
		qrng := stats.NewRNG(swarmStreamSeed(r.settings.QuerySeed, sid, inc))
		// Offsets are relative to the run start; an incarnation's stream
		// starts where the session currently is in run time.
		epoch := time.Since(r.start)
		offset := epoch
		for {
			offset += proc.NextGap()
			if life > 0 && offset-epoch > life {
				// The session dies at its lifetime boundary, not at the
				// arrival that overshot it: wait out the remainder so churn
				// consumes run time (a session whose first gap overshoots a
				// short lifetime must not spin through incarnations).
				if !r.sleepUntil(epoch+life, stop) {
					return
				}
				r.swarmChurn()
				inc++
				break // reconnect as the next incarnation
			}
			if !r.sleepUntil(offset, stop) {
				return
			}
			r.swarmIssue(qrng, classIdx, offset)
		}
		select {
		case <-stop:
			return
		default:
		}
	}
}

// swarmIssue builds and issues one session query. Sample selection uses the
// session's own query RNG in the default random-with-replacement policy
// (keeping sessions independent); the stateful audit policies fall back to
// the shared, mutex-guarded selector.
func (r *activeRun) swarmIssue(qrng *stats.RNG, classIdx int, offset time.Duration) {
	var indices []int
	if r.settings.SampleIndexPolicy == RandomWithReplacement {
		indices = []int{r.loadedSet[qrng.Intn(len(r.loadedSet))]}
	} else {
		r.issueMu.Lock()
		indices = r.nextIndices(1)
		r.issueMu.Unlock()
	}
	r.issueMu.Lock()
	q := r.newQuery(indices, offset)
	r.issueMu.Unlock()
	q.Class = classIdx
	r.issue(q, nil)
}

// swarmChurn records one session reconnect.
func (r *activeRun) swarmChurn() {
	r.mu.Lock()
	r.swarmChurns++
	r.mu.Unlock()
}

// sleepUntil sleeps until the given offset from the run start, returning
// false if the run stopped first.
func (r *activeRun) sleepUntil(offset time.Duration, stop <-chan struct{}) bool {
	remaining := time.Until(r.start.Add(offset))
	if remaining <= 0 {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(remaining)
	select {
	case <-t.C:
		return true
	case <-stop:
		t.Stop()
		return false
	}
}
