package nn

import (
	"fmt"

	"mlperf/internal/tensor"
)

// Batched recurrent inference. A batch of recurrent states or step inputs is
// FEATURE-MAJOR — a rank-2 [F, N] tensor, column n holding sequence n's
// vector — the same layout the batched CNN layers use for vector activations.
// Stacking states this way turns every per-step matrix–vector product into
// one GEMM over all active sequences:
//
//	gates = Wx × X  +  Wh × H  + bias     // [4H, N]: one packed GEMM per operand
//
// with the gate nonlinearities fused in the epilogue, so a step over N
// sequences streams the weight matrices once instead of N times. Every
// batched entry point is bit-for-bit identical to running its single-sequence
// counterpart per column: each output element accumulates exactly the same
// terms in exactly the same order regardless of batch size or column
// position, which is what lets greedy decoding compact finished sentences
// out of the batch (dropping columns never perturbs the survivors).

// StepBatch advances the cell by one time step for a whole batch of
// sequences. x is the step input [InputSize, N]; hPrev and cPrev are the
// previous states [HiddenSize, N]. The new states are allocated from s (heap
// when s is nil) and each column is bit-identical to StepScratch on that
// column's vectors.
func (c *LSTMCell) StepBatch(x, hPrev, cPrev *tensor.Tensor, s *tensor.Scratch) (h, cState *tensor.Tensor, err error) {
	if x.Rank() != 2 || x.Dim(0) != c.InputSize {
		return nil, nil, fmt.Errorf("lstm %s: batch input shape %v, want [%d N]", c.name, x.Shape(), c.InputSize)
	}
	n := x.Dim(1)
	if hPrev.Rank() != 2 || hPrev.Dim(0) != c.HiddenSize || hPrev.Dim(1) != n ||
		cPrev.Rank() != 2 || cPrev.Dim(0) != c.HiddenSize || cPrev.Dim(1) != n {
		return nil, nil, fmt.Errorf("lstm %s: batch state shapes %v/%v, want [%d %d]", c.name, hPrev.Shape(), cPrev.Shape(), c.HiddenSize, n)
	}
	hs := c.HiddenSize
	// gates = Wx·X + Wh·H + bias, accumulated in the serial path's order:
	// the input product first (from zero, ascending k), then the recurrent
	// product, then the bias — per element exactly StepScratch's
	// MatVec/MatVec/Add/Add sequence.
	gx := rnnAlloc2(s, 4*hs, n)
	if err := tensor.MatMulInto(gx, c.Wx, x); err != nil {
		return nil, nil, err
	}
	gh := rnnAlloc2(s, 4*hs, n)
	if err := tensor.MatMulInto(gh, c.Wh, hPrev); err != nil {
		return nil, nil, err
	}
	if err := gx.Add(gh); err != nil {
		return nil, nil, err
	}
	gates := gx.Data()
	bias := c.Bias.Data()
	for r := 0; r < 4*hs; r++ {
		row := gates[r*n : (r+1)*n]
		bv := bias[r]
		for j := range row {
			row[j] += bv
		}
	}
	// Fused gate epilogue over the still-hot gate buffer.
	h = rnnAlloc2(s, hs, n)
	cState = rnnAlloc2(s, hs, n)
	hd, cd, cp := h.Data(), cState.Data(), cPrev.Data()
	for i := 0; i < hs; i++ {
		gi := gates[i*n : i*n+n]
		gf := gates[(hs+i)*n : (hs+i)*n+n]
		gc := gates[(2*hs+i)*n : (2*hs+i)*n+n]
		gout := gates[(3*hs+i)*n : (3*hs+i)*n+n]
		cpRow := cp[i*n : i*n+n]
		for j := 0; j < n; j++ {
			in := sigmoid(gi[j])
			forget := sigmoid(gf[j])
			cell := tanh(gc[j])
			out := sigmoid(gout[j])
			cNew := forget*cpRow[j] + in*cell
			cd[i*n+j] = cNew
			hd[i*n+j] = out * tanh(cNew)
		}
	}
	return h, cState, nil
}

// LookupBatch gathers the embedding vectors for a batch of token ids into a
// feature-major [Dim, N] tensor (column j is tokens[j]'s embedding),
// allocated from s (heap when s is nil).
func (e *Embedding) LookupBatch(tokens []int, s *tensor.Scratch) (*tensor.Tensor, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("embedding %s: empty token batch", e.name)
	}
	n := len(tokens)
	out := rnnAlloc2(s, e.Dim, n)
	od, w := out.Data(), e.Weights.Data()
	for j, tok := range tokens {
		if tok < 0 || tok >= e.Vocab {
			return nil, fmt.Errorf("embedding %s: token %d outside vocabulary of %d", e.name, tok, e.Vocab)
		}
		row := w[tok*e.Dim : (tok+1)*e.Dim]
		for d, v := range row {
			od[d*n+j] = v
		}
	}
	return out, nil
}

// TranslateBatch greedily decodes a batch of source sentences, returning one
// token slice per sentence in input order. Sentence i's output is bit-for-bit
// identical to Translate(srcs[i]): the encoder advances all not-yet-exhausted
// sentences as one matrix step per token position (ragged sentences drop out
// of the batch when their prefix ends), and the decoder keeps an active set
// from which sentences compact out the step they emit EOS, so per-step cost
// shrinks as sentences terminate. Intermediates come from sc (a pooled arena
// when nil); the returned slices are plain heap values.
func (m *Seq2Seq) TranslateBatch(srcs [][]int, sc *tensor.Scratch) ([][]int, error) {
	if len(srcs) == 0 {
		return nil, nil
	}
	if sc == nil {
		sc = tensor.GetScratch()
		defer tensor.PutScratch(sc)
	}
	if len(srcs) == 1 {
		// A single sentence gains nothing from the matrix step but would pay
		// its column gather/scatter overhead; the serial path computes the
		// identical result (the equivalence the batched path is tested
		// against) without it.
		out, err := m.translate(srcs[0], sc)
		if err != nil {
			return nil, err
		}
		return [][]int{out}, nil
	}
	return m.translateBatch(srcs, sc)
}

func (m *Seq2Seq) translateBatch(srcs [][]int, sc *tensor.Scratch) ([][]int, error) {
	n := len(srcs)
	hs := m.HiddenSize
	enc := len(m.Encoder)

	// Per-sentence top-layer encoder trajectories ([len, H] row-major, row t
	// = the top hidden state after consuming token t) for attention, plus
	// the last encoder layer's final states that seed the decoder.
	encBuf := make([]*tensor.Tensor, n)
	maxSrc := 0
	for i, src := range srcs {
		if len(src) == 0 {
			return nil, fmt.Errorf("nn: %s: empty source sentence", m.name)
		}
		encBuf[i] = rnnAlloc2(sc, len(src), hs)
		if len(src) > maxSrc {
			maxSrc = len(src)
		}
	}
	hFin := make([]*tensor.Tensor, n)
	cFin := make([]*tensor.Tensor, n)

	// Encode. All sentences start active; a sentence leaves the batch once
	// its prefix is exhausted. Initial states are zero; arena memory is not
	// zeroed, so they are cleared explicitly.
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	h := make([]*tensor.Tensor, enc)
	c := make([]*tensor.Tensor, enc)
	for i := range h {
		h[i] = rnnZero2(sc, hs, n)
		c[i] = rnnZero2(sc, hs, n)
	}
	tokens := make([]int, n)
	keep := make([]int, 0, n)
	for t := 0; t < maxSrc; t++ {
		if t > 0 {
			keep = keep[:0]
			for j, idx := range active {
				if t < len(srcs[idx]) {
					keep = append(keep, j)
				}
			}
			if len(keep) < len(active) {
				active = compactActive(active, keep)
				for l := range h {
					h[l] = compactColumns(sc, h[l], keep)
					c[l] = compactColumns(sc, c[l], keep)
				}
			}
		}
		na := len(active)
		toks := tokens[:na]
		for j, idx := range active {
			toks[j] = srcs[idx][t]
		}
		x, err := m.SrcEmbed.LookupBatch(toks, sc)
		if err != nil {
			return nil, err
		}
		cur := x
		for l, cell := range m.Encoder {
			h[l], c[l], err = cell.StepBatch(cur, h[l], c[l], sc)
			if err != nil {
				return nil, err
			}
			cur = h[l]
		}
		cd := cur.Data()
		for j, idx := range active {
			row := encBuf[idx].Data()[t*hs : (t+1)*hs]
			for i := 0; i < hs; i++ {
				row[i] = cd[i*na+j]
			}
			if t == len(srcs[idx])-1 {
				hFin[idx] = gatherColumn(sc, h[enc-1], j)
				cFin[idx] = gatherColumn(sc, c[enc-1], j)
			}
		}
	}

	// Decode greedily with dot-product attention over each sentence's own
	// encoder trajectory. Every decoder layer starts from the last encoder
	// layer's final state, exactly like the serial path.
	dec := len(m.Decoder)
	dh := make([]*tensor.Tensor, dec)
	dc := make([]*tensor.Tensor, dec)
	for l := range dh {
		dh[l] = scatterColumns(sc, hFin)
		dc[l] = scatterColumns(sc, cFin)
	}
	outs := make([][]int, n)
	for i := range outs {
		outs[i] = make([]int, 0, m.MaxLen)
	}
	prev := make([]int, n)
	for i := range prev {
		prev[i] = m.BOS
	}
	active = active[:0]
	for i := 0; i < n; i++ {
		active = append(active, i)
	}
	for step := 0; step < m.MaxLen && len(active) > 0; step++ {
		na := len(active)
		toks := tokens[:na]
		for j, idx := range active {
			toks[j] = prev[idx]
		}
		emb, err := m.DstEmbed.LookupBatch(toks, sc)
		if err != nil {
			return nil, err
		}
		context, err := m.attendBatch(dh[dec-1], encBuf, srcs, active, sc)
		if err != nil {
			return nil, err
		}
		// Stacking the embedding rows above the context rows makes every
		// column the serial path's concat(embedding, context) input vector.
		cur := rnnAlloc2(sc, m.DstEmbed.Dim+hs, na)
		copy(cur.Data()[:m.DstEmbed.Dim*na], emb.Data())
		copy(cur.Data()[m.DstEmbed.Dim*na:], context.Data())
		for l, cell := range m.Decoder {
			dh[l], dc[l], err = cell.StepBatch(cur, dh[l], dc[l], sc)
			if err != nil {
				return nil, err
			}
			cur = dh[l]
		}
		logits := rnnAlloc2(sc, m.Output.Weights.Dim(0), na)
		if err := tensor.DenseBatchedInto(logits, m.Output.Weights, cur, m.Output.Bias); err != nil {
			return nil, err
		}
		keep = keep[:0]
		for j, idx := range active {
			next, err := tensor.ColumnArgMax(logits, j)
			if err != nil {
				return nil, err
			}
			if next == m.EOS {
				continue
			}
			outs[idx] = append(outs[idx], next)
			prev[idx] = next
			keep = append(keep, j)
		}
		if len(keep) == 0 {
			break
		}
		if len(keep) < na {
			active = compactActive(active, keep)
			for l := range dh {
				dh[l] = compactColumns(sc, dh[l], keep)
				dc[l] = compactColumns(sc, dc[l], keep)
			}
		}
	}
	return outs, nil
}

// attendBatch computes the attention context column for every active
// sentence: sentence idx attends over its own encoder trajectory encBuf[idx]
// with the same score/softmax/blend arithmetic as the serial attend, so each
// context column is bit-identical to the single-sentence path.
func (m *Seq2Seq) attendBatch(query *tensor.Tensor, encBuf []*tensor.Tensor, srcs [][]int, active []int, sc *tensor.Scratch) (*tensor.Tensor, error) {
	hs := m.HiddenSize
	na := len(active)
	context := rnnAlloc2(sc, hs, na)
	q := rnnAlloc(sc, hs)
	col := rnnAlloc(sc, hs)
	qd, cold, ctxd := q.Data(), col.Data(), context.Data()
	for j, idx := range active {
		steps := len(srcs[idx])
		// Gather the query column; a contiguous copy changes no values.
		for i := 0; i < hs; i++ {
			qd[i] = query.Data()[i*na+j]
		}
		scores := rnnAlloc(sc, steps)
		encd := encBuf[idx].Data()
		for t := 0; t < steps; t++ {
			row := encd[t*hs : (t+1)*hs]
			var dot float32
			for i := 0; i < hs; i++ {
				dot += qd[i] * row[i]
			}
			scores.Data()[t] = dot
		}
		if err := tensor.SoftmaxInto(scores, scores); err != nil {
			return nil, err
		}
		for i := range cold {
			cold[i] = 0
		}
		for t := 0; t < steps; t++ {
			w := scores.Data()[t]
			row := encd[t*hs : (t+1)*hs]
			for i := 0; i < hs; i++ {
				cold[i] += w * row[i]
			}
		}
		for i := 0; i < hs; i++ {
			ctxd[i*na+j] = cold[i]
		}
	}
	return context, nil
}

// rnnAlloc2 returns a rank-2 tensor from the arena (not zeroed — callers
// fully overwrite it) or a zeroed heap tensor when s is nil.
func rnnAlloc2(s *tensor.Scratch, rows, cols int) *tensor.Tensor {
	if s != nil {
		return s.Tensor(rows, cols)
	}
	return tensor.MustNew(rows, cols)
}

// rnnZero2 returns a zeroed rank-2 tensor from the arena (or heap).
func rnnZero2(s *tensor.Scratch, rows, cols int) *tensor.Tensor {
	t := rnnAlloc2(s, rows, cols)
	if s != nil {
		t.Fill(0)
	}
	return t
}

// gatherColumn copies column j of a [rows, N] tensor into a fresh vector.
func gatherColumn(s *tensor.Scratch, t *tensor.Tensor, j int) *tensor.Tensor {
	rows, n := t.Dim(0), t.Dim(1)
	out := rnnAlloc(s, rows)
	od, td := out.Data(), t.Data()
	for i := 0; i < rows; i++ {
		od[i] = td[i*n+j]
	}
	return out
}

// scatterColumns stacks the given equal-length vectors as the columns of a
// fresh [rows, len(cols)] tensor.
func scatterColumns(s *tensor.Scratch, cols []*tensor.Tensor) *tensor.Tensor {
	rows, n := cols[0].Len(), len(cols)
	out := rnnAlloc2(s, rows, n)
	od := out.Data()
	for j, v := range cols {
		vd := v.Data()
		for i := 0; i < rows; i++ {
			od[i*n+j] = vd[i]
		}
	}
	return out
}

// compactColumns keeps only the listed columns of a [rows, N] tensor,
// preserving their order. Column values are copied verbatim, so compaction
// never changes a surviving sequence's arithmetic.
func compactColumns(s *tensor.Scratch, t *tensor.Tensor, keep []int) *tensor.Tensor {
	rows, n := t.Dim(0), t.Dim(1)
	out := rnnAlloc2(s, rows, len(keep))
	od, td := out.Data(), t.Data()
	for i := 0; i < rows; i++ {
		for jj, j := range keep {
			od[i*len(keep)+jj] = td[i*n+j]
		}
	}
	return out
}

// compactActive keeps the listed positions of the active-index list.
func compactActive(active, keep []int) []int {
	out := active[:0]
	for _, j := range keep {
		out = append(out, active[j])
	}
	return out
}
