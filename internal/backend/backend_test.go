package backend

import (
	"sync"
	"testing"
	"time"

	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/payload"
	"mlperf/internal/simhw"
	"mlperf/internal/tensor"
)

// collectQuery builds a query whose completion is observable in tests.
func collectQuery(id uint64, indices []int) (*loadgen.Query, chan []loadgen.Response) {
	q := &loadgen.Query{ID: id}
	var sid uint64 = id * 1000
	for _, idx := range indices {
		q.Samples = append(q.Samples, loadgen.QuerySample{ID: sid, Index: idx})
		sid++
	}
	done := make(chan []loadgen.Response, 1)
	q.SetCompletionHandler(func(_ *loadgen.Query, rs []loadgen.Response) { done <- rs })
	q.Issued = time.Now()
	return q, done
}

func newClassificationStore(t *testing.T, samples int) (*dataset.QSL, *dataset.SyntheticImages) {
	t.Helper()
	ds, err := dataset.NewSyntheticImages(dataset.ImageConfig{
		Samples: samples, Classes: 10, Channels: 3, Height: 16, Width: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	qsl, err := dataset.NewQSL(ds)
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]int, samples)
	for i := range indices {
		indices[i] = i
	}
	if err := qsl.LoadSamplesToRAM(indices); err != nil {
		t.Fatal(err)
	}
	return qsl, ds
}

func TestNativeClassificationBackend(t *testing.T) {
	qsl, _ := newClassificationStore(t, 16)
	classifier, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sut, err := NewNative(NativeConfig{
		Name: "mobilenet-sut", Engine: classifier, Store: qsl, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sut.Name() != "mobilenet-sut" {
		t.Errorf("name = %s", sut.Name())
	}
	q, done := collectQuery(1, []int{0, 1, 2, 3})
	sut.IssueQuery(q)
	select {
	case rs := <-done:
		if len(rs) != 4 {
			t.Fatalf("got %d responses", len(rs))
		}
		for _, r := range rs {
			class, err := payload.DecodeClass(r.Data)
			if err != nil {
				t.Fatal(err)
			}
			if class < 0 || class >= 10 {
				t.Errorf("class %d out of range", class)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query never completed")
	}
	sut.FlushQueries()
	sut.Wait()
	if len(sut.Errors()) != 0 {
		t.Errorf("unexpected errors: %v", sut.Errors())
	}
}

func TestNativeDetectionAndTranslationBackends(t *testing.T) {
	// Detection.
	det, err := dataset.NewSyntheticDetection(dataset.ImageConfig{
		Samples: 8, Classes: 5, Channels: 3, Height: 16, Width: 16, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	detQSL, _ := dataset.NewQSL(det)
	if err := detQSL.LoadSamplesToRAM([]int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	detector, err := model.NewSSDMobileNetMini(model.DetectorConfig{Classes: 5, ImageSize: 16, Seed: 3, ScoreThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	detSUT, err := NewNative(NativeConfig{Engine: detector, Store: detQSL})
	if err != nil {
		t.Fatal(err)
	}
	q, done := collectQuery(1, []int{0, 1})
	detSUT.IssueQuery(q)
	rs := <-done
	if _, err := payload.DecodeBoxes(rs[0].Data); err != nil {
		t.Errorf("detection payload: %v", err)
	}
	detSUT.Wait()

	// Translation.
	text, err := dataset.NewSyntheticText(dataset.TextConfig{Samples: 8, Vocab: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	textQSL, _ := dataset.NewQSL(text)
	if err := textQSL.LoadSamplesToRAM([]int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	translator, err := model.NewGNMTMini(model.TranslatorConfig{Vocab: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	trSUT, err := NewNative(NativeConfig{Engine: translator, Store: textQSL})
	if err != nil {
		t.Fatal(err)
	}
	q2, done2 := collectQuery(2, []int{0})
	trSUT.IssueQuery(q2)
	rs2 := <-done2
	if _, err := payload.DecodeTokens(rs2[0].Data); err != nil {
		t.Errorf("translation payload: %v", err)
	}
	trSUT.Wait()
}

// badKindEngine reports an out-of-range task kind.
type badKindEngine struct{ model.Engine }

func (badKindEngine) Name() string       { return "bad-kind" }
func (badKindEngine) Kind() dataset.Kind { return dataset.Kind(99) }

func TestNativeConfigErrors(t *testing.T) {
	qsl, _ := newClassificationStore(t, 4)
	classifier, _ := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 2})
	cases := []NativeConfig{
		{Engine: classifier},                  // no store
		{Store: qsl},                          // no engine
		{Engine: badKindEngine{}, Store: qsl}, // bad kind
	}
	for i, cfg := range cases {
		if _, err := NewNative(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestNativeDefaultsNameFromEngine(t *testing.T) {
	qsl, _ := newClassificationStore(t, 4)
	classifier, _ := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 2})
	sut, err := NewNative(NativeConfig{Engine: classifier, Store: qsl})
	if err != nil {
		t.Fatal(err)
	}
	if sut.Name() != classifier.Name() {
		t.Errorf("default name = %q, want engine name %q", sut.Name(), classifier.Name())
	}
	if sut.Engine() != model.Engine(classifier) {
		t.Error("Engine() does not return the configured engine")
	}
}

// poisonStore serves a wrong-shaped image for one index so a batched Predict
// over a chunk containing it fails as a whole.
type poisonStore struct {
	inner  SampleStore
	poison int
}

func (p *poisonStore) Get(index int) (*dataset.Sample, error) {
	if index == p.poison {
		return &dataset.Sample{Index: index, Image: tensor.MustNew(1, 2, 2)}, nil
	}
	return p.inner.Get(index)
}

// TestNativeIsolatesBadSampleInBatchedChunk: one bad sample must not null
// the responses of the healthy samples sharing its chunk.
func TestNativeIsolatesBadSampleInBatchedChunk(t *testing.T) {
	qsl, _ := newClassificationStore(t, 8)
	classifier, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The preferred-batch grain floor puts all 8 samples in one chunk, so
	// the poisoned sample 1 shares its chunk with healthy samples and the
	// batched pass over that chunk fails as a whole.
	sut, err := NewNative(NativeConfig{
		Engine: classifier, Store: &poisonStore{inner: qsl, poison: 1}, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, done := collectQuery(1, []int{0, 1, 2, 3, 4, 5, 6, 7})
	sut.IssueQuery(q)
	rs := <-done
	sut.Wait()
	if len(rs) != 8 {
		t.Fatalf("got %d responses, want 8", len(rs))
	}
	nilData := 0
	for _, r := range rs {
		if r.Data == nil {
			nilData++
		} else if _, err := payload.DecodeClass(r.Data); err != nil {
			t.Errorf("healthy sample produced bad payload: %v", err)
		}
	}
	if nilData != 1 {
		t.Errorf("%d responses have nil data, want exactly the poisoned one", nilData)
	}
	if len(sut.Errors()) == 0 {
		t.Error("expected the poisoned sample's error to be recorded")
	}
}

func TestNativeRecordsErrorsForUnloadedSamples(t *testing.T) {
	ds, err := dataset.NewSyntheticImages(dataset.ImageConfig{Samples: 8, Classes: 10, Channels: 3, Height: 16, Width: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	qsl, _ := dataset.NewQSL(ds) // nothing loaded
	classifier, _ := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 2})
	sut, err := NewNative(NativeConfig{Engine: classifier, Store: qsl})
	if err != nil {
		t.Fatal(err)
	}
	q, done := collectQuery(1, []int{3})
	sut.IssueQuery(q)
	<-done
	sut.Wait()
	if len(sut.Errors()) == 0 {
		t.Error("expected an error for accessing an unloaded sample")
	}
}

// TestNativeConfigTuningOverrides: the tuning fields forward to the tensor
// engine's process-wide knobs and results are bit-identical on both sides of
// the threshold (the batched query below runs the parallel path once with
// everything forked and once fully inline).
func TestNativeConfigTuningOverrides(t *testing.T) {
	defer tensor.SetParallelFlopThreshold(0)
	defer tensor.SetGEMMPanelBytes(0)
	qsl, _ := newClassificationStore(t, 8)
	classifier, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(threshold, panel int) []loadgen.Response {
		sut, err := NewNative(NativeConfig{
			Engine: classifier, Store: qsl, Workers: 2,
			FlopThreshold: threshold, PanelBytes: panel,
		})
		if err != nil {
			t.Fatal(err)
		}
		if threshold > 0 && tensor.ParallelFlopThreshold() != threshold {
			t.Fatalf("flop threshold = %d after NewNative, want %d", tensor.ParallelFlopThreshold(), threshold)
		}
		if panel > 0 && tensor.GEMMPanelBytes() != panel {
			t.Fatalf("panel bytes = %d after NewNative, want %d", tensor.GEMMPanelBytes(), panel)
		}
		q, done := collectQuery(1, []int{0, 1, 2, 3, 4, 5, 6, 7})
		sut.IssueQuery(q)
		rs := <-done
		sut.Wait()
		if errs := sut.Errors(); len(errs) != 0 {
			t.Fatal(errs[0])
		}
		return rs
	}
	below := run(1, 32<<10) // every kernel above threshold: parallel dispatch
	above := run(1<<30, 0)  // every kernel below threshold: inline
	if len(below) != len(above) {
		t.Fatalf("response counts differ: %d vs %d", len(below), len(above))
	}
	for i := range below {
		a, err := payload.DecodeClass(below[i].Data)
		if err != nil {
			t.Fatal(err)
		}
		b, err := payload.DecodeClass(above[i].Data)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("sample %d: class %d on parallel side, %d on serial side", i, a, b)
		}
	}
}

// TestBatchGrainFloorsAtPreferredBatch: chunks never fragment below the
// engine's derived micro-batch, and never exceed the query.
func TestBatchGrainFloorsAtPreferredBatch(t *testing.T) {
	qsl, _ := newClassificationStore(t, 4)
	classifier, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sut, err := NewNative(NativeConfig{Engine: classifier, Store: qsl, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	pref := classifier.PreferredBatch()
	if sut.preferredBatch != pref {
		t.Fatalf("backend recorded preferred batch %d, want %d", sut.preferredBatch, pref)
	}
	// Eight micro-batches' worth across 8 workers: the floor applies in full
	// (rebalancing alone would shred this into chunks of 8) and every worker
	// still gets exactly one chunk.
	if got := sut.batchGrain(8 * pref); got != pref {
		t.Errorf("batchGrain(%d) = %d, want the preferred batch %d", 8*pref, got, pref)
	}
	// The floor is capped at an even split so it never idles workers: 4
	// micro-batches' worth over 8 workers yields 8 even chunks, not 4
	// preferred-size ones.
	if got := sut.batchGrain(4 * pref); got != pref/2 {
		t.Errorf("batchGrain(%d) = %d, want the even split %d", 4*pref, got, pref/2)
	}
	// Queries smaller than the worker count spread one sample per worker.
	if got := sut.batchGrain(3); got != 1 {
		t.Errorf("batchGrain(3) = %d, want 1", got)
	}
	// An engine without BatchSizer keeps the rebalancing-first grain.
	plain, err := NewNative(NativeConfig{
		Engine: model.EngineFromClassifier("plain", classifier), Store: qsl, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.batchGrain(64); got != 8 {
		t.Errorf("plain batchGrain(64) = %d, want 8", got)
	}
}

func TestSimulatedBackend(t *testing.T) {
	platform, err := simhw.FindPlatform("desktop-cpu-c1")
	if err != nil {
		t.Fatal(err)
	}
	w := simhw.StandardWorkloads()["mobilenet-v1"]
	sut, err := NewSimulated(SimulatedConfig{Platform: platform, Workload: w, TimeScale: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sut.Name() == "" || sut.Platform().Name != "desktop-cpu-c1" {
		t.Error("bad identity")
	}
	start := time.Now()
	q, done := collectQuery(1, []int{0, 1, 2, 3})
	sut.IssueQuery(q)
	select {
	case rs := <-done:
		if len(rs) != 4 {
			t.Fatalf("got %d responses", len(rs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("simulated query never completed")
	}
	if time.Since(start) > time.Second {
		t.Error("time-scaled simulation took too long")
	}
	sut.FlushQueries()
	sut.Wait()
	if len(sut.Errors()) != 0 {
		t.Errorf("unexpected errors: %v", sut.Errors())
	}
}

func TestSimulatedBackendOracle(t *testing.T) {
	platform, _ := simhw.FindPlatform("desktop-cpu-c1")
	w := simhw.StandardWorkloads()["mobilenet-v1"]
	sut, err := NewSimulated(SimulatedConfig{
		Platform: platform, Workload: w, TimeScale: 1000, Seed: 5,
		Oracle: func(idx int) ([]byte, error) { return payload.EncodeClass(idx % 3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	q, done := collectQuery(1, []int{7})
	sut.IssueQuery(q)
	rs := <-done
	class, err := payload.DecodeClass(rs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if class != 1 {
		t.Errorf("oracle payload = %d, want 1", class)
	}
	sut.Wait()
}

func TestSimulatedConfigErrors(t *testing.T) {
	w := simhw.StandardWorkloads()["mobilenet-v1"]
	if _, err := NewSimulated(SimulatedConfig{Workload: w}); err == nil {
		t.Error("invalid platform: expected error")
	}
	platform, _ := simhw.FindPlatform("desktop-cpu-c1")
	if _, err := NewSimulated(SimulatedConfig{Platform: platform}); err == nil {
		t.Error("invalid workload: expected error")
	}
	if _, err := NewSimulated(SimulatedConfig{Platform: platform, Workload: w, TimeScale: -1}); err == nil {
		t.Error("negative time scale: expected error")
	}
}

// recordingSUT captures forwarded queries for batching tests.
type recordingSUT struct {
	mu      sync.Mutex
	batches [][]loadgen.QuerySample
	flushes int
}

func (r *recordingSUT) Name() string { return "recording" }

func (r *recordingSUT) IssueQuery(q *loadgen.Query) {
	r.mu.Lock()
	batch := make([]loadgen.QuerySample, len(q.Samples))
	copy(batch, q.Samples)
	r.batches = append(r.batches, batch)
	r.mu.Unlock()
	responses := make([]loadgen.Response, len(q.Samples))
	for i, s := range q.Samples {
		responses[i] = loadgen.Response{SampleID: s.ID}
	}
	q.Complete(responses)
}

func (r *recordingSUT) FlushQueries() {
	r.mu.Lock()
	r.flushes++
	r.mu.Unlock()
}

func (r *recordingSUT) batchSizes() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.batches))
	for i, b := range r.batches {
		out[i] = len(b)
	}
	return out
}

func TestBatchingMergesQueries(t *testing.T) {
	inner := &recordingSUT{}
	batcher, err := NewBatching(inner, 4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if batcher.Name() == "" {
		t.Error("empty name")
	}
	dones := make([]chan []loadgen.Response, 4)
	for i := 0; i < 4; i++ {
		q, done := collectQuery(uint64(i+1), []int{i})
		dones[i] = done
		batcher.IssueQuery(q)
	}
	// All four original queries complete even though they were merged.
	for i, done := range dones {
		select {
		case rs := <-done:
			if len(rs) != 1 {
				t.Errorf("query %d got %d responses", i, len(rs))
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("query %d never completed", i)
		}
	}
	sizes := inner.batchSizes()
	if len(sizes) != 1 || sizes[0] != 4 {
		t.Errorf("inner saw batches %v, want one batch of 4", sizes)
	}
}

func TestBatchingMaxWaitFlush(t *testing.T) {
	inner := &recordingSUT{}
	batcher, err := NewBatching(inner, 100, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	q, done := collectQuery(1, []int{0})
	batcher.IssueQuery(q)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("MaxWait flush never happened")
	}
	if len(inner.batchSizes()) != 1 {
		t.Errorf("expected one forwarded batch, got %v", inner.batchSizes())
	}
}

func TestBatchingFlushQueries(t *testing.T) {
	inner := &recordingSUT{}
	batcher, err := NewBatching(inner, 100, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	q, done := collectQuery(1, []int{0, 1})
	batcher.IssueQuery(q)
	batcher.FlushQueries()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("FlushQueries did not flush the pending batch")
	}
	inner.mu.Lock()
	flushes := inner.flushes
	inner.mu.Unlock()
	if flushes != 1 {
		t.Errorf("inner flushed %d times, want 1", flushes)
	}
}

func TestBatchingSplitsOversizeBatches(t *testing.T) {
	inner := &recordingSUT{}
	batcher, err := NewBatching(inner, 3, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	q, done := collectQuery(1, []int{0, 1, 2, 3, 4, 5, 6})
	batcher.IssueQuery(q)
	batcher.Flush()
	select {
	case rs := <-done:
		if len(rs) != 7 {
			t.Errorf("got %d responses, want 7", len(rs))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("oversize query never completed")
	}
	for _, size := range inner.batchSizes() {
		if size > 3 {
			t.Errorf("forwarded batch of %d exceeds MaxBatch 3", size)
		}
	}
}

func TestBatchingForwardsImmediatelyAfterFlushQueries(t *testing.T) {
	inner := &recordingSUT{}
	batcher, err := NewBatching(inner, 100, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	batcher.FlushQueries()

	// A late query must not sit behind the hour-long MaxWait timer.
	q, done := collectQuery(1, []int{0, 1})
	batcher.IssueQuery(q)
	select {
	case rs := <-done:
		if len(rs) != 2 {
			t.Errorf("late query got %d responses, want 2", len(rs))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("query issued after FlushQueries was buffered instead of forwarded")
	}

	// Reopen restores buffering for a new series.
	batcher.Reopen()
	q2, done2 := collectQuery(2, []int{0})
	batcher.IssueQuery(q2)
	select {
	case <-done2:
		t.Fatal("reopened batcher forwarded a below-MaxBatch query immediately")
	case <-time.After(50 * time.Millisecond):
	}
	batcher.Flush()
	select {
	case <-done2:
	case <-time.After(2 * time.Second):
		t.Fatal("explicit Flush after Reopen did not forward the buffered query")
	}
}

func TestBatchingConfigErrors(t *testing.T) {
	inner := &recordingSUT{}
	if _, err := NewBatching(nil, 4, time.Second); err == nil {
		t.Error("nil inner: expected error")
	}
	if _, err := NewBatching(inner, 0, time.Second); err == nil {
		t.Error("zero batch: expected error")
	}
	if _, err := NewBatching(inner, 4, 0); err == nil {
		t.Error("zero wait: expected error")
	}
}
