package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	x, err := New(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rank() != 3 || x.Len() != 24 {
		t.Fatalf("rank/len = %d/%d", x.Rank(), x.Len())
	}
	s := x.Shape()
	if s[0] != 2 || s[1] != 3 || s[2] != 4 {
		t.Fatalf("shape = %v", s)
	}
	// Mutating the returned shape must not affect the tensor.
	s[0] = 99
	if x.Dim(0) != 2 {
		t.Error("Shape() returned a live reference")
	}
}

func TestNewInvalid(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty shape: expected error")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("zero dimension: expected error")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative dimension: expected error")
	}
}

func TestFromSlice(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	x, err := FromSlice(data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	if _, err := FromSlice(data, 7); err == nil {
		t.Error("length mismatch: expected error")
	}
}

func TestAtSetAndOffsets(t *testing.T) {
	x := MustNew(2, 3)
	x.Set(5, 1, 2)
	if x.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %v", x.At(1, 2))
	}
	if x.Data()[5] != 5 {
		t.Errorf("flat layout wrong: %v", x.Data())
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	MustNew(2, 2).At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	x := MustNew(3)
	x.Fill(1)
	y := x.Clone()
	y.Set(9, 0)
	if x.At(0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestReshape(t *testing.T) {
	x := MustNew(2, 6)
	x.Set(7, 1, 5)
	y, err := x.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(2, 3) != 7 {
		t.Errorf("reshaped view lost data: %v", y.At(2, 3))
	}
	if _, err := x.Reshape(5); err == nil {
		t.Error("bad reshape: expected error")
	}
}

func TestElementwiseHelpers(t *testing.T) {
	x := MustNew(4)
	x.Fill(2)
	x.Scale(3)
	x.AddScalar(1)
	if x.At(2) != 7 {
		t.Errorf("scale/add = %v, want 7", x.At(2))
	}
	y := MustNew(4)
	y.Fill(1)
	if err := x.Add(y); err != nil {
		t.Fatal(err)
	}
	if x.At(0) != 8 {
		t.Errorf("Add = %v, want 8", x.At(0))
	}
	if err := x.Add(MustNew(5)); err == nil {
		t.Error("shape mismatch Add: expected error")
	}
	if x.Sum() != 32 {
		t.Errorf("Sum = %v, want 32", x.Sum())
	}
	x.Apply(func(v float32) float32 { return -v })
	if x.MaxAbs() != 8 {
		t.Errorf("MaxAbs = %v, want 8", x.MaxAbs())
	}
}

func TestArgMax(t *testing.T) {
	x, _ := FromSlice([]float32{0.1, 0.7, 0.2}, 3)
	if x.ArgMax() != 1 {
		t.Errorf("ArgMax = %d, want 1", x.ArgMax())
	}
}

func TestEqualish(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2}, 2)
	b, _ := FromSlice([]float32{1.0005, 2}, 2)
	if !Equalish(a, b, 1e-3) {
		t.Error("expected Equalish within tolerance")
	}
	if Equalish(a, b, 1e-6) {
		t.Error("expected not Equalish with tight tolerance")
	}
	c := MustNew(3)
	if Equalish(a, c, 1) {
		t.Error("different shapes must not be Equalish")
	}
}

func TestReshapePreservesSumProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 || len(vals) > 256 {
			return true
		}
		x, err := FromSlice(vals, len(vals))
		if err != nil {
			return false
		}
		y, err := x.Reshape(1, len(vals))
		if err != nil {
			return false
		}
		return x.Sum() == y.Sum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
