package tensor

import (
	"math/rand"
	"testing"
)

// Batched kernels must be bit-for-bit identical to running the single-sample
// kernel per batch element, for every batch size and batch position,
// including on recycled scratch arenas. Samples live in the channel-major
// [C, N, H, W] layout; PackSample/UnpackSample convert at the boundaries.

// packAll packs CHW samples into a fresh channel-major batch.
func packAll(t *testing.T, samples []*Tensor) *Tensor {
	t.Helper()
	c, h, w := samples[0].Dim(0), samples[0].Dim(1), samples[0].Dim(2)
	batch := MustNew(c, len(samples), h, w)
	for n, s := range samples {
		if err := PackSample(batch, s, n); err != nil {
			t.Fatal(err)
		}
	}
	return batch
}

// unpackOne gathers sample n of a channel-major batch into a fresh CHW tensor.
func unpackOne(t *testing.T, batch *Tensor, n int) *Tensor {
	t.Helper()
	out := MustNew(batch.Dim(0), batch.Dim(2), batch.Dim(3))
	if err := UnpackSample(out, batch, n); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPackUnpackRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	samples := []*Tensor{randFilled(r, 3, 4, 5), randFilled(r, 3, 4, 5), randFilled(r, 3, 4, 5)}
	batch := packAll(t, samples)
	for n, want := range samples {
		requireBitIdentical(t, unpackOne(t, batch, n), want, "pack/unpack round trip")
	}
	if err := PackSample(batch, MustNew(2, 4, 5), 0); err == nil {
		t.Error("mismatched sample shape: expected error")
	}
	if err := UnpackSample(MustNew(3, 4, 5), batch, 9); err == nil {
		t.Error("out-of-range unpack: expected error")
	}
}

func TestConv2DBatchedMatchesSingleBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	s := NewScratch()
	for trial := 0; trial < 40; trial++ {
		batch := 1 + r.Intn(9)
		cin, h, w := 1+r.Intn(4), 3+r.Intn(10), 3+r.Intn(10)
		cout, k := 1+r.Intn(6), 1+2*r.Intn(2) // 1x1 or 3x3
		opts := Conv2DOptions{Stride: 1 + r.Intn(2), Padding: r.Intn(2)}
		if h+2*opts.Padding < k || w+2*opts.Padding < k {
			continue
		}
		samples := make([]*Tensor, batch)
		for n := range samples {
			samples[n] = randFilled(r, cin, h, w)
		}
		input := packAll(t, samples)
		kernels := randFilled(r, cout, cin, k, k)
		bias := randFilled(r, cout)

		want0, err := Conv2D(samples[0], kernels, bias, opts)
		if err != nil {
			t.Fatal(err)
		}
		ws := want0.Shape()

		s.Reset()
		dst := s.Tensor(ws[0], batch, ws[1], ws[2])
		if err := Conv2DBatchedInto(dst, input, kernels, bias, opts, PostNone, s); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < batch; n++ {
			want, err := Conv2D(samples[n], kernels, bias, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireKernelMatch(t, unpackOne(t, dst, n), want, "Conv2DBatched sample")
		}
	}
}

func TestDenseBatchedMatchesMatVecBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		batch, in, out := 1+r.Intn(8), 1+r.Intn(30), 1+r.Intn(20)
		weights := randFilled(r, out, in)
		bias := randFilled(r, out)
		vecs := make([]*Tensor, batch)
		x := MustNew(in, batch)
		for n := range vecs {
			vecs[n] = randFilled(r, in)
			for f := 0; f < in; f++ {
				x.Set(vecs[n].At(f), f, n)
			}
		}
		y := MustNew(out, batch)
		if err := DenseBatchedInto(y, weights, x, bias); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < batch; n++ {
			want, err := MatVec(weights, vecs[n])
			if err != nil {
				t.Fatal(err)
			}
			if err := want.Add(bias); err != nil {
				t.Fatal(err)
			}
			got := MustNew(out)
			for o := 0; o < out; o++ {
				got.Set(y.At(o, n), o)
			}
			requireKernelMatch(t, got, want, "DenseBatched column")

			wantArg := want.ArgMax()
			gotArg, err := ColumnArgMax(y, n)
			if err != nil {
				t.Fatal(err)
			}
			if gotArg != wantArg {
				t.Fatalf("ColumnArgMax(%d) = %d, want %d", n, gotArg, wantArg)
			}
		}
	}
}

func TestBatchedPoolingAndDepthwiseMatchSingle(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		batch, c, h, w := 1+r.Intn(6), 1+r.Intn(4), 4+r.Intn(8), 4+r.Intn(8)
		samples := make([]*Tensor, batch)
		for n := range samples {
			samples[n] = randFilled(r, c, h, w)
		}
		input := packAll(t, samples)

		kernels := randFilled(r, c, 3, 3)
		bias := randFilled(r, c)
		opts := Conv2DOptions{Stride: 1, Padding: 1}
		dwOut := MustNew(c, batch, h, w)
		if err := DepthwiseConv2DBatchedInto(dwOut, input, kernels, bias, opts, PostNone); err != nil {
			t.Fatal(err)
		}
		mpOut := MustNew(c, batch, h/2, w/2)
		if err := MaxPool2DBatchedInto(mpOut, input, 2, 2); err != nil {
			t.Fatal(err)
		}
		gapOut := MustNew(c, batch)
		if err := GlobalAvgPool2DBatchedInto(gapOut, input); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < batch; n++ {
			wantDW, err := DepthwiseConv2D(samples[n], kernels, bias, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, unpackOne(t, dwOut, n), wantDW, "DepthwiseConv2DBatched sample")

			wantMP, err := MaxPool2D(samples[n], 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, unpackOne(t, mpOut, n), wantMP, "MaxPool2DBatched sample")

			wantGAP, err := GlobalAvgPool2D(samples[n])
			if err != nil {
				t.Fatal(err)
			}
			gotGAP := MustNew(c)
			for ch := 0; ch < c; ch++ {
				gotGAP.Set(gapOut.At(ch, n), ch)
			}
			requireBitIdentical(t, gotGAP, wantGAP, "GlobalAvgPool2DBatched sample")
		}
	}
}

// TestFusedPostOpsMatchSeparatePasses: the fused panel epilogues must equal
// applying ReLU/ReLU6 (and the fused residual add) as separate passes.
func TestFusedPostOpsMatchSeparatePasses(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	samples := []*Tensor{randFilled(r, 3, 8, 8), randFilled(r, 3, 8, 8), randFilled(r, 3, 8, 8)}
	input := packAll(t, samples)
	kernels := randFilled(r, 4, 3, 3, 3)
	bias := randFilled(r, 4)
	opts := Conv2DOptions{Stride: 1, Padding: 1}

	fused := MustNew(4, 3, 8, 8)
	if err := Conv2DBatchedInto(fused, input, kernels, bias, opts, PostReLU, nil); err != nil {
		t.Fatal(err)
	}
	plain := MustNew(4, 3, 8, 8)
	if err := Conv2DBatchedInto(plain, input, kernels, bias, opts, PostNone, nil); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, fused, ReLU(plain), "fused conv ReLU")

	dwK := randFilled(r, 3, 3, 3)
	dwB := randFilled(r, 3)
	dwFused := MustNew(3, 3, 8, 8)
	if err := DepthwiseConv2DBatchedInto(dwFused, input, dwK, dwB, opts, PostReLU6); err != nil {
		t.Fatal(err)
	}
	dwPlain := MustNew(3, 3, 8, 8)
	if err := DepthwiseConv2DBatchedInto(dwPlain, input, dwK, dwB, opts, PostNone); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, dwFused, ReLU6(dwPlain), "fused depthwise ReLU6")

	a := randFilled(r, 2, 10)
	bT := randFilled(r, 2, 10)
	fusedAdd := a.Clone()
	if err := AddThenReLU(fusedAdd, bT); err != nil {
		t.Fatal(err)
	}
	plainAdd := a.Clone()
	if err := plainAdd.Add(bT); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, fusedAdd, ReLU(plainAdd), "fused add+ReLU")
}

// TestGemmPanelingMatchesSerial drives the column-paneled GEMM well past the
// panel width and checks it against the serial reference.
func TestGemmPanelingMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	a := randFilled(r, 9, 300)
	bm := randFilled(r, 300, 4100) // k*n*4 far beyond gemmPanelBytes
	got, err := MatMul(a, bm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatMulSerial(a, bm)
	if err != nil {
		t.Fatal(err)
	}
	requireKernelMatch(t, got, want, "paneled GEMM")
}

func TestSubViewSharesStorage(t *testing.T) {
	batch := MustNew(3, 2, 2)
	v, err := batch.SubView(1)
	if err != nil {
		t.Fatal(err)
	}
	v.Set(7, 1, 1)
	if batch.At(1, 1, 1) != 7 {
		t.Error("SubView does not alias parent storage")
	}
	if _, err := batch.SubView(3); err == nil {
		t.Error("out-of-range SubView: expected error")
	}
	if _, err := MustNew(4).SubView(0); err == nil {
		t.Error("rank-1 SubView: expected error")
	}
}

func TestTransposeInto(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	src := randFilled(r, 5, 3)
	dst := MustNew(3, 5)
	if err := TransposeInto(dst, src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if src.At(i, j) != dst.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if err := TransposeInto(MustNew(5, 3), src); err == nil {
		t.Error("bad transpose shape: expected error")
	}
}
