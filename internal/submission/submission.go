// Package submission models the MLPerf Inference result-submission system of
// Section V: divisions (closed/open), availability categories, system
// descriptions, per-(task, scenario) entries, the submission checker used in
// result review, and result reporting (which deliberately produces no summary
// score).
package submission

import (
	"fmt"

	"mlperf/internal/accuracy"
	"mlperf/internal/core"
	"mlperf/internal/loadgen"
)

// Division is the ruleset a result was produced under.
type Division string

// The two divisions.
const (
	// Closed requires the reference model, data set and quality target, so
	// results are comparable across systems.
	Closed Division = "closed"
	// Open allows different models and quality targets to foster innovation;
	// open results are not directly comparable.
	Open Division = "open"
)

// Category is the availability classification of the system under test.
type Category string

// The three availability categories.
const (
	Available Category = "available"
	Preview   Category = "preview"
	// RDO covers research, development or other systems.
	RDO Category = "rdo"
)

// ValidDivision reports whether d is a known division.
func ValidDivision(d Division) bool { return d == Closed || d == Open }

// ValidCategory reports whether c is a known category.
func ValidCategory(c Category) bool { return c == Available || c == Preview || c == RDO }

// SystemDescription captures the SUT configuration characteristics a
// submission must disclose.
type SystemDescription struct {
	Name             string
	Submitter        string
	ProcessorType    string // CPU, GPU, DSP, FPGA or ASIC
	AcceleratorCount int
	HostProcessors   int
	MemoryGB         int
	Framework        string
	SoftwareStack    string
}

// Validate reports missing mandatory fields.
func (s SystemDescription) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("submission: system description needs a name")
	}
	if s.Submitter == "" {
		return fmt.Errorf("submission: system description needs a submitter")
	}
	if s.ProcessorType == "" {
		return fmt.Errorf("submission: system description needs a processor type")
	}
	if s.Framework == "" {
		return fmt.Errorf("submission: system description needs a software framework")
	}
	return nil
}

// Entry is one measured (task, scenario) result for a system.
type Entry struct {
	System   SystemDescription
	Division Division
	Category Category

	Task     core.Task
	Scenario loadgen.Scenario
	// ModelUsed names the model actually run; in the closed division it must
	// be the task's reference model.
	ModelUsed string

	Performance *loadgen.Result
	Accuracy    *accuracy.Report

	// OpenDeviations documents how an open-division entry deviates from the
	// closed rules (required for open submissions).
	OpenDeviations string
}

// MetricValue returns the entry's headline metric.
func (e Entry) MetricValue() float64 {
	if e.Performance == nil {
		return 0
	}
	return e.Performance.MetricValue()
}

// Submission is one organization's full set of entries for a round.
type Submission struct {
	Submitter string
	Entries   []Entry
}

// TasksCovered returns the distinct tasks with at least one entry. A
// submission may cover any subset of the suite (Section V-A).
func (s Submission) TasksCovered() []core.Task {
	seen := map[core.Task]bool{}
	var out []core.Task
	for _, e := range s.Entries {
		if !seen[e.Task] {
			seen[e.Task] = true
			out = append(out, e.Task)
		}
	}
	return out
}
