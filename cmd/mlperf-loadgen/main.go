// Command mlperf-loadgen runs one benchmark: a task and scenario against the
// native reference implementation, a simulated platform from the catalogue,
// or a remote mlperf-serve instance across the network, in performance mode
// and optionally accuracy mode.
//
// Examples:
//
//	mlperf-loadgen -task image-classification-light -scenario SingleStream
//	mlperf-loadgen -task machine-translation -scenario Offline -accuracy
//	mlperf-loadgen -task image-classification-heavy -scenario Server \
//	    -backend simulated -platform dc-gpu-g1 -scale 256
//	mlperf-loadgen -task image-classification-light -scenario Server \
//	    -backend remote -addr 127.0.0.1:9090,127.0.0.1:9091
//
// The remote backend drives one or more mlperf-serve replicas started with
// the same -task, -samples and -seed (model weights and data are derived
// deterministically from them, so over-the-wire responses stay bit-identical
// to in-process inference — including for -accuracy runs, which score remote
// responses against the local ground truth). A comma-separated -addr fans the
// load out over the replica set with least-in-flight routing; -model
// addresses one named engine on a multi-model mlperf-serve -tasks listener.
// In the Server scenario, -qps-step-after/-qps-step-to step the offered
// Poisson rate mid-run (same seeded schedule) to exercise capacity
// management under a load swing.
//
// The Swarm scenario simulates a datacenter frontend's client population:
//
//	mlperf-loadgen -task image-classification-light -scenario swarm \
//	    -backend remote -addr 127.0.0.1:9090 -sessions 10000
//
// -sessions sets the simulated session count, -session-qps each session's
// Poisson rate, and -session-lifetime the mean lifetime before a session
// churns (reconnects with a fresh deterministic schedule). Validity is
// judged per traffic class; the default configuration runs one class with
// the task's Server-scenario latency bound.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/quantize"
	"mlperf/internal/simhw"
	"mlperf/internal/trace"
)

func main() {
	var (
		taskName     = flag.String("task", string(core.ImageClassificationLight), "benchmark task")
		scenarioName = flag.String("scenario", "SingleStream", "SingleStream, MultiStream, Server, Offline or Swarm")
		backendName  = flag.String("backend", "native", "native, simulated or remote")
		platformName = flag.String("platform", "desktop-cpu-c1", "simulated platform (with -backend simulated)")
		remoteAddr   = flag.String("addr", "127.0.0.1:9090", "mlperf-serve address, or a comma-separated replica set (with -backend remote)")
		remoteModel  = flag.String("model", "", "named model on a multi-model mlperf-serve (with -backend remote)")
		deadline     = flag.Duration("deadline", 0, "per-request deadline stamped by the remote backend (0 = none)")
		accuracyRun  = flag.Bool("accuracy", false, "also run accuracy mode and score quality")
		scale        = flag.Int("scale", 128, "divide the production query counts and duration by this factor (1 = full production run)")
		samples      = flag.Int("samples", 128, "synthetic data-set size")
		seed         = flag.Uint64("seed", 42, "model/data seed")
		qpsStepAfter = flag.Duration("qps-step-after", 0, "step the Server scenario's offered QPS after this much scheduled time (0 = flat rate)")
		qpsStepTo    = flag.Float64("qps-step-to", 0, "offered QPS after the step (with -qps-step-after)")
		sessions     = flag.Int("sessions", 0, "Swarm scenario: simulated client sessions (0 = scenario default)")
		sessionQPS   = flag.Float64("session-qps", 0, "Swarm scenario: per-session Poisson rate (0 = scenario default)")
		sessionLife  = flag.Duration("session-lifetime", -1, "Swarm scenario: mean session lifetime before churn (0 disables churn; -1 = scenario default)")
		format       = flag.String("quantize", "", "optional weight format from the approved list (e.g. int8)")
		traceEach    = flag.Int("trace", 0, "trace every Nth request through the client-side stages, plus every tail outlier (remote backend only; 0 = off)")
		traceOut     = flag.String("trace-out", "", "write captured spans as Chrome trace-event JSON to this file after the run (requires -trace)")
	)
	flag.Parse()

	scenario, err := parseScenario(*scenarioName)
	if err != nil {
		fatal(err)
	}
	task := core.Task(*taskName)
	spec, err := core.Spec(task)
	if err != nil {
		fatal(err)
	}

	assembly, err := harness.BuildNative(task, harness.BuildOptions{
		DatasetSamples: *samples,
		Seed:           *seed,
		Quantization:   quantize.Format(strings.ToLower(*format)),
	})
	if err != nil {
		fatal(err)
	}

	// Client-side tracing only makes sense across the wire: the native and
	// simulated backends have no issue/write/await path to time.
	var tracer *trace.Tracer
	if *traceEach > 0 && *backendName != "remote" {
		fatal(fmt.Errorf("-trace requires -backend remote"))
	}
	if *traceOut != "" && *traceEach <= 0 {
		fatal(fmt.Errorf("-trace-out needs -trace to capture anything"))
	}

	// Optionally swap the SUT for a simulated platform or a remote serving
	// instance while keeping the task's data set and settings.
	switch *backendName {
	case "native":
	case "simulated":
		platform, err := simhw.FindPlatform(*platformName)
		if err != nil {
			fatal(err)
		}
		workload, ok := simhw.StandardWorkloads()[string(spec.ReferenceModel)]
		if !ok {
			fatal(fmt.Errorf("no standard workload for %s", spec.ReferenceModel))
		}
		sut, err := backend.NewSimulated(backend.SimulatedConfig{
			Platform: platform, Workload: workload, TimeScale: 100, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		assembly.SetSUT(sut)
	case "remote":
		addrs := strings.Split(*remoteAddr, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		if *traceEach > 0 {
			tracer = trace.New(trace.Config{SampleEvery: *traceEach})
		}
		remote, err := backend.NewRemote(backend.RemoteConfig{
			Addrs: addrs, Model: *remoteModel,
			Name:     fmt.Sprintf("%s@%s", spec.ReferenceModel, *remoteAddr),
			Deadline: *deadline,
			Tracer:   tracer,
		})
		if err != nil {
			fatal(err)
		}
		defer remote.Close()
		assembly.SetSUT(remote)
	default:
		fatal(fmt.Errorf("unknown backend %q (want native, simulated or remote)", *backendName))
	}

	settings := harness.QuickSettings(spec, scenario, *scale)
	if *qpsStepAfter > 0 {
		settings.ServerQPSStepAfter = *qpsStepAfter
		settings.ServerQPSStepTo = *qpsStepTo
	}
	if scenario == loadgen.Swarm {
		if *sessions > 0 {
			settings.SwarmSessions = *sessions
		}
		if *sessionQPS > 0 {
			settings.SwarmSessionQPS = *sessionQPS
		}
		if *sessionLife >= 0 {
			settings.SwarmSessionLifetime = *sessionLife
		}
	}
	report, err := harness.Run(assembly, harness.RunOptions{
		Scenario:    scenario,
		Settings:    &settings,
		RunAccuracy: *accuracyRun && *backendName != "simulated",
	})
	if err != nil {
		fatal(err)
	}

	perf := report.Performance
	fmt.Printf("task:        %s\n", task)
	fmt.Printf("scenario:    %s\n", scenario)
	fmt.Printf("SUT:         %s\n", report.SUTName)
	fmt.Printf("queries:     %d issued, %d completed\n", perf.QueriesIssued, perf.QueriesCompleted)
	fmt.Printf("duration:    %v\n", perf.TestDuration)
	fmt.Printf("metric:      %.4g (%s)\n", perf.MetricValue(), perf.MetricName())
	fmt.Printf("p50/p90/p99: %v / %v / %v\n", perf.QueryLatencies.P50, perf.QueryLatencies.P90, perf.QueryLatencies.P99)
	fmt.Printf("valid:       %v %v\n", perf.Valid, perf.ValidityMessages)
	if scenario == loadgen.Swarm {
		fmt.Printf("swarm:       %d sessions, %d churns\n", perf.SwarmSessions, perf.SwarmChurns)
		for _, c := range perf.SwarmClasses {
			fmt.Printf("class %-12s %d issued, p%.0f %v against %v, violations %.3f%%, valid %v\n",
				c.Name+":", c.QueriesIssued, 100*c.TargetPercentile, c.PercentileLatency,
				c.TargetLatency, 100*c.BoundViolations, c.Valid)
		}
	}
	if remote, ok := assembly.SUT.(*backend.Remote); ok {
		fmt.Printf("shed:        %d rejected, %d expired, %d replicas down\n",
			remote.Rejected(), remote.Expired(), remote.DownReplicas())
		if snap, err := remote.ServerMetrics(); err == nil {
			fmt.Printf("serving:     queue p50/p99 %v/%v, service p50/p99 %v/%v, batches to %d\n",
				snap.QueueP50, snap.QueueP99, snap.ServiceP50, snap.ServiceP99, snap.MaxBatch)
		}
		if snaps, err := remote.ReplicaMetrics(); err == nil && len(snaps) > 1 {
			for i, snap := range snaps {
				fmt.Printf("replica %d:   completed %d, rejected %d, expired %d, service p99 %v\n",
					i, snap.Completed, snap.Rejected+snap.Shed, snap.Expired, snap.ServiceP99)
			}
		}
	}
	if report.Accuracy != nil {
		fmt.Printf("accuracy:    %s\n", report.Accuracy)
	}
	if tracer != nil {
		records := tracer.Records()
		fmt.Println(trace.Attribute(records))
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := trace.WriteChrome(f, records); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace:       %d records written to %s\n", len(records), *traceOut)
		}
	}
	if !report.Valid() {
		os.Exit(2)
	}
}

func parseScenario(name string) (loadgen.Scenario, error) {
	for _, s := range loadgen.AllScenarios() {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown scenario %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlperf-loadgen:", err)
	os.Exit(1)
}
