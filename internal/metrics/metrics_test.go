package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTop1Accuracy(t *testing.T) {
	acc, err := Top1Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", acc)
	}
}

func TestTop1AccuracyErrors(t *testing.T) {
	if _, err := Top1Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := Top1Accuracy(nil, nil); err == nil {
		t.Error("empty: expected error")
	}
}

func TestTopKAccuracy(t *testing.T) {
	acc, err := TopKAccuracy([][]int{{1, 2}, {3, 4}, {5, 6}}, []int{2, 9, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Errorf("topk accuracy = %v", acc)
	}
	if _, err := TopKAccuracy(nil, nil); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := TopKAccuracy([][]int{{1}}, []int{1, 2}); err == nil {
		t.Error("mismatch: expected error")
	}
}

func TestTop1AccuracyBoundsProperty(t *testing.T) {
	f := func(pred []uint8) bool {
		if len(pred) == 0 {
			return true
		}
		p := make([]int, len(pred))
		l := make([]int, len(pred))
		for i, v := range pred {
			p[i] = int(v % 4)
			l[i] = int((v / 4) % 4)
		}
		acc, err := Top1Accuracy(p, l)
		if err != nil {
			return false
		}
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIoU(t *testing.T) {
	a := Box{X1: 0, Y1: 0, X2: 1, Y2: 1}
	b := Box{X1: 0.5, Y1: 0, X2: 1.5, Y2: 1}
	if got := IoU(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("IoU(a,a) = %v", got)
	}
	if got := IoU(a, b); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("IoU half overlap = %v, want 1/3", got)
	}
	c := Box{X1: 2, Y1: 2, X2: 3, Y2: 3}
	if got := IoU(a, c); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	degenerate := Box{X1: 1, Y1: 1, X2: 1, Y2: 1}
	if degenerate.Area() != 0 {
		t.Error("degenerate box area should be 0")
	}
}

func TestIoUSymmetricProperty(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 uint8) bool {
		a := Box{X1: float64(x1), Y1: float64(y1), X2: float64(x1) + float64(w1%50) + 1, Y2: float64(y1) + float64(h1%50) + 1}
		b := Box{X1: float64(x2), Y1: float64(y2), X2: float64(x2) + float64(w2%50) + 1, Y2: float64(y2) + float64(h2%50) + 1}
		u1, u2 := IoU(a, b), IoU(b, a)
		return math.Abs(u1-u2) < 1e-12 && u1 >= 0 && u1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMeanAveragePrecisionPerfect(t *testing.T) {
	gt := []GroundTruth{
		{SampleIndex: 0, Boxes: []Box{{X1: 0.1, Y1: 0.1, X2: 0.4, Y2: 0.4, Class: 1}}},
		{SampleIndex: 1, Boxes: []Box{{X1: 0.5, Y1: 0.5, X2: 0.9, Y2: 0.9, Class: 2}}},
	}
	det := []Detection{
		{SampleIndex: 0, Boxes: []Box{{X1: 0.1, Y1: 0.1, X2: 0.4, Y2: 0.4, Class: 1, Score: 0.9}}},
		{SampleIndex: 1, Boxes: []Box{{X1: 0.5, Y1: 0.5, X2: 0.9, Y2: 0.9, Class: 2, Score: 0.8}}},
	}
	m, err := MeanAveragePrecision(det, gt, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1) > 1e-9 {
		t.Errorf("perfect detections mAP = %v, want 1", m)
	}
}

func TestMeanAveragePrecisionMisses(t *testing.T) {
	gt := []GroundTruth{
		{SampleIndex: 0, Boxes: []Box{
			{X1: 0.1, Y1: 0.1, X2: 0.4, Y2: 0.4, Class: 1},
			{X1: 0.6, Y1: 0.6, X2: 0.9, Y2: 0.9, Class: 1},
		}},
	}
	// Only one of two boxes found -> AP = 0.5 for the class.
	det := []Detection{
		{SampleIndex: 0, Boxes: []Box{{X1: 0.1, Y1: 0.1, X2: 0.4, Y2: 0.4, Class: 1, Score: 0.9}}},
	}
	m, err := MeanAveragePrecision(det, gt, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.5) > 1e-9 {
		t.Errorf("mAP = %v, want 0.5", m)
	}
}

func TestMeanAveragePrecisionNoDetections(t *testing.T) {
	gt := []GroundTruth{{SampleIndex: 0, Boxes: []Box{{X1: 0, Y1: 0, X2: 1, Y2: 1, Class: 1}}}}
	m, err := MeanAveragePrecision(nil, gt, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Errorf("mAP with no detections = %v, want 0", m)
	}
}

func TestMeanAveragePrecisionDuplicatesPenalized(t *testing.T) {
	gt := []GroundTruth{{SampleIndex: 0, Boxes: []Box{{X1: 0.1, Y1: 0.1, X2: 0.4, Y2: 0.4, Class: 1}}}}
	// Two identical detections of the same GT box: the second is a false
	// positive, so AP stays 1.0 only for the interpolated part up to recall 1.
	det := []Detection{{SampleIndex: 0, Boxes: []Box{
		{X1: 0.1, Y1: 0.1, X2: 0.4, Y2: 0.4, Class: 1, Score: 0.9},
		{X1: 0.1, Y1: 0.1, X2: 0.4, Y2: 0.4, Class: 1, Score: 0.8},
	}}}
	m, err := MeanAveragePrecision(det, gt, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1) > 1e-9 {
		t.Errorf("duplicate-match mAP = %v, want 1 (duplicate counted after full recall)", m)
	}
}

func TestMeanAveragePrecisionErrors(t *testing.T) {
	if _, err := MeanAveragePrecision(nil, nil, 0.5); err == nil {
		t.Error("no ground truth: expected error")
	}
	gt := []GroundTruth{{SampleIndex: 0, Boxes: []Box{{X1: 0, Y1: 0, X2: 1, Y2: 1, Class: 1}}}}
	if _, err := MeanAveragePrecision(nil, gt, 0); err == nil {
		t.Error("bad threshold: expected error")
	}
	empty := []GroundTruth{{SampleIndex: 0}}
	if _, err := MeanAveragePrecision(nil, empty, 0.5); err == nil {
		t.Error("gt without boxes: expected error")
	}
}

func TestCorpusBLEUPerfectMatch(t *testing.T) {
	refs := [][]int{{1, 2, 3, 4, 5}, {6, 7, 8, 9}}
	score, err := CorpusBLEU(refs, refs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(score-100) > 1e-9 {
		t.Errorf("perfect BLEU = %v, want 100", score)
	}
}

func TestCorpusBLEUNoOverlap(t *testing.T) {
	hyp := [][]int{{1, 2, 3, 4}}
	ref := [][]int{{5, 6, 7, 8}}
	score, err := CorpusBLEU(hyp, ref)
	if err != nil {
		t.Fatal(err)
	}
	if score > 5 {
		t.Errorf("disjoint BLEU = %v, want near 0", score)
	}
}

func TestCorpusBLEUPartial(t *testing.T) {
	hyp := [][]int{{1, 2, 3, 9, 10, 11, 12}}
	ref := [][]int{{1, 2, 3, 4, 5, 6, 7}}
	score, err := CorpusBLEU(hyp, ref)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 || score >= 100 {
		t.Errorf("partial BLEU = %v, want strictly between 0 and 100", score)
	}
}

func TestCorpusBLEUBrevityPenalty(t *testing.T) {
	// A hypothesis that is a strict prefix of the reference has perfect
	// precision but must be penalized for brevity.
	full := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}}
	short := [][]int{{1, 2, 3, 4, 5}}
	fullScore, err := CorpusBLEU(full, full)
	if err != nil {
		t.Fatal(err)
	}
	shortScore, err := CorpusBLEU(short, full)
	if err != nil {
		t.Fatal(err)
	}
	if shortScore >= fullScore {
		t.Errorf("brevity penalty not applied: short %v >= full %v", shortScore, fullScore)
	}
}

func TestCorpusBLEUErrors(t *testing.T) {
	if _, err := CorpusBLEU(nil, nil); err == nil {
		t.Error("empty corpus: expected error")
	}
	if _, err := CorpusBLEU([][]int{{1}}, nil); err == nil {
		t.Error("length mismatch: expected error")
	}
}

func TestCorpusBLEUEmptyHypothesis(t *testing.T) {
	score, err := CorpusBLEU([][]int{{}}, [][]int{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 {
		t.Errorf("empty hypothesis BLEU = %v, want 0", score)
	}
}

func TestCorpusBLEUBoundsProperty(t *testing.T) {
	f := func(h, r []uint8) bool {
		if len(h) == 0 || len(r) == 0 {
			return true
		}
		hyp := make([]int, len(h))
		ref := make([]int, len(r))
		for i, v := range h {
			hyp[i] = int(v % 16)
		}
		for i, v := range r {
			ref[i] = int(v % 16)
		}
		score, err := CorpusBLEU([][]int{hyp}, [][]int{ref})
		if err != nil {
			return false
		}
		return score >= 0 && score <= 100+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
