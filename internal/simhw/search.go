package simhw

import (
	"fmt"
	"time"
)

// SearchOptions bound the tuning searches submitters perform to find the best
// reportable metric for a scenario.
type SearchOptions struct {
	// Queries is the number of queries simulated per trial. Production runs
	// use the Table V counts; experiments use smaller values for speed.
	Queries int
	// Seed feeds the virtual-time simulations.
	Seed uint64
	// Iterations caps the binary-search refinement steps.
	Iterations int
}

func (o *SearchOptions) normalize() {
	if o.Queries <= 0 {
		o.Queries = 8192
	}
	if o.Iterations <= 0 {
		o.Iterations = 12
	}
}

// MaxServerQPS finds the highest Poisson arrival rate whose tail latency
// (at the given percentile) stays within the bound — the server scenario's
// reported metric ("the Poisson parameter that indicates the queries per
// second achievable while meeting the QoS requirement").
func MaxServerQPS(p Platform, w Workload, bound time.Duration, percentile float64, opts SearchOptions) (float64, error) {
	opts.normalize()
	if percentile <= 0 || percentile >= 1 {
		return 0, fmt.Errorf("simhw: percentile %v outside (0,1)", percentile)
	}
	peak, err := p.PeakThroughput(w)
	if err != nil {
		return 0, err
	}
	// A run passes when the fraction of queries over the bound is within the
	// allowance (1 - percentile) AND the system drains its backlog within one
	// latency bound of the final arrival. The drain condition guards against
	// short virtual-time trials hiding a slowly growing backlog — the same
	// concern that drives the benchmark's 60-second minimum duration and
	// 270K-query requirement. For the same reason each trial is sized so its
	// traffic spans many latency bounds of virtual time.
	allowed := 1 - percentile
	passes := func(qps float64) (bool, error) {
		trial := opts.Queries
		if need := int(40 * bound.Seconds() * qps); need > trial {
			trial = need
		}
		if trial > 200_000 {
			trial = 200_000
		}
		res, err := SimulateServer(p, w, qps, bound, trial, opts.Seed)
		if err != nil {
			return false, err
		}
		return res.OverBoundFrac <= allowed && res.KeepsUp(bound), nil
	}

	// If even a trickle of traffic cannot meet the bound the metric is zero.
	low := peak / 1000
	if low <= 0 {
		low = 1
	}
	ok, err := passes(low)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	high := peak * 1.5
	okHigh, err := passes(high)
	if err != nil {
		return 0, err
	}
	if okHigh {
		return high, nil
	}
	for i := 0; i < opts.Iterations; i++ {
		mid := (low + high) / 2
		ok, err := passes(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			low = mid
		} else {
			high = mid
		}
	}
	return low, nil
}

// MaxMultiStreamStreams finds the largest integer number of streams the
// platform sustains at the given arrival interval with no more than
// maxSkipFraction of queries producing skipped intervals — the multistream
// scenario's reported metric.
func MaxMultiStreamStreams(p Platform, w Workload, interval time.Duration, maxSkipFraction float64, opts SearchOptions) (int, error) {
	opts.normalize()
	if maxSkipFraction < 0 || maxSkipFraction >= 1 {
		return 0, fmt.Errorf("simhw: maxSkipFraction %v outside [0,1)", maxSkipFraction)
	}
	passes := func(streams int) (bool, error) {
		res, err := SimulateMultiStream(p, w, streams, interval, opts.Queries, opts.Seed)
		if err != nil {
			return false, err
		}
		skipFrac := float64(res.SkippedIntervals) / float64(res.Queries)
		return skipFrac <= maxSkipFraction, nil
	}
	ok, err := passes(1)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	// Exponential probe then binary search.
	low, high := 1, 2
	for {
		ok, err := passes(high)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		low = high
		high *= 2
		if high > 1<<20 {
			return low, nil
		}
	}
	for low+1 < high {
		mid := (low + high) / 2
		ok, err := passes(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			low = mid
		} else {
			high = mid
		}
	}
	return low, nil
}

// OfflineThroughput reports the offline scenario metric for the platform.
func OfflineThroughput(p Platform, w Workload, samples int, seed uint64) (float64, error) {
	res, err := SimulateOffline(p, w, samples, seed)
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

// SingleStreamP90 reports the single-stream scenario metric for the platform.
func SingleStreamP90(p Platform, w Workload, queries int, seed uint64) (time.Duration, error) {
	res, err := SimulateSingleStream(p, w, queries, seed)
	if err != nil {
		return 0, err
	}
	return res.Latencies.P90, nil
}
