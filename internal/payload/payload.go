// Package payload defines the wire format of SUT responses. The LoadGen
// treats response data as opaque bytes (it only logs them); the accuracy
// script decodes them after the run to score model quality. Keeping the codec
// in one place lets any SUT implementation and the accuracy checker agree on
// the format.
//
// Two codecs coexist:
//
//   - The binary codec (the default since the swarm scenario landed) frames
//     every payload as [version 0x01][kind][varint-encoded fields]: class
//     predictions are one zigzag varint, token sequences are a count plus
//     one zigzag varint per token, and detection boxes are a count plus
//     fixed 8-byte IEEE-754 coordinates/score with a zigzag-varint class.
//     Encoding appends into a caller-supplied buffer (Append*), so the
//     serving hot path can run it through pooled buffers without
//     allocating.
//   - The legacy JSON codec ({"class":N}, {"boxes":[...]}, {"tokens":[...]})
//     is still emitted on demand (Encode*JSON) for old peers.
//
// The codecs self-describe: a JSON payload always begins with '{' (0x7b)
// and a binary payload always begins with BinaryVersion (0x01), so the
// Decode* functions sniff the first byte and accept either. That leading
// codec-version byte is what rides the wire protocol's V2/V3 framing — the
// payload travels as the opaque data field of predict responses, so a new
// decoder handles an old JSON peer and an old-peer deployment can keep a
// server on the JSON codec without any frame-format change.
package payload

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"mlperf/internal/metrics"
)

// Codec selects which of the two self-describing payload encodings to emit.
// The zero value is the binary codec, so zero-valued configs get the
// allocation-free default and JSON is an explicit opt-in for old peers.
type Codec uint8

const (
	// CodecBinary is the varint-framed binary codec (default).
	CodecBinary Codec = iota
	// CodecJSON is the legacy JSON codec, kept for old peers.
	CodecJSON
)

// String names the codec for logs and flags.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecJSON:
		return "json"
	default:
		return fmt.Sprintf("Codec(%d)", uint8(c))
	}
}

// ParseCodec parses a -codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "json":
		return CodecJSON, nil
	default:
		return 0, fmt.Errorf("payload: unknown codec %q (want binary or json)", s)
	}
}

// BinaryVersion is the leading version byte of every binary-codec payload.
// It is deliberately distinct from '{' (0x7b), the first byte of every JSON
// payload, so decoders can sniff the codec from the first byte.
const BinaryVersion = 0x01

// Binary payload kind tags (the byte after the version byte).
const (
	kindClass  = 0x01
	kindBoxes  = 0x02
	kindTokens = 0x03
)

// DetectCodec reports which codec encoded data, sniffing the first byte.
func DetectCodec(data []byte) (Codec, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("payload: empty payload")
	}
	switch data[0] {
	case BinaryVersion:
		return CodecBinary, nil
	case '{':
		return CodecJSON, nil
	default:
		return 0, fmt.Errorf("payload: unknown codec version byte 0x%02x", data[0])
	}
}

// classPayload carries an image-classification prediction (JSON codec).
type classPayload struct {
	Class int `json:"class"`
}

// detectionPayload carries object-detection predictions (JSON codec).
type detectionPayload struct {
	Boxes []metrics.Box `json:"boxes"`
}

// translationPayload carries a machine-translation hypothesis (JSON codec).
type translationPayload struct {
	Tokens []int `json:"tokens"`
}

// zigzag folds signed integers into unsigned ones so small negative values
// stay short under varint encoding (protobuf's sint64 mapping).
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendZigzag(dst []byte, v int) []byte {
	return binary.AppendUvarint(dst, zigzag(int64(v)))
}

func readZigzag(data []byte) (int, int, error) {
	u, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, fmt.Errorf("payload: truncated or oversized varint")
	}
	return int(unzigzag(u)), n, nil
}

// AppendClass appends a binary-codec class prediction to dst and returns the
// extended slice. With sufficient capacity in dst it does not allocate.
func AppendClass(dst []byte, class int) []byte {
	dst = append(dst, BinaryVersion, kindClass)
	return appendZigzag(dst, class)
}

// AppendBoxes appends binary-codec detection boxes to dst.
func AppendBoxes(dst []byte, boxes []metrics.Box) []byte {
	dst = append(dst, BinaryVersion, kindBoxes)
	dst = binary.AppendUvarint(dst, uint64(len(boxes)))
	for _, b := range boxes {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.X1))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Y1))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.X2))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Y2))
		dst = appendZigzag(dst, b.Class)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Score))
	}
	return dst
}

// AppendTokens appends a binary-codec translation hypothesis to dst.
func AppendTokens(dst []byte, tokens []int) []byte {
	dst = append(dst, BinaryVersion, kindTokens)
	dst = binary.AppendUvarint(dst, uint64(len(tokens)))
	for _, t := range tokens {
		dst = appendZigzag(dst, t)
	}
	return dst
}

// EncodeClass serializes a class prediction with the default (binary) codec.
func EncodeClass(class int) ([]byte, error) {
	return AppendClass(nil, class), nil
}

// EncodeBoxes serializes detection boxes with the default (binary) codec.
func EncodeBoxes(boxes []metrics.Box) ([]byte, error) {
	return AppendBoxes(nil, boxes), nil
}

// EncodeTokens serializes a translation hypothesis with the default (binary)
// codec.
func EncodeTokens(tokens []int) ([]byte, error) {
	return AppendTokens(nil, tokens), nil
}

// EncodeClassJSON serializes a class prediction with the legacy JSON codec.
func EncodeClassJSON(class int) ([]byte, error) {
	return json.Marshal(classPayload{Class: class})
}

// EncodeBoxesJSON serializes detection boxes with the legacy JSON codec.
func EncodeBoxesJSON(boxes []metrics.Box) ([]byte, error) {
	return json.Marshal(detectionPayload{Boxes: boxes})
}

// EncodeTokensJSON serializes a translation hypothesis with the legacy JSON
// codec.
func EncodeTokensJSON(tokens []int) ([]byte, error) {
	return json.Marshal(translationPayload{Tokens: tokens})
}

// binaryBody validates the version/kind header and returns the field bytes.
func binaryBody(data []byte, kind byte, what string) ([]byte, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("payload: truncated binary %s payload (%d bytes)", what, len(data))
	}
	if data[1] != kind {
		return nil, fmt.Errorf("payload: binary payload kind 0x%02x is not a %s prediction", data[1], what)
	}
	return data[2:], nil
}

// DecodeClass parses a class prediction, accepting either codec.
func DecodeClass(data []byte) (int, error) {
	codec, err := DetectCodec(data)
	if err != nil {
		return 0, err
	}
	if codec == CodecJSON {
		var p classPayload
		if err := json.Unmarshal(data, &p); err != nil {
			return 0, fmt.Errorf("payload: decoding class prediction: %w", err)
		}
		return p.Class, nil
	}
	body, err := binaryBody(data, kindClass, "class")
	if err != nil {
		return 0, err
	}
	class, n, err := readZigzag(body)
	if err != nil {
		return 0, fmt.Errorf("payload: decoding class prediction: %w", err)
	}
	if n != len(body) {
		return 0, fmt.Errorf("payload: %d trailing bytes after class prediction", len(body)-n)
	}
	return class, nil
}

// binaryBoxBytes is the fixed per-box tail (4 coords + score); the class
// varint adds at least one more byte. Bounding the declared count by the
// remaining bytes keeps a lying count prefix from over-allocating.
const binaryBoxBytes = 5*8 + 1

// DecodeBoxes parses detection boxes, accepting either codec.
func DecodeBoxes(data []byte) ([]metrics.Box, error) {
	codec, err := DetectCodec(data)
	if err != nil {
		return nil, err
	}
	if codec == CodecJSON {
		var p detectionPayload
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("payload: decoding detection boxes: %w", err)
		}
		return p.Boxes, nil
	}
	body, err := binaryBody(data, kindBoxes, "detection")
	if err != nil {
		return nil, err
	}
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("payload: decoding detection box count: truncated varint")
	}
	body = body[n:]
	if count > uint64(len(body)/binaryBoxBytes) {
		return nil, fmt.Errorf("payload: detection box count %d exceeds the %d payload bytes", count, len(body))
	}
	boxes := make([]metrics.Box, count)
	for i := range boxes {
		if len(body) < 4*8 {
			return nil, fmt.Errorf("payload: truncated detection box %d", i)
		}
		boxes[i].X1 = math.Float64frombits(binary.LittleEndian.Uint64(body[0:]))
		boxes[i].Y1 = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		boxes[i].X2 = math.Float64frombits(binary.LittleEndian.Uint64(body[16:]))
		boxes[i].Y2 = math.Float64frombits(binary.LittleEndian.Uint64(body[24:]))
		body = body[32:]
		class, n, err := readZigzag(body)
		if err != nil {
			return nil, fmt.Errorf("payload: decoding detection box %d class: %w", i, err)
		}
		body = body[n:]
		if len(body) < 8 {
			return nil, fmt.Errorf("payload: truncated detection box %d score", i)
		}
		boxes[i].Class = class
		boxes[i].Score = math.Float64frombits(binary.LittleEndian.Uint64(body[0:]))
		body = body[8:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("payload: %d trailing bytes after detection boxes", len(body))
	}
	if count == 0 {
		return nil, nil
	}
	return boxes, nil
}

// DecodeTokens parses a translation hypothesis, accepting either codec.
func DecodeTokens(data []byte) ([]int, error) {
	codec, err := DetectCodec(data)
	if err != nil {
		return nil, err
	}
	if codec == CodecJSON {
		var p translationPayload
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("payload: decoding translation tokens: %w", err)
		}
		return p.Tokens, nil
	}
	body, err := binaryBody(data, kindTokens, "translation")
	if err != nil {
		return nil, err
	}
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("payload: decoding token count: truncated varint")
	}
	body = body[n:]
	// Every token costs at least one varint byte, so a count beyond the
	// remaining length is a lie — reject it before allocating.
	if count > uint64(len(body)) {
		return nil, fmt.Errorf("payload: token count %d exceeds the %d payload bytes", count, len(body))
	}
	tokens := make([]int, count)
	for i := range tokens {
		t, n, err := readZigzag(body)
		if err != nil {
			return nil, fmt.Errorf("payload: decoding token %d: %w", i, err)
		}
		tokens[i] = t
		body = body[n:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("payload: %d trailing bytes after tokens", len(body))
	}
	if count == 0 {
		return nil, nil
	}
	return tokens, nil
}

// DecodeTokensInto decodes a binary-codec translation hypothesis into dst,
// reusing its backing array when capacity allows — the allocation-free
// receive path for swarm clients that score in place. JSON payloads fall
// back to DecodeTokens (allocating).
func DecodeTokensInto(dst []int, data []byte) ([]int, error) {
	codec, err := DetectCodec(data)
	if err != nil {
		return nil, err
	}
	if codec == CodecJSON {
		return DecodeTokens(data)
	}
	body, err := binaryBody(data, kindTokens, "translation")
	if err != nil {
		return nil, err
	}
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("payload: decoding token count: truncated varint")
	}
	body = body[n:]
	if count > uint64(len(body)) {
		return nil, fmt.Errorf("payload: token count %d exceeds the %d payload bytes", count, len(body))
	}
	if uint64(cap(dst)) < count {
		dst = make([]int, count)
	}
	dst = dst[:count]
	for i := range dst {
		t, n, err := readZigzag(body)
		if err != nil {
			return nil, fmt.Errorf("payload: decoding token %d: %w", i, err)
		}
		dst[i] = t
		body = body[n:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("payload: %d trailing bytes after tokens", len(body))
	}
	return dst, nil
}
