package trace

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
)

// histBuckets is the per-stage latency histogram bucket count. Bucket i
// has upper bound 1µs·2^i, so the ladder spans 1µs … ~8.4s; anything
// beyond lands in +Inf.
const histBuckets = 24

// histBase is bucket 0's upper bound in nanoseconds.
const histBase = 1000

// histogram is one lock-free latency histogram: exponential bucket counts,
// a running sum and a total count, all atomics.
type histogram struct {
	buckets [histBuckets]atomic.Uint64
	inf     atomic.Uint64
	sum     atomic.Int64
	count   atomic.Uint64
}

func (h *histogram) observe(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	bound := int64(histBase)
	placed := false
	for i := 0; i < histBuckets; i++ {
		if nanos <= bound {
			h.buckets[i].Add(1)
			placed = true
			break
		}
		bound <<= 1
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sum.Add(nanos)
	h.count.Add(1)
}

// stageHistograms holds one model's per-stage and end-to-end histograms.
type stageHistograms struct {
	stages  [NumStages]histogram
	end2end histogram
}

func (s *stageHistograms) observeStage(st Stage, nanos int64) {
	s.stages[st].observe(nanos)
}

func (s *stageHistograms) observeEnd2End(nanos int64) {
	s.end2end.observe(nanos)
}

// WritePrometheus emits the tracer's histogram families in the Prometheus
// text exposition format:
//
//	mlperf_trace_stage_seconds  histogram, labels {model, stage}
//	mlperf_trace_e2e_seconds    histogram, labels {model}
//
// Buckets are cumulative per label set, as the format requires. Stages a
// model never observed are omitted so an untraced deployment scrapes to
// nothing. Safe to call while tracing continues.
func (t *Tracer) WritePrometheus(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.RLock()
	names := make([]string, 0, len(t.models))
	for name := range t.models {
		names = append(names, name)
	}
	t.mu.RUnlock()
	sortStrings(names)

	fmt.Fprintf(w, "# HELP mlperf_trace_stage_seconds Per-stage request latency recorded by the trace subsystem.\n")
	fmt.Fprintf(w, "# TYPE mlperf_trace_stage_seconds histogram\n")
	for _, name := range names {
		mt := t.Model(name)
		for st := Stage(0); st < NumStages; st++ {
			writeHistogram(w, "mlperf_trace_stage_seconds",
				fmt.Sprintf("model=%s,stage=%s", promQuote(name), promQuote(st.String())),
				&mt.hist.stages[st], true)
		}
	}
	fmt.Fprintf(w, "# HELP mlperf_trace_e2e_seconds End-to-end request latency observed by the trace subsystem.\n")
	fmt.Fprintf(w, "# TYPE mlperf_trace_e2e_seconds histogram\n")
	for _, name := range names {
		mt := t.Model(name)
		writeHistogram(w, "mlperf_trace_e2e_seconds",
			fmt.Sprintf("model=%s", promQuote(name)), &mt.hist.end2end, false)
	}
}

// writeHistogram emits one label set's cumulative buckets, sum and count.
// When skipEmpty is set a histogram with zero observations writes nothing
// (used for per-stage series, most of which a given origin never records).
func writeHistogram(w io.Writer, family, labels string, h *histogram, skipEmpty bool) {
	count := h.count.Load()
	if skipEmpty && count == 0 {
		return
	}
	var cum uint64
	bound := int64(histBase)
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", family, labels, promSeconds(bound), cum)
		bound <<= 1
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", family, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", family, labels, promSeconds(h.sum.Load()))
	fmt.Fprintf(w, "%s_count{%s} %d\n", family, labels, count)
}

// promSeconds renders a nanosecond quantity as seconds in the shortest
// round-trippable float text.
func promSeconds(nanos int64) string {
	return strconv.FormatFloat(float64(nanos)/1e9, 'g', -1, 64)
}

// promQuote renders a label value: quoted, with backslash, quote and
// newline escaped per the exposition format.
func promQuote(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\', '"':
			out = append(out, '\\', c)
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(append(out, '"'))
}
