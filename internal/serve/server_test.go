package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mlperf/internal/dataset"
	"mlperf/internal/model"
	"mlperf/internal/payload"
	"mlperf/internal/tensor"
)

// echoEngine answers every sample with its index as the class, optionally
// blocking on a gate so tests can hold the worker pool busy deterministically.
type echoEngine struct {
	gate chan struct{} // when non-nil, every Predict waits for one token
}

func (e *echoEngine) Name() string       { return "echo" }
func (e *echoEngine) Kind() dataset.Kind { return dataset.KindImageClassification }

func (e *echoEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]model.Output, error) {
	if e.gate != nil {
		<-e.gate
	}
	out := make([]model.Output, len(samples))
	for i, s := range samples {
		out[i] = model.Output{Kind: dataset.KindImageClassification, Class: s.Index}
	}
	return out, nil
}

// indexStore fabricates samples on demand.
type indexStore struct{}

func (indexStore) Get(index int) (*dataset.Sample, error) {
	if index < 0 || index >= 1<<20 {
		return nil, fmt.Errorf("bad index %d", index)
	}
	return &dataset.Sample{Index: index}, nil
}

// testClient is a bare protocol client for white-box server tests.
type testClient struct {
	t  *testing.T
	c  net.Conn
	r  *bufio.Reader
	mu sync.Mutex
}

func dialTest(t *testing.T, addr string) *testClient {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &testClient{t: t, c: c, r: bufio.NewReader(c)}
}

func (tc *testClient) predict(id uint64, index int, deadline time.Time) {
	tc.t.Helper()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := WritePredictRequest(tc.c, PredictRequest{ID: id, SampleIndex: index, Deadline: deadline}); err != nil {
		tc.t.Fatal(err)
	}
}

func (tc *testClient) control(msgType byte) {
	tc.t.Helper()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := WriteControl(tc.c, msgType); err != nil {
		tc.t.Fatal(err)
	}
}

// read collects n predict responses keyed by id.
func (tc *testClient) read(n int) map[uint64]PredictResponse {
	tc.t.Helper()
	tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	out := make(map[uint64]PredictResponse, n)
	for len(out) < n {
		frame, err := ReadClientFrame(tc.r)
		if err != nil {
			tc.t.Fatalf("reading response %d of %d: %v", len(out)+1, n, err)
		}
		if frame.Type != MsgPredict {
			continue
		}
		out[frame.Predict.ID] = frame.Predict
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = &echoEngine{}
	}
	if cfg.Store == nil {
		cfg.Store = indexStore{}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	deadline := time.Unix(0, 1234567890)
	if err := WritePredictRequest(&buf, PredictRequest{ID: 42, SampleIndex: 7, Deadline: deadline}); err != nil {
		t.Fatal(err)
	}
	msgType, body, err := readFrame(bufio.NewReader(&buf))
	if err != nil || msgType != MsgPredict {
		t.Fatalf("readFrame: type %d, err %v", msgType, err)
	}
	req, err := decodePredictRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if req.ID != 42 || req.SampleIndex != 7 || !req.Deadline.Equal(deadline) {
		t.Errorf("request round-trip mismatch: %+v", req)
	}

	buf.Reset()
	if err := writeFrame(&buf, MsgPredict, encodePredictResponse(42, StatusOK, []byte("payload"))); err != nil {
		t.Fatal(err)
	}
	frame, err := ReadClientFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	resp := frame.Predict
	if resp.ID != 42 || resp.Status != StatusOK || string(resp.Data) != "payload" {
		t.Errorf("response round-trip mismatch: %+v", resp)
	}

	// Zero deadline survives as zero.
	buf.Reset()
	if err := WritePredictRequest(&buf, PredictRequest{ID: 1, SampleIndex: 2}); err != nil {
		t.Fatal(err)
	}
	_, body, _ = readFrame(bufio.NewReader(&buf))
	req, _ = decodePredictRequest(body)
	if !req.Deadline.IsZero() {
		t.Errorf("zero deadline decoded as %v", req.Deadline)
	}

	// Oversized frames are refused.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, MsgPredict})
	if _, _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Error("oversized frame: expected error")
	}
}

func TestServeAnswersWithEncodedOutputs(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 4, BatchWait: time.Millisecond})
	tc := dialTest(t, s.Addr())
	const n = 16
	for i := 0; i < n; i++ {
		tc.predict(uint64(i+1), i*3, time.Time{})
	}
	responses := tc.read(n)
	for i := 0; i < n; i++ {
		resp := responses[uint64(i+1)]
		if resp.Status != StatusOK {
			t.Fatalf("request %d: status %v", i+1, resp.Status)
		}
		class, err := payload.DecodeClass(resp.Data)
		if err != nil {
			t.Fatal(err)
		}
		if class != i*3 {
			t.Errorf("request %d: class %d, want %d", i+1, class, i*3)
		}
	}
	snap := s.Metrics()
	if snap.Admitted != n || snap.Completed != n || snap.Rejected != 0 {
		t.Errorf("metrics: %+v", snap)
	}
	var batched uint64
	for _, b := range snap.BatchHistogram {
		batched += b.Count
	}
	if batched == 0 {
		t.Error("no batches recorded in the histogram")
	}
}

func TestServeBadSampleIndexIsIsolated(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 4, BatchWait: time.Millisecond})
	tc := dialTest(t, s.Addr())
	tc.predict(1, 5, time.Time{})
	tc.predict(2, 1<<21, time.Time{}) // store error
	tc.predict(3, 9, time.Time{})
	responses := tc.read(3)
	if responses[1].Status != StatusOK || responses[3].Status != StatusOK {
		t.Errorf("good samples: %v, %v", responses[1].Status, responses[3].Status)
	}
	if responses[2].Status != StatusError {
		t.Errorf("bad sample: status %v, want %v", responses[2].Status, StatusError)
	}
	if snap := s.Metrics(); snap.Errors != 1 {
		t.Errorf("metrics errors = %d, want 1", snap.Errors)
	}
}

func TestAdmissionControlRejects(t *testing.T) {
	gate := make(chan struct{})
	s := newTestServer(t, Config{
		Engine: &echoEngine{gate: gate}, Workers: 1, QueueDepth: 2,
		MaxBatch: 1, BatchWait: time.Millisecond, Policy: RejectNewest,
	})
	tc := dialTest(t, s.Addr())
	const n = 12
	for i := 0; i < n; i++ {
		tc.predict(uint64(i+1), i, time.Time{})
	}
	// The worker pool (1 worker, 1 queued batch) plus the admission queue (2)
	// cannot hold 12 requests: rejects must surface while the gate is shut.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no rejects despite a full queue")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	responses := tc.read(n)
	var ok, rejected int
	for _, resp := range responses {
		switch resp.Status {
		case StatusOK:
			ok++
		case StatusRejected:
			rejected++
		default:
			t.Errorf("unexpected status %v", resp.Status)
		}
	}
	if rejected == 0 || ok == 0 || ok+rejected != n {
		t.Errorf("ok %d + rejected %d, want both positive summing to %d", ok, rejected, n)
	}
	snap := s.Metrics()
	if snap.Rejected != uint64(rejected) || snap.Admitted != uint64(ok) {
		t.Errorf("metrics admitted/rejected = %d/%d, want %d/%d", snap.Admitted, snap.Rejected, ok, rejected)
	}
}

func TestAdmissionControlShedsOldest(t *testing.T) {
	gate := make(chan struct{})
	s := newTestServer(t, Config{
		Engine: &echoEngine{gate: gate}, Workers: 1, QueueDepth: 2,
		MaxBatch: 1, BatchWait: time.Millisecond, Policy: ShedOldest,
	})
	tc := dialTest(t, s.Addr())
	const n = 12
	for i := 0; i < n; i++ {
		tc.predict(uint64(i+1), i, time.Time{})
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Shed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sheds despite a full queue")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	responses := tc.read(n)
	var rejectedIDs, okIDs []uint64
	for id, resp := range responses {
		if resp.Status == StatusRejected {
			rejectedIDs = append(rejectedIDs, id)
		} else if resp.Status == StatusOK {
			okIDs = append(okIDs, id)
		}
	}
	if len(rejectedIDs) == 0 {
		t.Fatal("no rejects recorded")
	}
	// Shedding the oldest means the LAST arrival always survives.
	for _, id := range rejectedIDs {
		if id == n {
			t.Errorf("shed-oldest rejected the newest request (id %d)", id)
		}
	}
	if len(okIDs)+len(rejectedIDs) != n {
		t.Errorf("%d ok + %d rejected, want %d total", len(okIDs), len(rejectedIDs), n)
	}
	// Counter reconciliation: every shed request was first admitted, so
	// admitted covers both the served and the shed.
	snap := s.Metrics()
	if snap.Shed != uint64(len(rejectedIDs)) || snap.Rejected != 0 {
		t.Errorf("metrics shed/rejected = %d/%d, want %d/0", snap.Shed, snap.Rejected, len(rejectedIDs))
	}
	if snap.Admitted != snap.Completed+snap.Shed {
		t.Errorf("admitted %d != completed %d + shed %d", snap.Admitted, snap.Completed, snap.Shed)
	}
}

func TestDeadlineExpiresQueuedRequests(t *testing.T) {
	gate := make(chan struct{})
	s := newTestServer(t, Config{
		Engine: &echoEngine{gate: gate}, Workers: 1, QueueDepth: 16,
		MaxBatch: 1, BatchWait: time.Millisecond,
	})
	tc := dialTest(t, s.Addr())
	tc.predict(1, 0, time.Time{})                        // occupies the worker
	tc.predict(2, 1, time.Now().Add(5*time.Millisecond)) // will expire while queued
	tc.predict(3, 2, time.Now().Add(10*time.Second))     // generous: survives
	time.Sleep(30 * time.Millisecond)                    // let request 2's deadline lapse
	gate <- struct{}{}                                   // finish request 1
	gate <- struct{}{}                                   // serve request 3 (request 2 expires without predicting)
	close(gate)
	responses := tc.read(3)
	if responses[1].Status != StatusOK {
		t.Errorf("request 1: %v, want ok", responses[1].Status)
	}
	if responses[2].Status != StatusExpired {
		t.Errorf("request 2: %v, want expired", responses[2].Status)
	}
	if responses[3].Status != StatusOK {
		t.Errorf("request 3: %v, want ok", responses[3].Status)
	}
	if snap := s.Metrics(); snap.Expired != 1 {
		t.Errorf("metrics expired = %d, want 1", snap.Expired)
	}
}

func TestFlushSwitchesToPassthroughAndReopenRearms(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 8, BatchWait: 10 * time.Second})
	tc := dialTest(t, s.Addr())
	// Three requests would wait out the 10s window...
	tc.predict(1, 0, time.Time{})
	tc.predict(2, 1, time.Time{})
	tc.predict(3, 2, time.Time{})
	tc.control(MsgFlush) // ...but the end-of-series flush forces them out now.
	responses := tc.read(3)
	for id := uint64(1); id <= 3; id++ {
		if responses[id].Status != StatusOK {
			t.Errorf("request %d: %v", id, responses[id].Status)
		}
	}
	// Pass-through: a straggler is answered immediately, no re-armed window.
	tc.predict(4, 3, time.Time{})
	if resp := tc.read(1); resp[4].Status != StatusOK {
		t.Errorf("straggler: %v", resp[4].Status)
	}
	// Reopen re-arms batching: a full batch dispatches without the window.
	tc.control(MsgReopen)
	for i := 0; i < 8; i++ {
		tc.predict(uint64(10+i), i, time.Time{})
	}
	full := tc.read(8)
	for i := 0; i < 8; i++ {
		if full[uint64(10+i)].Status != StatusOK {
			t.Errorf("batched request %d: %v", 10+i, full[uint64(10+i)].Status)
		}
	}
	if snap := s.Metrics(); snap.Flushes != 1 {
		t.Errorf("metrics flushes = %d, want 1", snap.Flushes)
	}
}

func TestMetricsOverTheWire(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 2, BatchWait: time.Millisecond})
	tc := dialTest(t, s.Addr())
	tc.predict(1, 4, time.Time{})
	tc.read(1)
	tc.mu.Lock()
	err := WriteMetricsRequest(tc.c, 99)
	tc.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := ReadClientFrame(tc.r)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != MsgMetrics || frame.MetricsID != 99 {
		t.Fatalf("frame type %d id %d, want metrics id 99", frame.Type, frame.MetricsID)
	}
	var snap Snapshot
	if err := json.Unmarshal(frame.MetricsJSON, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Completed != 1 || snap.Admitted != 1 {
		t.Errorf("wire snapshot: %+v", snap)
	}
	if snap.ServiceP99 <= 0 || snap.QueueP99 < 0 {
		t.Errorf("latency percentiles not populated: %+v", snap)
	}
}

func TestConcurrentConnections(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 8, BatchWait: time.Millisecond})
	const conns, per = 4, 64
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", s.Addr(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			go func() {
				for i := 0; i < per; i++ {
					id := uint64(c*per + i + 1)
					WritePredictRequest(conn, PredictRequest{ID: id, SampleIndex: int(id) * 7})
				}
			}()
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			for i := 0; i < per; i++ {
				frame, err := ReadClientFrame(r)
				if err != nil {
					errs <- err
					return
				}
				resp := frame.Predict
				class, err := payload.DecodeClass(resp.Data)
				if err != nil {
					errs <- err
					return
				}
				if class != int(resp.ID)*7 {
					errs <- fmt.Errorf("id %d answered class %d, want %d", resp.ID, class, resp.ID*7)
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if snap := s.Metrics(); snap.Completed != conns*per {
		t.Errorf("completed %d, want %d", snap.Completed, conns*per)
	}
}

func TestCloseDrainsAdmittedWork(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 4, BatchWait: time.Millisecond})
	tc := dialTest(t, s.Addr())
	const n = 8
	for i := 0; i < n; i++ {
		tc.predict(uint64(i+1), i, time.Time{})
	}
	responses := tc.read(n) // all answered before we close
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for id, resp := range responses {
		if resp.Status != StatusOK {
			t.Errorf("request %d: %v", id, resp.Status)
		}
	}
	// Double close is safe.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Store: indexStore{}}); err == nil {
		t.Error("missing engine: expected error")
	}
	if _, err := New(Config{Engine: &echoEngine{}}); err == nil {
		t.Error("missing store: expected error")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy: expected error")
	}
	if p, err := ParsePolicy("shed-oldest"); err != nil || p != ShedOldest {
		t.Errorf("ParsePolicy(shed-oldest) = %v, %v", p, err)
	}
}
