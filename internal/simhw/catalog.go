package simhw

import (
	"fmt"
	"time"
)

// Catalog returns the default platform catalogue: a spread of systems from
// deeply embedded devices to data-center accelerators. The parameters are
// chosen so that (a) the performance span across the catalogue is several
// orders of magnitude, matching Section VI-D's ~10,000x observation, and
// (b) the Table III latency bounds genuinely constrain batching on the wide
// accelerators (full-batch service times are comparable to or larger than the
// bounds), which is the regime that produces Figure 6's server-versus-offline
// throughput degradation. PeakGOPS figures are *effective* sustained rates,
// not marketing peaks.
func Catalog() []Platform {
	return []Platform{
		// Embedded and mobile parts: low peak, little batching, low overhead.
		{Name: "embedded-dsp-m1", Arch: DSP, Framework: "SNPE", Category: "available",
			PeakGOPS: 8, MinUtilization: 0.9, MaxBatch: 1, QueryOverhead: 300 * time.Microsecond, Parallelism: 1, Jitter: 0.05},
		{Name: "embedded-npu-e2", Arch: ASIC, Framework: "Synapse", Category: "available",
			PeakGOPS: 15, MinUtilization: 0.85, MaxBatch: 2, QueryOverhead: 200 * time.Microsecond, Parallelism: 1, Jitter: 0.05},
		{Name: "smartphone-dsp-s1", Arch: DSP, Framework: "SNPE", Category: "available",
			PeakGOPS: 40, MinUtilization: 0.8, MaxBatch: 2, QueryOverhead: 150 * time.Microsecond, Parallelism: 1, Jitter: 0.08},
		{Name: "smartphone-soc-s2", Arch: ASIC, Framework: "TensorFlow Lite", Category: "available",
			PeakGOPS: 80, MinUtilization: 0.75, MaxBatch: 4, QueryOverhead: 120 * time.Microsecond, Parallelism: 1, Jitter: 0.08},
		{Name: "tablet-gpu-t1", Arch: GPU, Framework: "TensorFlow Lite", Category: "available",
			PeakGOPS: 150, MinUtilization: 0.6, MaxBatch: 4, QueryOverhead: 150 * time.Microsecond, Parallelism: 1, Jitter: 0.1},

		// Edge and workstation parts.
		{Name: "edge-fpga-f1", Arch: FPGA, Framework: "OpenVINO", Category: "preview",
			PeakGOPS: 350, MinUtilization: 0.7, MaxBatch: 8, QueryOverhead: 100 * time.Microsecond, Parallelism: 2, Jitter: 0.05},
		{Name: "edge-fpga-f2", Arch: FPGA, Framework: "Xilinx ML Suite", Category: "rdo",
			PeakGOPS: 700, MinUtilization: 0.65, MaxBatch: 8, QueryOverhead: 120 * time.Microsecond, Parallelism: 2, Jitter: 0.05},
		{Name: "edge-gpu-x1", Arch: GPU, Framework: "TensorRT", Category: "available",
			PeakGOPS: 1500, MinUtilization: 0.35, MaxBatch: 32, QueryOverhead: 80 * time.Microsecond, Parallelism: 2, Jitter: 0.08},
		{Name: "desktop-cpu-c1", Arch: CPU, Framework: "ONNX", Category: "available",
			PeakGOPS: 400, MinUtilization: 0.95, MaxBatch: 2, QueryOverhead: 50 * time.Microsecond, Parallelism: 4, Jitter: 0.05},
		{Name: "server-cpu-c2", Arch: CPU, Framework: "OpenVINO", Category: "available",
			PeakGOPS: 1000, MinUtilization: 0.9, MaxBatch: 4, QueryOverhead: 60 * time.Microsecond, Parallelism: 8, Jitter: 0.05},
		{Name: "server-cpu-c3", Arch: CPU, Framework: "PyTorch", Category: "available",
			PeakGOPS: 1400, MinUtilization: 0.9, MaxBatch: 4, QueryOverhead: 60 * time.Microsecond, Parallelism: 8, Jitter: 0.05},

		// Data-center accelerators: huge peaks but dependent on batching.
		{Name: "dc-dsp-d1", Arch: DSP, Framework: "ONNX", Category: "rdo",
			PeakGOPS: 4000, MinUtilization: 0.6, MaxBatch: 16, QueryOverhead: 80 * time.Microsecond, Parallelism: 4, Jitter: 0.06},
		{Name: "dc-fpga-f3", Arch: FPGA, Framework: "Xilinx ML Suite", Category: "preview",
			PeakGOPS: 8000, MinUtilization: 0.5, MaxBatch: 32, QueryOverhead: 90 * time.Microsecond, Parallelism: 4, Jitter: 0.05},
		{Name: "dc-asic-a1", Arch: ASIC, Framework: "TensorFlow", Category: "available",
			PeakGOPS: 25000, MinUtilization: 0.25, MaxBatch: 64, QueryOverhead: 60 * time.Microsecond, Parallelism: 4, Jitter: 0.05},
		{Name: "dc-gpu-g1", Arch: GPU, Framework: "TensorRT", Category: "available",
			PeakGOPS: 30000, MinUtilization: 0.2, MaxBatch: 64, QueryOverhead: 70 * time.Microsecond, Parallelism: 4, Jitter: 0.08},
		{Name: "dc-gpu-g2", Arch: GPU, Framework: "TensorRT", Category: "available",
			PeakGOPS: 50000, MinUtilization: 0.15, MaxBatch: 128, QueryOverhead: 70 * time.Microsecond, Parallelism: 8, Jitter: 0.08},
		{Name: "dc-asic-a2", Arch: ASIC, Framework: "Hanguang AI", Category: "preview",
			PeakGOPS: 60000, MinUtilization: 0.2, MaxBatch: 128, QueryOverhead: 50 * time.Microsecond, Parallelism: 4, Jitter: 0.05},
		{Name: "dc-gpu-g3", Arch: GPU, Framework: "TensorFlow", Category: "rdo",
			PeakGOPS: 40000, MinUtilization: 0.12, MaxBatch: 128, QueryOverhead: 80 * time.Microsecond, Parallelism: 8, Jitter: 0.1},
	}
}

// FindPlatform returns the named platform from the catalogue.
func FindPlatform(name string) (Platform, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("simhw: platform %q not in catalogue", name)
}

// StandardWorkloads returns the per-model workload descriptions used by the
// experiments. OpsPerSample follows Table I (8.2 GOPs for ResNet-50, 1.138
// for MobileNet, 433 for SSD-ResNet-34, 2.47 for SSD-MobileNet); GNMT's
// per-sentence cost is an estimate, and it carries high variability plus
// padding waste reflecting variable-length input (Section VI-B attributes
// NMT's larger server-scenario degradation to exactly that).
func StandardWorkloads() map[string]Workload {
	return map[string]Workload{
		"resnet50-v1.5":    {Name: "resnet50-v1.5", OpsPerSample: 8_200_000_000, Variability: 0.02, Efficiency: 1.0},
		"mobilenet-v1":     {Name: "mobilenet-v1", OpsPerSample: 1_138_000_000, Variability: 0.02, Efficiency: 0.55},
		"ssd-resnet34":     {Name: "ssd-resnet34", OpsPerSample: 433_000_000_000, Variability: 0.03, Efficiency: 0.95},
		"ssd-mobilenet-v1": {Name: "ssd-mobilenet-v1", OpsPerSample: 2_470_000_000, Variability: 0.03, Efficiency: 0.35},
		"gnmt":             {Name: "gnmt", OpsPerSample: 15_000_000_000, Variability: 0.25, PaddingWaste: 0.8, Efficiency: 0.6},
	}
}
