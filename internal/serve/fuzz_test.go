package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"runtime"
	"strings"
	"testing"
	"time"

	"mlperf/internal/metrics"
	"mlperf/internal/payload"
	"mlperf/internal/trace"
)

// frameBytes builds one raw frame for corpus seeding, bypassing the writers
// so malformed lengths and bodies can be fabricated.
func frameBytes(msgType byte, body []byte) []byte {
	out := make([]byte, 5+len(body))
	binary.BigEndian.PutUint32(out[:4], uint32(len(body)))
	out[4] = msgType
	copy(out[5:], body)
	return out
}

// decodeServerStream mirrors serveConn's parsing: it reads frames off the
// stream and runs each through the same decoders the server uses, until the
// stream errors out. It is the fuzz target's server half.
func decodeServerStream(data []byte) {
	r := bufio.NewReader(bytes.NewReader(data))
	for {
		msgType, body, err := readFrame(r)
		if err != nil {
			return
		}
		switch msgType {
		case MsgPredict:
			_, _ = decodePredictRequest(body)
		case MsgPredictModel:
			if _, tail, err := splitModelID(body); err == nil {
				_, _ = decodePredictRequest(tail)
			}
		case MsgFlush, MsgReopen:
			// bodyless controls
		case MsgFlushModel, MsgReopenModel:
			_, _, _ = splitModelID(body)
		case MsgMetrics:
			_, _, _ = decodeIDPrefix(body)
		case MsgMetricsModel:
			if len(body) >= 8 {
				_, _, _ = splitModelID(body[8:])
			}
		case MsgProbe:
			_, _, _ = decodeIDPrefix(body)
		case MsgPredictTraced:
			_, _ = decodePredictTracedRequest(body)
		default:
			return
		}
	}
}

// decodeClientStream is the fuzz target's client half: the same bytes read as
// server → client frames through backend.Remote's entry point, with predict
// payloads pushed on through the codec decoders the way accuracy mode does.
func decodeClientStream(data []byte) {
	r := bufio.NewReader(bytes.NewReader(data))
	for {
		frame, err := ReadClientFrame(r)
		if err != nil {
			return
		}
		if frame.Type == MsgPredict || frame.Type == MsgPredictTraced {
			_, _ = payload.DecodeClass(frame.Predict.Data)
			_, _ = payload.DecodeBoxes(frame.Predict.Data)
			_, _ = payload.DecodeTokens(frame.Predict.Data)
		}
		frame.Release()
	}
}

// FuzzDecodeFrame throws arbitrary byte streams at both frame-decoding paths:
// truncated frames, oversized length prefixes, unknown types and model-id
// edge cases must all error out cleanly — never panic, hang or allocate
// proportionally to a lying length prefix.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed V1 and V2 frames, as the writers emit them.
	var buf bytes.Buffer
	_ = WritePredictRequest(&buf, PredictRequest{ID: 7, SampleIndex: 3, Deadline: time.Unix(0, 99)})
	f.Add(append([]byte(nil), buf.Bytes()...))
	buf.Reset()
	_ = WritePredictRequest(&buf, PredictRequest{ID: 9, SampleIndex: 1, Model: "resnet"})
	f.Add(append([]byte(nil), buf.Bytes()...))
	buf.Reset()
	_ = WriteControl(&buf, MsgFlush)
	_ = WriteControlModel(&buf, MsgReopen, "gnmt")
	_ = WriteMetricsRequest(&buf, 1)
	_ = WriteMetricsRequestModel(&buf, 2, "mobilenet")
	f.Add(append([]byte(nil), buf.Bytes()...))
	buf.Reset()
	_ = WriteProbeRequest(&buf, 3)
	f.Add(append([]byte(nil), buf.Bytes()...))
	// V3 traced frames, both directions, plus malformed variants: zero trace
	// id, truncated span block, unknown span flag.
	buf.Reset()
	_ = WritePredictRequest(&buf, PredictRequest{ID: 11, SampleIndex: 2, Model: "resnet", TraceID: 77})
	f.Add(append([]byte(nil), buf.Bytes()...))
	f.Add(frameBytes(MsgPredictTraced, encodePredictTracedResponse(12, StatusOK,
		&trace.WireSpans{RecvUnixNano: 5, Admit: 1, Queue: 2, Assembly: 3, Service: 4, Encode: 5}, []byte("payload"))))
	f.Add(frameBytes(MsgPredictTraced, encodePredictTracedResponse(13, StatusOK, nil, []byte("p"))))
	f.Add(frameBytes(MsgPredictTraced, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}))
	f.Add(frameBytes(MsgPredictTraced, []byte{0, 0, 0, 0, 0, 0, 0, 13, 0, 1, 9}))
	f.Add(frameBytes(MsgPredictTraced, []byte{0, 0, 0, 0, 0, 0, 0, 13, 0, 7}))
	// Server → client frames.
	f.Add(frameBytes(MsgPredict, encodePredictResponse(42, StatusOK, []byte("payload"))))
	f.Add(frameBytes(MsgMetrics, encodeIDPrefix(5, []byte(`{"completed":1}`))))
	// Binary-codec payloads inside predict responses: well-formed class/boxes/
	// tokens bytes, a truncated box record, token and box counts lying far past
	// the body, a bare version byte, and an unknown payload kind.
	f.Add(frameBytes(MsgPredict, encodePredictResponse(43, StatusOK, payload.AppendClass(nil, 7))))
	f.Add(frameBytes(MsgPredict, encodePredictResponse(44, StatusOK, payload.AppendTokens(nil, []int{4, 8, 15}))))
	f.Add(frameBytes(MsgPredict, encodePredictResponse(45, StatusOK,
		payload.AppendBoxes(nil, []metrics.Box{{X1: 1, Y1: 2, X2: 3, Y2: 4, Class: 5, Score: 0.5}}))))
	f.Add(frameBytes(MsgPredict, encodePredictResponse(46, StatusOK, []byte{payload.BinaryVersion, 0x02, 0x01, 0x00})))
	f.Add(frameBytes(MsgPredict, encodePredictResponse(47, StatusOK, []byte{payload.BinaryVersion, 0x03, 0xff, 0xff, 0xff, 0xff, 0x0f})))
	f.Add(frameBytes(MsgPredict, encodePredictResponse(48, StatusOK, []byte{payload.BinaryVersion, 0x02, 0xff, 0xff, 0xff, 0xff, 0x0f})))
	f.Add(frameBytes(MsgPredict, encodePredictResponse(49, StatusOK, []byte{payload.BinaryVersion})))
	f.Add(frameBytes(MsgPredict, encodePredictResponse(50, StatusOK, []byte{payload.BinaryVersion, 0x7f, 0x00})))
	// Probe edge cases: well-formed ready and draining verdicts, a truncated
	// body (8 bytes, no readiness byte), an oversized body, and an unknown
	// readiness value.
	f.Add(frameBytes(MsgProbe, encodeProbeResponse(6, ProbeReady)))
	f.Add(frameBytes(MsgProbe, encodeProbeResponse(7, ProbeDraining)))
	f.Add(frameBytes(MsgProbe, encodeIDPrefix(8, nil)))
	f.Add(frameBytes(MsgProbe, encodeIDPrefix(9, []byte{1, 2})))
	f.Add(frameBytes(MsgProbe, encodeProbeResponse(10, 0xfe)))
	f.Add(frameBytes(MsgProbe, nil))
	// Malformed: truncated header, truncated body, oversized length prefix,
	// unknown type, model-id length pointing past the body, zero-length body
	// for typed frames, and a max-length model id.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 20, MsgPredict, 1, 2, 3})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, MsgPredict})
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, MsgPredictModel, 9})
	f.Add(frameBytes(99, []byte{1, 2, 3}))
	f.Add(frameBytes(MsgPredictModel, []byte{255, 'a', 'b'}))
	f.Add(frameBytes(MsgPredictModel, []byte{0}))
	f.Add(frameBytes(MsgFlushModel, nil))
	f.Add(frameBytes(MsgMetricsModel, []byte{0, 0, 0, 0, 0, 0, 0, 1}))
	longID := strings.Repeat("m", 255)
	body, _ := appendModelID(nil, longID)
	f.Add(frameBytes(MsgFlushModel, body))

	f.Fuzz(func(t *testing.T, data []byte) {
		decodeServerStream(data)
		decodeClientStream(data)
	})
}

// TestReadFrameDoesNotOverAllocate pins the incremental body read: a header
// claiming a maximal 16 MiB frame on a stream that carries almost nothing
// must not allocate anywhere near the claimed size.
func TestReadFrameDoesNotOverAllocate(t *testing.T) {
	lying := frameBytes(MsgPredict, nil)
	binary.BigEndian.PutUint32(lying[:4], maxFrameBytes) // claims 16 MiB, carries 0

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 8; i++ {
		if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(lying))); err == nil {
			t.Fatal("truncated 16 MiB frame decoded without error")
		}
	}
	runtime.ReadMemStats(&after)
	// 8 failed reads at one 64 KiB chunk each stay well under 2 MiB even
	// with test-harness noise; the old readFrame would have allocated 128 MiB.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 2<<20 {
		t.Errorf("8 truncated reads allocated %d bytes — length prefix is trusted too much", grew)
	}
}

// TestModelIDEdgeCases pins the model-id codec's boundaries.
func TestModelIDEdgeCases(t *testing.T) {
	if _, err := appendModelID(nil, strings.Repeat("x", 256)); err == nil {
		t.Error("256-byte model id encoded without error")
	}
	body, err := appendModelID(nil, strings.Repeat("x", 255))
	if err != nil {
		t.Fatal(err)
	}
	id, rest, err := splitModelID(body)
	if err != nil || len(id) != 255 || len(rest) != 0 {
		t.Errorf("255-byte model id round trip: id %d bytes, rest %d, err %v", len(id), len(rest), err)
	}
	if _, _, err := splitModelID(nil); err == nil {
		t.Error("empty body split without error")
	}
	if _, _, err := splitModelID([]byte{5, 'a'}); err == nil {
		t.Error("model id longer than its body split without error")
	}
	id, rest, err = splitModelID([]byte{0, 1, 2})
	if err != nil || id != "" || len(rest) != 2 {
		t.Errorf("empty model id: %q, rest %d, err %v", id, len(rest), err)
	}
	if err := WritePredictRequest(&bytes.Buffer{}, PredictRequest{Model: strings.Repeat("x", 256)}); err == nil {
		t.Error("oversized model id written without error")
	}
}
