package serve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mlperf/internal/tensor"
	"mlperf/internal/trace"
)

// Prometheus text-format exposition (version 0.0.4) of the serving metrics.
//
// The scrape endpoint renders exactly the numbers the wire-protocol metrics
// frames return and audit.CheckServing reconciles — one family per Snapshot
// field, labeled by hosted model — so an external scraper, the driving
// client and the conformance audit all read the same counters. Counters use
// *_total names, the dispatched-batch-size histogram follows the Prometheus
// histogram convention (cumulative le buckets plus a _count), latency
// percentiles are exposed as summary families with quantile labels, and
// every applied resize is visible both as a counter (resize_events_total)
// and as the current workers/queue_limit/max_batch gauges it moved. Go
// runtime health families (heap, GC pauses, goroutines) and — when tracing
// is enabled — the per-stage trace histograms ride the same scrape.

// scrapeServer is the optional HTTP listener behind Config.MetricsAddr.
type scrapeServer struct {
	ln  net.Listener
	srv *http.Server

	mu    sync.Mutex
	extra []func(io.Writer)
}

func newScrapeServer(addr string, s *Server, enablePprof bool) (*scrapeServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: binding metrics endpoint on %s: %w", addr, err)
	}
	sc := &scrapeServer{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w)
		sc.mu.Lock()
		var extra []func(io.Writer)
		extra = append(extra, sc.extra...)
		sc.mu.Unlock()
		for _, f := range extra {
			f(w)
		}
	})
	if s.tracer != nil {
		// A Chrome trace-event dump of the retained records; save the body
		// and open it in Perfetto (or chrome://tracing) directly.
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = trace.WriteChrome(w, s.tracer.Records())
		})
	}
	if enablePprof {
		// The stdlib handlers, mounted explicitly: this mux is private, so
		// importing net/http/pprof for its DefaultServeMux side effect would
		// register nothing reachable.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	sc.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go sc.srv.Serve(ln)
	return sc, nil
}

func (sc *scrapeServer) addr() string { return sc.ln.Addr().String() }

func (sc *scrapeServer) register(f func(io.Writer)) {
	sc.mu.Lock()
	sc.extra = append(sc.extra, f)
	sc.mu.Unlock()
}

func (sc *scrapeServer) close() { sc.srv.Close() }

// WritePrometheus renders every hosted model's current snapshot in the
// Prometheus text format. The default (unnamed) model is labeled
// model="default" so the label is never empty.
func (s *Server) WritePrometheus(w io.Writer) {
	snaps := make([]Snapshot, len(s.hostList))
	labels := make([]string, len(s.hostList))
	for i, h := range s.hostList {
		snaps[i] = h.snapshot()
		labels[i] = promModelLabel(h.cfg.Name)
	}
	draining := 0.0
	if s.Draining() {
		draining = 1
	}
	WriteSnapshotsPrometheus(w, labels, snaps)
	promFamily(w, "mlperf_serve_draining", "gauge", "1 while the server is draining or shut down.")
	fmt.Fprintf(w, "mlperf_serve_draining %g\n", draining)
	WriteKernelPrometheus(w, tensor.CurrentKernelConfig())
	WriteBufferPoolPrometheus(w)
	WriteRuntimePrometheus(w)
	s.tracer.WritePrometheus(w)
}

// WriteBufferPoolPrometheus renders the size-classed wire-buffer pool
// counters. Process-level: client and server share the pools. A healthy
// steady state shows gets/puts climbing together while misses and oversized
// stay flat — that is the scrapeable form of the zero-allocation claim.
func WriteBufferPoolPrometheus(w io.Writer) {
	st := ReadBufferPoolStats()
	promFamily(w, "mlperf_bufpool_gets_total", "counter",
		"Wire buffers acquired from the size-classed pools.")
	fmt.Fprintf(w, "mlperf_bufpool_gets_total %d\n", st.Gets)
	promFamily(w, "mlperf_bufpool_puts_total", "counter",
		"Wire buffers released back into the pools.")
	fmt.Fprintf(w, "mlperf_bufpool_puts_total %d\n", st.Puts)
	promFamily(w, "mlperf_bufpool_misses_total", "counter",
		"Acquires that allocated because the class pool was empty.")
	fmt.Fprintf(w, "mlperf_bufpool_misses_total %d\n", st.Misses)
	promFamily(w, "mlperf_bufpool_oversized_total", "counter",
		"Acquires larger than the largest class, served outside the pool.")
	fmt.Fprintf(w, "mlperf_bufpool_oversized_total %d\n", st.Oversized)
}

// WriteRuntimePrometheus renders Go runtime health families: live heap
// bytes, cumulative GC pause time as a quantile-less summary (sum + count,
// so rate() yields mean pause), and the goroutine count. Process-level,
// like the kernel families.
func WriteRuntimePrometheus(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	promFamily(w, "mlperf_runtime_heap_bytes", "gauge",
		"Live heap bytes (runtime.MemStats.HeapAlloc).")
	fmt.Fprintf(w, "mlperf_runtime_heap_bytes %d\n", ms.HeapAlloc)
	promFamily(w, "mlperf_runtime_gc_pause_seconds", "summary",
		"Cumulative stop-the-world GC pause time and collection count.")
	fmt.Fprintf(w, "mlperf_runtime_gc_pause_seconds_sum %s\n", promFloat(float64(ms.PauseTotalNs)/1e9))
	fmt.Fprintf(w, "mlperf_runtime_gc_pause_seconds_count %d\n", ms.NumGC)
	promFamily(w, "mlperf_runtime_goroutines", "gauge",
		"Goroutines alive at scrape time.")
	fmt.Fprintf(w, "mlperf_runtime_goroutines %d\n", runtime.NumGoroutine())
}

// WriteKernelPrometheus renders the process's compute-kernel configuration:
// the active SIMD dispatch tier as an info-style gauge (the tier rides in the
// simd label; the value is always 1) and the live tuning-knob values. The
// families are process-level, not per-model — every hosted model runs the
// same kernels.
func WriteKernelPrometheus(w io.Writer, kc tensor.KernelConfig) {
	promFamily(w, "mlperf_kernel_info", "gauge",
		"Active SIMD kernel dispatch tier (in the simd label; value is always 1).")
	fmt.Fprintf(w, "mlperf_kernel_info{simd=%s} 1\n", promQuote(kc.SIMD))
	promFamily(w, "mlperf_kernel_flop_threshold", "gauge",
		"Live parallel-dispatch GEMM threshold in multiply-accumulates.")
	fmt.Fprintf(w, "mlperf_kernel_flop_threshold %d\n", kc.FlopThreshold)
	promFamily(w, "mlperf_kernel_panel_bytes", "gauge",
		"Live GEMM column-panel cache budget in bytes.")
	fmt.Fprintf(w, "mlperf_kernel_panel_bytes %d\n", kc.PanelBytes)
	calibrated := 0
	if kc.Calibrated {
		calibrated = 1
	}
	promFamily(w, "mlperf_kernel_calibrated", "gauge",
		"1 when a measurement-driven calibration set the kernel knobs.")
	fmt.Fprintf(w, "mlperf_kernel_calibrated %d\n", calibrated)
}

// promModelLabel maps a hosted model id to its scrape label value.
func promModelLabel(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// WriteSnapshotsPrometheus renders a set of labeled snapshots in the
// Prometheus text format, one family at a time (a family's # HELP/# TYPE
// header appears once, followed by every model's sample). It is exported so
// CLIs can expose snapshots they fetched over the wire.
func WriteSnapshotsPrometheus(w io.Writer, models []string, snaps []Snapshot) {
	counter := func(name, help string, value func(Snapshot) uint64) {
		promFamily(w, name, "counter", help)
		for i, s := range snaps {
			fmt.Fprintf(w, "%s{model=%s} %d\n", name, promQuote(models[i]), value(s))
		}
	}
	gauge := func(name, help string, value func(Snapshot) float64) {
		promFamily(w, name, "gauge", help)
		for i, s := range snaps {
			fmt.Fprintf(w, "%s{model=%s} %s\n", name, promQuote(models[i]), promFloat(value(s)))
		}
	}

	counter("mlperf_serve_admitted_total", "Requests accepted into the admission queue.",
		func(s Snapshot) uint64 { return s.Admitted })
	counter("mlperf_serve_completed_total", "Requests served to completion.",
		func(s Snapshot) uint64 { return s.Completed })
	counter("mlperf_serve_rejected_total", "Arrivals turned away by admission control.",
		func(s Snapshot) uint64 { return s.Rejected })
	counter("mlperf_serve_shed_total", "Admitted requests evicted by the shed-oldest policy.",
		func(s Snapshot) uint64 { return s.Shed })
	counter("mlperf_serve_expired_total", "Requests whose deadline passed while queued.",
		func(s Snapshot) uint64 { return s.Expired })
	counter("mlperf_serve_errors_total", "Requests that failed to load, infer or encode.",
		func(s Snapshot) uint64 { return s.Errors })
	counter("mlperf_serve_flushes_total", "End-of-series flushes observed.",
		func(s Snapshot) uint64 { return s.Flushes })
	counter("mlperf_serve_resize_events_total", "Live-limit changes applied so far.",
		func(s Snapshot) uint64 { return uint64(len(s.Resizes)) })

	gauge("mlperf_serve_queue_depth", "Admission queue population at scrape time.",
		func(s Snapshot) float64 { return float64(s.QueueDepth) })
	gauge("mlperf_serve_queue_limit", "Live admission queue bound.",
		func(s Snapshot) float64 { return float64(s.QueueLimit) })
	gauge("mlperf_serve_workers", "Live inference worker-pool size.",
		func(s Snapshot) float64 { return float64(s.Workers) })
	gauge("mlperf_serve_max_batch", "Live dynamic-batch cap.",
		func(s Snapshot) float64 { return float64(s.MaxBatch) })

	promFamily(w, "mlperf_serve_queue_latency_seconds", "summary",
		"Recent queue-latency quantiles (window of recent requests).")
	for i, s := range snaps {
		promQuantile(w, "mlperf_serve_queue_latency_seconds", models[i], "0.5", s.QueueP50)
		promQuantile(w, "mlperf_serve_queue_latency_seconds", models[i], "0.99", s.QueueP99)
	}
	promFamily(w, "mlperf_serve_service_latency_seconds", "summary",
		"Recent service-latency quantiles (window of recent requests).")
	for i, s := range snaps {
		promQuantile(w, "mlperf_serve_service_latency_seconds", models[i], "0.5", s.ServiceP50)
		promQuantile(w, "mlperf_serve_service_latency_seconds", models[i], "0.99", s.ServiceP99)
	}

	promFamily(w, "mlperf_serve_batch_size", "histogram", "Dispatched batch sizes.")
	for i, s := range snaps {
		var cum uint64
		for _, b := range s.BatchHistogram {
			cum += b.Count
			le := "+Inf"
			if b.Le > 0 {
				le = strconv.Itoa(b.Le)
			}
			fmt.Fprintf(w, "mlperf_serve_batch_size_bucket{model=%s,le=%q} %d\n",
				promQuote(models[i]), le, cum)
		}
		fmt.Fprintf(w, "mlperf_serve_batch_size_count{model=%s} %d\n", promQuote(models[i]), cum)
	}
}

// WriteResizesPrometheus renders resize events as per-resource decision
// counters and last-applied-value gauges, so a scraper that cannot ingest the
// JSON event list still sees each capacity decision's direction and landing
// point.
func WriteResizesPrometheus(w io.Writer, prefix string, events []ResizeEvent) {
	type key struct{ model, resource string }
	counts := make(map[key]int)
	last := make(map[key]int)
	var keys []key
	for _, e := range events {
		k := key{promModelLabel(e.Model), e.Resource}
		if counts[k] == 0 {
			keys = append(keys, k)
		}
		counts[k]++
		last[k] = e.To
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].model != keys[j].model {
			return keys[i].model < keys[j].model
		}
		return keys[i].resource < keys[j].resource
	})
	promFamily(w, prefix+"_resizes_total", "counter", "Resize decisions applied, by resource.")
	for _, k := range keys {
		fmt.Fprintf(w, "%s_resizes_total{model=%s,resource=%q} %d\n",
			prefix, promQuote(k.model), k.resource, counts[k])
	}
	promFamily(w, prefix+"_resize_last", "gauge", "Last applied value per resized resource.")
	for _, k := range keys {
		fmt.Fprintf(w, "%s_resize_last{model=%s,resource=%q} %d\n",
			prefix, promQuote(k.model), k.resource, last[k])
	}
}

// promFamily writes one metric family's HELP/TYPE header.
func promFamily(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promQuantile writes one summary-style quantile sample.
func promQuantile(w io.Writer, name, model, q string, d time.Duration) {
	fmt.Fprintf(w, "%s{model=%s,quantile=%q} %s\n", name, promQuote(model), q, promFloat(d.Seconds()))
}

// promQuote quotes a label value, escaping backslashes, quotes and newlines
// per the exposition format.
func promQuote(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return `"` + r.Replace(v) + `"`
}

// promFloat formats a sample value (shortest round-trip representation).
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
