package nn

import (
	"fmt"
	"math"

	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

// Conv is a 2-D convolution layer over CHW inputs with optional fused ReLU.
type Conv struct {
	name    string
	Weights *tensor.Tensor // OIHW
	Bias    *tensor.Tensor // O
	Stride  int
	Padding int
	Relu    bool
	Relu6   bool
}

// NewConv constructs a convolution layer with weights initialized from rng
// (He-style scaling keeps activations well ranged through deep stacks).
func NewConv(name string, inC, outC, kernel, stride, padding int, rng *stats.RNG) *Conv {
	w := tensor.MustNew(outC, inC, kernel, kernel)
	fanIn := float64(inC * kernel * kernel)
	initHe(w, fanIn, rng)
	b := tensor.MustNew(outC)
	return &Conv{name: name, Weights: w, Bias: b, Stride: stride, Padding: padding, Relu: true}
}

// Name implements Layer.
func (c *Conv) Name() string { return c.name }

// Forward implements Layer.
func (c *Conv) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := tensor.Conv2D(x, c.Weights, c.Bias, tensor.Conv2DOptions{Stride: c.Stride, Padding: c.Padding})
	if err != nil {
		return nil, err
	}
	if c.Relu6 {
		return tensor.ReLU6(out), nil
	}
	if c.Relu {
		return tensor.ReLU(out), nil
	}
	return out, nil
}

// ForwardScratch implements ScratchLayer: the output and the im2col buffer
// come from the arena. The output geometry is computed inline (duplicating
// OutputShape) because OutputShape's []int round-trip would allocate on the
// hot path; tensor.Conv2DInto re-validates the same arithmetic, so a drift
// between the two copies fails loudly with a dst-shape error.
func (c *Conv) ForwardScratch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 3 {
		return nil, fmt.Errorf("conv %s: want CHW input, got %v", c.name, x.Shape())
	}
	if c.Stride <= 0 {
		return nil, fmt.Errorf("conv %s: stride must be positive, got %d", c.name, c.Stride)
	}
	h := (x.Dim(1)+2*c.Padding-c.Weights.Dim(2))/c.Stride + 1
	w := (x.Dim(2)+2*c.Padding-c.Weights.Dim(3))/c.Stride + 1
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("conv %s: empty output for input %v", c.name, x.Shape())
	}
	out := s.Tensor(c.Weights.Dim(0), h, w)
	if err := tensor.Conv2DInto(out, x, c.Weights, c.Bias, tensor.Conv2DOptions{Stride: c.Stride, Padding: c.Padding}, s); err != nil {
		return nil, err
	}
	if c.Relu6 {
		return tensor.ReLU6(out), nil
	}
	if c.Relu {
		return tensor.ReLU(out), nil
	}
	return out, nil
}

// OutputShape implements Layer.
func (c *Conv) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("conv %s: want CHW input, got %v", c.name, in)
	}
	ws := c.Weights.Shape()
	if in[0] != ws[1] {
		return nil, fmt.Errorf("conv %s: input channels %d != kernel channels %d", c.name, in[0], ws[1])
	}
	h := (in[1]+2*c.Padding-ws[2])/c.Stride + 1
	w := (in[2]+2*c.Padding-ws[3])/c.Stride + 1
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("conv %s: empty output for input %v", c.name, in)
	}
	return []int{ws[0], h, w}, nil
}

// ParamCount implements Layer.
func (c *Conv) ParamCount() int64 { return int64(c.Weights.Len() + c.Bias.Len()) }

// Ops implements Layer: 2 * kernel volume MACs per output element.
func (c *Conv) Ops(in []int) (int64, error) {
	out, err := c.OutputShape(in)
	if err != nil {
		return 0, err
	}
	ws := c.Weights.Shape()
	perOut := int64(2 * ws[1] * ws[2] * ws[3])
	return perOut * int64(out[0]) * int64(out[1]) * int64(out[2]), nil
}

// DepthwiseConv is a depthwise 2-D convolution (one kernel per channel) with
// fused ReLU6, as used in the MobileNet family.
type DepthwiseConv struct {
	name    string
	Weights *tensor.Tensor // CHW kernels
	Bias    *tensor.Tensor
	Stride  int
	Padding int
}

// NewDepthwiseConv constructs a depthwise convolution layer.
func NewDepthwiseConv(name string, channels, kernel, stride, padding int, rng *stats.RNG) *DepthwiseConv {
	w := tensor.MustNew(channels, kernel, kernel)
	initHe(w, float64(kernel*kernel), rng)
	return &DepthwiseConv{name: name, Weights: w, Bias: tensor.MustNew(channels), Stride: stride, Padding: padding}
}

// Name implements Layer.
func (d *DepthwiseConv) Name() string { return d.name }

// Forward implements Layer.
func (d *DepthwiseConv) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := tensor.DepthwiseConv2D(x, d.Weights, d.Bias, tensor.Conv2DOptions{Stride: d.Stride, Padding: d.Padding})
	if err != nil {
		return nil, err
	}
	return tensor.ReLU6(out), nil
}

// ForwardScratch implements ScratchLayer.
func (d *DepthwiseConv) ForwardScratch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 3 {
		return nil, fmt.Errorf("dwconv %s: want CHW input, got %v", d.name, x.Shape())
	}
	if d.Stride <= 0 {
		return nil, fmt.Errorf("dwconv %s: stride must be positive, got %d", d.name, d.Stride)
	}
	h := (x.Dim(1)+2*d.Padding-d.Weights.Dim(1))/d.Stride + 1
	w := (x.Dim(2)+2*d.Padding-d.Weights.Dim(2))/d.Stride + 1
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("dwconv %s: empty output for input %v", d.name, x.Shape())
	}
	out := s.Tensor(x.Dim(0), h, w)
	if err := tensor.DepthwiseConv2DInto(out, x, d.Weights, d.Bias, tensor.Conv2DOptions{Stride: d.Stride, Padding: d.Padding}); err != nil {
		return nil, err
	}
	return tensor.ReLU6(out), nil
}

// OutputShape implements Layer.
func (d *DepthwiseConv) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("dwconv %s: want CHW input, got %v", d.name, in)
	}
	ws := d.Weights.Shape()
	if in[0] != ws[0] {
		return nil, fmt.Errorf("dwconv %s: channel mismatch %d vs %d", d.name, in[0], ws[0])
	}
	h := (in[1]+2*d.Padding-ws[1])/d.Stride + 1
	w := (in[2]+2*d.Padding-ws[2])/d.Stride + 1
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("dwconv %s: empty output for input %v", d.name, in)
	}
	return []int{in[0], h, w}, nil
}

// ParamCount implements Layer.
func (d *DepthwiseConv) ParamCount() int64 { return int64(d.Weights.Len() + d.Bias.Len()) }

// Ops implements Layer.
func (d *DepthwiseConv) Ops(in []int) (int64, error) {
	out, err := d.OutputShape(in)
	if err != nil {
		return 0, err
	}
	ws := d.Weights.Shape()
	perOut := int64(2 * ws[1] * ws[2])
	return perOut * int64(out[0]) * int64(out[1]) * int64(out[2]), nil
}

// Dense is a fully connected layer on 1-D inputs with optional fused ReLU.
type Dense struct {
	name    string
	Weights *tensor.Tensor // out × in
	Bias    *tensor.Tensor // out
	Relu    bool
}

// NewDense constructs a fully connected layer.
func NewDense(name string, in, out int, relu bool, rng *stats.RNG) *Dense {
	w := tensor.MustNew(out, in)
	initHe(w, float64(in), rng)
	return &Dense{name: name, Weights: w, Bias: tensor.MustNew(out), Relu: relu}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 1 {
		return nil, fmt.Errorf("dense %s: want rank-1 input, got %v", d.name, x.Shape())
	}
	y, err := tensor.MatVec(d.Weights, x)
	if err != nil {
		return nil, err
	}
	if err := y.Add(d.Bias); err != nil {
		return nil, err
	}
	if d.Relu {
		return tensor.ReLU(y), nil
	}
	return y, nil
}

// ForwardScratch implements ScratchLayer.
func (d *Dense) ForwardScratch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 1 {
		return nil, fmt.Errorf("dense %s: want rank-1 input, got %v", d.name, x.Shape())
	}
	y := s.Tensor(d.Weights.Dim(0))
	if err := tensor.MatVecInto(y, d.Weights, x); err != nil {
		return nil, err
	}
	if err := y.Add(d.Bias); err != nil {
		return nil, err
	}
	if d.Relu {
		return tensor.ReLU(y), nil
	}
	return y, nil
}

// OutputShape implements Layer.
func (d *Dense) OutputShape(in []int) ([]int, error) {
	ws := d.Weights.Shape()
	if len(in) != 1 || in[0] != ws[1] {
		return nil, fmt.Errorf("dense %s: want input [%d], got %v", d.name, ws[1], in)
	}
	return []int{ws[0]}, nil
}

// ParamCount implements Layer.
func (d *Dense) ParamCount() int64 { return int64(d.Weights.Len() + d.Bias.Len()) }

// Ops implements Layer.
func (d *Dense) Ops(in []int) (int64, error) {
	if _, err := d.OutputShape(in); err != nil {
		return 0, err
	}
	return 2 * int64(d.Weights.Len()), nil
}

// MaxPool is a max-pooling layer on CHW inputs.
type MaxPool struct {
	name   string
	Window int
	Stride int
}

// NewMaxPool constructs a max-pooling layer.
func NewMaxPool(name string, window, stride int) *MaxPool {
	return &MaxPool{name: name, Window: window, Stride: stride}
}

// Name implements Layer.
func (m *MaxPool) Name() string { return m.name }

// Forward implements Layer.
func (m *MaxPool) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.MaxPool2D(x, m.Window, m.Stride)
}

// ForwardScratch implements ScratchLayer.
func (m *MaxPool) ForwardScratch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 3 {
		return nil, fmt.Errorf("maxpool %s: want CHW input, got %v", m.name, x.Shape())
	}
	if m.Stride <= 0 || m.Window <= 0 {
		return nil, fmt.Errorf("maxpool %s: window and stride must be positive", m.name)
	}
	h := (x.Dim(1)-m.Window)/m.Stride + 1
	w := (x.Dim(2)-m.Window)/m.Stride + 1
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("maxpool %s: empty output for input %v", m.name, x.Shape())
	}
	out := s.Tensor(x.Dim(0), h, w)
	if err := tensor.MaxPool2DInto(out, x, m.Window, m.Stride); err != nil {
		return nil, err
	}
	return out, nil
}

// OutputShape implements Layer.
func (m *MaxPool) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("maxpool %s: want CHW input, got %v", m.name, in)
	}
	h := (in[1]-m.Window)/m.Stride + 1
	w := (in[2]-m.Window)/m.Stride + 1
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("maxpool %s: empty output for input %v", m.name, in)
	}
	return []int{in[0], h, w}, nil
}

// ParamCount implements Layer.
func (m *MaxPool) ParamCount() int64 { return 0 }

// Ops implements Layer.
func (m *MaxPool) Ops(in []int) (int64, error) {
	out, err := m.OutputShape(in)
	if err != nil {
		return 0, err
	}
	return int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(m.Window*m.Window), nil
}

// GlobalAvgPool reduces CHW to a C-length vector.
type GlobalAvgPool struct{ name string }

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.GlobalAvgPool2D(x)
}

// ForwardScratch implements ScratchLayer.
func (g *GlobalAvgPool) ForwardScratch(x *tensor.Tensor, s *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 3 {
		return nil, fmt.Errorf("gap %s: want CHW input, got %v", g.name, x.Shape())
	}
	out := s.Tensor(x.Dim(0))
	if err := tensor.GlobalAvgPool2DInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// OutputShape implements Layer.
func (g *GlobalAvgPool) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("gap %s: want CHW input, got %v", g.name, in)
	}
	return []int{in[0]}, nil
}

// ParamCount implements Layer.
func (g *GlobalAvgPool) ParamCount() int64 { return 0 }

// Ops implements Layer.
func (g *GlobalAvgPool) Ops(in []int) (int64, error) {
	if len(in) != 3 {
		return 0, fmt.Errorf("gap %s: want CHW input, got %v", g.name, in)
	}
	return int64(in[0]) * int64(in[1]) * int64(in[2]), nil
}

// Softmax converts logits to probabilities.
type Softmax struct{ name string }

// NewSoftmax constructs a softmax layer.
func NewSoftmax(name string) *Softmax { return &Softmax{name: name} }

// Name implements Layer.
func (s *Softmax) Name() string { return s.name }

// Forward implements Layer.
func (s *Softmax) Forward(x *tensor.Tensor) (*tensor.Tensor, error) { return tensor.Softmax(x) }

// ForwardScratch implements ScratchLayer.
func (s *Softmax) ForwardScratch(x *tensor.Tensor, sc *tensor.Scratch) (*tensor.Tensor, error) {
	if x.Rank() != 1 {
		return nil, fmt.Errorf("softmax %s: want rank-1 input, got %v", s.name, x.Shape())
	}
	out := sc.Tensor(x.Dim(0))
	if err := tensor.SoftmaxInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// OutputShape implements Layer.
func (s *Softmax) OutputShape(in []int) ([]int, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("softmax %s: want rank-1 input, got %v", s.name, in)
	}
	return in, nil
}

// ParamCount implements Layer.
func (s *Softmax) ParamCount() int64 { return 0 }

// Ops implements Layer.
func (s *Softmax) Ops(in []int) (int64, error) {
	if len(in) != 1 {
		return 0, fmt.Errorf("softmax %s: want rank-1 input", s.name)
	}
	return 3 * int64(in[0]), nil
}

// initHe fills t with values from a scaled normal distribution
// (He initialization) so deep stacks neither saturate nor vanish.
func initHe(t *tensor.Tensor, fanIn float64, rng *stats.RNG) {
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	scale := float32(1.0)
	if fanIn > 0 {
		scale = float32(math.Sqrt(2 / fanIn))
	}
	data := t.Data()
	for i := range data {
		data[i] = float32(rng.NormFloat64()) * scale
	}
}
