package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(4)
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, grain := range []int{0, 1, 3, 64, 2000} {
			seen := make([]int32, n)
			p.For(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("For(%d, %d): bad chunk [%d, %d)", n, grain, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("For(%d, %d): index %d visited %d times", n, grain, i, c)
				}
			}
		}
	}
}

func TestForNestedDoesNotDeadlock(t *testing.T) {
	p := NewPool(4)
	var total atomic.Int64
	p.For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.For(16, 1, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested For processed %d inner indices, want %d", got, 8*16)
	}
}

func TestSingleWorkerPoolRunsInline(t *testing.T) {
	p := NewPool(1)
	var order []int
	p.For(10, 3, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("inline execution out of order at %d: %v", i, order)
		}
	}
}

func TestDefaultPoolAvailable(t *testing.T) {
	if Default().Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	var sum atomic.Int64
	For(100, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if got := sum.Load(); got != 4950 {
		t.Fatalf("For sum = %d, want 4950", got)
	}
}
