package trace

import (
	"encoding/json"
	"io"
)

// Chrome trace-event pids: one synthetic "process" per side of the wire so
// Perfetto draws client and server tracks separately, with the server span
// visually nested under its client span on a shared clock.
const (
	chromePidClient = 1
	chromePidServer = 2
)

// chromeEvent is one entry in the trace-event JSON's traceEvents array.
// Field order is fixed by the struct so the export is golden-testable.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	Pid   int            `json:"pid"`
	Tid   uint64         `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeDump is the top-level trace-event JSON object.
type chromeDump struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChrome renders records as Chrome trace-event JSON ("X" complete
// events, timestamps in microseconds), the format chrome://tracing and
// Perfetto open directly. Each record becomes one enclosing "request" span
// plus one span per measured stage, laid end to end in stage order; a
// client record with folded server spans additionally draws the server
// stages on the server track starting at the server's receipt clock, so
// the nesting of server inside client is visible on a shared timeline.
// Timestamps are offset from the earliest record so dumps start near zero.
func WriteChrome(w io.Writer, records []Record) error {
	var epoch int64
	for i := range records {
		if s := records[i].Start; s > 0 && (epoch == 0 || s < epoch) {
			epoch = s
		}
	}
	dump := chromeDump{
		DisplayTimeUnit: "ms",
		TraceEvents: []chromeEvent{
			{Name: "process_name", Phase: "M", Pid: chromePidClient,
				Args: map[string]any{"name": "client"}},
			{Name: "process_name", Phase: "M", Pid: chromePidServer,
				Args: map[string]any{"name": "server"}},
		},
	}
	for i := range records {
		dump.TraceEvents = append(dump.TraceEvents, recordEvents(&records[i], uint64(i+1), epoch)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dump)
}

// recordEvents expands one record into its span events. seq numbers the
// record within the dump and becomes the thread id for records without a
// trace ID (tail captures), so their spans do not stack onto one row.
func recordEvents(rec *Record, seq uint64, epoch int64) []chromeEvent {
	tid := rec.TraceID
	if tid == 0 {
		tid = seq
	}
	pid := chromePidClient
	first, last := StageIssue, StageDecode
	if rec.Origin == OriginServer {
		pid = chromePidServer
		first, last = StageAdmit, StageReply
	}
	args := map[string]any{"model": rec.Model}
	if rec.TraceID != 0 {
		args["trace_id"] = rec.TraceID
	}
	if rec.Tail {
		args["tail"] = true
	}
	events := []chromeEvent{{
		Name:  rec.Origin.String() + " request",
		Phase: "X",
		Ts:    micros(rec.Start - epoch),
		Dur:   micros(rec.End2End),
		Pid:   pid,
		Tid:   tid,
		Args:  args,
	}}
	events = append(events, stageEvents(rec, pid, tid, rec.Start-epoch, first, last)...)
	if rec.Origin == OriginClient && rec.HasServer {
		start := rec.ServerStart - epoch
		if rec.ServerStart == 0 {
			start = rec.Start - epoch
		}
		events = append(events, stageEvents(rec, chromePidServer, tid, start, StageAdmit, StageReply)...)
	}
	return events
}

// stageEvents lays a record's measured stages [first, last] end to end
// starting at offset nanoseconds past the dump epoch.
func stageEvents(rec *Record, pid int, tid uint64, offset int64, first, last Stage) []chromeEvent {
	var events []chromeEvent
	at := offset
	for s := first; s <= last; s++ {
		d := rec.Stages[s]
		if d <= 0 {
			continue
		}
		events = append(events, chromeEvent{
			Name:  s.String(),
			Phase: "X",
			Ts:    micros(at),
			Dur:   micros(d),
			Pid:   pid,
			Tid:   tid,
		})
		at += d
	}
	return events
}

// micros converts nanoseconds to the trace-event format's microseconds.
func micros(nanos int64) float64 {
	return float64(nanos) / 1e3
}
