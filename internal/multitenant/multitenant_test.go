package multitenant

import (
	"sync"
	"testing"
	"time"

	"mlperf/internal/loadgen"
)

// tenantQSL is a minimal query sample library.
type tenantQSL struct{ total int }

func (q tenantQSL) Name() string                             { return "tenant-qsl" }
func (q tenantQSL) TotalSampleCount() int                    { return q.total }
func (q tenantQSL) PerformanceSampleCount() int              { return q.total }
func (q tenantQSL) LoadSamplesToRAM(indices []int) error     { return nil }
func (q tenantQSL) UnloadSamplesFromRAM(indices []int) error { return nil }

// sharedBackend emulates one machine serving several tenants: a fixed pool of
// execution slots shared by all tenants, each inference occupying a slot for
// serviceTime.
type sharedBackend struct {
	slots       chan struct{}
	serviceTime time.Duration
}

func newSharedBackend(parallelism int, serviceTime time.Duration) *sharedBackend {
	return &sharedBackend{slots: make(chan struct{}, parallelism), serviceTime: serviceTime}
}

// tenantSUT is one tenant's view of the shared backend.
type tenantSUT struct {
	name    string
	backend *sharedBackend
	wg      sync.WaitGroup
}

func (s *tenantSUT) Name() string { return s.name }

func (s *tenantSUT) IssueQuery(q *loadgen.Query) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.backend.slots <- struct{}{}
		time.Sleep(s.backend.serviceTime)
		<-s.backend.slots
		responses := make([]loadgen.Response, len(q.Samples))
		for i, smp := range q.Samples {
			responses[i] = loadgen.Response{SampleID: smp.ID}
		}
		q.Complete(responses)
	}()
}

func (s *tenantSUT) FlushQueries() {}

func serverSettings(qps float64, bound time.Duration, queries int) loadgen.TestSettings {
	ts := loadgen.DefaultSettings(loadgen.Server)
	ts.MinQueryCount = queries
	ts.MinDuration = 0
	ts.ServerTargetQPS = qps
	ts.ServerTargetLatency = bound
	return ts
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil); err == nil {
		t.Error("no tenants: expected error")
	}
	backend := newSharedBackend(4, time.Millisecond)
	good := Tenant{Name: "a", SUT: &tenantSUT{name: "a", backend: backend}, QSL: tenantQSL{total: 32},
		Settings: serverSettings(100, 50*time.Millisecond, 20)}
	noName := good
	noName.Name = ""
	if _, err := Run([]Tenant{noName}); err == nil {
		t.Error("unnamed tenant: expected error")
	}
	noSUT := good
	noSUT.SUT = nil
	if _, err := Run([]Tenant{noSUT}); err == nil {
		t.Error("nil SUT: expected error")
	}
	noQSL := good
	noQSL.QSL = nil
	if _, err := Run([]Tenant{noQSL}); err == nil {
		t.Error("nil QSL: expected error")
	}
	wrongScenario := good
	wrongScenario.Settings = loadgen.DefaultSettings(loadgen.SingleStream)
	wrongScenario.Settings.MinQueryCount = 10
	if _, err := Run([]Tenant{wrongScenario}); err == nil {
		t.Error("non-server scenario: expected error")
	}
	dup := good
	if _, err := Run([]Tenant{good, dup}); err == nil {
		t.Error("duplicate names: expected error")
	}
}

func TestMultitenantBothWithinQoS(t *testing.T) {
	// Plenty of shared capacity: both tenants must meet their bounds.
	backend := newSharedBackend(8, 500*time.Microsecond)
	tenants := []Tenant{
		{Name: "vision", SUT: &tenantSUT{name: "vision", backend: backend}, QSL: tenantQSL{total: 64},
			Settings: serverSettings(400, 100*time.Millisecond, 100)},
		{Name: "translation", SUT: &tenantSUT{name: "translation", backend: backend}, QSL: tenantQSL{total: 64},
			Settings: serverSettings(200, 100*time.Millisecond, 60)},
	}
	report, err := Run(tenants)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Tenants) != 2 {
		t.Fatalf("got %d tenant results", len(report.Tenants))
	}
	if !report.AllValid() {
		t.Errorf("expected both tenants valid, violations: %v", report.Violations())
	}
	for _, tr := range report.Tenants {
		if tr.Result.Scenario != loadgen.Server {
			t.Errorf("%s: scenario %v", tr.Tenant, tr.Result.Scenario)
		}
		if tr.Result.QueriesCompleted == 0 {
			t.Errorf("%s: no queries completed", tr.Tenant)
		}
	}
}

func TestMultitenantContentionViolatesQoS(t *testing.T) {
	// One shared slot with a service time close to the bound: with two
	// tenants offering load concurrently, queueing pushes tails past the
	// bound for at least one tenant.
	backend := newSharedBackend(1, 4*time.Millisecond)
	tenants := []Tenant{
		{Name: "vision", SUT: &tenantSUT{name: "vision", backend: backend}, QSL: tenantQSL{total: 64},
			Settings: serverSettings(400, 6*time.Millisecond, 80)},
		{Name: "translation", SUT: &tenantSUT{name: "translation", backend: backend}, QSL: tenantQSL{total: 64},
			Settings: serverSettings(400, 6*time.Millisecond, 80)},
	}
	report, err := Run(tenants)
	if err != nil {
		t.Fatal(err)
	}
	if report.AllValid() {
		t.Error("expected QoS violations under contention")
	}
	if len(report.Violations()) == 0 {
		t.Error("violations list empty for an invalid report")
	}
}

func TestReportEdgeCases(t *testing.T) {
	if (Report{}).AllValid() {
		t.Error("empty report must not be valid")
	}
	r := Report{Tenants: []TenantResult{{Tenant: "x", Err: errTest("boom")}}}
	if r.AllValid() {
		t.Error("errored tenant must invalidate the report")
	}
	if len(r.Violations()) != 1 {
		t.Errorf("violations = %v", r.Violations())
	}
	r2 := Report{Tenants: []TenantResult{{Tenant: "y"}}}
	if r2.AllValid() || len(r2.Violations()) != 1 {
		t.Error("tenant without result must be reported")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }
