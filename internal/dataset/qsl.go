package dataset

import (
	"fmt"
	"sync"
)

// QSL is the query sample library: the LoadGen-facing view of a data set.
// Before the timed portion of a run the LoadGen asks the SUT to load a set of
// samples into memory (untimed); during the run queries refer to samples by
// index and the SUT may only touch loaded samples. QSL enforces those
// semantics and tracks loading state.
type QSL struct {
	mu      sync.RWMutex
	dataset Dataset
	loaded  map[int]int // sample index -> load count (loads may nest)
}

// NewQSL wraps a data set in a query sample library.
func NewQSL(d Dataset) (*QSL, error) {
	if d == nil {
		return nil, fmt.Errorf("dataset: nil dataset")
	}
	if d.Size() == 0 {
		return nil, fmt.Errorf("dataset: %s holds no samples", d.Name())
	}
	return &QSL{dataset: d, loaded: make(map[int]int)}, nil
}

// Name returns the underlying data set name.
func (q *QSL) Name() string { return q.dataset.Name() }

// Dataset returns the wrapped data set.
func (q *QSL) Dataset() Dataset { return q.dataset }

// TotalSampleCount returns the total number of samples available.
func (q *QSL) TotalSampleCount() int { return q.dataset.Size() }

// PerformanceSampleCount returns the number of samples that fit in the SUT's
// performance-mode working set.
func (q *QSL) PerformanceSampleCount() int { return q.dataset.PerformanceSampleCount() }

// LoadSamplesToRAM marks the given samples as resident. Loading is untimed
// per the benchmark rules; the QSL validates indices so misuse is caught
// before a run rather than mid-measurement.
func (q *QSL) LoadSamplesToRAM(indices []int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, i := range indices {
		if i < 0 || i >= q.dataset.Size() {
			return fmt.Errorf("dataset %s: cannot load sample %d: out of range [0,%d)", q.dataset.Name(), i, q.dataset.Size())
		}
	}
	for _, i := range indices {
		q.loaded[i]++
	}
	return nil
}

// UnloadSamplesFromRAM releases previously loaded samples.
func (q *QSL) UnloadSamplesFromRAM(indices []int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, i := range indices {
		if q.loaded[i] == 0 {
			return fmt.Errorf("dataset %s: cannot unload sample %d: not loaded", q.dataset.Name(), i)
		}
	}
	for _, i := range indices {
		q.loaded[i]--
		if q.loaded[i] == 0 {
			delete(q.loaded, i)
		}
	}
	return nil
}

// IsLoaded reports whether sample i is currently resident.
func (q *QSL) IsLoaded(i int) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.loaded[i] > 0
}

// LoadedCount returns the number of distinct resident samples.
func (q *QSL) LoadedCount() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return len(q.loaded)
}

// Get returns sample i, failing if it has not been loaded. This surfaces SUTs
// that read samples the LoadGen never asked them to load — behaviour the
// audit tests look for.
func (q *QSL) Get(i int) (*Sample, error) {
	q.mu.RLock()
	ok := q.loaded[i] > 0
	q.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dataset %s: sample %d accessed without being loaded", q.dataset.Name(), i)
	}
	return q.dataset.Sample(i)
}
