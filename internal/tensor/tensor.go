// Package tensor implements the dense float32 tensors and compute kernels
// (matrix multiply, 2-D convolution, pooling, element-wise math) that the
// in-repo reference models are built from. The MLPerf reference models only
// need a handful of operator shapes, so the package keeps one simple serial
// reference per kernel (MatMulSerial, Conv2DSerial, ...) and layers speed on
// top of it: blocked/panelled GEMM, im2col convolution, parallel row
// dispatch, and hand-written SIMD microkernels.
//
// # SIMD dispatch tiers
//
// On amd64 the GEMM inner loops dispatch at runtime across three tiers,
// probed once from CPUID at init and overridable with MLPERF_SIMD (or
// SetSIMD at runtime):
//
//   - off:  the pure-Go scalar kernels. The only tier on non-amd64 builds,
//     and the forced-scalar oracle the SIMD tiers are fuzzed against.
//   - avx2: 8-wide AVX2 mul+add kernels, the default wherever supported.
//     Bit-identical to off — see the determinism contract below.
//   - fma:  AVX2+FMA kernels (fused multiply-add, plus multi-accumulator
//     dot products for matrix–vector). Fastest, but each fused pair rounds
//     once instead of twice, so results can differ from the scalar path in
//     the last bits. Opt-in only (MLPERF_SIMD=fma); never chosen by default.
//
// # The determinism contract
//
// Every kernel computes each output element as an ascending-k accumulation
// from its bias term. The scalar path does this one multiply and one add at
// a time; the avx2 tier vectorizes across output *columns* — eight outputs
// advance in lockstep, each still seeing its own multiplies and adds in the
// same order with the same intermediate roundings — so off and avx2 produce
// bit-identical floats for any shape, split or panel size. The fma tier
// deliberately relaxes exactly one thing (the intermediate rounding between
// multiply and add) and is validated against the serial reference by relative
// tolerance instead of bit equality.
//
// # Tuning knobs and calibration
//
// Two knobs steer kernel scheduling without affecting results: the
// parallel-dispatch threshold (SetParallelFlopThreshold) decides when a GEMM
// is worth forking across workers, and the panel budget (SetGEMMPanelBytes)
// sizes the cache-resident column panels. Calibrate measures this machine's
// MAC throughput, fork overhead and L2 size and derives both; Apply installs
// them. CurrentKernelConfig reports the live tier and knob values — the
// serving layer embeds it in every metrics snapshot so a fleet's kernel
// configuration is auditable per replica.
//
// Keeping the serial kernels as the behavioural reference makes the
// numerical behaviour easy to reason about when validating quantization
// (Section III-B of the paper) — every fast path must reproduce or
// tolerably approximate what the obvious loop computes.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. Shapes must be
// non-empty and every dimension must be positive.
func New(shape ...int) (*Tensor, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("tensor: shape must have at least one dimension")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: dimension %d must be positive, got shape %v", d, shape)
		}
		if n > math.MaxInt32/d {
			return nil, fmt.Errorf("tensor: shape %v overflows element count", shape)
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}, nil
}

// MustNew is New but panics on error. Intended for static model construction
// where shapes are compile-time constants.
func MustNew(shape ...int) *Tensor {
	t, err := New(shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The data slice is used
// directly (not copied); its length must match the shape's element count.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	t, err := New(shape...)
	if err != nil {
		return nil, err
	}
	if len(data) != len(t.data) {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, len(t.data))
	}
	t.data = data
	return t, nil
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: make([]int, len(t.shape)), data: make([]float32, len(t.data))}
	copy(c.shape, t.shape)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view with a new shape sharing the same storage. The
// element counts must match.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: reshape dimension must be positive, got %v", shape)
		}
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}, nil
}

// SameShape reports whether the two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// offset computes the flat index for the given coordinates.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d (size %d)", v, i, t.shape[i]))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// At returns the element at the given coordinates.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx...)] }

// Set assigns the element at the given coordinates.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScalar adds s to every element.
func (t *Tensor) AddScalar(s float32) {
	for i := range t.data {
		t.data[i] += s
	}
}

// Add adds other element-wise into t. The shapes must match.
func (t *Tensor) Add(other *Tensor) error {
	if !SameShape(t, other) {
		return fmt.Errorf("tensor: add shape mismatch %v vs %v", t.shape, other.shape)
	}
	for i := range t.data {
		t.data[i] += other.data[i]
	}
	return nil
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value; 0 for an all-zero tensor.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	best := 0
	for i, v := range t.data {
		if v > t.data[best] {
			best = i
		}
	}
	return best
}

// Equalish reports whether the two tensors have the same shape and all
// elements within tol of one another.
func Equalish(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if math.Abs(float64(a.data[i])-float64(b.data[i])) > tol {
			return false
		}
	}
	return true
}
